#include "baselines/bolt_like.hpp"

#include <array>
#include <chrono>

#include "exec/program.hpp"
#include "gpu/timing.hpp"
#include "ir/expr.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

BoltLikeBaseline::BoltLikeBaseline(GpuSpec gpu)
    : gpu_(std::move(gpu)), relay_(gpu_) {}

bool BoltLikeBaseline::supports_gpu() const { return gpu_.name != "RTX3080"; }

SubgraphResult BoltLikeBaseline::run(const ChainSpec& chain) const {
  const auto t_start = std::chrono::steady_clock::now();
  SubgraphResult r;
  r.method = "BOLT";
  if (!supports_gpu()) {
    r.supported = false;
    return r;
  }
  r.supported = true;

  // Pattern check: only epilogue-free / relu GEMM chains of length 2.
  bool pattern_ok = chain.num_ops() == 2;
  for (int op = 0; op < chain.num_ops(); ++op) {
    if (chain.epilogue(op) == Epilogue::OnlineSoftmax) pattern_ok = false;
  }

  double best_fused = 1e30;
  if (pattern_ok) {
    // Cutlass B2B template menu: Tm/Tk/Th shapes; Tn is pinned to N.
    static constexpr std::array<std::int64_t, 3> kTm = {64, 128, 256};
    static constexpr std::array<std::int64_t, 2> kTk = {32, 64};
    static constexpr std::array<std::int64_t, 3> kTh = {32, 64, 128};
    // Deep nk structure (the only one cutlass b2b implements).
    const TileExpr expr = make_deep_expr(chain, {0, 3, 2, 1});
    TimingSimulator sim(gpu_);
    MeasureOptions mopts;
    mopts.noise_seed = hash_string(chain.name()) ^ 0xb017;
    ScheduleOptions sched;
    sched.collapse_unit_loops = false;  // hand-written templates
    for (const auto tm : kTm) {
      for (const auto tk : kTk) {
        for (const auto th : kTh) {
          const std::vector<std::int64_t> tiles = {
              tm, std::min<std::int64_t>(tk, chain.inner()[0]),
              chain.inner()[1],  // Tn == N: intermediate fits the block
              std::min<std::int64_t>(th, chain.inner()[2])};
          const Schedule s = build_schedule(chain, expr, tiles, sched);
          if (!s.valid() || !s.consume_complete()) continue;
          ++r.tuning.templates_instantiated;
          ++r.tuning.hardware_measurements;
          const KernelMeasurement m = sim.measure(s, mopts);
          if (m.ok) best_fused = std::min(best_fused, m.time_s);
        }
      }
    }
  }

  const SubgraphResult fallback = relay_.run(chain);
  if (best_fused < fallback.time_s) {
    r.fused = true;
    r.time_s = best_fused;
    r.kernel_launches = 1;
  } else {
    r.fused = false;
    r.time_s = fallback.time_s;
    r.kernel_launches = fallback.kernel_launches;
  }
  r.tuning.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return r;
}

}  // namespace mcf
