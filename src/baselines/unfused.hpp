// PyTorch-like baseline: every operator of the chain is its own library
// kernel, intermediates round-trip through global memory, and pointwise /
// softmax epilogues launch separate kernels (eager execution, no fusion).
#pragma once

#include "baselines/baseline.hpp"
#include "baselines/library_kernels.hpp"
#include "ir/chain.hpp"

namespace mcf {

class UnfusedBaseline {
 public:
  explicit UnfusedBaseline(GpuSpec gpu) : lib_(std::move(gpu)) {}

  /// Simulated execution of the chain as separate kernels.
  [[nodiscard]] SubgraphResult run(const ChainSpec& chain) const;

  [[nodiscard]] const LibraryKernels& library() const noexcept { return lib_; }

 private:
  LibraryKernels lib_;
};

}  // namespace mcf
