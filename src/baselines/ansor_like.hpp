// Ansor-like baseline (paper §VI-A "Comparisons", §II-B).
//
// Reproduces the *structure* of Ansor's tuning for MBCI chains:
//   * loop-oriented schedule space: deep tilings only, standard memory
//     hoisting but no extent-1 collapse, no analytical pruning beyond
//     legality (it learns feasibility from failed measurements),
//   * an ML cost model (GbdtRegressor) trained online from hardware
//     measurements, in rounds: measure batch -> train -> rank next batch,
//   * a fixed trial budget (paper: 1000 trials per subgraph),
//   * a tuned-unfused fallback: when the best fused candidate loses to
//     per-operator kernels, Ansor "fails to fuse" the chain (paper: G12).
#pragma once

#include <cstdint>

#include "baselines/baseline.hpp"
#include "baselines/gbdt.hpp"
#include "baselines/library_kernels.hpp"
#include "search/space.hpp"

namespace mcf {

struct AnsorOptions {
  int trials = 1000;        ///< hardware measurements (paper setting)
  int round_size = 64;      ///< measurements per train/explore round
  double explore_fraction = 0.2;  ///< epsilon-greedy exploration share
  std::uint64_t seed = 2024;
  GbdtRegressor::Options model;
};

class AnsorLikeBaseline {
 public:
  AnsorLikeBaseline(GpuSpec gpu, AnsorOptions options = {});

  [[nodiscard]] SubgraphResult run(const ChainSpec& chain) const;

  /// Tuned per-op execution (Ansor matches vendor libraries per op).
  [[nodiscard]] SubgraphResult run_unfused(const ChainSpec& chain) const;

 private:
  GpuSpec gpu_;
  AnsorOptions opt_;
  LibraryKernels lib_;
};

}  // namespace mcf
