#include "baselines/chimera_like.hpp"

#include <algorithm>
#include <chrono>

#include "dag/volume.hpp"
#include "gpu/timing.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

ChimeraLikeBaseline::ChimeraLikeBaseline(GpuSpec gpu, Objective objective)
    : gpu_(std::move(gpu)), objective_(objective) {}

FusionResult ChimeraLikeBaseline::fuse(const ChainSpec& chain) const {
  const FusionEngine engine(gpu_, FusionEngine::chimera_options());
  return engine.fuse(chain);
}

SubgraphResult ChimeraLikeBaseline::run(const ChainSpec& chain) const {
  const auto t_start = std::chrono::steady_clock::now();
  SubgraphResult r;
  r.method = objective_ == Objective::MeasuredTime ? "MCFuser-Chimera" : "Chimera";
  r.supported = true;

  if (objective_ == Objective::MeasuredTime) {
    const FusionResult f = fuse(chain);
    if (!f.ok()) return r;
    r.fused = true;
    r.time_s = f.tuned.best_time_s;
    r.kernel_launches = 1;
    r.tuning.hardware_measurements = f.tuned.stats.measurements;
    r.tuning.wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t_start)
                                .count();
    return r;
  }

  // Pure Chimera: enumerate the restricted space, rank by data movement,
  // measure candidates in that order until one lowers successfully.
  FusionEngineOptions opts = FusionEngine::chimera_options();
  opts.prune.smem_limit_bytes = gpu_.smem_per_block;
  SearchSpace space(chain, opts.space, opts.prune, opts.sched);
  std::vector<std::pair<double, const CandidateConfig*>> ranked;
  for (const auto& c : space.candidates()) {
    const Schedule s = space.schedule_for(c);
    ranked.emplace_back(analyze_volume(s).total_bytes(), &c);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  TimingSimulator sim(gpu_);
  MeasureOptions mopts;
  mopts.noise_seed = hash_string(chain.name()) ^ 0xc41e;
  for (const auto& [bytes, cand] : ranked) {
    const KernelMeasurement m = sim.measure(space.schedule_for(*cand), mopts);
    ++r.tuning.hardware_measurements;
    if (!m.ok) continue;  // rejected at lowering: take the next-best
    r.fused = true;
    r.time_s = m.time_s;
    r.kernel_launches = 1;
    break;
  }
  if (!r.fused) return r;
  r.tuning.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return r;
}

}  // namespace mcf
