#include "baselines/library_kernels.hpp"

#include <algorithm>
#include <array>

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

namespace {
constexpr int kDtypeBytes = 2;  // fp16, as everywhere in the timing model
}

KernelMeasurement LibraryKernels::gemm_fixed(std::int64_t batch, std::int64_t m,
                                             std::int64_t n, std::int64_t k,
                                             const GemmConfig& cfg,
                                             double epi_flops) const {
  const std::int64_t tm = std::min(cfg.tm, m);
  const std::int64_t tn = std::min(cfg.tn, n);
  const std::int64_t tk = std::min(cfg.tk, k);
  const std::int64_t bm = (m + tm - 1) / tm;
  const std::int64_t bn = (n + tn - 1) / tn;
  const std::int64_t bk = (k + tk - 1) / tk;
  const std::int64_t blocks = batch * bm * bn;

  // Traffic: each output tile streams its A-panel and B-panel once;
  // repeated panel reads of operands that fit in L2 are served from it
  // (same intra-kernel L2 model as TimingSimulator::measure).
  const double a_bytes = static_cast<double>(blocks) * tm * (bk * tk) * kDtypeBytes;
  const double b_bytes = static_cast<double>(blocks) * tn * (bk * tk) * kDtypeBytes;
  const double c_bytes = static_cast<double>(blocks) * tm * tn * kDtypeBytes;
  const double bytes = a_bytes + b_bytes + c_bytes;
  const double l2_ratio =
      gpu_.l2_bandwidth > 0 ? gpu_.mem_bandwidth / gpu_.l2_bandwidth : 1.0;
  auto dram_equiv = [&](double total, double size) {
    const double first = std::min(total, size);
    const double excess = total - first;
    const bool fits = size <= 0.5 * static_cast<double>(gpu_.l2_bytes);
    return first + (fits ? excess * l2_ratio : excess);
  };
  const double a_size = static_cast<double>(batch) * m * k * kDtypeBytes;
  const double b_size = static_cast<double>(batch) * k * n * kDtypeBytes;
  const double effective_bytes =
      dram_equiv(a_bytes, a_size) + dram_equiv(b_bytes, b_size) + c_bytes;

  const double flops = 2.0 * static_cast<double>(blocks) * tm * tn * (bk * tk) +
                       epi_flops * static_cast<double>(batch) * m * n * 8.0;

  // Weighted transaction efficiency (rows of A are k-contiguous, B n-contiguous).
  const double eff_a = TimingSimulator::bandwidth_efficiency(
      static_cast<double>(tk) * kDtypeBytes);
  const double eff_bc = TimingSimulator::bandwidth_efficiency(
      static_cast<double>(tn) * kDtypeBytes);
  const double mem_eff =
      (a_bytes * eff_a + (b_bytes + c_bytes) * eff_bc) / bytes;
  const double comp_eff =
      TimingSimulator::mma_efficiency(tm, tk, tn) *
      TimingSimulator::pipeline_efficiency(static_cast<double>(bk));

  // Double-buffered operand tiles plus accumulator.
  const std::int64_t smem =
      2 * (tm * tk + tk * tn) * kDtypeBytes + tm * tn * kDtypeBytes;
  const double stmt_trips = static_cast<double>(blocks) * bk * 3.0;

  MeasureOptions opts;
  opts.noise_seed = hash_combine(hash_combine(static_cast<std::uint64_t>(m * 31 + n),
                                              static_cast<std::uint64_t>(k * 17 + batch)),
                                 static_cast<std::uint64_t>(tm * 7 + tn));
  return backend_->measure_raw(effective_bytes, flops, blocks, smem, mem_eff,
                          comp_eff, stmt_trips, opts);
}

KernelMeasurement LibraryKernels::gemm(std::int64_t batch, std::int64_t m,
                                       std::int64_t n, std::int64_t k,
                                       double epi_flops) const {
  // cuBLAS-style dispatch: try the SM80 tile menu, keep the fastest.
  static constexpr std::array<GemmConfig, 9> kMenu = {{
      {256, 128, 32},
      {128, 256, 32},
      {128, 128, 32},
      {128, 64, 32},
      {64, 128, 32},
      {64, 64, 64},
      {128, 128, 64},
      {64, 256, 32},
      {32, 64, 64},
  }};
  KernelMeasurement best;
  best.time_s = 1e30;
  for (const auto& cfg : kMenu) {
    const KernelMeasurement cand = gemm_fixed(batch, m, n, k, cfg, epi_flops);
    if (cand.ok && cand.time_s < best.time_s) best = cand;
  }
  MCF_CHECK(best.ok) << "no library GEMM configuration fits";
  return best;
}

KernelMeasurement LibraryKernels::softmax(std::int64_t rows,
                                          std::int64_t cols) const {
  // Framework softmax kernels make multiple passes (max, exp-sum,
  // normalise) and stage fp16 inputs through fp32 — about 4x the tensor
  // footprint in DRAM traffic.
  const double elems = static_cast<double>(rows) * cols;
  const double bytes = elems * kDtypeBytes * 4.0;
  const double flops = elems * 8.0;
  const std::int64_t blocks = std::max<std::int64_t>(1, rows / 4);
  MeasureOptions opts;
  opts.noise_seed = hash_combine(static_cast<std::uint64_t>(rows),
                                 static_cast<std::uint64_t>(cols) * 131);
  return backend_->measure_raw(
      bytes, flops, blocks, 8 * 1024,
      TimingSimulator::bandwidth_efficiency(static_cast<double>(cols) * kDtypeBytes),
      /*comp_eff=*/0.125, static_cast<double>(blocks) * 4.0, opts);
}

KernelMeasurement LibraryKernels::layernorm(std::int64_t rows,
                                            std::int64_t cols) const {
  const double elems = static_cast<double>(rows) * cols;
  const double bytes = elems * kDtypeBytes * 2.2;
  const double flops = elems * 6.0;
  const std::int64_t blocks = std::max<std::int64_t>(1, rows / 4);
  MeasureOptions opts;
  opts.noise_seed = hash_combine(static_cast<std::uint64_t>(rows) * 7,
                                 static_cast<std::uint64_t>(cols));
  return backend_->measure_raw(
      bytes, flops, blocks, 4 * 1024,
      TimingSimulator::bandwidth_efficiency(static_cast<double>(cols) * kDtypeBytes),
      0.125, static_cast<double>(blocks) * 4.0, opts);
}

KernelMeasurement LibraryKernels::elementwise(std::int64_t elems, int inputs,
                                              double flops_per_elem) const {
  const double bytes = static_cast<double>(elems) * kDtypeBytes * (inputs + 1);
  const double flops = static_cast<double>(elems) * flops_per_elem;
  const std::int64_t blocks = std::max<std::int64_t>(1, elems / (256 * 64));
  MeasureOptions opts;
  opts.noise_seed = hash_combine(static_cast<std::uint64_t>(elems),
                                 static_cast<std::uint64_t>(inputs) * 977);
  return backend_->measure_raw(bytes, flops, blocks, 2 * 1024, 1.0, 0.125,
                          static_cast<double>(blocks) * 2.0, opts);
}

}  // namespace mcf
