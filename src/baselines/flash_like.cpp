#include "baselines/flash_like.hpp"

#include <array>

#include "gpu/smem.hpp"
#include "gpu/timing.hpp"
#include "ir/expr.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

namespace {
/// FA-1 vs compiler-tuned kernel quality gap (no cp.async pipelining,
/// CUDA-core softmax/rescale path, one fixed warp partitioning).
constexpr double kKernelQualityDerate = 1.6;
}  // namespace

FlashAttentionLikeBaseline::FlashAttentionLikeBaseline(GpuSpec gpu)
    : gpu_(std::move(gpu)), unfused_(gpu_) {}

bool FlashAttentionLikeBaseline::supports(const ChainSpec& chain) {
  return chain.num_ops() == 2 &&
         chain.epilogue(0) == Epilogue::OnlineSoftmax &&
         chain.inner().front() == chain.inner().back();  // K == H
}

SubgraphResult FlashAttentionLikeBaseline::run(const ChainSpec& chain) const {
  SubgraphResult r;
  r.method = "FlashAttention";
  r.supported = true;
  if (!supports(chain)) {
    // Rigid pattern: fall back to eager attention.
    const SubgraphResult fb = unfused_.run(chain);
    r.fused = false;
    r.time_s = fb.time_s;
    r.kernel_launches = fb.kernel_launches;
    return r;
  }

  // Handcrafted flat schedule: block over m, stream n, K/H untiled
  // (exactly the paper's description: only M and N are split).
  const TileExpr expr = make_flat_expr(chain, {0, 2}, {1, 3});
  TimingSimulator sim(gpu_);
  MeasureOptions mopts;
  mopts.noise_seed = hash_string(chain.name()) ^ 0xf1a5;
  // Fixed (Tm, Tn) menu, first configuration that fits shared memory —
  // FA-1's Br/Bc selection heuristic.
  static constexpr std::array<std::pair<std::int64_t, std::int64_t>, 4> kMenu = {
      {{128, 128}, {128, 64}, {64, 64}, {32, 64}}};
  ScheduleOptions sched;  // handcrafted kernels do hoist invariant loads
  for (const auto& [tm, tn] : kMenu) {
    const std::vector<std::int64_t> tiles = {
        std::min<std::int64_t>(tm, chain.m()), chain.inner()[0],
        std::min<std::int64_t>(tn, chain.inner()[1]), chain.inner()[2]};
    const Schedule s = build_schedule(chain, expr, tiles, sched);
    if (!s.valid() || !s.consume_complete()) continue;
    if (plan_smem(s).total_bytes > gpu_.smem_per_block) continue;
    const KernelMeasurement m = sim.measure(s, mopts);
    if (!m.ok) continue;
    r.fused = true;
    r.time_s = m.time_s * kKernelQualityDerate;
    r.kernel_launches = 1;
    return r;
  }
  // No configuration fits: eager fallback.
  const SubgraphResult fb = unfused_.run(chain);
  r.fused = false;
  r.time_s = fb.time_s;
  r.kernel_launches = fb.kernel_launches;
  return r;
}

}  // namespace mcf
