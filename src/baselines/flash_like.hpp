// FlashAttention-1-like baseline (paper §VI-A / §VI-B2).
//
// A handcrafted fused attention kernel with the limitations the paper
// identifies in FlashAttention 1:
//   * rigid K == H constraint — modules with differing head dims cannot
//     be fused,
//   * only M and N are tiled (Tk = K, Th = H), with a small fixed tile
//     menu chosen by a shared-memory heuristic rather than tuned,
//   * implementation-quality derate vs. a compiler-tuned kernel (no
//     software pipelining, CUDA-core softmax path, fixed work
//     partitioning) — `kKernelQualityDerate`, documented in
//     EXPERIMENTS.md.
// Unsupported modules fall back to unfused execution.
#pragma once

#include "baselines/baseline.hpp"
#include "baselines/unfused.hpp"

namespace mcf {

class FlashAttentionLikeBaseline {
 public:
  explicit FlashAttentionLikeBaseline(GpuSpec gpu);

  [[nodiscard]] SubgraphResult run(const ChainSpec& chain) const;

  /// True when the chain matches FA-1's fusion pattern.
  [[nodiscard]] static bool supports(const ChainSpec& chain);

 private:
  GpuSpec gpu_;
  UnfusedBaseline unfused_;
};

}  // namespace mcf
