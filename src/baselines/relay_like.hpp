// Relay-like baseline (paper §VI-C): template-scheduled operators without
// auto-tuning, plus standard epilogue fusion (pointwise ops fold into the
// producing GEMM).  Compute-intensive operators remain fusion boundaries;
// softmax cannot fold into a GEMM and stays a separate kernel.
#pragma once

#include "baselines/baseline.hpp"
#include "baselines/library_kernels.hpp"
#include "ir/chain.hpp"

namespace mcf {

class RelayLikeBaseline {
 public:
  explicit RelayLikeBaseline(GpuSpec gpu) : lib_(std::move(gpu)) {}

  [[nodiscard]] SubgraphResult run(const ChainSpec& chain) const;

  /// Relay's fixed GEMM template (no per-shape dispatch).
  [[nodiscard]] KernelMeasurement gemm(std::int64_t batch, std::int64_t m,
                                       std::int64_t n, std::int64_t k,
                                       double fused_epilogue_flops_per_elem = 0.0) const;

  [[nodiscard]] const LibraryKernels& library() const noexcept { return lib_; }

 private:
  LibraryKernels lib_;
};

}  // namespace mcf
