#include "baselines/unfused.hpp"

namespace mcf {

namespace {
/// Eager-mode framework dispatch cost per operator (op resolution, stream
/// bookkeeping, allocator) on top of the raw kernel launch.  Measured
/// PyTorch eager overhead on server CPUs is 5-10us per op.
constexpr double kEagerDispatchOverheadS = 9e-6;
}  // namespace

SubgraphResult UnfusedBaseline::run(const ChainSpec& chain) const {
  SubgraphResult r;
  r.method = "PyTorch";
  r.supported = true;
  r.fused = false;
  const std::int64_t batch = chain.batch();
  const std::int64_t m = chain.m();
  const auto& inner = chain.inner();
  for (int op = 0; op < chain.num_ops(); ++op) {
    const std::int64_t k = inner[static_cast<std::size_t>(op)];
    const std::int64_t n = inner[static_cast<std::size_t>(op) + 1];
    r.time_s += lib_.gemm(batch, m, n, k).time_s;
    ++r.kernel_launches;
    switch (chain.epilogue(op)) {
      case Epilogue::None:
        break;
      case Epilogue::Relu:
        r.time_s += lib_.elementwise(batch * m * n, 1, 1.0).time_s;
        ++r.kernel_launches;
        break;
      case Epilogue::Gelu:
        r.time_s += lib_.elementwise(batch * m * n, 1, 8.0).time_s;
        ++r.kernel_launches;
        break;
      case Epilogue::OnlineSoftmax:
        // Eager softmax over the materialised (batch*m, n) scores.
        r.time_s += lib_.softmax(batch * m, n).time_s;
        ++r.kernel_launches;
        break;
    }
  }
  r.time_s += kEagerDispatchOverheadS * r.kernel_launches;
  return r;
}

}  // namespace mcf
