#include "baselines/ansor_like.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "dag/volume.hpp"
#include "gpu/smem.hpp"
#include "gpu/timing.hpp"
#include "ir/expr.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

namespace {

/// Schedule features for the cost model (log-scaled counters, mirroring
/// the feature classes Ansor extracts from loop programs).
std::vector<double> features(const Schedule& s) {
  std::vector<double> f;
  f.reserve(20);
  auto lg = [](double v) { return std::log2(std::max(v, 1.0)); };
  for (int l = 0; l < s.chain().num_loops(); ++l) {
    f.push_back(lg(static_cast<double>(s.tiles()[static_cast<std::size_t>(l)])));
    f.push_back(lg(static_cast<double>(s.extents()[static_cast<std::size_t>(l)])));
  }
  while (f.size() < 12) f.push_back(0.0);
  const VolumeReport vol = analyze_volume(s);
  f.push_back(lg(vol.total_bytes()));
  f.push_back(lg(vol.total_flops()));
  f.push_back(lg(vol.total_flops() / std::max(vol.total_bytes(), 1.0)));
  f.push_back(lg(vol.n_blocks));
  f.push_back(lg(static_cast<double>(smem_estimate(s))));
  f.push_back(lg(vol.stmt_trips));
  return f;
}

}  // namespace

AnsorLikeBaseline::AnsorLikeBaseline(GpuSpec gpu, AnsorOptions options)
    : gpu_(std::move(gpu)), opt_(options), lib_(gpu_) {}

SubgraphResult AnsorLikeBaseline::run_unfused(const ChainSpec& chain) const {
  SubgraphResult r;
  r.method = "Ansor(unfused)";
  r.supported = true;
  r.fused = false;
  const auto& inner = chain.inner();
  for (int op = 0; op < chain.num_ops(); ++op) {
    const std::int64_t k = inner[static_cast<std::size_t>(op)];
    const std::int64_t n = inner[static_cast<std::size_t>(op) + 1];
    // Ansor's tuned per-op kernels reach vendor-library quality; pointwise
    // epilogues fuse into the producing kernel (its standard fusion pass).
    const double epi = chain.epilogue(op) == Epilogue::Relu
                           ? 0.125
                           : (chain.epilogue(op) == Epilogue::Gelu ? 1.0 : 0.0);
    r.time_s += lib_.gemm(chain.batch(), chain.m(), n, k, epi).time_s;
    ++r.kernel_launches;
    if (chain.epilogue(op) == Epilogue::OnlineSoftmax) {
      r.time_s += lib_.softmax(chain.batch() * chain.m(), n).time_s;
      ++r.kernel_launches;
    }
  }
  return r;
}

SubgraphResult AnsorLikeBaseline::run(const ChainSpec& chain) const {
  const auto t_start = std::chrono::steady_clock::now();
  SubgraphResult r;
  r.method = "Ansor";
  r.supported = true;

  // Ansor cannot express the online-softmax recurrence with loop
  // transformations, so softmax chains stay unfused: only the per-op
  // schedules are tuned (the full trial budget is still spent).
  bool can_fuse = true;
  for (int op = 0; op < chain.num_ops(); ++op) {
    if (chain.epilogue(op) == Epilogue::OnlineSoftmax) can_fuse = false;
  }

  // Ansor's fused-chain schedule universe: deep loop orders with standard
  // hoisting (no extent-1 collapse), arbitrary tile sizes, no analytical
  // pruning — feasibility is learnt from failed measurements.  The space
  // is sampled lazily; it is far too large to enumerate (the paper's
  // §II-B(c) critique).
  RawExpressions raw = enumerate_expressions(chain);
  ScheduleOptions sched_opts;
  sched_opts.collapse_unit_loops = false;
  std::vector<std::vector<std::int64_t>> options(
      static_cast<std::size_t>(chain.num_loops()));
  for (int l = 0; l < chain.num_loops(); ++l) {
    options[static_cast<std::size_t>(l)] = tile_options_for_dim(chain.loop_dim(l), 16);
  }

  TimingSimulator sim(gpu_);
  MeasureOptions mopts;
  mopts.noise_seed = hash_string(chain.name()) ^ 0xa500;
  Rng rng = make_rng(opt_.seed ^ hash_string(chain.name()));

  auto sample = [&]() {
    std::uniform_int_distribution<std::size_t> pick_expr(0, raw.deep.size() - 1);
    std::vector<std::int64_t> tiles(static_cast<std::size_t>(chain.num_loops()));
    for (int l = 0; l < chain.num_loops(); ++l) {
      const auto& opts = options[static_cast<std::size_t>(l)];
      std::uniform_int_distribution<std::size_t> pick_tile(0, opts.size() - 1);
      tiles[static_cast<std::size_t>(l)] = opts[pick_tile(rng)];
    }
    return std::make_pair(pick_expr(rng), std::move(tiles));
  };

  double best_fused = 1e30;
  if (can_fuse && !raw.deep.empty()) {
    GbdtRegressor model(opt_.model);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    const int rounds =
        std::max(1, (opt_.trials + opt_.round_size - 1) / opt_.round_size);
    for (int round = 0; round < rounds; ++round) {
      // Candidate pool for this round; model-ranked once trained.
      const int pool_size = model.trained() ? opt_.round_size * 16 : opt_.round_size;
      std::vector<std::pair<double, Schedule>> pool;
      pool.reserve(static_cast<std::size_t>(pool_size));
      for (int i = 0; i < pool_size; ++i) {
        const auto [e, tiles] = sample();
        Schedule s = build_schedule(chain, raw.deep[e], tiles, sched_opts);
        if (!s.valid() || !s.consume_complete()) continue;
        const double score = model.trained() ? model.predict(features(s)) : 0.0;
        pool.emplace_back(score, std::move(s));
      }
      std::sort(pool.begin(), pool.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      const int exploit =
          static_cast<int>(opt_.round_size * (1.0 - opt_.explore_fraction));
      int taken = 0;
      for (std::size_t i = 0; i < pool.size() && taken < opt_.round_size; ++i) {
        // Top of the ranking first; tail slots act as exploration because
        // the pool itself is freshly sampled.
        const std::size_t idx =
            (taken < exploit) ? i : pool.size() - 1 - (i - static_cast<std::size_t>(exploit));
        if (idx >= pool.size()) break;
        const Schedule& s = pool[idx].second;
        ++r.tuning.hardware_measurements;
        ++taken;
        const KernelMeasurement m = sim.measure(s, mopts);
        const double t = m.ok ? m.time_s : 1.0;  // failed trials waste budget
        xs.push_back(features(s));
        ys.push_back(std::log(t));
        if (m.ok) best_fused = std::min(best_fused, m.time_s);
        if (r.tuning.hardware_measurements >= opt_.trials) break;
      }
      model.fit(xs, ys);
      ++r.tuning.model_trainings;
      if (r.tuning.hardware_measurements >= opt_.trials) break;
    }
  } else {
    // The per-op tuning still burns the full measurement budget.
    r.tuning.hardware_measurements = opt_.trials;
    r.tuning.model_trainings =
        std::max(1, (opt_.trials + opt_.round_size - 1) / opt_.round_size);
  }

  // Fused result vs tuned per-op kernels: Ansor keeps whichever is faster
  // (the paper's "Ansor fails to fuse" cases, e.g. G12).
  const SubgraphResult unfused = run_unfused(chain);
  if (best_fused < unfused.time_s) {
    r.fused = true;
    r.time_s = best_fused;
    r.kernel_launches = 1;
  } else {
    r.fused = false;
    r.time_s = unfused.time_s;
    r.kernel_launches = unfused.kernel_launches;
  }
  r.tuning.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return r;
}

}  // namespace mcf
