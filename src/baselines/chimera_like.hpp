// MCFuser-Chimera (paper §VI-A): Chimera's search space inside the
// MCFuser framework — deep tilings only, no extent-1 hoisting.  Also
// provides a "pure Chimera" mode for the ablation benches: candidate
// selection by minimum data movement (Chimera's analytical objective,
// which the paper notes neglects computational redundancy).
#pragma once

#include "baselines/baseline.hpp"
#include "engine/engine.hpp"

namespace mcf {

class ChimeraLikeBaseline {
 public:
  enum class Objective {
    MeasuredTime,   ///< MCFuser-Chimera: our tuner on the restricted space
    DataMovement,   ///< pure Chimera: minimise traffic analytically
  };

  explicit ChimeraLikeBaseline(GpuSpec gpu,
                               Objective objective = Objective::MeasuredTime);

  [[nodiscard]] SubgraphResult run(const ChainSpec& chain) const;

  /// Full fusion result (schedule, funnel) for tests/benches.
  [[nodiscard]] FusionResult fuse(const ChainSpec& chain) const;

 private:
  GpuSpec gpu_;
  Objective objective_;
};

}  // namespace mcf
