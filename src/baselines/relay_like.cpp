#include "baselines/relay_like.hpp"

namespace mcf {

KernelMeasurement RelayLikeBaseline::gemm(std::int64_t batch, std::int64_t m,
                                          std::int64_t n, std::int64_t k,
                                          double epi) const {
  // One pre-defined schedule, no fine-tuning (the paper's critique of
  // Relay's template dependence).
  return lib_.gemm_fixed(batch, m, n, k, GemmConfig{128, 128, 32}, epi);
}

SubgraphResult RelayLikeBaseline::run(const ChainSpec& chain) const {
  SubgraphResult r;
  r.method = "Relay";
  r.supported = true;
  r.fused = false;
  const std::int64_t batch = chain.batch();
  const std::int64_t m = chain.m();
  const auto& inner = chain.inner();
  for (int op = 0; op < chain.num_ops(); ++op) {
    const std::int64_t k = inner[static_cast<std::size_t>(op)];
    const std::int64_t n = inner[static_cast<std::size_t>(op) + 1];
    switch (chain.epilogue(op)) {
      case Epilogue::None:
        r.time_s += gemm(batch, m, n, k).time_s;
        ++r.kernel_launches;
        break;
      case Epilogue::Relu:
        // Epilogue fusion: relu folds into the GEMM.
        r.time_s += gemm(batch, m, n, k, /*epi=*/0.125).time_s;
        ++r.kernel_launches;
        break;
      case Epilogue::Gelu:
        r.time_s += gemm(batch, m, n, k, /*epi=*/1.0).time_s;
        ++r.kernel_launches;
        break;
      case Epilogue::OnlineSoftmax:
        r.time_s += gemm(batch, m, n, k).time_s;
        r.time_s += lib_.softmax(batch * m, n).time_s;
        r.kernel_launches += 2;
        break;
    }
  }
  return r;
}

}  // namespace mcf
