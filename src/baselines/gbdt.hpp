// Gradient-boosted regression trees — the repo's from-scratch stand-in
// for the XGBoost cost model Ansor trains during tuning (paper §II-B(c)).
//
// Least-squares boosting over depth-limited CART trees.  Deliberately
// small but real: training cost is part of what Table IV measures.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mcf {

class GbdtRegressor {
 public:
  struct Options {
    int trees = 40;
    int max_depth = 3;
    double learning_rate = 0.2;
    int min_samples_leaf = 4;
    /// Thresholds examined per feature per split (subsampled quantiles).
    int max_thresholds = 16;
  };

  GbdtRegressor() = default;
  explicit GbdtRegressor(Options options) : opt_(options) {}

  /// Fits on rows X (equal-length feature vectors) and targets y.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  [[nodiscard]] double predict(std::span<const double> features) const;

  [[nodiscard]] bool trained() const noexcept { return !trees_.empty() || base_set_; }
  [[nodiscard]] int num_trees() const noexcept { return static_cast<int>(trees_.size()); }

 private:
  struct Node {
    int feature = -1;       ///< -1 = leaf
    double threshold = 0.0;
    double value = 0.0;     ///< leaf prediction
    int left = -1;
    int right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    [[nodiscard]] double predict(std::span<const double> x) const;
  };

  [[nodiscard]] Tree fit_tree(const std::vector<std::vector<double>>& x,
                              const std::vector<double>& residual,
                              std::vector<int>& indices) const;
  int build_node(Tree& tree, const std::vector<std::vector<double>>& x,
                 const std::vector<double>& residual, std::vector<int>& indices,
                 int begin, int end, int depth) const;

  Options opt_{};
  double base_ = 0.0;
  bool base_set_ = false;
  std::vector<Tree> trees_;
};

}  // namespace mcf
