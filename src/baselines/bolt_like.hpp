// BOLT-like baseline (paper §VI-A): template-based dual-GEMM fusion on
// top of cutlass-style back-to-back GEMM templates.
//
// Structural constraints reproduced from the paper:
//   * pattern table: plain GEMM->GEMM chains only — self-attention (the
//     softmax in the middle) has no matching pattern (§VI-B2),
//   * cutlass B2B constraint: the first GEMM's N dimension must fit the
//     thread-block tile (Tn == N), so very large intermediates have no
//     viable template (paper: BOLT degrades on G11/G12),
//   * sm86 (RTX 3080) unsupported (§VI-B1),
//   * every template instantiation is compiled and measured (mid tuning
//     cost in Table I/IV).
// When no template applies BOLT falls back to Relay-style per-op kernels
// with epilogue fusion.
#pragma once

#include "baselines/baseline.hpp"
#include "baselines/relay_like.hpp"
#include "search/space.hpp"

namespace mcf {

class BoltLikeBaseline {
 public:
  explicit BoltLikeBaseline(GpuSpec gpu);

  [[nodiscard]] SubgraphResult run(const ChainSpec& chain) const;

  /// True when the GPU architecture is supported (paper: no sm86).
  [[nodiscard]] bool supports_gpu() const;

 private:
  GpuSpec gpu_;
  RelayLikeBaseline relay_;
};

}  // namespace mcf
