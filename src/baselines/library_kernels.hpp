// Vendor-library kernel models (cuBLAS / cuDNN stand-ins).
//
// Library GEMM kernels tile the output, re-streaming A once per N-tile
// column and B once per M-tile row; the menu of tile configurations below
// mirrors cuBLAS'/cutlass' SM80 shapes and the dispatcher picks the
// fastest, which is what cuBLAS heuristics achieve in practice.
// Memory-intensive kernels (softmax, layernorm, elementwise) are
// bandwidth-bound streams.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "gpu/timing.hpp"
#include "measure/backend.hpp"

namespace mcf {

/// Tile configuration of a library GEMM kernel.
struct GemmConfig {
  std::int64_t tm = 128, tn = 128, tk = 32;
};

class LibraryKernels {
 public:
  /// Default: the simulator's roofline, exactly as before the measurement
  /// subsystem existed.
  explicit LibraryKernels(GpuSpec gpu)
      : gpu_(std::move(gpu)),
        backend_(std::make_shared<SimulatorBackend>(gpu_)) {}

  /// Library kernels timed through an arbitrary backend (its measure_raw
  /// path — library kernels have no Schedule to execute).
  LibraryKernels(GpuSpec gpu, std::shared_ptr<const MeasureBackend> backend)
      : gpu_(std::move(gpu)), backend_(std::move(backend)) {}

  [[nodiscard]] const GpuSpec& gpu() const noexcept { return gpu_; }
  [[nodiscard]] const MeasureBackend& backend() const noexcept {
    return *backend_;
  }

  /// Batched GEMM C[b,m,n] = A[b,m,k] * B[b,k,n]; menu-dispatched.
  /// `fused_epilogue_flops_per_elem` folds a pointwise epilogue into the
  /// kernel (Relay/BOLT-style epilogue fusion) at zero extra traffic.
  [[nodiscard]] KernelMeasurement gemm(std::int64_t batch, std::int64_t m,
                                       std::int64_t n, std::int64_t k,
                                       double fused_epilogue_flops_per_elem = 0.0) const;

  /// GEMM with one fixed configuration (no menu) — Relay's untuned
  /// template path.
  [[nodiscard]] KernelMeasurement gemm_fixed(std::int64_t batch, std::int64_t m,
                                             std::int64_t n, std::int64_t k,
                                             const GemmConfig& cfg,
                                             double fused_epilogue_flops_per_elem = 0.0) const;

  /// Row softmax over (rows, cols): read + write + reduction traffic.
  [[nodiscard]] KernelMeasurement softmax(std::int64_t rows, std::int64_t cols) const;

  /// LayerNorm over (rows, cols).
  [[nodiscard]] KernelMeasurement layernorm(std::int64_t rows, std::int64_t cols) const;

  /// Pointwise kernel over `elems` elements with `inputs` read streams
  /// (relu/gelu: 1, residual add: 2) and one write stream.
  [[nodiscard]] KernelMeasurement elementwise(std::int64_t elems, int inputs = 1,
                                              double flops_per_elem = 1.0) const;

 private:
  GpuSpec gpu_;
  std::shared_ptr<const MeasureBackend> backend_;
};

}  // namespace mcf
