// Shared result types for the §VI baselines.
#pragma once

#include <string>

namespace mcf {

/// What a framework spent while tuning one subgraph.  Table IV converts
/// these counters into modelled wall-clock with documented per-event costs
/// (bench/tuning_cost.hpp).
struct TuningCounters {
  int hardware_measurements = 0;  ///< compile+run trials on the device
  int model_trainings = 0;        ///< ML cost-model training rounds
  int templates_instantiated = 0; ///< BOLT-style template compilations
  double wall_seconds = 0.0;      ///< actual wall time of this implementation
};

/// One framework's result on one subgraph workload.
struct SubgraphResult {
  std::string method;
  bool supported = false;   ///< false: framework cannot handle the workload
  bool fused = false;       ///< produced a single fused kernel
  double time_s = 0.0;      ///< simulated execution time of the subgraph
  int kernel_launches = 0;
  TuningCounters tuning;
};

}  // namespace mcf
