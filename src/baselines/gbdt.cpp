#include "baselines/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.hpp"

namespace mcf {

double GbdtRegressor::Tree::predict(std::span<const double> x) const {
  int cur = 0;
  for (;;) {
    const Node& n = nodes[static_cast<std::size_t>(cur)];
    if (n.feature < 0) return n.value;
    cur = (x[static_cast<std::size_t>(n.feature)] <= n.threshold) ? n.left : n.right;
  }
}

int GbdtRegressor::build_node(Tree& tree,
                              const std::vector<std::vector<double>>& x,
                              const std::vector<double>& residual,
                              std::vector<int>& indices, int begin, int end,
                              int depth) const {
  const int node_id = static_cast<int>(tree.nodes.size());
  tree.nodes.push_back(Node{});

  const int count = end - begin;
  double sum = 0.0;
  for (int i = begin; i < end; ++i) sum += residual[static_cast<std::size_t>(indices[static_cast<std::size_t>(i)])];
  const double mean = sum / std::max(count, 1);
  tree.nodes[static_cast<std::size_t>(node_id)].value = mean;
  if (depth >= opt_.max_depth || count < 2 * opt_.min_samples_leaf) return node_id;

  // Best least-squares split over subsampled thresholds.
  const std::size_t num_features = x.front().size();
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  double parent_sse = 0.0;
  for (int i = begin; i < end; ++i) {
    const double r = residual[static_cast<std::size_t>(indices[static_cast<std::size_t>(i)])];
    parent_sse += (r - mean) * (r - mean);
  }
  std::vector<double> values;
  for (std::size_t f = 0; f < num_features; ++f) {
    values.clear();
    for (int i = begin; i < end; ++i) {
      values.push_back(x[static_cast<std::size_t>(indices[static_cast<std::size_t>(i)])][f]);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) continue;
    const std::size_t step =
        std::max<std::size_t>(1, values.size() / static_cast<std::size_t>(opt_.max_thresholds));
    for (std::size_t v = 0; v + 1 < values.size(); v += step) {
      const double thr = 0.5 * (values[v] + values[v + 1]);
      double ls = 0.0, rs = 0.0;
      int ln = 0, rn = 0;
      for (int i = begin; i < end; ++i) {
        const int idx = indices[static_cast<std::size_t>(i)];
        const double r = residual[static_cast<std::size_t>(idx)];
        if (x[static_cast<std::size_t>(idx)][f] <= thr) {
          ls += r;
          ++ln;
        } else {
          rs += r;
          ++rn;
        }
      }
      if (ln < opt_.min_samples_leaf || rn < opt_.min_samples_leaf) continue;
      // SSE reduction = parent_sse - (left_sse + right_sse); with fixed
      // sums this is the classic between-groups term.
      const double gain = ls * ls / ln + rs * rs / rn - sum * sum / count;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition indices in place.
  const auto mid_it = std::stable_partition(
      indices.begin() + begin, indices.begin() + end, [&](int idx) {
        return x[static_cast<std::size_t>(idx)][static_cast<std::size_t>(best_feature)] <=
               best_threshold;
      });
  const int mid = static_cast<int>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;

  tree.nodes[static_cast<std::size_t>(node_id)].feature = best_feature;
  tree.nodes[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build_node(tree, x, residual, indices, begin, mid, depth + 1);
  tree.nodes[static_cast<std::size_t>(node_id)].left = left;
  const int right = build_node(tree, x, residual, indices, mid, end, depth + 1);
  tree.nodes[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

GbdtRegressor::Tree GbdtRegressor::fit_tree(
    const std::vector<std::vector<double>>& x,
    const std::vector<double>& residual, std::vector<int>& indices) const {
  Tree tree;
  build_node(tree, x, residual, indices, 0, static_cast<int>(indices.size()), 0);
  return tree;
}

void GbdtRegressor::fit(const std::vector<std::vector<double>>& x,
                        const std::vector<double>& y) {
  MCF_CHECK(x.size() == y.size()) << "gbdt: X/y size mismatch";
  trees_.clear();
  base_set_ = false;
  base_ = 0.0;
  if (x.empty()) return;
  base_ = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(y.size());
  base_set_ = true;

  std::vector<double> pred(y.size(), base_);
  std::vector<double> residual(y.size(), 0.0);
  std::vector<int> indices(y.size());
  for (int t = 0; t < opt_.trees; ++t) {
    for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - pred[i];
    std::iota(indices.begin(), indices.end(), 0);
    Tree tree = fit_tree(x, residual, indices);
    if (tree.nodes.size() <= 1 && t > 0) break;  // nothing left to fit
    for (std::size_t i = 0; i < y.size(); ++i) {
      pred[i] += opt_.learning_rate * tree.predict(x[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

double GbdtRegressor::predict(std::span<const double> features) const {
  double out = base_;
  for (const auto& t : trees_) out += opt_.learning_rate * t.predict(features);
  return out;
}

}  // namespace mcf
