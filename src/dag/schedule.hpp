// Scheduled candidate: a tiling expression + concrete tile sizes with
// Load/Compute/Store statements placed (paper §III-B).
//
// The Schedule is the single source of truth shared by
//   * dag/hoist.cpp    — DAG-based memory-statement motion,
//   * dag/volume.cpp   — static traffic / FLOP / shared-memory analysis,
//   * exec/interpreter — functional execution with dynamic counters,
//   * model/analytical — the paper's performance model (eqs 2-5).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ir/chain.hpp"
#include "ir/expr.hpp"
#include "support/inline_vec.hpp"

namespace mcf {

enum class StmtKind : std::uint8_t { Load, Compute, Store };

[[nodiscard]] const char* stmt_kind_name(StmtKind k) noexcept;

/// One primitive statement. Load/Store reference `tensor`; Compute
/// references `op`. `covered_loops` lists index-loops a hoisted store
/// jumped over: its per-trip bytes cover all resident tiles of those loops.
struct Statement {
  StmtKind kind = StmtKind::Load;
  int tensor = -1;
  int op = -1;
  std::vector<int> covered_loops;
};

/// Options controlling schedule construction; baselines flip these to model
/// the limitations the paper attributes to Ansor / Chimera (§II-B(b)).
struct ScheduleOptions {
  /// Hoist memory statements to the outermost relevant loop (standard
  /// optimization, present in Ansor and Chimera).
  bool hoist = true;
  /// Additionally collapse loops whose extent is 1 and hoist through them
  /// (the paper's Fig. 4(b)/Fig. 5(b) optimization, unique to MCFuser).
  bool collapse_unit_loops = true;
};

/// A fully-placed schedule. Node 0 is the root scope.  Children are in
/// execution order; statement nodes are leaves.
class Schedule {
 public:
  struct Node {
    int loop = -1;                ///< loop id for scope nodes, -1 otherwise
    bool is_stmt = false;
    Statement stmt;               ///< valid when is_stmt
    int parent = -1;
    /// Ordered; empty for statements.  Inline storage: child lists are
    /// tiny and schedule construction is the tuner's hot path.
    InlineVec<int, 6> children;
  };

  [[nodiscard]] const ChainSpec& chain() const noexcept { return *chain_; }
  [[nodiscard]] const InlineVec<std::int64_t, 8>& tiles() const noexcept { return tiles_; }
  [[nodiscard]] const InlineVec<std::int64_t, 8>& extents() const noexcept { return extents_; }
  [[nodiscard]] const InlineVec<int, 6>& block_loops() const noexcept { return block_loops_; }

  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const Node& node(int i) const { return nodes_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int root() const noexcept { return 0; }

  /// Statement node indices in execution (pre-)order.
  [[nodiscard]] std::vector<int> statements_in_order() const;

  /// Number of thread blocks of the fused kernel (batch x block loop extents).
  [[nodiscard]] std::int64_t num_blocks() const;

  /// Per-tensor count of simultaneously-resident shared-memory tiles
  /// (paper Rule 2 quantity).  Computed at build time.
  [[nodiscard]] const InlineVec<std::int64_t, 8>& resident_tiles() const noexcept { return resident_; }

  /// Per-tensor loops whose extents multiply into resident_tiles(); the
  /// interpreter uses them to address multi-tile buffers.
  [[nodiscard]] const InlineVec<int, 6>& resident_loops(int t) const {
    return resident_loops_.at(static_cast<std::size_t>(t));
  }

  /// False when a consumer reads a producer tile before its reduction
  /// completes (Fig. 6(b) partial-tile schedules) — pruned by Rule 2.
  [[nodiscard]] bool consume_complete() const noexcept { return consume_complete_; }

  /// True when every operator found a legal placement.
  [[nodiscard]] bool valid() const noexcept { return valid_; }

  /// Product of extents of the tree-loop ancestors of node `i`
  /// (the statement trip count of eq. 3/4).
  [[nodiscard]] double trip_count(int i) const;

  /// Tile footprint of tensor `t` in elements: product of tile sizes over
  /// its index loops.
  [[nodiscard]] std::int64_t tile_elems(int t) const;

  /// Human-readable pseudo-code (paper Fig. 4 style).
  [[nodiscard]] std::string to_pseudo() const;

 private:
  const ChainSpec* chain_ = nullptr;
  InlineVec<std::int64_t, 8> tiles_;
  InlineVec<std::int64_t, 8> extents_;
  InlineVec<int, 6> block_loops_;
  std::vector<Node> nodes_;
  InlineVec<std::int64_t, 8> resident_;
  std::vector<InlineVec<int, 6>> resident_loops_;
  bool consume_complete_ = true;
  bool valid_ = true;

  friend struct ScheduleBuilderAccess;
};

/// Builds a schedule for `chain` from expression structure + tile sizes.
/// Tile sizes are given per loop id and are clamped to the loop dimension.
[[nodiscard]] Schedule build_schedule(const ChainSpec& chain,
                                      const TileExpr& expr,
                                      std::span<const std::int64_t> tiles,
                                      const ScheduleOptions& options = {});

// --- internals shared with hoist.cpp ---------------------------------------
namespace detail {
/// Moves memory statements outward (paper §III-B); updates covered_loops.
void hoist_memory_statements(Schedule& s, const ScheduleOptions& options);
/// Recomputes per-tensor resident tile counts after hoisting.
void compute_residency(Schedule& s);
/// Index loops of tensor `t` present in the schedule tree.
[[nodiscard]] std::vector<int> tree_index_loops(const Schedule& s, int t);
}  // namespace detail

}  // namespace mcf
