// Static volume analysis: exact global-memory traffic, FLOP counts and
// statement trip counts of a Schedule (the quantities of the paper's
// eqs. (3)/(4)).  For affine tiled tensor programs these counts are exact;
// the functional interpreter cross-checks them dynamically in the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/schedule.hpp"

namespace mcf {

struct VolumeOptions {
  /// Global-memory element size used for traffic/footprints (fp16 on the
  /// modelled hardware; functional execution is fp32 but counts elements
  /// identically).
  int dtype_bytes = 2;
};

/// Per-statement static volume record.
struct StmtVolume {
  int node = -1;                 ///< schedule node index
  StmtKind kind = StmtKind::Load;
  int tensor = -1;               ///< for Load/Store
  int op = -1;                   ///< for Compute
  double trips_per_block = 0.0;  ///< product of surrounding loop extents
  double bytes_per_trip = 0.0;   ///< 0 for Compute
  double flops_per_trip = 0.0;   ///< 0 for Load/Store
  std::int64_t row_elems = 0;    ///< contiguous innermost-dim elements moved
  std::int64_t tile_m = 0, tile_red = 0, tile_col = 0;  ///< Compute tile dims
};

/// Aggregate per-kernel volumes (totals over all thread blocks).
struct VolumeReport {
  double n_blocks = 0.0;
  double load_bytes = 0.0;
  double store_bytes = 0.0;
  double flops = 0.0;           ///< contraction FLOPs (2*Tm*Tr*Tc per trip)
  double epilogue_flops = 0.0;  ///< softmax / relu / rescale work
  double stmt_trips = 0.0;      ///< total statement executions (issue cost)
  std::vector<StmtVolume> stmts;

  [[nodiscard]] double total_bytes() const noexcept { return load_bytes + store_bytes; }
  [[nodiscard]] double total_flops() const noexcept { return flops + epilogue_flops; }
};

/// Analyzes a valid schedule. The schedule need not be consume-complete
/// (analysis is still well-defined; such candidates are pruned elsewhere).
[[nodiscard]] VolumeReport analyze_volume(const Schedule& s,
                                          const VolumeOptions& options = {});

}  // namespace mcf
