// DAG-based memory-access optimization (paper §III-B, Figs. 4/5).
//
// Loads hoist outward past loops that do not index their tensor; with
// `collapse_unit_loops` they additionally pass loops whose extent is 1
// (the paper's dead-node removal, Fig. 5(b)).  Stores behave the same and
// are additionally *forced* out of the loops their tensor accumulates
// over, recording any jumped index loops in `covered_loops` (their tiles
// are all resident, so one store statement covers them).
#include <algorithm>
#include <vector>

#include "dag/schedule.hpp"
#include "dag/schedule_internal.hpp"
#include "support/logging.hpp"

namespace mcf::detail {

namespace {

/// True when loop `l` indexes tensor `t`.
bool loop_indexes(const ChainSpec& chain, int t, int l) {
  const auto& loops = chain.tensor(t).loops;
  return std::find(loops.begin(), loops.end(), l) != loops.end();
}

/// Removes node `idx` from its parent's child list.
void detach(std::vector<Schedule::Node>& nodes, int idx) {
  auto& siblings = nodes[static_cast<std::size_t>(nodes[static_cast<std::size_t>(idx)].parent)].children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), idx));
}

/// Inserts node `idx` into `parent`'s children right before/after `anchor`.
void insert_relative(std::vector<Schedule::Node>& nodes, int idx, int parent,
                     int anchor, bool after) {
  auto& siblings = nodes[static_cast<std::size_t>(parent)].children;
  auto it = std::find(siblings.begin(), siblings.end(), anchor);
  MCF_CHECK(it != siblings.end()) << "anchor not found during hoist";
  if (after) ++it;
  siblings.insert(it, idx);
  nodes[static_cast<std::size_t>(idx)].parent = parent;
}

/// The reduction loop the tensor accumulates over (producer's reduction),
/// or -1 for graph inputs/weights.
int accumulation_loop(const ChainSpec& chain, int t) {
  const int producer = chain.tensor(t).producer_op;
  return producer < 0 ? -1 : chain.reduction_loop(producer);
}

/// True when some strict ancestor scope of `node_idx` is loop `l`.
bool inside_loop(const std::vector<Schedule::Node>& nodes, int node_idx, int l) {
  for (int cur = nodes[static_cast<std::size_t>(node_idx)].parent; cur != -1;
       cur = nodes[static_cast<std::size_t>(cur)].parent) {
    if (!nodes[static_cast<std::size_t>(cur)].is_stmt &&
        nodes[static_cast<std::size_t>(cur)].loop == l)
      return true;
  }
  return false;
}

}  // namespace

void hoist_memory_statements(Schedule& s, const ScheduleOptions& options) {
  auto& nodes = ScheduleBuilderAccess::nodes(s);
  const ChainSpec& chain = s.chain();

  for (int i = 1; i < static_cast<int>(nodes.size()); ++i) {
    if (!nodes[static_cast<std::size_t>(i)].is_stmt) continue;
    Statement& st = nodes[static_cast<std::size_t>(i)].stmt;
    if (st.kind == StmtKind::Compute) continue;
    const int t = st.tensor;
    const int acc = (st.kind == StmtKind::Store) ? accumulation_loop(chain, t) : -1;

    for (;;) {
      const int parent = nodes[static_cast<std::size_t>(i)].parent;
      if (parent == s.root() || parent < 0) break;
      const auto& pn = nodes[static_cast<std::size_t>(parent)];
      if (pn.is_stmt) break;  // defensive; statements are leaves
      const int l = pn.loop;
      const bool unit = s.extents()[static_cast<std::size_t>(l)] <= 1;
      const bool indexes = loop_indexes(chain, t, l);

      bool may_hoist = !indexes || (options.collapse_unit_loops && unit);
      bool forced = false;
      if (!may_hoist && st.kind == StmtKind::Store) {
        // Forced continuation: the tensor accumulates over a loop further
        // out, so the store cannot stay inside; record the jumped index
        // loop — the store covers all its resident tiles.
        const bool acc_outside =
            acc >= 0 && s.extents()[static_cast<std::size_t>(acc)] > 1 &&
            inside_loop(nodes, parent, acc);
        if (acc_outside) {
          may_hoist = true;
          forced = !unit;
        }
      }
      if (!may_hoist) break;
      if (forced) st.covered_loops.push_back(l);
      const int grandparent = pn.parent;
      detach(nodes, i);
      insert_relative(nodes, i, grandparent, parent,
                      /*after=*/st.kind == StmtKind::Store);
    }
  }
}

void compute_residency(Schedule& s) {
  auto& nodes = ScheduleBuilderAccess::nodes(s);
  const ChainSpec& chain = s.chain();
  auto& resident = ScheduleBuilderAccess::resident(s);
  auto& resident_loops = ScheduleBuilderAccess::resident_loops(s);
  resident.assign(static_cast<std::size_t>(chain.num_tensors()), 1);
  resident_loops.assign(static_cast<std::size_t>(chain.num_tensors()), {});

  // Map loop id -> scope node (loops appear at most once in the tree).
  auto loop_node = [&](int l) {
    for (int i = 1; i < static_cast<int>(nodes.size()); ++i) {
      if (!nodes[static_cast<std::size_t>(i)].is_stmt &&
          nodes[static_cast<std::size_t>(i)].loop == l)
        return i;
    }
    return -1;
  };
  // Inline storage: residency runs once per candidate schedule on the
  // tuner's hot path, and these paths are at most tree-depth long.
  auto path = [&](int idx) {
    InlineVec<int, 16> p;
    for (int cur = idx; cur != -1; cur = nodes[static_cast<std::size_t>(cur)].parent)
      p.push_back(cur);
    std::reverse(p.begin(), p.end());
    return p;
  };

  for (int t = 0; t < chain.num_tensors(); ++t) {
    // Statements touching tensor t: its loads/stores plus the computes of
    // its producer and consumer ops.
    InlineVec<int, 16> touch;
    for (int i = 1; i < static_cast<int>(nodes.size()); ++i) {
      const auto& n = nodes[static_cast<std::size_t>(i)];
      if (!n.is_stmt) continue;
      const Statement& st = n.stmt;
      if (st.kind == StmtKind::Compute) {
        const int op = st.op;
        if (chain.op_output_tensor(op) == t || chain.op_input_tensor(op) == t ||
            chain.op_weight_tensor(op) == t) {
          touch.push_back(i);
        }
      } else if (st.tensor == t) {
        touch.push_back(i);
      }
    }
    if (touch.empty()) continue;

    // Lowest common ancestor scope of all touching statements.
    InlineVec<int, 16> lca_path = path(touch[0]);
    std::size_t lca_len = lca_path.size();
    for (std::size_t k = 1; k < touch.size(); ++k) {
      const auto p2 = path(touch[k]);
      std::size_t j = 0;
      while (j < lca_len && j < p2.size() && lca_path[j] == p2[j]) ++j;
      lca_len = j;
    }
    // Strip trailing statement nodes from the LCA path (scope only).
    while (lca_len > 0 &&
           nodes[static_cast<std::size_t>(lca_path[lca_len - 1])].is_stmt) {
      --lca_len;
    }
    MCF_CHECK(lca_len > 0) << "LCA must at least contain the root";
    int lca = lca_path[lca_len - 1];

    // Accumulated tensors persist across their reduction loop: lift the
    // allocation scope above it.
    const int acc = accumulation_loop(chain, t);
    if (acc >= 0 && s.extents()[static_cast<std::size_t>(acc)] > 1) {
      const int acc_node = loop_node(acc);
      if (acc_node >= 0) {
        // If acc_node is on lca's root-path (ancestor-or-equal), move the
        // allocation scope to acc's parent.
        for (int cur = lca; cur != -1; cur = nodes[static_cast<std::size_t>(cur)].parent) {
          if (cur == acc_node) {
            lca = nodes[static_cast<std::size_t>(acc_node)].parent;
            break;
          }
        }
      }
    }

    // Resident tiles: product of extents of index loops of t that are
    // strict descendants of the allocation scope and ancestors of a
    // touching statement.
    std::int64_t count = 1;
    for (const int l : chain.tensor(t).loops) {
      const int ln = loop_node(l);
      if (ln < 0) continue;  // block-bound or absent
      // Strict descendant of lca?
      bool below = false;
      for (int cur = nodes[static_cast<std::size_t>(ln)].parent; cur != -1;
           cur = nodes[static_cast<std::size_t>(cur)].parent) {
        if (cur == lca) {
          below = true;
          break;
        }
      }
      if (!below) continue;
      bool over_stmt = false;
      for (const int ti : touch) {
        for (int cur = nodes[static_cast<std::size_t>(ti)].parent; cur != -1;
             cur = nodes[static_cast<std::size_t>(cur)].parent) {
          if (cur == ln) {
            over_stmt = true;
            break;
          }
        }
        if (over_stmt) break;
      }
      if (over_stmt) {
        count *= s.extents()[static_cast<std::size_t>(l)];
        if (s.extents()[static_cast<std::size_t>(l)] > 1) {
          resident_loops[static_cast<std::size_t>(t)].push_back(l);
        }
      }
    }
    resident[static_cast<std::size_t>(t)] = count;
  }
}

}  // namespace mcf::detail
