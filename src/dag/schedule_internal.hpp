// Library-internal accessor for Schedule private state, shared by
// schedule.cpp and hoist.cpp.  Not part of the public API.
#pragma once

#include "dag/schedule.hpp"

namespace mcf {

struct ScheduleBuilderAccess {
  static std::vector<Schedule::Node>& nodes(Schedule& s) { return s.nodes_; }
  static InlineVec<std::int64_t, 8>& tiles(Schedule& s) { return s.tiles_; }
  static InlineVec<std::int64_t, 8>& extents(Schedule& s) { return s.extents_; }
  static InlineVec<std::int64_t, 8>& resident(Schedule& s) { return s.resident_; }
  static std::vector<InlineVec<int, 6>>& resident_loops(Schedule& s) {
    return s.resident_loops_;
  }
  static void set_consume_complete(Schedule& s, bool v) { s.consume_complete_ = v; }
  static void set_valid(Schedule& s, bool v) { s.valid_ = v; }
  static void init(Schedule& s, const ChainSpec& chain,
                   InlineVec<std::int64_t, 8> tiles,
                   InlineVec<std::int64_t, 8> extents,
                   InlineVec<int, 6> block_loops) {
    s.chain_ = &chain;
    s.tiles_ = std::move(tiles);
    s.extents_ = std::move(extents);
    s.block_loops_ = std::move(block_loops);
    s.nodes_.clear();
    s.nodes_.push_back(Schedule::Node{});
  }
};

}  // namespace mcf
