#include "dag/volume.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace mcf {

namespace {

/// FLOPs charged per element for fused epilogues (exp/max/sum for online
/// softmax; compare/select for relu).  Constants shared with the
/// analytical model so estimate and "hardware" agree on definitions.
constexpr double kSoftmaxFlopsPerElem = 8.0;
constexpr double kReluFlopsPerElem = 1.0;
constexpr double kGeluFlopsPerElem = 8.0;  // tanh approximation
/// Rescale cost per output element per streaming step (online softmax
/// running-max correction of the consumer accumulator).
constexpr double kRescaleFlopsPerElem = 4.0;

}  // namespace

VolumeReport analyze_volume(const Schedule& s, const VolumeOptions& options) {
  MCF_CHECK(s.valid()) << "cannot analyze an invalid schedule";
  const ChainSpec& chain = s.chain();
  VolumeReport rep;
  rep.n_blocks = static_cast<double>(s.num_blocks());
  const double dtype = static_cast<double>(options.dtype_bytes);

  const auto stmts = s.statements_in_order();
  rep.stmts.reserve(stmts.size());
  for (const int idx : stmts) {
    const Statement& st = s.node(idx).stmt;
    StmtVolume v;
    v.node = idx;
    v.kind = st.kind;
    v.tensor = st.tensor;
    v.op = st.op;
    v.trips_per_block = s.trip_count(idx);

    if (st.kind == StmtKind::Compute) {
      const int op = st.op;
      v.tile_m = s.tiles()[0];
      v.tile_red = s.tiles()[static_cast<std::size_t>(chain.reduction_loop(op))];
      v.tile_col = s.tiles()[static_cast<std::size_t>(chain.out_col_loop(op))];
      v.flops_per_trip = 2.0 * static_cast<double>(v.tile_m) *
                         static_cast<double>(v.tile_red) *
                         static_cast<double>(v.tile_col);
      rep.flops += v.flops_per_trip * v.trips_per_block;

      // Epilogue on this op's output: executes once per completed tile,
      // i.e. the compute trips divided by the reduction extent.
      const Epilogue epi = chain.epilogue(op);
      if (epi != Epilogue::None) {
        const int red = chain.reduction_loop(op);
        const double red_ext =
            static_cast<double>(s.extents()[static_cast<std::size_t>(red)]);
        const double epi_trips = v.trips_per_block / std::max(1.0, red_ext);
        const double per_elem = (epi == Epilogue::OnlineSoftmax)
                                    ? kSoftmaxFlopsPerElem
                                    : (epi == Epilogue::Gelu ? kGeluFlopsPerElem
                                                             : kReluFlopsPerElem);
        rep.epilogue_flops += epi_trips * per_elem *
                              static_cast<double>(v.tile_m) *
                              static_cast<double>(v.tile_col);
      }
      // Rescale when this op consumes an online-softmax output: the
      // accumulator is corrected on every streaming step.
      if (op > 0 && chain.epilogue(op - 1) == Epilogue::OnlineSoftmax) {
        rep.epilogue_flops += v.trips_per_block * kRescaleFlopsPerElem *
                              static_cast<double>(v.tile_m) *
                              static_cast<double>(v.tile_col);
      }
    } else {
      const int t = st.tensor;
      double bytes = static_cast<double>(s.tile_elems(t)) * dtype;
      for (const int l : st.covered_loops) {
        bytes *= static_cast<double>(s.extents()[static_cast<std::size_t>(l)]);
      }
      v.bytes_per_trip = bytes;
      // Contiguity: elements along the tensor's innermost (column) loop.
      const auto& loops = chain.tensor(t).loops;
      v.row_elems = s.tiles()[static_cast<std::size_t>(loops.back())];
      if (st.kind == StmtKind::Load) {
        rep.load_bytes += bytes * v.trips_per_block;
      } else {
        rep.store_bytes += bytes * v.trips_per_block;
      }
    }
    rep.stmt_trips += v.trips_per_block;
    rep.stmts.push_back(v);
  }

  // Scale per-block quantities to whole-kernel totals.
  rep.load_bytes *= rep.n_blocks;
  rep.store_bytes *= rep.n_blocks;
  rep.flops *= rep.n_blocks;
  rep.epilogue_flops *= rep.n_blocks;
  rep.stmt_trips *= rep.n_blocks;
  return rep;
}

}  // namespace mcf
