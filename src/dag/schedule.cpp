#include "dag/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "dag/schedule_internal.hpp"
#include "support/logging.hpp"

namespace mcf {

const char* stmt_kind_name(StmtKind k) noexcept {
  switch (k) {
    case StmtKind::Load:
      return "Load";
    case StmtKind::Compute:
      return "Compute";
    case StmtKind::Store:
      return "Store";
  }
  return "?";
}

std::vector<int> Schedule::statements_in_order() const {
  std::vector<int> out;
  out.reserve(nodes_.size());
  // Iterative pre-order traversal respecting child order.
  InlineVec<int, 32> stack;
  stack.push_back(root());
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.truncate(stack.size() - 1);
    const Node& n = node(cur);
    if (n.is_stmt) out.push_back(cur);
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

std::int64_t Schedule::num_blocks() const {
  std::int64_t blocks = chain_->batch();
  for (const int l : block_loops_) {
    blocks *= extents_[static_cast<std::size_t>(l)];
  }
  return blocks;
}

double Schedule::trip_count(int i) const {
  double trips = 1.0;
  for (int cur = node(i).parent; cur != -1; cur = node(cur).parent) {
    const Node& n = node(cur);
    if (n.loop >= 0) {
      trips *= static_cast<double>(extents_[static_cast<std::size_t>(n.loop)]);
    }
  }
  return trips;
}

std::int64_t Schedule::tile_elems(int t) const {
  std::int64_t elems = 1;
  for (const int l : chain_->tensor(t).loops) {
    elems *= tiles_[static_cast<std::size_t>(l)];
  }
  return elems;
}

std::string Schedule::to_pseudo() const {
  std::ostringstream os;
  // Header: block bindings.
  os << "blockIdx <- (batch";
  for (const int l : block_loops_) os << ", " << chain_->loop_name(l);
  os << ")\n";
  // Recursive body.
  struct Printer {
    const Schedule& s;
    std::ostringstream& os;
    void print(int idx, int depth) {
      const Node& n = s.node(idx);
      const std::string ind(static_cast<std::size_t>(depth) * 2, ' ');
      if (n.is_stmt) {
        const Statement& st = n.stmt;
        os << ind << stmt_kind_name(st.kind) << "(";
        if (st.kind == StmtKind::Compute) {
          os << "tile " << s.chain().tensor(s.chain().op_output_tensor(st.op)).name;
        } else {
          os << "tile " << s.chain().tensor(st.tensor).name;
        }
        os << ")";
        if (!st.covered_loops.empty()) {
          os << "  # covers loops:";
          for (const int l : st.covered_loops) os << " " << s.chain().loop_name(l);
        }
        os << "\n";
        return;
      }
      int next_depth = depth;
      if (n.loop >= 0) {
        os << ind << "for " << s.chain().loop_name(n.loop) << " in range("
           << s.extents()[static_cast<std::size_t>(n.loop)] << "):"
           << "  # tile=" << s.tiles()[static_cast<std::size_t>(n.loop)] << "\n";
        next_depth = depth + 1;
      }
      for (const int c : n.children) print(c, next_depth);
    }
  };
  Printer{*this, os}.print(root(), 0);
  return os.str();
}

namespace detail {

std::vector<int> tree_index_loops(const Schedule& s, int t) {
  std::vector<int> out;
  const auto& loops = s.chain().tensor(t).loops;
  for (int i = 1; i < s.num_nodes(); ++i) {
    const auto& n = s.node(i);
    if (n.is_stmt || n.loop < 0) continue;
    if (std::find(loops.begin(), loops.end(), n.loop) != loops.end()) {
      out.push_back(n.loop);
    }
  }
  return out;
}

}  // namespace detail

namespace {

/// Finds the deepest scope node hosting op `op`: a node whose loop is
/// related to the op and whose root-path contains all tree-resident
/// related loops.  Returns -1 when the expression cannot host the op.
int find_compute_scope(const Schedule& s, const std::vector<Schedule::Node>& nodes,
                       const InlineVec<int, 8>& related_in_tree) {
  (void)s;
  if (related_in_tree.empty()) return 0;  // everything block-bound
  int best = -1;
  int best_depth = -1;
  for (int i = 1; i < static_cast<int>(nodes.size()); ++i) {
    const auto& n = nodes[static_cast<std::size_t>(i)];
    if (n.is_stmt || n.loop < 0) continue;
    if (std::find(related_in_tree.begin(), related_in_tree.end(), n.loop) ==
        related_in_tree.end()) {
      continue;
    }
    // Collect loops on the path root..i.
    InlineVec<int, 16> path_loops;
    int depth = 0;
    for (int cur = i; cur != -1; cur = nodes[static_cast<std::size_t>(cur)].parent) {
      const auto& pn = nodes[static_cast<std::size_t>(cur)];
      if (pn.loop >= 0) path_loops.push_back(pn.loop);
      ++depth;
    }
    bool covers = true;
    for (const int l : related_in_tree) {
      if (std::find(path_loops.begin(), path_loops.end(), l) == path_loops.end()) {
        covers = false;
        break;
      }
    }
    if (covers && depth > best_depth) {
      best = i;
      best_depth = depth;
    }
  }
  return best;
}

}  // namespace

Schedule build_schedule(const ChainSpec& chain, const TileExpr& expr,
                        std::span<const std::int64_t> tiles,
                        const ScheduleOptions& options) {
  MCF_CHECK(static_cast<int>(tiles.size()) == chain.num_loops())
      << "tile vector must cover every loop";
  Schedule s;
  InlineVec<std::int64_t, 8> tile_vec;
  tile_vec.assign(tiles.begin(), tiles.end());
  InlineVec<std::int64_t, 8> extents;
  extents.resize(tile_vec.size());
  for (std::size_t l = 0; l < tile_vec.size(); ++l) {
    const std::int64_t dim = chain.loop_dim(static_cast<int>(l));
    tile_vec[l] = std::clamp<std::int64_t>(tile_vec[l], 1, dim);
    extents[l] = (dim + tile_vec[l] - 1) / tile_vec[l];
  }
  const std::vector<int> expr_block = expr.block_loops();
  InlineVec<int, 6> block;
  block.assign(expr_block.begin(), expr_block.end());
  std::sort(block.begin(), block.end());
  ScheduleBuilderAccess::init(s, chain, std::move(tile_vec), std::move(extents),
                              std::move(block));
  auto& nodes = ScheduleBuilderAccess::nodes(s);
  // Exact upper bound: the expression's loop nodes plus at most two loads,
  // one compute and one store per operator.  A single reservation keeps
  // node reallocation (and the per-node children copies it drags along)
  // off the tuner's evaluation hot path.
  nodes.reserve(static_cast<std::size_t>(expr.num_nodes()) +
                4 * static_cast<std::size_t>(chain.num_ops()));

  // 1. Copy the loop tree.
  InlineVec<int, 16> expr_to_sched;
  expr_to_sched.assign(static_cast<std::size_t>(expr.num_nodes()), -1);
  expr_to_sched[0] = 0;
  // The expression tree is stored in creation order so parents precede
  // children; a single pass suffices.
  for (int i = 1; i < expr.num_nodes(); ++i) {
    const auto& en = expr.node(i);
    Schedule::Node n;
    n.loop = en.loop;
    n.parent = expr_to_sched[static_cast<std::size_t>(en.parent)];
    MCF_CHECK(n.parent >= 0) << "expression nodes out of order";
    const int idx = static_cast<int>(nodes.size());
    nodes.push_back(n);
    nodes[static_cast<std::size_t>(n.parent)].children.push_back(idx);
    expr_to_sched[static_cast<std::size_t>(i)] = idx;
  }

  // 2. Place compute statements in op order; attach loads before and the
  //    final store after (paper: loads/stores associated with the compute).
  InlineVec<int, 8> compute_node;
  compute_node.assign(static_cast<std::size_t>(chain.num_ops()), -1);
  for (int op = 0; op < chain.num_ops(); ++op) {
    InlineVec<int, 8> related_in_tree;
    for (const int l : chain.related_loops(op)) {
      bool bound = std::find(s.block_loops().begin(), s.block_loops().end(),
                             l) != s.block_loops().end();
      if (!bound) related_in_tree.push_back(l);
    }
    // Drop loops absent from the tree entirely (defensive; generation
    // always includes every unbound loop).
    const auto kept = std::remove_if(
        related_in_tree.begin(), related_in_tree.end(), [&](int l) {
          for (int i = 1; i < static_cast<int>(nodes.size()); ++i) {
            if (!nodes[static_cast<std::size_t>(i)].is_stmt &&
                nodes[static_cast<std::size_t>(i)].loop == l)
              return false;
          }
          return true;
        });
    related_in_tree.truncate(
        static_cast<std::size_t>(kept - related_in_tree.begin()));
    const int scope = find_compute_scope(s, nodes, related_in_tree);
    if (scope < 0) {
      ScheduleBuilderAccess::set_valid(s, false);
      return s;
    }
    auto append_stmt = [&nodes](int parent, Statement st) {
      Schedule::Node n;
      n.is_stmt = true;
      n.stmt = std::move(st);
      n.parent = parent;
      const int idx = static_cast<int>(nodes.size());
      nodes.push_back(n);
      nodes[static_cast<std::size_t>(parent)].children.push_back(idx);
      return idx;
    };
    // Loads: op input (only when it is a graph input; intermediates stay
    // resident in shared memory) and the weight operand.
    const int in_t = chain.op_input_tensor(op);
    if (chain.tensor(in_t).kind == TensorKind::Input) {
      append_stmt(scope, Statement{StmtKind::Load, in_t, -1, {}});
    }
    append_stmt(scope, Statement{StmtKind::Load, chain.op_weight_tensor(op), -1, {}});
    compute_node[static_cast<std::size_t>(op)] =
        append_stmt(scope, Statement{StmtKind::Compute, -1, op, {}});
    if (op == chain.num_ops() - 1) {
      append_stmt(scope, Statement{StmtKind::Store, chain.output_tensor(), -1, {}});
    }
  }

  // 3. Consume-complete check: a consumer must not sit inside its
  //    producer's (non-unit) reduction loop (Fig. 6(b) partial tiles).
  bool complete = true;
  for (int op = 1; op < chain.num_ops(); ++op) {
    const int red = chain.reduction_loop(op - 1);
    if (s.extents()[static_cast<std::size_t>(red)] <= 1) continue;
    // Find the reduction loop's node.
    int red_node = -1;
    for (int i = 1; i < static_cast<int>(nodes.size()); ++i) {
      if (!nodes[static_cast<std::size_t>(i)].is_stmt &&
          nodes[static_cast<std::size_t>(i)].loop == red) {
        red_node = i;
        break;
      }
    }
    if (red_node < 0) continue;
    for (int cur = compute_node[static_cast<std::size_t>(op)]; cur != -1;
         cur = nodes[static_cast<std::size_t>(cur)].parent) {
      if (cur == red_node) {
        complete = false;
        break;
      }
    }
  }
  ScheduleBuilderAccess::set_consume_complete(s, complete);

  // 4. Memory-statement hoisting (paper §III-B) and residency analysis.
  if (options.hoist) detail::hoist_memory_statements(s, options);
  detail::compute_residency(s);
  return s;
}

}  // namespace mcf
