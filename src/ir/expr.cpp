#include "ir/expr.hpp"

#include <algorithm>
#include <numeric>

#include "support/logging.hpp"

namespace mcf {

TileExpr::TileExpr() { nodes_.push_back(Node{}); }

int TileExpr::add_loop(int parent, int loop) {
  MCF_CHECK(parent >= 0 && parent < num_nodes()) << "bad parent " << parent;
  Node n;
  n.loop = loop;
  n.parent = parent;
  const int idx = num_nodes();
  nodes_.push_back(n);
  nodes_[static_cast<std::size_t>(parent)].children.push_back(idx);
  return idx;
}

std::vector<int> TileExpr::tree_loops() const {
  std::vector<int> out;
  for (int i = 1; i < num_nodes(); ++i) out.push_back(node(i).loop);
  return out;
}

int TileExpr::find_loop(int l) const {
  for (int i = 1; i < num_nodes(); ++i) {
    if (node(i).loop == l) return i;
  }
  return -1;
}

std::vector<int> TileExpr::path_from_root(int node_index) const {
  std::vector<int> path;
  for (int cur = node_index; cur != -1; cur = node(cur).parent) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool TileExpr::is_ancestor(int ancestor, int node_index) const {
  for (int cur = node_index; cur != -1; cur = node(cur).parent) {
    if (cur == ancestor) return true;
  }
  return false;
}

int TileExpr::depth() const {
  int best = 0;
  for (int i = 0; i < num_nodes(); ++i) {
    best = std::max(best, static_cast<int>(path_from_root(i).size()) - 1);
  }
  return best;
}

bool TileExpr::is_deep() const {
  for (int i = 0; i < num_nodes(); ++i) {
    if (node(i).children.size() > 1) return false;
  }
  return true;
}

void TileExpr::render(int node_index, const ChainSpec* chain,
                      std::string& out) const {
  const Node& n = node(node_index);
  if (n.loop >= 0) {
    out += chain ? std::string(1, chain->loop_name(n.loop))
                 : std::to_string(n.loop);
  }
  if (n.children.empty()) return;
  if (n.children.size() == 1) {
    render(n.children.front(), chain, out);
    return;
  }
  out += "(";
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    if (i) out += ",";
    render(n.children[i], chain, out);
  }
  out += ")";
}

std::string TileExpr::to_string(const ChainSpec& chain) const {
  std::string out;
  if (!block_loops_.empty()) {
    out += "[";
    for (const int l : block_loops_) out += chain.loop_name(l);
    out += "]";
  }
  render(root(), &chain, out);
  return out;
}

std::string TileExpr::structure_key() const {
  std::string out;
  for (const int l : block_loops_) {
    out += "b";
    out += std::to_string(l);
  }
  out += "|";
  render(root(), nullptr, out);
  return out;
}

TileExpr make_deep_expr(const ChainSpec& chain,
                        const std::vector<int>& loop_order) {
  MCF_CHECK(static_cast<int>(loop_order.size()) == chain.num_loops())
      << "deep expression must mention every loop";
  TileExpr expr;
  std::vector<int> block;
  int parent = expr.root();
  for (const int l : loop_order) {
    if (chain.is_global_spatial(l)) {
      block.push_back(l);  // Rule-1 canonical form: spatial -> blockIdx.
    } else {
      parent = expr.add_loop(parent, l);
    }
  }
  expr.set_block_loops(std::move(block));
  return expr;
}

TileExpr make_flat_expr(const ChainSpec& chain,
                        const std::vector<int>& outer_order,
                        const std::vector<int>& groups) {
  TileExpr expr;
  std::vector<int> block;
  int parent = expr.root();
  for (const int l : outer_order) {
    if (chain.is_global_spatial(l)) {
      block.push_back(l);
    } else {
      parent = expr.add_loop(parent, l);
    }
  }
  for (const int l : groups) {
    expr.add_loop(parent, l);  // sequential siblings in `parent`'s scope
  }
  expr.set_block_loops(std::move(block));
  return expr;
}

RawExpressions enumerate_expressions(const ChainSpec& chain) {
  RawExpressions out;
  const int nl = chain.num_loops();

  // Deep tilings: every permutation of all loops.
  std::vector<int> order(static_cast<std::size_t>(nl));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end());
  do {
    out.deep.push_back(make_deep_expr(chain, order));
  } while (std::next_permutation(order.begin(), order.end()));

  // Flat tilings: permutations of the shared loops (m plus the reduction
  // loops of ops 1..P-1) around the sequential group (op0's reduction, then
  // each later op's output-column loop).  For the paper's 2-GEMM chain this
  // yields exactly mn(k,h) and nm(k,h).
  std::vector<int> shared;
  shared.push_back(0);  // m
  for (int op = 1; op < chain.num_ops(); ++op) {
    shared.push_back(chain.reduction_loop(op));
  }
  std::vector<int> groups;
  groups.push_back(chain.reduction_loop(0));
  for (int op = 1; op < chain.num_ops(); ++op) {
    groups.push_back(chain.out_col_loop(op));
  }
  if (chain.num_ops() >= 2) {
    std::sort(shared.begin(), shared.end());
    do {
      out.flat.push_back(make_flat_expr(chain, shared, groups));
    } while (std::next_permutation(shared.begin(), shared.end()));
  }
  return out;
}

}  // namespace mcf
