// Operator-chain specification (the paper's MBCI operator chain, §III-A).
//
// A chain of P contraction operators sharing the row dimension M:
//
//   X1 = In0 (M x d0)  ·  W0 (d0 x d1)          -- op 0, reduces d0
//   X2 = X1  (M x d1)  ·  W1 (d1 x d2)          -- op 1, reduces d1
//   ...
//   Xp = X_{P-1}       ·  W_{P-1} (d_{P-1} x dP) -- final output (M x dP)
//
// The paper's 2-GEMM chain is inner = {K, N, H}; self-attention is the same
// chain with an OnlineSoftmax epilogue on op 0's output (Q·Kᵀ -> softmax ->
// ·V).  `batch` folds batch and attention heads into an implicit outermost
// spatial block dimension.
//
// Cross-tile loops (paper Fig. 3): loop 0 iterates tiles of M ("m"); loop
// j>=1 iterates tiles of inner[j-1] ("k", "n", "h", "g", ...).  Loop 1+i is
// the reduction loop of op i; loops 0 and P+... the chain output's spatial
// loops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcf {

/// Epilogue fused onto an operator's output tile (paper §III-A: standard
/// memory-intensive fusion; OnlineSoftmax enables attention chains).
enum class Epilogue : std::uint8_t { None, Relu, Gelu, OnlineSoftmax };

[[nodiscard]] const char* epilogue_name(Epilogue e) noexcept;

/// Role of a tensor inside the chain.
enum class TensorKind : std::uint8_t { Input, Weight, Intermediate, Output };

/// Static description of one tensor of the chain.
struct TensorInfo {
  std::string name;        ///< "A", "B", "D", "C", "E", ...
  TensorKind kind;
  std::vector<int> loops;  ///< loop ids indexing this tensor (row, col)
  int producer_op = -1;    ///< -1 for graph inputs
  int consumer_op = -1;    ///< -1 for the chain output
};

/// The chain itself. Instances are immutable after construction; all
/// derived metadata (loops, tensors, FLOP counts) is precomputed.
class ChainSpec {
 public:
  /// `inner` = {d0, d1, ..., dP}: P = inner.size()-1 operators.
  /// `epilogues` has one entry per operator (None-padded if shorter).
  ChainSpec(std::string name, std::int64_t batch, std::int64_t m,
            std::vector<std::int64_t> inner,
            std::vector<Epilogue> epilogues = {},
            float softmax_scale = 1.0f);

  /// Convenience factory: plain 2-GEMM chain (paper Table II rows).
  [[nodiscard]] static ChainSpec gemm_chain(std::string name,
                                            std::int64_t batch, std::int64_t m,
                                            std::int64_t n, std::int64_t k,
                                            std::int64_t h);

  /// Convenience factory: self-attention module (paper Table III rows).
  /// heads folds into batch; softmax scale defaults to 1/sqrt(K).
  [[nodiscard]] static ChainSpec attention(std::string name,
                                           std::int64_t heads, std::int64_t m,
                                           std::int64_t n, std::int64_t k,
                                           std::int64_t h);

  // ---- validation ---------------------------------------------------------
  /// True when construction-time validation passed.  Invalid chains (zero
  /// or negative dimensions, too few/many inner dims) carry the offending
  /// field in validation_error() instead of aborting; the FusionEngine
  /// surfaces them as FusionStatus::InvalidChain.  Derived metadata
  /// (tensors, loops) is only populated for valid chains.
  [[nodiscard]] bool valid() const noexcept { return error_.empty(); }
  /// Empty when valid(); otherwise names the offending field and value.
  [[nodiscard]] const std::string& validation_error() const noexcept { return error_; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int64_t batch() const noexcept { return batch_; }
  [[nodiscard]] std::int64_t m() const noexcept { return m_; }
  [[nodiscard]] const std::vector<std::int64_t>& inner() const noexcept { return inner_; }
  [[nodiscard]] int num_ops() const noexcept { return static_cast<int>(inner_.size()) - 1; }
  [[nodiscard]] Epilogue epilogue(int op) const { return epilogues_.at(static_cast<std::size_t>(op)); }
  [[nodiscard]] float softmax_scale() const noexcept { return softmax_scale_; }

  // ---- loops --------------------------------------------------------------
  /// Number of cross-tile loops (1 + number of inner dims).
  [[nodiscard]] int num_loops() const noexcept { return static_cast<int>(inner_.size()) + 1; }
  /// Extent of loop `l`'s dimension (m for l==0, inner[l-1] otherwise).
  [[nodiscard]] std::int64_t loop_dim(int l) const;
  /// Single-character display name: m, k, n, h, g, f...
  [[nodiscard]] char loop_name(int l) const;
  /// Reduction loop id of op i (== 1+i).
  [[nodiscard]] int reduction_loop(int op) const;
  /// Output-column loop id of op i (== 2+i).
  [[nodiscard]] int out_col_loop(int op) const;
  /// True when loop `l` is a reduction loop of no operator (m and the last
  /// column loop): these may always be bound to blockIdx.
  [[nodiscard]] bool is_global_spatial(int l) const;
  /// The three loops related to op i: {m, reduction, out-col}.
  [[nodiscard]] std::vector<int> related_loops(int op) const;

  // ---- tensors ------------------------------------------------------------
  [[nodiscard]] int num_tensors() const noexcept { return static_cast<int>(tensors_.size()); }
  [[nodiscard]] const TensorInfo& tensor(int t) const { return tensors_.at(static_cast<std::size_t>(t)); }
  /// Tensor id of op i's streamed input (In0 for i==0, else intermediate).
  [[nodiscard]] int op_input_tensor(int op) const;
  /// Tensor id of op i's weight operand.
  [[nodiscard]] int op_weight_tensor(int op) const;
  /// Tensor id of op i's output.
  [[nodiscard]] int op_output_tensor(int op) const;
  /// Tensor id of the chain output (== op_output_tensor(P-1)).
  [[nodiscard]] int output_tensor() const;

  // ---- global properties --------------------------------------------------
  /// Total multiply-add FLOPs of the chain (2*M*d_i*d_{i+1} per op, x batch),
  /// excluding epilogues.
  [[nodiscard]] double total_flops() const noexcept;
  /// Minimal global-memory traffic in elements: all inputs read once plus
  /// the output written once (the fused lower bound).
  [[nodiscard]] std::int64_t min_traffic_elems() const noexcept;
  /// One-line human-readable description.
  [[nodiscard]] std::string to_string() const;

 private:
  std::string name_;
  std::int64_t batch_;
  std::int64_t m_;
  std::vector<std::int64_t> inner_;
  std::vector<Epilogue> epilogues_;
  float softmax_scale_;
  std::string error_;  ///< empty = valid
  std::vector<TensorInfo> tensors_;
};

}  // namespace mcf
