#include "ir/chain.hpp"

#include <cmath>
#include <sstream>

#include "support/logging.hpp"

namespace mcf {

const char* epilogue_name(Epilogue e) noexcept {
  switch (e) {
    case Epilogue::None:
      return "none";
    case Epilogue::Relu:
      return "relu";
    case Epilogue::Gelu:
      return "gelu";
    case Epilogue::OnlineSoftmax:
      return "softmax";
  }
  return "?";
}

ChainSpec::ChainSpec(std::string name, std::int64_t batch, std::int64_t m,
                     std::vector<std::int64_t> inner,
                     std::vector<Epilogue> epilogues, float softmax_scale)
    : name_(std::move(name)),
      batch_(batch),
      m_(m),
      inner_(std::move(inner)),
      epilogues_(std::move(epilogues)),
      softmax_scale_(softmax_scale) {
  // Validation records the offending field instead of aborting: invalid
  // chains are inert (no derived metadata) and the engine reports them as
  // FusionStatus::InvalidChain.  Layers below the engine still fail fast
  // (SearchSpace checks valid() at construction).
  if (batch_ < 1) {
    error_ = "batch must be >= 1 (got " + std::to_string(batch_) + ")";
  } else if (m_ < 1) {
    error_ = "m must be >= 1 (got " + std::to_string(m_) + ")";
  } else if (inner_.size() < 2) {
    error_ = "inner needs >= 2 dims (one operator); got " +
             std::to_string(inner_.size());
  } else if (inner_.size() + 1 > 8) {
    // gpu loop naming (m,k,n,h,g,f,e,d) caps chains at 7 inner dims.
    error_ = "inner has too many dims (" + std::to_string(inner_.size()) +
             " > 7)";
  } else {
    for (std::size_t i = 0; i < inner_.size(); ++i) {
      if (inner_[i] < 1) {
        error_ = "inner[" + std::to_string(i) + "] must be >= 1 (got " +
                 std::to_string(inner_[i]) + ")";
        break;
      }
    }
  }
  // Pad the epilogue table whenever the operator count is well defined —
  // even for invalid chains, so shape accessors (chain_cache_key, digests)
  // stay safe to call on them.
  if (inner_.size() >= 2) {
    epilogues_.resize(static_cast<std::size_t>(num_ops()), Epilogue::None);
  }
  if (!error_.empty()) {
    MCF_LOG(Warn) << "ChainSpec '" << name_ << "': " << error_;
    return;
  }

  // Build the tensor table. Naming follows the paper's 2-GEMM example
  // (A x B -> C, C x D -> E); longer chains continue alphabetically.
  const int ops = num_ops();
  // In0 ("A"): indexed by m (loop 0) and d0 (loop 1).
  tensors_.push_back(TensorInfo{"A", TensorKind::Input, {0, 1}, -1, 0});
  // Weights: op i weight indexed by loops (1+i, 2+i).
  for (int i = 0; i < ops; ++i) {
    const std::string wname = (i == 0) ? "B" : std::string(1, static_cast<char>('B' + 2 * i));
    tensors_.push_back(
        TensorInfo{wname, TensorKind::Weight, {1 + i, 2 + i}, -1, i});
  }
  // Op outputs: X_{i+1} indexed by (m, 2+i); last one is the chain output.
  for (int i = 0; i < ops; ++i) {
    const bool last = (i == ops - 1);
    const std::string xname = std::string(1, static_cast<char>('C' + 2 * i));
    tensors_.push_back(TensorInfo{xname,
                                  last ? TensorKind::Output : TensorKind::Intermediate,
                                  {0, 2 + i},
                                  i,
                                  last ? -1 : i + 1});
  }
}

ChainSpec ChainSpec::gemm_chain(std::string name, std::int64_t batch,
                                std::int64_t m, std::int64_t n, std::int64_t k,
                                std::int64_t h) {
  return ChainSpec(std::move(name), batch, m, {k, n, h});
}

ChainSpec ChainSpec::attention(std::string name, std::int64_t heads,
                               std::int64_t m, std::int64_t n, std::int64_t k,
                               std::int64_t h) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(k));
  return ChainSpec(std::move(name), heads, m, {k, n, h},
                   {Epilogue::OnlineSoftmax, Epilogue::None}, scale);
}

std::int64_t ChainSpec::loop_dim(int l) const {
  MCF_CHECK(l >= 0 && l < num_loops()) << "loop id out of range: " << l;
  return l == 0 ? m_ : inner_.at(static_cast<std::size_t>(l - 1));
}

char ChainSpec::loop_name(int l) const {
  MCF_CHECK(l >= 0 && l < num_loops()) << "loop id out of range: " << l;
  // Canonical paper names for the first four; continue alphabetically.
  static constexpr char kNames[] = {'m', 'k', 'n', 'h', 'g', 'f', 'e', 'd'};
  MCF_CHECK(l < static_cast<int>(sizeof(kNames))) << "too many loops";
  return kNames[l];
}

int ChainSpec::reduction_loop(int op) const {
  MCF_CHECK(op >= 0 && op < num_ops()) << "op out of range";
  return 1 + op;
}

int ChainSpec::out_col_loop(int op) const {
  MCF_CHECK(op >= 0 && op < num_ops()) << "op out of range";
  return 2 + op;
}

bool ChainSpec::is_global_spatial(int l) const {
  MCF_CHECK(l >= 0 && l < num_loops()) << "loop id out of range";
  return l == 0 || l == num_loops() - 1;
}

std::vector<int> ChainSpec::related_loops(int op) const {
  return {0, reduction_loop(op), out_col_loop(op)};
}

int ChainSpec::op_input_tensor(int op) const {
  MCF_CHECK(op >= 0 && op < num_ops()) << "op out of range";
  if (op == 0) return 0;
  // Intermediate X_op: stored after the weight block.
  return 1 + num_ops() + (op - 1);
}

int ChainSpec::op_weight_tensor(int op) const {
  MCF_CHECK(op >= 0 && op < num_ops()) << "op out of range";
  return 1 + op;
}

int ChainSpec::op_output_tensor(int op) const {
  MCF_CHECK(op >= 0 && op < num_ops()) << "op out of range";
  return 1 + num_ops() + op;
}

int ChainSpec::output_tensor() const { return op_output_tensor(num_ops() - 1); }

double ChainSpec::total_flops() const noexcept {
  double fl = 0.0;
  for (int i = 0; i + 1 < static_cast<int>(inner_.size()); ++i) {
    fl += 2.0 * static_cast<double>(m_) * static_cast<double>(inner_[static_cast<std::size_t>(i)]) *
          static_cast<double>(inner_[static_cast<std::size_t>(i + 1)]);
  }
  return fl * static_cast<double>(batch_);
}

std::int64_t ChainSpec::min_traffic_elems() const noexcept {
  if (inner_.empty()) return 0;  // invalid chain (empty inner): no traffic
  std::int64_t elems = m_ * inner_.front();  // In0
  for (std::size_t i = 0; i + 1 < inner_.size(); ++i) {
    elems += inner_[i] * inner_[i + 1];  // weights
  }
  elems += m_ * inner_.back();  // output
  return elems * batch_;
}

std::string ChainSpec::to_string() const {
  std::ostringstream os;
  os << name_ << ": batch=" << batch_ << " M=" << m_ << " dims=[";
  for (std::size_t i = 0; i < inner_.size(); ++i) {
    if (i) os << ",";
    os << inner_[i];
  }
  os << "] ops=" << num_ops();
  for (int i = 0; i < num_ops(); ++i) {
    if (epilogue(i) != Epilogue::None) {
      os << " epi" << i << "=" << epilogue_name(epilogue(i));
    }
  }
  return os.str();
}

}  // namespace mcf
