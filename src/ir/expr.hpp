// Tiling expressions (paper §III-A).
//
// A tiling expression describes only the *structure* of the cross-tile
// loops of a fused kernel:
//   - Deep tiling: a linear nest, printed like "mhnk".
//   - Flat tiling: sibling loops executed sequentially in one scope,
//     printed like "mn(k,h)".
//
// Loops bound to blockIdx are removed from the tree and recorded in
// `block_loops` (paper pruning Rule 1 operates on the remaining per-block
// sub-expression).  Statements are *not* part of the expression; they are
// placed by dag/schedule.cpp per candidate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/chain.hpp"

namespace mcf {

/// An ordered loop tree.  Node 0 is always the synthetic root scope (no
/// loop); every other node carries a loop id from the ChainSpec.
class TileExpr {
 public:
  struct Node {
    int loop = -1;              ///< -1 for the root scope
    int parent = -1;            ///< node index, -1 for root
    std::vector<int> children;  ///< ordered child node indices
  };

  TileExpr();

  /// Adds a loop scope under `parent` (node index); returns new node index.
  int add_loop(int parent, int loop);

  [[nodiscard]] int root() const noexcept { return 0; }
  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const Node& node(int i) const { return nodes_.at(static_cast<std::size_t>(i)); }

  /// Loops bound to blockIdx (removed from the tree).  Order is the
  /// binding order (outermost first).
  [[nodiscard]] const std::vector<int>& block_loops() const noexcept { return block_loops_; }
  void set_block_loops(std::vector<int> loops) { block_loops_ = std::move(loops); }

  /// All loop ids present in the tree (pre-order).
  [[nodiscard]] std::vector<int> tree_loops() const;

  /// Node index of loop `l` in the tree, or -1 when absent / block-bound.
  [[nodiscard]] int find_loop(int l) const;

  /// Path of node indices root..node (inclusive).
  [[nodiscard]] std::vector<int> path_from_root(int node_index) const;

  /// True when `ancestor` is a (strict or equal) ancestor of `node_index`.
  [[nodiscard]] bool is_ancestor(int ancestor, int node_index) const;

  /// Depth of the tree (root = 0).
  [[nodiscard]] int depth() const;

  /// True when the tree is a single linear nest (deep tiling).
  [[nodiscard]] bool is_deep() const;

  /// Paper-style rendering, e.g. "mhnk" / "mn(k,h)"; block-bound loops are
  /// prefixed in brackets: "[mh]nk".
  [[nodiscard]] std::string to_string(const ChainSpec& chain) const;
  /// Canonical structural key independent of the chain (used for dedup).
  [[nodiscard]] std::string structure_key() const;

 private:
  void render(int node_index, const ChainSpec* chain, std::string& out) const;

  std::vector<Node> nodes_;
  std::vector<int> block_loops_;
};

/// Builds a deep (fully nested) expression from a loop order.  Global
/// spatial loops are stripped and bound to blockIdx (paper Rule 1
/// canonical form); the remaining loops are nested in the given order.
[[nodiscard]] TileExpr make_deep_expr(const ChainSpec& chain,
                                      const std::vector<int>& loop_order);

/// Builds a flat expression: `outer_order` nested, then the loops of
/// `groups` as ordered sequential siblings in the innermost scope.
/// Spatial loops in outer_order are stripped to blockIdx.
[[nodiscard]] TileExpr make_flat_expr(const ChainSpec& chain,
                                      const std::vector<int>& outer_order,
                                      const std::vector<int>& groups);

/// Enumerates the raw expression universe of the paper's search space:
/// all J! deep loop orders plus the flat expressions (permutations of the
/// shared loops around the per-op exclusive sequential group).  No
/// deduplication — Rule 1 happens in search/prune.cpp.
struct RawExpressions {
  std::vector<TileExpr> deep;
  std::vector<TileExpr> flat;
  [[nodiscard]] std::size_t total() const noexcept { return deep.size() + flat.size(); }
};
[[nodiscard]] RawExpressions enumerate_expressions(const ChainSpec& chain);

}  // namespace mcf
