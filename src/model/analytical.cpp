#include "model/analytical.hpp"

#include "support/logging.hpp"

namespace mcf {

AnalyticalEstimate AnalyticalModel::estimate(const VolumeReport& vol) const {
  AnalyticalEstimate e;
  e.mem_time_s = vol.total_bytes() / spec_.mem_bandwidth;     // eq. (3)
  e.comp_time_s = vol.total_flops() / spec_.peak_flops;       // eq. (4)
  const double nb = std::max(1.0, vol.n_blocks);
  e.alpha = (nb + static_cast<double>(spec_.num_sms)) / nb;   // eq. (5)
  e.time_s = (e.mem_time_s + e.comp_time_s) * e.alpha;        // eq. (2)
  return e;
}

AnalyticalEstimate AnalyticalModel::estimate(const Schedule& s) const {
  return estimate(analyze_volume(s));
}

}  // namespace mcf
