#include "model/analytical.hpp"

#include "support/logging.hpp"
#include "support/thread_pool.hpp"

namespace mcf {

AnalyticalEstimate AnalyticalModel::estimate(const VolumeReport& vol) const {
  AnalyticalEstimate e;
  e.mem_time_s = vol.total_bytes() / spec_.mem_bandwidth;     // eq. (3)
  e.comp_time_s = vol.total_flops() / spec_.peak_flops;       // eq. (4)
  const double nb = std::max(1.0, vol.n_blocks);
  e.alpha = (nb + static_cast<double>(spec_.num_sms)) / nb;   // eq. (5)
  e.time_s = (e.mem_time_s + e.comp_time_s) * e.alpha;        // eq. (2)
  return e;
}

AnalyticalEstimate AnalyticalModel::estimate(const Schedule& s) const {
  return estimate(analyze_volume(s));
}

std::vector<AnalyticalEstimate> AnalyticalModel::estimate_batch(
    std::span<const Schedule* const> schedules, ThreadPool* pool) const {
  std::vector<AnalyticalEstimate> out(schedules.size());
  auto body = [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] =
        estimate(*schedules[static_cast<std::size_t>(i)]);
  };
  if (pool != nullptr) {
    // Each estimate is a few microseconds: keep chunks coarse enough that
    // scheduling overhead stays negligible.
    pool->parallel_for(static_cast<std::int64_t>(schedules.size()), body,
                       /*grain=*/8);
  } else {
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(schedules.size()); ++i) {
      body(i);
    }
  }
  return out;
}

}  // namespace mcf
