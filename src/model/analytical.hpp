// The paper's analytical performance model (§IV-A, eqs. 2-5):
//
//   t_estm = (t_mem + t_comp) * alpha
//   t_mem  = sum_S  TS_S  * prod(extents of surrounding loops) / W     (3)
//   t_comp = sum_C  Fp_C  * prod(extents of surrounding loops) / P     (4)
//   alpha  = (N_block + N_SM) / N_block                                (5)
//
// Deliberately coarse: peak bandwidth/throughput only, memory and compute
// serialised, no transaction/tensor-core efficiencies, no wave
// quantization, no launch/issue overheads.  The timing simulator models
// all of those — their divergence is exactly the paper's Fig. 11 scatter.
#pragma once

#include <span>
#include <vector>

#include "dag/schedule.hpp"
#include "dag/volume.hpp"
#include "gpu/spec.hpp"

namespace mcf {

class ThreadPool;

struct AnalyticalEstimate {
  double time_s = 0.0;
  double mem_time_s = 0.0;
  double comp_time_s = 0.0;
  double alpha = 1.0;
};

class AnalyticalModel {
 public:
  explicit AnalyticalModel(GpuSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const GpuSpec& spec() const noexcept { return spec_; }

  /// Estimates a schedule (recomputes volumes).
  [[nodiscard]] AnalyticalEstimate estimate(const Schedule& s) const;

  /// Estimates from a precomputed volume report (hot path in the tuner).
  [[nodiscard]] AnalyticalEstimate estimate(const VolumeReport& vol) const;

  /// Estimates a whole candidate batch, fanning the (pure, side-effect
  /// free) per-schedule analysis across `pool` when one is given.  The
  /// result order matches the input order regardless of thread count.
  [[nodiscard]] std::vector<AnalyticalEstimate> estimate_batch(
      std::span<const Schedule* const> schedules, ThreadPool* pool) const;

 private:
  GpuSpec spec_;
};

}  // namespace mcf
