// Measurement value types shared by every MeasureBackend (simulator,
// interpreter, caching decorator, future hardware backends).
//
// Historically these lived in gpu/timing.hpp next to TimingSimulator; they
// moved here when measurement became a pluggable subsystem so that a
// backend implementation does not have to pull in the simulator.
// gpu/timing.hpp still re-exports both names — existing includes compile
// unchanged.
#pragma once

#include <cstdint>
#include <string>

namespace mcf {

struct MeasureOptions {
  /// Extra entropy mixed into the deterministic noise (e.g. workload name).
  /// Backends without synthetic noise (the interpreter) ignore it.
  std::uint64_t noise_seed = 0;
  /// Relative amplitude of the deterministic measurement noise.
  double noise_amp = 0.015;
  bool include_launch = true;
  /// Block fan-out cap for wall-clock native execution ("jit" /
  /// "jit-isolated"): <= 0 uses the full worker-slot pool, 1 measures
  /// single-threaded, T > 1 splits blocks into T contiguous chunks.
  /// Outputs are bit-identical for every value — only the timing moves —
  /// and model-based backends (simulator, interpreter) ignore it.
  int exec_threads = 0;
};

/// Machine-readable classification of a failed measurement, refining the
/// free-form fail_reason.  Generic covers everything that is a property of
/// the schedule itself (infeasible lowering, compile failure, bad output);
/// the Worker* kinds are properties of out-of-process execution
/// (measure/backend.hpp "jit-isolated") and map 1:1 onto
/// FusionStatus::WorkerCrashed / WorkerTimeout at the engine layer.
enum class MeasureFailKind : std::uint8_t {
  None,            ///< measurement succeeded (ok == true)
  Generic,         ///< infeasible / compile / numeric failure
  WorkerCrashed,   ///< sandbox worker died (signal or nonzero exit)
  WorkerTimeout,   ///< sandbox worker exceeded the per-request deadline
  VerifyRejected,  ///< static safety verifier refused to compile (src/verify/)
};

/// Result of one kernel "measurement", whatever the backend.
struct KernelMeasurement {
  bool ok = false;
  std::string fail_reason;
  MeasureFailKind fail_kind = MeasureFailKind::None;
  double time_s = 0.0;
  // Decomposition (pre-noise); zero when the backend cannot attribute
  // time to phases (wall-clock backends report only time_s).
  double mem_time_s = 0.0;
  double comp_time_s = 0.0;
  double issue_time_s = 0.0;
  double launch_time_s = 0.0;
  // Diagnostics:
  double mem_eff = 1.0;
  double comp_eff = 1.0;
  double utilization = 1.0;
  int waves = 1;
  int blocks_per_sm = 1;
  std::int64_t n_blocks = 0;
  std::int64_t smem_bytes = 0;
};

}  // namespace mcf
