// Pluggable measurement subsystem (ROADMAP: "real timing path behind the
// same measure() interface").
//
// A MeasureBackend answers one question — "how long does this candidate
// schedule take?" — and the tuner, the library-kernel baselines and the
// benches consume the abstraction instead of holding a TimingSimulator
// directly.  Three backends ship:
//
//   * SimulatorBackend    wraps the deterministic TimingSimulator; the
//                         default everywhere, bit-for-bit identical to the
//                         pre-subsystem behaviour.
//   * InterpreterBackend  actually executes the schedule through
//                         exec/interpreter on the CPU (worker-slot arenas)
//                         and converts wall-clock samples into a
//                         KernelMeasurement with warm-up / repeat /
//                         outlier-trim controls.
//   * CachingBackend      decorator over any backend; memoizes by
//                         (chain key, gpu, schedule structure, tiles) and
//                         persists through the TuningCache serialization.
//   * JitBackend          compiles each candidate to real machine code
//                         through exec/jit (host-toolchain JIT, digest-
//                         keyed kernel cache, batched per-wave TUs) and
//                         wall-clock-samples the native kernel; falls
//                         back to interpreter execution when no host
//                         compiler is available.
//
// Every backend must honour the contract pinned by the conformance suite
// (tests/measure/test_conformance.cpp, documented in docs/measurement.md):
// ok=false + non-empty fail_reason on infeasible schedules, time_s > 0 on
// success, bit-identical repeats when deterministic() promises it, and
// safe concurrent measure() calls from a thread pool.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dag/schedule.hpp"
#include "exec/jit.hpp"
#include "exec/sandbox.hpp"
#include "gpu/spec.hpp"
#include "gpu/timing.hpp"
#include "measure/measurement.hpp"
#include "search/tuning_cache.hpp"
#include "support/lru_map.hpp"
#include "support/mutex.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace mcf {

class MeasureBackend {
 public:
  virtual ~MeasureBackend() = default;

  /// Registry name ("sim", "interp", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual const GpuSpec& spec() const noexcept = 0;
  /// True when repeated measure() of the same schedule with the same
  /// options promises a bit-identical result.  Wall-clock backends return
  /// false; the conformance suite keys its identity checks on this.
  [[nodiscard]] virtual bool deterministic() const noexcept = 0;

  /// Measures one fused-kernel schedule.  Must be safe to call
  /// concurrently from multiple threads on the same backend instance.
  [[nodiscard]] virtual KernelMeasurement measure(
      const Schedule& s, const MeasureOptions& options = {}) const = 0;

  /// Batch preparation hook: the tuner calls this once per measurement
  /// wave, before the concurrent measure() calls, with every schedule the
  /// wave will measure.  Backends with per-schedule compilation amortise
  /// it here (the jit backend compiles all missing kernels in ONE
  /// translation unit / compiler invocation); the default is a no-op.
  /// Must never change any measure() result — only its cost.
  virtual void prepare_batch(std::span<const Schedule* const> /*schedules*/,
                             const MeasureOptions& /*options*/ = {}) const {}

  /// Aggregate roofline path used by the library-kernel baselines: there
  /// is no schedule to execute, so every backend shares the simulator's
  /// arithmetic (overridden only by decorators, which forward to their
  /// inner backend).
  [[nodiscard]] virtual KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const = 0;

  /// Digest of the MeasureOptions fields this backend's measure()
  /// actually consumes; memoizing decorators key on it.  A backend that
  /// ignores the options (the interpreter times real execution) returns a
  /// constant, so option churn cannot defeat a cache layered over it.
  [[nodiscard]] virtual std::uint64_t options_digest(
      const MeasureOptions& options) const noexcept {
    std::uint64_t h = splitmix64(options.noise_seed + 1);
    h = hash_combine(h, static_cast<std::uint64_t>(options.noise_amp * 1e9));
    h = hash_combine(h, options.include_launch ? 1u : 2u);
    return h;
  }
};

// ---- SimulatorBackend -------------------------------------------------------

/// The deterministic timing model; delegates 1:1 to TimingSimulator.
class SimulatorBackend : public MeasureBackend {
 public:
  explicit SimulatorBackend(GpuSpec spec) : sim_(std::move(spec)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "sim"; }
  [[nodiscard]] const GpuSpec& spec() const noexcept override { return sim_.spec(); }
  [[nodiscard]] bool deterministic() const noexcept override { return true; }

  [[nodiscard]] KernelMeasurement measure(
      const Schedule& s, const MeasureOptions& options = {}) const override {
    return sim_.measure(s, options);
  }
  [[nodiscard]] KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const override {
    return sim_.measure_raw(bytes, flops, n_blocks, smem_bytes, mem_eff,
                            comp_eff, stmt_trips, options);
  }

  [[nodiscard]] const TimingSimulator& simulator() const noexcept { return sim_; }

 private:
  TimingSimulator sim_;
};

// ---- shared state of the execution-based backends ---------------------------

namespace detail {

/// What the execution-based backends (interp, jit) memoize per backend
/// instance so repeated measure() calls of the same candidate skip the
/// lowering work:
///
///   * the lowering gate (validity, consume-completeness, smem plan) —
///     keyed by schedule_structure_digest, which already folds the chain
///     key and the tiles.  Before this memo the interpreter backend
///     re-lowered the schedule on EVERY measure() call, repeat tiles
///     included;
///   * the deterministic random input tensors — keyed by chain shape,
///     shared by every candidate of the same chain (building and filling
///     them dominated the per-measure setup cost).
///
/// Both memos are LRU-bounded (Limits) so a long-lived service that
/// measures millions of distinct schedules/chains stays at bounded RSS:
/// an evicted gate is recomputed, an evicted tensor set is rebuilt
/// bit-identically (deterministic seeded fill) — eviction is a pure
/// cost/memory trade, never a behaviour change.
///
/// All methods are thread-safe; data() returns immutable shared state
/// that outlives eviction for as long as a caller holds it.
class ExecMeasureState {
 public:
  struct Gate {
    bool ok = false;
    std::string fail_reason;
    std::int64_t n_blocks = 0;
    std::int64_t smem_bytes = 0;
  };
  struct ChainData {
    Tensor a;
    std::vector<Tensor> weights;
    [[nodiscard]] std::size_t bytes() const noexcept;
  };
  /// Entry/byte caps; 0 = unbounded.  The defaults bound a backend
  /// instance to roughly the working set of one large tuning campaign
  /// (64Ki lowering gates, 512 MiB of cached input tensors).
  struct Limits {
    std::size_t max_gates = 64 * 1024;
    std::size_t max_data_entries = 256;
    std::size_t max_data_bytes = 512u * 1024 * 1024;
  };

  // Out of line: Limits' member defaults are not parseable until the end
  // of the enclosing class, so no inline default argument.
  ExecMeasureState();
  explicit ExecMeasureState(Limits limits);

  /// The CompiledKernel-equivalent lowering gate, memoized by digest.
  [[nodiscard]] Gate gate(const Schedule& s, const GpuSpec& gpu) const;
  /// Deterministic inputs for `chain`, built once per chain shape.
  [[nodiscard]] std::shared_ptr<const ChainData> data(
      const ChainSpec& chain, std::uint64_t data_seed) const;

  // Occupancy/eviction observability (the admission bench samples these).
  [[nodiscard]] std::size_t gate_entries() const;
  [[nodiscard]] std::size_t data_entries() const;
  [[nodiscard]] std::size_t data_bytes() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  mutable Mutex mu_{"measure.exec-state"};
  mutable LruMap<std::uint64_t, Gate> gates_ MCF_GUARDED_BY(mu_);
  mutable LruMap<std::string, std::shared_ptr<const ChainData>> data_
      MCF_GUARDED_BY(mu_);
};

}  // namespace detail

// ---- InterpreterBackend -----------------------------------------------------

struct InterpreterBackendOptions {
  /// Untimed executions before sampling (first-touch page faults, arena
  /// allocation, cache warm-up).
  int warmup = 1;
  /// Timed wall-clock samples per measure() call.
  int repeats = 3;
  /// Fraction of samples trimmed from EACH end before averaging (0.25 with
  /// repeats=4 drops the fastest and slowest sample).  The trimmed mean is
  /// the standard outlier-robust estimator for shared-machine timing.
  double trim_fraction = 0.25;
  /// Seed for the deterministic random tensor contents.
  std::uint64_t data_seed = 1;
  /// Monotonic time source in seconds.  Null = std::chrono::steady_clock.
  /// Tests inject a scripted clock to pin the sampling arithmetic.
  std::function<double()> clock;
  /// LRU caps on the lowering-gate / input-tensor memos (bounded RSS
  /// under unbounded distinct-chain traffic); see ExecMeasureState.
  detail::ExecMeasureState::Limits memo_limits;
};

/// Executes the candidate on the CPU through exec/interpreter and times it.
/// The absolute times are CPU-interpreter times, not GPU times — useful
/// because they *rank* candidates by real executed work (the conformance
/// suite asserts rank correlation against the simulator on the fig7
/// family), and because this is the template a CUDA-event backend follows.
class InterpreterBackend : public MeasureBackend {
 public:
  explicit InterpreterBackend(GpuSpec spec,
                              InterpreterBackendOptions options = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "interp"; }
  [[nodiscard]] const GpuSpec& spec() const noexcept override { return sim_.spec(); }
  /// Wall-clock sampling: repeats jitter run-to-run.
  [[nodiscard]] bool deterministic() const noexcept override { return false; }

  [[nodiscard]] KernelMeasurement measure(
      const Schedule& s, const MeasureOptions& options = {}) const override;
  [[nodiscard]] KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const override {
    // No schedule to execute: raw aggregates fall back to the roofline.
    return sim_.measure_raw(bytes, flops, n_blocks, smem_bytes, mem_eff,
                            comp_eff, stmt_trips, options);
  }

  /// measure() executes the schedule as-is; the simulator-noise options
  /// do not reach it.
  [[nodiscard]] std::uint64_t options_digest(
      const MeasureOptions&) const noexcept override {
    return 0;
  }

  [[nodiscard]] const InterpreterBackendOptions& options() const noexcept {
    return opt_;
  }

 private:
  TimingSimulator sim_;  ///< spec holder + measure_raw fallback
  InterpreterBackendOptions opt_;
  /// Digest-keyed lowering memo + shared input tensors: repeat-tile
  /// measure() calls skip straight to execution.  LRU-bounded by
  /// opt_.memo_limits.
  detail::ExecMeasureState state_;
};

// ---- JitBackend -------------------------------------------------------------

/// Sampling knobs mirror InterpreterBackendOptions; the jit backend times
/// the natively compiled kernel instead of the interpreter.
struct JitBackendOptions {
  int warmup = 1;
  int repeats = 3;
  double trim_fraction = 0.25;
  std::uint64_t data_seed = 1;
  /// Monotonic time source in seconds (tests inject a scripted clock).
  std::function<double()> clock;
  /// LRU caps on the lowering-gate / input-tensor memos (bounded RSS
  /// under unbounded distinct-chain traffic); see ExecMeasureState.
  detail::ExecMeasureState::Limits memo_limits;
};

/// Compiles every candidate schedule to real machine code through the
/// exec/jit subsystem (host toolchain, -O3 -march=native, digest-keyed
/// on-disk kernel cache) and wall-clock-samples the native kernel — the
/// CPU-host realisation of the paper's "lower to Triton/PTX, then
/// measure" path.  prepare_batch() compiles a whole tuner wave in one
/// compiler invocation.  When no host compiler is available (or under
/// sanitizer builds) every measure() transparently falls back to
/// interpreter execution, so the backend always satisfies the
/// conformance contract; jit_active() tells which path is live.
class JitBackend : public MeasureBackend {
 public:
  explicit JitBackend(GpuSpec spec, JitBackendOptions options = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "jit"; }
  [[nodiscard]] const GpuSpec& spec() const noexcept override { return sim_.spec(); }
  /// Wall-clock sampling: repeats jitter run-to-run.
  [[nodiscard]] bool deterministic() const noexcept override { return false; }

  [[nodiscard]] KernelMeasurement measure(
      const Schedule& s, const MeasureOptions& options = {}) const override;
  /// One TU / compiler invocation for all missing kernels of the wave.
  void prepare_batch(std::span<const Schedule* const> schedules,
                     const MeasureOptions& options = {}) const override;
  [[nodiscard]] KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const override {
    // No schedule to execute: raw aggregates fall back to the roofline.
    return sim_.measure_raw(bytes, flops, n_blocks, smem_bytes, mem_eff,
                            comp_eff, stmt_trips, options);
  }
  /// measure() executes the schedule as-is; simulator-noise options do
  /// not reach it.  exec_threads DOES change the measured wall time, so
  /// it folds into the digest — a cache layered over this backend must
  /// never serve a 1-thread time for an 8-thread request.
  [[nodiscard]] std::uint64_t options_digest(
      const MeasureOptions& options) const noexcept override {
    return options.exec_threads > 0
               ? hash_combine(0x6d63662d6a69746dull,
                              static_cast<std::uint64_t>(options.exec_threads))
               : 0;
  }

  /// True when a host toolchain was detected at construction and
  /// measure() runs native code; false = interpreter fallback.
  [[nodiscard]] bool jit_active() const noexcept { return toolchain_.ok(); }
  /// Why the jit is inactive (empty when jit_active()).
  [[nodiscard]] const std::string& fallback_reason() const noexcept {
    return toolchain_.reason;
  }
  [[nodiscard]] const JitBackendOptions& options() const noexcept {
    return opt_;
  }

 private:
  TimingSimulator sim_;  ///< spec holder + measure_raw fallback
  JitBackendOptions opt_;
  /// Resolved once at construction (tests override MCFUSER_JIT_CXX per
  /// instance); !ok() => permanent interpreter fallback.
  jit::Toolchain toolchain_;
  detail::ExecMeasureState state_;
};

// ---- IsolatedJitBackend -----------------------------------------------------

/// Sampling knobs mirror JitBackendOptions, plus the worker-pool policy.
struct IsolatedJitBackendOptions {
  int warmup = 1;
  int repeats = 3;
  double trim_fraction = 0.25;
  std::uint64_t data_seed = 1;
  /// Monotonic time source in seconds — reaches only the in-process
  /// fallback path (worker timings use the worker's own steady clock).
  std::function<double()> clock;
  /// LRU caps on the lowering-gate memo; see ExecMeasureState.
  detail::ExecMeasureState::Limits memo_limits;
  /// Worker-pool sizing/deadline/retry policy; defaults read the
  /// MCFUSER_SANDBOX_* environment.
  sandbox::PoolOptions pool = sandbox::default_pool_options();
  /// Forces the in-process fallback even when sandboxing is available
  /// (conformance tests pin the sampling arithmetic this way).
  bool disable_sandbox = false;
};

/// Crash-isolated variant of the jit backend: kernels are compiled
/// through the same digest-keyed cache, but EXECUTED inside sandbox
/// worker processes (exec/sandbox.hpp), so a kernel that segfaults,
/// loops forever or emits garbage fails its own measurement instead of
/// taking down the engine.  Policy layered on the pool transport:
///
///   * crash negative-cache check before every run — a known-bad kernel
///     is answered from the cache without spawning anything;
///   * crashes retry on a fresh worker (pool.max_retries), then the
///     failure is negative-cached as WorkerCrashed; timeouts are
///     negative-cached immediately as WorkerTimeout (a hung kernel
///     would burn another full deadline);
///   * a worker-side dlopen/dlsym failure means the cached .so is
///     poisoned: jit::invalidate_kernel + recompile + ONE retry before
///     giving up (satellite of the disk cache's crash-consistency).
///
/// When sandboxing is unavailable (sanitizer build, MCFUSER_SANDBOX=0,
/// no toolchain) every call degrades to an inner JitBackend — same
/// gate, same interpreter fallback, so measure() always answers.
class IsolatedJitBackend : public MeasureBackend {
 public:
  explicit IsolatedJitBackend(GpuSpec spec,
                              IsolatedJitBackendOptions options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "jit-isolated";
  }
  [[nodiscard]] const GpuSpec& spec() const noexcept override {
    return fallback_.spec();
  }
  /// Wall-clock sampling: repeats jitter run-to-run.
  [[nodiscard]] bool deterministic() const noexcept override { return false; }

  [[nodiscard]] KernelMeasurement measure(
      const Schedule& s, const MeasureOptions& options = {}) const override;
  /// One TU / compiler invocation for all missing kernels of the wave
  /// (the workers then dlopen the cached artifacts).
  void prepare_batch(std::span<const Schedule* const> schedules,
                     const MeasureOptions& options = {}) const override;
  [[nodiscard]] KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const override {
    return fallback_.measure_raw(bytes, flops, n_blocks, smem_bytes, mem_eff,
                                 comp_eff, stmt_trips, options);
  }
  /// measure() executes the schedule as-is; simulator-noise options do
  /// not reach it.  exec_threads DOES change the measured wall time
  /// (the workers replay the host's fan-out geometry), so it folds into
  /// the digest like JitBackend's.
  [[nodiscard]] std::uint64_t options_digest(
      const MeasureOptions& options) const noexcept override {
    return options.exec_threads > 0
               ? hash_combine(0x6d63662d6a69746dull,
                              static_cast<std::uint64_t>(options.exec_threads))
               : 0;
  }

  /// True when measurements run in sandbox workers; false = in-process
  /// jit/interp fallback.
  [[nodiscard]] bool sandbox_active() const noexcept {
    return pool_ != nullptr;
  }
  /// Why the sandbox is inactive (empty when sandbox_active()).
  [[nodiscard]] const std::string& fallback_reason() const noexcept {
    return inactive_reason_;
  }
  [[nodiscard]] const IsolatedJitBackendOptions& options() const noexcept {
    return opt_;
  }

 private:
  IsolatedJitBackendOptions opt_;
  /// Degraded path AND the measure_raw/spec holder; owns its own memos.
  JitBackend fallback_;
  /// Resolved once at construction, like JitBackend.
  jit::Toolchain toolchain_;
  std::string inactive_reason_;  ///< why pool_ is null (empty when active)
  /// The worker pool; null when degraded to the in-process path.
  std::unique_ptr<sandbox::WorkerPool> pool_;
  /// Lowering-gate memo for the sandboxed path (the fallback's memos are
  /// private to it).
  detail::ExecMeasureState state_;
};

// ---- CachingBackend ---------------------------------------------------------

/// Memoizing decorator: measure() results are cached by
/// (chain shape key, gpu, schedule-structure digest, tiles, options) and
/// can be persisted through the TuningCache line format, so a deployment
/// can ship warm measurement caches next to its tuning logs.
class CachingBackend : public MeasureBackend {
 public:
  explicit CachingBackend(std::shared_ptr<const MeasureBackend> inner);

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] const GpuSpec& spec() const noexcept override {
    return inner_->spec();
  }
  /// Memoization makes repeated measure() of the same schedule identical
  /// even over a nondeterministic inner backend.
  [[nodiscard]] bool deterministic() const noexcept override { return true; }

  [[nodiscard]] KernelMeasurement measure(
      const Schedule& s, const MeasureOptions& options = {}) const override;
  /// Forwards only the schedules this cache has NOT memoized: a
  /// memoized measurement never reaches the inner backend, so preparing
  /// (jit-compiling) its kernel would be pure waste.
  void prepare_batch(std::span<const Schedule* const> schedules,
                     const MeasureOptions& options = {}) const override;
  [[nodiscard]] KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const override {
    // Cheap arithmetic; not worth memoizing.
    return inner_->measure_raw(bytes, flops, n_blocks, smem_bytes, mem_eff,
                               comp_eff, stmt_trips, options);
  }
  [[nodiscard]] std::uint64_t options_digest(
      const MeasureOptions& options) const noexcept override {
    return inner_->options_digest(options);
  }

  /// Persistence via the TuningCache serialization (one record per cached
  /// measurement; only ok results with their time_s survive a round trip).
  [[nodiscard]] bool save(const std::string& path) const;
  bool load(const std::string& path);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t size() const;

 private:
  std::shared_ptr<const MeasureBackend> inner_;
  std::string name_;
  mutable Mutex mu_{"measure.caching"};
  /// Full-fidelity in-memory store (diagnostics included).
  mutable std::unordered_map<std::string, KernelMeasurement> mem_
      MCF_GUARDED_BY(mu_);
  /// Serializable mirror of the ok entries (time_s only).
  mutable TuningCache disk_ MCF_GUARDED_BY(mu_);
  mutable std::size_t hits_ MCF_GUARDED_BY(mu_) = 0;
  mutable std::size_t misses_ MCF_GUARDED_BY(mu_) = 0;
};

/// Structural digest of a schedule: block loops, the scope/statement tree
/// and the tile sizes all feed a 64-bit hash.  Two schedules with equal
/// digests execute identically, which is what makes it a sound
/// memoization key component.
[[nodiscard]] std::uint64_t schedule_structure_digest(const Schedule& s);

// ---- registry ---------------------------------------------------------------

/// Name -> factory registry; the CLI's --backend flag and the conformance
/// suite enumerate it.  Registration is thread-safe; built-ins ("sim",
/// "interp", "cached-sim") self-register on first use.  A hardware
/// backend (CUDA events / rocprof) plugs in with one add() call — see
/// docs/measurement.md.
class BackendRegistry {
 public:
  using Factory =
      std::function<std::shared_ptr<MeasureBackend>(const GpuSpec&)>;

  static BackendRegistry& instance();

  /// False (and no-op) when `name` is already registered.
  bool add(const std::string& name, Factory factory);
  /// Null when `name` is unknown.
  [[nodiscard]] std::shared_ptr<MeasureBackend> create(
      const std::string& name, const GpuSpec& gpu) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  BackendRegistry();

  mutable Mutex mu_{"measure.registry"};
  std::map<std::string, Factory> factories_ MCF_GUARDED_BY(mu_);
};

}  // namespace mcf
