#include "measure/backend.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>

#include "exec/codegen.hpp"
#include "exec/interpreter.hpp"
#include "gpu/smem.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"
#include "verify/verify.hpp"

namespace mcf {

// ---- schedule digest --------------------------------------------------------

std::uint64_t schedule_structure_digest(const Schedule& s) {
  std::uint64_t h = hash_string(chain_cache_key(s.chain()));
  for (const int l : s.block_loops()) {
    h = hash_combine(h, static_cast<std::uint64_t>(l) + 1);
  }
  for (int i = 0; i < s.num_nodes(); ++i) {
    const Schedule::Node& n = s.node(i);
    h = hash_combine(h, static_cast<std::uint64_t>(n.loop) + 2);
    if (n.is_stmt) {
      h = hash_combine(h, static_cast<std::uint64_t>(n.stmt.kind) + 3);
      h = hash_combine(h, static_cast<std::uint64_t>(n.stmt.tensor) + 4);
      h = hash_combine(h, static_cast<std::uint64_t>(n.stmt.op) + 5);
      for (const int c : n.stmt.covered_loops) {
        h = hash_combine(h, static_cast<std::uint64_t>(c) + 6);
      }
    }
    for (const int c : n.children) {
      h = hash_combine(h, static_cast<std::uint64_t>(c) + 7);
    }
  }
  for (const auto t : s.tiles()) {
    h = hash_combine(h, static_cast<std::uint64_t>(t));
  }
  return h;
}

// ---- shared state of the execution-based backends ---------------------------

namespace detail {

ExecMeasureState::ExecMeasureState() : ExecMeasureState(Limits()) {}

ExecMeasureState::ExecMeasureState(Limits limits)
    : gates_(LruMap<std::uint64_t, Gate>::Limits{limits.max_gates, 0}),
      data_(LruMap<std::string, std::shared_ptr<const ChainData>>::Limits{
          limits.max_data_entries, limits.max_data_bytes}) {}

std::size_t ExecMeasureState::ChainData::bytes() const noexcept {
  std::size_t total = static_cast<std::size_t>(a.numel()) * sizeof(float);
  for (const Tensor& w : weights) {
    total += static_cast<std::size_t>(w.numel()) * sizeof(float);
  }
  return total;
}

ExecMeasureState::Gate ExecMeasureState::gate(const Schedule& s,
                                              const GpuSpec& gpu) const {
  const std::uint64_t key = schedule_structure_digest(s);
  {
    const LockGuard lock(mu_);
    if (const Gate* hit = gates_.find(key)) return *hit;
  }
  // The same lowering gate as CompiledKernel: infeasible schedules fail
  // with a reason instead of executing (conformance contract).
  Gate g;
  if (!s.valid()) {
    g.fail_reason = "schedule has no legal statement placement";
  } else if (!s.consume_complete()) {
    g.fail_reason = "schedule consumes partial tiles (Rule-2 structure)";
  } else {
    const SmemPlan plan = plan_smem(s);
    g.n_blocks = s.num_blocks();
    g.smem_bytes = plan.total_bytes;
    if (plan.total_bytes > gpu.smem_per_block) {
      g.fail_reason = "shared memory exceeds per-block limit (" +
                      std::to_string(plan.total_bytes) + " > " +
                      std::to_string(gpu.smem_per_block) + " bytes)";
    } else {
      g.ok = true;
    }
  }
  const LockGuard lock(mu_);
  return gates_.insert(key, std::move(g));
}

std::shared_ptr<const ExecMeasureState::ChainData> ExecMeasureState::data(
    const ChainSpec& chain, std::uint64_t data_seed) const {
  const std::string key =
      chain_cache_key(chain) + "#" + std::to_string(data_seed);
  {
    const LockGuard lock(mu_);
    if (const auto* hit = data_.find(key)) return *hit;
  }
  // Build outside the lock: the allocation + fill_random cost must not
  // stall concurrent measure() calls (gates share the same mutex).  A
  // racing builder produces an identical (deterministic) tensor set;
  // the first insert wins.
  auto fresh = std::make_shared<ChainData>();
  fresh->a = Tensor(Shape{chain.batch(), chain.m(), chain.inner().front()});
  fresh->a.fill_random(data_seed);
  fresh->weights.reserve(static_cast<std::size_t>(chain.num_ops()));
  for (int op = 0; op < chain.num_ops(); ++op) {
    Tensor w(Shape{chain.batch(), chain.inner()[static_cast<std::size_t>(op)],
                   chain.inner()[static_cast<std::size_t>(op) + 1]});
    w.fill_random(data_seed + static_cast<std::uint64_t>(op) + 1);
    fresh->weights.push_back(std::move(w));
  }
  const std::size_t fresh_bytes = fresh->bytes();
  const LockGuard lock(mu_);
  // Eviction only forgets, never frees in-use tensors: callers (and a
  // racing builder that lost the insert) hold shared_ptrs either way.
  return data_.insert(key, std::move(fresh), fresh_bytes);
}

std::size_t ExecMeasureState::gate_entries() const {
  const LockGuard lock(mu_);
  return gates_.size();
}

std::size_t ExecMeasureState::data_entries() const {
  const LockGuard lock(mu_);
  return data_.size();
}

std::size_t ExecMeasureState::data_bytes() const {
  const LockGuard lock(mu_);
  return data_.bytes();
}

std::uint64_t ExecMeasureState::evictions() const {
  const LockGuard lock(mu_);
  return gates_.evictions() + data_.evictions();
}

}  // namespace detail

namespace {

/// The outlier-robust estimator every wall-clock path shares: clamp each
/// sample at a nanosecond (a sample below clock resolution must not
/// produce time_s == 0 — the contract promises time_s > 0 on ok), sort,
/// drop trim_fraction of the samples from each end, average the rest.
/// The sandboxed backend feeds worker-returned samples through the SAME
/// arithmetic, which is what keeps isolated and in-process timings
/// directly comparable.
double trimmed_mean(std::vector<double> samples, double trim_fraction) {
  for (double& sample : samples) sample = std::max(sample, 1e-9);
  std::sort(samples.begin(), samples.end());
  const auto trim = static_cast<std::size_t>(
      static_cast<double>(samples.size()) * trim_fraction);
  const std::size_t lo = trim;
  const std::size_t hi = samples.size() - trim;
  return std::accumulate(samples.begin() + static_cast<std::ptrdiff_t>(lo),
                         samples.begin() + static_cast<std::ptrdiff_t>(hi),
                         0.0) /
         static_cast<double>(hi - lo);
}

/// Warm-up / repeat / trimmed-mean wall-clock sampling shared by the
/// execution-based backends.  `run` executes the kernel once.
double sample_trimmed_wall(const std::function<void()>& run, int warmup,
                           int repeats, double trim_fraction,
                           const std::function<double()>& clock) {
  for (int i = 0; i < warmup; ++i) run();
  std::vector<double> samples(static_cast<std::size_t>(repeats));
  for (double& sample : samples) {
    const double t0 = clock();
    run();
    sample = clock() - t0;
  }
  return trimmed_mean(std::move(samples), trim_fraction);
}

std::function<double()> steady_clock_seconds() {
  return [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
}

}  // namespace

// ---- InterpreterBackend -----------------------------------------------------

InterpreterBackend::InterpreterBackend(GpuSpec spec,
                                       InterpreterBackendOptions options)
    : sim_(std::move(spec)), opt_(std::move(options)),
      state_(opt_.memo_limits) {
  opt_.warmup = std::max(opt_.warmup, 0);
  opt_.repeats = std::max(opt_.repeats, 1);
  opt_.trim_fraction = std::clamp(opt_.trim_fraction, 0.0, 0.49);
  if (!opt_.clock) opt_.clock = steady_clock_seconds();
}

KernelMeasurement InterpreterBackend::measure(
    const Schedule& s, const MeasureOptions& /*options*/) const {
  KernelMeasurement m;
  const detail::ExecMeasureState::Gate gate = state_.gate(s, spec());
  m.n_blocks = gate.n_blocks;
  m.smem_bytes = gate.smem_bytes;
  if (!gate.ok) {
    m.fail_reason = gate.fail_reason;
    return m;
  }

  const auto data = state_.data(s.chain(), opt_.data_seed);
  const ChainSpec& chain = s.chain();
  Tensor out(Shape{chain.batch(), chain.m(), chain.inner().back()});
  const Interpreter interp(s);
  m.time_s = sample_trimmed_wall(
      [&] { (void)interp.run(data->a, data->weights, out); }, opt_.warmup,
      opt_.repeats, opt_.trim_fraction, opt_.clock);
  m.ok = true;
  return m;
}

// ---- JitBackend -------------------------------------------------------------

JitBackend::JitBackend(GpuSpec spec, JitBackendOptions options)
    : sim_(std::move(spec)), opt_(std::move(options)),
      toolchain_(jit::detect_toolchain()), state_(opt_.memo_limits) {
  opt_.warmup = std::max(opt_.warmup, 0);
  opt_.repeats = std::max(opt_.repeats, 1);
  opt_.trim_fraction = std::clamp(opt_.trim_fraction, 0.0, 0.49);
  if (!opt_.clock) opt_.clock = steady_clock_seconds();
}

KernelMeasurement JitBackend::measure(const Schedule& s,
                                      const MeasureOptions& options) const {
  KernelMeasurement m;
  const detail::ExecMeasureState::Gate gate = state_.gate(s, spec());
  m.n_blocks = gate.n_blocks;
  m.smem_bytes = gate.smem_bytes;
  if (!gate.ok) {
    m.fail_reason = gate.fail_reason;
    return m;
  }

  const auto data = state_.data(s.chain(), opt_.data_seed);
  const ChainSpec& chain = s.chain();
  Tensor out(Shape{chain.batch(), chain.m(), chain.inner().back()});

  // Native path; a missing toolchain or a (negative-cached) compile
  // failure degrades to the interpreter so measure() always answers.
  if (toolchain_.ok()) {
    std::string err;
    // `rk.module` lives on this frame across all samples: a concurrent
    // registry eviction cannot unmap the code mid-measurement.
    const jit::ResolvedKernel rk =
        jit::resolve_kernel(s, spec().name, toolchain_, &err);
    if (rk.ok()) {
      // Per-call scratch (concurrent measure() calls stay independent),
      // reused across the warmup/repeat samples inside.
      std::vector<std::vector<float>> scratch;
      m.time_s = sample_trimmed_wall(
          [&] {
            jit::run_compiled(rk.fn, s, data->a, data->weights, out, scratch,
                              options.exec_threads);
          },
          opt_.warmup, opt_.repeats, opt_.trim_fraction, opt_.clock);
      m.ok = true;
      return m;
    }
    // A verifier rejection is a property of the schedule, not of the
    // toolchain: degrading to the interpreter would happily "measure" a
    // kernel the gate just proved unsafe to compile.  Fail it instead.
    if (err.rfind(verify::kGateErrorPrefix, 0) == 0) {
      m.fail_reason = std::move(err);
      m.fail_kind = MeasureFailKind::VerifyRejected;
      return m;
    }
  }

  const Interpreter interp(s);
  m.time_s = sample_trimmed_wall(
      [&] { (void)interp.run(data->a, data->weights, out); }, opt_.warmup,
      opt_.repeats, opt_.trim_fraction, opt_.clock);
  m.ok = true;
  return m;
}

void JitBackend::prepare_batch(std::span<const Schedule* const> schedules,
                               const MeasureOptions& /*options*/) const {
  if (!toolchain_.ok()) return;
  // Only schedules that pass the lowering gate are worth compiling (the
  // paper's quadrant-II candidates never reach execution).
  std::vector<const Schedule*> feasible;
  feasible.reserve(schedules.size());
  for (const Schedule* s : schedules) {
    if (s != nullptr && state_.gate(*s, spec()).ok) feasible.push_back(s);
  }
  jit::prepare_kernels(feasible, spec().name, toolchain_);
}

// ---- IsolatedJitBackend -----------------------------------------------------

IsolatedJitBackend::IsolatedJitBackend(GpuSpec spec,
                                       IsolatedJitBackendOptions options)
    : opt_(std::move(options)),
      fallback_(std::move(spec),
                JitBackendOptions{opt_.warmup, opt_.repeats, opt_.trim_fraction,
                                  opt_.data_seed, opt_.clock,
                                  opt_.memo_limits}),
      toolchain_(jit::detect_toolchain()), state_(opt_.memo_limits) {
  opt_.warmup = std::max(opt_.warmup, 0);
  opt_.repeats = std::max(opt_.repeats, 1);
  opt_.trim_fraction = std::clamp(opt_.trim_fraction, 0.0, 0.49);
  const sandbox::Availability avail = sandbox::availability();
  if (opt_.disable_sandbox) {
    inactive_reason_ = "sandbox disabled by backend options";
  } else if (!avail.ok) {
    inactive_reason_ = avail.reason;
  } else if (!toolchain_.ok()) {
    // No toolchain means no artifact to hand a worker; the fallback
    // degrades further to the interpreter on its own.
    inactive_reason_ = toolchain_.reason;
  } else {
    pool_ = std::make_unique<sandbox::WorkerPool>(opt_.pool);
  }
}

KernelMeasurement IsolatedJitBackend::measure(
    const Schedule& s, const MeasureOptions& options) const {
  if (pool_ == nullptr) return fallback_.measure(s, options);

  KernelMeasurement m;
  const detail::ExecMeasureState::Gate gate = state_.gate(s, spec());
  m.n_blocks = gate.n_blocks;
  m.smem_bytes = gate.smem_bytes;
  if (!gate.ok) {
    m.fail_reason = gate.fail_reason;
    m.fail_kind = MeasureFailKind::Generic;
    return m;
  }

  // Resolve the on-disk artifact (compiling at most once) WITHOUT
  // loading it into this process; a compile failure degrades to the
  // in-process path, which reports it the way the jit backend always has.
  jit::KernelArtifact art = jit::resolve_artifact(s, spec().name, toolchain_);
  if (!art.ok()) {
    // Same policy as the in-process backend: a verify-gate rejection must
    // not degrade to a path that executes the unsafe kernel anyway.
    if (art.error.rfind(verify::kGateErrorPrefix, 0) == 0) {
      m.fail_reason = std::move(art.error);
      m.fail_kind = MeasureFailKind::VerifyRejected;
      return m;
    }
    return fallback_.measure(s, options);
  }

  // Crash negative-cache: a kernel that already killed (or hung) a
  // worker is answered from the cache — no process is spawned for it
  // ever again.
  if (const auto hit = sandbox::crash_cache_lookup(art.key)) {
    m.fail_reason = hit->reason + " (crash-cache)";
    m.fail_kind = hit->kind;
    return m;
  }

  const ChainSpec& chain = s.chain();
  sandbox::RunRequest req;
  req.key = art.key;
  req.so_path = art.so_path;
  req.symbol = art.symbol;
  req.batch = chain.batch();
  req.m = chain.m();
  req.inner = chain.inner();
  req.n_blocks = gate.n_blocks;
  req.scratch_floats = cpp_kernel_scratch_floats(s);
  req.warmup = opt_.warmup;
  req.repeats = opt_.repeats;
  req.data_seed = opt_.data_seed;
  req.threads = options.exec_threads;

  sandbox::RunResult r = pool_->run(req);
  if (r.retryable_load_failure) {
    // The cached .so is poisoned (truncated write, foreign-ISA restore):
    // evict every trace, recompile once, retry once.
    (void)jit::invalidate_kernel(art.key);
    const jit::KernelArtifact fresh =
        jit::resolve_artifact(s, spec().name, toolchain_);
    if (fresh.ok()) {
      req.key = fresh.key;
      req.so_path = fresh.so_path;
      req.symbol = fresh.symbol;
      r = pool_->run(req);
    }
  }

  switch (r.outcome) {
    case sandbox::RunOutcome::Ok:
      m.time_s = trimmed_mean(std::move(r.samples), opt_.trim_fraction);
      m.ok = true;
      return m;
    case sandbox::RunOutcome::Failed:
      // Structured worker-side failure (garbage output, unhealable load
      // failure): negative-cache it — re-running cannot help.
      sandbox::crash_cache_insert(req.key, MeasureFailKind::Generic, r.reason);
      m.fail_reason = r.reason;
      m.fail_kind = MeasureFailKind::Generic;
      return m;
    case sandbox::RunOutcome::TimedOut:
      sandbox::crash_cache_insert(req.key, MeasureFailKind::WorkerTimeout,
                                  r.reason);
      m.fail_reason = r.reason;
      m.fail_kind = MeasureFailKind::WorkerTimeout;
      return m;
    case sandbox::RunOutcome::Crashed:
    default:
      sandbox::crash_cache_insert(req.key, MeasureFailKind::WorkerCrashed,
                                  r.reason);
      m.fail_reason = r.reason;
      m.fail_kind = MeasureFailKind::WorkerCrashed;
      return m;
  }
}

void IsolatedJitBackend::prepare_batch(
    std::span<const Schedule* const> schedules,
    const MeasureOptions& options) const {
  if (pool_ == nullptr) {
    fallback_.prepare_batch(schedules, options);
    return;
  }
  // Same wave-batched compilation as the jit backend; the workers then
  // dlopen the cached artifacts (one mmap per TU per worker).
  std::vector<const Schedule*> feasible;
  feasible.reserve(schedules.size());
  for (const Schedule* s : schedules) {
    if (s != nullptr && state_.gate(*s, spec()).ok) feasible.push_back(s);
  }
  jit::prepare_kernels(feasible, spec().name, toolchain_);
}

// ---- CachingBackend ---------------------------------------------------------

namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

std::string tiles_string(const Schedule& s) {
  std::string out;
  for (const auto t : s.tiles()) {
    if (!out.empty()) out += ",";
    out += std::to_string(t);
  }
  return out;
}

/// Composite first-field key: chain shape key, structure+options digest
/// and tiles, space- and '|'-free so the TuningCache line format round
/// trips it verbatim.  The options part comes from the inner backend
/// (only the fields it consumes), so irrelevant option churn still hits.
std::string measure_key(const Schedule& s, std::uint64_t options_digest) {
  const std::uint64_t digest =
      hash_combine(schedule_structure_digest(s), options_digest);
  return chain_cache_key(s.chain()) + "@" + hex64(digest) + "@" +
         tiles_string(s);
}

}  // namespace

CachingBackend::CachingBackend(std::shared_ptr<const MeasureBackend> inner)
    : inner_(std::move(inner)) {
  MCF_CHECK(inner_ != nullptr) << "CachingBackend needs an inner backend";
  name_ = "cached-" + std::string(inner_->name());
}

KernelMeasurement CachingBackend::measure(const Schedule& s,
                                          const MeasureOptions& options) const {
  const std::string key = measure_key(s, inner_->options_digest(options));
  const std::string& gpu_name = inner_->spec().name;
  {
    const LockGuard lock(mu_);
    if (const auto it = mem_.find(key); it != mem_.end()) {
      ++hits_;
      return it->second;
    }
    // Persisted entries carry only time_s; rebuild the schedule geometry
    // (the contract promises honest n_blocks/smem_bytes on ok results)
    // and promote into the in-memory store so later hits are uniform.
    if (const auto disk = disk_.get_raw(key, gpu_name)) {
      KernelMeasurement m;
      m.ok = true;
      m.time_s = disk->time_s;
      m.n_blocks = s.num_blocks();
      m.smem_bytes = plan_smem(s).total_bytes;
      mem_.emplace(key, m);
      ++hits_;
      return m;
    }
  }
  // Measure outside the lock: inner backends can be slow, and measure()
  // must stay concurrent.  Two threads racing on the same fresh key both
  // measure; the first insert wins so every caller observes one value.
  const KernelMeasurement measured = inner_->measure(s, options);
  const LockGuard lock(mu_);
  const auto [it, inserted] = mem_.emplace(key, measured);
  if (inserted) {
    ++misses_;
    if (measured.ok) {
      disk_.put_raw(key, gpu_name,
                    CachedSchedule{hex64(schedule_structure_digest(s)),
                                   {s.tiles().begin(), s.tiles().end()},
                                   measured.time_s});
    }
  } else {
    ++hits_;
  }
  return it->second;
}

void CachingBackend::prepare_batch(std::span<const Schedule* const> schedules,
                                   const MeasureOptions& options) const {
  std::vector<const Schedule*> missing;
  missing.reserve(schedules.size());
  {
    const std::string& gpu_name = inner_->spec().name;
    const LockGuard lock(mu_);
    for (const Schedule* s : schedules) {
      if (s == nullptr) continue;
      const std::string key = measure_key(*s, inner_->options_digest(options));
      if (mem_.count(key) != 0) continue;
      if (disk_.get_raw(key, gpu_name)) continue;
      missing.push_back(s);
    }
  }
  inner_->prepare_batch(missing, options);
}

bool CachingBackend::save(const std::string& path) const {
  const LockGuard lock(mu_);
  return disk_.save(path);
}

bool CachingBackend::load(const std::string& path) {
  const LockGuard lock(mu_);
  return disk_.load(path);
}

std::size_t CachingBackend::hits() const {
  const LockGuard lock(mu_);
  return hits_;
}

std::size_t CachingBackend::misses() const {
  const LockGuard lock(mu_);
  return misses_;
}

std::size_t CachingBackend::size() const {
  const LockGuard lock(mu_);
  return mem_.size();
}

// ---- registry ---------------------------------------------------------------

BackendRegistry::BackendRegistry() {
  factories_["sim"] = [](const GpuSpec& gpu) {
    return std::make_shared<SimulatorBackend>(gpu);
  };
  factories_["interp"] = [](const GpuSpec& gpu) {
    return std::make_shared<InterpreterBackend>(gpu);
  };
  factories_["cached-sim"] = [](const GpuSpec& gpu) {
    return std::make_shared<CachingBackend>(
        std::make_shared<SimulatorBackend>(gpu));
  };
  factories_["jit"] = [](const GpuSpec& gpu) {
    return std::make_shared<JitBackend>(gpu);
  };
  factories_["jit-isolated"] = [](const GpuSpec& gpu) {
    return std::make_shared<IsolatedJitBackend>(gpu);
  };
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

bool BackendRegistry::add(const std::string& name, Factory factory) {
  const LockGuard lock(mu_);
  return factories_.emplace(name, std::move(factory)).second;
}

std::shared_ptr<MeasureBackend> BackendRegistry::create(
    const std::string& name, const GpuSpec& gpu) const {
  Factory factory;
  {
    const LockGuard lock(mu_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) return nullptr;
    factory = it->second;
  }
  return factory(gpu);
}

std::vector<std::string> BackendRegistry::names() const {
  const LockGuard lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace mcf
