#include "measure/backend.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>

#include "exec/interpreter.hpp"
#include "gpu/smem.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace mcf {

// ---- schedule digest --------------------------------------------------------

std::uint64_t schedule_structure_digest(const Schedule& s) {
  std::uint64_t h = hash_string(chain_cache_key(s.chain()));
  for (const int l : s.block_loops()) {
    h = hash_combine(h, static_cast<std::uint64_t>(l) + 1);
  }
  for (int i = 0; i < s.num_nodes(); ++i) {
    const Schedule::Node& n = s.node(i);
    h = hash_combine(h, static_cast<std::uint64_t>(n.loop) + 2);
    if (n.is_stmt) {
      h = hash_combine(h, static_cast<std::uint64_t>(n.stmt.kind) + 3);
      h = hash_combine(h, static_cast<std::uint64_t>(n.stmt.tensor) + 4);
      h = hash_combine(h, static_cast<std::uint64_t>(n.stmt.op) + 5);
      for (const int c : n.stmt.covered_loops) {
        h = hash_combine(h, static_cast<std::uint64_t>(c) + 6);
      }
    }
    for (const int c : n.children) {
      h = hash_combine(h, static_cast<std::uint64_t>(c) + 7);
    }
  }
  for (const auto t : s.tiles()) {
    h = hash_combine(h, static_cast<std::uint64_t>(t));
  }
  return h;
}

// ---- InterpreterBackend -----------------------------------------------------

InterpreterBackend::InterpreterBackend(GpuSpec spec,
                                       InterpreterBackendOptions options)
    : sim_(std::move(spec)), opt_(std::move(options)) {
  opt_.warmup = std::max(opt_.warmup, 0);
  opt_.repeats = std::max(opt_.repeats, 1);
  opt_.trim_fraction = std::clamp(opt_.trim_fraction, 0.0, 0.49);
  if (!opt_.clock) {
    opt_.clock = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  }
}

KernelMeasurement InterpreterBackend::measure(
    const Schedule& s, const MeasureOptions& /*options*/) const {
  KernelMeasurement m;
  // The same lowering gate as CompiledKernel: infeasible schedules fail
  // with a reason instead of executing (conformance contract).
  if (!s.valid()) {
    m.fail_reason = "schedule has no legal statement placement";
    return m;
  }
  if (!s.consume_complete()) {
    m.fail_reason = "schedule consumes partial tiles (Rule-2 structure)";
    return m;
  }
  const SmemPlan plan = plan_smem(s);
  m.n_blocks = s.num_blocks();
  m.smem_bytes = plan.total_bytes;
  if (plan.total_bytes > spec().smem_per_block) {
    m.fail_reason = "shared memory exceeds per-block limit (" +
                    std::to_string(plan.total_bytes) + " > " +
                    std::to_string(spec().smem_per_block) + " bytes)";
    return m;
  }

  const ChainSpec& chain = s.chain();
  Tensor a(Shape{chain.batch(), chain.m(), chain.inner().front()});
  Tensor out(Shape{chain.batch(), chain.m(), chain.inner().back()});
  a.fill_random(opt_.data_seed);
  std::vector<Tensor> weights;
  weights.reserve(static_cast<std::size_t>(chain.num_ops()));
  for (int op = 0; op < chain.num_ops(); ++op) {
    Tensor w(Shape{chain.batch(), chain.inner()[static_cast<std::size_t>(op)],
                   chain.inner()[static_cast<std::size_t>(op) + 1]});
    w.fill_random(opt_.data_seed + static_cast<std::uint64_t>(op) + 1);
    weights.push_back(std::move(w));
  }

  const Interpreter interp(s);
  for (int i = 0; i < opt_.warmup; ++i) (void)interp.run(a, weights, out);
  std::vector<double> samples(static_cast<std::size_t>(opt_.repeats));
  for (double& sample : samples) {
    const double t0 = opt_.clock();
    (void)interp.run(a, weights, out);
    // Clamp at a nanosecond: a sample below clock resolution must not
    // produce time_s == 0 (the contract promises time_s > 0 on ok).
    sample = std::max(opt_.clock() - t0, 1e-9);
  }
  // Trimmed mean: drop trim_fraction of the samples from each end.
  std::sort(samples.begin(), samples.end());
  const auto trim = static_cast<std::size_t>(
      static_cast<double>(samples.size()) * opt_.trim_fraction);
  const std::size_t lo = trim;
  const std::size_t hi = samples.size() - trim;
  m.time_s = std::accumulate(samples.begin() + static_cast<std::ptrdiff_t>(lo),
                             samples.begin() + static_cast<std::ptrdiff_t>(hi),
                             0.0) /
             static_cast<double>(hi - lo);
  m.ok = true;
  return m;
}

// ---- CachingBackend ---------------------------------------------------------

namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

std::string tiles_string(const Schedule& s) {
  std::string out;
  for (const auto t : s.tiles()) {
    if (!out.empty()) out += ",";
    out += std::to_string(t);
  }
  return out;
}

/// Composite first-field key: chain shape key, structure+options digest
/// and tiles, space- and '|'-free so the TuningCache line format round
/// trips it verbatim.  The options part comes from the inner backend
/// (only the fields it consumes), so irrelevant option churn still hits.
std::string measure_key(const Schedule& s, std::uint64_t options_digest) {
  const std::uint64_t digest =
      hash_combine(schedule_structure_digest(s), options_digest);
  return chain_cache_key(s.chain()) + "@" + hex64(digest) + "@" +
         tiles_string(s);
}

}  // namespace

CachingBackend::CachingBackend(std::shared_ptr<const MeasureBackend> inner)
    : inner_(std::move(inner)) {
  MCF_CHECK(inner_ != nullptr) << "CachingBackend needs an inner backend";
  name_ = "cached-" + std::string(inner_->name());
}

KernelMeasurement CachingBackend::measure(const Schedule& s,
                                          const MeasureOptions& options) const {
  const std::string key = measure_key(s, inner_->options_digest(options));
  const std::string& gpu_name = inner_->spec().name;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = mem_.find(key); it != mem_.end()) {
      ++hits_;
      return it->second;
    }
    // Persisted entries carry only time_s; rebuild the schedule geometry
    // (the contract promises honest n_blocks/smem_bytes on ok results)
    // and promote into the in-memory store so later hits are uniform.
    if (const auto disk = disk_.get_raw(key, gpu_name)) {
      KernelMeasurement m;
      m.ok = true;
      m.time_s = disk->time_s;
      m.n_blocks = s.num_blocks();
      m.smem_bytes = plan_smem(s).total_bytes;
      mem_.emplace(key, m);
      ++hits_;
      return m;
    }
  }
  // Measure outside the lock: inner backends can be slow, and measure()
  // must stay concurrent.  Two threads racing on the same fresh key both
  // measure; the first insert wins so every caller observes one value.
  const KernelMeasurement measured = inner_->measure(s, options);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = mem_.emplace(key, measured);
  if (inserted) {
    ++misses_;
    if (measured.ok) {
      disk_.put_raw(key, gpu_name,
                    CachedSchedule{hex64(schedule_structure_digest(s)),
                                   {s.tiles().begin(), s.tiles().end()},
                                   measured.time_s});
    }
  } else {
    ++hits_;
  }
  return it->second;
}

bool CachingBackend::save(const std::string& path) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return disk_.save(path);
}

bool CachingBackend::load(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  return disk_.load(path);
}

std::size_t CachingBackend::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t CachingBackend::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t CachingBackend::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return mem_.size();
}

// ---- registry ---------------------------------------------------------------

BackendRegistry::BackendRegistry() {
  factories_["sim"] = [](const GpuSpec& gpu) {
    return std::make_shared<SimulatorBackend>(gpu);
  };
  factories_["interp"] = [](const GpuSpec& gpu) {
    return std::make_shared<InterpreterBackend>(gpu);
  };
  factories_["cached-sim"] = [](const GpuSpec& gpu) {
    return std::make_shared<CachingBackend>(
        std::make_shared<SimulatorBackend>(gpu));
  };
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

bool BackendRegistry::add(const std::string& name, Factory factory) {
  const std::lock_guard<std::mutex> lock(mu_);
  return factories_.emplace(name, std::move(factory)).second;
}

std::shared_ptr<MeasureBackend> BackendRegistry::create(
    const std::string& name, const GpuSpec& gpu) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) return nullptr;
    factory = it->second;
  }
  return factory(gpu);
}

std::vector<std::string> BackendRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace mcf
