// JIT native-codegen execution subsystem — the repo's analogue of the
// paper's Triton -> PTX -> runtime-module path (§V), targeting the host
// CPU through the host C++ toolchain.
//
// exec/codegen lowers a Schedule into a tile-size-specialized C++ kernel
// (constant extents, `__restrict`, SIMD pragmas); this file turns those
// sources into runnable machine code:
//
//   * JitEngine (process-wide)  — batches many candidate kernels into ONE
//     translation unit, shells out to the host compiler once per batch
//     (`-O3 -march=native`, so the JIT'd code uses the full vector ISA
//     even when the library itself is built generic), dlopen()s the
//     resulting shared object and resolves per-candidate entry points.
//   * digest-keyed on-disk cache — kernels are keyed by
//     schedule_structure_digest (which already folds the tiles) + the gpu
//     key + the emitted source + compile flags; a `<key>.idx` file maps
//     the key to its shared object and symbol, so recompiles are free
//     across tuner generations, engine calls and processes.  The on-disk
//     directory has no automatic eviction (it is bounded by the distinct
//     schedules a deployment tunes, and `rm -rf` is always safe); the
//     IN-MEMORY resolved-kernel map and negative cache are LRU-bounded
//     (MCFUSER_JIT_KERNEL_CAP, default 4096 entries each); an evicted
//     key re-resolves from disk with one dlsym.
//   * refcounted module lifecycle — every dlopen'd TU is owned by a
//     shared JitModule handle; registry entries, JitKernel instances
//     and in-flight run_native calls hold references, and the LAST
//     release dlclose()s the object.  LRU eviction under churn
//     therefore actually returns the resident .so mappings: the number
//     of open modules is bounded by the kernel cap plus live kernel
//     handles (modules_opened / modules_open / modules_closed in
//     CompileStats).  Evicting a kernel while another thread executes
//     it is safe — the executor's reference keeps the module mapped
//     until its call returns; only then does the mapping go away.
//   * JitKernel — per-schedule handle: compile (or cache-hit) at
//     construction, then run() executes the fused chain natively with
//     thread-pool block parallelism and per-slot scratch arenas,
//     mirroring exec/interpreter's execution geometry.  The instance
//     pins its module, so a kernel outlives any registry eviction.
//
// Toolchain detection: `MCFUSER_JIT_CXX` env var, else the compiler CMake
// configured the library with (MCF_JIT_CXX), else `c++` on PATH.  When no
// working compiler exists (or under sanitizer builds, where uninstrumented
// JIT objects would poison the ASan/UBSan gate) everything degrades
// gracefully: JitKernel construction fails with a reason and the "jit"
// MeasureBackend falls back to the interpreter (measure/backend.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dag/schedule.hpp"
#include "tensor/tensor.hpp"

namespace mcf {
namespace jit {

/// Resolved host toolchain.  ok() == false carries the reason (no
/// compiler found, sanitizer build, ...).
struct Toolchain {
  std::string cxx;     ///< compiler executable; empty when unavailable
  std::string reason;  ///< why unavailable; empty when ok
  [[nodiscard]] bool ok() const noexcept { return !cxx.empty(); }
};

/// Re-reads the environment on every call (tests override
/// MCFUSER_JIT_CXX / MCFUSER_JIT_CACHE_DIR per backend instance).
[[nodiscard]] Toolchain detect_toolchain();

/// Kernel-cache directory: $MCFUSER_JIT_CACHE_DIR, else
/// $XDG_CACHE_HOME/mcfuser/jit, else $HOME/.cache/mcfuser/jit, else
/// /tmp/mcfuser-jit-<uid>.
[[nodiscard]] std::string cache_dir();

/// Process-wide compilation counters (monotonic; report deltas).
/// Surfaced in GraphFusionReport::to_json and the CLI --json output.
struct CompileStats {
  std::int64_t tus_compiled = 0;      ///< compiler invocations
  std::int64_t kernels_compiled = 0;  ///< kernels lowered+compiled fresh
  std::int64_t mem_hits = 0;          ///< resolved from the in-process map
  std::int64_t disk_hits = 0;         ///< resolved from the on-disk cache
  std::int64_t failures = 0;          ///< compile/dlopen/dlsym failures
  std::int64_t evictions = 0;         ///< in-memory LRU entries dropped
  std::int64_t modules_opened = 0;    ///< dlopen()s performed (counter)
  std::int64_t modules_closed = 0;    ///< dlclose()s on last release (counter)
  std::int64_t modules_open = 0;      ///< currently resident modules (gauge)
  double compile_wall_s = 0.0;        ///< wall time inside the compiler
  [[nodiscard]] std::int64_t cache_hits() const noexcept {
    return mem_hits + disk_hits;
  }
  /// Counter deltas over an interval: snapshot().since(earlier_snapshot).
  /// `modules_open` is a gauge, not a counter: the delta keeps the
  /// CURRENT open count (matching how worker-pool `active` is reported),
  /// so the accounting identity `opened == open + closed` only holds on
  /// absolute snapshots, not on deltas.
  [[nodiscard]] CompileStats since(const CompileStats& before) const noexcept {
    CompileStats d;
    d.tus_compiled = tus_compiled - before.tus_compiled;
    d.kernels_compiled = kernels_compiled - before.kernels_compiled;
    d.mem_hits = mem_hits - before.mem_hits;
    d.disk_hits = disk_hits - before.disk_hits;
    d.failures = failures - before.failures;
    d.evictions = evictions - before.evictions;
    d.modules_opened = modules_opened - before.modules_opened;
    d.modules_closed = modules_closed - before.modules_closed;
    d.modules_open = modules_open;
    d.compile_wall_s = compile_wall_s - before.compile_wall_s;
    return d;
  }
};

[[nodiscard]] CompileStats stats_snapshot();

/// Entry point of a compiled kernel (see CppKernelSource in codegen.hpp):
/// executes thread blocks [block_begin, block_end) into `out` using
/// `scratch` (cpp_kernel_scratch_floats(s) floats) as the tile arena.
using KernelFn = void (*)(const float* a, const float* const* weights,
                          float* out, float* scratch, long long block_begin,
                          long long block_end);

/// A dlopen'd kernel translation unit with refcounted lifetime: the last
/// ModuleRef release dlclose()s the shared object, so function pointers
/// resolved from a module are valid ONLY while a reference is held.
/// Construction/destruction maintain the process-wide module counters
/// (CompileStats::modules_opened / modules_open / modules_closed).
class JitModule {
 public:
  explicit JitModule(void* handle) noexcept;
  ~JitModule();
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;
  [[nodiscard]] void* handle() const noexcept { return handle_; }

 private:
  void* handle_;
};

using ModuleRef = std::shared_ptr<const JitModule>;

/// A resolved entry point plus the module reference that keeps it
/// executable.  Keep `module` alive for as long as `fn` may run —
/// dropping the last reference unmaps the code out from under it.
struct ResolvedKernel {
  KernelFn fn = nullptr;
  ModuleRef module;
  [[nodiscard]] bool ok() const noexcept { return fn != nullptr; }
};

/// Resolves (compiling at most once) the native kernel for one schedule.
/// Thread-safe; !ok() with `error` filled when the toolchain is
/// unavailable or compilation fails.
[[nodiscard]] ResolvedKernel resolve_kernel(const Schedule& s,
                                            const std::string& gpu_key,
                                            const Toolchain& tc,
                                            std::string* error);

/// Test hook: swaps the in-memory kernel map and negative cache for
/// fresh ones bounded at `cap` entries each (0 = unbounded), dropping
/// every cached entry point — modules close as their last references
/// go.  The environment-latched default (MCFUSER_JIT_KERNEL_CAP) is
/// untouched; pass it back via a fresh call to restore.
void set_kernel_cap_for_testing(std::size_t cap);

/// A compiled kernel located on disk WITHOUT loading it into this
/// process: the cache key, the shared-object path and the entry symbol.
/// This is what crosses the sandbox process boundary (exec/sandbox.hpp)
/// — the isolated worker dlopen()s the path itself, so a kernel that
/// crashes on load or on first run never touches the host address space.
struct KernelArtifact {
  std::uint64_t key = 0;  ///< digest-keyed cache identity (crash cache key)
  std::string so_path;    ///< empty when resolution failed
  std::string symbol;
  std::string error;  ///< why resolution failed; empty when ok
  [[nodiscard]] bool ok() const noexcept { return !so_path.empty(); }
};

/// Resolves (compiling at most once) the on-disk artifact for one
/// schedule.  Thread-safe.  Unlike resolve_kernel this never dlopen()s.
[[nodiscard]] KernelArtifact resolve_artifact(const Schedule& s,
                                              const std::string& gpu_key,
                                              const Toolchain& tc);

/// Drops every cached trace of `key` — the in-memory entry-point and
/// negative-cache entries AND the on-disk `<key>.idx` file — so the next
/// resolve recompiles.  Used when a worker finds the cached .so poisoned
/// (truncated write, foreign-ISA restore): evict + recompile once instead
/// of failing the measurement.  The .so itself stays (other kernels may
/// share the TU); the recompile republishes it via tmp+rename.  Returns
/// whether anything was removed.
bool invalidate_kernel(std::uint64_t key);

/// Batched form: compiles every not-yet-cached kernel of `batch` in ONE
/// translation unit / compiler invocation (the tuner calls this once per
/// measurement wave).  Individual failures are recorded in the stats and
/// surface later through resolve_kernel.
void prepare_kernels(std::span<const Schedule* const> batch,
                     const std::string& gpu_key, const Toolchain& tc);

/// Executes a resolved kernel over all blocks of `s` (Interpreter::run's
/// tensor contract), fanning contiguous block ranges out across the
/// global thread pool.  `threads` caps the fan-out: <= 0 uses the full
/// pool concurrency, 1 runs single-threaded on the calling thread, T > 1
/// splits the blocks into min(T, n_blocks) deterministic contiguous
/// chunks (per-block work is independent, so results are bit-identical
/// for every T).  `scratch` is the caller-owned per-slot workspace:
/// arenas allocate lazily on first use and are REUSED across calls, so
/// repeat invocations (sampling loops) pay no allocation.  Concurrent
/// callers must pass distinct scratch vectors.  The caller must hold a
/// ModuleRef for `fn`'s module for the duration of the call.
void run_compiled(KernelFn fn, const Schedule& s, const Tensor& a,
                  std::span<const Tensor> weights, Tensor& out,
                  std::vector<std::vector<float>>& scratch, int threads = 0);

}  // namespace jit

/// One schedule, compiled to native code and runnable.  Construction
/// resolves the kernel through the digest-keyed cache; ok() == false
/// carries the reason (no toolchain / compile failure) and run() must not
/// be called.  run() matches Interpreter::run's tensor contract
/// (rank-3 batch-major input/weights/output) and executes blocks across
/// the global thread pool; the per-slot scratch arenas live in the
/// kernel and are reused across run() calls, so concurrent run() on ONE
/// instance is not supported (use one JitKernel per thread — the
/// compiled code itself is shared through the cache either way).
class JitKernel {
 public:
  /// The schedule is stored by value (it is a small value type), so a
  /// temporary is safe to pass.
  explicit JitKernel(Schedule schedule, const std::string& gpu_key = "");

  [[nodiscard]] bool ok() const noexcept { return fn_ != nullptr; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const Schedule& schedule() const noexcept { return s_; }

  /// `threads` caps the block fan-out (see jit::run_compiled); 0 = full
  /// pool concurrency.
  void run(const Tensor& a, std::span<const Tensor> weights, Tensor& out,
           int threads = 0) const;

 private:
  Schedule s_;
  jit::KernelFn fn_ = nullptr;
  jit::ModuleRef module_;  ///< pins the .so mapping across evictions
  std::string error_;
  mutable std::vector<std::vector<float>> scratch_;  ///< per-slot arenas
};

}  // namespace mcf
