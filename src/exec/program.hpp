// CompiledKernel: the product of "lowering" a schedule — the repo's
// analogue of MCFuser's Triton -> PTX -> TVM runtime module path (§V).
//
// Compilation validates the schedule against the target GPU (actual
// shared-memory fit — the paper's quadrant-II candidates are rejected
// here, "during PTX code lowering"), precomputes the static volume report
// and shared-memory plan, and exposes run()/measure().
#pragma once

#include <optional>
#include <span>
#include <string>

#include "dag/schedule.hpp"
#include "dag/volume.hpp"
#include "exec/interpreter.hpp"
#include "gpu/smem.hpp"
#include "gpu/timing.hpp"
#include "tensor/tensor.hpp"

namespace mcf {

class CompiledKernel {
 public:
  /// Schedule + target; fails (ok()==false) when the kernel cannot be
  /// lowered (invalid placement, Rule-2 partial tiles, smem overflow).
  CompiledKernel(Schedule schedule, GpuSpec gpu);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  [[nodiscard]] const Schedule& schedule() const noexcept { return schedule_; }
  [[nodiscard]] const VolumeReport& volume() const noexcept { return volume_; }
  [[nodiscard]] const SmemPlan& smem() const noexcept { return smem_; }
  [[nodiscard]] const GpuSpec& gpu() const noexcept { return gpu_; }

  /// Functional execution (see Interpreter).
  ExecutionCounters run(const Tensor& a, std::span<const Tensor> weights,
                        Tensor& out) const;

  /// Native execution: compiles the schedule to machine code through the
  /// exec/jit subsystem (digest-keyed cache — repeat calls resolve
  /// without recompiling) and runs it, holding a module reference for
  /// the duration so a concurrent registry eviction can never unmap the
  /// executing code.  `threads` caps the block fan-out across the
  /// worker-slot pool (<= 0 = full pool concurrency, 1 = single-
  /// threaded); the output is bit-identical for every thread count.
  /// Returns false without touching `out` when no host toolchain is
  /// available (or compilation failed); fall back to run().  Same tensor
  /// contract as run(); results agree with the interpreter to float
  /// round-off (tests/exec/test_jit.cpp).
  bool run_native(const Tensor& a, std::span<const Tensor> weights,
                  Tensor& out, int threads = 0) const;

  /// Simulated hardware measurement.
  [[nodiscard]] KernelMeasurement measure(const MeasureOptions& options = {}) const;

 private:
  Schedule schedule_;
  GpuSpec gpu_;
  VolumeReport volume_;
  SmemPlan smem_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace mcf
