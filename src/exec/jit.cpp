#include "exec/jit.hpp"

#include <dlfcn.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "exec/codegen.hpp"
#include "measure/backend.hpp"
#include "support/env.hpp"
#include "support/logging.hpp"
#include "support/lru_map.hpp"
#include "support/mutex.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "verify/verify.hpp"

namespace mcf {
namespace jit {

namespace {

namespace fs = std::filesystem;

/// Bump when the emitted code or ABI changes: stale on-disk kernels from
/// an older emitter must miss, not resolve.  v5: fault-injection seam in
/// the prelude + per-kernel mcf_maybe_fault call (exec/sandbox chaos
/// tests).
constexpr std::uint64_t kEmitterVersion = 6;

/// Kernels are always compiled at full optimisation for the build
/// machine's vector ISA — the point of the JIT is that the micro-kernel
/// runs -O3 -march=native even when the library itself is built generic.
/// -fno-math-errno / -fno-trapping-math drop the libm side-effect
/// assumptions that block vectorisation of floorf in the softmax exp
/// (results are unchanged: the kernels never read errno or FP traps);
/// full -ffast-math stays OFF — the online softmax relies on -inf
/// sentinel semantics.
constexpr const char* kCompileFlags =
    "-std=c++17 -O3 -march=native -fopenmp-simd -fno-math-errno "
    "-fno-trapping-math -fPIC -shared";

[[nodiscard]] std::string find_on_path(const std::string& name) {
  if (name.find('/') != std::string::npos) {
    return ::access(name.c_str(), X_OK) == 0 ? name : std::string();
  }
  const char* path = env::raw("PATH");
  if (path == nullptr) return {};
  std::istringstream is(path);
  std::string dir;
  while (std::getline(is, dir, ':')) {
    if (dir.empty()) continue;
    const std::string full = dir + "/" + name;
    if (::access(full.c_str(), X_OK) == 0) return full;
  }
  return {};
}

[[nodiscard]] std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

/// In-memory entry cap of the resolved-kernel map and the negative cache
/// (each).  The maps hold only pointers/strings, but under a flood of
/// millions of distinct schedules an unbounded registry is still an OOM
/// vector — evicted entries re-resolve from the on-disk cache (a dlsym,
/// counted as a disk hit), so the cap trades a cheap lookup for bounded
/// memory.  MCFUSER_JIT_KERNEL_CAP overrides; 0 = unbounded.
[[nodiscard]] std::size_t kernel_map_cap() {
  static const std::size_t cap = env::size("MCFUSER_JIT_KERNEL_CAP", 4096);
  return cap;
}

/// Process-wide module counters.  They live OUTSIDE the registry lock on
/// purpose: LruMap eviction runs inside insert() while the caller holds
/// `Registry::mu`, and dropping an evicted entry may run ~JitModule —
/// which must therefore never re-enter the registry.  Atomics make the
/// destructor lock-free; stats_snapshot() folds them into CompileStats.
std::atomic<std::int64_t> g_modules_opened{0};
std::atomic<std::int64_t> g_modules_closed{0};

/// Process-wide kernel registry: resolved entry points and negative
/// results (both LRU-bounded by kernel_map_cap(); support/lru_map.hpp),
/// weak per-path module handles (a path's module is shared while ANY
/// strong reference exists — registry entry, JitKernel, in-flight run —
/// and dlclose()d by ~JitModule on last release), and the compile
/// counters.  All members require holding `mu`.
struct Registry {
  Mutex mu{"jit.registry"};
  LruMap<std::uint64_t, ResolvedKernel> fns MCF_GUARDED_BY(mu);
  LruMap<std::uint64_t, std::string> failed MCF_GUARDED_BY(mu);  ///< key -> reason
  /// so path -> module (weak: the map itself must not pin mappings open,
  /// or eviction could never return memory).  Expired entries are pruned
  /// lazily on the next dlopen.
  std::unordered_map<std::string, std::weak_ptr<const JitModule>> handles
      MCF_GUARDED_BY(mu);
  CompileStats stats MCF_GUARDED_BY(mu);
  /// Evictions accumulated in maps replaced by set_kernel_cap_for_testing
  /// (LruMap counters reset when the maps are swapped).
  std::int64_t evictions_base MCF_GUARDED_BY(mu) = 0;

  Registry()
      : fns(LruMap<std::uint64_t, ResolvedKernel>::Limits{kernel_map_cap(), 0}),
        failed(
            LruMap<std::uint64_t, std::string>::Limits{kernel_map_cap(), 0}) {}

  static Registry& instance() {
    static Registry r;
    return r;
  }

  /// Mirror the LRU eviction counters into the public stats snapshot
  /// (call after any insert).
  void sync_evictions_locked() MCF_REQUIRES(mu) {
    stats.evictions =
        evictions_base +
        static_cast<std::int64_t>(fns.evictions() + failed.evictions());
  }
};

/// One emitted kernel plus its cache identity.  The key folds the
/// structure digest (chain shape key, statement tree, tiles), the gpu
/// key, the compile flags, the emitter version AND a hash of the full
/// emitted source (prelude included) — so an emitter change can never
/// serve stale native code from the persistent cache, version bump or
/// not.  Emission costs microseconds; resolving is dominated by either
/// the compile (cold) or the kernel run (warm), so hashing the source
/// on every key derivation is free in context.
struct EmittedKernel {
  std::uint64_t key = 0;
  std::string symbol;
  std::string code;
};

/// Identity of the machine the kernels are compiled FOR: -march=native
/// objects are only valid on a CPU with the same ISA extensions, and the
/// cache directory can be shared across machines (network homes, CI
/// cache restores onto heterogeneous runners).  Model name + feature
/// flags is a conservative over-approximation of the ISA; non-Linux
/// hosts fall back to an empty fingerprint (same-machine caching only).
[[nodiscard]] const std::string& host_cpu_fingerprint() {
  static const std::string fp = [] {
    std::string model;
    std::string flags;
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
      if (model.empty() && line.rfind("model name", 0) == 0) model = line;
      if (flags.empty() && line.rfind("flags", 0) == 0) flags = line;
      if (!model.empty() && !flags.empty()) break;
    }
    return model + "|" + flags;
  }();
  return fp;
}

[[nodiscard]] EmittedKernel emit_keyed(const Schedule& s,
                                       const std::string& gpu_key) {
  std::uint64_t h = schedule_structure_digest(s);
  h = hash_combine(h, hash_string(gpu_key));
  h = hash_combine(h, hash_string(kCompileFlags));
  h = hash_combine(h, hash_string(host_cpu_fingerprint()));
  h = hash_combine(h, kEmitterVersion);
  // The symbol must not depend on the source (the source contains it);
  // derive it from the pre-source key, then finish the key.
  EmittedKernel out;
  out.symbol = "mcf_k" + hex64(h);
  out.code = emit_cpp_kernel(s, out.symbol).code;
  h = hash_combine(h, hash_string(cpp_kernel_prelude()));
  out.key = hash_combine(h, hash_string(out.code));
  return out;
}

/// POSIX-shell single quoting for paths embedded in the popen command
/// (an apostrophe in $HOME or MCFUSER_JIT_CXX must stay data).
[[nodiscard]] std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') out += "'\\''";
    else out += c;
  }
  out += "'";
  return out;
}

/// Hard wall-clock deadline for one compiler invocation, in seconds.
/// Re-read per invocation (tests vary it); 0 disables the deadline.
/// A hung $CXX (broken wrapper script, NFS stall, runaway template
/// instantiation) must fail the measurement wave, not stall it forever.
[[nodiscard]] double compile_timeout_s() {
  return env::real("MCFUSER_JIT_COMPILE_TIMEOUT_S", 120.0, 0.0, 1e9);
}

struct CommandResult {
  bool spawned = false;    ///< fork/exec machinery itself worked
  bool timed_out = false;  ///< killed at the deadline
  int exit_code = 0;
  int term_signal = 0;
  std::string output;  ///< merged stdout+stderr
};

/// Runs `cmd` through /bin/sh with stdout+stderr captured and a hard
/// wall-clock deadline: on expiry the whole process group is SIGKILLed
/// and reaped (the child setpgid()s itself; both sides race-proof it).
/// The popen() this replaces blocked in fgets with no way out.
[[nodiscard]] CommandResult run_command_deadline(const std::string& cmd,
                                                 double deadline_s) {
  CommandResult r;
  int fds[2];
  if (::pipe(fds) != 0) return r;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return r;
  }
  if (pid == 0) {
    ::setpgid(0, 0);
    ::dup2(fds[1], 1);
    ::dup2(fds[1], 2);
    ::close(fds[0]);
    ::close(fds[1]);
    ::execl("/bin/sh", "sh", "-c", cmd.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::setpgid(pid, pid);  // mirror the child's call: whoever runs first wins
  ::close(fds[1]);
  r.spawned = true;
  const auto t0 = std::chrono::steady_clock::now();
  char buf[512];
  for (;;) {
    int timeout_ms = -1;
    if (deadline_s > 0) {
      const double left =
          deadline_s - std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      if (left <= 0) {
        r.timed_out = true;
        break;
      }
      timeout_ms = static_cast<int>(left * 1000.0) + 1;
    }
    struct pollfd pfd {
      fds[0], POLLIN, 0
    };
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr == 0) {
      r.timed_out = true;
      break;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n > 0) {
      r.output.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (compiler exited) or unrecoverable read error
  }
  ::close(fds[0]);
  if (r.timed_out) ::kill(-pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.term_signal = WTERMSIG(status);
  }
  return r;
}

/// dlopen (module memoized per path while alive, caller holds the
/// registry lock) + dlsym.  Returns the entry point together with the
/// ModuleRef that keeps it executable; !ok() on failure.
[[nodiscard]] ResolvedKernel load_symbol_locked(Registry& reg,
                                                const std::string& so_path,
                                                const std::string& symbol,
                                                std::string* error) {
  ModuleRef module;
  if (const auto it = reg.handles.find(so_path); it != reg.handles.end()) {
    module = it->second.lock();
  }
  if (module == nullptr) {
    // Lazy prune: dlopen is the slow path anyway, so sweep out weak
    // entries whose modules have since closed (keeps the map bounded by
    // the RESIDENT module count, not by every path ever loaded).
    std::erase_if(reg.handles,
                  [](const auto& kv) { return kv.second.expired(); });
    void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
      if (error != nullptr) {
        const char* why = ::dlerror();
        *error = "dlopen failed: " + std::string(why != nullptr ? why : "?");
      }
      return {};
    }
    module = std::make_shared<const JitModule>(handle);
    reg.handles[so_path] = module;
  }
  void* sym = ::dlsym(module->handle(), symbol.c_str());
  if (sym == nullptr) {
    if (error != nullptr) {
      *error = "symbol " + symbol + " missing from " + so_path;
    }
    return {};
  }
  return ResolvedKernel{reinterpret_cast<KernelFn>(sym), std::move(module)};
}

/// One compiler invocation over `pending` (caller holds the compile
/// mutex).  On success publishes entry points + per-kernel idx files
/// and returns empty; on failure returns the diagnostic WITHOUT
/// touching the negative cache — the caller decides (a multi-kernel
/// batch retries kernels individually first, so one broken kernel
/// cannot poison its wave-mates).  All intermediate files carry a
/// per-invocation unique suffix and are renamed into place, so
/// concurrent PROCESSES sharing the cache directory never observe each
/// other's partial writes.
[[nodiscard]] std::string compile_tu_locked(
    const std::vector<EmittedKernel>& pending, const Toolchain& tc) {
  Registry& reg = Registry::instance();
  std::string source = cpp_kernel_prelude();
  std::uint64_t tu_hash = kEmitterVersion;
  for (const EmittedKernel& p : pending) {
    source += p.code;
    source += "\n";
    tu_hash = hash_combine(tu_hash, p.key);
  }

  std::error_code ec;
  const fs::path dir = cache_dir();
  fs::create_directories(dir, ec);
  static std::atomic<std::uint64_t> invocation{0};
  const std::string unique = std::to_string(::getpid()) + "." +
                             std::to_string(invocation.fetch_add(1));
  const std::string tu_name = "tu_" + hex64(tu_hash);
  const fs::path cpp_path = dir / (tu_name + ".cpp");
  // The temporary source must keep the .cpp extension — the compiler
  // picks the input language from it.
  const fs::path cpp_tmp = dir / (tu_name + ".tmp." + unique + ".cpp");
  const fs::path so_path = dir / (tu_name + ".so");
  const fs::path so_tmp = dir / (tu_name + ".so.tmp." + unique);

  std::string fail;
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::ofstream out(cpp_tmp);
    out << source;
    if (!out) fail = "cannot write " + cpp_tmp.string();
  }
  if (fail.empty()) {
    const std::string cmd = shell_quote(tc.cxx) + " " + kCompileFlags +
                            " -o " + shell_quote(so_tmp.string()) + " " +
                            shell_quote(cpp_tmp.string());
    const double deadline = compile_timeout_s();
    const CommandResult res = run_command_deadline(cmd, deadline);
    if (!res.spawned) {
      fail = "cannot invoke compiler: " + tc.cxx;
    } else if (res.timed_out) {
      std::ostringstream os;
      os << "compile timed out after " << deadline << "s (" << tc.cxx
         << " killed; raise MCFUSER_JIT_COMPILE_TIMEOUT_S if the machine is "
            "just slow)";
      fail = os.str();
    } else if (res.exit_code != 0 || res.term_signal != 0) {
      fail = "compile failed (" + tc.cxx + "): " +
             res.output.substr(0,
                               std::min<std::size_t>(res.output.size(), 2000));
    }
  }
  if (fail.empty()) {
    fs::rename(so_tmp, so_path, ec);
    if (ec) fail = "cannot publish " + so_path.string() + ": " + ec.message();
  }
  // The source is kept (renamed into place) for debuggability; losing a
  // rename race to a concurrent process is harmless — contents match.
  fs::rename(cpp_tmp, cpp_path, ec);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const LockGuard lock(reg.mu);
  reg.stats.compile_wall_s += wall;
  if (!fail.empty()) {
    fs::remove(so_tmp, ec);
    return fail;
  }
  reg.stats.tus_compiled += 1;
  // The rename above replaced the file at so_path with a NEW inode: a
  // memoized module for that path (from a previous publish of the same
  // TU name) still maps the old object.  Drop the weak entry so this
  // batch dlopen()s the fresh object — existing strong references keep
  // the stale module alive and executable until they release.
  reg.handles.erase(so_path.string());
  for (const EmittedKernel& p : pending) {
    std::string err;
    ResolvedKernel rk = load_symbol_locked(reg, so_path.string(), p.symbol, &err);
    if (!rk.ok()) {
      reg.stats.failures += 1;
      (void)reg.failed.insert(p.key, std::move(err));
      reg.sync_evictions_locked();
      continue;
    }
    reg.stats.kernels_compiled += 1;
    (void)reg.fns.insert(p.key, std::move(rk));
    reg.sync_evictions_locked();
    // Per-kernel index entry: key -> (shared object, symbol), so any
    // later process resolves this kernel without recompiling.  Written
    // via tmp+rename for the same cross-process atomicity.
    const fs::path idx_path = dir / (hex64(p.key) + ".idx");
    const fs::path idx_tmp = dir / (hex64(p.key) + ".idx.tmp." + unique);
    {
      std::ofstream idx(idx_tmp);
      idx << tu_name << ".so " << p.symbol << "\n";
    }
    fs::rename(idx_tmp, idx_path, ec);
  }
  return {};
}

/// Compiles all pending kernels in ONE translation unit / compiler
/// invocation.  When a multi-kernel TU fails, its members recompile
/// individually so only genuinely broken kernels get negative-cached —
/// valid wave-mates must not silently degrade to the interpreter.
///
/// Concurrency: a process-wide mutex serializes compilation (two
/// threads racing to compile the same key would otherwise clobber the
/// shared TU paths and negative-cache a corrupted compile), and after
/// taking it every already-resolved kernel is dropped from the batch.
void compile_batch_tu(std::vector<EmittedKernel> pending, const Toolchain& tc) {
  static Mutex compile_mu{"jit.compile"};
  const LockGuard compile_lock(compile_mu);
  Registry& reg = Registry::instance();
  {
    const LockGuard lock(reg.mu);
    std::erase_if(pending, [&](const EmittedKernel& p) {
      return reg.fns.contains(p.key) || reg.failed.contains(p.key);
    });
  }
  if (pending.empty()) return;

  std::string fail = compile_tu_locked(pending, tc);
  if (fail.empty()) return;
  if (pending.size() > 1) {
    // Isolate the offender: one TU per kernel.
    for (const EmittedKernel& p : pending) {
      fail = compile_tu_locked({p}, tc);
      if (!fail.empty()) {
        const LockGuard lock(reg.mu);
        reg.stats.failures += 1;
        (void)reg.failed.insert(p.key, fail);
        reg.sync_evictions_locked();
      }
    }
    return;
  }
  const LockGuard lock(reg.mu);
  reg.stats.failures += 1;
  (void)reg.failed.insert(pending.front().key, std::move(fail));
  reg.sync_evictions_locked();
}

/// Host-side stale-artifact healing (the in-process mirror of the
/// sandbox worker's poisoned-artifact path): a `<key>.idx` pointing at a
/// deleted, truncated or otherwise unloadable `tu_*.so` must cost ONE
/// recompile, not surface a hard dlopen failure or poison the negative
/// cache.  Removes the idx so no process keeps probing the corpse; the
/// recompile republishes both files via tmp+rename.
void heal_stale_artifact(std::uint64_t key, const std::string& why) {
  std::error_code ec;
  fs::remove(fs::path(cache_dir()) / (hex64(key) + ".idx"), ec);
  MCF_LOG(Warn) << "jit: cached artifact for key " << hex64(key)
                << " is stale (" << why << "); evicted, recompiling";
}

/// In-memory or on-disk hit; !ok() on miss.  `miss_reason` (nullable)
/// receives a previously recorded compile failure.  `count_hits` is
/// false on the lookup right after a fresh compile — resolving the
/// kernel one just built is not a cache hit.
[[nodiscard]] ResolvedKernel try_cached(std::uint64_t key,
                                        std::string* miss_reason,
                                        bool count_hits = true) {
  Registry& reg = Registry::instance();
  {
    const LockGuard lock(reg.mu);
    if (const ResolvedKernel* rk = reg.fns.find(key)) {
      if (count_hits) ++reg.stats.mem_hits;
      return *rk;
    }
    if (const std::string* why = reg.failed.find(key)) {
      if (miss_reason != nullptr) *miss_reason = *why;
      return {};
    }
  }
  // Disk probe outside the lock (filesystem I/O).
  const fs::path dir = cache_dir();
  std::ifstream idx(dir / (hex64(key) + ".idx"));
  std::string so_name;
  std::string symbol;
  if (!(idx >> so_name >> symbol)) return {};
  const fs::path so_path = dir / so_name;
  std::error_code ec;
  if (!fs::exists(so_path, ec)) {
    // idx survived but its shared object did not (partial cache wipe,
    // foreign cleanup): heal instead of probing the dangling entry on
    // every future resolve.
    heal_stale_artifact(key, "shared object " + so_name + " missing");
    return {};
  }

  std::string err;
  ResolvedKernel rk;
  {
    const LockGuard lock(reg.mu);
    if (const ResolvedKernel* racing = reg.fns.find(key)) {
      ++reg.stats.mem_hits;
      return *racing;
    }
    rk = load_symbol_locked(reg, so_path.string(), symbol, &err);
    if (rk.ok()) {
      ++reg.stats.disk_hits;
      (void)reg.fns.insert(key, rk);
      reg.sync_evictions_locked();
      return rk;
    }
    // Unloadable object (truncated write, foreign-ISA restore) or a TU
    // that no longer exports this symbol: make sure the next dlopen sees
    // the republished file, not a memoized stale module.
    reg.handles.erase(so_path.string());
  }
  heal_stale_artifact(key, err.empty() ? "unloadable shared object" : err);
  return {};
}

}  // namespace

Toolchain detect_toolchain() {
#ifdef MCF_SANITIZE_BUILD
  return Toolchain{
      "", "sanitizer build: uninstrumented jit objects would evade the "
          "ASan/UBSan gate"};
#else
  if (const char* env = env::raw("MCFUSER_JIT_CXX")) {
    const std::string resolved = find_on_path(env);
    if (!resolved.empty()) return Toolchain{resolved, ""};
    return Toolchain{"", "MCFUSER_JIT_CXX ('" + std::string(env) +
                             "') is not an executable compiler"};
  }
#ifdef MCF_JIT_CXX
  if (::access(MCF_JIT_CXX, X_OK) == 0) return Toolchain{MCF_JIT_CXX, ""};
#endif
  const std::string fallback = find_on_path("c++");
  if (!fallback.empty()) return Toolchain{fallback, ""};
  return Toolchain{"",
                   "no host C++ compiler found (set MCFUSER_JIT_CXX or "
                   "install one on PATH)"};
#endif
}

std::string cache_dir() {
  if (const std::string dir = env::str("MCFUSER_JIT_CACHE_DIR", "");
      !dir.empty()) {
    return dir;
  }
  if (const std::string xdg = env::str("XDG_CACHE_HOME", ""); !xdg.empty()) {
    return xdg + "/mcfuser/jit";
  }
  if (const std::string home = env::str("HOME", ""); !home.empty()) {
    return home + "/.cache/mcfuser/jit";
  }
  return "/tmp/mcfuser-jit-" + std::to_string(::getuid());
}

CompileStats stats_snapshot() {
  Registry& reg = Registry::instance();
  CompileStats s;
  {
    const LockGuard lock(reg.mu);
    s = reg.stats;
  }
  // Module counters are process-global atomics (~JitModule may run while
  // reg.mu is held, so they live outside the lock); fold them here.
  // Load `closed` first: racing closes between the two loads can only
  // make the derived gauge err HIGH, never negative.
  s.modules_closed = g_modules_closed.load(std::memory_order_acquire);
  s.modules_opened = g_modules_opened.load(std::memory_order_acquire);
  s.modules_open = s.modules_opened - s.modules_closed;
  return s;
}

JitModule::JitModule(void* handle) noexcept : handle_(handle) {
  g_modules_opened.fetch_add(1, std::memory_order_acq_rel);
}

JitModule::~JitModule() {
  // May run under Registry::mu (LRU eviction inside insert) — must not
  // touch the registry, only the lock-free counters.
  ::dlclose(handle_);
  g_modules_closed.fetch_add(1, std::memory_order_acq_rel);
}

void set_kernel_cap_for_testing(std::size_t cap) {
  Registry& reg = Registry::instance();
  const LockGuard lock(reg.mu);
  reg.evictions_base +=
      static_cast<std::int64_t>(reg.fns.evictions() + reg.failed.evictions());
  reg.fns = LruMap<std::uint64_t, ResolvedKernel>(
      LruMap<std::uint64_t, ResolvedKernel>::Limits{cap, 0});
  reg.failed = LruMap<std::uint64_t, std::string>(
      LruMap<std::uint64_t, std::string>::Limits{cap, 0});
}

ResolvedKernel resolve_kernel(const Schedule& s, const std::string& gpu_key,
                              const Toolchain& tc, std::string* error) {
  if (!tc.ok()) {
    if (error != nullptr) *error = tc.reason;
    return {};
  }
  EmittedKernel ek = emit_keyed(s, gpu_key);
  // Pre-compile safety gate (src/verify/): a schedule the static
  // analyzer can prove out-of-bounds is never handed to the compiler —
  // and the check runs BEFORE the cache probe, so even a poisoned disk
  // cache cannot hand back a kernel the verifier rejects.
  if (verify::verify_enabled()) {
    if (std::string verr = verify::verify_gate_error(s); !verr.empty()) {
      Registry& reg = Registry::instance();
      const LockGuard lock(reg.mu);
      (void)reg.failed.insert(ek.key, verr);
      reg.sync_evictions_locked();
      if (error != nullptr) *error = std::move(verr);
      return {};
    }
  }
  std::string fail;
  if (ResolvedKernel rk = try_cached(ek.key, &fail); rk.ok()) return rk;
  if (!fail.empty()) {
    if (error != nullptr) *error = fail;
    return {};
  }
  const std::uint64_t key = ek.key;
  compile_batch_tu({std::move(ek)}, tc);
  if (ResolvedKernel rk = try_cached(key, &fail, /*count_hits=*/false); rk.ok()) {
    return rk;
  }
  if (error != nullptr) {
    *error = fail.empty() ? "kernel did not resolve after compilation" : fail;
  }
  return {};
}

KernelArtifact resolve_artifact(const Schedule& s, const std::string& gpu_key,
                                const Toolchain& tc) {
  KernelArtifact a;
  if (!tc.ok()) {
    a.error = tc.reason;
    return a;
  }
  if (!s.valid() || !s.consume_complete()) {
    a.error = "schedule is not lowerable (invalid or Rule-2 incomplete)";
    return a;
  }
  EmittedKernel ek = emit_keyed(s, gpu_key);
  a.key = ek.key;
  a.symbol = ek.symbol;
  // Same pre-compile safety gate as resolve_kernel: the sandbox workers
  // must never be handed an artifact the verifier rejects, cached or not.
  if (verify::verify_enabled()) {
    if (std::string verr = verify::verify_gate_error(s); !verr.empty()) {
      Registry& vreg = Registry::instance();
      const LockGuard lock(vreg.mu);
      (void)vreg.failed.insert(a.key, verr);
      vreg.sync_evictions_locked();
      a.error = std::move(verr);
      return a;
    }
  }
  Registry& reg = Registry::instance();
  const fs::path dir = cache_dir();
  const auto read_idx = [&]() -> bool {
    std::ifstream idx(dir / (hex64(a.key) + ".idx"));
    std::string so_name;
    std::string symbol;
    if (!(idx >> so_name >> symbol)) return false;
    const fs::path so = dir / so_name;
    std::error_code ec;
    if (!fs::exists(so, ec)) return false;
    a.so_path = so.string();
    a.symbol = symbol;
    return true;
  };
  {
    const LockGuard lock(reg.mu);
    if (const std::string* why = reg.failed.find(a.key)) {
      a.error = *why;
      return a;
    }
  }
  if (read_idx()) {
    const LockGuard lock(reg.mu);
    ++reg.stats.disk_hits;
    return a;
  }
  {
    // The artifact resolves through the idx file, never the in-memory fn
    // map — a stale fn entry (its idx removed by invalidate_kernel) would
    // make compile_batch_tu skip the recompile that recreates the idx.
    const LockGuard lock(reg.mu);
    (void)reg.fns.erase(a.key);
  }
  compile_batch_tu({std::move(ek)}, tc);
  {
    const LockGuard lock(reg.mu);
    if (const std::string* why = reg.failed.find(a.key)) {
      a.error = *why;
      return a;
    }
  }
  if (!read_idx()) a.error = "kernel artifact did not resolve after compilation";
  return a;
}

bool invalidate_kernel(std::uint64_t key) {
  Registry& reg = Registry::instance();
  bool removed = false;
  {
    const LockGuard lock(reg.mu);
    removed = reg.fns.erase(key);
    removed = reg.failed.erase(key) || removed;
  }
  std::error_code ec;
  removed =
      fs::remove(fs::path(cache_dir()) / (hex64(key) + ".idx"), ec) || removed;
  return removed;
}

void prepare_kernels(std::span<const Schedule* const> batch,
                     const std::string& gpu_key, const Toolchain& tc) {
  if (!tc.ok()) return;
  std::vector<EmittedKernel> pending;
  std::vector<std::uint64_t> seen;
  for (const Schedule* s : batch) {
    if (s == nullptr || !s->valid() || !s->consume_complete()) continue;
    EmittedKernel ek = emit_keyed(*s, gpu_key);
    if (std::find(seen.begin(), seen.end(), ek.key) != seen.end()) continue;
    seen.push_back(ek.key);
    if (verify::verify_enabled()) {
      if (std::string verr = verify::verify_gate_error(*s); !verr.empty()) {
        Registry& reg = Registry::instance();
        const LockGuard lock(reg.mu);
        (void)reg.failed.insert(ek.key, std::move(verr));
        reg.sync_evictions_locked();
        continue;
      }
    }
    if (try_cached(ek.key, nullptr).ok()) continue;
    {
      Registry& reg = Registry::instance();
      const LockGuard lock(reg.mu);
      if (reg.failed.contains(ek.key)) continue;
    }
    pending.push_back(std::move(ek));
  }
  compile_batch_tu(std::move(pending), tc);
}

void run_compiled(KernelFn fn, const Schedule& s, const Tensor& a,
                  std::span<const Tensor> weights, Tensor& out,
                  std::vector<std::vector<float>>& scratch, int threads) {
  MCF_CHECK(fn != nullptr) << "run_compiled needs a resolved kernel";
  const ChainSpec& chain = s.chain();
  MCF_CHECK(static_cast<int>(weights.size()) == chain.num_ops())
      << "need one weight tensor per op";
  MCF_CHECK(a.shape().rank() == 3 && out.shape().rank() == 3)
      << "jit tensors are rank-3 (batch, rows, cols)";
  MCF_CHECK(a.shape()[0] == chain.batch() && out.shape()[0] == chain.batch())
      << "batch mismatch";
  MCF_CHECK(a.shape()[1] == chain.m() && a.shape()[2] == chain.inner().front())
      << "input shape mismatch";
  MCF_CHECK(out.shape()[1] == chain.m() &&
            out.shape()[2] == chain.inner().back())
      << "output shape mismatch";

  std::vector<const float*> wptrs;
  wptrs.reserve(weights.size());
  for (const Tensor& w : weights) wptrs.push_back(w.data().data());
  const float* ap = a.data().data();
  float* op = out.data().data();
  const std::int64_t n_blocks = s.num_blocks();

  // Blocks write disjoint output tiles, so contiguous block ranges fan
  // out across the pool; one lazily-allocated, caller-owned scratch
  // arena per worker slot — exactly the interpreter's execution
  // geometry, minus per-call allocation (the arenas persist across
  // sampling repeats).  The chunking is deterministic in the block
  // order and, because per-block work is independent, the OUTPUT is
  // bit-identical for every thread count — the sandbox workers replay
  // the same geometry from RunRequest::threads.
  ThreadPool& pool = ThreadPool::global();
  if (scratch.size() < pool.concurrency()) scratch.resize(pool.concurrency());
  const auto need = static_cast<std::size_t>(cpp_kernel_scratch_floats(s));
  const std::int64_t want =
      threads > 0 ? threads : static_cast<std::int64_t>(pool.concurrency());
  const std::int64_t n_chunks =
      std::max<std::int64_t>(1, std::min<std::int64_t>(want, n_blocks));
  pool.parallel_for_slots(n_chunks, [&](unsigned slot, std::int64_t c) {
    std::vector<float>& sc = scratch[slot];
    if (sc.size() != need) sc.assign(need, 0.0f);
    const std::int64_t begin = c * n_blocks / n_chunks;
    const std::int64_t end = (c + 1) * n_blocks / n_chunks;
    if (begin < end) fn(ap, wptrs.data(), op, sc.data(), begin, end);
  });
}

}  // namespace jit

// ---- JitKernel --------------------------------------------------------------

JitKernel::JitKernel(Schedule schedule, const std::string& gpu_key)
    : s_(std::move(schedule)) {
  if (!s_.valid()) {
    error_ = "schedule has no legal statement placement";
    return;
  }
  if (!s_.consume_complete()) {
    error_ = "schedule consumes partial tiles (Rule-2 structure)";
    return;
  }
  jit::ResolvedKernel rk =
      jit::resolve_kernel(s_, gpu_key, jit::detect_toolchain(), &error_);
  fn_ = rk.fn;
  // The kernel pins its module: registry eviction (or a cap change) can
  // never unmap code a live JitKernel may still run.
  module_ = std::move(rk.module);
}

void JitKernel::run(const Tensor& a, std::span<const Tensor> weights,
                    Tensor& out, int threads) const {
  MCF_CHECK(fn_ != nullptr) << "JitKernel::run on a failed kernel: " << error_;
  jit::run_compiled(fn_, s_, a, weights, out, scratch_, threads);
}

}  // namespace mcf
