// Kernel source emitters.
//
// MCFuser lowers schedules to Triton IR and PTX (§V); this repo provides
// two renderings of a scheduled kernel:
//
//   * emit_kernel_source  — a readable Triton-like pretty-print for
//     documentation, examples and debugging.  Deterministic, so tests can
//     assert structural properties (hoisted loads, store positions).
//   * emit_cpp_kernel     — a REAL C++ lowering: a tile-size-specialized,
//     `__restrict`/SIMD-annotated kernel function with every tile extent,
//     buffer offset and loop bound baked in as a compile-time constant, so
//     the host compiler fully unrolls and vectorises the micro-kernel.
//     exec/jit compiles these into shared objects and runs them — the
//     CPU-host analogue of the paper's Triton -> PTX path.
//
// The C++ lowering mirrors exec/interpreter statement for statement
// (loads stage tiles through a scratch arena with zero-filled fringes,
// computes are tile GEMM-accumulates, online-softmax epilogues keep
// running row stats and rescale the consumer accumulator, stores defer
// the softmax normalisation), so jit and interp results agree to float
// round-off — tests/exec/test_jit.cpp pins the tolerance.
#pragma once

#include <cstdint>
#include <string>

#include "dag/schedule.hpp"
#include "gpu/smem.hpp"
#include "gpu/spec.hpp"

namespace mcf {

/// Renders the schedule as a Triton-style kernel function.
[[nodiscard]] std::string emit_kernel_source(const Schedule& s,
                                             const GpuSpec& gpu);

/// One lowered C++ kernel: the `extern "C"` function definition plus the
/// symbol it exports.  The function signature is fixed:
///
///   void <symbol>(const float* a, const float* const* weights,
///                 float* out, float* scratch,
///                 long long block_begin, long long block_end);
///
/// It executes thread blocks [block_begin, block_end) of the fused kernel
/// using `scratch` (>= cpp_kernel_scratch_floats(s) floats, per-thread)
/// as the shared-memory arena + softmax-stats area.  Blocks write
/// disjoint output tiles, so disjoint block ranges may run concurrently
/// over distinct scratch buffers.
struct CppKernelSource {
  std::string symbol;
  std::string code;
};

/// Lowers a valid, consume-complete schedule into specialized C++.
[[nodiscard]] CppKernelSource emit_cpp_kernel(const Schedule& s,
                                              const std::string& symbol);

/// Translation-unit header shared by every emitted kernel (includes and
/// typedefs); a TU is prelude + N emit_cpp_kernel bodies.
[[nodiscard]] std::string cpp_kernel_prelude();

/// Scratch floats one kernel invocation needs: the tile arena (all
/// tensors at schedule-fixed offsets) plus the online-softmax row stats.
/// Matches the arena layout the emitted code indexes into.
[[nodiscard]] std::int64_t cpp_kernel_scratch_floats(const Schedule& s);

}  // namespace mcf
