// Pseudo-kernel source emitter.
//
// MCFuser emits Triton IR and PTX; this repo emits a readable Triton-like
// rendering of the scheduled kernel for documentation, examples and
// debugging.  The text is deterministic, so tests can assert structural
// properties of the generated code (hoisted loads, store positions,
// double-buffered tiles).
#pragma once

#include <string>

#include "dag/schedule.hpp"
#include "gpu/smem.hpp"
#include "gpu/spec.hpp"

namespace mcf {

/// Renders the schedule as a Triton-style kernel function.
[[nodiscard]] std::string emit_kernel_source(const Schedule& s,
                                             const GpuSpec& gpu);

}  // namespace mcf
