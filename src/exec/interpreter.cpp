#include "exec/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hpp"
#include "support/thread_pool.hpp"

namespace mcf {

namespace {

// Epilogue FLOP accounting constants — must mirror dag/volume.cpp.
constexpr double kSoftmaxFlopsPerElem = 8.0;
constexpr double kReluFlopsPerElem = 1.0;
constexpr double kGeluFlopsPerElem = 8.0;
constexpr double kRescaleFlopsPerElem = 4.0;

/// Reusable per-worker-slot execution state.  One Scratch lives per thread
/// pool slot for the whole kernel run: blocks executing on the same slot
/// reuse its allocations, so the steady-state hot path performs no heap
/// allocation at all.  All tile buffers share one flat arena; the
/// online-softmax running stats live in a second small arena.
struct alignas(64) Scratch {
  std::int64_t batch = 0;
  std::vector<std::int64_t> idx;   // current tile index per loop
  std::vector<float> arena;        // all tensors: resident*tile floats each
  std::vector<float> stats;        // run_max ++ run_sum per softmax op
  ExecutionCounters* acc = nullptr;  // counter sink of the current block
};

class BlockExecutor {
 public:
  BlockExecutor(const Schedule& s, const InterpreterOptions& opt,
                const Tensor& a, std::span<const Tensor> weights, Tensor& out)
      : s_(s), chain_(s.chain()), opt_(opt), a_(a), weights_(weights), out_(out) {
    // Arena layout: one contiguous float span per tensor, offsets fixed by
    // the schedule (tile size x resident tile count).
    buf_offset_.resize(static_cast<std::size_t>(chain_.num_tensors()) + 1, 0);
    for (int t = 0; t < chain_.num_tensors(); ++t) {
      const std::int64_t elems =
          s_.tile_elems(t) * s_.resident_tiles()[static_cast<std::size_t>(t)];
      buf_offset_[static_cast<std::size_t>(t) + 1] =
          buf_offset_[static_cast<std::size_t>(t)] + elems;
    }
    // Stats layout: [run_max(tm), run_sum(tm)] per online-softmax op.
    stat_offset_.resize(static_cast<std::size_t>(chain_.num_ops()), -1);
    std::int64_t stat_floats = 0;
    for (int op = 0; op < chain_.num_ops(); ++op) {
      if (chain_.epilogue(op) == Epilogue::OnlineSoftmax) {
        stat_offset_[static_cast<std::size_t>(op)] = stat_floats;
        stat_floats += 2 * s_.tiles()[0];
      }
    }
    stat_floats_ = stat_floats;
  }

  /// Executes one simulated thread block on the given slot scratch,
  /// folding dynamic counters into `counters`.
  void run_block(std::int64_t block_id, Scratch& st,
                 ExecutionCounters& counters) const {
    st.acc = &counters;
    prepare(st);
    decode_block(block_id, st);
    exec_node(s_.root(), st);
  }

 private:
  /// Readies the scratch for a fresh block: allocates on a slot's first
  /// block (the only heap traffic of the whole run), then only resets the
  /// softmax running stats.  The tile arena needs no blanket zeroing:
  /// loads overwrite their full tile (padded fringe included) before any
  /// read, and accumulator tiles are zeroed when their reduction restarts
  /// — consume-completeness (checked at construction) guarantees no other
  /// read-before-write exists.
  void prepare(Scratch& st) const {
    const std::int64_t arena_floats = buf_offset_.back();
    if (static_cast<std::int64_t>(st.arena.size()) != arena_floats) {
      st.arena.assign(static_cast<std::size_t>(arena_floats), 0.0f);
      st.stats.resize(static_cast<std::size_t>(stat_floats_));
      st.idx.resize(static_cast<std::size_t>(chain_.num_loops()));
    }
    const std::int64_t tm = s_.tiles()[0];
    for (int op = 0; op < chain_.num_ops(); ++op) {
      const std::int64_t off = stat_offset_[static_cast<std::size_t>(op)];
      if (off < 0) continue;
      std::fill_n(st.stats.begin() + off, tm,
                  -std::numeric_limits<float>::infinity());
      std::fill_n(st.stats.begin() + off + tm, tm, 0.0f);
    }
  }

  [[nodiscard]] float* buf(int t, Scratch& st) const {
    return st.arena.data() + buf_offset_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] float* run_max(int op, Scratch& st) const {
    return st.stats.data() + stat_offset_[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] float* run_sum(int op, Scratch& st) const {
    return st.stats.data() + stat_offset_[static_cast<std::size_t>(op)] +
           s_.tiles()[0];
  }

  void decode_block(std::int64_t block_id, Scratch& st) const {
    std::fill(st.idx.begin(), st.idx.end(), 0);
    std::int64_t rem = block_id;
    // Innermost-first mixed radix over block loops, batch outermost.
    const auto& bl = s_.block_loops();
    for (auto it = bl.rbegin(); it != bl.rend(); ++it) {
      const std::int64_t e = s_.extents()[static_cast<std::size_t>(*it)];
      st.idx[static_cast<std::size_t>(*it)] = rem % e;
      rem /= e;
    }
    st.batch = rem;
    MCF_CHECK(st.batch < chain_.batch()) << "block id out of range";
  }

  /// Buffer slot offset for tensor t under the current indices (override
  /// lets stores iterate covered-loop combinations).
  std::int64_t slot_offset(int t, const Scratch& st,
                           const std::vector<std::int64_t>* override_idx) const {
    const auto& loops = s_.resident_loops(t);
    std::int64_t slot = 0;
    for (const int l : loops) {
      const std::int64_t e = s_.extents()[static_cast<std::size_t>(l)];
      const std::int64_t v =
          override_idx ? (*override_idx)[static_cast<std::size_t>(l)]
                       : st.idx[static_cast<std::size_t>(l)];
      slot = slot * e + v;
    }
    return slot * s_.tile_elems(t);
  }

  void exec_node(int node, Scratch& st) const {
    const auto& n = s_.node(node);
    if (n.is_stmt) {
      exec_stmt(n.stmt, st);
      return;
    }
    if (n.loop < 0) {
      for (const int c : n.children) exec_node(c, st);
      return;
    }
    const std::int64_t e = s_.extents()[static_cast<std::size_t>(n.loop)];
    for (std::int64_t i = 0; i < e; ++i) {
      st.idx[static_cast<std::size_t>(n.loop)] = i;
      for (const int c : n.children) exec_node(c, st);
    }
    st.idx[static_cast<std::size_t>(n.loop)] = 0;
  }

  void exec_stmt(const Statement& stmt, Scratch& st) const {
    st.acc->stmt_trips += 1.0;
    switch (stmt.kind) {
      case StmtKind::Load:
        exec_load(stmt, st);
        break;
      case StmtKind::Compute:
        exec_compute(stmt, st);
        break;
      case StmtKind::Store:
        exec_store(stmt, st);
        break;
    }
  }

  /// The global source for a loadable tensor.
  const Tensor& global_source(int t) const {
    if (t == 0) return a_;
    const auto& info = chain_.tensor(t);
    MCF_CHECK(info.kind == TensorKind::Weight) << "load of non-input tensor";
    return weights_[static_cast<std::size_t>(info.consumer_op)];
  }

  void exec_load(const Statement& stmt, Scratch& st) const {
    const int t = stmt.tensor;
    const auto& info = chain_.tensor(t);
    const Tensor& src = global_source(t);
    const int lr = info.loops[0];
    const int lc = info.loops[1];
    const std::int64_t tr = s_.tiles()[static_cast<std::size_t>(lr)];
    const std::int64_t tc = s_.tiles()[static_cast<std::size_t>(lc)];
    const std::int64_t r0 = st.idx[static_cast<std::size_t>(lr)] * tr;
    const std::int64_t c0 = st.idx[static_cast<std::size_t>(lc)] * tc;
    const std::int64_t rows = chain_.loop_dim(lr);
    const std::int64_t cols = chain_.loop_dim(lc);
    const auto slice = src.batch_slice(st.batch);
    float* dst = buf(t, st) + slot_offset(t, st, nullptr);
    const std::int64_t full_rows = std::min(tr, rows - r0);
    const std::int64_t full_cols = std::min(tc, cols - c0);
    for (std::int64_t r = 0; r < full_rows; ++r) {
      // Contiguous interior copy; the padded fringe zero-fills.
      const float* srow = slice.data() + (r0 + r) * cols + c0;
      float* drow = dst + r * tc;
      std::copy_n(srow, full_cols, drow);
      std::fill(drow + std::max<std::int64_t>(full_cols, 0), drow + tc, 0.0f);
    }
    for (std::int64_t r = std::max<std::int64_t>(full_rows, 0); r < tr; ++r) {
      std::fill_n(dst + r * tc, tc, 0.0f);
    }
    st.acc->load_bytes +=
        static_cast<double>(s_.tile_elems(t)) * opt_.dtype_bytes;
  }

  void exec_compute(const Statement& stmt, Scratch& st) const {
    const int op = stmt.op;
    const int t_in = chain_.op_input_tensor(op);
    const int t_w = chain_.op_weight_tensor(op);
    const int t_out = chain_.op_output_tensor(op);
    const int red = chain_.reduction_loop(op);
    const int col = chain_.out_col_loop(op);
    const std::int64_t tm = s_.tiles()[0];
    const std::int64_t trd = s_.tiles()[static_cast<std::size_t>(red)];
    const std::int64_t tcl = s_.tiles()[static_cast<std::size_t>(col)];

    float* out = buf(t_out, st) + slot_offset(t_out, st, nullptr);
    const float* in = buf(t_in, st) + slot_offset(t_in, st, nullptr);
    const float* w = buf(t_w, st) + slot_offset(t_w, st, nullptr);

    // Fresh accumulation tile: zero when the reduction restarts.
    if (st.idx[static_cast<std::size_t>(red)] == 0) {
      std::fill(out, out + tm * tcl, 0.0f);
    }
    // Consumer-side online-softmax rescale happens at the producer hook
    // (see below); here we only accumulate.
    //
    // Register-blocked contiguous FMA micro-kernel: four reduction rows
    // per pass, so every accumulator-row load/store amortises four FMAs
    // and the inner loop is branch-free and vectorisable.  The per-element
    // zero-skip branch of the old scalar loop defeated vectorisation.
    // The arena layout guarantees the in/weight/out tensors occupy
    // disjoint spans, so the pointers can be declared non-aliasing — this
    // is what lets the compiler vectorise the inner loop.
    const std::int64_t r4 = trd & ~std::int64_t{3};
    for (std::int64_t i = 0; i < tm; ++i) {
      const float* __restrict arow = &in[i * trd];
      float* __restrict orow = &out[i * tcl];
      std::int64_t r = 0;
      for (; r < r4; r += 4) {
        const float a0 = arow[r];
        const float a1 = arow[r + 1];
        const float a2 = arow[r + 2];
        const float a3 = arow[r + 3];
        const float* __restrict w0 = &w[r * tcl];
        const float* __restrict w1 = w0 + tcl;
        const float* __restrict w2 = w1 + tcl;
        const float* __restrict w3 = w2 + tcl;
#pragma omp simd
        for (std::int64_t c = 0; c < tcl; ++c) {
          orow[c] += a0 * w0[c] + a1 * w1[c] + a2 * w2[c] + a3 * w3[c];
        }
      }
      for (; r < trd; ++r) {
        const float av = arow[r];
        const float* __restrict wrow = &w[r * tcl];
#pragma omp simd
        for (std::int64_t c = 0; c < tcl; ++c) orow[c] += av * wrow[c];
      }
    }
    st.acc->flops += 2.0 * static_cast<double>(tm) * trd * tcl;
    if (op > 0 && chain_.epilogue(op - 1) == Epilogue::OnlineSoftmax) {
      st.acc->epilogue_flops +=
          kRescaleFlopsPerElem * static_cast<double>(tm) * tcl;
    }

    // Producer-completion hook: epilogue fires when the reduction finishes.
    const std::int64_t red_ext = s_.extents()[static_cast<std::size_t>(red)];
    if (st.idx[static_cast<std::size_t>(red)] == red_ext - 1 &&
        chain_.epilogue(op) != Epilogue::None) {
      apply_epilogue(op, st);
    }
  }

  void apply_epilogue(int op, Scratch& st) const {
    const int t_out = chain_.op_output_tensor(op);
    const int col = chain_.out_col_loop(op);
    const std::int64_t tm = s_.tiles()[0];
    const std::int64_t tcl = s_.tiles()[static_cast<std::size_t>(col)];
    float* x = buf(t_out, st) + slot_offset(t_out, st, nullptr);
    const Epilogue epi = chain_.epilogue(op);

    if (epi == Epilogue::Relu) {
      for (std::int64_t i = 0; i < tm * tcl; ++i) x[i] = std::max(0.0f, x[i]);
      st.acc->epilogue_flops +=
          kReluFlopsPerElem * static_cast<double>(tm) * tcl;
      return;
    }
    if (epi == Epilogue::Gelu) {
      constexpr float kSqrt2OverPi = 0.7978845608028654f;
      for (std::int64_t i = 0; i < tm * tcl; ++i) {
        const float v = x[i];
        const float t = kSqrt2OverPi * (v + 0.044715f * v * v * v);
        x[i] = 0.5f * v * (1.0f + std::tanh(t));
      }
      st.acc->epilogue_flops +=
          kGeluFlopsPerElem * static_cast<double>(tm) * tcl;
      return;
    }

    // Online softmax over the streamed `col` dimension.
    MCF_CHECK(epi == Epilogue::OnlineSoftmax) << "unknown epilogue";
    MCF_CHECK(op + 1 < chain_.num_ops())
        << "online softmax requires a consumer operator";
    const float scale = chain_.softmax_scale();
    const std::int64_t c0 = st.idx[static_cast<std::size_t>(col)] * tcl;
    const std::int64_t valid_cols = chain_.loop_dim(col);
    float* rmax = run_max(op, st);
    float* rsum = run_sum(op, st);

    // The consumer accumulator to rescale (all resident slots).
    const int t_cons = chain_.op_output_tensor(op + 1);
    float* cons = buf(t_cons, st);
    const std::int64_t cons_floats =
        buf_offset_[static_cast<std::size_t>(t_cons) + 1] -
        buf_offset_[static_cast<std::size_t>(t_cons)];
    const std::int64_t cons_cols =
        s_.tiles()[static_cast<std::size_t>(chain_.out_col_loop(op + 1))];
    const std::int64_t cons_rows_total = cons_floats / cons_cols;

    for (std::int64_t i = 0; i < tm; ++i) {
      float* row = &x[i * tcl];
      // Mask padded columns so they vanish from the distribution.
      for (std::int64_t c = 0; c < tcl; ++c) {
        if (c0 + c >= valid_cols) row[c] = -std::numeric_limits<float>::infinity();
        else row[c] *= scale;
      }
      float tile_max = -std::numeric_limits<float>::infinity();
      for (std::int64_t c = 0; c < tcl; ++c) tile_max = std::max(tile_max, row[c]);
      const float new_max = std::max(rmax[i], tile_max);
      float sum = 0.0f;
      for (std::int64_t c = 0; c < tcl; ++c) {
        const float e = (row[c] == -std::numeric_limits<float>::infinity())
                            ? 0.0f
                            : std::exp(row[c] - new_max);
        row[c] = e;
        sum += e;
      }
      const float corr =
          (rmax[i] == -std::numeric_limits<float>::infinity())
              ? 0.0f
              : std::exp(rmax[i] - new_max);
      rsum[i] = rsum[i] * corr + sum;
      rmax[i] = new_max;
      // Rescale row i of every resident consumer tile.
      for (std::int64_t tile_row = i; tile_row < cons_rows_total; tile_row += tm) {
        float* crow = &cons[tile_row * cons_cols];
        for (std::int64_t c = 0; c < cons_cols; ++c) crow[c] *= corr;
      }
    }
    st.acc->epilogue_flops +=
        kSoftmaxFlopsPerElem * static_cast<double>(tm) * tcl;
  }

  void exec_store(const Statement& stmt, Scratch& st) const {
    const int t = stmt.tensor;
    const auto& info = chain_.tensor(t);
    MCF_CHECK(info.kind == TensorKind::Output) << "store of non-output tensor";
    const int lr = info.loops[0];
    const int lc = info.loops[1];
    const std::int64_t tr = s_.tiles()[static_cast<std::size_t>(lr)];
    const std::int64_t tc = s_.tiles()[static_cast<std::size_t>(lc)];
    const std::int64_t rows = chain_.loop_dim(lr);
    const std::int64_t cols = chain_.loop_dim(lc);
    auto slice = out_.batch_slice(st.batch);

    // Division by the softmax running sum is deferred to the store (the
    // interpreter's analogue of the FlashAttention final normalisation).
    const int producer = info.producer_op;
    const bool normalize =
        producer > 0 && chain_.epilogue(producer - 1) == Epilogue::OnlineSoftmax;
    const float* rsum = normalize ? run_sum(producer - 1, st) : nullptr;

    // Iterate all combinations of covered loops (hoisted stores write every
    // resident tile); other loops use the current indices.
    std::vector<std::int64_t> combo_idx = st.idx;
    const auto& covered = stmt.covered_loops;
    std::vector<std::int64_t> counter(covered.size(), 0);
    double tiles_written = 0.0;
    for (;;) {
      for (std::size_t j = 0; j < covered.size(); ++j) {
        combo_idx[static_cast<std::size_t>(covered[j])] = counter[j];
      }
      const float* src = buf(t, st) + slot_offset(t, st, &combo_idx);
      const std::int64_t r0 = combo_idx[static_cast<std::size_t>(lr)] * tr;
      const std::int64_t c0 = combo_idx[static_cast<std::size_t>(lc)] * tc;
      // Contiguous interior rows; the clipped fringe never enters the loop.
      const std::int64_t full_rows = std::min(tr, rows - r0);
      const std::int64_t full_cols = std::min(tc, cols - c0);
      for (std::int64_t r = 0; r < full_rows; ++r) {
        const float* srow = src + r * tc;
        float* drow = slice.data() + (r0 + r) * cols + c0;
        if (normalize) {
          const float inv = 1.0f / std::max(rsum[r], 1e-30f);
          for (std::int64_t c = 0; c < full_cols; ++c) drow[c] = srow[c] * inv;
        } else {
          std::copy_n(srow, full_cols, drow);
        }
      }
      tiles_written += 1.0;
      // Advance the mixed-radix counter over covered loops.
      std::size_t j = 0;
      for (; j < covered.size(); ++j) {
        counter[j] += 1;
        if (counter[j] <
            s_.extents()[static_cast<std::size_t>(covered[j])]) break;
        counter[j] = 0;
      }
      if (j == covered.size()) break;
    }
    st.acc->store_bytes += tiles_written *
                               static_cast<double>(s_.tile_elems(t)) *
                               opt_.dtype_bytes;
  }

  const Schedule& s_;
  const ChainSpec& chain_;
  const InterpreterOptions& opt_;
  const Tensor& a_;
  std::span<const Tensor> weights_;
  Tensor& out_;
  std::vector<std::int64_t> buf_offset_;   // per tensor, prefix sums
  std::vector<std::int64_t> stat_offset_;  // per op, -1 when no softmax
  std::int64_t stat_floats_ = 0;
};

}  // namespace

Interpreter::Interpreter(const Schedule& schedule, InterpreterOptions options)
    : s_(schedule), opt_(options) {
  MCF_CHECK(s_.valid()) << "cannot interpret an invalid schedule";
  MCF_CHECK(s_.consume_complete())
      << "schedule reads partial tiles (Rule-2 violation); refusing to run";
}

ExecutionCounters Interpreter::run(const Tensor& a,
                                   std::span<const Tensor> weights,
                                   Tensor& out) const {
  const ChainSpec& chain = s_.chain();
  MCF_CHECK(static_cast<int>(weights.size()) == chain.num_ops())
      << "need one weight tensor per op";
  MCF_CHECK(a.shape().rank() == 3 && out.shape().rank() == 3)
      << "interpreter tensors are rank-3 (batch, rows, cols)";
  MCF_CHECK(a.shape()[0] == chain.batch() && out.shape()[0] == chain.batch())
      << "batch mismatch";
  MCF_CHECK(a.shape()[1] == chain.m() && a.shape()[2] == chain.inner().front())
      << "input shape mismatch";
  MCF_CHECK(out.shape()[1] == chain.m() &&
            out.shape()[2] == chain.inner().back())
      << "output shape mismatch";

  const std::int64_t n_blocks = s_.num_blocks();
  const BlockExecutor exec(s_, opt_, a, weights, out);
  // One reusable scratch per worker slot, counters accumulated per slot
  // by parallel_for_reduce and folded once at the end — no mutex on the
  // block hot path.  The counters are exact integer-valued doubles (tile
  // extents and byte counts well below 2^53), so the reduction order
  // cannot change the result: parallel and serial runs are bit-identical.
  auto fold = [](ExecutionCounters& into, const ExecutionCounters& c) {
    into.load_bytes += c.load_bytes;
    into.store_bytes += c.store_bytes;
    into.flops += c.flops;
    into.epilogue_flops += c.epilogue_flops;
    into.stmt_trips += c.stmt_trips;
  };
  if (opt_.parallel) {
    ThreadPool& pool = ThreadPool::global();
    std::vector<Scratch> scratch(pool.concurrency());
    return pool.parallel_for_reduce<ExecutionCounters>(
        n_blocks, ExecutionCounters{},
        [&](unsigned slot, std::int64_t b, ExecutionCounters& acc) {
          exec.run_block(b, scratch[slot], acc);
        },
        fold);
  }
  ExecutionCounters total;
  Scratch st;
  for (std::int64_t b = 0; b < n_blocks; ++b) exec.run_block(b, st, total);
  return total;
}

}  // namespace mcf
