// Functional kernel interpreter — the repo's stand-in for Triton/PTX
// execution (DESIGN.md §2).
//
// Executes a Schedule numerically, one simulated thread block per thread
// pool task: tiles are staged through per-block "shared memory" buffers,
// computes run as tile GEMM-accumulates, online-softmax epilogues maintain
// running row statistics with consumer-accumulator rescaling (the
// FlashAttention recurrence), and every global<->shared transfer is
// counted.  The dynamic counters must match dag/volume's static analysis
// exactly — tests assert this (it is the repo's analogue of the paper
// validating eq. (1) against the NVPTX backend).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dag/schedule.hpp"
#include "tensor/tensor.hpp"

namespace mcf {

/// Dynamic execution counters (whole kernel, all blocks).
struct ExecutionCounters {
  double load_bytes = 0.0;
  double store_bytes = 0.0;
  double flops = 0.0;
  double epilogue_flops = 0.0;
  double stmt_trips = 0.0;
};

struct InterpreterOptions {
  /// Element size used for the byte counters (must match VolumeOptions).
  int dtype_bytes = 2;
  /// Run blocks on the global thread pool (disable for deterministic
  /// single-thread debugging; results are identical either way).
  bool parallel = true;
};

/// Executes fused-chain schedules.  The schedule must be valid and
/// consume-complete (Rule-2-violating schedules read unfinished tiles and
/// are rejected).
class Interpreter {
 public:
  explicit Interpreter(const Schedule& schedule,
                       InterpreterOptions options = {});

  /// Runs the kernel.
  /// `a`:       rank-3 (batch, M, d0) chain input.
  /// `weights`: one rank-3 tensor per op, (batch, d_i, d_{i+1}).
  /// `out`:     rank-3 (batch, M, d_P), overwritten.
  ExecutionCounters run(const Tensor& a, std::span<const Tensor> weights,
                        Tensor& out) const;

 private:
  const Schedule& s_;
  InterpreterOptions opt_;
};

}  // namespace mcf
