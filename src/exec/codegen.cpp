#include "exec/codegen.hpp"

#include <sstream>

#include "support/logging.hpp"

namespace mcf {

namespace {

void emit_node(const Schedule& s, int idx, int depth, std::ostringstream& os) {
  const auto& n = s.node(idx);
  const std::string ind(static_cast<std::size_t>(depth) * 4, ' ');
  if (n.is_stmt) {
    const Statement& st = n.stmt;
    const ChainSpec& chain = s.chain();
    switch (st.kind) {
      case StmtKind::Load: {
        const auto& info = chain.tensor(st.tensor);
        os << ind << "smem_" << info.name << " = tl.load(" << info.name
           << "_ptr + tile_offset(";
        for (std::size_t i = 0; i < info.loops.size(); ++i) {
          if (i) os << ", ";
          os << chain.loop_name(info.loops[i]);
        }
        os << "))\n";
        break;
      }
      case StmtKind::Compute: {
        const int op = st.op;
        const auto& out = chain.tensor(chain.op_output_tensor(op));
        const auto& in = chain.tensor(chain.op_input_tensor(op));
        const auto& w = chain.tensor(chain.op_weight_tensor(op));
        os << ind << "acc_" << out.name << " += tl.dot(smem_" << in.name
           << ", smem_" << w.name << ")";
        if (chain.epilogue(op) == Epilogue::OnlineSoftmax) {
          os << "  # + online-softmax epilogue (running max/sum, rescale)";
        } else if (chain.epilogue(op) == Epilogue::Relu) {
          os << "  # + relu epilogue";
        } else if (chain.epilogue(op) == Epilogue::Gelu) {
          os << "  # + gelu epilogue";
        }
        os << "\n";
        break;
      }
      case StmtKind::Store: {
        const auto& info = chain.tensor(st.tensor);
        os << ind << "tl.store(" << info.name << "_ptr + tile_offset(...), acc_"
           << info.name << ")";
        if (!st.covered_loops.empty()) {
          os << "  # covers all resident tiles of:";
          for (const int l : st.covered_loops) os << " " << chain.loop_name(l);
        }
        os << "\n";
        break;
      }
    }
    return;
  }
  int next = depth;
  if (n.loop >= 0) {
    os << ind << "for " << s.chain().loop_name(n.loop) << " in range("
       << s.extents()[static_cast<std::size_t>(n.loop)]
       << "):  # tile " << s.tiles()[static_cast<std::size_t>(n.loop)] << "\n";
    next = depth + 1;
  }
  for (const int c : n.children) emit_node(s, c, next, os);
}

}  // namespace

std::string emit_kernel_source(const Schedule& s, const GpuSpec& gpu) {
  MCF_CHECK(s.valid()) << "cannot emit an invalid schedule";
  const ChainSpec& chain = s.chain();
  std::ostringstream os;
  os << "# mcfuser generated kernel for " << chain.name() << " on " << gpu.name
     << "\n";
  os << "# blocks = " << s.num_blocks() << " (batch " << chain.batch();
  for (const int l : s.block_loops()) {
    os << " x " << chain.loop_name(l) << "="
       << s.extents()[static_cast<std::size_t>(l)];
  }
  os << ")\n";
  const SmemPlan plan = plan_smem(s);
  os << "# shared memory: " << plan.total_bytes << " bytes\n";
  os << "@triton.jit\n";
  os << "def fused_" << chain.name() << "_kernel(";
  for (int t = 0; t < chain.num_tensors(); ++t) {
    const auto& info = chain.tensor(t);
    if (info.kind == TensorKind::Input || info.kind == TensorKind::Weight ||
        info.kind == TensorKind::Output) {
      os << info.name << "_ptr, ";
    }
  }
  os << "...):\n";
  // blockIdx decode.
  os << "    pid = tl.program_id(0)\n";
  for (const int l : s.block_loops()) {
    os << "    " << chain.loop_name(l) << " = decode(pid, '"
       << chain.loop_name(l) << "')\n";
  }
  emit_node(s, s.root(), 1, os);
  return os.str();
}

}  // namespace mcf
