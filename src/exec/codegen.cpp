#include "exec/codegen.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "search/tuning_cache.hpp"
#include "support/logging.hpp"

namespace mcf {

namespace {

void emit_node(const Schedule& s, int idx, int depth, std::ostringstream& os) {
  const auto& n = s.node(idx);
  const std::string ind(static_cast<std::size_t>(depth) * 4, ' ');
  if (n.is_stmt) {
    const Statement& st = n.stmt;
    const ChainSpec& chain = s.chain();
    switch (st.kind) {
      case StmtKind::Load: {
        const auto& info = chain.tensor(st.tensor);
        os << ind << "smem_" << info.name << " = tl.load(" << info.name
           << "_ptr + tile_offset(";
        for (std::size_t i = 0; i < info.loops.size(); ++i) {
          if (i) os << ", ";
          os << chain.loop_name(info.loops[i]);
        }
        os << "))\n";
        break;
      }
      case StmtKind::Compute: {
        const int op = st.op;
        const auto& out = chain.tensor(chain.op_output_tensor(op));
        const auto& in = chain.tensor(chain.op_input_tensor(op));
        const auto& w = chain.tensor(chain.op_weight_tensor(op));
        os << ind << "acc_" << out.name << " += tl.dot(smem_" << in.name
           << ", smem_" << w.name << ")";
        if (chain.epilogue(op) == Epilogue::OnlineSoftmax) {
          os << "  # + online-softmax epilogue (running max/sum, rescale)";
        } else if (chain.epilogue(op) == Epilogue::Relu) {
          os << "  # + relu epilogue";
        } else if (chain.epilogue(op) == Epilogue::Gelu) {
          os << "  # + gelu epilogue";
        }
        os << "\n";
        break;
      }
      case StmtKind::Store: {
        const auto& info = chain.tensor(st.tensor);
        os << ind << "tl.store(" << info.name << "_ptr + tile_offset(...), acc_"
           << info.name << ")";
        if (!st.covered_loops.empty()) {
          os << "  # covers all resident tiles of:";
          for (const int l : st.covered_loops) os << " " << chain.loop_name(l);
        }
        os << "\n";
        break;
      }
    }
    return;
  }
  int next = depth;
  if (n.loop >= 0) {
    os << ind << "for " << s.chain().loop_name(n.loop) << " in range("
       << s.extents()[static_cast<std::size_t>(n.loop)]
       << "):  # tile " << s.tiles()[static_cast<std::size_t>(n.loop)] << "\n";
    next = depth + 1;
  }
  for (const int c : n.children) emit_node(s, c, next, os);
}

}  // namespace

std::string emit_kernel_source(const Schedule& s, const GpuSpec& gpu) {
  MCF_CHECK(s.valid()) << "cannot emit an invalid schedule";
  const ChainSpec& chain = s.chain();
  std::ostringstream os;
  os << "# mcfuser generated kernel for " << chain.name() << " on " << gpu.name
     << "\n";
  os << "# blocks = " << s.num_blocks() << " (batch " << chain.batch();
  for (const int l : s.block_loops()) {
    os << " x " << chain.loop_name(l) << "="
       << s.extents()[static_cast<std::size_t>(l)];
  }
  os << ")\n";
  const SmemPlan plan = plan_smem(s);
  os << "# shared memory: " << plan.total_bytes << " bytes\n";
  os << "@triton.jit\n";
  os << "def fused_" << chain.name() << "_kernel(";
  for (int t = 0; t < chain.num_tensors(); ++t) {
    const auto& info = chain.tensor(t);
    if (info.kind == TensorKind::Input || info.kind == TensorKind::Weight ||
        info.kind == TensorKind::Output) {
      os << info.name << "_ptr, ";
    }
  }
  os << "...):\n";
  // blockIdx decode.
  os << "    pid = tl.program_id(0)\n";
  for (const int l : s.block_loops()) {
    os << "    " << chain.loop_name(l) << " = decode(pid, '"
       << chain.loop_name(l) << "')\n";
  }
  emit_node(s, s.root(), 1, os);
  return os.str();
}

// ---- C++ lowering -----------------------------------------------------------
//
// The emitted function mirrors exec/interpreter.cpp statement for
// statement, with every extent, tile size and arena offset folded to a
// literal.  Loop index variables are i<loop-id>; hoisted stores iterate
// covered loops through shadow variables q<loop-id>.

namespace {

/// Epilogue constants — mirror exec/interpreter.cpp / dag/volume.cpp.
constexpr double kSqrt2OverPi = 0.7978845608028654;

class CppEmitter {
 public:
  CppEmitter(const Schedule& s, std::string symbol)
      : s_(s), chain_(s.chain()), symbol_(std::move(symbol)) {
    const int nt = chain_.num_tensors();
    buf_offset_.resize(static_cast<std::size_t>(nt) + 1, 0);
    for (int t = 0; t < nt; ++t) {
      const std::int64_t elems =
          s_.tile_elems(t) * s_.resident_tiles()[static_cast<std::size_t>(t)];
      buf_offset_[static_cast<std::size_t>(t) + 1] =
          buf_offset_[static_cast<std::size_t>(t)] + elems;
    }
    stat_offset_.resize(static_cast<std::size_t>(chain_.num_ops()), -1);
    for (int op = 0; op < chain_.num_ops(); ++op) {
      if (chain_.epilogue(op) == Epilogue::OnlineSoftmax) {
        stat_offset_[static_cast<std::size_t>(op)] = stat_floats_;
        stat_floats_ += 2 * s_.tiles()[0];
      }
    }
  }

  [[nodiscard]] std::string emit() {
    os_ << "extern \"C\" void " << symbol_
        << "(const float* __restrict ga, const float* const* __restrict gw,\n"
        << "    float* __restrict gout, float* __restrict scratch,\n"
        << "    i64 block_begin, i64 block_end) {\n";
    // Deterministic fault-injection seam (chaos tests, exec/sandbox.cpp):
    // a no-op unless the process is a sandbox worker AND MCFUSER_JIT_FAULT
    // names this chain.  Keyed by the structural chain key — shared by
    // every candidate schedule of the chain — so directives survive the
    // kernel cache's per-schedule digests.
    os_ << "  mcf_maybe_fault(\"" << chain_cache_key(chain_) << "\", gout, "
        << chain_.batch() * chain_.m() * chain_.inner().back() << ", 0);\n";
    os_ << "  float* const arena = scratch;\n";
    if (stat_floats_ > 0) {
      os_ << "  float* const stats = scratch + " << buf_offset_.back() << ";\n";
    }
    os_ << "  for (i64 blk = block_begin; blk < block_end; ++blk) {\n";
    for (int l = 0; l < chain_.num_loops(); ++l) {
      os_ << "    i64 i" << l << " = 0; (void)i" << l << ";\n";
    }
    // blockIdx decode: innermost-first mixed radix over block loops,
    // batch outermost (exec/interpreter.cpp decode_block).
    os_ << "    i64 rem = blk;\n";
    const auto& bl = s_.block_loops();
    for (auto it = bl.rbegin(); it != bl.rend(); ++it) {
      const std::int64_t e = s_.extents()[static_cast<std::size_t>(*it)];
      os_ << "    i" << *it << " = rem % " << e << "; rem /= " << e << ";\n";
    }
    os_ << "    const i64 b = rem;\n";
    // Online-softmax running stats reset once per block.
    const std::int64_t tm = s_.tiles()[0];
    for (int op = 0; op < chain_.num_ops(); ++op) {
      const std::int64_t off = stat_offset_[static_cast<std::size_t>(op)];
      if (off < 0) continue;
      os_ << "    for (i64 r = 0; r < " << tm << "; ++r) { stats[" << off
          << " + r] = -INFINITY; stats[" << off + tm << " + r] = 0.0f; }\n";
    }
    emit_node(s_.root(), 2);
    os_ << "  }\n";
    // Exit-phase seam: output corruption (garbage mode) must land AFTER
    // the kernel body so no block's stores can paper over it.
    os_ << "  mcf_maybe_fault(\"" << chain_cache_key(chain_) << "\", gout, "
        << chain_.batch() * chain_.m() * chain_.inner().back() << ", 1);\n";
    os_ << "}\n";
    return os_.str();
  }

 private:
  [[nodiscard]] static std::string flit(float v) {
    // Hex float literal: exact round trip of the emit-time value.
    std::ostringstream os;
    os << std::hexfloat << static_cast<double>(v) << "f";
    return os.str();
  }

  [[nodiscard]] std::string ind(int depth) const {
    return std::string(static_cast<std::size_t>(depth) * 2, ' ');
  }

  /// Index variable of loop `l`: the covered-loop shadow inside a hoisted
  /// store, the block/tree variable otherwise.
  [[nodiscard]] std::string idx_var(int l,
                                    const std::vector<int>& covered) const {
    const bool is_covered =
        std::find(covered.begin(), covered.end(), l) != covered.end();
    return (is_covered ? "q" : "i") + std::to_string(l);
  }

  /// Arena offset of tensor `t`'s current tile: static base + the
  /// resident-loop mixed radix (exec/interpreter.cpp slot_offset).
  [[nodiscard]] std::string buf_expr(int t,
                                     const std::vector<int>& covered) const {
    std::string slot;
    for (const int l : s_.resident_loops(t)) {
      const std::int64_t e = s_.extents()[static_cast<std::size_t>(l)];
      slot = slot.empty() ? idx_var(l, covered)
                          : "(" + slot + ")*" + std::to_string(e) + " + " +
                                idx_var(l, covered);
    }
    std::string out = std::to_string(buf_offset_[static_cast<std::size_t>(t)]);
    if (!slot.empty()) {
      out += " + (" + slot + ")*" + std::to_string(s_.tile_elems(t));
    }
    return out;
  }

  void emit_node(int node, int depth) {
    const auto& n = s_.node(node);
    if (n.is_stmt) {
      emit_stmt(n.stmt, depth);
      return;
    }
    int next = depth;
    if (n.loop >= 0) {
      const std::int64_t e = s_.extents()[static_cast<std::size_t>(n.loop)];
      os_ << ind(depth) << "for (i" << n.loop << " = 0; i" << n.loop << " < "
          << e << "; ++i" << n.loop << ") {\n";
      next = depth + 1;
    }
    for (const int c : n.children) emit_node(c, next);
    if (n.loop >= 0) {
      os_ << ind(depth) << "}\n";
      os_ << ind(depth) << "i" << n.loop << " = 0;\n";
    }
  }

  void emit_stmt(const Statement& stmt, int depth) {
    switch (stmt.kind) {
      case StmtKind::Load:
        emit_load(stmt, depth);
        break;
      case StmtKind::Compute:
        emit_compute(stmt, depth);
        break;
      case StmtKind::Store:
        emit_store(stmt, depth);
        break;
    }
  }

  /// Tile copy between global memory and the arena, fringe handling
  /// included.  When the tile divides the dimension exactly the fringe
  /// vanishes at emit time and the copy is a straight full-tile loop.
  void emit_load(const Statement& stmt, int depth) {
    const int t = stmt.tensor;
    const auto& info = chain_.tensor(t);
    const int lr = info.loops[0];
    const int lc = info.loops[1];
    const std::int64_t tr = s_.tiles()[static_cast<std::size_t>(lr)];
    const std::int64_t tc = s_.tiles()[static_cast<std::size_t>(lc)];
    const std::int64_t rows = chain_.loop_dim(lr);
    const std::int64_t cols = chain_.loop_dim(lc);
    const std::string in = ind(depth);
    const std::vector<int> none;

    os_ << in << "{ // load " << info.name << "\n";
    os_ << in << "  float* __restrict dst = arena + " << buf_expr(t, none)
        << ";\n";
    if (t == 0) {
      os_ << in << "  const float* __restrict src = ga + b*"
          << rows * cols << ";\n";
    } else {
      MCF_CHECK(info.kind == TensorKind::Weight) << "load of non-input tensor";
      os_ << in << "  const float* __restrict src = gw[" << info.consumer_op
          << "] + b*" << rows * cols << ";\n";
    }
    os_ << in << "  const i64 r0 = i" << lr << "*" << tr << ", c0 = i" << lc
        << "*" << tc << ";\n";
    const bool exact = rows % tr == 0 && cols % tc == 0;
    if (exact) {
      os_ << in << "  for (i64 r = 0; r < " << tr << "; ++r) {\n";
      os_ << in << "    memcpy(dst + r*" << tc << ", src + (r0 + r)*" << cols
          << " + c0, " << tc << "*sizeof(float));\n";
      os_ << in << "  }\n";
    } else {
      os_ << in << "  const i64 fr = " << rows << " - r0 < " << tr << " ? "
          << rows << " - r0 : " << tr << ";\n";
      os_ << in << "  const i64 fc = " << cols << " - c0 < " << tc << " ? "
          << cols << " - c0 : " << tc << ";\n";
      os_ << in << "  for (i64 r = 0; r < fr; ++r) {\n";
      os_ << in << "    const float* __restrict sp = src + (r0 + r)*" << cols
          << " + c0;\n";
      os_ << in << "    float* __restrict dp = dst + r*" << tc << ";\n";
      os_ << in << "    for (i64 c = 0; c < fc; ++c) dp[c] = sp[c];\n";
      os_ << in << "    for (i64 c = fc; c < " << tc << "; ++c) dp[c] = 0.0f;\n";
      os_ << in << "  }\n";
      os_ << in << "  for (i64 r = fr; r < " << tr << "; ++r) {\n";
      os_ << in << "    float* __restrict dp = dst + r*" << tc << ";\n";
      os_ << in << "    for (i64 c = 0; c < " << tc << "; ++c) dp[c] = 0.0f;\n";
      os_ << in << "  }\n";
    }
    os_ << in << "}\n";
  }

  void emit_compute(const Statement& stmt, int depth) {
    const int op = stmt.op;
    const int t_in = chain_.op_input_tensor(op);
    const int t_w = chain_.op_weight_tensor(op);
    const int t_out = chain_.op_output_tensor(op);
    const int red = chain_.reduction_loop(op);
    const int col = chain_.out_col_loop(op);
    const std::int64_t tm = s_.tiles()[0];
    const std::int64_t trd = s_.tiles()[static_cast<std::size_t>(red)];
    const std::int64_t tcl = s_.tiles()[static_cast<std::size_t>(col)];
    const std::int64_t red_ext = s_.extents()[static_cast<std::size_t>(red)];
    const std::string in = ind(depth);
    const std::vector<int> none;

    os_ << in << "{ // compute op " << op << "\n";
    os_ << in << "  float* __restrict o = arena + " << buf_expr(t_out, none)
        << ";\n";
    os_ << in << "  const float* __restrict x = arena + " << buf_expr(t_in, none)
        << ";\n";
    os_ << in << "  const float* __restrict w = arena + " << buf_expr(t_w, none)
        << ";\n";
    // Fresh accumulation tile: zero when the reduction restarts.
    os_ << in << "  if (i" << red << " == 0) { for (i64 z = 0; z < "
        << tm * tcl << "; ++z) o[z] = 0.0f; }\n";
    // Register-blocked micro-kernel: 4x64 accumulator blocks live in
    // vector registers across the whole reduction, so each output element
    // is loaded/stored once per tile instead of once per reduction step,
    // and each weight-row load feeds four FMAs.  Every bound is a
    // literal, so the compiler fully unrolls the blocks — this plus
    // `-march=native` is where the JIT buys its edge over the
    // generically-built interpreter.
    emit_compute_chunks(tm, tcl, trd, depth + 1);
    // Producer-completion hook: epilogue when the reduction finishes.
    if (chain_.epilogue(op) != Epilogue::None) {
      os_ << in << "  if (i" << red << " == " << red_ext - 1 << ") {\n";
      emit_epilogue(op, tm, tcl, col, depth + 2);
      os_ << in << "  }\n";
    }
    os_ << in << "}\n";
  }

  /// One RBxCB register block: RB accumulator rows of CB columns live in
  /// vector registers across the whole reduction (every bound is a
  /// literal, so the compiler fully unrolls the column loops and promotes
  /// acc<j> out of memory).  `row` / `col` are the emitted base-index
  /// expressions (loop variables or literals).
  void emit_compute_block(const std::string& row, std::int64_t rb,
                          const std::string& col, std::int64_t cb,
                          std::int64_t trd, int depth) {
    const std::string in = ind(depth);
    os_ << in << "{\n";
    for (std::int64_t j = 0; j < rb; ++j) {
      os_ << in << "  float acc" << j << "[" << cb << "];\n";
      os_ << in << "  for (i64 c = 0; c < " << cb << "; ++c) acc" << j
          << "[c] = o[(" << row << " + " << j << ")*" << tcl_ << " + " << col
          << " + c];\n";
    }
    os_ << in << "  for (i64 r = 0; r < " << trd << "; ++r) {\n";
    os_ << in << "    const float* __restrict wr = w + r*" << tcl_ << " + "
        << col << ";\n";
    for (std::int64_t j = 0; j < rb; ++j) {
      os_ << in << "    const float xv" << j << " = x[(" << row << " + " << j
          << ")*" << trd_ << " + r];\n";
      os_ << in << "    #pragma omp simd\n";
      os_ << in << "    for (i64 c = 0; c < " << cb << "; ++c) acc" << j
          << "[c] += xv" << j << " * wr[c];\n";
    }
    os_ << in << "  }\n";
    for (std::int64_t j = 0; j < rb; ++j) {
      os_ << in << "  for (i64 c = 0; c < " << cb << "; ++c) o[(" << row
          << " + " << j << ")*" << tcl_ << " + " << col << " + c] = acc" << j
          << "[c];\n";
    }
    os_ << in << "}\n";
  }

  /// Column sweep for a fixed row block: 64-wide main chunks plus one
  /// literal-width remainder.
  void emit_compute_cols(const std::string& row, std::int64_t rb,
                         std::int64_t tcl, std::int64_t trd, int depth) {
    constexpr std::int64_t kCB = 64;
    const std::string in = ind(depth);
    const std::int64_t main_end = tcl - tcl % kCB;
    if (main_end == kCB) {
      emit_compute_block(row, rb, "0", kCB, trd, depth);
    } else if (main_end > 0) {
      os_ << in << "for (i64 cc = 0; cc < " << main_end << "; cc += " << kCB
          << ") {\n";
      emit_compute_block(row, rb, "cc", kCB, trd, depth + 1);
      os_ << in << "}\n";
    }
    if (tcl % kCB != 0) {
      emit_compute_block(row, rb, std::to_string(main_end), tcl % kCB, trd,
                         depth);
    }
  }

  /// The register-blocked GEMM-accumulate: 4-row main blocks, then a
  /// literal remainder block.  Each output element still accumulates its
  /// reduction terms in ascending r order, so the arithmetic matches the
  /// interpreter to float round-off (FMA contraction aside).
  void emit_compute_chunks(std::int64_t tm, std::int64_t tcl, std::int64_t trd,
                           int depth) {
    tcl_ = tcl;
    trd_ = trd;
    constexpr std::int64_t kRB = 4;
    const std::string in = ind(depth);
    const std::int64_t main_rows = tm - tm % kRB;
    if (main_rows == kRB) {
      emit_compute_cols("0", kRB, tcl, trd, depth);
    } else if (main_rows > 0) {
      os_ << in << "for (i64 i = 0; i < " << main_rows << "; i += " << kRB
          << ") {\n";
      emit_compute_cols("i", kRB, tcl, trd, depth + 1);
      os_ << in << "}\n";
    }
    if (tm % kRB != 0) {
      emit_compute_cols(std::to_string(main_rows), tm % kRB, tcl, trd, depth);
    }
  }

  /// Emitted inside the compute scope: `o` is the op's accumulator tile.
  void emit_epilogue(int op, std::int64_t tm, std::int64_t tcl, int col,
                     int depth) {
    const std::string in = ind(depth);
    const Epilogue epi = chain_.epilogue(op);
    if (epi == Epilogue::Relu) {
      os_ << in << "for (i64 z = 0; z < " << tm * tcl
          << "; ++z) o[z] = o[z] > 0.0f ? o[z] : 0.0f;\n";
      return;
    }
    if (epi == Epilogue::Gelu) {
      // tanh(t) = 1 - 2/(e^(2t) + 1): inlines through mcf_expf so the
      // loop vectorises (a libm tanhf call would block it).
      os_ << in << "#pragma omp simd\n";
      os_ << in << "for (i64 z = 0; z < " << tm * tcl << "; ++z) {\n";
      os_ << in << "  const float v = o[z];\n";
      os_ << in << "  const float t = " << flit(static_cast<float>(kSqrt2OverPi))
          << " * (v + " << flit(0.044715f) << " * v * v * v);\n";
      os_ << in << "  const float th = 1.0f - 2.0f / (mcf_expf(2.0f*t) + 1.0f);\n";
      os_ << in << "  o[z] = 0.5f * v * (1.0f + th);\n";
      os_ << in << "}\n";
      return;
    }
    // Online softmax over the streamed `col` dimension, with the
    // consumer-accumulator rescale (exec/interpreter.cpp apply_epilogue).
    MCF_CHECK(epi == Epilogue::OnlineSoftmax) << "unknown epilogue";
    MCF_CHECK(op + 1 < chain_.num_ops())
        << "online softmax requires a consumer operator";
    const std::int64_t soff = stat_offset_[static_cast<std::size_t>(op)];
    const std::int64_t valid_cols = chain_.loop_dim(col);
    const int t_cons = chain_.op_output_tensor(op + 1);
    const std::int64_t cons_floats =
        buf_offset_[static_cast<std::size_t>(t_cons) + 1] -
        buf_offset_[static_cast<std::size_t>(t_cons)];
    const std::int64_t cons_cols =
        s_.tiles()[static_cast<std::size_t>(chain_.out_col_loop(op + 1))];
    const std::int64_t cons_rows_total = cons_floats / cons_cols;

    os_ << in << "const i64 c0 = i" << col << "*" << tcl << ";\n";
    os_ << in << "float* __restrict rmax = stats + " << soff << ";\n";
    os_ << in << "float* __restrict rsum = stats + " << soff + tm << ";\n";
    os_ << in << "float* __restrict cons = arena + "
        << buf_offset_[static_cast<std::size_t>(t_cons)] << ";\n";
    os_ << in << "for (i64 i = 0; i < " << tm << "; ++i) {\n";
    os_ << in << "  float* __restrict row = o + i*" << tcl << ";\n";
    os_ << in << "  #pragma omp simd\n";
    os_ << in << "  for (i64 c = 0; c < " << tcl << "; ++c) {\n";
    os_ << in << "    if (c0 + c >= " << valid_cols
        << ") row[c] = -INFINITY; else row[c] *= "
        << flit(chain_.softmax_scale()) << ";\n";
    os_ << in << "  }\n";
    os_ << in << "  float tmax = -INFINITY;\n";
    os_ << in << "  #pragma omp simd reduction(max:tmax)\n";
    os_ << in << "  for (i64 c = 0; c < " << tcl
        << "; ++c) tmax = row[c] > tmax ? row[c] : tmax;\n";
    os_ << in << "  const float nmax = rmax[i] > tmax ? rmax[i] : tmax;\n";
    os_ << in << "  float sum = 0.0f;\n";
    os_ << in << "  #pragma omp simd reduction(+:sum)\n";
    os_ << in << "  for (i64 c = 0; c < " << tcl << "; ++c) {\n";
    os_ << in << "    const float e = row[c] == -INFINITY ? 0.0f : "
        << "mcf_expf(row[c] - nmax);\n";
    os_ << in << "    row[c] = e; sum += e;\n";
    os_ << in << "  }\n";
    os_ << in << "  const float corr = rmax[i] == -INFINITY ? 0.0f : "
        << "mcf_expf(rmax[i] - nmax);\n";
    os_ << in << "  rsum[i] = rsum[i]*corr + sum;\n";
    os_ << in << "  rmax[i] = nmax;\n";
    os_ << in << "  for (i64 tr = i; tr < " << cons_rows_total << "; tr += "
        << tm << ") {\n";
    os_ << in << "    float* __restrict cr = cons + tr*" << cons_cols << ";\n";
    os_ << in << "    #pragma omp simd\n";
    os_ << in << "    for (i64 c = 0; c < " << cons_cols
        << "; ++c) cr[c] *= corr;\n";
    os_ << in << "  }\n";
    os_ << in << "}\n";
  }

  void emit_store(const Statement& stmt, int depth) {
    const int t = stmt.tensor;
    const auto& info = chain_.tensor(t);
    MCF_CHECK(info.kind == TensorKind::Output) << "store of non-output tensor";
    const int lr = info.loops[0];
    const int lc = info.loops[1];
    const std::int64_t tr = s_.tiles()[static_cast<std::size_t>(lr)];
    const std::int64_t tc = s_.tiles()[static_cast<std::size_t>(lc)];
    const std::int64_t rows = chain_.loop_dim(lr);
    const std::int64_t cols = chain_.loop_dim(lc);
    // Deferred softmax normalisation (the FlashAttention final divide).
    const int producer = info.producer_op;
    const bool normalize =
        producer > 0 && chain_.epilogue(producer - 1) == Epilogue::OnlineSoftmax;
    const std::string in = ind(depth);
    const std::vector<int> covered(stmt.covered_loops.begin(),
                                   stmt.covered_loops.end());

    os_ << in << "{ // store " << info.name << "\n";
    if (normalize) {
      const std::int64_t soff =
          stat_offset_[static_cast<std::size_t>(producer - 1)] + s_.tiles()[0];
      os_ << in << "  const float* __restrict rsum = stats + " << soff << ";\n";
    }
    // Hoisted stores write every resident tile: one emitted loop per
    // covered loop, shadow indices q<l>.
    int extra = 0;
    for (const int l : covered) {
      const std::int64_t e = s_.extents()[static_cast<std::size_t>(l)];
      os_ << ind(depth + 1 + extra) << "for (i64 q" << l << " = 0; q" << l
          << " < " << e << "; ++q" << l << ") {\n";
      ++extra;
    }
    const std::string bn = ind(depth + 1 + extra);
    os_ << bn << "const float* __restrict src = arena + "
        << buf_expr(t, covered) << ";\n";
    os_ << bn << "const i64 r0 = " << idx_var(lr, covered) << "*" << tr
        << ", c0 = " << idx_var(lc, covered) << "*" << tc << ";\n";
    const bool exact = rows % tr == 0 && cols % tc == 0;
    if (!exact) {
      os_ << bn << "const i64 fr = " << rows << " - r0 < " << tr << " ? "
          << rows << " - r0 : " << tr << ";\n";
      os_ << bn << "const i64 fc = " << cols << " - c0 < " << tc << " ? "
          << cols << " - c0 : " << tc << ";\n";
    }
    const std::string fr = exact ? std::to_string(tr) : "fr";
    const std::string fc = exact ? std::to_string(tc) : "fc";
    os_ << bn << "for (i64 r = 0; r < " << fr << "; ++r) {\n";
    os_ << bn << "  const float* __restrict sp = src + r*" << tc << ";\n";
    os_ << bn << "  float* __restrict dp = gout + b*" << rows * cols
        << " + (r0 + r)*" << cols << " + c0;\n";
    if (normalize) {
      os_ << bn << "  const float inv = 1.0f / (rsum[r] < 1e-30f ? 1e-30f : "
          << "rsum[r]);\n";
      os_ << bn << "  for (i64 c = 0; c < " << fc
          << "; ++c) dp[c] = sp[c] * inv;\n";
    } else if (exact) {
      os_ << bn << "  memcpy(dp, sp, " << tc << "*sizeof(float));\n";
    } else {
      os_ << bn << "  for (i64 c = 0; c < " << fc << "; ++c) dp[c] = sp[c];\n";
    }
    os_ << bn << "}\n";
    for (int j = extra - 1; j >= 0; --j) os_ << ind(depth + 1 + j) << "}\n";
    os_ << in << "}\n";
  }

  const Schedule& s_;
  const ChainSpec& chain_;
  std::string symbol_;
  std::vector<std::int64_t> buf_offset_;
  std::vector<std::int64_t> stat_offset_;
  std::int64_t stat_floats_ = 0;
  std::int64_t tcl_ = 0;  ///< current compute's out-col tile (block emitter)
  std::int64_t trd_ = 0;  ///< current compute's reduction tile (block emitter)
  std::ostringstream os_;
};

}  // namespace

std::string cpp_kernel_prelude() {
  return
      "// generated by mcfuser exec/codegen (C++ lowering)\n"
      "#include <math.h>\n"
      "#include <string.h>\n"
      "typedef long long i64;\n"
      "\n"
      "// Inline polynomial expf (Cephes-style: 2^n * p(r) on a reduced\n"
      "// argument), accurate to ~1e-7 relative — far inside the jit-vs-\n"
      "// interpreter tolerance.  Unlike a libm call it inlines into the\n"
      "// online-softmax loops, so they vectorise like the rest of the\n"
      "// kernel (the hardware analogue is the GPU's __expf SFU path).\n"
      "static inline float mcf_expf(float x) {\n"
      "  x = x < -87.0f ? -87.0f : (x > 88.0f ? 88.0f : x);\n"
      "  const float z = x * 1.442695040888963407f;  // x / ln 2\n"
      "  const float n = floorf(z + 0.5f);\n"
      "  float r = x - n * 0.693359375f;             // ln2 hi\n"
      "  r -= n * -2.12194440e-4f;                   // ln2 lo\n"
      "  float p = 1.9875691500e-4f;\n"
      "  p = p * r + 1.3981999507e-3f;\n"
      "  p = p * r + 8.3334519073e-3f;\n"
      "  p = p * r + 4.1665795894e-2f;\n"
      "  p = p * r + 1.6666665459e-1f;\n"
      "  p = p * r + 5.0000001201e-1f;\n"
      "  p = p * r * r + r + 1.0f;\n"
      "  const int bits = ((int)n + 127) << 23;      // 2^n\n"
      "  float sf;\n"
      "  memcpy(&sf, &bits, sizeof(sf));\n"
      "  return p * sf;\n"
      "}\n"
      "\n"
      "// Fault-injection seam for the crash-isolation chaos tests\n"
      "// (exec/sandbox.cpp).  Fires ONLY inside sandbox worker processes\n"
      "// (MCFUSER_SANDBOX_WORKER set by the spawner): an injected fault\n"
      "// must never take down an in-process caller.  Directive grammar in\n"
      "// MCFUSER_JIT_FAULT: comma-separated `mode@substr` entries, mode in\n"
      "// {segv, kill, hang, garbage}; an entry without `@` matches every\n"
      "// kernel, otherwise substr is matched against the chain tag.\n"
      "#include <signal.h>\n"
      "#include <stdlib.h>\n"
      "#include <time.h>\n"
      "static int mcf_fault_in_worker(void) {\n"
      "  static int flag = -1;\n"
      "  if (flag < 0) {\n"
      "    const char* w = getenv(\"MCFUSER_SANDBOX_WORKER\");\n"
      "    flag = (w && *w) ? 1 : 0;\n"
      "  }\n"
      "  return flag;\n"
      "}\n"
      "static int mcf_fault_mode_for(const char* tag) {\n"
      "  const char* d = getenv(\"MCFUSER_JIT_FAULT\");\n"
      "  if (!d || !*d) return 0;\n"
      "  while (*d) {\n"
      "    const char* end = d;\n"
      "    while (*end && *end != ',') ++end;\n"
      "    const char* at = d;\n"
      "    while (at < end && *at != '@') ++at;\n"
      "    int mode = 0;\n"
      "    if (!strncmp(d, \"segv\", 4)) mode = 1;\n"
      "    else if (!strncmp(d, \"kill\", 4)) mode = 2;\n"
      "    else if (!strncmp(d, \"hang\", 4)) mode = 3;\n"
      "    else if (!strncmp(d, \"garbage\", 7)) mode = 4;\n"
      "    int match = (at == end);  /* no @: match-all */\n"
      "    if (!match) {\n"
      "      char sub[128];\n"
      "      size_t n = (size_t)(end - at - 1);\n"
      "      if (n >= sizeof(sub)) n = sizeof(sub) - 1;\n"
      "      memcpy(sub, at + 1, n);\n"
      "      sub[n] = 0;\n"
      "      match = (n == 0) || (strstr(tag, sub) != 0);\n"
      "    }\n"
      "    if (mode && match) return mode;\n"
      "    d = (*end == ',') ? end + 1 : end;\n"
      "  }\n"
      "  return 0;\n"
      "}\n"
      "// phase 0 = kernel entry (process-level faults), phase 1 = kernel\n"
      "// exit (output corruption — poisoning at entry would be overwritten\n"
      "// by the kernel body whenever one block covers the whole output).\n"
      "static void mcf_maybe_fault(const char* tag, float* out, i64 n,\n"
      "                            int phase) {\n"
      "  if (!mcf_fault_in_worker()) return;\n"
      "  switch (mcf_fault_mode_for(tag)) {\n"
      "    case 1: if (phase == 0) { volatile int* p = (volatile int*)0; "
      "*p = 1; } break;\n"
      "    case 2: if (phase == 0) raise(SIGKILL); break;\n"
      "    case 3: if (phase == 0) for (;;) { struct timespec ts = "
      "{0, 100000000}; nanosleep(&ts, 0); } break;\n"
      "    case 4: if (phase == 1) { for (i64 i = 0; i < n; ++i) out[i] = "
      "nanf(\"\"); } break;\n"
      "    default: break;\n"
      "  }\n"
      "}\n\n";
}

std::int64_t cpp_kernel_scratch_floats(const Schedule& s) {
  const ChainSpec& chain = s.chain();
  std::int64_t arena = 0;
  for (int t = 0; t < chain.num_tensors(); ++t) {
    arena += s.tile_elems(t) * s.resident_tiles()[static_cast<std::size_t>(t)];
  }
  std::int64_t stats = 0;
  for (int op = 0; op < chain.num_ops(); ++op) {
    if (chain.epilogue(op) == Epilogue::OnlineSoftmax) stats += 2 * s.tiles()[0];
  }
  return arena + stats;
}

CppKernelSource emit_cpp_kernel(const Schedule& s, const std::string& symbol) {
  MCF_CHECK(s.valid()) << "cannot lower an invalid schedule";
  MCF_CHECK(s.consume_complete())
      << "schedule reads partial tiles (Rule-2 violation); refusing to lower";
  CppKernelSource out;
  out.symbol = symbol;
  out.code = CppEmitter(s, symbol).emit();
  return out;
}

}  // namespace mcf
