#include "exec/sandbox.hpp"

#include <dlfcn.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "support/env.hpp"
#include "support/framing.hpp"
#include "support/lru_map.hpp"
#include "support/mutex.hpp"
#include "support/thread_pool.hpp"
#include "tensor/tensor.hpp"

extern char** environ;

namespace mcf {
namespace sandbox {

namespace {

using framing::Deadline;
using framing::FrameReader;
using framing::FrameWriter;
using framing::IoStatus;

constexpr std::uint32_t kMagic = 0x4D434657;  // "MCFW"
/// v2: RunRequest carries `threads` (the host's block fan-out cap, so
/// workers replay the multicore run_native geometry).  Host and workers
/// re-exec the same binary, so a version mismatch only means a corrupted
/// stream — rejected, never skewed.
constexpr std::uint32_t kProtocolVersion = 2;

/// Frames are small (a request is a path + a dozen integers; a response
/// is a handful of doubles) — anything larger is a corrupted stream.
/// The cap is the process-wide MCFUSER_FRAME_MAX_BYTES knob (default
/// 1 MiB), shared with the net front-end.
[[nodiscard]] std::size_t max_frame_bytes() {
  return framing::default_max_frame_bytes();
}

/// The distinct classification for cap violations (satellite of the
/// hardening PR): "frame too large: N > cap", same phrasing in the
/// sandbox and net paths so log greps find both.
[[nodiscard]] std::string frame_too_large_reason(std::uint32_t announced) {
  return "frame too large: " + std::to_string(announced) + " > " +
         std::to_string(max_frame_bytes());
}

enum WireStatus : std::uint8_t {
  kOk = 0,
  kDlopenFailed = 1,
  kSymbolMissing = 2,
  kGarbageOutput = 3,
  kBadRequest = 4,
};

// ---- process-wide stats + crash negative-cache ------------------------------

[[nodiscard]] std::size_t crash_cache_cap() {
  static const std::size_t cap = env::size("MCFUSER_SANDBOX_CRASH_CAP", 4096);
  return cap;
}

struct GlobalState {
  /// Innermost of the sandbox pair: WorkerPool code takes State::mu
  /// first, GlobalState::mu second, never the reverse.
  Mutex mu{"sandbox.global"};
  WorkerStats stats MCF_GUARDED_BY(mu);
  LruMap<std::uint64_t, CrashEntry> crash MCF_GUARDED_BY(mu);

  GlobalState()
      : crash(LruMap<std::uint64_t, CrashEntry>::Limits{crash_cache_cap(), 0}) {
  }

  static GlobalState& instance() {
    static GlobalState g;
    return g;
  }
};

// ---- wire format ------------------------------------------------------------
// Little-endian, length-prefixed frames via support/framing.hpp (the
// codec was born here and extracted once the net front-end needed it);
// the MCFW payload layout below is pinned bit-identical by the chaos
// suite.

[[nodiscard]] const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGKILL: return "SIGKILL";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGBUS: return "SIGBUS";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    default: return nullptr;
  }
}

[[nodiscard]] std::string describe_exit(int status) {
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    if (const char* name = signal_name(sig)) {
      return std::string("worker killed by ") + name;
    }
    return "worker killed by signal " + std::to_string(sig);
  }
  if (WIFEXITED(status)) {
    return "worker exited with status " + std::to_string(WEXITSTATUS(status));
  }
  return "worker died (unrecognised wait status)";
}

// ---- request/response codecs ------------------------------------------------

[[nodiscard]] std::string encode_request(const RunRequest& req) {
  FrameWriter w;
  w.u32(kMagic);
  w.u32(kProtocolVersion);
  w.u64(req.key);
  w.str(req.so_path);
  w.str(req.symbol);
  w.i64(req.batch);
  w.i64(req.m);
  w.u32(static_cast<std::uint32_t>(req.inner.size()));
  for (const std::int64_t d : req.inner) w.i64(d);
  w.i64(req.n_blocks);
  w.i64(req.scratch_floats);
  w.u32(static_cast<std::uint32_t>(req.warmup < 0 ? 0 : req.warmup));
  w.u32(static_cast<std::uint32_t>(req.repeats < 1 ? 1 : req.repeats));
  w.u64(req.data_seed);
  w.i64(req.threads < 0 ? 0 : req.threads);
  return w.framed();
}

[[nodiscard]] bool decode_request(const std::string& payload, RunRequest* req,
                                  std::string* why) {
  FrameReader r(payload.data(), payload.size());
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t n_inner = 0;
  std::uint32_t warmup = 0;
  std::uint32_t repeats = 0;
  if (!r.u32(&magic) || magic != kMagic) {
    *why = "bad magic";
    return false;
  }
  if (!r.u32(&version) || version != kProtocolVersion) {
    *why = "protocol version mismatch";
    return false;
  }
  bool ok = r.u64(&req->key) && r.str(&req->so_path) && r.str(&req->symbol) &&
            r.i64(&req->batch) && r.i64(&req->m) && r.u32(&n_inner);
  if (ok && n_inner > 64) ok = false;  // a chain has a handful of ops
  if (ok) {
    req->inner.resize(n_inner);
    for (std::int64_t& d : req->inner) ok = ok && r.i64(&d);
  }
  std::int64_t threads = 0;
  ok = ok && r.i64(&req->n_blocks) && r.i64(&req->scratch_floats) &&
       r.u32(&warmup) && r.u32(&repeats) && r.u64(&req->data_seed) &&
       r.i64(&threads);
  if (!ok) {
    *why = "truncated request";
    return false;
  }
  req->warmup = static_cast<int>(warmup);
  req->repeats = static_cast<int>(repeats);
  req->threads = static_cast<int>(
      std::clamp<std::int64_t>(threads, 0, 1 << 16));
  if (req->batch < 1 || req->m < 1 || req->inner.size() < 2 ||
      req->n_blocks < 1 || req->scratch_floats < 0) {
    *why = "invalid geometry";
    return false;
  }
  for (const std::int64_t d : req->inner) {
    if (d < 1) {
      *why = "invalid geometry";
      return false;
    }
  }
  return true;
}

struct WireResponse {
  std::uint8_t status = kBadRequest;
  std::string reason;
  std::vector<double> samples;
};

[[nodiscard]] std::string encode_response(const WireResponse& resp) {
  FrameWriter w;
  w.u32(kMagic);
  w.u8(resp.status);
  w.str(resp.reason);
  w.u32(static_cast<std::uint32_t>(resp.samples.size()));
  for (const double s : resp.samples) w.f64(s);
  return w.framed();
}

[[nodiscard]] bool decode_response(const std::string& payload,
                                   WireResponse* resp) {
  FrameReader r(payload.data(), payload.size());
  std::uint32_t magic = 0;
  std::uint32_t n_samples = 0;
  if (!r.u32(&magic) || magic != kMagic) return false;
  if (!r.u8(&resp->status) || !r.str(&resp->reason) || !r.u32(&n_samples)) {
    return false;
  }
  if (n_samples > 4096) return false;
  resp->samples.resize(n_samples);
  for (double& s : resp->samples) {
    if (!r.f64(&s)) return false;
  }
  return true;
}

// ---- spawning ---------------------------------------------------------------

void ignore_sigpipe_once() {
  // A write to a crashed worker's pipe must surface as EPIPE, not kill
  // the host.  Installed once, process-wide (documented side effect of
  // constructing a WorkerPool).
  static const int installed = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)installed;
}

/// fork/exec of /proc/self/exe with MCFUSER_SANDBOX_WORKER=1; the child
/// sees the request pipe on fd 3 and the response pipe on fd 4.  Returns
/// the pid and the host-side pipe ends, or -1 with `err` set.
[[nodiscard]] pid_t spawn_worker(int* req_wr, int* resp_rd, std::string* err) {
  // Pre-build the environment: post-fork allocation is not async-signal
  // safe.  Strip any inherited worker flag first so the value is ours.
  std::vector<std::string> env_store;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    if (std::strncmp(*e, "MCFUSER_SANDBOX_WORKER=", 23) == 0) continue;
    env_store.emplace_back(*e);
  }
  env_store.emplace_back("MCFUSER_SANDBOX_WORKER=1");
  std::vector<char*> envp;
  envp.reserve(env_store.size() + 1);
  for (std::string& e : env_store) envp.push_back(e.data());
  envp.push_back(nullptr);
  static const char* argv0 = "mcfuser-sandbox-worker";
  char* const argv[] = {const_cast<char*>(argv0), nullptr};

  // O_CLOEXEC atomically: a concurrently spawned sibling must not
  // inherit these pipes (its copy of a request fd would keep a dead
  // worker's pipe readable forever).
  int req[2];
  int resp[2];
  if (::pipe2(req, O_CLOEXEC) != 0) {
    *err = std::strerror(errno);
    return -1;
  }
  if (::pipe2(resp, O_CLOEXEC) != 0) {
    *err = std::strerror(errno);
    ::close(req[0]);
    ::close(req[1]);
    return -1;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    *err = std::strerror(errno);
    ::close(req[0]);
    ::close(req[1]);
    ::close(resp[0]);
    ::close(resp[1]);
    return -1;
  }
  if (pid == 0) {
    // Child: land the pipe ends on fds 3/4 (via temporaries above the
    // target range so the dup2s cannot collide), then re-exec ourselves.
    const int rfd = ::fcntl(req[0], F_DUPFD_CLOEXEC, 5);
    const int wfd = ::fcntl(resp[1], F_DUPFD_CLOEXEC, 5);
    if (rfd < 0 || wfd < 0 || ::dup2(rfd, 3) < 0 || ::dup2(wfd, 4) < 0) {
      ::_exit(126);
    }
    ::execve("/proc/self/exe", argv, envp.data());
    ::_exit(127);
  }
  ::close(req[0]);
  ::close(resp[1]);
  *req_wr = req[1];
  *resp_rd = resp[0];
  return pid;
}

}  // namespace

// ---- public: availability, options, stats, crash cache ----------------------

Availability availability() {
#ifdef MCF_SANITIZE_BUILD
  return Availability{false,
                      "sanitizer build: uninstrumented sandbox workers would "
                      "evade the ASan/UBSan gate"};
#else
  if (const char* w = env::raw("MCFUSER_SANDBOX_WORKER");
      w != nullptr && *w != '\0') {
    return Availability{false, "already inside a sandbox worker"};
  }
  if (!env::bool_flag("MCFUSER_SANDBOX", true)) {
    return Availability{false, "disabled by MCFUSER_SANDBOX=0"};
  }
  if (::access("/proc/self/exe", X_OK) != 0) {
    return Availability{false,
                        "/proc/self/exe is not executable (non-Linux host?)"};
  }
  return Availability{true, ""};
#endif
}

PoolOptions default_pool_options() {
  PoolOptions opt;
  opt.workers = static_cast<int>(
      env::int64("MCFUSER_SANDBOX_WORKERS", opt.workers, 1, 64));
  opt.deadline_s =
      env::real("MCFUSER_SANDBOX_DEADLINE_S", opt.deadline_s, 0.0, 1e9);
  opt.max_retries = static_cast<int>(
      env::int64("MCFUSER_SANDBOX_RETRIES", opt.max_retries, 0, 16));
  return opt;
}

WorkerStats stats_snapshot() {
  GlobalState& g = GlobalState::instance();
  const LockGuard lock(g.mu);
  return g.stats;
}

std::optional<CrashEntry> crash_cache_lookup(std::uint64_t key) {
  GlobalState& g = GlobalState::instance();
  const LockGuard lock(g.mu);
  if (const CrashEntry* hit = g.crash.find(key)) {
    ++g.stats.negative_hits;
    return *hit;
  }
  return std::nullopt;
}

void crash_cache_insert(std::uint64_t key, MeasureFailKind kind,
                        std::string reason) {
  GlobalState& g = GlobalState::instance();
  const LockGuard lock(g.mu);
  (void)g.crash.insert(key, CrashEntry{kind, std::move(reason)});
}

bool crash_cache_evict(std::uint64_t key) {
  GlobalState& g = GlobalState::instance();
  const LockGuard lock(g.mu);
  return g.crash.erase(key);
}

void crash_cache_clear() {
  GlobalState& g = GlobalState::instance();
  const LockGuard lock(g.mu);
  g.crash = LruMap<std::uint64_t, CrashEntry>(
      LruMap<std::uint64_t, CrashEntry>::Limits{crash_cache_cap(), 0});
}

std::size_t crash_cache_size() {
  GlobalState& g = GlobalState::instance();
  const LockGuard lock(g.mu);
  return g.crash.size();
}

// ---- WorkerPool -------------------------------------------------------------

struct WorkerPool::Worker {
  pid_t pid = -1;
  int req_fd = -1;
  int resp_fd = -1;
  bool busy = false;
};

struct WorkerPool::State {
  Mutex mu{"sandbox.pool"};
  CondVar cv;
  /// The Worker objects themselves (busy flag included) are also guarded
  /// by mu — Worker is declared before State, so the annotation can only
  /// live here.
  std::vector<std::unique_ptr<Worker>> workers MCF_GUARDED_BY(mu);
  /// Deaths not yet replaced: the next spawn counts as a respawn.
  int deaths_pending MCF_GUARDED_BY(mu) = 0;
};

WorkerPool::WorkerPool(PoolOptions opt)
    : opt_(opt), state_(std::make_unique<State>()) {
  if (opt_.workers < 1) opt_.workers = 1;
  if (opt_.max_retries < 0) opt_.max_retries = 0;
  ignore_sigpipe_once();
}

WorkerPool::~WorkerPool() {
  GlobalState& g = GlobalState::instance();
  const LockGuard lock(state_->mu);
  for (auto& w : state_->workers) {
    if (w->pid <= 0) continue;
    ::close(w->req_fd);  // EOF: a healthy worker exits its loop cleanly
    ::close(w->resp_fd);
    ::kill(w->pid, SIGKILL);  // a wedged one is killed
    int status = 0;
    while (::waitpid(w->pid, &status, 0) < 0 && errno == EINTR) {
    }
    const LockGuard glock(g.mu);
    --g.stats.active;
  }
  state_->workers.clear();
}

namespace {

/// Kills (optionally), reaps and closes one worker process; returns the
/// wait description ("worker killed by SIGSEGV", ...).
std::string reap_process(pid_t pid, int req_fd, int resp_fd, bool force_kill) {
  if (force_kill) ::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  ::close(req_fd);
  ::close(resp_fd);
  GlobalState& g = GlobalState::instance();
  const LockGuard lock(g.mu);
  --g.stats.active;
  return describe_exit(status);
}

}  // namespace

RunResult WorkerPool::run(const RunRequest& req) {
  GlobalState& g = GlobalState::instance();
  const std::string frame = encode_request(req);

  for (int attempt = 0;; ++attempt) {
    // Checkout: an idle live worker, else spawn below the cap, else wait.
    Worker* w = nullptr;
    {
      UniqueLock lock(state_->mu);
      for (;;) {
        for (auto& cand : state_->workers) {
          if (!cand->busy && cand->pid > 0) {
            w = cand.get();
            break;
          }
        }
        if (w != nullptr) break;
        if (static_cast<int>(state_->workers.size()) < opt_.workers) {
          auto fresh = std::make_unique<Worker>();
          std::string err;
          fresh->pid = spawn_worker(&fresh->req_fd, &fresh->resp_fd, &err);
          if (fresh->pid < 0) {
            RunResult fail;
            fail.outcome = RunOutcome::Crashed;
            fail.reason = "cannot spawn sandbox worker: " + err;
            return fail;
          }
          {
            const LockGuard glock(g.mu);
            ++g.stats.spawned;
            ++g.stats.active;
            if (state_->deaths_pending > 0) {
              --state_->deaths_pending;
              ++g.stats.respawned;
            }
          }
          w = state_->workers.emplace_back(std::move(fresh)).get();
          break;
        }
        state_->cv.wait(lock);
      }
      w->busy = true;
    }
    {
      const LockGuard glock(g.mu);
      ++g.stats.requests;
    }

    RunResult out;
    bool worker_dead = false;
    const auto reap = [](Worker& ww) {
      const std::string desc =
          reap_process(ww.pid, ww.req_fd, ww.resp_fd, /*force_kill=*/true);
      ww.pid = -1;
      ww.req_fd = -1;
      ww.resp_fd = -1;
      return desc;
    };
    if (framing::write_all(w->req_fd, frame.data(), frame.size()) !=
        IoStatus::Ok) {
      out.outcome = RunOutcome::Crashed;
      out.reason = reap(*w) + " before the request was delivered";
      worker_dead = true;
    } else {
      const Deadline deadline = framing::deadline_after(opt_.deadline_s);
      const Deadline* dl = opt_.deadline_s > 0 ? &deadline : nullptr;
      std::string payload;
      std::uint32_t announced = 0;
      const IoStatus rs = framing::read_frame(w->resp_fd, &payload,
                                              max_frame_bytes(), dl, &announced);
      WireResponse resp;
      if (rs == IoStatus::Timeout) {
        (void)reap(*w);
        worker_dead = true;
        out.outcome = RunOutcome::TimedOut;
        out.reason = "measurement exceeded the " +
                     std::to_string(opt_.deadline_s) +
                     "s worker deadline (worker killed)";
      } else if (rs == IoStatus::TooLarge) {
        // The stream is desynced past recovery (the oversized payload
        // was never consumed): classify distinctly, then reap.
        out.outcome = RunOutcome::Crashed;
        out.reason = frame_too_large_reason(announced) + " (" + reap(*w) + ")";
        worker_dead = true;
      } else if (rs != IoStatus::Ok) {
        out.outcome = RunOutcome::Crashed;
        out.reason = reap(*w);
        worker_dead = true;
      } else if (!decode_response(payload, &resp)) {
        out.outcome = RunOutcome::Crashed;
        out.reason = "worker protocol error (" + reap(*w) + ")";
        worker_dead = true;
      } else {
        switch (resp.status) {
          case kOk:
            out.outcome = RunOutcome::Ok;
            out.samples = std::move(resp.samples);
            break;
          case kDlopenFailed:
          case kSymbolMissing:
            out.outcome = RunOutcome::Failed;
            out.reason = resp.reason;
            out.retryable_load_failure = true;
            break;
          case kGarbageOutput:
          default:
            out.outcome = RunOutcome::Failed;
            out.reason = resp.reason.empty() ? "worker rejected the request"
                                             : resp.reason;
            break;
        }
      }
    }

    {
      const LockGuard lock(state_->mu);
      if (worker_dead) {
        std::erase_if(state_->workers,
                      [&](const std::unique_ptr<Worker>& c) {
                        return c.get() == w;
                      });
        ++state_->deaths_pending;
      } else {
        w->busy = false;
      }
      state_->cv.notify_all();
    }

    if (out.outcome == RunOutcome::Crashed) {
      const LockGuard glock(g.mu);
      ++g.stats.crashes;
    } else if (out.outcome == RunOutcome::TimedOut) {
      const LockGuard glock(g.mu);
      ++g.stats.timeouts;
    }
    // Bounded retry-with-respawn on crash only: a kernel that hung once
    // would burn another full deadline for nothing.
    if (out.outcome == RunOutcome::Crashed && attempt < opt_.max_retries &&
        !out.reason.starts_with("cannot spawn")) {
      continue;
    }
    return out;
  }
}

// ---- worker side ------------------------------------------------------------

namespace {

/// Per-geometry deterministic inputs, rebuilt exactly as the host's
/// ExecMeasureState::data would (same seeds, same fill_random), memoized
/// across the requests of one worker lifetime.
struct WorkerInputs {
  Tensor a;
  std::vector<Tensor> weights;
  Tensor out;
};

std::shared_ptr<WorkerInputs> build_inputs(const RunRequest& req) {
  auto in = std::make_shared<WorkerInputs>();
  in->a = Tensor(Shape{req.batch, req.m, req.inner.front()});
  in->a.fill_random(req.data_seed);
  in->weights.reserve(req.inner.size() - 1);
  for (std::size_t op = 0; op + 1 < req.inner.size(); ++op) {
    Tensor w(Shape{req.batch, req.inner[op], req.inner[op + 1]});
    w.fill_random(req.data_seed + static_cast<std::uint64_t>(op) + 1);
    in->weights.push_back(std::move(w));
  }
  in->out = Tensor(Shape{req.batch, req.m, req.inner.back()});
  return in;
}

}  // namespace

int worker_main(int request_fd, int response_fd) {
  ::signal(SIGPIPE, SIG_IGN);
  using KernelFn = void (*)(const float*, const float* const*, float*, float*,
                            long long, long long);
  std::unordered_map<std::string, void*> handles;
  std::unordered_map<std::string, std::shared_ptr<WorkerInputs>> inputs;
  std::vector<std::vector<float>> scratch;

  for (;;) {
    std::string payload;
    std::uint32_t announced = 0;
    const IoStatus rs = framing::read_frame(request_fd, &payload,
                                            max_frame_bytes(), nullptr,
                                            &announced);
    if (rs == IoStatus::Eof) return 0;  // host closed the pipe: clean exit
    if (rs == IoStatus::TooLarge) {
      // The unread payload leaves the stream desynced: answer with the
      // distinct classification so the peer can log it, then exit (the
      // host respawns; a direct-loopback test reads the response).
      WireResponse resp;
      resp.status = kBadRequest;
      resp.reason = frame_too_large_reason(announced);
      const std::string out_frame = encode_response(resp);
      (void)framing::write_all(response_fd, out_frame.data(),
                               out_frame.size());
      return 1;
    }
    if (rs != IoStatus::Ok) return 1;

    RunRequest req;
    WireResponse resp;
    std::string why;
    if (!decode_request(payload, &req, &why)) {
      resp.status = kBadRequest;
      resp.reason = "bad request: " + why;
    } else {
      void*& handle = handles[req.so_path];
      if (handle == nullptr) {
        handle = ::dlopen(req.so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
      }
      KernelFn fn = nullptr;
      if (handle == nullptr) {
        handles.erase(req.so_path);
        const char* dlerr = ::dlerror();
        resp.status = kDlopenFailed;
        resp.reason = "worker dlopen failed: " +
                      std::string(dlerr != nullptr ? dlerr : req.so_path);
      } else if ((fn = reinterpret_cast<KernelFn>(
                      ::dlsym(handle, req.symbol.c_str()))) == nullptr) {
        resp.status = kSymbolMissing;
        resp.reason =
            "worker symbol " + req.symbol + " missing from " + req.so_path;
      } else {
        std::string key = std::to_string(req.data_seed) + ":" +
                          std::to_string(req.batch) + "x" +
                          std::to_string(req.m);
        for (const std::int64_t d : req.inner) key += "x" + std::to_string(d);
        std::shared_ptr<WorkerInputs> in_ptr;
        if (const auto it = inputs.find(key); it != inputs.end()) {
          in_ptr = it->second;
        } else {
          if (inputs.size() >= 8) inputs.clear();  // crude bound; inputs
                                                   // rebuild deterministically
          in_ptr = build_inputs(req);
          inputs.emplace(key, in_ptr);
        }
        WorkerInputs& in = *in_ptr;

        std::vector<const float*> wptrs;
        wptrs.reserve(in.weights.size());
        for (const Tensor& t : in.weights) wptrs.push_back(t.data().data());
        const float* ap = in.a.data().data();
        float* op = in.out.data().data();
        const auto need = static_cast<std::size_t>(req.scratch_floats);

        // Same execution geometry as jit::run_compiled: contiguous block
        // chunks fan out across the pool (req.threads caps the fan-out,
        // mirroring the host's MeasureOptions::exec_threads), one
        // reusable scratch arena per worker slot.
        ThreadPool& pool = ThreadPool::global();
        if (scratch.size() < pool.concurrency()) {
          scratch.resize(pool.concurrency());
        }
        const std::int64_t want =
            req.threads > 0 ? req.threads
                            : static_cast<std::int64_t>(pool.concurrency());
        const std::int64_t n_chunks = std::max<std::int64_t>(
            1, std::min<std::int64_t>(want, req.n_blocks));
        const std::int64_t n_blocks = req.n_blocks;
        const auto run_once = [&] {
          pool.parallel_for_slots(
              n_chunks, [&](unsigned slot_idx, std::int64_t c) {
                std::vector<float>& sc = scratch[slot_idx];
                if (sc.size() != need) sc.assign(need, 0.0f);
                const std::int64_t begin = c * n_blocks / n_chunks;
                const std::int64_t end = (c + 1) * n_blocks / n_chunks;
                if (begin < end) fn(ap, wptrs.data(), op, sc.data(), begin, end);
              });
        };
        for (int i = 0; i < req.warmup; ++i) run_once();
        resp.samples.reserve(static_cast<std::size_t>(req.repeats));
        for (int i = 0; i < req.repeats; ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          run_once();
          resp.samples.push_back(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - t0)
                                     .count());
        }
        // Garbage detection: a kernel that "succeeds" with non-finite
        // output is as useless as a crash and must fail loudly.
        bool finite = true;
        for (const float v : in.out.data()) {
          if (!std::isfinite(v)) {
            finite = false;
            break;
          }
        }
        if (finite) {
          resp.status = kOk;
        } else {
          resp.status = kGarbageOutput;
          resp.reason = "kernel produced non-finite output";
          resp.samples.clear();
        }
      }
    }
    const std::string out_frame = encode_response(resp);
    if (framing::write_all(response_fd, out_frame.data(), out_frame.size()) !=
        IoStatus::Ok) {
      return 1;
    }
  }
}

namespace {

/// Early worker takeover: a re-exec'd binary with MCFUSER_SANDBOX_WORKER
/// set and the pipe fds in place never reaches main() — it IS the
/// measurement loop.  Runs at static-init time, so worker_main sticks to
/// construction-order-safe facilities (no iostream globals, no logging).
struct WorkerProcessEntry {
  WorkerProcessEntry() {
    const char* flag = env::raw("MCFUSER_SANDBOX_WORKER");
    if (flag == nullptr || *flag == '\0') return;
    if (::fcntl(3, F_GETFD) < 0 || ::fcntl(4, F_GETFD) < 0) return;
    ::_exit(worker_main(3, 4));
  }
};
const WorkerProcessEntry worker_process_entry;

}  // namespace

}  // namespace sandbox
}  // namespace mcf
