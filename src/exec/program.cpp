#include "exec/program.hpp"

#include <vector>

#include "exec/jit.hpp"
#include "support/logging.hpp"

namespace mcf {

CompiledKernel::CompiledKernel(Schedule schedule, GpuSpec gpu)
    : schedule_(std::move(schedule)), gpu_(std::move(gpu)) {
  if (!schedule_.valid()) {
    error_ = "schedule has no legal statement placement";
    return;
  }
  if (!schedule_.consume_complete()) {
    error_ = "schedule consumes partial tiles (Rule-2 structure)";
    return;
  }
  volume_ = analyze_volume(schedule_);
  smem_ = plan_smem(schedule_);
  if (smem_.total_bytes > gpu_.smem_per_block) {
    error_ = "shared memory exceeds per-block limit (" +
             std::to_string(smem_.total_bytes) + " > " +
             std::to_string(gpu_.smem_per_block) + " bytes)";
    return;
  }
  ok_ = true;
}

ExecutionCounters CompiledKernel::run(const Tensor& a,
                                      std::span<const Tensor> weights,
                                      Tensor& out) const {
  MCF_CHECK(ok_) << "cannot run a failed compilation: " << error_;
  return Interpreter(schedule_).run(a, weights, out);
}

bool CompiledKernel::run_native(const Tensor& a,
                                std::span<const Tensor> weights,
                                Tensor& out, int threads) const {
  MCF_CHECK(ok_) << "cannot run a failed compilation: " << error_;
  const jit::Toolchain tc = jit::detect_toolchain();
  if (!tc.ok()) return false;
  std::string err;
  // `rk.module` stays on this frame for the whole call: an LRU eviction
  // on another thread drops the registry's reference, not ours, so the
  // mapping survives until we return.
  const jit::ResolvedKernel rk =
      jit::resolve_kernel(schedule_, gpu_.name, tc, &err);
  if (!rk.ok()) return false;
  std::vector<std::vector<float>> scratch;
  jit::run_compiled(rk.fn, schedule_, a, weights, out, scratch, threads);
  return true;
}

KernelMeasurement CompiledKernel::measure(const MeasureOptions& options) const {
  MCF_CHECK(ok_) << "cannot measure a failed compilation: " << error_;
  return TimingSimulator(gpu_).measure(schedule_, options);
}

}  // namespace mcf
