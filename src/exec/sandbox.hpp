// Crash-isolated measurement workers — the process boundary between the
// FusionEngine and the native code it measures.
//
// The jit backend (measure/backend.hpp) runs candidate kernels in the
// engine's own address space: one miscompiled or ill-behaved kernel
// (SIGSEGV, SIGFPE, infinite loop) takes down the whole service and
// every queued ticket with it.  This subsystem moves execution behind a
// pool of fork/exec'd worker processes:
//
//   * WorkerPool — spawns `/proc/self/exe` with MCFUSER_SANDBOX_WORKER
//     set; the re-exec'd binary detects the flag in an early constructor
//     and becomes a measurement loop (worker_main) instead of running
//     main().  Requests and responses cross a pair of pipes (worker fds
//     3/4) as length-prefixed frames — see RunRequest for the payload.
//   * per-request wall-clock deadline — a hung kernel is SIGKILLed and
//     reaped at the deadline; the pool lazily respawns the worker.
//   * crash classification — EOF on the response pipe is decoded through
//     waitpid(): "killed by SIGSEGV" vs "exited with status N", mapped
//     to RunOutcome::Crashed / TimedOut (and, at the engine layer, to
//     FusionStatus::WorkerCrashed / WorkerTimeout).
//   * crash negative-cache — a process-wide, LRU-bounded map from the
//     jit cache key (jit::KernelArtifact::key) to the recorded failure,
//     so a known-bad kernel is never handed to a worker again anywhere
//     in the process.  Eviction APIs exist for tests and operators.
//
// The worker executes the SAME artifact the in-process jit path would
// (dlopen + the kernel-cache symbol) with the same execution geometry
// (thread-pool block fan-out, per-slot scratch arenas) and the same
// deterministic seeded inputs, so sandboxed timings agree with
// in-process jit timings; the host computes the identical trimmed-mean
// estimate from the returned samples.
//
// Availability: sandboxing self-disables under sanitizer builds (like
// the jit — uninstrumented workers would evade the ASan/UBSan gate),
// when MCFUSER_SANDBOX=0, or when /proc/self/exe is not executable.
// Consumers (the "jit-isolated" backend) degrade to the in-process
// jit/interp path, so measure() always answers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "measure/measurement.hpp"

namespace mcf {
namespace sandbox {

/// Whether this process can spawn measurement workers; reason says why
/// not (sanitizer build, MCFUSER_SANDBOX=0, no /proc/self/exe).
/// Re-reads the environment on every call (tests toggle it).
struct Availability {
  bool ok = false;
  std::string reason;
};
[[nodiscard]] Availability availability();

/// Pool sizing and per-request policy.
struct PoolOptions {
  /// Live worker processes the pool keeps at most.  Each worker fans its
  /// kernel's blocks across its own global thread pool, so 1 mirrors the
  /// in-process execution geometry; more workers overlap requests at the
  /// cost of CPU oversubscription.
  int workers = 1;
  /// Hard wall-clock deadline per request, seconds; 0 disables.  On
  /// expiry the worker is SIGKILLed and reaped.
  double deadline_s = 10.0;
  /// Crash retries per request (each on a freshly spawned worker) before
  /// the failure is recorded.  Timeouts are never retried — a kernel
  /// that hung once will hang again for a full deadline.
  int max_retries = 1;
};

/// PoolOptions with the environment applied:
/// MCFUSER_SANDBOX_WORKERS / MCFUSER_SANDBOX_DEADLINE_S /
/// MCFUSER_SANDBOX_RETRIES override the defaults above.
[[nodiscard]] PoolOptions default_pool_options();

/// Process-wide worker health counters (monotonic except `active`;
/// report deltas via since()).  Mirrored into EngineStats and
/// GraphFusionReport::to_json.
struct WorkerStats {
  std::int64_t spawned = 0;        ///< worker processes exec'd, ever
  std::int64_t respawned = 0;      ///< spawns replacing a dead worker
  std::int64_t crashes = 0;        ///< requests ending in signal/exit
  std::int64_t timeouts = 0;       ///< requests killed at the deadline
  std::int64_t requests = 0;       ///< requests handed to a worker
  std::int64_t negative_hits = 0;  ///< measurements served by the crash cache
  std::int64_t active = 0;         ///< live workers right now (gauge)
  [[nodiscard]] WorkerStats since(const WorkerStats& before) const noexcept {
    WorkerStats d;
    d.spawned = spawned - before.spawned;
    d.respawned = respawned - before.respawned;
    d.crashes = crashes - before.crashes;
    d.timeouts = timeouts - before.timeouts;
    d.requests = requests - before.requests;
    d.negative_hits = negative_hits - before.negative_hits;
    d.active = active;  // gauge, not a counter
    return d;
  }
};
[[nodiscard]] WorkerStats stats_snapshot();

/// One measurement request: the on-disk kernel artifact plus everything
/// the worker needs to rebuild the inputs and the execution geometry —
/// no Schedule crosses the process boundary.
struct RunRequest {
  std::uint64_t key = 0;  ///< jit cache key (crash-cache identity)
  std::string so_path;
  std::string symbol;
  // Chain geometry (ChainSpec::batch/m/inner): input a is
  // [batch, m, inner[0]], weight op is [batch, inner[op], inner[op+1]],
  // output is [batch, m, inner.back()].
  std::int64_t batch = 0;
  std::int64_t m = 0;
  std::vector<std::int64_t> inner;
  std::int64_t n_blocks = 0;       ///< Schedule::num_blocks()
  std::int64_t scratch_floats = 0; ///< cpp_kernel_scratch_floats(s)
  int warmup = 1;
  int repeats = 3;
  std::uint64_t data_seed = 1;  ///< same seeding as ExecMeasureState::data
  /// Block fan-out cap (MeasureOptions::exec_threads): the worker replays
  /// the host's jit::run_compiled chunking geometry.  <= 0 = the worker's
  /// full pool concurrency.
  int threads = 0;
};

enum class RunOutcome : std::uint8_t {
  Ok,        ///< samples returned
  Failed,    ///< worker answered with a structured failure (load/garbage)
  Crashed,   ///< worker died (signal or nonzero exit) mid-request
  TimedOut,  ///< killed at the per-request deadline
};

struct RunResult {
  RunOutcome outcome = RunOutcome::Crashed;
  std::string reason;           ///< non-empty unless outcome == Ok
  std::vector<double> samples;  ///< wall seconds, one per repeat
  /// dlopen/dlsym failed INSIDE the worker: the cached .so is poisoned
  /// (truncated write, foreign-ISA restore).  The caller should
  /// jit::invalidate_kernel + recompile once instead of failing.
  bool retryable_load_failure = false;
};

/// A pool of measurement worker processes.  run() is thread-safe:
/// concurrent callers check out idle workers (blocking when all
/// `workers` are busy) and dead workers are respawned lazily.  The
/// destructor kills and reaps everything.  Does NOT consult the crash
/// negative-cache — that policy lives in the caller (IsolatedJitBackend)
/// so the pool stays a pure transport.
class WorkerPool {
 public:
  explicit WorkerPool(PoolOptions opt = default_pool_options());
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// One request end-to-end: checkout (spawn if needed), send, await
  /// within the deadline, classify.  Never throws; a spawn failure
  /// reports as Crashed with the reason.
  [[nodiscard]] RunResult run(const RunRequest& req);

  [[nodiscard]] const PoolOptions& options() const noexcept { return opt_; }

 private:
  struct Worker;
  struct State;
  PoolOptions opt_;
  std::unique_ptr<State> state_;
};

// ---- crash negative-cache ---------------------------------------------------
// Process-wide (like the jit registry): a kernel that crashed a worker is
// poisonous in EVERY pool and engine of this process.  LRU-bounded by
// MCFUSER_SANDBOX_CRASH_CAP (default 4096; 0 = unbounded).

struct CrashEntry {
  MeasureFailKind kind = MeasureFailKind::WorkerCrashed;
  std::string reason;
};

/// Hit counts toward WorkerStats::negative_hits.
[[nodiscard]] std::optional<CrashEntry> crash_cache_lookup(std::uint64_t key);
void crash_cache_insert(std::uint64_t key, MeasureFailKind kind,
                        std::string reason);
/// Returns whether an entry existed.  After eviction the kernel is
/// eligible for (sandboxed) execution again.
bool crash_cache_evict(std::uint64_t key);
void crash_cache_clear();
[[nodiscard]] std::size_t crash_cache_size();

// ---- worker side ------------------------------------------------------------

/// The measurement loop a worker process runs instead of main():
/// reads framed RunRequests from `request_fd`, executes each kernel
/// (dlopen + seeded inputs + thread-pool block fan-out), writes framed
/// responses to `response_fd`, and returns 0 on EOF (host closed the
/// pipe).  Exposed for direct-loopback testing; production workers enter
/// it from an early constructor when MCFUSER_SANDBOX_WORKER is set.
int worker_main(int request_fd, int response_fd);

}  // namespace sandbox
}  // namespace mcf
