// net::FusionServer — the hardened socket front-end over FusionEngine.
//
// One server owns one engine reference and serves the MCFN protocol
// (net/protocol.hpp) on a Unix-domain socket, a TCP loopback socket, or
// both.  Design rules, in the order they matter:
//
//   * Robust by construction.  Every read and write runs under a
//     deadline (per-frame io_timeout_s; idle connections are closed
//     after idle_timeout_s); malformed, oversized, truncated, or
//     slow-written frames are answered with a structured Error or a
//     clean close — never a crash, never a wedged accept loop.
//   * Overload maps onto the engine's admission control.  A connection
//     above max_connections is refused with Error{Overloaded}; a
//     FuseChain request is submitted through try_submit(), so a full
//     bounded queue sheds as FusionStatus::Rejected — memory stays
//     bounded no matter how hard clients push.
//   * Every accepted request resolves.  A request that outlives its
//     budget is cancelled through its ticket and waited for, so the
//     EngineStats accounting identity (submitted == completed +
//     rejected + cancelled + deadline_exceeded) survives any flood or
//     drain — the chaos suite pins this.
//   * Graceful drain.  stop() (the CLI wires SIGTERM to it) stops
//     accepting, nudges idle connections closed, lets in-flight
//     requests finish inside drain_deadline_s, then cancels the
//     stragglers' tickets and joins every thread.  stop() is idempotent
//     and also runs from the destructor.
//
// Threading: one accept thread plus one thread per live connection
// (bounded by max_connections).  All shared state lives behind the
// annotated "net.server" mutex; counters the hot paths touch are
// relaxed atomics mirrored into ServerStats.
//
// See docs/service.md for the wire format, failure taxonomy, drain
// semantics and the env-knob table.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "support/mutex.hpp"

namespace mcf {
namespace net {

struct ServerOptions {
  /// Unix-domain socket path; empty = no unix listener.  An existing
  /// file at the path is unlinked at bind time (the path belongs to the
  /// server) and removed again on stop.
  std::string unix_path;
  /// TCP port on 127.0.0.1; -1 = no TCP listener, 0 = ephemeral (read
  /// the bound port back through port()).  Loopback only — this is a
  /// same-host front door, not an internet-facing one.
  int tcp_port = -1;
  /// Hard cap on concurrently served connections; the next accept is
  /// refused with Error{Overloaded} and closed.
  int max_connections = 64;
  /// Per-frame read/write budget: once a frame's first byte arrives (or
  /// a response write starts), the whole frame must complete within
  /// this window — a slowloris peer costs at most idle + io per frame.
  double io_timeout_s = 10.0;
  /// How long a connection may sit between requests before the server
  /// closes it.
  double idle_timeout_s = 60.0;
  /// Default per-request budget when the request carries timeout_s = 0.
  /// On expiry the ticket is cancelled and waited for — the request
  /// resolves (usually Cancelled), it is never abandoned.
  double request_timeout_s = 300.0;
  /// Drain budget of stop(): in-flight requests that have not resolved
  /// when it expires get their tickets cancelled.
  double drain_deadline_s = 10.0;
};

/// Monotonic counters (plus the `active` gauge) since start().
struct ServerStats {
  std::uint64_t accepted = 0;          ///< connections accepted
  std::size_t active = 0;              ///< connections currently served
  std::uint64_t overload_sheds = 0;    ///< refused at max_connections
  std::uint64_t protocol_errors = 0;   ///< malformed frames/headers/bodies
  std::uint64_t version_mismatches = 0;///< refused with Error{BadVersion}
  std::uint64_t oversized_frames = 0;  ///< refused with Error{FrameTooLarge}
  std::uint64_t idle_closes = 0;       ///< closed at idle_timeout_s
  std::uint64_t io_timeouts = 0;       ///< frames abandoned mid-read/write
  std::uint64_t requests = 0;          ///< FuseChain requests admitted
  std::uint64_t requests_ok = 0;       ///< ... resolved FusionStatus::Ok
  std::uint64_t requests_shed = 0;     ///< ... resolved Rejected (admission)
};

class FusionServer {
 public:
  /// The engine must outlive the server.
  explicit FusionServer(FusionEngine& engine, ServerOptions opt = {});
  ~FusionServer();  ///< stop()s if still running

  FusionServer(const FusionServer&) = delete;
  FusionServer& operator=(const FusionServer&) = delete;

  /// Binds the configured listeners and starts the accept thread.
  /// False (with `err` set) when no listener was configured or a
  /// bind/listen failed; a half-configured start is fully rolled back.
  [[nodiscard]] bool start(std::string* err);

  /// Graceful drain (see file comment); blocks until every connection
  /// thread has been joined.  Safe to call twice and from a signal-
  /// handling thread (never from an async signal handler directly).
  void stop();

  [[nodiscard]] bool running() const;
  /// The bound TCP port (useful with tcp_port = 0); 0 when TCP is off.
  [[nodiscard]] int port() const;
  [[nodiscard]] const ServerOptions& options() const noexcept { return opt_; }
  [[nodiscard]] ServerStats stats() const;
  /// True from the moment stop() begins; new work is refused with
  /// Error{Draining} while existing requests run out.
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  void accept_loop();
  void handle_connection(Conn* conn);
  /// One decoded FuseChain request end-to-end; false closes the
  /// connection.
  [[nodiscard]] bool handle_fuse(int fd, const std::string& payload);
  [[nodiscard]] bool send_frame(int fd, const std::string& frame);
  [[nodiscard]] std::string stats_json() const;
  void reap_finished_locked() MCF_REQUIRES(mu_);

  FusionEngine& engine_;
  ServerOptions opt_;

  mutable Mutex mu_{"net.server"};
  std::vector<std::unique_ptr<Conn>> conns_ MCF_GUARDED_BY(mu_);
  bool running_ MCF_GUARDED_BY(mu_) = false;
  std::thread accept_thread_ MCF_GUARDED_BY(mu_);

  int unix_fd_ = -1;    ///< listeners; owned by the accept thread after
  int tcp_fd_ = -1;     ///< start(), closed as it exits
  int wake_rd_ = -1;    ///< self-pipe: stop() wakes the accept poll
  int wake_wr_ = -1;
  int bound_port_ = 0;

  std::atomic<bool> draining_{false};
  /// Set by stop(): when in-flight waits pass this point they cancel.
  std::atomic<std::int64_t> drain_hard_ns_{0};

  std::atomic<std::size_t> active_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> overload_sheds_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> version_mismatches_{0};
  std::atomic<std::uint64_t> oversized_frames_{0};
  std::atomic<std::uint64_t> idle_closes_{0};
  std::atomic<std::uint64_t> io_timeouts_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
};

}  // namespace net
}  // namespace mcf
