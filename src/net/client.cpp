#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "support/framing.hpp"
#include "support/rng.hpp"

namespace mcf {
namespace net {

namespace {

using framing::Deadline;
using framing::IoStatus;

void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

[[nodiscard]] std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Only these failures are idempotent-safe to retry (see client.hpp).
[[nodiscard]] bool retryable(RpcStatus s) noexcept {
  return s == RpcStatus::ConnectFailed || s == RpcStatus::VersionMismatch ||
         s == RpcStatus::ServerDraining;
}

/// Maps a structured server Error onto the client taxonomy.
[[nodiscard]] RpcStatus status_from_error(const ErrorMsg& err) noexcept {
  switch (err.code) {
    case ErrorCode::BadVersion: return RpcStatus::VersionMismatch;
    case ErrorCode::Overloaded: return RpcStatus::Overloaded;
    case ErrorCode::Draining: return RpcStatus::ServerDraining;
    case ErrorCode::BadMagic:
    case ErrorCode::BadFrame:
    case ErrorCode::FrameTooLarge:
    case ErrorCode::UnknownType:
    case ErrorCode::Internal: return RpcStatus::ServerError;
  }
  return RpcStatus::ServerError;
}

/// Finishes a non-blocking connect under a deadline; 0 on success, else
/// an errno value.
[[nodiscard]] int await_connect(int fd, const Deadline& dl) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    const auto now = std::chrono::steady_clock::now();
    if (now >= dl) return ETIMEDOUT;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(dl - now);
    const int rc = ::poll(&p, 1, static_cast<int>(left.count()) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    if (rc == 0) continue;  // re-check the deadline
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) {
      return errno;
    }
    return soerr;
  }
}

}  // namespace

const char* rpc_status_name(RpcStatus s) noexcept {
  switch (s) {
    case RpcStatus::Ok: return "ok";
    case RpcStatus::ConnectFailed: return "connect-failed";
    case RpcStatus::Timeout: return "timeout";
    case RpcStatus::ProtocolError: return "protocol-error";
    case RpcStatus::VersionMismatch: return "version-mismatch";
    case RpcStatus::Overloaded: return "overloaded";
    case RpcStatus::ServerDraining: return "server-draining";
    case RpcStatus::ServerError: return "server-error";
  }
  return "unknown";
}

FusionClient::FusionClient(std::string endpoint, ClientOptions opt)
    : endpoint_(std::move(endpoint)), opt_(opt) {
  jitter_state_ = opt_.jitter_seed != 0
                      ? opt_.jitter_seed
                      : hash_combine(hash_string(endpoint_), 0x6d63666eULL);
}

int FusionClient::connect_fd(std::string* err) const {
  std::string target = endpoint_;
  const bool unix_prefixed = target.rfind("unix:", 0) == 0;
  if (unix_prefixed) target = target.substr(5);
  const bool is_unix = unix_prefixed || target.find('/') != std::string::npos;

  int fd = -1;
  if (is_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (target.empty() || target.size() >= sizeof(addr.sun_path)) {
      *err = "bad unix socket path '" + target + "'";
      return -1;
    }
    std::memcpy(addr.sun_path, target.c_str(), target.size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      *err = errno_text("socket");
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
        errno != EINPROGRESS && errno != EAGAIN) {
      *err = errno_text("connect");
      ::close(fd);
      return -1;
    }
  } else {
    // "host:port", ":port" or bare "port"; host must be loopback.
    std::string host = "127.0.0.1";
    std::string port_str = target;
    const std::size_t colon = target.rfind(':');
    if (colon != std::string::npos) {
      host = target.substr(0, colon);
      port_str = target.substr(colon + 1);
      if (host.empty()) host = "127.0.0.1";
    }
    if (host != "127.0.0.1" && host != "localhost") {
      *err = "refusing non-loopback host '" + host + "'";
      return -1;
    }
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (port_str.empty() || end == nullptr || *end != '\0' || port <= 0 ||
        port > 65535) {
      *err = "bad port '" + port_str + "'";
      return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      *err = errno_text("socket");
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
        errno != EINPROGRESS) {
      *err = errno_text("connect");
      ::close(fd);
      return -1;
    }
  }

  const Deadline dl = framing::deadline_after(opt_.connect_timeout_s);
  const int soerr = await_connect(fd, dl);
  if (soerr != 0) {
    *err = std::string("connect: ") + std::strerror(soerr);
    ::close(fd);
    return -1;
  }
  return fd;
}

double FusionClient::backoff_delay(int attempt) {
  double base = opt_.backoff_initial_s;
  for (int i = 0; i < attempt && base < opt_.backoff_max_s; ++i) base *= 2.0;
  if (base > opt_.backoff_max_s) base = opt_.backoff_max_s;
  jitter_state_ = splitmix64(jitter_state_);
  const double u = static_cast<double>(jitter_state_ >> 11) * 0x1.0p-53;
  return base * (0.5 + 0.5 * u);
}

RpcResult FusionClient::once(const std::string& request_frame, MsgType expect,
                             std::string* payload_out) {
  ignore_sigpipe_once();
  RpcResult res;

  std::string err;
  const int fd = connect_fd(&err);
  if (fd < 0) {
    res.status = RpcStatus::ConnectFailed;
    res.detail = err;
    return res;
  }

  const std::size_t frame_cap = framing::default_max_frame_bytes();
  const auto fail = [&](RpcStatus s, std::string detail) {
    ::close(fd);
    res.status = s;
    res.detail = std::move(detail);
    return res;
  };
  // Reads one frame and routes structured Errors; true to keep going.
  const auto read_reply = [&](std::string* payload, double wait_s,
                              const char* phase) -> bool {
    const Deadline dl = framing::deadline_after(wait_s);
    const IoStatus rs = framing::read_frame(fd, payload, frame_cap, &dl);
    if (rs == IoStatus::Timeout) {
      (void)fail(RpcStatus::Timeout,
                 std::string(phase) + ": no reply in time");
      return false;
    }
    if (rs != IoStatus::Ok) {
      (void)fail(RpcStatus::ProtocolError, std::string(phase) + ": " +
                                               framing::io_status_name(rs) +
                                               " while reading reply");
      return false;
    }
    return true;
  };
  // Decodes the reply header; routes Error frames and version skew onto
  // the client taxonomy.  Returns true when the payload is `want`.
  const auto expect_type = [&](const std::string& payload, MsgType want,
                               const char* phase) -> bool {
    MsgType type{};
    std::uint8_t seen = 0;
    switch (decode_header(payload, &type, &seen)) {
      case HeaderStatus::Ok: break;
      case HeaderStatus::BadVersion:
        (void)fail(RpcStatus::VersionMismatch,
                   std::string(phase) + ": server speaks MCFN v" +
                       std::to_string(int{seen}) + ", this client v" +
                       std::to_string(int{kProtocolVersion}));
        return false;
      default:
        (void)fail(RpcStatus::ProtocolError,
                   std::string(phase) + ": reply is not an MCFN frame");
        return false;
    }
    if (type == MsgType::Error) {
      ErrorMsg em;
      if (!decode_error(payload, &em)) {
        (void)fail(RpcStatus::ProtocolError,
                   std::string(phase) + ": undecodable Error frame");
        return false;
      }
      (void)fail(status_from_error(em), std::string(error_code_name(em.code)) +
                                            ": " + em.detail);
      return false;
    }
    if (type != want) {
      (void)fail(RpcStatus::ProtocolError,
                 std::string(phase) + ": unexpected " + msg_type_name(type));
      return false;
    }
    return true;
  };

  if (opt_.handshake) {
    const std::string hello = encode_hello();
    const Deadline hdl = framing::deadline_after(opt_.io_timeout_s);
    if (framing::write_all(fd, hello.data(), hello.size(), &hdl) !=
        IoStatus::Ok) {
      return fail(RpcStatus::Timeout, "handshake: send stalled");
    }
    std::string ack;
    if (!read_reply(&ack, opt_.io_timeout_s, "handshake")) return res;
    if (!expect_type(ack, MsgType::HelloAck, "handshake")) return res;
  }

  const Deadline wdl = framing::deadline_after(opt_.io_timeout_s);
  if (framing::write_all(fd, request_frame.data(), request_frame.size(),
                         &wdl) != IoStatus::Ok) {
    return fail(RpcStatus::Timeout, "request: send stalled");
  }

  // A fuse may legitimately take the whole server-side request budget
  // before its result frame appears; wait generously past io_timeout_s.
  const double extra =
      opt_.request_timeout_s > 0.0 ? opt_.request_timeout_s : 600.0;
  std::string payload;
  if (!read_reply(&payload, opt_.io_timeout_s + extra, "request")) return res;
  if (!expect_type(payload, expect, "request")) return res;

  ::close(fd);
  res.status = RpcStatus::Ok;
  *payload_out = std::move(payload);
  return res;
}

RpcResult FusionClient::call(const std::string& request_frame, MsgType expect,
                             std::string* payload_out) {
  RpcResult res;
  for (int attempt = 0;; ++attempt) {
    res = once(request_frame, expect, payload_out);
    res.attempts = attempt + 1;
    if (res.status == RpcStatus::Ok || !retryable(res.status) ||
        attempt >= opt_.max_retries) {
      return res;
    }
    const double delay = backoff_delay(attempt);
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

RpcResult FusionClient::fuse(const ChainSpec& chain) {
  FuseRequest req = request_from_chain(chain);
  req.timeout_s = opt_.request_timeout_s;
  return fuse_request(std::move(req));
}

RpcResult FusionClient::fuse_request(FuseRequest req) {
  if (req.id == 0) req.id = next_id_++;
  if (req.timeout_s <= 0.0) req.timeout_s = opt_.request_timeout_s;
  std::string payload;
  RpcResult res =
      call(encode_fuse_request(req), MsgType::FuseResult, &payload);
  if (res.status != RpcStatus::Ok) return res;
  if (!decode_fuse_response(payload, &res.response)) {
    res.status = RpcStatus::ProtocolError;
    res.detail = "undecodable FuseResult frame";
  }
  return res;
}

RpcResult FusionClient::query_stats(std::string* stats_json) {
  std::string payload;
  RpcResult res = call(encode_stats_query(), MsgType::StatsResult, &payload);
  if (res.status != RpcStatus::Ok) return res;
  if (!decode_stats_result(payload, stats_json)) {
    res.status = RpcStatus::ProtocolError;
    res.detail = "undecodable StatsResult frame";
  }
  return res;
}

}  // namespace net
}  // namespace mcf
