// The MCFN wire protocol — the versioned call boundary between
// net::FusionServer and its clients.
//
// Transport: length-prefixed frames (support/framing.hpp, u32 LE length
// + payload, size-capped by MCFUSER_FRAME_MAX_BYTES).  Every payload
// starts with the same header:
//
//   u32 magic = 0x4D43464E ("MCFN")  |  u8 version  |  u8 type  |  body
//
// The header is checked on EVERY frame, not just the handshake — a
// mid-stream corruption is caught at the next message, and a client
// built against a different protocol revision is refused with a
// structured Error{BadVersion} naming both versions (never answered
// with silently re-interpreted bytes).
//
// Message vocabulary (client -> server 0x01..0x7F, server -> client
// 0x81..0xFF so a direction mix-up can never alias):
//
//   Hello       -> HelloAck      version/feature handshake (optional but
//                                recommended: the ack carries the
//                                server's frame cap and name)
//   FuseChain   -> FuseResult    one ChainSpec tuned through the engine;
//                                the response carries the FusionStatus
//                                taxonomy verbatim plus the chain report
//   StatsQuery  -> StatsResult   EngineStats snapshot as JSON
//   (any)       -> Error         structured refusal: code + detail + the
//                                request id when one was parsed
//
// Failure taxonomy: FuseResult reuses engine/status.hpp FusionStatus
// (Rejected = admission shed, DeadlineExceeded, MeasureFailed, ...);
// Error covers what never reached the engine (BadMagic, BadVersion,
// BadFrame, FrameTooLarge, UnknownType, Overloaded, Draining, Internal).
// docs/service.md is the authoritative prose spec.
//
// Version policy: kProtocolVersion bumps on ANY layout change (there is
// one version for the whole vocabulary, mirroring the sandbox protocol).
// Servers refuse newer AND older clients — with one binary per deploy
// there is no skew window worth a compatibility matrix.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/chain.hpp"

namespace mcf {
namespace net {

constexpr std::uint32_t kMagic = 0x4D43464E;  // "MCFN"
constexpr std::uint8_t kProtocolVersion = 1;

/// Hard caps on request vectors, far above any real chain (a chain has a
/// handful of ops) — a lying count fails the decode, it never allocates.
constexpr std::uint32_t kMaxInnerDims = 64;

enum class MsgType : std::uint8_t {
  Hello = 0x01,
  FuseChain = 0x02,
  StatsQuery = 0x03,
  HelloAck = 0x81,
  FuseResult = 0x82,
  StatsResult = 0x83,
  Error = 0x84,
};

[[nodiscard]] const char* msg_type_name(MsgType t) noexcept;

/// Refusals that never reached (or never came back from) the engine.
enum class ErrorCode : std::uint8_t {
  BadMagic = 1,      ///< payload header magic mismatch (not an MCFN peer)
  BadVersion = 2,    ///< protocol revision mismatch; detail names both
  BadFrame = 3,      ///< header/body failed to decode (truncated, lying)
  FrameTooLarge = 4, ///< announced length above the frame cap
  UnknownType = 5,   ///< valid header, unassigned message type
  Overloaded = 6,    ///< connection cap hit; retry-after-backoff is safe
  Draining = 7,      ///< server is shutting down; retry elsewhere is safe
  Internal = 8,      ///< server-side invariant failure
};

[[nodiscard]] const char* error_code_name(ErrorCode c) noexcept;

/// One FuseChain request — a ChainSpec by value plus per-request control.
struct FuseRequest {
  /// Client-chosen correlation id, echoed on the response verbatim.
  std::uint64_t id = 0;
  std::string name;
  std::int64_t batch = 1;
  std::int64_t m = 1;
  std::vector<std::int64_t> inner;
  /// Epilogue enum values, one per op (None-padded server-side like the
  /// ChainSpec constructor); values above OnlineSoftmax fail the decode.
  std::vector<std::uint8_t> epilogues;
  double softmax_scale = 1.0;
  /// Per-request wall-clock budget; 0 = the server's default.  A request
  /// that exceeds it is cancelled and resolves through the engine's
  /// ticket taxonomy (Cancelled/DeadlineExceeded), never left dangling.
  double timeout_s = 0.0;
};

struct FuseResponse {
  std::uint64_t id = 0;
  std::uint8_t status = 0;  ///< FusionStatus, verbatim
  std::string reason;       ///< failure detail; empty on Ok
  double time_s = 0.0;      ///< best fused time (Ok only)
  std::string json;         ///< chain report (GraphFusionReport vocabulary)
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::Internal;
  std::string detail;
  /// Correlation id when one was parsed before the failure, else 0.
  std::uint64_t id = 0;
};

struct HelloAck {
  std::uint32_t max_frame_bytes = 0;  ///< the server's receive cap
  std::string server;                 ///< display name + version string
};

// ---- encoders (full frames, ready for write_all) ---------------------------

[[nodiscard]] std::string encode_hello();
[[nodiscard]] std::string encode_hello_ack(const HelloAck& ack);
[[nodiscard]] std::string encode_fuse_request(const FuseRequest& req);
[[nodiscard]] std::string encode_stats_query();
[[nodiscard]] std::string encode_fuse_response(const FuseResponse& resp);
[[nodiscard]] std::string encode_stats_result(const std::string& stats_json);
[[nodiscard]] std::string encode_error(ErrorCode code,
                                       const std::string& detail,
                                       std::uint64_t id = 0);

// ---- decoders ---------------------------------------------------------------

/// Header verdict for one received payload.
enum class HeaderStatus : std::uint8_t {
  Ok,
  BadMagic,
  BadVersion,
  BadFrame,  ///< shorter than a header
};

/// Checks magic + version and extracts the type.  `seen_version`
/// (optional) reports the peer's version on BadVersion for the
/// structured refusal.
[[nodiscard]] HeaderStatus decode_header(const std::string& payload,
                                         MsgType* type,
                                         std::uint8_t* seen_version = nullptr);

/// Body decoders assume decode_header returned Ok for the matching type;
/// they re-skip the header and bounds-check every field.  `why` gets the
/// parse failure ("truncated request", "inner count 900 > 64", ...).
[[nodiscard]] bool decode_fuse_request(const std::string& payload,
                                       FuseRequest* req, std::string* why);
[[nodiscard]] bool decode_fuse_response(const std::string& payload,
                                        FuseResponse* resp);
[[nodiscard]] bool decode_hello_ack(const std::string& payload, HelloAck* ack);
[[nodiscard]] bool decode_stats_result(const std::string& payload,
                                       std::string* stats_json);
[[nodiscard]] bool decode_error(const std::string& payload, ErrorMsg* err);

// ---- ChainSpec bridging -----------------------------------------------------

/// Request -> ChainSpec.  Geometry validation is the ChainSpec
/// constructor's job (non-aborting); this only maps the epilogue bytes,
/// rejecting values outside the enum (nullopt + `why`).
[[nodiscard]] std::optional<ChainSpec> chain_from_request(
    const FuseRequest& req, std::string* why);

/// ChainSpec -> request (the client library's send path).
[[nodiscard]] FuseRequest request_from_chain(const ChainSpec& chain);

}  // namespace net
}  // namespace mcf
