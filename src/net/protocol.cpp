#include "net/protocol.hpp"

#include "support/framing.hpp"

namespace mcf {
namespace net {

using framing::FrameReader;
using framing::FrameWriter;

const char* msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::Hello: return "hello";
    case MsgType::FuseChain: return "fuse-chain";
    case MsgType::StatsQuery: return "stats-query";
    case MsgType::HelloAck: return "hello-ack";
    case MsgType::FuseResult: return "fuse-result";
    case MsgType::StatsResult: return "stats-result";
    case MsgType::Error: return "error";
  }
  return "unknown";
}

const char* error_code_name(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::BadMagic: return "bad-magic";
    case ErrorCode::BadVersion: return "bad-version";
    case ErrorCode::BadFrame: return "bad-frame";
    case ErrorCode::FrameTooLarge: return "frame-too-large";
    case ErrorCode::UnknownType: return "unknown-type";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::Draining: return "draining";
    case ErrorCode::Internal: return "internal";
  }
  return "unknown";
}

namespace {

void put_header(FrameWriter* w, MsgType type) {
  w->u32(kMagic);
  w->u8(kProtocolVersion);
  w->u8(static_cast<std::uint8_t>(type));
}

/// Consumes the header fields; callers already validated them through
/// decode_header, so this only advances the read position.
[[nodiscard]] bool skip_header(FrameReader* r) {
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  return r->u32(&magic) && r->u8(&version) && r->u8(&type);
}

}  // namespace

std::string encode_hello() {
  FrameWriter w;
  put_header(&w, MsgType::Hello);
  return w.framed();
}

std::string encode_hello_ack(const HelloAck& ack) {
  FrameWriter w;
  put_header(&w, MsgType::HelloAck);
  w.u32(ack.max_frame_bytes);
  w.str(ack.server);
  return w.framed();
}

std::string encode_fuse_request(const FuseRequest& req) {
  FrameWriter w;
  put_header(&w, MsgType::FuseChain);
  w.u64(req.id);
  w.str(req.name);
  w.i64(req.batch);
  w.i64(req.m);
  w.u32(static_cast<std::uint32_t>(req.inner.size()));
  for (const std::int64_t d : req.inner) w.i64(d);
  w.u32(static_cast<std::uint32_t>(req.epilogues.size()));
  for (const std::uint8_t e : req.epilogues) w.u8(e);
  w.f64(req.softmax_scale);
  w.f64(req.timeout_s);
  return w.framed();
}

std::string encode_stats_query() {
  FrameWriter w;
  put_header(&w, MsgType::StatsQuery);
  return w.framed();
}

std::string encode_fuse_response(const FuseResponse& resp) {
  FrameWriter w;
  put_header(&w, MsgType::FuseResult);
  w.u64(resp.id);
  w.u8(resp.status);
  w.str(resp.reason);
  w.f64(resp.time_s);
  w.str(resp.json);
  return w.framed();
}

std::string encode_stats_result(const std::string& stats_json) {
  FrameWriter w;
  put_header(&w, MsgType::StatsResult);
  w.str(stats_json);
  return w.framed();
}

std::string encode_error(ErrorCode code, const std::string& detail,
                         std::uint64_t id) {
  FrameWriter w;
  put_header(&w, MsgType::Error);
  w.u8(static_cast<std::uint8_t>(code));
  w.str(detail);
  w.u64(id);
  return w.framed();
}

HeaderStatus decode_header(const std::string& payload, MsgType* type,
                           std::uint8_t* seen_version) {
  FrameReader r(payload);
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t raw_type = 0;
  if (!r.u32(&magic) || !r.u8(&version) || !r.u8(&raw_type)) {
    return HeaderStatus::BadFrame;
  }
  if (magic != kMagic) return HeaderStatus::BadMagic;
  if (seen_version != nullptr) *seen_version = version;
  if (version != kProtocolVersion) return HeaderStatus::BadVersion;
  *type = static_cast<MsgType>(raw_type);
  return HeaderStatus::Ok;
}

bool decode_fuse_request(const std::string& payload, FuseRequest* req,
                         std::string* why) {
  FrameReader r(payload);
  if (!skip_header(&r)) {
    *why = "truncated header";
    return false;
  }
  std::uint32_t n_inner = 0;
  std::uint32_t n_epi = 0;
  if (!r.u64(&req->id) || !r.str(&req->name) || !r.i64(&req->batch) ||
      !r.i64(&req->m) || !r.u32(&n_inner)) {
    *why = "truncated request";
    return false;
  }
  if (n_inner > kMaxInnerDims) {
    *why = "inner count " + std::to_string(n_inner) + " > " +
           std::to_string(kMaxInnerDims);
    return false;
  }
  req->inner.resize(n_inner);
  for (std::int64_t& d : req->inner) {
    if (!r.i64(&d)) {
      *why = "truncated request";
      return false;
    }
  }
  if (!r.u32(&n_epi)) {
    *why = "truncated request";
    return false;
  }
  if (n_epi > kMaxInnerDims) {
    *why = "epilogue count " + std::to_string(n_epi) + " > " +
           std::to_string(kMaxInnerDims);
    return false;
  }
  req->epilogues.resize(n_epi);
  for (std::uint8_t& e : req->epilogues) {
    if (!r.u8(&e)) {
      *why = "truncated request";
      return false;
    }
  }
  if (!r.f64(&req->softmax_scale) || !r.f64(&req->timeout_s)) {
    *why = "truncated request";
    return false;
  }
  return true;
}

bool decode_fuse_response(const std::string& payload, FuseResponse* resp) {
  FrameReader r(payload);
  if (!skip_header(&r)) return false;
  return r.u64(&resp->id) && r.u8(&resp->status) && r.str(&resp->reason) &&
         r.f64(&resp->time_s) && r.str(&resp->json);
}

bool decode_hello_ack(const std::string& payload, HelloAck* ack) {
  FrameReader r(payload);
  if (!skip_header(&r)) return false;
  return r.u32(&ack->max_frame_bytes) && r.str(&ack->server);
}

bool decode_stats_result(const std::string& payload, std::string* stats_json) {
  FrameReader r(payload);
  if (!skip_header(&r)) return false;
  return r.str(stats_json);
}

bool decode_error(const std::string& payload, ErrorMsg* err) {
  FrameReader r(payload);
  if (!skip_header(&r)) return false;
  std::uint8_t code = 0;
  if (!r.u8(&code) || !r.str(&err->detail) || !r.u64(&err->id)) return false;
  if (code < static_cast<std::uint8_t>(ErrorCode::BadMagic) ||
      code > static_cast<std::uint8_t>(ErrorCode::Internal)) {
    return false;
  }
  err->code = static_cast<ErrorCode>(code);
  return true;
}

std::optional<ChainSpec> chain_from_request(const FuseRequest& req,
                                            std::string* why) {
  std::vector<Epilogue> epis;
  epis.reserve(req.epilogues.size());
  for (const std::uint8_t e : req.epilogues) {
    if (e > static_cast<std::uint8_t>(Epilogue::OnlineSoftmax)) {
      *why = "unknown epilogue value " + std::to_string(e);
      return std::nullopt;
    }
    epis.push_back(static_cast<Epilogue>(e));
  }
  // Geometry validation (dims >= 1, inner count bounds) is the ChainSpec
  // constructor's non-aborting job; the engine reports InvalidChain.
  return ChainSpec(req.name, req.batch, req.m, req.inner, std::move(epis),
                   static_cast<float>(req.softmax_scale));
}

FuseRequest request_from_chain(const ChainSpec& chain) {
  FuseRequest req;
  req.name = chain.name();
  req.batch = chain.batch();
  req.m = chain.m();
  req.inner = chain.inner();
  const int ops = chain.num_ops();
  req.epilogues.reserve(ops > 0 ? static_cast<std::size_t>(ops) : 0);
  for (int op = 0; op < ops; ++op) {
    req.epilogues.push_back(static_cast<std::uint8_t>(chain.epilogue(op)));
  }
  req.softmax_scale = static_cast<double>(chain.softmax_scale());
  return req;
}

}  // namespace net
}  // namespace mcf
