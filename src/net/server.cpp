#include "net/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/protocol.hpp"
#include "support/framing.hpp"
#include "support/logging.hpp"

namespace mcf {
namespace net {

namespace {

using framing::Deadline;
using framing::IoStatus;

[[nodiscard]] std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void ignore_sigpipe_once() {
  // A peer that disconnects mid-write must surface as EPIPE, not kill
  // the process (same contract as the sandbox pipes).
  static const int installed = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)installed;
}

/// The per-chain response report — GraphFusionReport vocabulary at
/// single-chain granularity, so clients parse one shape everywhere.
[[nodiscard]] std::string chain_report_json(const ChainSpec& chain,
                                            const FusionResult& r) {
  std::string out = "{";
  out += "\"chain\": \"" + json_escape(chain.name()) + "\"";
  out += ", \"status\": \"" + std::string(fusion_status_name(r.status)) + "\"";
  out += ", \"reason\": \"" + json_escape(r.reason) + "\"";
  out += ", \"time_s\": " + std::to_string(r.time_s());
  out += ", \"space_size\": " + std::to_string(r.space_size);
  out += ", \"measurements\": " + std::to_string(r.tuned.stats.measurements);
  out += "}";
  return out;
}

}  // namespace

struct FusionServer::Conn {
  /// Owned for the Conn's whole lifetime and closed only here, after the
  /// handler thread was joined — so stop()'s shutdown() nudge can never
  /// hit a recycled fd number.
  int fd = -1;
  std::thread th;
  std::atomic<bool> done{false};

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

FusionServer::FusionServer(FusionEngine& engine, ServerOptions opt)
    : engine_(engine), opt_(std::move(opt)) {
  if (opt_.max_connections < 1) opt_.max_connections = 1;
}

FusionServer::~FusionServer() { stop(); }

bool FusionServer::start(std::string* err) {
  ignore_sigpipe_once();
  {
    const LockGuard lock(mu_);
    if (running_) {
      if (err != nullptr) *err = "server already running";
      return false;
    }
  }
  if (opt_.unix_path.empty() && opt_.tcp_port < 0) {
    if (err != nullptr) *err = "no listener configured (unix path or tcp port)";
    return false;
  }

  const auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what + ": " + std::strerror(errno);
    if (unix_fd_ >= 0) ::close(unix_fd_);
    if (tcp_fd_ >= 0) ::close(tcp_fd_);
    if (wake_rd_ >= 0) ::close(wake_rd_);
    if (wake_wr_ >= 0) ::close(wake_wr_);
    unix_fd_ = tcp_fd_ = wake_rd_ = wake_wr_ = -1;
    return false;
  };

  if (!opt_.unix_path.empty()) {
    if (opt_.unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (err != nullptr) *err = "unix socket path too long";
      return false;
    }
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (unix_fd_ < 0) return fail("socket(unix)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(opt_.unix_path.c_str());  // the path belongs to this server
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return fail("bind(" + opt_.unix_path + ")");
    }
    if (::listen(unix_fd_, 64) != 0) return fail("listen(unix)");
  }
  if (opt_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (tcp_fd_ < 0) return fail("socket(tcp)");
    const int one = 1;
    (void)::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return fail("bind(127.0.0.1:" + std::to_string(opt_.tcp_port) + ")");
    }
    if (::listen(tcp_fd_, 64) != 0) return fail("listen(tcp)");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  int wake[2];
  if (::pipe2(wake, O_CLOEXEC) != 0) return fail("pipe2(wake)");
  wake_rd_ = wake[0];
  wake_wr_ = wake[1];

  draining_.store(false, std::memory_order_relaxed);
  {
    const LockGuard lock(mu_);
    running_ = true;
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
  return true;
}

void FusionServer::stop() {
  std::thread acceptor;
  {
    const LockGuard lock(mu_);
    if (!running_) return;
    running_ = false;
    acceptor = std::move(accept_thread_);
  }
  draining_.store(true, std::memory_order_relaxed);
  const double drain_s = opt_.drain_deadline_s > 0 ? opt_.drain_deadline_s : 0;
  drain_hard_ns_.store(
      now_ns() + static_cast<std::int64_t>(drain_s * 1e9),
      std::memory_order_relaxed);
  // Wake the accept poll; it closes the listeners and exits.
  if (wake_wr_ >= 0) {
    const char b = 1;
    while (::write(wake_wr_, &b, 1) < 0 && errno == EINTR) {
    }
  }
  if (acceptor.joinable()) acceptor.join();

  // Nudge every connection: SHUT_RD wakes idle readers with EOF without
  // disturbing an in-flight response write.
  {
    const LockGuard lock(mu_);
    for (const auto& c : conns_) {
      if (c->fd >= 0) (void)::shutdown(c->fd, SHUT_RD);
    }
  }
  // Connection threads bound their own exit (in-flight waits cancel at
  // drain_hard_ns_); join them all.
  std::vector<std::unique_ptr<Conn>> finished;
  {
    const LockGuard lock(mu_);
    finished.swap(conns_);
  }
  for (const auto& c : finished) {
    if (c->th.joinable()) c->th.join();
  }
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
  if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
  // The engine may still be settling cancelled jobs; wait for the queue
  // to quiesce so a post-stop stats() snapshot is stable.  Bounded: the
  // tickets above were all resolved or cancelled.
  (void)engine_.wait_idle(drain_s > 0 ? drain_s : 10.0);
}

bool FusionServer::running() const {
  const LockGuard lock(mu_);
  return running_;
}

int FusionServer::port() const { return bound_port_; }

ServerStats FusionServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.active = active_.load(std::memory_order_relaxed);
  s.overload_sheds = overload_sheds_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.version_mismatches = version_mismatches_.load(std::memory_order_relaxed);
  s.oversized_frames = oversized_frames_.load(std::memory_order_relaxed);
  s.idle_closes = idle_closes_.load(std::memory_order_relaxed);
  s.io_timeouts = io_timeouts_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_shed = requests_shed_.load(std::memory_order_relaxed);
  return s;
}

void FusionServer::reap_finished_locked() {
  // Joining a finished thread is instant; live connections stay.
  std::erase_if(conns_, [](const std::unique_ptr<Conn>& c) {
    if (!c->done.load(std::memory_order_acquire)) return false;
    if (c->th.joinable()) c->th.join();
    return true;
  });
}

void FusionServer::accept_loop() {
  for (;;) {
    struct pollfd pfds[3];
    nfds_t n = 0;
    int unix_idx = -1;
    int tcp_idx = -1;
    if (unix_fd_ >= 0) {
      unix_idx = static_cast<int>(n);
      pfds[n++] = {unix_fd_, POLLIN, 0};
    }
    if (tcp_fd_ >= 0) {
      tcp_idx = static_cast<int>(n);
      pfds[n++] = {tcp_fd_, POLLIN, 0};
    }
    const int wake_idx = static_cast<int>(n);
    pfds[n++] = {wake_rd_, POLLIN, 0};

    const int rc = ::poll(pfds, n, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      MCF_LOG(Warn) << "server accept poll failed: " << std::strerror(errno);
      break;
    }
    if ((pfds[wake_idx].revents & (POLLIN | POLLERR | POLLHUP)) != 0) break;

    for (const int idx : {unix_idx, tcp_idx}) {
      if (idx < 0 || (pfds[idx].revents & POLLIN) == 0) continue;
      const int lfd = pfds[idx].fd;
      const int cfd = ::accept4(lfd, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd < 0) continue;  // transient (ECONNABORTED, EMFILE, ...)
      accepted_.fetch_add(1, std::memory_order_relaxed);
      set_nonblocking(cfd);

      if (active_.load(std::memory_order_relaxed) >=
          static_cast<std::size_t>(opt_.max_connections)) {
        // Best-effort refusal under a short deadline; a peer that will
        // not even read two dozen bytes just gets the close.
        overload_sheds_.fetch_add(1, std::memory_order_relaxed);
        const std::string frame = encode_error(
            ErrorCode::Overloaded,
            "connection limit " + std::to_string(opt_.max_connections) +
                " reached; retry with backoff");
        const Deadline dl = framing::deadline_after(1.0);
        (void)framing::write_all(cfd, frame.data(), frame.size(), &dl);
        ::close(cfd);
        continue;
      }

      active_.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_unique<Conn>();
      conn->fd = cfd;
      Conn* raw = conn.get();
      {
        const LockGuard lock(mu_);
        reap_finished_locked();
        conns_.push_back(std::move(conn));
      }
      raw->th = std::thread([this, raw] { handle_connection(raw); });
    }
  }
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  unix_fd_ = tcp_fd_ = -1;
}

bool FusionServer::send_frame(int fd, const std::string& frame) {
  const Deadline dl = framing::deadline_after(opt_.io_timeout_s);
  const IoStatus ws = framing::write_all(fd, frame.data(), frame.size(), &dl);
  if (ws == IoStatus::Timeout) {
    io_timeouts_.fetch_add(1, std::memory_order_relaxed);
  }
  return ws == IoStatus::Ok;
}

void FusionServer::handle_connection(Conn* conn) {
  const int fd = conn->fd;
  const std::size_t frame_cap = framing::default_max_frame_bytes();
  bool open = true;
  while (open) {
    // Idle phase: wait for the first byte (or EOF) of the next frame.
    const Deadline idle_dl = framing::deadline_after(opt_.idle_timeout_s);
    const IoStatus ready = framing::wait_readable(fd, &idle_dl);
    if (ready == IoStatus::Timeout) {
      idle_closes_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (ready != IoStatus::Ok) break;

    // Frame phase: the whole frame must arrive within io_timeout_s — a
    // slowloris writer costs idle + io per frame, never a wedged thread.
    const Deadline frame_dl = framing::deadline_after(opt_.io_timeout_s);
    std::string payload;
    std::uint32_t announced = 0;
    const IoStatus rs =
        framing::read_frame(fd, &payload, frame_cap, &frame_dl, &announced);
    if (rs == IoStatus::Eof) break;  // peer finished cleanly
    if (rs == IoStatus::Timeout) {
      io_timeouts_.fetch_add(1, std::memory_order_relaxed);
      break;  // mid-frame: the stream cannot be resynced
    }
    if (rs == IoStatus::TooLarge) {
      oversized_frames_.fetch_add(1, std::memory_order_relaxed);
      (void)send_frame(fd, encode_error(ErrorCode::FrameTooLarge,
                                        "frame too large: " +
                                            std::to_string(announced) + " > " +
                                            std::to_string(frame_cap)));
      break;  // the oversized payload was never consumed
    }
    if (rs != IoStatus::Ok) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;  // truncated or errno-level failure
    }

    MsgType type{};
    std::uint8_t seen_version = 0;
    switch (decode_header(payload, &type, &seen_version)) {
      case HeaderStatus::Ok:
        break;
      case HeaderStatus::BadFrame:
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        (void)send_frame(fd,
                         encode_error(ErrorCode::BadFrame,
                                      "payload shorter than the MCFN header"));
        open = false;
        break;
      case HeaderStatus::BadMagic:
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        (void)send_frame(
            fd, encode_error(ErrorCode::BadMagic, "not an MCFN frame"));
        open = false;
        break;
      case HeaderStatus::BadVersion:
        version_mismatches_.fetch_add(1, std::memory_order_relaxed);
        (void)send_frame(
            fd, encode_error(
                    ErrorCode::BadVersion,
                    "server speaks MCFN v" +
                        std::to_string(int{kProtocolVersion}) +
                        ", peer sent v" + std::to_string(int{seen_version})));
        open = false;
        break;
    }
    if (!open) break;

    switch (type) {
      case MsgType::Hello: {
        if (draining()) {
          (void)send_frame(
              fd, encode_error(ErrorCode::Draining, "server is draining"));
          open = false;
          break;
        }
        HelloAck ack;
        ack.max_frame_bytes = static_cast<std::uint32_t>(frame_cap);
        ack.server =
            "mcfuser-fusion-server/" + std::to_string(int{kProtocolVersion});
        open = send_frame(fd, encode_hello_ack(ack));
        break;
      }
      case MsgType::StatsQuery:
        open = send_frame(fd, encode_stats_result(stats_json()));
        break;
      case MsgType::FuseChain:
        open = handle_fuse(fd, payload);
        break;
      default:
        // Server->client types and unassigned bytes: a confused or
        // hostile peer; refuse and close.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        (void)send_frame(
            fd, encode_error(ErrorCode::UnknownType,
                             std::string("unexpected message type ") +
                                 msg_type_name(type)));
        open = false;
        break;
    }
  }
  // Close-for-business; the fd itself is closed by ~Conn after the join
  // (stop() may still be aiming a shutdown() at this fd number).
  (void)::shutdown(fd, SHUT_RDWR);
  active_.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

bool FusionServer::handle_fuse(int fd, const std::string& payload) {
  FuseRequest req;
  std::string why;
  if (!decode_fuse_request(payload, &req, &why)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    (void)send_frame(fd, encode_error(ErrorCode::BadFrame, why, req.id));
    return false;
  }
  if (draining()) {
    // Idempotent-safe refusal: the request never reached the engine.
    (void)send_frame(
        fd, encode_error(ErrorCode::Draining, "server is draining", req.id));
    return false;
  }
  std::optional<ChainSpec> chain = chain_from_request(req, &why);
  if (!chain.has_value()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    (void)send_frame(fd, encode_error(ErrorCode::BadFrame, why, req.id));
    return false;
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  // try_submit: a full bounded queue sheds as Rejected immediately —
  // overload maps onto the engine's admission control, the server never
  // queues unboundedly on its own.
  FusionTicket ticket = engine_.try_submit(*chain);

  const double budget =
      req.timeout_s > 0 ? req.timeout_s : opt_.request_timeout_s;
  const std::int64_t deadline_ns =
      now_ns() + static_cast<std::int64_t>(
                     (budget > 0 && budget < 1e9 ? budget : 1e9) * 1e9);
  // Slice the wait so a drain (or the request deadline) interrupts it;
  // on expiry cancel-and-wait, so this ticket ALWAYS resolves and the
  // engine's accounting identity holds through floods and drains.
  for (;;) {
    if (ticket.wait_for(0.05)) break;
    const std::int64_t t = now_ns();
    const std::int64_t drain_ns =
        draining() ? drain_hard_ns_.load(std::memory_order_relaxed)
                   : INT64_MAX;
    if (t >= deadline_ns || t >= drain_ns) {
      (void)ticket.cancel();
      ticket.wait();
      break;
    }
  }

  const FusionResult& r = ticket.get();
  if (r.status == FusionStatus::Ok) {
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (r.status == FusionStatus::Rejected) {
    requests_shed_.fetch_add(1, std::memory_order_relaxed);
  }
  FuseResponse resp;
  resp.id = req.id;
  resp.status = static_cast<std::uint8_t>(r.status);
  resp.reason = r.reason;
  resp.time_s = r.time_s();
  resp.json = chain_report_json(*chain, r);
  return send_frame(fd, encode_fuse_response(resp));
}

std::string FusionServer::stats_json() const {
  const EngineStats e = engine_.stats();
  const ServerStats s = stats();
  std::string out = "{\"engine\": {";
  out += "\"queued\": " + std::to_string(e.queued);
  out += ", \"busy\": " + std::to_string(e.busy);
  out += ", \"submitted\": " + std::to_string(e.submitted);
  out += ", \"completed\": " + std::to_string(e.completed);
  out += ", \"rejected\": " + std::to_string(e.rejected);
  out += ", \"cancelled\": " + std::to_string(e.cancelled);
  out += ", \"deadline_exceeded\": " + std::to_string(e.deadline_exceeded);
  out += ", \"memo_entries\": " + std::to_string(e.memo_entries);
  out += "}, \"server\": {";
  out += "\"accepted\": " + std::to_string(s.accepted);
  out += ", \"active\": " + std::to_string(s.active);
  out += ", \"overload_sheds\": " + std::to_string(s.overload_sheds);
  out += ", \"protocol_errors\": " + std::to_string(s.protocol_errors);
  out += ", \"version_mismatches\": " + std::to_string(s.version_mismatches);
  out += ", \"oversized_frames\": " + std::to_string(s.oversized_frames);
  out += ", \"idle_closes\": " + std::to_string(s.idle_closes);
  out += ", \"io_timeouts\": " + std::to_string(s.io_timeouts);
  out += ", \"requests\": " + std::to_string(s.requests);
  out += ", \"requests_ok\": " + std::to_string(s.requests_ok);
  out += ", \"requests_shed\": " + std::to_string(s.requests_shed);
  out += "}}";
  return out;
}

}  // namespace net
}  // namespace mcf
