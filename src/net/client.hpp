// net::FusionClient — the MCFN client library.
//
// One client talks to one endpoint (Unix-domain path or loopback
// host:port) with a fresh connection per call: connect under
// connect_timeout_s, optional Hello/HelloAck version handshake, one
// request frame out, one response frame back under io_timeout_s, close.
// Stateless calls keep the failure model simple — there is no sticky
// half-dead connection to reason about.
//
// Retry policy (the part worth reading twice): a failed call is retried
// at most max_retries times with capped exponential backoff plus
// deterministic jitter, and ONLY for failures that are idempotent-safe
// because the request provably never entered the engine:
//
//   * connect refused / connect timeout   (no bytes ever sent)
//   * version handshake refusal           (server answered BadVersion
//                                          before reading a request)
//   * Error{Draining}                     (server refused the request
//                                          while shutting down)
//
// Everything else — including Overloaded, Timeout mid-request, and
// protocol errors — is surfaced to the caller exactly once: the server
// may have (or may yet) run the request, and "run the tuner twice" is
// not this layer's call to make.
//
// See docs/service.md for the wire format and retry guidance.
#pragma once

#include <cstdint>
#include <string>

#include "ir/chain.hpp"
#include "net/protocol.hpp"

namespace mcf {
namespace net {

struct ClientOptions {
  /// Budget for one connect(2) (per attempt, not across retries).
  double connect_timeout_s = 5.0;
  /// Per-frame read/write budget once connected.
  double io_timeout_s = 30.0;
  /// Default FuseRequest::timeout_s when the request carries 0; 0 keeps
  /// the server's own default.
  double request_timeout_s = 0.0;
  /// Retries AFTER the first attempt, for idempotent-safe failures only.
  int max_retries = 3;
  /// Backoff ladder: min(backoff_max_s, backoff_initial_s * 2^attempt),
  /// scaled by a deterministic jitter in [0.5, 1.0].
  double backoff_initial_s = 0.05;
  double backoff_max_s = 2.0;
  /// Jitter seed; 0 derives one from the endpoint so two clients with
  /// default options still spread their retries.
  std::uint64_t jitter_seed = 0;
  /// Hello/HelloAck handshake before the first request of every call.
  /// Costs one round-trip; catches a version skew before any work is
  /// sent.  Disable for latency-critical same-binary loopback use.
  bool handshake = true;
};

/// The client's failure taxonomy.  Engine-level failures (Rejected,
/// DeadlineExceeded, MeasureFailed, ...) are NOT RpcStatus values — they
/// arrive as RpcStatus::Ok with the FusionStatus inside the response.
enum class RpcStatus : std::uint8_t {
  Ok = 0,           ///< got a FuseResult/StatsResult; see response.status
  ConnectFailed,    ///< connect refused/timed out (after retries)
  Timeout,          ///< connected, but a frame missed io_timeout_s
  ProtocolError,    ///< malformed/unexpected bytes from the server
  VersionMismatch,  ///< server refused our protocol revision
  Overloaded,       ///< Error{Overloaded}: connection cap hit
  ServerDraining,   ///< Error{Draining} (after retries)
  ServerError,      ///< any other structured Error from the server
};

[[nodiscard]] const char* rpc_status_name(RpcStatus s) noexcept;

struct RpcResult {
  RpcStatus status = RpcStatus::Ok;
  /// Connection attempts spent (1 = first try succeeded).
  int attempts = 0;
  /// Failure detail: errno text, server Error detail, parse context.
  std::string detail;
  /// Valid when status == Ok and the call was a fuse.
  FuseResponse response;
};

class FusionClient {
 public:
  /// `endpoint` is either a Unix-domain path ("unix:/run/mcf.sock", or
  /// any string containing '/') or a loopback TCP "host:port" /
  /// ":port" / "port" (host, when given, must be 127.0.0.1 or
  /// localhost).
  explicit FusionClient(std::string endpoint, ClientOptions opt = {});

  /// Tunes one chain through the remote engine.  Blocks for up to
  /// (connect + handshake + request budget + io) per attempt.
  [[nodiscard]] RpcResult fuse(const ChainSpec& chain);
  /// Same, with explicit wire-level control (correlation id, timeout).
  [[nodiscard]] RpcResult fuse_request(FuseRequest req);
  /// Fetches the server's stats JSON (engine + server sections).
  [[nodiscard]] RpcResult query_stats(std::string* stats_json);

  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }
  [[nodiscard]] const ClientOptions& options() const noexcept { return opt_; }

 private:
  /// One full call with retry loop around `once`.
  RpcResult call(const std::string& request_frame, MsgType expect,
                 std::string* payload_out);
  /// One connection lifetime: connect, handshake, send, receive.
  RpcResult once(const std::string& request_frame, MsgType expect,
                 std::string* payload_out);
  [[nodiscard]] int connect_fd(std::string* err) const;
  [[nodiscard]] double backoff_delay(int attempt);

  std::string endpoint_;
  ClientOptions opt_;
  std::uint64_t jitter_state_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace net
}  // namespace mcf
