// The paper's evaluation workloads.
//
//   Table II — batch GEMM chains G1..G12
//   Table III — self-attention modules S1..S9 (BERT / ViT / MLP-Mixer)
//   §VI-C — end-to-end BERT model configurations
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/chain.hpp"

namespace mcf {

/// G1..G12 (paper Table II).  (batch,M,K)x(batch,K,N) then
/// (batch,M,N)x(batch,N,H).
[[nodiscard]] std::vector<ChainSpec> gemm_chain_suite();

/// S1..S9 (paper Table III): heads folded into batch, online-softmax
/// epilogue between the two GEMMs.
[[nodiscard]] std::vector<ChainSpec> attention_suite();

/// BERT model configuration for the end-to-end experiments (§VI-C).
struct BertConfig {
  std::string name;
  int layers = 12;
  std::int64_t hidden = 768;
  std::int64_t heads = 12;
  std::int64_t ffn = 3072;
  std::int64_t seq_len = 512;

  [[nodiscard]] std::int64_t head_dim() const { return hidden / heads; }
};

[[nodiscard]] BertConfig bert_small();
[[nodiscard]] BertConfig bert_base();
[[nodiscard]] BertConfig bert_large();
[[nodiscard]] std::vector<BertConfig> bert_suite();

/// The attention chain of one BERT layer at a given sequence length.
[[nodiscard]] ChainSpec bert_attention_chain(const BertConfig& cfg,
                                             std::int64_t seq_len);

}  // namespace mcf
