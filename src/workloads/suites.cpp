#include "workloads/suites.hpp"

namespace mcf {

std::vector<ChainSpec> gemm_chain_suite() {
  // Table II: name / batch / M / N / K / H.
  struct Row {
    const char* name;
    std::int64_t batch, m, n, k, h;
  };
  static constexpr Row kRows[] = {
      {"G1", 1, 512, 256, 64, 64},     {"G2", 1, 512, 256, 64, 128},
      {"G3", 1, 512, 256, 64, 256},    {"G4", 1, 512, 512, 256, 256},
      {"G5", 1, 512, 512, 512, 256},   {"G6", 1, 512, 512, 1024, 256},
      {"G7", 1, 512, 512, 128, 128},   {"G8", 1, 1024, 512, 128, 128},
      {"G9", 1, 2048, 512, 128, 128},  {"G10", 1, 1024, 1024, 128, 128},
      {"G11", 4, 1024, 1024, 128, 128}, {"G12", 8, 1024, 1024, 128, 128},
  };
  std::vector<ChainSpec> out;
  out.reserve(std::size(kRows));
  for (const auto& r : kRows) {
    out.push_back(ChainSpec::gemm_chain(r.name, r.batch, r.m, r.n, r.k, r.h));
  }
  return out;
}

std::vector<ChainSpec> attention_suite() {
  // Table III: name / heads / M / N / K / H / network.
  struct Row {
    const char* name;
    std::int64_t heads, m, n, k, h;
  };
  static constexpr Row kRows[] = {
      {"S1", 8, 512, 512, 64, 64},    // Bert-Small
      {"S2", 12, 512, 512, 64, 64},   // Bert-Base
      {"S3", 16, 512, 512, 64, 64},   // Bert-Large
      {"S4", 12, 256, 256, 64, 64},   // ViT-Base
      {"S5", 16, 256, 256, 64, 64},   // ViT-Large
      {"S6", 16, 256, 256, 80, 80},   // ViT-Huge
      {"S7", 1, 512, 256, 64, 64},    // MLP-Mixer
      {"S8", 1, 768, 384, 64, 64},    // MLP-Mixer
      {"S9", 1, 1024, 512, 64, 64},   // MLP-Mixer
  };
  std::vector<ChainSpec> out;
  out.reserve(std::size(kRows));
  for (const auto& r : kRows) {
    out.push_back(ChainSpec::attention(r.name, r.heads, r.m, r.n, r.k, r.h));
  }
  return out;
}

BertConfig bert_small() { return BertConfig{"Bert-Small", 4, 512, 8, 2048, 512}; }
BertConfig bert_base() { return BertConfig{"Bert-Base", 12, 768, 12, 3072, 512}; }
BertConfig bert_large() { return BertConfig{"Bert-Large", 24, 1024, 16, 4096, 512}; }

std::vector<BertConfig> bert_suite() {
  return {bert_small(), bert_base(), bert_large()};
}

ChainSpec bert_attention_chain(const BertConfig& cfg, std::int64_t seq_len) {
  return ChainSpec::attention(cfg.name + "-attn", cfg.heads, seq_len, seq_len,
                              cfg.head_dim(), cfg.head_dim());
}

}  // namespace mcf
