// Typed environment-knob parsing — the one place MCFUSER_* tuning
// variables are read.
//
// Every knob in the codebase used to hand-roll its own strtol/strtod
// dance, and most of them *silently* fell back to the default on a typo
// ("MCFUSER_SANDBOX_WORKERS=banana" quietly meant 1 worker).  These
// helpers centralise the contract:
//
//   * parse-and-validate: the value must consume the whole string and
//     land inside the caller's [min, max] range;
//   * loud rejection: a malformed or out-of-range value logs a Warn
//     naming the variable, the offending value, and the accepted form,
//     then returns the caller's default — a typo degrades visibly, it
//     never poisons the process or silently changes behaviour;
//   * unset (or empty) means "use the default", silently — absence is
//     the normal case, not an error.
//
// The full knob table (name, type, default, consumer) lives in
// docs/service.md §"Environment knobs"; add a row there when introducing
// a knob through these helpers.
//
// Deliberately header-only and dependency-light: env_bool_flag must be
// callable from the lock-order validator's enablement latch
// (support/mutex.cpp), which runs inside the very first Mutex::lock of
// the process — so that one helper never logs (a log sink could itself
// take a lock).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "support/logging.hpp"

namespace mcf {
namespace env {

/// Raw lookup: nullptr when unset; "" is returned as set-but-empty
/// (callers below treat empty as unset).
[[nodiscard]] inline const char* raw(const char* name) {
  return std::getenv(name);
}

/// String knob: the value verbatim, or `dflt` when unset/empty.  There
/// is no malformed case for free-form strings (path validity is the
/// consumer's business).
[[nodiscard]] inline std::string str(const char* name, const std::string& dflt) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? dflt : std::string(v);
}

/// Integer knob in [min, max].  Rejects (loudly) partial parses
/// ("3x"), empty strings, overflow, and out-of-range values.
[[nodiscard]] inline std::int64_t int64(const char* name, std::int64_t dflt,
                                        std::int64_t min, std::int64_t max) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed < min ||
      parsed > max) {
    MCF_LOG(Warn) << "rejecting " << name << "='" << v
                  << "' (want an integer in [" << min << ", " << max
                  << "]); using default " << dflt;
    return dflt;
  }
  return parsed;
}

/// Size knob (entry counts, byte caps): int64 constrained non-negative.
[[nodiscard]] inline std::size_t size(const char* name, std::size_t dflt,
                                      std::size_t max = SIZE_MAX) {
  const std::int64_t cap =
      max > static_cast<std::size_t>(INT64_MAX)
          ? INT64_MAX
          : static_cast<std::int64_t>(max);
  return static_cast<std::size_t>(
      int64(name, static_cast<std::int64_t>(dflt), 0, cap));
}

/// Floating-point knob in [min, max] (timeouts, deadlines).  Rejects
/// partial parses, NaN (which fails the range comparison), and infinities
/// outside the range.
[[nodiscard]] inline double real(const char* name, double dflt, double min,
                                 double max) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE ||
      !(parsed >= min && parsed <= max)) {
    MCF_LOG(Warn) << "rejecting " << name << "='" << v
                  << "' (want a number in [" << min << ", " << max
                  << "]); using default " << dflt;
    return dflt;
  }
  return parsed;
}

/// Boolean flag with the historical MCFUSER_SANDBOX / MCFUSER_LOCK_CHECKS
/// semantics: unset/empty -> default; "0" -> false; anything else set ->
/// true.  No malformed case, hence no logging — this helper must stay
/// safe to call from inside Mutex::lock (the lock-order enablement
/// latch), where a log sink could recurse into a lock.
[[nodiscard]] inline bool bool_flag(const char* name, bool dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return std::strcmp(v, "0") != 0;
}

}  // namespace env
}  // namespace mcf
