// Minimal work-stealing-free thread pool used by the functional interpreter
// (one task per simulated thread block), the reference tensor ops, and the
// tuner's batched candidate evaluation.
//
// Design notes (C++ Core Guidelines CP.*): the pool owns its threads (RAII),
// tasks are plain std::function<void()>, parallel_for blocks until all
// chunks complete and rethrows the first captured exception.
//
// Worker slots: every pool worker has a fixed index in [0, size()); the
// calling thread (which runs work inline when the pool is too small or the
// call is nested) uses slot size().  parallel_for_slots hands the slot to
// the body so callers can keep per-worker scratch state — at most one task
// runs per slot at any time within a single parallel_for_slots call.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "support/mutex.hpp"

namespace mcf {

class ThreadPool {
 public:
  /// Spawns `threads` workers.  0 means: the MCF_NUM_THREADS environment
  /// variable if set, otherwise hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Number of distinct worker slots a parallel_for_slots call can touch:
  /// the pool workers plus the calling thread.
  [[nodiscard]] unsigned concurrency() const noexcept { return size() + 1; }

  /// Runs body(i) for i in [0, n) across the pool; blocks until done.
  /// Chunked adaptively (at least `grain` items per chunk); rethrows the
  /// first exception raised by any chunk.
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& body,
                    std::int64_t grain = 1);

  /// Like parallel_for, but hands the body the executing worker slot
  /// (< concurrency()).  Within one call, no two concurrently running
  /// chunks share a slot, so slot-indexed scratch needs no locking.
  void parallel_for_slots(
      std::int64_t n,
      const std::function<void(unsigned, std::int64_t)>& body,
      std::int64_t grain = 1);

  /// Map-reduce over [0, n): each slot folds into its own accumulator
  /// (seeded with `identity`), then the per-slot partials are combined in
  /// ascending slot order on the calling thread.  Deterministic whenever
  /// `combine` is associative and commutative over the map results (true
  /// for exact sums, counters, min/max); floating-point sums that round
  /// may differ run-to-run under different chunk placements.
  ///   map(slot, i, acc): fold index i into acc (slot < concurrency(),
  ///                      for callers that also keep per-slot scratch)
  ///   combine(into, from)
  template <typename T, typename Map, typename Combine>
  [[nodiscard]] T parallel_for_reduce(std::int64_t n, T identity, Map&& map,
                                      Combine&& combine, std::int64_t grain = 1) {
    struct alignas(64) Slot {
      T value;
    };
    std::vector<Slot> slots(concurrency(), Slot{identity});
    parallel_for_slots(
        n,
        [&](unsigned slot, std::int64_t i) { map(slot, i, slots[slot].value); },
        grain);
    T total = std::move(identity);
    for (auto& s : slots) combine(total, s.value);
    return total;
  }

  /// Process-wide pool (lazily constructed; sized per MCF_NUM_THREADS or
  /// hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop(unsigned index);

  std::vector<std::thread> workers_;
  Mutex mutex_{"pool.queue"};
  std::queue<std::function<void()>> tasks_ MCF_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stop_ MCF_GUARDED_BY(mutex_) = false;
};

}  // namespace mcf
