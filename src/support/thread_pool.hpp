// Minimal work-stealing-free thread pool used by the functional interpreter
// (one task per simulated thread block) and the reference tensor ops.
//
// Design notes (C++ Core Guidelines CP.*): the pool owns its threads (RAII),
// tasks are plain std::function<void()>, parallel_for blocks until all
// chunks complete and rethrows the first captured exception.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mcf {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Runs body(i) for i in [0, n) across the pool; blocks until done.
  /// Chunked statically; rethrows the first exception raised by any chunk.
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& body);

  /// Process-wide pool (lazily constructed; sized to hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mcf
