// Lightweight leveled logging for the mcfuser library.
//
// Usage:
//   MCF_LOG(Info) << "tuned " << n << " candidates";
// Levels below the global threshold are compiled to a no-op stream.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace mcf {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Converts a level to its display tag ("DEBUG", "INFO", ...).
[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

namespace detail {

/// Accumulates one log record and flushes it (with prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace mcf

#define MCF_LOG(severity)                                               \
  if (::mcf::LogLevel::severity < ::mcf::log_level()) {                 \
  } else                                                                \
    ::mcf::detail::LogMessage(::mcf::LogLevel::severity, __FILE__, __LINE__)

// Always-on invariant check (library-internal, independent of NDEBUG).
#define MCF_CHECK(cond)                                                  \
  if (cond) {                                                            \
  } else                                                                 \
    ::mcf::detail::CheckFailure(#cond, __FILE__, __LINE__).stream()

namespace mcf::detail {

/// Aborts with a message when an MCF_CHECK fails.
class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line);
  [[noreturn]] ~CheckFailure() noexcept(false);
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace mcf::detail
