// ASCII / CSV table writer used by the benchmark harnesses so that every
// figure/table of the paper is regenerated as a readable text table plus a
// machine-readable CSV next to it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mcf {

/// Column-aligned text table with an optional title.
/// Cells are strings; helpers format doubles with fixed precision.
class Table {
 public:
  explicit Table(std::string title = {});

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Number formatting helper: fixed `digits` decimals.
  [[nodiscard]] static std::string num(double v, int digits = 2);
  /// Engineering formatting: 1234567 -> "1.23e+06" when |v| >= 1e6.
  [[nodiscard]] static std::string sci(double v, int digits = 2);

  /// Renders as an aligned ASCII table.
  [[nodiscard]] std::string to_string() const;

  /// Renders as CSV (header + rows, comma separated, quoted when needed).
  [[nodiscard]] std::string to_csv() const;

  /// Writes the CSV rendering to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace mcf
