// Runtime lock-order validator behind mcf::Mutex (support/mutex.hpp).
//
// Every enabled thread keeps a stack of currently held mcf::Mutex
// pointers.  Acquiring mutex B while holding A records a directed edge
// A -> B in a process-global acquisition-order graph (with the holder's
// full lock stack captured on the edge's first recording).  Before
// blocking on the real std::mutex, the acquisition checks whether the
// new edges would close a cycle; if so the process aborts immediately,
// printing BOTH acquisition stacks — the current thread's, and the
// recorded stack of every edge on the conflicting path.  A deadlock
// that would need two threads to interleave just so is therefore caught
// by any single run that merely exercises both orders.
//
// The validator's own mutex is a plain std::mutex (a leaf: nothing is
// acquired while it is held), so the validator can never deadlock or
// recurse into itself.  Reports go through fprintf(stderr), never
// MCF_LOG — the logging sink serializes on an mcf::Mutex of its own.

#include "support/mutex.hpp"

#include "support/env.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define MCF_RUNNING_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MCF_RUNNING_UNDER_TSAN 1
#endif
#endif
#if defined(MCF_RUNNING_UNDER_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace mcf {

namespace {

std::atomic<std::uint32_t> g_next_order_id{1};

[[nodiscard]] int compute_default_enabled() noexcept {
  // env::bool_flag is the one helper guaranteed never to log — this runs
  // inside the first Mutex::lock of the process, where a log sink could
  // recurse into a lock of its own.
#if !defined(NDEBUG) || defined(MCF_LOCK_ORDER_FORCE)
  constexpr bool kDefault = true;
#else
  constexpr bool kDefault = false;
#endif
  return env::bool_flag("MCFUSER_LOCK_CHECKS", kDefault) ? 1 : 0;
}

struct EdgeInfo {
  std::string from_name;
  std::string to_name;
  /// Names of every lock the recording thread held at the time (the
  /// "other" acquisition stack a violation report prints).
  std::vector<std::string> holder_stack;
};

struct Graph {
  std::mutex mu;
  /// (from_id << 32 | to_id) -> first recording of that edge.
  std::unordered_map<std::uint64_t, EdgeInfo> edges;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> adj;
};

Graph& graph() {
  static Graph* g = new Graph();  // never destroyed: threads may outlive exit
  return *g;
}

struct HeldStack {
  std::vector<const Mutex*> locks;
};

HeldStack& held() {
  // Leaked, like the graph: a plain `thread_local HeldStack` registers
  // a TLS destructor, and on the main thread those run BEFORE late
  // static destructors (glibc interleaves them on one __cxa_atexit
  // list) — so e.g. the global ThreadPool's destructor would lock its
  // mutex and push onto an already-destroyed vector, corrupting the
  // heap at exit.  The leak is one small vector per validator-enabled
  // thread; release builds never call this at all.  Every stack is
  // parked in a (likewise leaked) global registry so it stays reachable
  // after its thread exits — otherwise LeakSanitizer flags each exited
  // thread's stack as a hard leak and fails the ASan lane.
  thread_local HeldStack* t_held = [] {
    auto* s = new HeldStack();
    static std::mutex* reg_mu = new std::mutex();
    static std::vector<HeldStack*>* reg = new std::vector<HeldStack*>();
    const std::lock_guard<std::mutex> g(*reg_mu);
    reg->push_back(s);
    return s;
  }();
  return *t_held;
}

[[nodiscard]] constexpr std::uint64_t edge_key(std::uint32_t from,
                                               std::uint32_t to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

/// DFS from `start` over the recorded order graph; fills `parent` so a
/// found target's path can be reconstructed.  Returns the first member
/// of `targets` reached, or 0.  Caller holds graph().mu.
std::uint32_t reach_any(const Graph& g, std::uint32_t start,
                        const std::unordered_set<std::uint32_t>& targets,
                        std::unordered_map<std::uint32_t, std::uint32_t>* parent) {
  std::vector<std::uint32_t> stack{start};
  std::unordered_set<std::uint32_t> visited{start};
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    const auto it = g.adj.find(node);
    if (it == g.adj.end()) continue;
    for (const std::uint32_t next : it->second) {
      if (!visited.insert(next).second) continue;
      (*parent)[next] = node;
      if (targets.count(next) != 0) return next;
      stack.push_back(next);
    }
  }
  return 0;
}

[[noreturn]] void report_cycle(const Graph& g, const Mutex& acquiring,
                               std::uint32_t acquiring_id,
                               const std::vector<const Mutex*>& held_now,
                               std::uint32_t cycle_back_to,
                               const std::unordered_map<std::uint32_t, std::uint32_t>&
                                   parent) {
  std::fprintf(stderr,
               "\n[mcf::Mutex] lock-order violation (potential deadlock)\n");
  std::fprintf(stderr, "  this thread is acquiring \"%s\" while holding:\n",
               acquiring.name());
  for (auto it = held_now.rbegin(); it != held_now.rend(); ++it) {
    std::fprintf(stderr, "    \"%s\"\n", (*it)->name());
  }
  // Reconstruct the recorded path acquiring -> ... -> cycle_back_to and
  // print each edge with the acquisition stack captured when it was
  // first recorded — the "other side" of the inversion.
  std::vector<std::uint32_t> path{cycle_back_to};
  std::uint32_t cur = cycle_back_to;
  while (cur != acquiring_id) {
    const auto it = parent.find(cur);
    if (it == parent.end()) break;  // defensive: truncated path
    cur = it->second;
    path.push_back(cur);
  }
  std::fprintf(stderr,
               "  conflicting acquisition order recorded earlier:\n");
  for (std::size_t i = path.size(); i-- > 1;) {
    const auto it = g.edges.find(edge_key(path[i], path[i - 1]));
    if (it == g.edges.end()) continue;
    const EdgeInfo& e = it->second;
    std::fprintf(stderr,
                 "    \"%s\" acquired while holding \"%s\" (full stack:",
                 e.to_name.c_str(), e.from_name.c_str());
    for (const std::string& n : e.holder_stack) {
      std::fprintf(stderr, " \"%s\"", n.c_str());
    }
    std::fprintf(stderr, ")\n");
  }
  std::fprintf(stderr,
               "  a thread taking the recorded order while this thread takes "
               "the new one deadlocks.  Aborting.\n");
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void report_recursive(const Mutex& m) {
  std::fprintf(stderr,
               "\n[mcf::Mutex] recursive acquisition of \"%s\" — "
               "std::mutex would deadlock here.  Aborting.\n",
               m.name());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

namespace lock_order {

namespace detail {

std::atomic<int> g_checks_enabled{-1};

bool enabled_slow() noexcept {
  int v = compute_default_enabled();
  int expected = -1;
  if (!g_checks_enabled.compare_exchange_strong(expected, v,
                                                std::memory_order_relaxed)) {
    v = expected;
  }
  return v != 0;
}

}  // namespace detail

void set_enabled_for_testing(bool on) noexcept {
  detail::g_checks_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::size_t edge_count() noexcept {
  Graph& g = graph();
  const std::lock_guard<std::mutex> lk(g.mu);
  return g.edges.size();
}

}  // namespace lock_order

Mutex::Mutex(const char* name) noexcept
    : name_(name != nullptr ? name : "mcf::Mutex"),
      order_id_(g_next_order_id.fetch_add(1, std::memory_order_relaxed)) {}

Mutex::~Mutex() {
#if defined(MCF_RUNNING_UNDER_TSAN)
  // libstdc++'s std::mutex destructor is trivial — it never calls
  // pthread_mutex_destroy — so TSan would keep the dead mutex's
  // acquisition history and alias it onto whatever mutex next reuses
  // this address (stack churn), reporting phantom cross-object
  // inversions.  Tell TSan explicitly that the mutex dies here.
  __tsan_mutex_destroy(mu_.native_handle(), 0);
#endif
  // Purge this node from the order graph so a recycled allocation can
  // never inherit stale edges.  Only pay the sweep when edges exist at
  // all (the common release-mode case is an always-empty graph).
  Graph& g = graph();
  const std::lock_guard<std::mutex> lk(g.mu);
  if (g.edges.empty()) return;
  g.adj.erase(order_id_);
  for (auto& [node, next] : g.adj) {
    std::erase(next, order_id_);
  }
  for (auto it = g.edges.begin(); it != g.edges.end();) {
    const std::uint32_t from = static_cast<std::uint32_t>(it->first >> 32);
    const std::uint32_t to = static_cast<std::uint32_t>(it->first);
    if (from == order_id_ || to == order_id_) {
      it = g.edges.erase(it);
    } else {
      ++it;
    }
  }
}

void Mutex::pre_lock() {
  const std::vector<const Mutex*>& stack = held().locks;
  for (const Mutex* h : stack) {
    if (h == this) report_recursive(*this);
  }
  if (stack.empty()) return;
  Graph& g = graph();
  const std::lock_guard<std::mutex> lk(g.mu);
  // Record held -> this edges (first recording captures the stack).
  for (const Mutex* h : stack) {
    const std::uint64_t key = edge_key(h->order_id_, order_id_);
    if (g.edges.count(key) != 0) continue;
    EdgeInfo info;
    info.from_name = h->name_;
    info.to_name = name_;
    info.holder_stack.reserve(stack.size());
    for (const Mutex* s : stack) info.holder_stack.emplace_back(s->name_);
    g.edges.emplace(key, std::move(info));
    g.adj[h->order_id_].push_back(order_id_);
  }
  // A path this -> ... -> (anything currently held) closes a cycle.
  std::unordered_set<std::uint32_t> targets;
  for (const Mutex* h : stack) targets.insert(h->order_id_);
  std::unordered_map<std::uint32_t, std::uint32_t> parent;
  if (const std::uint32_t hit = reach_any(g, order_id_, targets, &parent)) {
    report_cycle(g, *this, order_id_, stack, hit, parent);
  }
}

void Mutex::note_acquired() { held().locks.push_back(this); }

void Mutex::note_released() {
  std::vector<const Mutex*>& stack = held().locks;
  // Almost always the top; out-of-order unlock (UniqueLock juggling) is
  // legal, so search from the back.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (*it == this) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

void Mutex::assert_held_slow() const {
  for (const Mutex* h : held().locks) {
    if (h == this) return;
  }
  std::fprintf(stderr,
               "\n[mcf::Mutex] assert_held(\"%s\") failed: the mutex is not "
               "held by this thread.  Aborting.\n",
               name_);
  std::fflush(stderr);
  std::abort();
}

}  // namespace mcf
