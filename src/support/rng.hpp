// Deterministic random utilities.
//
// All stochastic components of the library (search initialisation, mutation,
// simulated measurement noise) draw from explicitly seeded engines so that
// every experiment in the repo is bit-reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace mcf {

/// SplitMix64: tiny, high-quality mixing function used both as a seed
/// expander and as a deterministic hash for simulated measurement noise.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit values into one hash (order sensitive).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// FNV-1a over a string; used to derive per-workload noise seeds.
[[nodiscard]] inline std::uint64_t hash_string(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

/// Deterministic multiplier in [1-amp, 1+amp] derived from a hash.
/// Used to model run-to-run hardware measurement noise reproducibly.
[[nodiscard]] inline double hash_noise(std::uint64_t key, double amp) noexcept {
  const std::uint64_t m = splitmix64(key);
  // Map to [0,1) using the top 53 bits.
  const double u = static_cast<double>(m >> 11) * 0x1.0p-53;
  return 1.0 + amp * (2.0 * u - 1.0);
}

/// The engine used across the library; a type alias so it can be swapped.
using Rng = std::mt19937_64;

/// Makes a fresh engine from a seed, passing it through SplitMix64 so that
/// consecutive small seeds do not produce correlated streams.
[[nodiscard]] inline Rng make_rng(std::uint64_t seed) {
  return Rng(splitmix64(seed));
}

}  // namespace mcf
