// Length-prefixed binary framing — the one wire codec shared by every
// process/socket boundary in the system.
//
// Two consumers speak this format today: the sandbox measurement pipes
// (exec/sandbox.cpp, host <-> fork/exec'd worker, "MCFW" frames) and the
// network front-end (net/, client <-> FusionServer, "MCFN" frames).
// Both used to duplicate the same reader/writer/short-read handling;
// this header is the extraction.  The bytes are owned by the consumers —
// a frame is
//
//   u32 payload-length (little-endian)  |  payload bytes
//
// and the payload's leading magic/version/type fields are each
// protocol's business.  What lives here is everything that must be
// robust against hostile or unlucky peers:
//
//   * read_exact / write_all with EINTR handling and optional poll()-
//     based deadlines, so a stalled peer becomes Timeout instead of a
//     blocked thread (works for blocking pipes and non-blocking sockets
//     alike — EAGAIN waits through poll);
//   * read_frame with a hard size cap: an announced length above the cap
//     is classified TooLarge (with the announced size reported), never
//     allocated — a 4 GiB length prefix costs nothing;
//   * truncation classification: EOF cleanly between frames is Eof, EOF
//     mid-frame (half a header, a short payload) is Truncated — a server
//     tells "client finished" from "client died mid-send".
//
// Payload field encoding (FrameWriter/FrameReader): fixed-width
// little-endian scalars, u32-length-prefixed strings, doubles as their
// IEEE-754 bit pattern.  Readers are bounds-checked on every take — a
// truncated or lying payload fails the decode, it never over-reads.
//
// The frame-size cap is one process-wide knob: MCFUSER_FRAME_MAX_BYTES
// (default 1 MiB) — see docs/service.md.  Frames in both protocols are
// small (requests are a name plus a dozen integers; responses a handful
// of doubles or a JSON report), so anything larger is a corrupted or
// malicious stream.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>

namespace mcf {
namespace framing {

/// Outcome of one fd read/write step.  Consumers map these onto their
/// own failure taxonomy (sandbox: worker crash reasons; net: protocol
/// errors).
enum class IoStatus : std::uint8_t {
  Ok,
  Eof,        ///< clean end of stream at a frame boundary
  Truncated,  ///< EOF mid-frame: the peer died or lied about the length
  Timeout,    ///< the deadline expired mid-read/write
  TooLarge,   ///< announced frame length exceeds the size cap
  Error,      ///< errno-level failure (EPIPE, ECONNRESET, ...)
};

/// Stable display name ("ok", "eof", "truncated", ...).
[[nodiscard]] const char* io_status_name(IoStatus s) noexcept;

using Deadline = std::chrono::steady_clock::time_point;

/// Convenience: a deadline `seconds` from now (callers pass nullptr for
/// "no deadline", so there is no sentinel duration).
[[nodiscard]] Deadline deadline_after(double seconds);

/// The process-wide frame-size cap: MCFUSER_FRAME_MAX_BYTES, default
/// 1 MiB, floor 4 KiB (a cap below one real frame would brick both
/// protocols — rejected loudly like every malformed knob).  Latched on
/// first use.
[[nodiscard]] std::size_t default_max_frame_bytes();

/// Writes exactly `n` bytes.  With a deadline the wait for a writable fd
/// runs through poll() (EAGAIN on non-blocking fds waits the same way),
/// so a peer that stops draining becomes Timeout, not a stuck thread.
/// Returns Ok, Timeout, or Error (EPIPE when the peer is gone — callers
/// must have SIGPIPE ignored).
[[nodiscard]] IoStatus write_all(int fd, const void* data, std::size_t n,
                                 const Deadline* deadline = nullptr);

/// Reads exactly `n` bytes; EOF after 0 bytes is Eof, EOF after a
/// partial read is Truncated.  `got` (optional) reports bytes consumed
/// regardless of outcome.
[[nodiscard]] IoStatus read_exact(int fd, void* data, std::size_t n,
                                  const Deadline* deadline = nullptr,
                                  std::size_t* got = nullptr);

/// One framed payload.  Empty payload + Ok on a zero-length frame; Eof
/// only when the stream ended cleanly BEFORE the length prefix.  An
/// announced length above `max_bytes` returns TooLarge without reading
/// or allocating the payload; `announced` (optional) reports the length
/// the peer claimed, for "frame too large: N > cap" diagnostics.
[[nodiscard]] IoStatus read_frame(int fd, std::string* payload,
                                  std::size_t max_bytes,
                                  const Deadline* deadline = nullptr,
                                  std::uint32_t* announced = nullptr);

/// Waits (up to the deadline, or forever without one) until `fd` is
/// readable, WITHOUT consuming anything — Ok means "a byte or EOF is
/// ready" (the next read_frame tells which).  This is the idle-timeout
/// primitive: a server parks here between frames, then reads the whole
/// frame under the (tighter) per-frame deadline once activity arrives.
[[nodiscard]] IoStatus wait_readable(int fd, const Deadline* deadline);

// ---- payload codecs ---------------------------------------------------------

/// Accumulates one payload; framed() prepends the length prefix.
class FrameWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { append(&v, sizeof(v)); }
  void u64(std::uint64_t v) { append(&v, sizeof(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  [[nodiscard]] const std::string& payload() const { return buf_; }
  /// The finished frame: length prefix + payload.
  [[nodiscard]] std::string framed() const {
    const auto len = static_cast<std::uint32_t>(buf_.size());
    std::string out(sizeof(len), '\0');
    std::memcpy(out.data(), &len, sizeof(len));
    out += buf_;
    return out;
  }

 private:
  void append(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked reads over one received payload; every take returns
/// false on under-run instead of reading past the end.
class FrameReader {
 public:
  FrameReader(const char* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit FrameReader(const std::string& payload)
      : FrameReader(payload.data(), payload.size()) {}

  bool u8(std::uint8_t* v) { return take(v, sizeof(*v)); }
  bool u32(std::uint32_t* v) { return take(v, sizeof(*v)); }
  bool u64(std::uint64_t* v) { return take(v, sizeof(*v)); }
  bool i64(std::int64_t* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    *v = static_cast<std::int64_t>(bits);
    return true;
  }
  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool str(std::string* v) {
    std::uint32_t len = 0;
    if (!u32(&len)) return false;
    if (static_cast<std::size_t>(end_ - p_) < len) return false;
    v->assign(p_, len);
    p_ += len;
    return true;
  }
  /// Bytes not yet consumed (0 when fully drained).
  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  bool take(void* v, std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n) return false;
    std::memcpy(v, p_, n);
    p_ += n;
    return true;
  }
  const char* p_;
  const char* end_;
};

}  // namespace framing
}  // namespace mcf
