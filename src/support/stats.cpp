#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.hpp"

namespace mcf {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) {
    MCF_CHECK(x > 0.0) << "geomean requires positive inputs, got " << x;
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  MCF_CHECK(q >= 0.0 && q <= 1.0) << "quantile q out of range: " << q;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  MCF_CHECK(xs.size() == ys.size()) << "pearson size mismatch";
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double r = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = r;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  MCF_CHECK(xs.size() == ys.size()) << "spearman size mismatch";
  const auto rx = average_ranks(xs);
  const auto ry = average_ranks(ys);
  return pearson(rx, ry);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

}  // namespace mcf
