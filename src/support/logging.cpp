#include "support/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "support/mutex.hpp"

namespace mcf {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
// Leaf of the lock hierarchy: any thread may MCF_LOG while holding any
// other lock, but no code path locks anything while holding it.  The
// lock-order validator itself reports via fprintf, never MCF_LOG, so it
// cannot recurse through here.
Mutex g_io_mutex{"log.io"};
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename of the file for compact output.
  std::string path(file);
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) path = path.substr(slash + 1);
  stream_ << "[" << log_level_name(level_) << " " << path << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  const LockGuard lock(g_io_mutex);
  std::cerr << stream_.str() << "\n";
}

CheckFailure::CheckFailure(const char* cond, const char* file, int line) {
  stream_ << "MCF_CHECK failed: " << cond << " at " << file << ":" << line
          << " ";
}

CheckFailure::~CheckFailure() noexcept(false) {
  {
    const LockGuard lock(g_io_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace detail

}  // namespace mcf
