#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/logging.hpp"

namespace mcf {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  MCF_CHECK(rows_.empty()) << "set_header must precede add_row";
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    MCF_CHECK(row.size() == header_.size())
        << "row width " << row.size() << " != header width " << header_.size();
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string Table::sci(double v, int digits) {
  std::ostringstream os;
  if (std::abs(v) >= 1e6 || (v != 0.0 && std::abs(v) < 1e-3)) {
    os << std::scientific << std::setprecision(digits) << v;
  } else {
    os << std::fixed << std::setprecision(digits) << v;
  }
  return os.str();
}

std::string Table::to_string() const {
  // Compute per-column widths over header and all rows.
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << csv_escape(row[i]);
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace mcf
