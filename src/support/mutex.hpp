// Annotated mutex wrappers — the capability types behind the clang
// thread-safety analysis (support/thread_annotations.hpp) and the home
// of the runtime lock-order validator.
//
//   * mcf::Mutex      — std::mutex with a capability annotation, a
//                       display name, and (in debug builds, or whenever
//                       MCFUSER_LOCK_CHECKS=1) lock-order validation.
//   * mcf::LockGuard  — std::lock_guard-shaped scoped capability.
//   * mcf::UniqueLock — std::unique_lock-shaped scoped capability with
//                       lock()/unlock(); the lock type CondVar waits on.
//   * mcf::CondVar    — std::condition_variable over UniqueLock.
//
// In release builds with checks disabled the wrappers cost one relaxed
// atomic load + predictable branch per lock/unlock on top of the std
// types — the bench admission/jit sections stay within noise (see
// docs/concurrency.md for the measured numbers).
//
// Lock-order validator: every enabled thread keeps a stack of held
// locks; each acquisition records "held -> acquiring" edges into a
// process-global acquisition-order graph.  An acquisition that would
// close a cycle (the classic A->B / B->A inversion across two threads)
// aborts IMMEDIATELY, printing both acquisition stacks — so deadlock
// POTENTIAL is caught by any single test run that merely exercises both
// orders, no unlucky interleaving required.  Enablement: on by default
// when NDEBUG is not defined, forced by the MCFUSER_LOCK_CHECKS
// environment variable (1/0), and overridable in-process via
// lock_order::set_enabled_for_testing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace mcf {

class CondVar;

namespace lock_order {
namespace detail {

/// -1 = not yet latched; 0/1 = disabled/enabled.  Exposed so enabled()
/// can inline its fast path into every lock/unlock call site.
extern std::atomic<int> g_checks_enabled;

/// Latches the process default (env / NDEBUG) on first query.
[[nodiscard]] bool enabled_slow() noexcept;

}  // namespace detail

/// Whether the lock-order validator is active for THIS process.  The
/// default latches on first use: on when NDEBUG is not defined (debug
/// builds) or the build forced it (MCF_LOCK_ORDER_FORCE), overridden
/// either way by MCFUSER_LOCK_CHECKS=1/0 in the environment.
[[nodiscard]] inline bool enabled() noexcept {
  const int v = detail::g_checks_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return detail::enabled_slow();
}

/// In-process override (tests); affects every subsequent lock/unlock.
/// Edges are only recorded while enabled, so enabling mid-process
/// starts from a clean slate of whatever is currently held.
void set_enabled_for_testing(bool on) noexcept;

/// Acquisition-order edges currently recorded (observability + tests).
[[nodiscard]] std::size_t edge_count() noexcept;

}  // namespace lock_order

class MCF_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must outlive the mutex (string literals only); it is what
  /// the lock-order validator prints in a violation report.
  explicit Mutex(const char* name = "mcf::Mutex") noexcept;
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MCF_ACQUIRE() {
    if (lock_order::enabled()) pre_lock();
    mu_.lock();
    if (lock_order::enabled()) note_acquired();
  }
  void unlock() MCF_RELEASE() {
    mu_.unlock();
    if (lock_order::enabled()) note_released();
  }
  /// Never blocks, so it cannot deadlock: the validator tracks the held
  /// stack but records no ordering edges (try-locks are how deliberate
  /// order-breaking code stays safe).
  [[nodiscard]] bool try_lock() MCF_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (lock_order::enabled()) note_acquired();
    return true;
  }

  /// Tells the static analysis this mutex is held at this point —
  /// used inside condition-variable predicates and other lambdas, which
  /// clang checks as separate functions that know nothing about the
  /// caller's held locks.  No runtime cost in release builds; with the
  /// validator enabled it aborts when the claim is false.
  void assert_held() const MCF_ASSERT_CAPABILITY(this) {
    if (lock_order::enabled()) assert_held_slow();
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  friend class CondVar;
  friend class UniqueLock;

  /// Validator hooks, out of line and called only while checks are
  /// enabled: `pre_lock` records ordering edges and aborts on a cycle
  /// BEFORE blocking, so a real deadlock is reported instead of hung on.
  void pre_lock();
  void note_acquired();
  void note_released();
  void assert_held_slow() const;

  std::mutex mu_;
  const char* name_;
  /// Process-unique validator node id (assigned eagerly; never reused).
  const std::uint32_t order_id_;
};

/// std::lock_guard over mcf::Mutex, visible to the static analysis.
class MCF_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) MCF_ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~LockGuard() MCF_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over mcf::Mutex: relockable scoped capability and
/// the lock type mcf::CondVar waits on.  Unlike std::unique_lock it
/// always starts locked (no defer/adopt constructors — nothing in the
/// codebase needs them, and fewer states means fewer annotation holes).
class MCF_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) MCF_ACQUIRE(m)
      : mu_(&m), lk_(m.mu_, std::defer_lock) {
    lock_impl();
  }
  ~UniqueLock() MCF_RELEASE() {
    if (lk_.owns_lock()) unlock_impl();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() MCF_ACQUIRE() { lock_impl(); }
  void unlock() MCF_RELEASE() { unlock_impl(); }
  [[nodiscard]] bool owns_lock() const noexcept { return lk_.owns_lock(); }

 private:
  friend class CondVar;

  void lock_impl() {
    if (lock_order::enabled()) mu_->pre_lock();
    lk_.lock();
    if (lock_order::enabled()) mu_->note_acquired();
  }
  void unlock_impl() {
    lk_.unlock();
    if (lock_order::enabled()) mu_->note_released();
  }

  Mutex* mu_;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable over mcf::UniqueLock.  The wait family
/// releases and reacquires the underlying std::mutex internally; the
/// validator's held-lock stack keeps the mutex entry across the wait,
/// which is conservative and sound — a blocked waiter acquires nothing,
/// so no spurious ordering edge can form.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(UniqueLock& lk) { cv_.wait(lk.lk_); }

  template <typename Pred>
  void wait(UniqueLock& lk, Pred pred) {
    cv_.wait(lk.lk_, std::move(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(UniqueLock& lk,
                const std::chrono::duration<Rep, Period>& dur, Pred pred) {
    return cv_.wait_for(lk.lk_, dur, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace mcf
