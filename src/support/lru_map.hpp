// The one LRU-evicting map behind every bounded memo in the codebase:
// the engine's digest-keyed result memo (engine/engine.hpp), the
// execution backends' lowering-gate and input-tensor memos
// (measure/backend.hpp), and the jit kernel registry + negative cache
// (exec/jit.cpp).  Centralising the splice-to-front recency refresh,
// the iterator bookkeeping and the eviction loop keeps their semantics
// identical by construction.
//
// Semantics shared by every consumer:
//   * find() refreshes recency; contains() does not.
//   * insert() of an existing key keeps the incumbent value and only
//     refreshes recency — every consumer stores deterministic values,
//     so the incumbent is always equivalent to the newcomer.
//   * Eviction never removes the last remaining entry, so a single
//     value larger than max_bytes still memoizes.
//   * Caps of 0 mean unbounded.
//
// NOT thread-safe: every consumer already serializes around its own
// mutex, so the map stays lock-free by design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace mcf {

template <typename K, typename V>
class LruMap {
 public:
  struct Limits {
    std::size_t max_entries = 0;  ///< 0 = unbounded
    std::size_t max_bytes = 0;    ///< 0 = unbounded (per-entry bytes via insert)
  };

  LruMap() = default;
  explicit LruMap(Limits limits) : limits_(limits) {}

  /// Pointer to the stored value (refreshing recency), null on miss.
  /// The pointer is invalidated by the next insert().
  [[nodiscard]] V* find(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return &it->second.value;
  }

  /// Membership probe WITHOUT a recency refresh.
  [[nodiscard]] bool contains(const K& key) const {
    return map_.count(key) != 0;
  }

  /// Inserts `value` accounted as `bytes`, evicting least-recently-used
  /// entries past the caps; an existing key keeps its incumbent value
  /// (recency refreshed).  Returns the stored value; the reference is
  /// invalidated by the next insert().
  V& insert(const K& key, V value, std::size_t bytes = 0) {
    const auto [it, inserted] =
        map_.try_emplace(key, Slot{std::move(value), bytes, {}});
    if (!inserted) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.value;
    }
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    bytes_ += bytes;
    while (map_.size() > 1 &&
           ((limits_.max_entries != 0 && map_.size() > limits_.max_entries) ||
            (limits_.max_bytes != 0 && bytes_ > limits_.max_bytes))) {
      const auto victim = map_.find(lru_.back());
      bytes_ -= victim->second.bytes;
      map_.erase(victim);
      lru_.pop_back();
      ++evictions_;
    }
    return it->second.value;
  }

  /// Removes `key` if present (no recency side effects on other entries).
  /// Returns whether an entry was removed.  Needed by consumers that must
  /// drop a poisoned entry (jit kernel invalidation, crash-cache eviction)
  /// rather than wait for LRU pressure.
  bool erase(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] const Limits& limits() const noexcept { return limits_; }

 private:
  struct Slot {
    V value;
    std::size_t bytes = 0;
    typename std::list<K>::iterator lru_it;  ///< into lru_
  };

  Limits limits_;
  std::unordered_map<K, Slot> map_;
  std::list<K> lru_;  ///< front = most recently used
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mcf
