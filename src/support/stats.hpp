// Small statistics helpers used by the benchmark harnesses and tests:
// mean / stddev / quantiles / Pearson & Spearman correlation / geomean.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mcf {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);

/// Geometric mean; all inputs must be > 0.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]. Input need not be sorted.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Pearson product-moment correlation. Returns 0 for degenerate inputs.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Spearman rank correlation (average ranks for ties).
[[nodiscard]] double spearman(std::span<const double> xs,
                              std::span<const double> ys);

/// Ranks with ties averaged; exposed for testing.
[[nodiscard]] std::vector<double> average_ranks(std::span<const double> xs);

/// Simple online accumulator for min/max/mean.
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mcf
