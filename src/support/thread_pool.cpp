#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "support/logging.hpp"

namespace mcf {

namespace {
// Set while a pool worker executes a task; nested parallel_for calls from
// inside a task run inline to avoid waiting on the queue they occupy.
thread_local bool t_inside_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    t_inside_pool_worker = true;
    task();
    t_inside_pool_worker = false;
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& body) {
  if (n <= 0) return;
  const auto workers = static_cast<std::int64_t>(size());
  if (n == 1 || workers <= 1 || t_inside_pool_worker) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Static chunking: enough chunks for balance, not so many for overhead.
  const std::int64_t chunks = std::min<std::int64_t>(n, workers * 4);
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::int64_t c = 0; c < chunks; ++c) {
    enqueue([&, c] {
      const std::int64_t lo = c * n / chunks;
      const std::int64_t hi = (c + 1) * n / chunks;
      try {
        for (std::int64_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(done_mutex);
        ++done;
      }
      done_cv.notify_one();
    });
  }
  (void)next;
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return done.load() == chunks; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mcf
