#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "support/env.hpp"
#include "support/logging.hpp"

namespace mcf {

namespace {

/// Identity of the pool worker running the current thread (nullptr outside
/// any pool).  Nested parallel_for calls from inside a task run inline to
/// avoid waiting on the queue they occupy, reusing the worker's slot.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  unsigned index = 0;
};
thread_local WorkerIdentity t_worker;

unsigned env_thread_count() {
  // 512 is far above any sane worker count, far below where std::thread
  // spawning starts failing; 0 ("unset") falls through to hardware
  // concurrency in the constructor.  A malformed or out-of-range value
  // warns and degrades to that default — it never crashes.
  return static_cast<unsigned>(env::int64("MCF_NUM_THREADS", 0, 1, 512));
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = env_thread_count();
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned index) {
  t_worker = WorkerIdentity{this, index};
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      cv_.wait(lock, [this] {
        mutex_.assert_held();
        return stop_ || !tasks_.empty();
      });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& body,
                              std::int64_t grain) {
  parallel_for_slots(
      n, [&body](unsigned, std::int64_t i) { body(i); }, grain);
}

void ThreadPool::parallel_for_slots(
    std::int64_t n, const std::function<void(unsigned, std::int64_t)>& body,
    std::int64_t grain) {
  if (n <= 0) return;
  const auto workers = static_cast<std::int64_t>(size());
  // Adaptive chunking: enough chunks for balance (4 per worker), never
  // more than one chunk per `grain` items so tiny bodies amortise the
  // scheduling overhead.
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t chunks =
      std::min<std::int64_t>({n, workers * 4, std::max<std::int64_t>(1, n / grain)});
  const bool inline_run =
      chunks <= 1 || workers <= 1 || t_worker.pool != nullptr;
  // The calling thread's slot: its fixed worker index when this call is
  // nested inside one of our own tasks, the extra slot size() otherwise.
  const unsigned caller_slot =
      t_worker.pool == this ? t_worker.index : size();
  if (inline_run) {
    for (std::int64_t i = 0; i < n; ++i) body(caller_slot, i);
    return;
  }

  struct ForState {
    std::atomic<std::int64_t> done{0};
    Mutex error_mutex{"pool.for.error"};
    Mutex done_mutex{"pool.for.done"};
    bool complete MCF_GUARDED_BY(done_mutex) = false;  // the ONLY wait signal
    std::exception_ptr first_error MCF_GUARDED_BY(error_mutex);
    CondVar done_cv;
  };
  ForState state;

  // Batch-enqueue every chunk under one lock and wake the pool once —
  // per-chunk notify_one ping-pong costs more than the work for small
  // bodies.
  {
    const LockGuard lock(mutex_);
    for (std::int64_t c = 0; c < chunks; ++c) {
      tasks_.push([&state, &body, c, n, chunks] {
        const std::int64_t lo = c * n / chunks;
        const std::int64_t hi = (c + 1) * n / chunks;
        try {
          const unsigned slot = t_worker.index;
          for (std::int64_t i = lo; i < hi; ++i) body(slot, i);
        } catch (...) {
          const LockGuard elock(state.error_mutex);
          if (!state.first_error) state.first_error = std::current_exception();
        }
        // Only the last chunk touches the wait mutex.  The waiter's
        // predicate reads `complete`, never the atomic: completion only
        // becomes observable inside this critical section, and the
        // notify happens while the mutex is still held — so the waiter
        // cannot wake (spuriously or otherwise), see completion, and
        // destroy the stack-allocated state before this worker is done
        // touching it.  Compare against the CAPTURED chunk count, not
        // state.chunks: the fetch_add is the last time a non-final chunk
        // may touch `state` at all — the moment the final chunk's
        // fetch_add lands, the waiter can wake and reuse the stack frame
        // under this worker's feet (found by TSan, pinned by
        // tests/support/test_thread_pool.cpp StackReuseChurn).
        if (state.done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
          const LockGuard dlock(state.done_mutex);
          state.complete = true;
          state.done_cv.notify_one();
        }
      });
    }
  }
  if (chunks > 1) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }

  {
    UniqueLock lock(state.done_mutex);
    state.done_cv.wait(lock, [&state] {
      state.done_mutex.assert_held();
      return state.complete;
    });
  }
  // All chunks are done: no other thread can touch first_error anymore,
  // but the analysis doesn't know that — take the (uncontended) lock.
  const LockGuard elock(state.error_mutex);
  if (state.first_error) std::rethrow_exception(state.first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mcf
