// Small vector with inline storage for the schedule-tree hot path.
//
// Candidate evaluation builds (and discards) a Schedule per candidate;
// profiling shows the cost is dominated by the many tiny heap vectors a
// schedule carries (per-node child lists, per-tensor residency loops).
// InlineVec keeps up to N elements in the object itself and only touches
// the heap when it spills, which removes most of those allocations.
//
// Deliberately minimal: trivially-copyable element types, the handful of
// operations the schedule code uses, contiguous T* iterators.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <type_traits>
#include <vector>

#include "support/logging.hpp"

namespace mcf {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for trivially copyable elements");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }
  InlineVec(const InlineVec& other) { copy_from(other); }
  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) {
      release();
      copy_from(other);
    }
    return *this;
  }
  InlineVec(InlineVec&& other) noexcept { steal(other); }
  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  ~InlineVec() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }
  [[nodiscard]] auto rbegin() const noexcept {
    return std::make_reverse_iterator(end());
  }
  [[nodiscard]] auto rend() const noexcept {
    return std::make_reverse_iterator(begin());
  }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }

  void clear() noexcept { size_ = 0; }

  /// Shrinks to the first n elements (n must not exceed size()).
  void truncate(std::size_t n) noexcept { size_ = n; }

  /// Grows/shrinks to n elements; new elements are value-initialised.
  void resize(std::size_t n) {
    while (cap_ < n) grow(cap_ * 2);
    for (std::size_t i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  /// Replaces the contents with n copies of v.
  void assign(std::size_t n, const T& v) {
    clear();
    while (cap_ < n) grow(cap_ * 2);
    for (std::size_t i = 0; i < n; ++i) data_[i] = v;
    size_ = n;
  }

  /// Replaces the contents with the range [first, last).
  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data_[size_++] = v;
  }

  iterator insert(const_iterator pos, const T& v) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    if (size_ == cap_) grow(cap_ * 2);
    for (std::size_t i = size_; i > at; --i) data_[i] = data_[i - 1];
    data_[at] = v;
    ++size_;
    return data_ + at;
  }

  iterator erase(const_iterator pos) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    for (std::size_t i = at; i + 1 < size_; ++i) data_[i] = data_[i + 1];
    --size_;
    return data_ + at;
  }

  [[nodiscard]] bool operator==(const InlineVec& other) const {
    return size_ == other.size_ &&
           std::equal(begin(), end(), other.begin());
  }
  [[nodiscard]] bool operator==(const std::vector<T>& other) const {
    return size_ == other.size() &&
           std::equal(begin(), end(), other.begin());
  }

 private:
  void grow(std::size_t new_cap) {
    T* heap = new T[new_cap];
    std::copy(data_, data_ + size_, heap);
    release();
    data_ = heap;
    cap_ = new_cap;
  }

  void copy_from(const InlineVec& other) {
    if (other.size_ > N) {
      data_ = new T[other.cap_];
      cap_ = other.cap_;
    } else {
      data_ = inline_;
      cap_ = N;
    }
    size_ = other.size_;
    std::copy(other.data_, other.data_ + other.size_, data_);
  }

  void steal(InlineVec& other) noexcept {
    if (other.data_ == other.inline_) {
      data_ = inline_;
      cap_ = N;
      size_ = other.size_;
      std::copy(other.data_, other.data_ + other.size_, data_);
    } else {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.cap_ = N;
    }
    other.size_ = 0;
  }

  void release() noexcept {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    cap_ = N;
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace mcf
