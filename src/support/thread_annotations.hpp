// Clang thread-safety-analysis macros (MCF_GUARDED_BY, MCF_REQUIRES,
// MCF_ACQUIRE/RELEASE, ...) — the static half of the concurrency-
// correctness layer.
//
// Under clang, these expand to the `capability`-family attributes so
// `clang++ -Wthread-safety -Werror=thread-safety` statically verifies
// the locking discipline of every annotated structure: which mutex
// guards which field, which private helpers require a lock already
// held, which functions must NOT be entered with a lock held.  Under
// any other compiler (the container builds with g++) every macro
// expands to nothing, so the annotations are free documentation.
//
// Use them through the annotated wrappers in support/mutex.hpp
// (mcf::Mutex / LockGuard / UniqueLock / CondVar) — bare std::mutex
// is invisible to the analysis.  tools/run_lint.sh and the CI `lint`
// job compile all of src/ with the analysis promoted to an error; the
// conventions are documented in docs/concurrency.md.
#pragma once

#if defined(__clang__) && !defined(SWIG) && defined(__has_attribute)
#if __has_attribute(capability)
#define MCF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MCF_THREAD_ANNOTATION
#define MCF_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex").
#define MCF_CAPABILITY(x) MCF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (std::lock_guard-shaped types).
#define MCF_SCOPED_CAPABILITY MCF_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable is protected by the given mutex: every read or write
/// must happen with the mutex held.
#define MCF_GUARDED_BY(x) MCF_THREAD_ANNOTATION(guarded_by(x))

/// The data POINTED TO is protected by the given mutex (the pointer
/// itself may be read freely).
#define MCF_PT_GUARDED_BY(x) MCF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the mutex(es) exclusively to call this function.
#define MCF_REQUIRES(...) \
  MCF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the mutex(es) when calling (the function
/// acquires them itself — deadlock guard).
#define MCF_EXCLUDES(...) MCF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the mutex(es) and returns with them held.
#define MCF_ACQUIRE(...) \
  MCF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es).
#define MCF_RELEASE(...) \
  MCF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the mutex if and only if it returns true.
#define MCF_TRY_ACQUIRE(...) \
  MCF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Runtime assertion that the capability is held — the analysis trusts
/// it.  Used inside condition-variable predicates and other lambdas,
/// which the analysis checks as separate functions with no knowledge of
/// the caller's held locks.
#define MCF_ASSERT_CAPABILITY(x) \
  MCF_THREAD_ANNOTATION(assert_capability(x))

/// Documents (and statically checks, under clang) a required
/// acquisition order between two members of the same class; the
/// runtime lock-order validator (support/mutex.hpp) checks the global
/// order across classes.
#define MCF_ACQUIRED_BEFORE(...) \
  MCF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MCF_ACQUIRED_AFTER(...) \
  MCF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Returns a reference to the given capability (accessor functions).
#define MCF_RETURN_CAPABILITY(x) MCF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for patterns the analysis cannot express (conditional
/// locking through a nullable mutex pointer).  Every use carries a
/// comment saying why — see docs/concurrency.md.
#define MCF_NO_THREAD_SAFETY_ANALYSIS \
  MCF_THREAD_ANNOTATION(no_thread_safety_analysis)
