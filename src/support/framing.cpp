#include "support/framing.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>

#include "support/env.hpp"

namespace mcf {
namespace framing {

const char* io_status_name(IoStatus s) noexcept {
  switch (s) {
    case IoStatus::Ok: return "ok";
    case IoStatus::Eof: return "eof";
    case IoStatus::Truncated: return "truncated";
    case IoStatus::Timeout: return "timeout";
    case IoStatus::TooLarge: return "too-large";
    case IoStatus::Error: return "error";
  }
  return "unknown";
}

Deadline deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

std::size_t default_max_frame_bytes() {
  static const std::size_t cap = static_cast<std::size_t>(env::int64(
      "MCFUSER_FRAME_MAX_BYTES", /*dflt=*/1u << 20,
      /*min=*/4096, /*max=*/std::int64_t{1} << 30));
  return cap;
}

namespace {

/// Waits for `events` on `fd` up to the deadline (forever when null).
/// Ok means "ready" — including POLLHUP/POLLERR readiness, which the
/// subsequent read/write turns into Eof/Error with a real errno.
IoStatus poll_fd(int fd, short events, const Deadline* deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline != nullptr) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= *deadline) return IoStatus::Timeout;
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(*deadline -
                                                                now)
              .count();
      // +1 rounds up so we never busy-spin on a sub-millisecond remainder.
      timeout_ms = static_cast<int>(left < 0 ? 0 : left) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return IoStatus::Ok;
    if (rc == 0) continue;  // re-check the deadline at the top
    if (errno == EINTR) continue;
    return IoStatus::Error;
  }
}

}  // namespace

IoStatus wait_readable(int fd, const Deadline* deadline) {
  return poll_fd(fd, POLLIN, deadline);
}

IoStatus read_exact(int fd, void* data, std::size_t n, const Deadline* deadline,
                    std::size_t* got) {
  auto* p = static_cast<char*>(data);
  std::size_t done = 0;
  if (got != nullptr) *got = 0;
  while (done < n) {
    if (deadline != nullptr) {
      const IoStatus st = poll_fd(fd, POLLIN, deadline);
      if (st != IoStatus::Ok) return st;
    }
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      if (got != nullptr) *got = done;
      continue;
    }
    if (r == 0) return done == 0 ? IoStatus::Eof : IoStatus::Truncated;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Non-blocking fd with no deadline: park in poll instead of
      // spinning (with a deadline the poll above already gated us).
      if (deadline == nullptr) {
        const IoStatus st = poll_fd(fd, POLLIN, nullptr);
        if (st != IoStatus::Ok) return st;
      }
      continue;
    }
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus write_all(int fd, const void* data, std::size_t n,
                   const Deadline* deadline) {
  const auto* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < n) {
    if (deadline != nullptr) {
      const IoStatus st = poll_fd(fd, POLLOUT, deadline);
      if (st != IoStatus::Ok) return st;
    }
    const ssize_t w = ::write(fd, p + done, n - done);
    if (w > 0) {
      done += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (deadline == nullptr) {
        const IoStatus st = poll_fd(fd, POLLOUT, nullptr);
        if (st != IoStatus::Ok) return st;
      }
      continue;
    }
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus read_frame(int fd, std::string* payload, std::size_t max_bytes,
                    const Deadline* deadline, std::uint32_t* announced) {
  std::uint32_t len = 0;
  const IoStatus header = read_exact(fd, &len, sizeof(len), deadline);
  if (header != IoStatus::Ok) return header;
  if (announced != nullptr) *announced = len;
  if (static_cast<std::size_t>(len) > max_bytes) return IoStatus::TooLarge;
  payload->resize(len);
  if (len == 0) return IoStatus::Ok;
  const IoStatus body = read_exact(fd, payload->data(), len, deadline);
  // EOF after a complete header is always mid-frame.
  return body == IoStatus::Eof ? IoStatus::Truncated : body;
}

}  // namespace framing
}  // namespace mcf
