#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

std::int64_t Shape::numel() const noexcept {
  std::int64_t n = 1;
  for (const auto d : dims_) n *= d;
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ",";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  MCF_CHECK(shape_.numel() >= 0) << "negative shape " << shape_.to_string();
  data_.assign(static_cast<std::size_t>(shape_.numel()), 0.0f);
}

Tensor::Tensor(Shape shape, float fill) : Tensor(std::move(shape)) {
  this->fill(fill);
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  MCF_CHECK(shape_.rank() == 2) << "rank-2 accessor on " << shape_.to_string();
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

float& Tensor::at(std::int64_t b, std::int64_t r, std::int64_t c) {
  MCF_CHECK(shape_.rank() == 3) << "rank-3 accessor on " << shape_.to_string();
  return data_[static_cast<std::size_t>((b * shape_[1] + r) * shape_[2] + c)];
}

float Tensor::at(std::int64_t b, std::int64_t r, std::int64_t c) const {
  return const_cast<Tensor*>(this)->at(b, r, c);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::fill_random(std::uint64_t seed) {
  // xorshift-free deterministic fill: SplitMix64 stream mapped to [-1, 1].
  std::uint64_t state = splitmix64(seed);
  for (auto& x : data_) {
    state = splitmix64(state);
    const double u = static_cast<double>(state >> 11) * 0x1.0p-53;
    x = static_cast<float>(2.0 * u - 1.0);
  }
}

std::span<const float> Tensor::batch_slice(std::int64_t b) const {
  MCF_CHECK(shape_.rank() == 3) << "batch_slice needs rank 3";
  const std::int64_t stride = shape_[1] * shape_[2];
  return std::span<const float>(data_).subspan(
      static_cast<std::size_t>(b * stride), static_cast<std::size_t>(stride));
}

std::span<float> Tensor::batch_slice(std::int64_t b) {
  MCF_CHECK(shape_.rank() == 3) << "batch_slice needs rank 3";
  const std::int64_t stride = shape_[1] * shape_[2];
  return std::span<float>(data_).subspan(static_cast<std::size_t>(b * stride),
                                         static_cast<std::size_t>(stride));
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  MCF_CHECK(a.shape() == b.shape())
      << "shape mismatch " << a.shape().to_string() << " vs "
      << b.shape().to_string();
  double worst = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(da[i]) - db[i]));
  }
  return worst;
}

double max_rel_diff(const Tensor& a, const Tensor& b, double atol) {
  MCF_CHECK(a.shape() == b.shape()) << "shape mismatch";
  double worst = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    const double diff = std::abs(static_cast<double>(da[i]) - db[i]);
    const double denom = std::max(atol, std::abs(static_cast<double>(db[i])));
    worst = std::max(worst, diff / denom);
  }
  return worst;
}

bool allclose(const Tensor& a, const Tensor& ref, double rtol, double atol) {
  if (!(a.shape() == ref.shape())) return false;
  const auto da = a.data();
  const auto dr = ref.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    const double diff = std::abs(static_cast<double>(da[i]) - dr[i]);
    if (diff > atol + rtol * std::abs(static_cast<double>(dr[i]))) return false;
  }
  return true;
}

}  // namespace mcf
