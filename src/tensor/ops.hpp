// Reference operator implementations.
//
// These are the "ground truth" used to validate every fused kernel the
// search produces, and the numerical backbone of the end-to-end model
// executor.  GEMM is blocked + multithreaded so that test suites over the
// paper's workload tables stay fast; everything else is straightforward.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace mcf::ops {

/// C = A(MxK) * B(KxN). C must be preallocated MxN; it is overwritten.
void gemm(const Tensor& a, const Tensor& b, Tensor& c);

/// Batched: A (B,M,K) * B (B,K,N) -> C (B,M,N).
void batched_gemm(const Tensor& a, const Tensor& b, Tensor& c);

/// Row-wise softmax over the last dimension (rank 2 or 3).
void softmax(const Tensor& in, Tensor& out);

/// Numerically-stable scaled softmax: softmax(in * scale).
void scaled_softmax(const Tensor& in, float scale, Tensor& out);

/// Elementwise max(x, 0).
void relu(const Tensor& in, Tensor& out);

/// tanh-approximation GeLU (matches BERT).
void gelu(const Tensor& in, Tensor& out);

/// out = a + b (same shape).
void add(const Tensor& a, const Tensor& b, Tensor& out);

/// Adds a length-N bias to each row of a (...,N) tensor.
void bias_add(const Tensor& in, const Tensor& bias, Tensor& out);

/// LayerNorm over the last dimension with unit gamma / zero beta.
void layernorm(const Tensor& in, Tensor& out, float eps = 1e-5f);

/// Reference self-attention for one (batch*heads) group of rank-3 tensors:
/// O = softmax(Q*K^T * scale) * V, with Q (B,M,K), K (B,N,K) passed already
/// transposed as Kt (B,K,N), V (B,N,H), O (B,M,H).
void attention_reference(const Tensor& q, const Tensor& kt, const Tensor& v,
                         float scale, Tensor& o);

/// Reference 2-GEMM chain: E = (A*B)*D with A (B,M,K), Bm (B,K,N),
/// D (B,N,H), E (B,M,H); optional ReLU between the two GEMMs.
enum class ChainEpilogue { None, Relu, Gelu, Softmax };
void gemm_chain_reference(const Tensor& a, const Tensor& bm, const Tensor& d,
                          Tensor& e, ChainEpilogue mid = ChainEpilogue::None,
                          float softmax_scale = 1.0f);

}  // namespace mcf::ops
