// Dense row-major float tensor used by the reference operators and the
// functional kernel interpreter.
//
// The library deliberately supports a single dtype (float32) for functional
// execution; the GPU timing model accounts for fp16 tensor-core arithmetic
// separately (see gpu/spec.hpp).  Keeping numerics in fp32 makes the
// correctness tolerances tight while preserving every structural property
// the paper's experiments depend on.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace mcf {

/// Shape of a dense tensor; up to 4 dimensions are used in this repo
/// (batch, heads folded into batch, rows, cols).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {}

  [[nodiscard]] std::size_t rank() const noexcept { return dims_.size(); }
  [[nodiscard]] std::int64_t operator[](std::size_t i) const { return dims_.at(i); }
  [[nodiscard]] std::int64_t numel() const noexcept;
  [[nodiscard]] const std::vector<std::int64_t>& dims() const noexcept { return dims_; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Shape& a, const Shape& b) = default;

 private:
  std::vector<std::int64_t> dims_;
};

/// Row-major dense float tensor with value-semantics storage.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t numel() const noexcept { return static_cast<std::int64_t>(data_.size()); }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  /// 2-D accessors (rank must be 2).
  [[nodiscard]] float& at(std::int64_t r, std::int64_t c);
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const;
  /// 3-D accessors (rank must be 3: batch, rows, cols).
  [[nodiscard]] float& at(std::int64_t b, std::int64_t r, std::int64_t c);
  [[nodiscard]] float at(std::int64_t b, std::int64_t r, std::int64_t c) const;

  void fill(float v);

  /// Fills with deterministic pseudo-random values in [-1, 1].
  void fill_random(std::uint64_t seed);

  /// Returns a rank-2 view descriptor of batch `b` for rank-3 tensors
  /// (rows*cols contiguous slice).
  [[nodiscard]] std::span<const float> batch_slice(std::int64_t b) const;
  [[nodiscard]] std::span<float> batch_slice(std::int64_t b);

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Maximum absolute elementwise difference; shapes must match.
[[nodiscard]] double max_abs_diff(const Tensor& a, const Tensor& b);

/// Maximum relative difference with absolute floor `atol`.
[[nodiscard]] double max_rel_diff(const Tensor& a, const Tensor& b,
                                  double atol = 1e-5);

/// True when all elements differ by at most atol + rtol*|ref|.
[[nodiscard]] bool allclose(const Tensor& a, const Tensor& ref,
                            double rtol = 1e-4, double atol = 1e-5);

}  // namespace mcf
