#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/logging.hpp"
#include "support/thread_pool.hpp"

namespace mcf::ops {

namespace {

// Blocked single-batch GEMM kernel: c[M,N] = a[M,K] * b[K,N] (c overwritten).
// Row-major; blocking keeps the working set in L1/L2.
void gemm_2d(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::int64_t m, std::int64_t k,
             std::int64_t n) {
  constexpr std::int64_t BM = 64;
  constexpr std::int64_t BK = 64;
  constexpr std::int64_t BN = 64;
  std::fill(c.begin(), c.end(), 0.0f);
  for (std::int64_t i0 = 0; i0 < m; i0 += BM) {
    const std::int64_t i1 = std::min(i0 + BM, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += BK) {
      const std::int64_t k1 = std::min(k0 + BK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += BN) {
        const std::int64_t j1 = std::min(j0 + BN, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            const float av = a[static_cast<std::size_t>(i * k + kk)];
            if (av == 0.0f) continue;
            const float* brow = &b[static_cast<std::size_t>(kk * n)];
            float* crow = &c[static_cast<std::size_t>(i * n)];
            for (std::int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  MCF_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2 &&
            c.shape().rank() == 2)
      << "gemm expects rank-2 tensors";
  const std::int64_t m = a.shape()[0];
  const std::int64_t k = a.shape()[1];
  const std::int64_t n = b.shape()[1];
  MCF_CHECK(b.shape()[0] == k) << "gemm inner-dim mismatch";
  MCF_CHECK(c.shape()[0] == m && c.shape()[1] == n) << "gemm output shape";
  // Parallelise over row stripes.
  const std::int64_t stripes =
      std::min<std::int64_t>((m + 63) / 64, ThreadPool::global().size());
  if (stripes <= 1) {
    gemm_2d(a.data(), b.data(), c.data(), m, k, n);
    return;
  }
  ThreadPool::global().parallel_for(stripes, [&](std::int64_t s) {
    const std::int64_t lo = s * m / stripes;
    const std::int64_t hi = (s + 1) * m / stripes;
    if (lo >= hi) return;
    gemm_2d(a.data().subspan(static_cast<std::size_t>(lo * k),
                             static_cast<std::size_t>((hi - lo) * k)),
            b.data(),
            c.data().subspan(static_cast<std::size_t>(lo * n),
                             static_cast<std::size_t>((hi - lo) * n)),
            hi - lo, k, n);
  });
}

void batched_gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  MCF_CHECK(a.shape().rank() == 3 && b.shape().rank() == 3 &&
            c.shape().rank() == 3)
      << "batched_gemm expects rank-3 tensors";
  const std::int64_t batch = a.shape()[0];
  const std::int64_t m = a.shape()[1];
  const std::int64_t k = a.shape()[2];
  const std::int64_t n = b.shape()[2];
  MCF_CHECK(b.shape()[0] == batch && c.shape()[0] == batch) << "batch dims";
  MCF_CHECK(b.shape()[1] == k) << "inner dim";
  MCF_CHECK(c.shape()[1] == m && c.shape()[2] == n) << "output shape";
  ThreadPool::global().parallel_for(batch, [&](std::int64_t bi) {
    gemm_2d(a.batch_slice(bi), b.batch_slice(bi), c.batch_slice(bi), m, k, n);
  });
}

namespace {
void softmax_rows(std::span<const float> in, std::span<float> out,
                  std::int64_t rows, std::int64_t cols, float scale) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* x = &in[static_cast<std::size_t>(r * cols)];
    float* y = &out[static_cast<std::size_t>(r * cols)];
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < cols; ++c) mx = std::max(mx, x[c] * scale);
    double sum = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float e = std::exp(x[c] * scale - mx);
      y[c] = e;
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t c = 0; c < cols; ++c) y[c] *= inv;
  }
}
}  // namespace

void scaled_softmax(const Tensor& in, float scale, Tensor& out) {
  MCF_CHECK(in.shape() == out.shape()) << "softmax shape mismatch";
  const auto& s = in.shape();
  MCF_CHECK(s.rank() == 2 || s.rank() == 3) << "softmax rank";
  const std::int64_t cols = s[s.rank() - 1];
  const std::int64_t rows = s.numel() / cols;
  softmax_rows(in.data(), out.data(), rows, cols, scale);
}

void softmax(const Tensor& in, Tensor& out) { scaled_softmax(in, 1.0f, out); }

void relu(const Tensor& in, Tensor& out) {
  MCF_CHECK(in.shape() == out.shape()) << "relu shape";
  const auto x = in.data();
  const auto y = out.data();
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::max(0.0f, x[i]);
}

void gelu(const Tensor& in, Tensor& out) {
  MCF_CHECK(in.shape() == out.shape()) << "gelu shape";
  const auto x = in.data();
  const auto y = out.data();
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x[i];
    const float t = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    y[i] = 0.5f * v * (1.0f + std::tanh(t));
  }
}

void add(const Tensor& a, const Tensor& b, Tensor& out) {
  MCF_CHECK(a.shape() == b.shape() && a.shape() == out.shape()) << "add shape";
  const auto da = a.data();
  const auto db = b.data();
  const auto dy = out.data();
  for (std::size_t i = 0; i < da.size(); ++i) dy[i] = da[i] + db[i];
}

void bias_add(const Tensor& in, const Tensor& bias, Tensor& out) {
  MCF_CHECK(in.shape() == out.shape()) << "bias_add shape";
  const auto& s = in.shape();
  const std::int64_t n = s[s.rank() - 1];
  MCF_CHECK(bias.shape().rank() == 1 && bias.shape()[0] == n) << "bias shape";
  const std::int64_t rows = s.numel() / n;
  const auto x = in.data();
  const auto bvec = bias.data();
  const auto y = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < n; ++c) {
      y[static_cast<std::size_t>(r * n + c)] =
          x[static_cast<std::size_t>(r * n + c)] + bvec[static_cast<std::size_t>(c)];
    }
  }
}

void layernorm(const Tensor& in, Tensor& out, float eps) {
  MCF_CHECK(in.shape() == out.shape()) << "layernorm shape";
  const auto& s = in.shape();
  const std::int64_t n = s[s.rank() - 1];
  const std::int64_t rows = s.numel() / n;
  const auto x = in.data();
  const auto y = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = &x[static_cast<std::size_t>(r * n)];
    float* orow = &y[static_cast<std::size_t>(r * n)];
    double mu = 0.0;
    for (std::int64_t c = 0; c < n; ++c) mu += row[c];
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (std::int64_t c = 0; c < n; ++c) {
      const double d = row[c] - mu;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const double inv = 1.0 / std::sqrt(var + eps);
    for (std::int64_t c = 0; c < n; ++c) {
      orow[c] = static_cast<float>((row[c] - mu) * inv);
    }
  }
}

void attention_reference(const Tensor& q, const Tensor& kt, const Tensor& v,
                         float scale, Tensor& o) {
  const std::int64_t batch = q.shape()[0];
  const std::int64_t m = q.shape()[1];
  const std::int64_t n = kt.shape()[2];
  Tensor s(Shape{batch, m, n});
  batched_gemm(q, kt, s);
  Tensor p(Shape{batch, m, n});
  scaled_softmax(s, scale, p);
  batched_gemm(p, v, o);
}

void gemm_chain_reference(const Tensor& a, const Tensor& bm, const Tensor& d,
                          Tensor& e, ChainEpilogue mid, float softmax_scale) {
  const std::int64_t batch = a.shape()[0];
  const std::int64_t m = a.shape()[1];
  const std::int64_t n = bm.shape()[2];
  Tensor c(Shape{batch, m, n});
  batched_gemm(a, bm, c);
  switch (mid) {
    case ChainEpilogue::None:
      break;
    case ChainEpilogue::Relu: {
      Tensor t(c.shape());
      relu(c, t);
      c = std::move(t);
      break;
    }
    case ChainEpilogue::Gelu: {
      Tensor t(c.shape());
      gelu(c, t);
      c = std::move(t);
      break;
    }
    case ChainEpilogue::Softmax: {
      Tensor t(c.shape());
      scaled_softmax(c, softmax_scale, t);
      c = std::move(t);
      break;
    }
  }
  batched_gemm(c, d, e);
}

}  // namespace mcf::ops
