// Seeded schedule-mutation corpus for the verifier's regression net.
//
// Each mutant is a copy of a known-safe schedule with one schedule-level
// bug injected — an off-by-one loop extent, a shrunk scratch residency
// (which shifts every later arena offset), or truncated fringe handling
// (tile sizes forced onto the exact path while the extents still
// overshoot).  Every mutation ships with a constructive unsafety
// argument: it is only emitted when the schedule's structure guarantees
// the injected bug reaches an out-of-bounds access, so the verifier
// tests can demand a 100% catch rate without ever consulting the
// verifier to pick the corpus (that would be circular).
//
// The same corpus feeds the ASan differential harness
// (tests/verify/test_differential.cpp): verifier-flagged mutants are the
// "unsafe" leg, the unmutated schedule the "safe" leg.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/schedule.hpp"

namespace mcf {
namespace verify {

struct Mutant {
  std::string name;    ///< e.g. "extent-bump(l=2)", "resident-shrink(t=1)"
  std::string detail;  ///< what was perturbed and why it must be unsafe
  Schedule schedule;   ///< references the SAME ChainSpec as the original
};

/// Deterministic (seeded) corpus of provably-unsafe mutants of `s`.
/// The base schedule must be lowerable (valid + consume-complete); the
/// chain it references must outlive the returned schedules.  Returns at
/// most `max_mutants`, shuffled by `seed`; an empty vector when the
/// schedule's structure admits no guaranteed-unsafe mutation.
[[nodiscard]] std::vector<Mutant> mutation_corpus(const Schedule& s,
                                                  std::uint64_t seed,
                                                  std::size_t max_mutants);

}  // namespace verify
}  // namespace mcf
