#include "verify/verify.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "exec/codegen.hpp"
#include "support/env.hpp"

namespace mcf {
namespace verify {

namespace {

// ---- checked 128-bit arithmetic --------------------------------------------
//
// Every emitted offset is evaluated in __int128 with saturation, so a
// value that would wrap the kernel's i64 is detected instead of
// wrapping the analysis too.  Saturation (rather than wrapping) keeps
// the ordering usable for worst-corner selection after an overflow.

constexpr __int128 kSat = static_cast<__int128>(1) << 120;

struct CInt {
  __int128 v = 0;
  bool ovf = false;
};

[[nodiscard]] CInt ci(std::int64_t x) { return {static_cast<__int128>(x), false}; }

[[nodiscard]] CInt sat(__int128 v, bool ovf) {
  if (v > kSat) return {kSat, true};
  if (v < -kSat) return {-kSat, true};
  return {v, ovf};
}

[[nodiscard]] CInt add(CInt a, CInt b) {
  __int128 r = 0;
  const bool o = __builtin_add_overflow(a.v, b.v, &r);
  if (o) r = (a.v > 0) ? kSat : -kSat;
  return sat(r, a.ovf || b.ovf || o);
}

[[nodiscard]] CInt sub(CInt a, CInt b) {
  __int128 r = 0;
  const bool o = __builtin_sub_overflow(a.v, b.v, &r);
  if (o) r = (a.v > 0) ? kSat : -kSat;
  return sat(r, a.ovf || b.ovf || o);
}

[[nodiscard]] CInt mul(CInt a, CInt b) {
  __int128 r = 0;
  const bool o = __builtin_mul_overflow(a.v, b.v, &r);
  if (o) r = ((a.v < 0) != (b.v < 0)) ? -kSat : kSat;
  return sat(r, a.ovf || b.ovf || o);
}

[[nodiscard]] CInt cmin(CInt a, CInt b) {
  return {a.v < b.v ? a.v : b.v, a.ovf || b.ovf};
}

[[nodiscard]] bool fits_i64(CInt a) {
  return !a.ovf && a.v >= static_cast<__int128>(INT64_MIN) &&
         a.v <= static_cast<__int128>(INT64_MAX);
}

[[nodiscard]] std::int64_t clamp64(CInt a) {
  if (a.v > static_cast<__int128>(INT64_MAX)) return INT64_MAX;
  if (a.v < static_cast<__int128>(INT64_MIN)) return INT64_MIN;
  return static_cast<std::int64_t>(a.v);
}

// ---- JSON ------------------------------------------------------------------
//
// Local escaper: engine.cpp's json_escape sits behind the full engine
// header; the verifier stays dependency-light (dag + codegen only).

[[nodiscard]] std::string jesc(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- the analyzer ----------------------------------------------------------

class Verifier {
 public:
  explicit Verifier(const Schedule& s) : s_(s), chain_(s.chain()) {}

  [[nodiscard]] VerifyReport run() {
    if (!s_.valid() || !s_.consume_complete()) {
      rep_.checked = false;
      rep_.skip_reason =
          "schedule is not lowerable (invalid or Rule-2 incomplete)";
      return rep_;
    }
    rep_.checked = true;
    if (!setup()) {
      finalize();
      return rep_;
    }
    stats_reset_sites();
    active_.assign(static_cast<std::size_t>(chain_.num_loops()), 0);
    for (const int l : s_.block_loops()) active_[static_cast<std::size_t>(l)] = 1;
    walk(s_.root());
    finalize();
    return rep_;
  }

 private:
  /// Per-corner loop index values (num_loops <= 8 by InlineVec sizing).
  using Corner = std::array<std::int64_t, 8>;

  [[nodiscard]] std::int64_t ext(int l) const {
    return s_.extents()[static_cast<std::size_t>(l)];
  }
  [[nodiscard]] std::int64_t tile(int l) const {
    return s_.tiles()[static_cast<std::size_t>(l)];
  }

  /// Mirrors CppEmitter's constructor: arena spans prefix-summed per
  /// tensor, softmax stats appended after the arena.  Returns false when
  /// a setup-level quantity already overflows (analysis of individual
  /// sites would be garbage; the overflow violations say why).
  bool setup() {
    const int nt = chain_.num_tensors();
    buf_offset_.assign(static_cast<std::size_t>(nt) + 1, 0);
    CInt off = ci(0);
    bool ok = true;
    for (int t = 0; t < nt; ++t) {
      const CInt elems =
          mul(ci(s_.tile_elems(t)),
              ci(s_.resident_tiles()[static_cast<std::size_t>(t)]));
      off = add(off, elems);
      if (!fits_i64(off)) {
        overflow_setup("scratch arena size (tensor " + chain_.tensor(t).name +
                       ")", off);
        ok = false;
      }
      buf_offset_[static_cast<std::size_t>(t) + 1] = clamp64(off);
    }
    stat_offset_.assign(static_cast<std::size_t>(chain_.num_ops()), -1);
    CInt stats = ci(0);
    for (int op = 0; op < chain_.num_ops(); ++op) {
      if (chain_.epilogue(op) != Epilogue::OnlineSoftmax) continue;
      stat_offset_[static_cast<std::size_t>(op)] = clamp64(stats);
      stats = add(stats, mul(ci(2), ci(s_.tiles()[0])));
    }
    const CInt total = add(off, stats);
    if (!fits_i64(total)) {
      overflow_setup("scratch floats", total);
      ok = false;
    }
    scratch_floats_ = clamp64(total);
    rep_.scratch_floats = scratch_floats_;

    CInt nb = ci(chain_.batch());
    for (const int l : s_.block_loops()) nb = mul(nb, ci(ext(l)));
    if (!fits_i64(nb)) {
      overflow_setup("block count", nb);
      ok = false;
    }
    rep_.n_blocks = clamp64(nb);

    // Global allocation sizes: batch*rows*cols appears as a literal in
    // the emitted pointer arithmetic (and in the fault-seam call), so
    // it must itself fit — for every externally-visible tensor.
    for (int t = 0; t < nt; ++t) {
      const auto& info = chain_.tensor(t);
      if (info.kind == TensorKind::Intermediate) continue;
      const CInt slice = mul(ci(chain_.loop_dim(info.loops[0])),
                             ci(chain_.loop_dim(info.loops[1])));
      const CInt totalg = mul(ci(chain_.batch()), slice);
      if (!fits_i64(totalg)) {
        overflow_setup("tensor " + info.name + " extent (batch*rows*cols)",
                       totalg);
        ok = false;
      }
    }
    return ok;
  }

  void overflow_setup(const std::string& what, CInt v) {
    Violation viol;
    viol.kind = ViolationKind::IndexOverflow;
    viol.site = "setup";
    viol.buffer = what;
    viol.access = "size";
    viol.offset = clamp64(v);
    viol.lo = 0;
    viol.hi = INT64_MAX;
    viol.message = "setup: " + what + " overflows i64";
    keep("setup|" + what, viol, kSat);
  }

  /// The per-block stats reset writes each softmax op's full stat span;
  /// checked like any site so the model stays total.
  void stats_reset_sites() {
    const std::int64_t tm = s_.tiles()[0];
    for (int op = 0; op < chain_.num_ops(); ++op) {
      const std::int64_t soff = stat_offset_[static_cast<std::size_t>(op)];
      if (soff < 0) continue;
      Corner zero{};
      cur_site_ = "stats reset op " + std::to_string(op);
      const CInt base = add(ci(buf_offset_.back()), ci(soff));
      rec_scratch(stat_name(op), "write", base,
                  add(base, ci(2 * tm - 1)), clamp64(base),
                  clamp64(add(base, ci(2 * tm))), zero);
    }
  }

  void walk(int idx) {
    const auto& n = s_.node(idx);
    if (n.is_stmt) {
      check_stmt(n.stmt);
      return;
    }
    char prev = 0;
    if (n.loop >= 0) {
      prev = active_[static_cast<std::size_t>(n.loop)];
      active_[static_cast<std::size_t>(n.loop)] = 1;
    }
    for (const int c : n.children) walk(c);
    if (n.loop >= 0) active_[static_cast<std::size_t>(n.loop)] = prev;
  }

  /// Enumerates the corners of the statement's iteration box and runs
  /// the kind-specific evaluator at each.  Range of loop `l` at this
  /// statement: full extent when covered (hoisted-store shadow q<l>) or
  /// active (block loop / tree ancestor), else the variable is pinned 0.
  void check_stmt(const Statement& st) {
    const int L = chain_.num_loops();
    covered_.assign(static_cast<std::size_t>(L), 0);
    if (st.kind == StmtKind::Store) {
      for (const int l : st.covered_loops)
        covered_[static_cast<std::size_t>(l)] = 1;
    }
    switch (st.kind) {
      case StmtKind::Load:
        cur_site_ = "load " + chain_.tensor(st.tensor).name;
        break;
      case StmtKind::Compute:
        cur_site_ = "compute op " + std::to_string(st.op);
        break;
      case StmtKind::Store:
        cur_site_ = "store " + chain_.tensor(st.tensor).name;
        break;
    }
    std::vector<int> free;
    for (int l = 0; l < L; ++l) {
      if (range_of(l) > 1) free.push_back(l);
    }
    const std::size_t corners = static_cast<std::size_t>(1) << free.size();
    for (std::size_t mask = 0; mask < corners; ++mask) {
      Corner c{};
      for (std::size_t i = 0; i < free.size(); ++i) {
        if (mask & (static_cast<std::size_t>(1) << i)) {
          c[static_cast<std::size_t>(free[i])] = range_of(free[i]) - 1;
        }
      }
      switch (st.kind) {
        case StmtKind::Load: eval_load(st, c); break;
        case StmtKind::Compute: eval_compute(st, c); break;
        case StmtKind::Store: eval_store(st, c); break;
      }
    }
  }

  [[nodiscard]] std::int64_t range_of(int l) const {
    if (covered_[static_cast<std::size_t>(l)] ||
        active_[static_cast<std::size_t>(l)]) {
      return ext(l);
    }
    return 1;
  }

  /// Arena offset of tensor `t`'s current slot (codegen buf_expr): the
  /// static base plus the resident-loop mixed radix at this corner.
  [[nodiscard]] CInt buf_base(int t, const Corner& c) const {
    CInt slot = ci(0);
    for (const int l : s_.resident_loops(t)) {
      slot = add(mul(slot, ci(ext(l))), ci(c[static_cast<std::size_t>(l)]));
    }
    return add(ci(buf_offset_[static_cast<std::size_t>(t)]),
               mul(slot, ci(s_.tile_elems(t))));
  }

  [[nodiscard]] std::int64_t region_lo(int t) const {
    return buf_offset_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::int64_t region_hi(int t) const {
    return buf_offset_[static_cast<std::size_t>(t) + 1];
  }
  [[nodiscard]] std::string arena_name(int t) const {
    return "arena:" + chain_.tensor(t).name;
  }
  [[nodiscard]] static std::string stat_name(int op) {
    return "stats:op" + std::to_string(op);
  }
  [[nodiscard]] std::string global_name(int t) const {
    const auto& info = chain_.tensor(t);
    if (info.kind == TensorKind::Input) return "ga";
    if (info.kind == TensorKind::Weight) {
      return "gw[" + std::to_string(info.consumer_op) + "]";
    }
    return "gout";
  }

  // Mirrors codegen emit_load: dst tile copy into the arena, src slice
  // read from global.  On the fringe path fr/fc are min-clamps that can
  // reach (or pass) zero: a negative fc starts the row write at dp[fc],
  // a negative fr starts the zero-fill at dst[fr*tc] — the model keeps
  // those spans, which is exactly how extent mutants are caught.
  void eval_load(const Statement& st, const Corner& c) {
    const int t = st.tensor;
    const auto& info = chain_.tensor(t);
    const int lr = info.loops[0];
    const int lc = info.loops[1];
    const std::int64_t tr = tile(lr);
    const std::int64_t tc = tile(lc);
    const std::int64_t rows = chain_.loop_dim(lr);
    const std::int64_t cols = chain_.loop_dim(lc);
    const CInt base = buf_base(t, c);
    const CInt r0 = mul(ci(c[static_cast<std::size_t>(lr)]), ci(tr));
    const CInt c0 = mul(ci(c[static_cast<std::size_t>(lc)]), ci(tc));
    const bool exact = rows % tr == 0 && cols % tc == 0;
    if (exact) {
      rec_scratch(arena_name(t), "write", base,
                  add(base, ci(tr * tc - 1)), region_lo(t), region_hi(t), c);
      const CInt slo = add(mul(r0, ci(cols)), c0);
      const CInt shi =
          add(add(mul(add(r0, ci(tr - 1)), ci(cols)), c0), ci(tc - 1));
      rec_global(global_name(t), "read", slo, shi, rows, cols, c);
      return;
    }
    const CInt fr = cmin(sub(ci(rows), r0), ci(tr));
    const CInt fc = cmin(sub(ci(cols), c0), ci(tc));
    if (fr.v > 0) {
      // Interior rows r in [0, fr): dp[c] for c in [0,fc) then the
      // zero-fill [fc, tc) — the union always ends at tc-1 and starts
      // at min(fc, 0).
      const CInt lo = add(base, cmin(fc, ci(0)));
      const CInt hi = add(base, add(mul(sub(fr, ci(1)), ci(tc)), ci(tc - 1)));
      rec_scratch(arena_name(t), "write", lo, hi, region_lo(t), region_hi(t),
                  c);
      if (fc.v > 0) {
        const CInt slo = add(mul(r0, ci(cols)), c0);
        const CInt shi = add(add(mul(add(r0, sub(fr, ci(1))), ci(cols)), c0),
                             sub(fc, ci(1)));
        rec_global(global_name(t), "read", slo, shi, rows, cols, c);
      }
    }
    if (fr.v < tr) {
      // Zero-fill rows r in [fr, tr): full-width writes, starting at
      // fr*tc — negative when fr < 0.
      const CInt lo = add(base, mul(fr, ci(tc)));
      const CInt hi = add(base, ci(tr * tc - 1));
      rec_scratch(arena_name(t), "write", lo, hi, region_lo(t), region_hi(t),
                  c);
    }
  }

  // Mirrors codegen emit_compute: the register-blocked micro-kernel
  // sweeps the full o/x/w tiles; the epilogue runs iff the emitted
  // `i<red> == red_ext-1` test is reachable at this statement.
  void eval_compute(const Statement& st, const Corner& c) {
    const int op = st.op;
    const int t_in = chain_.op_input_tensor(op);
    const int t_w = chain_.op_weight_tensor(op);
    const int t_out = chain_.op_output_tensor(op);
    const int red = chain_.reduction_loop(op);
    const int col = chain_.out_col_loop(op);
    const std::int64_t tm = s_.tiles()[0];
    const std::int64_t trd = tile(red);
    const std::int64_t tcl = tile(col);
    const CInt o = buf_base(t_out, c);
    const CInt x = buf_base(t_in, c);
    const CInt w = buf_base(t_w, c);
    rec_scratch(arena_name(t_out), "write", o,
                add(o, sub(mul(ci(tm), ci(tcl)), ci(1))), region_lo(t_out),
                region_hi(t_out), c);
    rec_scratch(arena_name(t_in), "read", x,
                add(x, sub(mul(ci(tm), ci(trd)), ci(1))), region_lo(t_in),
                region_hi(t_in), c);
    rec_scratch(arena_name(t_w), "read", w,
                add(w, sub(mul(ci(trd), ci(tcl)), ci(1))), region_lo(t_w),
                region_hi(t_w), c);
    if (chain_.epilogue(op) != Epilogue::OnlineSoftmax) return;
    const bool reachable =
        active_[static_cast<std::size_t>(red)] || ext(red) == 1;
    if (!reachable) return;
    // Online-softmax epilogue: running max/sum rows plus the consumer-
    // accumulator rescale.  `cons` is addressed from the tensor's region
    // base with NO slot term (codegen emit_epilogue) — the rescale walks
    // every resident row of the consumer tile block.
    const std::string save = cur_site_;
    cur_site_ = "softmax epilogue op " + std::to_string(op);
    const std::int64_t soff = stat_offset_[static_cast<std::size_t>(op)];
    const CInt sbase = add(ci(buf_offset_.back()), ci(soff));
    rec_scratch(stat_name(op), "write", sbase, add(sbase, ci(tm - 1)),
                clamp64(sbase), clamp64(add(sbase, ci(2 * tm))), c);
    rec_scratch(stat_name(op), "write", add(sbase, ci(tm)),
                add(sbase, ci(2 * tm - 1)), clamp64(sbase),
                clamp64(add(sbase, ci(2 * tm))), c);
    const int t_cons = chain_.op_output_tensor(op + 1);
    const std::int64_t cons_floats = region_hi(t_cons) - region_lo(t_cons);
    const std::int64_t cons_cols =
        tile(chain_.out_col_loop(op + 1));
    const std::int64_t cons_rows_total = cons_floats / cons_cols;
    if (cons_rows_total > 0) {
      const CInt cons = ci(region_lo(t_cons));
      rec_scratch(arena_name(t_cons), "write", cons,
                  add(cons, ci(cons_rows_total * cons_cols - 1)),
                  region_lo(t_cons), region_hi(t_cons), c);
    }
    cur_site_ = save;
  }

  // Mirrors codegen emit_store: hoisted stores sweep the covered shadow
  // loops (already folded into the corner ranges); the fringe clamps
  // gate both the row loop and the column span, and the deferred
  // softmax normalisation reads the producer's rsum rows.
  void eval_store(const Statement& st, const Corner& c) {
    const int t = st.tensor;
    const auto& info = chain_.tensor(t);
    const int lr = info.loops[0];
    const int lc = info.loops[1];
    const std::int64_t tr = tile(lr);
    const std::int64_t tc = tile(lc);
    const std::int64_t rows = chain_.loop_dim(lr);
    const std::int64_t cols = chain_.loop_dim(lc);
    const CInt base = buf_base(t, c);
    const CInt r0 = mul(ci(c[static_cast<std::size_t>(lr)]), ci(tr));
    const CInt c0 = mul(ci(c[static_cast<std::size_t>(lc)]), ci(tc));
    const bool exact = rows % tr == 0 && cols % tc == 0;
    const CInt fr = exact ? ci(tr) : cmin(sub(ci(rows), r0), ci(tr));
    const CInt fc = exact ? ci(tc) : cmin(sub(ci(cols), c0), ci(tc));
    const int producer = info.producer_op;
    const bool normalize =
        producer > 0 &&
        chain_.epilogue(producer - 1) == Epilogue::OnlineSoftmax;
    if (fr.v <= 0) return;  // the emitted row loop does not run
    if (normalize) {
      const std::int64_t soff =
          stat_offset_[static_cast<std::size_t>(producer - 1)];
      const CInt rsum = add(ci(buf_offset_.back()), ci(soff + s_.tiles()[0]));
      rec_scratch(stat_name(producer - 1), "read", rsum,
                  add(rsum, sub(fr, ci(1))), clamp64(rsum),
                  clamp64(add(rsum, ci(s_.tiles()[0]))), c);
    }
    // Column span: the exact non-normalize path memcpys the full tile;
    // every other path iterates c in [0, fc) and vanishes when fc <= 0.
    const CInt cc = (exact && !normalize) ? ci(tc) : fc;
    if (cc.v <= 0) return;
    const CInt slo = base;
    const CInt shi = add(base, add(mul(sub(fr, ci(1)), ci(tc)), sub(cc, ci(1))));
    rec_scratch(arena_name(t), "read", slo, shi, region_lo(t), region_hi(t),
                c);
    const CInt glo = add(mul(r0, ci(cols)), c0);
    const CInt ghi =
        add(add(mul(add(r0, sub(fr, ci(1))), ci(cols)), c0), sub(cc, ci(1)));
    rec_global(global_name(t), "write", glo, ghi, rows, cols, c);
  }

  // ---- recording ----------------------------------------------------------

  void note_site(const std::string& buffer, const char* access) {
    sites_.insert(cur_site_ + "|" + buffer + "|" + access);
  }

  /// Scratch access spanning [lo, hi] (inclusive) against its own region
  /// [rlo, rhi).  Inside scratch but outside the region is aliasing;
  /// outside the allocation (or negative) is an overflow.
  void rec_scratch(const std::string& buffer, const char* access, CInt lo,
                   CInt hi, std::int64_t rlo, std::int64_t rhi,
                   const Corner& c) {
    note_site(buffer, access);
    if (!fits_i64(lo) || !fits_i64(hi)) {
      flag(ViolationKind::IndexOverflow, buffer, access,
           fits_i64(lo) ? hi : lo, rlo, rhi, c, 0);
      return;
    }
    if (lo.v < rlo) flag_scratch(buffer, access, lo, rlo, rhi, c);
    if (hi.v >= rhi) flag_scratch(buffer, access, hi, rlo, rhi, c);
  }

  void flag_scratch(const std::string& buffer, const char* access, CInt off,
                    std::int64_t rlo, std::int64_t rhi, const Corner& c) {
    const bool inside_scratch = off.v >= 0 && off.v < scratch_floats_;
    flag(inside_scratch ? ViolationKind::RegionAlias
                        : ViolationKind::ScratchOverflow,
         buffer, access, off, rlo, rhi, c, 0);
  }

  /// Global access spanning slice offsets [lo, hi] (inclusive) against
  /// the per-batch slice [0, rows*cols); the allocation is
  /// batch * rows * cols, so the witness picks the worst batch index.
  void rec_global(const std::string& buffer, const char* access, CInt lo,
                  CInt hi, std::int64_t rows, std::int64_t cols,
                  const Corner& c) {
    note_site(buffer, access);
    const CInt slice = mul(ci(rows), ci(cols));
    const CInt total = mul(ci(chain_.batch()), slice);
    if (!fits_i64(lo) || !fits_i64(hi) || !fits_i64(total)) {
      flag(ViolationKind::IndexOverflow, buffer, access,
           fits_i64(lo) ? hi : lo, 0, clamp64(total), c, 0);
      return;
    }
    if (lo.v < 0) {
      flag(ViolationKind::GlobalOutOfBounds, buffer, access, lo, 0,
           clamp64(total), c, 0);
    }
    if (hi.v >= slice.v) {
      // Worst block is in the last batch slice: absolute offset
      // (batch-1)*slice + hi against the allocation bound.
      const CInt abs = add(mul(ci(chain_.batch() - 1), slice), hi);
      flag(ViolationKind::GlobalOutOfBounds, buffer, access, abs, 0,
           clamp64(total), c, chain_.batch() - 1);
    }
  }

  void flag(ViolationKind kind, const std::string& buffer, const char* access,
            CInt off, std::int64_t lo, std::int64_t hi, const Corner& c,
            std::int64_t batch_idx) {
    Violation v;
    v.kind = kind;
    v.site = cur_site_;
    v.buffer = buffer;
    v.access = access;
    v.block = witness_block(c, batch_idx);
    const int L = chain_.num_loops();
    v.indices.assign(c.begin(), c.begin() + L);
    v.offset = clamp64(off);
    v.lo = lo;
    v.hi = hi;
    std::ostringstream msg;
    msg << cur_site_ << ": " << access << " of " << buffer << " at offset "
        << v.offset << " outside [" << lo << ", " << hi << ") ("
        << violation_kind_name(kind) << "; block " << v.block << ",";
    for (int l = 0; l < L; ++l) {
      msg << " i" << l << "=" << v.indices[static_cast<std::size_t>(l)];
    }
    msg << ")";
    v.message = msg.str();
    // Excess = distance outside the range: the worst corner wins the
    // witness slot for this (site, buffer, kind, access).
    const __int128 excess =
        off.v >= hi ? off.v - hi : (off.v < lo ? static_cast<__int128>(lo) - off.v
                                               : 0);
    keep(cur_site_ + "|" + buffer + "|" + access + "|" +
             violation_kind_name(kind),
         v, excess);
  }

  void keep(const std::string& key, Violation v, __int128 excess) {
    for (auto& kv : worst_) {
      if (kv.key == key) {
        if (excess > kv.excess) {
          kv.excess = excess;
          kv.v = std::move(v);
        }
        return;
      }
    }
    worst_.push_back({key, excess, std::move(v)});
  }

  /// Forward mixed-radix block encode (inverse of the emitted decode):
  /// batch outermost, then the block loops in declaration order.
  [[nodiscard]] std::int64_t witness_block(const Corner& c,
                                           std::int64_t batch_idx) const {
    CInt blk = ci(batch_idx);
    for (const int l : s_.block_loops()) {
      blk = add(mul(blk, ci(ext(l))), ci(c[static_cast<std::size_t>(l)]));
    }
    return clamp64(blk);
  }

  void finalize() {
    rep_.sites_checked = static_cast<int>(sites_.size());
    for (auto& kv : worst_) rep_.violations.push_back(std::move(kv.v));
  }

  struct Kept {
    std::string key;
    __int128 excess;
    Violation v;
  };

  const Schedule& s_;
  const ChainSpec& chain_;
  VerifyReport rep_;
  std::vector<std::int64_t> buf_offset_;
  std::vector<std::int64_t> stat_offset_;
  std::int64_t scratch_floats_ = 0;
  std::vector<char> active_;
  std::vector<char> covered_;
  std::string cur_site_;
  std::set<std::string> sites_;
  std::vector<Kept> worst_;
};

}  // namespace

const char* violation_kind_name(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::ScratchOverflow: return "scratch-overflow";
    case ViolationKind::RegionAlias: return "region-alias";
    case ViolationKind::GlobalOutOfBounds: return "global-out-of-bounds";
    case ViolationKind::IndexOverflow: return "index-overflow";
  }
  return "unknown";
}

std::string Violation::to_json() const {
  std::ostringstream os;
  os << "{\"kind\":\"" << violation_kind_name(kind) << "\",\"site\":\""
     << jesc(site) << "\",\"buffer\":\"" << jesc(buffer) << "\",\"access\":\""
     << jesc(access) << "\",\"block\":" << block << ",\"indices\":[";
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i) os << ",";
    os << indices[i];
  }
  os << "],\"offset\":" << offset << ",\"lo\":" << lo << ",\"hi\":" << hi
     << ",\"message\":\"" << jesc(message) << "\"}";
  return os.str();
}

std::string VerifyReport::to_json() const {
  std::ostringstream os;
  os << "{\"checked\":" << (checked ? "true" : "false");
  if (!skip_reason.empty()) {
    os << ",\"skip_reason\":\"" << jesc(skip_reason) << "\"";
  }
  os << ",\"safe\":" << (safe() ? "true" : "false")
     << ",\"n_blocks\":" << n_blocks << ",\"scratch_floats\":" << scratch_floats
     << ",\"sites_checked\":" << sites_checked << ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) os << ",";
    os << violations[i].to_json();
  }
  os << "]}";
  return os.str();
}

VerifyReport verify_schedule(const Schedule& s) { return Verifier(s).run(); }

bool verify_enabled() {
#ifdef NDEBUG
  constexpr bool kDefault = false;
#else
  constexpr bool kDefault = true;
#endif
  return env::bool_flag("MCFUSER_VERIFY", kDefault);
}

std::string verify_gate_error(const Schedule& s) {
  const VerifyReport rep = verify_schedule(s);
  if (!rep.checked || rep.safe()) return {};
  return std::string(kGateErrorPrefix) + rep.violations.front().message;
}

std::vector<StmtContext> statement_contexts(const Schedule& s) {
  std::vector<StmtContext> out;
  std::uint32_t mask = 0;
  for (const int l : s.block_loops()) mask |= 1u << static_cast<unsigned>(l);
  // Iterative preorder walk matching statements_in_order(): the active
  // mask at a statement is block loops plus tree ancestors.
  struct Frame {
    int node;
    std::uint32_t mask;
  };
  std::vector<Frame> stack{{s.root(), mask}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const auto& n = s.node(f.node);
    if (n.is_stmt) {
      out.push_back({&n.stmt, f.mask});
      continue;
    }
    std::uint32_t m = f.mask;
    if (n.loop >= 0) m |= 1u << static_cast<unsigned>(n.loop);
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back({*it, m});
    }
  }
  return out;
}

}  // namespace verify
}  // namespace mcf
