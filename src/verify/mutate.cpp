#include "verify/mutate.hpp"

#include <algorithm>
#include <set>

#include "dag/schedule_internal.hpp"
#include "support/rng.hpp"
#include "verify/verify.hpp"

namespace mcf {
namespace verify {

namespace {

/// True when the emitted index variable of loop `l` ranges over the full
/// extent at this statement: block loop / tree ancestor (active_mask) or
/// a hoisted store's covered shadow.
[[nodiscard]] bool ranges(const StmtContext& ctx, int l) {
  if (ctx.active_mask & (1u << static_cast<unsigned>(l))) return true;
  if (ctx.stmt->kind == StmtKind::Store) {
    for (const int cl : ctx.stmt->covered_loops) {
      if (cl == l) return true;
    }
  }
  return false;
}

/// Tensors the statement addresses through the arena (codegen buf_expr).
[[nodiscard]] std::vector<int> arena_tensors(const ChainSpec& chain,
                                             const Statement& st) {
  switch (st.kind) {
    case StmtKind::Load:
    case StmtKind::Store:
      return {st.tensor};
    case StmtKind::Compute:
      return {chain.op_input_tensor(st.op), chain.op_weight_tensor(st.op),
              chain.op_output_tensor(st.op)};
  }
  return {};
}

/// Max arena slot the verifier's corners reach for tensor `t` at `ctx`,
/// given (possibly perturbed) per-loop extents: the mixed radix over
/// resident_loops(t) with each ranging loop at extent-1 and pinned loops
/// at 0.  The slot overrun guarantee needs every resident loop ranging.
[[nodiscard]] bool slot_overrun_guaranteed(const Schedule& s,
                                           const StmtContext& ctx, int t,
                                           int bumped_loop) {
  const auto& rl = s.resident_loops(t);
  if (rl.empty()) return false;
  bool has_bumped = false;
  std::int64_t prod = 1;
  for (const int l : rl) {
    if (!ranges(ctx, l)) return false;
    std::int64_t e = s.extents()[static_cast<std::size_t>(l)];
    if (l == bumped_loop) {
      e += 1;
      has_bumped = true;
    }
    prod *= e;
  }
  if (bumped_loop >= 0 && !has_bumped) return false;
  // Max slot = prod - 1; region holds resident_tiles()[t] slots.
  return prod - 1 >= s.resident_tiles()[static_cast<std::size_t>(t)];
}

struct Candidate {
  std::string name;
  std::string detail;
};

}  // namespace

std::vector<Mutant> mutation_corpus(const Schedule& s, std::uint64_t seed,
                                    std::size_t max_mutants) {
  std::vector<Mutant> out;
  if (!s.valid() || !s.consume_complete()) return out;
  const ChainSpec& chain = s.chain();
  const std::vector<StmtContext> ctxs = statement_contexts(s);
  const int L = chain.num_loops();

  // --- class 1: off-by-one loop extent (extents[l] += 1) --------------------
  // Unsafe iff some access provably reaches the extra iteration:
  //   * an arena slot overrun (l resident for an accessed tensor, all
  //     resident loops ranging at the site), or
  //   * a load whose bumped row/col lands past the dimension — on the
  //     exact path the unconditional tile memcpy reads out of the slice;
  //     on the fringe path the self-dimension must be ragged so the
  //     min-clamp goes NEGATIVE (fr/fc < 0 writes below the tile).  The
  //     fr == 0 edge (self-dim divides exactly, other dim ragged) is
  //     excluded: it only zero-fills the whole tile, which is safe.
  //   * an exact-path store, whose full-tile write lands past the slice.
  for (int l = 0; l < L; ++l) {
    bool applicable = false;
    std::string why;
    for (const StmtContext& ctx : ctxs) {
      for (const int t : arena_tensors(chain, *ctx.stmt)) {
        if (slot_overrun_guaranteed(s, ctx, t, l)) {
          applicable = true;
          why = "arena slot of " + chain.tensor(t).name +
                " overruns its residency region";
        }
      }
      if (ctx.stmt->kind == StmtKind::Compute) continue;
      const int t = ctx.stmt->tensor;
      const auto& info = chain.tensor(t);
      const int lr = info.loops[0];
      const int lc = info.loops[1];
      if (l != lr && l != lc) continue;
      if (!ranges(ctx, l)) continue;
      const std::int64_t td = s.tiles()[static_cast<std::size_t>(l)];
      const std::int64_t dim = chain.loop_dim(l);
      const std::int64_t e = s.extents()[static_cast<std::size_t>(l)];
      const std::int64_t rows = chain.loop_dim(lr);
      const std::int64_t cols = chain.loop_dim(lc);
      const bool exact =
          rows % s.tiles()[static_cast<std::size_t>(lr)] == 0 &&
          cols % s.tiles()[static_cast<std::size_t>(lc)] == 0;
      if (ctx.stmt->kind == StmtKind::Load) {
        if (exact && e * td >= dim) {
          applicable = true;
          why = "load " + info.name + " tile copy runs past the slice";
        } else if (!exact && dim % td != 0 && e * td > dim) {
          applicable = true;
          why = "load " + info.name +
                " fringe clamp goes negative (writes below the tile)";
        }
      } else if (exact && e * td >= dim) {  // Store
        applicable = true;
        why = "store " + info.name + " full-tile write runs past the slice";
      }
    }
    if (!applicable) continue;
    Mutant m{"extent-bump(l=" + std::to_string(l) + ")",
             "extents[" + std::to_string(l) + "] " +
                 std::to_string(s.extents()[static_cast<std::size_t>(l)]) +
                 " -> " +
                 std::to_string(s.extents()[static_cast<std::size_t>(l)] + 1) +
                 ": " + why,
             s};
    ScheduleBuilderAccess::extents(m.schedule)[static_cast<std::size_t>(l)] +=
        1;
    out.push_back(std::move(m));
  }

  // --- class 2: shifted scratch offsets (resident_tiles[t] -= 1) ------------
  // Shrinks tensor t's arena region (and shifts every later region);
  // the untouched resident-loop radix still addresses the old slot
  // count, so the last slot provably lands in the next region.
  for (int t = 0; t < chain.num_tensors(); ++t) {
    if (s.resident_tiles()[static_cast<std::size_t>(t)] <= 1) continue;
    bool applicable = false;
    for (const StmtContext& ctx : ctxs) {
      const auto at = arena_tensors(chain, *ctx.stmt);
      if (std::find(at.begin(), at.end(), t) == at.end()) continue;
      const auto& rl = s.resident_loops(t);
      if (rl.empty()) continue;
      std::int64_t prod = 1;
      bool all = true;
      for (const int l : rl) {
        if (!ranges(ctx, l)) { all = false; break; }
        prod *= s.extents()[static_cast<std::size_t>(l)];
      }
      // Max addressed slot = prod - 1 vs the shrunk region of
      // resident - 1 slots.
      if (all && prod - 1 >=
                     s.resident_tiles()[static_cast<std::size_t>(t)] - 1) {
        applicable = true;
        break;
      }
    }
    if (!applicable) continue;
    Mutant m{"resident-shrink(t=" + std::to_string(t) + ")",
             "resident_tiles[" + chain.tensor(t).name + "] " +
                 std::to_string(s.resident_tiles()[static_cast<std::size_t>(t)]) +
                 " -> " +
                 std::to_string(
                     s.resident_tiles()[static_cast<std::size_t>(t)] - 1) +
                 ": last slot lands in the next arena region",
             s};
    ScheduleBuilderAccess::resident(m.schedule)[static_cast<std::size_t>(t)] -=
        1;
    out.push_back(std::move(m));
  }

  // --- class 3: truncated fringe handling -----------------------------------
  // Force a load/store site onto the exact path (tiles = full dims) while
  // the loop extents still overshoot: the removed fringe clamp is what
  // kept r0/c0 in range, so the full-tile copy provably leaves the slice.
  std::set<std::pair<int, int>> fringe_done;  // (lr, lc) dedup
  for (const StmtContext& ctx : ctxs) {
    if (ctx.stmt->kind == StmtKind::Compute) continue;
    const int t = ctx.stmt->tensor;
    const auto& info = chain.tensor(t);
    const int lr = info.loops[0];
    const int lc = info.loops[1];
    const bool over_r =
        ranges(ctx, lr) && s.extents()[static_cast<std::size_t>(lr)] >= 2;
    const bool over_c =
        ranges(ctx, lc) && s.extents()[static_cast<std::size_t>(lc)] >= 2;
    if (!over_r && !over_c) continue;
    if (!fringe_done.insert({lr, lc}).second) continue;
    Mutant m{"fringe-truncate(" + std::string(stmt_kind_name(ctx.stmt->kind)) +
                 " " + info.name + ")",
             "tiles[" + std::to_string(lr) + "]=" +
                 std::to_string(chain.loop_dim(lr)) + ", tiles[" +
                 std::to_string(lc) + "]=" + std::to_string(chain.loop_dim(lc)) +
                 " force the exact path while the extents still iterate: the "
                 "full-tile copy leaves the slice",
             s};
    ScheduleBuilderAccess::tiles(m.schedule)[static_cast<std::size_t>(lr)] =
        chain.loop_dim(lr);
    ScheduleBuilderAccess::tiles(m.schedule)[static_cast<std::size_t>(lc)] =
        chain.loop_dim(lc);
    out.push_back(std::move(m));
  }

  std::shuffle(out.begin(), out.end(), make_rng(seed));
  if (out.size() > max_mutants) out.resize(max_mutants);
  return out;
}

}  // namespace verify
}  // namespace mcf
