// Static kernel-safety verifier: symbolic interval/bounds analysis over
// lowered schedules (the data-plane counterpart of the concurrency gates).
//
// `emit_cpp_kernel` (exec/codegen.cpp) folds every extent, tile size and
// arena offset into literal constants; nothing at runtime re-checks them.
// verify_schedule() re-derives, without executing or compiling anything,
// the exact set of addresses every emitted load/compute/store can touch
// and proves three properties for every thread block in [0, n_blocks):
//
//   1. scratch safety — every arena access stays inside its tensor's
//      span of the scratch arena (`cpp_kernel_scratch_floats`), and the
//      tile-stage regions never alias each other or the online-softmax
//      stats region;
//   2. global safety — every ga/gw/gout access stays inside the declared
//      tensor extents (batch x rows x cols), including the zero-filled
//      fringe paths where the emitted offsets are min-clamped;
//   3. no overflow — offset/index arithmetic (evaluated in 128-bit with
//      saturation) cannot overflow the kernel's `long long` ("i64").
//
// Every emitted index expression is affine in the loop variables plus
// min-clamps, hence monotone in each variable separately — so interval
// extremes are attained at corners of the iteration box and corner
// evaluation is exact: zero false positives by construction, not by
// tolerance.  A statement sees loop `l` at its full extent iff `l` is a
// block loop, a tree ancestor, or one of a hoisted store's covered
// loops; otherwise the emitted variable is pinned to 0 (codegen resets
// i<l> after closing the loop).
//
// Violations carry a concrete witness: the block id, the per-loop index
// values, and the offending offset against its bound.  The jit consults
// verify_gate_error() before handing a kernel to the compiler
// (docs/verification.md; MCFUSER_VERIFY knob in docs/service.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/schedule.hpp"

namespace mcf {
namespace verify {

enum class ViolationKind : std::uint8_t {
  ScratchOverflow,    ///< arena/stats access outside the scratch allocation
  RegionAlias,        ///< access inside scratch but outside its own region
  GlobalOutOfBounds,  ///< ga/gw/gout access outside batch x rows x cols
  IndexOverflow,      ///< offset arithmetic overflows the kernel's i64
};

[[nodiscard]] const char* violation_kind_name(ViolationKind k) noexcept;

/// One proven-unsafe access, with a concrete witness point.
struct Violation {
  ViolationKind kind = ViolationKind::ScratchOverflow;
  std::string site;    ///< "load A", "compute op 0", "store C", ...
  std::string buffer;  ///< "arena:A", "stats:op0", "ga", "gw[1]", "gout"
  std::string access;  ///< "read" or "write"
  std::int64_t block = 0;             ///< witness thread-block id
  std::vector<std::int64_t> indices;  ///< witness loop index per loop id
  std::int64_t offset = 0;            ///< offending offset (floats)
  std::int64_t lo = 0;                ///< allowed range [lo, hi)
  std::int64_t hi = 0;
  std::string message;  ///< one-line human-readable statement

  [[nodiscard]] std::string to_json() const;
};

struct VerifyReport {
  /// False when the schedule never reached analysis (not lowerable);
  /// skip_reason says why.  A skipped schedule is neither safe nor
  /// unsafe — the lowering gates already reject it.
  bool checked = false;
  std::string skip_reason;
  std::int64_t n_blocks = 0;
  std::int64_t scratch_floats = 0;
  int sites_checked = 0;  ///< distinct (statement, buffer, access) sites
  std::vector<Violation> violations;

  [[nodiscard]] bool safe() const { return checked && violations.empty(); }
  [[nodiscard]] std::string to_json() const;
};

/// Proves the three safety properties for `s` or returns witnesses.
/// Pure analysis: nothing is executed or compiled.
[[nodiscard]] VerifyReport verify_schedule(const Schedule& s);

/// Gate policy: MCFUSER_VERIFY (unset -> on in debug builds, off in
/// NDEBUG builds; "0" -> off, anything else -> on).
[[nodiscard]] bool verify_enabled();

/// Prefix of every verifier-produced fail_reason; the measure backends
/// key the VerifyRejected failure kind off it.
inline constexpr const char* kGateErrorPrefix = "verify: ";

/// "" when `s` is safe (or not analyzable — the lowering gates own that
/// case); otherwise kGateErrorPrefix + the first violation's message.
[[nodiscard]] std::string verify_gate_error(const Schedule& s);

/// Per-statement activity mask, in statements_in_order() order: bit `l`
/// is set iff the emitted i<l> ranges over the full extent at that
/// statement (block loop or tree ancestor).  Shared with the mutation
/// corpus, which needs the same reachability facts to build mutants
/// that are unsafe by construction.
struct StmtContext {
  const Statement* stmt = nullptr;
  std::uint32_t active_mask = 0;
};
[[nodiscard]] std::vector<StmtContext> statement_contexts(const Schedule& s);

}  // namespace verify
}  // namespace mcf
