// Search-space generation (paper §III-A) and candidate materialisation.
//
// A candidate is (tiling expression, tile size per loop).  Tile options
// are multiples of 16 up to the dimension (tensor-core minimum), plus the
// dimension itself when it is not a multiple of 16 — reproducing the
// paper's candidate counting (e.g. 26 x ceil(1024/16)^2 x ceil(512/16)^2
// = 109,051,904 for the Fig. 7 example).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dag/schedule.hpp"
#include "ir/chain.hpp"
#include "ir/expr.hpp"
#include "search/prune.hpp"
#include "support/rng.hpp"

namespace mcf {

struct SpaceOptions {
  /// Disable flat tilings to reproduce Chimera's restricted space (§VI-A:
  /// MCFuser-Chimera).
  bool include_flat = true;
  bool include_deep = true;
  /// Tensor-core tile quantum.
  std::int64_t tile_quantum = 16;
};

/// One point of the search space.
struct CandidateConfig {
  int expr_id = -1;                      ///< index into SearchSpace::expressions()
  /// Per loop id.  Inline storage: candidates are copied on every
  /// mutation/selection step of the tuner, and chains have few loops.
  InlineVec<std::int64_t, 8> tiles;
};

/// Order-sensitive 64-bit identity of a candidate; the tuner's caches and
/// SearchSpace::contains key on it.
[[nodiscard]] inline std::uint64_t candidate_key(const CandidateConfig& c) {
  std::uint64_t h = splitmix64(static_cast<std::uint64_t>(c.expr_id) + 1);
  for (const auto t : c.tiles) h = hash_combine(h, static_cast<std::uint64_t>(t));
  return h;
}

/// The pruned, materialised search space for one chain on one GPU.
class SearchSpace {
 public:
  SearchSpace(const ChainSpec& chain, const SpaceOptions& space_opts,
              const PruneOptions& prune_opts,
              const ScheduleOptions& sched_opts = {});

  [[nodiscard]] const ChainSpec& chain() const noexcept { return *chain_; }
  /// Rule-1-deduplicated expressions.
  [[nodiscard]] const std::vector<TileExpr>& expressions() const noexcept { return exprs_; }
  /// Candidates surviving all enabled pruning rules.
  [[nodiscard]] const std::vector<CandidateConfig>& candidates() const noexcept { return candidates_; }
  /// Stage-by-stage candidate counts (paper Fig. 7).
  [[nodiscard]] const PruneFunnel& funnel() const noexcept { return funnel_; }
  /// Tile options per loop (after no pruning; rule 3 filters later).
  [[nodiscard]] const std::vector<std::vector<std::int64_t>>& tile_options() const noexcept { return options_; }
  /// Tile options per loop that pass Rule 3 (used by mutation).
  [[nodiscard]] const std::vector<std::vector<std::int64_t>>& tile_options_r3() const noexcept { return options_r3_; }
  [[nodiscard]] const ScheduleOptions& schedule_options() const noexcept { return sched_opts_; }

  /// Builds the schedule of a candidate (with this space's options).
  [[nodiscard]] Schedule schedule_for(const CandidateConfig& c) const;

  /// Re-applies rules 2-4 to an arbitrary config (used by mutation).
  [[nodiscard]] bool passes_rules(const CandidateConfig& c) const;

  /// Same checks on an already-built schedule — callers that need the
  /// schedule anyway (the tuner's evaluation pipeline) avoid rebuilding it.
  [[nodiscard]] bool passes_rules(const Schedule& s) const;

  /// O(1) rules verdict for grid points: every candidate the tuner can
  /// reach by mutation (tile steps within tile_options_r3, expression
  /// swaps) lies on the enumeration grid, and the grid was rule-checked
  /// exhaustively at construction — so membership in the surviving set IS
  /// the verdict, with no schedule build.  Exact for grid points; an
  /// off-grid config (never produced by the tuner) would need
  /// passes_rules().
  [[nodiscard]] bool contains(const CandidateConfig& c) const {
    return candidate_keys_.count(candidate_key(c)) != 0;
  }

 private:
  const ChainSpec* chain_;
  SpaceOptions space_opts_;
  PruneOptions prune_opts_;
  ScheduleOptions sched_opts_;
  std::vector<TileExpr> exprs_;
  std::vector<std::vector<std::int64_t>> options_;
  std::vector<std::vector<std::int64_t>> options_r3_;
  std::vector<CandidateConfig> candidates_;
  std::unordered_set<std::uint64_t> candidate_keys_;
  PruneFunnel funnel_;
};

/// Enumerates the tile options of one dimension.
[[nodiscard]] std::vector<std::int64_t> tile_options_for_dim(std::int64_t dim,
                                                             std::int64_t quantum);

}  // namespace mcf
