// Persistent tuning cache: tuned candidates keyed by (chain shape, GPU),
// serialised to a plain-text file so deployments skip re-tuning — the
// repo's analogue of TVM's tuning logs (and the practical complement of
// the paper's "rapid" claim: zero seconds is faster than 35).
//
// File format, one record per line:
//   <chain-key> <gpu-name> <expr-structure-key> <tile0,tile1,...> <time_s>
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gpu/spec.hpp"
#include "ir/chain.hpp"
#include "search/space.hpp"

namespace mcf {

/// Canonical shape key of a chain (name-independent: batch, dims,
/// epilogues).
[[nodiscard]] std::string chain_cache_key(const ChainSpec& chain);

/// One cached tuning result.
struct CachedSchedule {
  std::string expr_key;               ///< TileExpr::structure_key()
  std::vector<std::int64_t> tiles;
  double time_s = 0.0;
};

class TuningCache {
 public:
  TuningCache() = default;

  /// Loads records from `path`; returns false when the file is absent or
  /// malformed lines were skipped.
  bool load(const std::string& path);
  /// Writes all records to `path`.
  [[nodiscard]] bool save(const std::string& path) const;

  void put(const ChainSpec& chain, const GpuSpec& gpu, CachedSchedule entry);
  [[nodiscard]] std::optional<CachedSchedule> get(const ChainSpec& chain,
                                                  const GpuSpec& gpu) const;

  /// String-keyed record access for callers that manage their own chain
  /// keys (the CachingBackend memoizes per-candidate measurements with a
  /// composite key).  `chain_key` must contain no whitespace and no '|'
  /// or the record will not survive a save/load round trip.
  void put_raw(const std::string& chain_key, const std::string& gpu_name,
               CachedSchedule entry);
  [[nodiscard]] std::optional<CachedSchedule> get_raw(
      const std::string& chain_key, const std::string& gpu_name) const;

  /// Resolves a cached entry against a freshly built search space,
  /// returning the matching candidate when the entry is still valid
  /// (expression class present, tiles still on the rule-checked grid —
  /// SearchSpace::contains).
  [[nodiscard]] std::optional<CandidateConfig> resolve(
      const ChainSpec& chain, const GpuSpec& gpu,
      const SearchSpace& space) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::map<std::string, CachedSchedule> entries_;  ///< key: chain|gpu
};

}  // namespace mcf
