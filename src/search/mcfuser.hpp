// MCFuser facade — the classic single-chain entry point, now a thin
// synchronous wrapper over mcf::FusionEngine (engine/engine.hpp).
//
//   GpuSpec gpu = mcf::a100();
//   mcf::MCFuser fuser(gpu);
//   auto chain = mcf::ChainSpec::attention("bert_base", 12, 512, 512, 64, 64);
//   mcf::FusionResult r = fuser.fuse(chain);
//   // r.ok(): status == FusionStatus::Ok; r.kernel: compiled fused kernel.
//
// DEPRECATED for new code: prefer FusionEngine, which adds asynchronous
// submission (FusionTicket), graph-level batch fusion with digest dedup
// (fuse_graph), a shared tuning cache, and structured FusionStatus errors.
// This wrapper is kept because its results are pinned bit-identical to the
// pre-engine implementation (tests/engine/test_regression.cpp) — the
// migration table lives in docs/api.md.
//
// Variants (MCFuser-Chimera, no-unit-collapse, restricted spaces) are
// expressed through MCFuserOptions — the baselines use exactly this knob
// set, so every comparison in the paper maps to an options delta.
#pragma once

#include <memory>

#include "engine/engine.hpp"

namespace mcf {

/// Historic name; the engine option set is a strict superset of the old
/// MCFuserOptions (it adds `jobs` for async/graph work, which the
/// synchronous facade never uses).
using MCFuserOptions = FusionEngineOptions;

class MCFuser {
 public:
  explicit MCFuser(GpuSpec gpu, MCFuserOptions options = {});

  [[nodiscard]] const GpuSpec& gpu() const noexcept { return engine_->gpu(); }
  [[nodiscard]] const MCFuserOptions& options() const noexcept {
    return engine_->options();
  }
  /// The engine behind this facade (shared: outlives the wrapper).
  [[nodiscard]] const std::shared_ptr<FusionEngine>& engine() const noexcept {
    return engine_;
  }

  /// Generates + prunes the space, tunes, compiles the winner.
  [[nodiscard]] FusionResult fuse(const ChainSpec& chain) const;

  /// Like fuse(), but consults `cache` first (a valid hit skips tuning
  /// entirely — zero measurements) and records the winner on a miss.
  [[nodiscard]] FusionResult fuse_cached(const ChainSpec& chain,
                                         TuningCache& cache) const;

  /// Preset reproducing the paper's MCFuser-Chimera baseline: deep
  /// tilings only, no extent-1 hoisting (§VI-A "Comparisons").
  [[nodiscard]] static MCFuserOptions chimera_options();

 private:
  std::shared_ptr<FusionEngine> engine_;
};

}  // namespace mcf
