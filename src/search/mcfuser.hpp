// MCFuser facade — the library's primary public entry point.
//
//   GpuSpec gpu = mcf::a100();
//   mcf::MCFuser fuser(gpu);
//   auto chain = mcf::ChainSpec::attention("bert_base", 12, 512, 512, 64, 64);
//   mcf::FusionResult r = fuser.fuse(chain);
//   // r.kernel: compiled fused kernel; r.tuned: best candidate + stats.
//
// Variants (MCFuser-Chimera, no-unit-collapse, restricted spaces) are
// expressed through MCFuserOptions — the baselines use exactly this knob
// set, so every comparison in the paper maps to an options delta.
#pragma once

#include <optional>
#include <string>

#include "exec/program.hpp"
#include "search/space.hpp"
#include "search/tuner.hpp"
#include "search/tuning_cache.hpp"

namespace mcf {

struct MCFuserOptions {
  SpaceOptions space;
  PruneOptions prune;      ///< smem_limit_bytes is overwritten from the GPU
  ScheduleOptions sched;   ///< hoisting / unit-collapse flags
  TunerOptions tuner;
  /// Measurement backend by registry name ("sim", "interp", "cached-sim",
  /// see measure/backend.hpp).  Empty = tuner.backend if set, else the
  /// simulator.  Resolved against the GPU at MCFuser construction; an
  /// unknown name aborts with the registered names in the message.
  std::string backend;
};

/// Everything the fusion pass produces for one chain.
struct FusionResult {
  bool ok = false;
  TunedResult tuned;
  PruneFunnel funnel;
  std::size_t space_size = 0;
  /// Best fused kernel, compiled for the target GPU.
  std::optional<CompiledKernel> kernel;

  [[nodiscard]] double time_s() const { return tuned.best_time_s; }
};

class MCFuser {
 public:
  explicit MCFuser(GpuSpec gpu, MCFuserOptions options = {});

  [[nodiscard]] const GpuSpec& gpu() const noexcept { return gpu_; }
  [[nodiscard]] const MCFuserOptions& options() const noexcept { return options_; }

  /// Generates + prunes the space, tunes, compiles the winner.
  [[nodiscard]] FusionResult fuse(const ChainSpec& chain) const;

  /// Like fuse(), but consults `cache` first (a valid hit skips tuning
  /// entirely — zero measurements) and records the winner on a miss.
  [[nodiscard]] FusionResult fuse_cached(const ChainSpec& chain,
                                         TuningCache& cache) const;

  /// Preset reproducing the paper's MCFuser-Chimera baseline: deep
  /// tilings only, no extent-1 hoisting (§VI-A "Comparisons").
  [[nodiscard]] static MCFuserOptions chimera_options();

 private:
  GpuSpec gpu_;
  MCFuserOptions options_;
};

}  // namespace mcf
