#include "search/mcfuser.hpp"

namespace mcf {

MCFuser::MCFuser(GpuSpec gpu, MCFuserOptions options)
    : engine_(std::make_shared<FusionEngine>(std::move(gpu),
                                             std::move(options))) {}

FusionResult MCFuser::fuse(const ChainSpec& chain) const {
  return engine_->fuse(chain);
}

FusionResult MCFuser::fuse_cached(const ChainSpec& chain,
                                  TuningCache& cache) const {
  return engine_->fuse_cached(chain, cache);
}

MCFuserOptions MCFuser::chimera_options() {
  return FusionEngine::chimera_options();
}

}  // namespace mcf
