#include "search/mcfuser.hpp"

#include "measure/backend.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

MCFuser::MCFuser(GpuSpec gpu, MCFuserOptions options)
    : gpu_(std::move(gpu)), options_(std::move(options)) {
  options_.prune.smem_limit_bytes = gpu_.smem_per_block;
  if (!options_.backend.empty()) {
    options_.tuner.backend =
        BackendRegistry::instance().create(options_.backend, gpu_);
    if (options_.tuner.backend == nullptr) {
      std::string known;
      for (const auto& n : BackendRegistry::instance().names()) {
        known += (known.empty() ? "" : ", ") + n;
      }
      MCF_CHECK(false) << "unknown measure backend '" << options_.backend
                       << "' (registered: " << known << ")";
    }
  }
}

FusionResult MCFuser::fuse(const ChainSpec& chain) const {
  FusionResult result;
  SearchSpace space(chain, options_.space, options_.prune, options_.sched);
  result.funnel = space.funnel();
  result.space_size = space.candidates().size();
  if (space.candidates().empty()) {
    MCF_LOG(Warn) << "MCFuser: nothing to tune for " << chain.name();
    return result;
  }
  TunerOptions topts = options_.tuner;
  // Per-workload deterministic noise stream for simulated measurements.
  topts.measure.noise_seed =
      hash_combine(topts.measure.noise_seed, hash_string(chain.name()));
  Tuner tuner(space, gpu_, topts);
  result.tuned = tuner.run();
  if (!result.tuned.ok) return result;
  result.kernel.emplace(space.schedule_for(result.tuned.best), gpu_);
  if (!result.kernel->ok()) {
    MCF_LOG(Warn) << "MCFuser: winner failed to compile: "
                  << result.kernel->error();
    return result;
  }
  result.ok = true;
  return result;
}

FusionResult MCFuser::fuse_cached(const ChainSpec& chain,
                                  TuningCache& cache) const {
  SearchSpace space(chain, options_.space, options_.prune, options_.sched);
  if (const auto hit = cache.resolve(chain, gpu_, space)) {
    FusionResult result;
    result.funnel = space.funnel();
    result.space_size = space.candidates().size();
    result.kernel.emplace(space.schedule_for(*hit), gpu_);
    if (result.kernel->ok()) {
      const KernelMeasurement m = result.kernel->measure();
      result.tuned.ok = true;
      result.tuned.best = *hit;
      result.tuned.best_time_s = m.time_s;
      result.tuned.best_measurement = m;
      result.ok = true;
      MCF_LOG(Info) << "MCFuser: tuning-cache hit for " << chain.name();
      return result;
    }
    MCF_LOG(Warn) << "MCFuser: stale cache entry for " << chain.name()
                  << ", re-tuning";
  }
  FusionResult result = fuse(chain);
  if (result.ok) {
    CachedSchedule entry;
    entry.expr_key =
        SearchSpace(chain, options_.space, options_.prune, options_.sched)
            .expressions()[static_cast<std::size_t>(result.tuned.best.expr_id)]
            .structure_key();
    entry.tiles.assign(result.tuned.best.tiles.begin(),
                       result.tuned.best.tiles.end());
    entry.time_s = result.tuned.best_time_s;
    cache.put(chain, gpu_, std::move(entry));
  }
  return result;
}

MCFuserOptions MCFuser::chimera_options() {
  MCFuserOptions o;
  o.space.include_flat = false;       // nested block execution orders only
  o.sched.collapse_unit_loops = false;  // misses the extent-1 optimisation
  return o;
}

}  // namespace mcf
