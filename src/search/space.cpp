#include "search/space.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "gpu/smem.hpp"
#include "support/logging.hpp"

namespace mcf {

std::vector<std::int64_t> tile_options_for_dim(std::int64_t dim,
                                               std::int64_t quantum) {
  std::vector<std::int64_t> out;
  if (dim <= quantum) {
    out.push_back(dim);
    return out;
  }
  for (std::int64_t t = quantum; t <= dim; t += quantum) out.push_back(t);
  if (dim % quantum != 0) out.push_back(dim);  // exact-fit option
  return out;
}

SearchSpace::SearchSpace(const ChainSpec& chain, const SpaceOptions& space_opts,
                         const PruneOptions& prune_opts,
                         const ScheduleOptions& sched_opts)
    : chain_(&chain),
      space_opts_(space_opts),
      prune_opts_(prune_opts),
      sched_opts_(sched_opts) {
  // Invalid chains carry no derived metadata; callers that want a soft
  // failure (FusionStatus::InvalidChain) must check before building a
  // space — reaching this point with one is a programming error.
  MCF_CHECK(chain.valid()) << "SearchSpace on invalid chain '" << chain.name()
                           << "': " << chain.validation_error();
  // ---- raw expression universe --------------------------------------------
  RawExpressions raw = enumerate_expressions(chain);
  std::vector<TileExpr> all;
  if (space_opts_.include_deep) {
    all.insert(all.end(), raw.deep.begin(), raw.deep.end());
  }
  if (space_opts_.include_flat) {
    all.insert(all.end(), raw.flat.begin(), raw.flat.end());
  }
  funnel_.exprs_raw = all.size();

  // ---- tile options ---------------------------------------------------------
  options_.resize(static_cast<std::size_t>(chain.num_loops()));
  options_r3_.resize(static_cast<std::size_t>(chain.num_loops()));
  double combos_all = 1.0;
  for (int l = 0; l < chain.num_loops(); ++l) {
    options_[static_cast<std::size_t>(l)] =
        tile_options_for_dim(chain.loop_dim(l), space_opts_.tile_quantum);
    combos_all *= static_cast<double>(options_[static_cast<std::size_t>(l)].size());
    for (const auto t : options_[static_cast<std::size_t>(l)]) {
      if (!prune_opts_.rule3_padding ||
          tile_passes_padding_rule(chain.loop_dim(l), t,
                                   prune_opts_.rule3_max_pad_ratio)) {
        options_r3_[static_cast<std::size_t>(l)].push_back(t);
      }
    }
  }
  funnel_.original = static_cast<double>(all.size()) * combos_all;

  // ---- Rule 1: dedup by per-block sub-tiling expression ---------------------
  if (prune_opts_.rule1_dedup) {
    std::map<std::string, TileExpr> unique;
    for (const auto& e : all) unique.try_emplace(e.structure_key(), e);
    exprs_.clear();
    for (auto& [key, e] : unique) exprs_.push_back(std::move(e));
  } else {
    exprs_ = std::move(all);
  }
  funnel_.exprs_deduped = exprs_.size();
  funnel_.after_rule1 = static_cast<double>(exprs_.size()) * combos_all;

  // ---- Rule 2 (closed-form funnel count via critical loops) -----------------
  std::vector<std::vector<int>> critical(exprs_.size());
  double after2 = 0.0;
  for (std::size_t e = 0; e < exprs_.size(); ++e) {
    critical[e] = rule2_critical_loops(chain, exprs_[e], sched_opts_);
    double combos = 1.0;
    for (int l = 0; l < chain.num_loops(); ++l) {
      const auto& opts = options_[static_cast<std::size_t>(l)];
      if (prune_opts_.rule2_resident &&
          std::find(critical[e].begin(), critical[e].end(), l) != critical[e].end()) {
        // Only unit-extent tiles survive: tile >= dim.
        std::int64_t n_unit = 0;
        for (const auto t : opts) {
          if (t >= chain.loop_dim(l)) ++n_unit;
        }
        combos *= static_cast<double>(n_unit);
      } else {
        combos *= static_cast<double>(opts.size());
      }
    }
    after2 += combos;
  }
  funnel_.after_rule2 = prune_opts_.rule2_resident ? after2 : funnel_.after_rule1;

  // ---- Rule 3 (closed-form funnel count) ------------------------------------
  double after3 = 0.0;
  for (std::size_t e = 0; e < exprs_.size(); ++e) {
    double combos = 1.0;
    for (int l = 0; l < chain.num_loops(); ++l) {
      const auto& opts = prune_opts_.rule3_padding
                             ? options_r3_[static_cast<std::size_t>(l)]
                             : options_[static_cast<std::size_t>(l)];
      if (prune_opts_.rule2_resident &&
          std::find(critical[e].begin(), critical[e].end(), l) != critical[e].end()) {
        std::int64_t n_unit = 0;
        for (const auto t : opts) {
          if (t >= chain.loop_dim(l)) ++n_unit;
        }
        combos *= static_cast<double>(n_unit);
      } else {
        combos *= static_cast<double>(opts.size());
      }
    }
    after3 += combos;
  }
  funnel_.after_rule3 = after3;

  // ---- materialise candidates, applying exact rules 2 & 4 -------------------
  const int nl = chain.num_loops();
  std::vector<std::size_t> cursor(static_cast<std::size_t>(nl), 0);
  for (std::size_t e = 0; e < exprs_.size(); ++e) {
    std::fill(cursor.begin(), cursor.end(), 0);
    for (;;) {
      CandidateConfig c;
      c.expr_id = static_cast<int>(e);
      c.tiles.resize(static_cast<std::size_t>(nl));
      bool viable = true;
      for (int l = 0; l < nl; ++l) {
        const auto& opts = prune_opts_.rule3_padding
                               ? options_r3_[static_cast<std::size_t>(l)]
                               : options_[static_cast<std::size_t>(l)];
        if (opts.empty()) {
          viable = false;
          break;
        }
        c.tiles[static_cast<std::size_t>(l)] = opts[cursor[static_cast<std::size_t>(l)]];
      }
      if (viable && passes_rules(c)) candidates_.push_back(std::move(c));
      // Advance mixed-radix cursor.
      int l = 0;
      for (; l < nl; ++l) {
        const auto& opts = prune_opts_.rule3_padding
                               ? options_r3_[static_cast<std::size_t>(l)]
                               : options_[static_cast<std::size_t>(l)];
        cursor[static_cast<std::size_t>(l)] += 1;
        if (cursor[static_cast<std::size_t>(l)] < opts.size()) break;
        cursor[static_cast<std::size_t>(l)] = 0;
      }
      if (l == nl) break;
    }
  }
  candidate_keys_.reserve(candidates_.size());
  for (const auto& c : candidates_) candidate_keys_.insert(candidate_key(c));
  funnel_.after_rule4 = static_cast<double>(candidates_.size());
  MCF_LOG(Info) << chain.name() << ": search space " << funnel_.original
                << " -> " << candidates_.size() << " candidates ("
                << exprs_.size() << " expressions)";
}

Schedule SearchSpace::schedule_for(const CandidateConfig& c) const {
  MCF_CHECK(c.expr_id >= 0 && c.expr_id < static_cast<int>(exprs_.size()))
      << "bad expr id";
  return build_schedule(*chain_, exprs_[static_cast<std::size_t>(c.expr_id)],
                        c.tiles, sched_opts_);
}

bool SearchSpace::passes_rules(const CandidateConfig& c) const {
  return passes_rules(schedule_for(c));
}

bool SearchSpace::passes_rules(const Schedule& s) const {
  if (!s.valid()) return false;
  if (prune_opts_.rule2_resident && !schedule_passes_rule2(s, prune_opts_)) {
    return false;
  }
  if (!prune_opts_.rule2_resident && !s.consume_complete()) {
    // Even without Rule 2, partial-tile schedules are not executable by
    // the backend; keep them out of the tunable set.
    return false;
  }
  if (prune_opts_.rule4_smem && !schedule_passes_rule4(s, prune_opts_)) {
    return false;
  }
  return true;
}

}  // namespace mcf
