#include "search/prune.hpp"

#include <algorithm>

#include "gpu/smem.hpp"
#include "support/logging.hpp"

namespace mcf {

namespace {
bool is_power_of_two(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

bool tile_passes_padding_rule(std::int64_t dim, std::int64_t tile,
                              double max_pad_ratio) {
  const std::int64_t extent = (dim + tile - 1) / tile;
  const std::int64_t padded = extent * tile;
  if (padded == dim) return true;
  if (is_power_of_two(dim)) return false;  // paper: no padding for 2^k dims
  const double ratio = static_cast<double>(padded - dim) / static_cast<double>(dim);
  return ratio <= max_pad_ratio;
}

bool schedule_passes_rule2(const Schedule& s, const PruneOptions& opts) {
  if (!s.consume_complete()) return false;
  const double budget = opts.rule2_budget_fraction *
                        static_cast<double>(opts.smem_limit_bytes);
  for (int t = 0; t < s.chain().num_tensors(); ++t) {
    const auto kind = s.chain().tensor(t).kind;
    if (kind != TensorKind::Intermediate && kind != TensorKind::Output) continue;
    const double resident_bytes =
        static_cast<double>(s.resident_tiles()[static_cast<std::size_t>(t)]) *
        static_cast<double>(s.tile_elems(t)) * opts.dtype_bytes;
    if (resident_bytes > budget) return false;
  }
  return true;
}

bool schedule_passes_rule4(const Schedule& s, const PruneOptions& opts) {
  const std::int64_t est = smem_estimate(s, opts.dtype_bytes);
  return static_cast<double>(est) <=
         opts.rule4_slack * static_cast<double>(opts.smem_limit_bytes);
}

std::vector<int> rule2_critical_loops(const ChainSpec& chain,
                                      const TileExpr& expr,
                                      const ScheduleOptions& sched) {
  // Probe with tiles that force extent > 1 wherever the dimension allows
  // (half the dimension rounded to the quantum), revealing which loops
  // create residency / partial-tile structure.
  std::vector<std::int64_t> probe(static_cast<std::size_t>(chain.num_loops()));
  for (int l = 0; l < chain.num_loops(); ++l) {
    const std::int64_t dim = chain.loop_dim(l);
    std::int64_t t = std::max<std::int64_t>(16, (dim / 2) / 16 * 16);
    if (t >= dim) t = dim;
    probe[static_cast<std::size_t>(l)] = t;
  }
  const Schedule s = build_schedule(chain, expr, probe, sched);
  std::vector<int> critical;
  if (!s.valid()) return critical;

  // Producer reduction loops enclosing a consumer compute
  // (partial-tile consumption, the structural half of Rule 2).
  for (int op = 1; op < chain.num_ops(); ++op) {
    const int red = chain.reduction_loop(op - 1);
    int red_node = -1;
    int compute_node = -1;
    for (int i = 1; i < s.num_nodes(); ++i) {
      const auto& n = s.node(i);
      if (!n.is_stmt && n.loop == red) red_node = i;
      if (n.is_stmt && n.stmt.kind == StmtKind::Compute && n.stmt.op == op) {
        compute_node = i;
      }
    }
    if (red_node < 0 || compute_node < 0) continue;
    for (int cur = compute_node; cur != -1; cur = s.node(cur).parent) {
      if (cur == red_node) {
        critical.push_back(red);
        break;
      }
    }
  }
  std::sort(critical.begin(), critical.end());
  critical.erase(std::unique(critical.begin(), critical.end()), critical.end());
  return critical;
}

}  // namespace mcf
