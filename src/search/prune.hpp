// Pruning rules (paper §III-C).
//
//   Rule 1  Deduplication: expressions sharing the per-thread-block
//           sub-tiling expression (after blockIdx binding) are equivalent.
//   Rule 2  No overwhelmed intermediate storage: schedules that consume
//           partial tiles (Fig. 6(b)) are dropped, as are schedules whose
//           accumulated tensors keep so many resident tiles that they
//           alone exceed `rule2_budget_fraction` of shared memory.
//   Rule 3  Padding: tile sizes that pad a power-of-two dimension, or pad
//           any dimension by more than `rule3_max_pad_ratio`, are dropped.
//   Rule 4  Shared memory: eq. (1) estimate must stay below
//           `rule4_slack x` the per-block limit.
#pragma once

#include <cstdint>

#include "dag/schedule.hpp"

namespace mcf {

struct PruneOptions {
  bool rule1_dedup = true;
  bool rule2_resident = true;
  double rule2_budget_fraction = 1.0;
  bool rule3_padding = true;
  double rule3_max_pad_ratio = 0.05;
  bool rule4_smem = true;
  double rule4_slack = 1.2;
  std::int64_t smem_limit_bytes = 163 * 1024;  ///< from the target GpuSpec
  int dtype_bytes = 2;
};

/// Candidate counts after each cumulative rule (paper Fig. 7).  Doubles:
/// the original space routinely exceeds 10^8.
struct PruneFunnel {
  double original = 0.0;
  double after_rule1 = 0.0;
  double after_rule2 = 0.0;
  double after_rule3 = 0.0;
  double after_rule4 = 0.0;
  std::size_t exprs_raw = 0;
  std::size_t exprs_deduped = 0;
};

/// Rule-3 check for a single (dimension, tile) pair.
[[nodiscard]] bool tile_passes_padding_rule(std::int64_t dim, std::int64_t tile,
                                            double max_pad_ratio);

/// Rule-2 check on a built schedule (exact).
[[nodiscard]] bool schedule_passes_rule2(const Schedule& s,
                                         const PruneOptions& opts);

/// Rule-4 check: eq. (1) estimate against the slack-scaled limit.
[[nodiscard]] bool schedule_passes_rule4(const Schedule& s,
                                         const PruneOptions& opts);

/// Loops that must have extent 1 for the expression to pass Rule 2
/// (derived from a probe schedule with small tiles); used for fast
/// closed-form funnel counting.
[[nodiscard]] std::vector<int> rule2_critical_loops(const ChainSpec& chain,
                                                    const TileExpr& expr,
                                                    const ScheduleOptions& sched);

}  // namespace mcf
