#include "search/tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "measure/backend.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

namespace {

constexpr double kFailedTime = 1e9;
constexpr double kFailedThreshold = 1e8;

}  // namespace

Tuner::Tuner(const SearchSpace& space, GpuSpec gpu, TunerOptions options)
    : space_(space),
      gpu_(std::move(gpu)),
      opt_(options),
      model_(gpu_),
      backend_(options.backend ? options.backend
                               : std::make_shared<SimulatorBackend>(gpu_)),
      rng_(make_rng(options.seed)) {
  if (opt_.num_threads > 0) {
    own_pool_ = std::make_unique<ThreadPool>(
        static_cast<unsigned>(opt_.num_threads));
  }
  // One rehash up front instead of many mid-run (the cache grows to
  // roughly the number of distinct candidates the search visits).
  cache_.reserve(std::min<std::size_t>(space.candidates().size(), 8192));
}

ThreadPool& Tuner::pool() {
  return own_pool_ ? *own_pool_ : ThreadPool::global();
}

double Tuner::estimate(const CandidateConfig& c) {
  EvalEntry& e = cache_[candidate_key(c)];
  if (e.has_est) return e.est;
  if (!e.sched) e.sched.emplace(space_.schedule_for(c));
  ++stats_.estimates;
  if (opt_.progress) {
    opt_.progress->estimates.fetch_add(1, std::memory_order_relaxed);
  }
  e.est = model_.estimate(*e.sched).time_s;
  e.has_est = true;
  return e.est;
}

std::vector<double> Tuner::estimate_batch(std::span<const CandidateConfig> cs) {
  const std::size_t n = cs.size();
  std::vector<EvalEntry*> entries(n);
  std::vector<std::size_t> miss;  // first occurrence of each unestimated key
  {
    std::unordered_set<std::uint64_t> miss_keys;
    miss_keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = candidate_key(cs[i]);
      EvalEntry& e = cache_[key];
      entries[i] = &e;
      if (!e.has_est && miss_keys.insert(key).second) miss.push_back(i);
    }
  }
  // Parallel phase: pure per-candidate work (schedule build + volume
  // analysis) into distinct cache entries — the map itself is not mutated,
  // so no lock is needed and the outcome is thread-count independent.
  pool().parallel_for(static_cast<std::int64_t>(miss.size()), [&](std::int64_t j) {
    EvalEntry* e = entries[miss[static_cast<std::size_t>(j)]];
    if (!e->sched) {
      e->sched.emplace(
          space_.schedule_for(cs[miss[static_cast<std::size_t>(j)]]));
    }
  });
  std::vector<const Schedule*> scheds;
  scheds.reserve(miss.size());
  for (const std::size_t i : miss) scheds.push_back(&*entries[i]->sched);
  const std::vector<AnalyticalEstimate> ests =
      model_.estimate_batch(scheds, &pool());
  for (std::size_t j = 0; j < miss.size(); ++j) {
    EvalEntry* e = entries[miss[j]];
    e->est = ests[j].time_s;
    e->has_est = true;
  }
  stats_.estimates += static_cast<int>(miss.size());
  if (opt_.progress) {
    opt_.progress->estimates.fetch_add(static_cast<int>(miss.size()),
                                       std::memory_order_relaxed);
  }

  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = entries[i]->est;
  return out;
}

void Tuner::measure_batch(std::span<const CandidateConfig> cs,
                          std::span<const std::uint64_t> keys) {
  // Serial phase: resolve entries and dedup the not-yet-measured ones.
  std::vector<std::size_t> fresh;
  std::vector<EvalEntry*> fresh_entries;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EvalEntry& e = cache_[keys[i]];
    if (e.measured) continue;
    if (std::find(fresh_entries.begin(), fresh_entries.end(), &e) !=
        fresh_entries.end()) {
      continue;  // duplicate candidate in this wave
    }
    fresh.push_back(i);
    fresh_entries.push_back(&e);
  }
  // Parallel phase 1: make sure every wave member has its schedule built
  // (most were stashed by the estimate pass already).
  pool().parallel_for(static_cast<std::int64_t>(fresh.size()), [&](std::int64_t j) {
    EvalEntry* e = fresh_entries[static_cast<std::size_t>(j)];
    if (!e->sched) {
      e->sched.emplace(space_.schedule_for(cs[fresh[static_cast<std::size_t>(j)]]));
    }
  });
  // Batched backend preparation: one call per measurement wave, so a
  // compiling backend (jit) amortises the whole wave into a single
  // translation unit / compiler invocation.
  if (!fresh_entries.empty()) {
    std::vector<const Schedule*> wave_scheds;
    wave_scheds.reserve(fresh_entries.size());
    for (EvalEntry* e : fresh_entries) wave_scheds.push_back(&*e->sched);
    backend_->prepare_batch(wave_scheds, opt_.measure);
  }
  // Parallel phase 2: backends promise concurrency-safe measure(); each
  // wave member writes only its own cache entry.
  pool().parallel_for(static_cast<std::int64_t>(fresh.size()), [&](std::int64_t j) {
    EvalEntry* e = fresh_entries[static_cast<std::size_t>(j)];
    const KernelMeasurement m = backend_->measure(*e->sched, opt_.measure);
    e->meas_ok = m.ok;
    e->meas_time = m.ok ? m.time_s : kFailedTime;
    e->fail_note = m.ok ? std::string() : m.fail_reason;
    e->fail_kind = m.ok ? MeasureFailKind::None : m.fail_kind;
  });
  // Serial phase: commit in wave (= rank) order so stats and the Fig. 11
  // scatter data are identical for any thread count.
  for (EvalEntry* e : fresh_entries) {
    e->measured = true;
    ++stats_.measurements;
    if (!e->meas_ok) {
      ++stats_.compile_failures;
      const MeasureFailKind kind = e->fail_kind == MeasureFailKind::None
                                       ? MeasureFailKind::Generic
                                       : e->fail_kind;
      // Rank-upgrade: a worker crash/timeout anywhere in the run outranks
      // an (earlier-committed) generic failure — a gate-infeasible
      // candidate must not mask that the rest crashed sandbox workers.
      // A verifier rejection sits between the two: it is a property of
      // the schedule (like Generic) but names a proven safety bug, which
      // must not be buried under an ordinary infeasibility reason.
      const auto rank = [](MeasureFailKind k) {
        if (k == MeasureFailKind::WorkerCrashed ||
            k == MeasureFailKind::WorkerTimeout) {
          return 2;
        }
        return k == MeasureFailKind::VerifyRejected ? 1 : 0;
      };
      if (first_fail_reason_.empty() || rank(kind) > rank(first_fail_kind_)) {
        first_fail_reason_ =
            e->fail_note.empty() ? "measurement failed" : e->fail_note;
        first_fail_kind_ = kind;
      }
    } else {
      est_meas_.emplace_back(e->est, e->meas_time);
    }
  }
  if (opt_.progress) {
    opt_.progress->measurements.fetch_add(
        static_cast<int>(fresh_entries.size()), std::memory_order_relaxed);
  }
}

void Tuner::drop_stashed_schedules() {
  for (auto& [key, e] : cache_) e.sched.reset();
}

CandidateConfig Tuner::random_candidate() {
  const auto& cands = space_.candidates();
  MCF_CHECK(!cands.empty()) << "empty search space";
  std::uniform_int_distribution<std::size_t> pick(0, cands.size() - 1);
  return cands[pick(rng_)];
}

CandidateConfig Tuner::mutate(const CandidateConfig& parent) {
  const auto& chain = space_.chain();
  for (int attempt = 0; attempt < 8; ++attempt) {
    CandidateConfig c = parent;
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng_) < opt_.expr_mutation_prob &&
        space_.expressions().size() > 1) {
      std::uniform_int_distribution<int> pick(
          0, static_cast<int>(space_.expressions().size()) - 1);
      c.expr_id = pick(rng_);
    } else {
      // Move one loop's tile to a neighbouring option.
      std::uniform_int_distribution<int> pick_loop(0, chain.num_loops() - 1);
      const int l = pick_loop(rng_);
      const auto& opts = space_.tile_options_r3()[static_cast<std::size_t>(l)];
      if (opts.size() < 2) continue;
      const auto cur = std::find(opts.begin(), opts.end(),
                                 c.tiles[static_cast<std::size_t>(l)]);
      std::size_t idx = cur == opts.end()
                            ? 0
                            : static_cast<std::size_t>(cur - opts.begin());
      const bool up = coin(rng_) < 0.5;
      if (up && idx + 1 < opts.size()) ++idx;
      else if (!up && idx > 0) --idx;
      else continue;
      c.tiles[static_cast<std::size_t>(l)] = opts[idx];
    }
    // Rules verdict via grid membership — no schedule build (the schedule
    // is built once later, in the parallel estimate phase).
    if (space_.contains(c)) return c;
  }
  return random_candidate();
}

TunedResult Tuner::run() {
  const auto t_start = std::chrono::steady_clock::now();
  auto lap = [prev = t_start]() mutable {
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - prev).count();
    prev = now;
    return dt;
  };
  TunedResult result;
  auto cancelled = [&] {
    return opt_.progress && opt_.progress->cancel_requested();
  };
  // Every exit path reports the real wall-clock spent — failed and
  // cancelled runs burn time too, and the engine's tuning-economy
  // counters must not undercount exactly the expensive failures.
  auto stamp_wall = [&] {
    stats_.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t_start)
                              .count();
  };
  const auto& cands = space_.candidates();
  if (cands.empty()) {
    MCF_LOG(Warn) << "tuner: empty search space for " << space_.chain().name();
    result.fail_reason = "empty search space";
    stamp_wall();
    result.stats = stats_;
    return result;
  }
  if (cancelled()) {
    result.cancelled = true;
    result.fail_reason = "cancelled before tuning started";
    stamp_wall();
    result.stats = stats_;
    return result;
  }

  // Line 1: initial population — stratified by expression class (every
  // sub-tiling structure gets equal sampling density, so a restricted
  // subspace is never searched more densely than the full space), half
  // analytically screened, half random.  The oversampled draws are scored
  // in one parallel batch; ties break on draw order (seed-stable).
  const int n = std::min<int>(opt_.population, static_cast<int>(cands.size()));
  std::vector<CandidateConfig> population;
  // Estimates ride along with the population so survivors are never
  // re-scored: only fresh mutants (NaN slots) enter the next batch.
  constexpr double kUnscored = -1.0;
  std::vector<double> pop_est;
  {
    std::vector<std::vector<std::size_t>> by_expr(space_.expressions().size());
    for (std::size_t i = 0; i < cands.size(); ++i) {
      by_expr[static_cast<std::size_t>(cands[i].expr_id)].push_back(i);
    }
    std::size_t nonempty = 0;
    for (const auto& b : by_expr) nonempty += b.empty() ? 0 : 1;
    const int quota = std::max(1, n / 2 / std::max<int>(1, static_cast<int>(nonempty)));
    // Serial RNG draws (bucket boundaries recorded), one batched scoring.
    std::vector<CandidateConfig> draws;
    std::vector<std::size_t> bucket_begin;
    for (const auto& bucket : by_expr) {
      if (bucket.empty()) continue;
      bucket_begin.push_back(draws.size());
      std::uniform_int_distribution<std::size_t> pick(0, bucket.size() - 1);
      const int oversample =
          std::min<int>(8 * quota, static_cast<int>(bucket.size()));
      for (int i = 0; i < oversample; ++i) {
        draws.push_back(cands[bucket[pick(rng_)]]);
      }
    }
    bucket_begin.push_back(draws.size());
    const std::vector<double> draw_est = estimate_batch(draws);
    population.reserve(static_cast<std::size_t>(n));
    for (std::size_t b = 0; b + 1 < bucket_begin.size(); ++b) {
      std::vector<std::pair<double, std::size_t>> local;
      local.reserve(bucket_begin[b + 1] - bucket_begin[b]);
      for (std::size_t i = bucket_begin[b]; i < bucket_begin[b + 1]; ++i) {
        local.emplace_back(draw_est[i], i);
      }
      std::sort(local.begin(), local.end());
      for (int i = 0; i < quota && i < static_cast<int>(local.size()); ++i) {
        if (static_cast<int>(population.size()) >= n) break;
        population.push_back(draws[local[static_cast<std::size_t>(i)].second]);
        pop_est.push_back(local[static_cast<std::size_t>(i)].first);
      }
    }
    while (static_cast<int>(population.size()) < n) {
      population.push_back(random_candidate());
      pop_est.push_back(kUnscored);
    }
  }
  stats_.seed_seconds += lap();

  double best_t = kFailedTime;
  CandidateConfig best_cand;
  KernelMeasurement best_meas;

  // Hoisted per-generation working vectors (reserved once).
  std::vector<std::pair<double, std::size_t>> scored;
  std::vector<double> weights;
  scored.reserve(population.size());
  weights.reserve(population.size());

  for (int gen = 0; gen < opt_.max_generations; ++gen) {
    if (cancelled()) {
      result.cancelled = true;
      result.fail_reason = "cancelled during generation " +
                           std::to_string(stats_.generations);
      stamp_wall();
      result.stats = stats_;
      return result;
    }
    ++stats_.generations;
    if (opt_.progress) {
      opt_.progress->generations.fetch_add(1, std::memory_order_relaxed);
    }
    // Lines 5-6: estimate the whole population in one parallel batch and
    // sort by the analytical model; equal estimates keep population order
    // (index tie-break), so the ranking is thread-count independent.
    (void)lap();
    {
      // Batch-score only the unscored slots (fresh mutants / randoms).
      std::vector<CandidateConfig> need_cs;
      std::vector<std::size_t> need_idx;
      for (std::size_t i = 0; i < population.size(); ++i) {
        if (pop_est[i] == kUnscored) {
          need_cs.push_back(population[i]);
          need_idx.push_back(i);
        }
      }
      const std::vector<double> need_est = estimate_batch(need_cs);
      for (std::size_t j = 0; j < need_idx.size(); ++j) {
        pop_est[need_idx[j]] = need_est[j];
      }
    }
    scored.clear();
    for (std::size_t i = 0; i < population.size(); ++i) {
      scored.emplace_back(pop_est[i], i);
    }
    std::sort(scored.begin(), scored.end());
    stats_.estimate_seconds += lap();

    // Lines 7-9: measure the top-k in concurrent waves, tracking the
    // generation's best.  Known lowering failures (the paper's
    // quadrant-II candidates, rejected during PTX compilation) don't use
    // up top-k slots: the selection walks further down the analytical
    // ranking.  Results are committed in rank order, so the outcome
    // matches a serial walk measuring one candidate at a time (modulo a
    // few extra cached measurements at the wave tail).
    double top1_t = kFailedTime;
    CandidateConfig top1_cand;
    const int k = std::min<int>(opt_.topk, static_cast<int>(scored.size()));
    int taken = 0;
    const std::size_t attempt_cap =
        std::min<std::size_t>(scored.size(), 4u * static_cast<std::size_t>(k));
    // Every ranked candidate is queued — cached or fresh — and committed
    // strictly in rank order at flush time; only the fresh queue members
    // actually hit the simulator (concurrently).  A flush fires as soon
    // as the queue *could* fill the remaining top-k slots (queued cached
    // successes count toward that), and unconditionally at the end — so
    // the set of candidates measured is exactly the prefix a serial walk
    // measuring one candidate at a time would have measured.
    std::vector<std::size_t> wave;  // queued positions, in rank order
    std::vector<CandidateConfig> wave_cs;
    std::vector<std::uint64_t> wave_keys;
    int wave_fresh = 0;      // queued, needs measuring
    int wave_cached_ok = 0;  // queued, already measured, takes a slot
    auto flush = [&] {
      if (wave.empty()) return;
      measure_batch(wave_cs, wave_keys);
      for (std::size_t idx = 0; idx < wave.size(); ++idx) {
        const EvalEntry& e = cache_[wave_keys[idx]];
        if (e.meas_time >= kFailedThreshold) continue;  // failure: no slot
        ++taken;
        if (e.meas_time < top1_t) {
          top1_t = e.meas_time;
          top1_cand = population[scored[wave[idx]].second];
        }
      }
      wave.clear();
      wave_cs.clear();
      wave_keys.clear();
      wave_fresh = 0;
      wave_cached_ok = 0;
    };
    for (std::size_t pos = 0; pos < attempt_cap && taken < k; ++pos) {
      const CandidateConfig& c = population[scored[pos].second];
      const std::uint64_t key = candidate_key(c);
      const EvalEntry& e = cache_[key];
      wave.push_back(pos);
      wave_cs.push_back(c);
      wave_keys.push_back(key);
      if (!e.measured) {
        ++wave_fresh;
      } else if (e.meas_time < kFailedThreshold) {
        ++wave_cached_ok;
      }
      if (wave_fresh >= k - taken - wave_cached_ok) flush();
    }
    flush();
    stats_.measure_seconds += lap();

    // Lines 10-12: convergence — stop once a generation's best measured
    // candidate no longer improves the incumbent by more than epsilon.
    const double improvement = (best_t - top1_t) / std::max(best_t, 1e-12);
    if (top1_t < best_t) {
      best_t = top1_t;
      best_cand = top1_cand;
    }
    if (best_t < kFailedThreshold && gen + 1 >= opt_.min_generations &&
        improvement < opt_.epsilon) {
      break;
    }

    // Line 17: next population, fitness-weighted mutation with elitism
    // (the incumbent always survives so the search can refine around it).
    // Schedules stashed for this generation are dropped first: mutation
    // refills the stash with next generation's children.
    drop_stashed_schedules();
    weights.clear();
    for (const auto& [est_t, idx] : scored) {
      weights.push_back(1.0 / std::max(est_t, 1e-12));
    }
    // scored is sorted by estimate; the weight list is aligned with it.
    std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());
    std::vector<CandidateConfig> next;
    std::vector<double> next_est;
    next.reserve(population.size());
    next_est.reserve(population.size());
    if (best_t < kFailedThreshold) {
      next.push_back(best_cand);
      next_est.push_back(estimate(best_cand));
      next.push_back(mutate(best_cand));
      next_est.push_back(kUnscored);
    }
    while (next.size() < population.size()) {
      const auto& parent = population[scored[pick(rng_)].second];
      next.push_back(mutate(parent));
      next_est.push_back(kUnscored);
    }
    population = std::move(next);
    pop_est = std::move(next_est);
    stats_.mutate_seconds += lap();
  }

  // Refinement: hill-climb over the single-step tile neighbours of the
  // winner (estimate-filtered, measuring only promising moves).
  if (best_t < kFailedThreshold) {
    bool improved = true;
    int refine_rounds = 0;
    while (improved && refine_rounds++ < 4) {
      // Refinement is part of tuning: a cancel here reports Cancelled
      // rather than returning a silently-truncated (timing-dependent)
      // refinement as Ok.
      if (cancelled()) {
        result.cancelled = true;
        result.fail_reason = "cancelled during refinement";
        stamp_wall();
        result.stats = stats_;
        return result;
      }
      improved = false;
      const CandidateConfig base = best_cand;
      const double base_est = estimate(base);  // hoisted out of the move loop
      std::vector<CandidateConfig> moves;
      // Expression sweep: the winner's tiles under every other structure.
      for (int e = 0; e < static_cast<int>(space_.expressions().size()); ++e) {
        if (e == base.expr_id) continue;
        CandidateConfig c = base;
        c.expr_id = e;
        moves.push_back(std::move(c));
      }
      // Single-step tile moves.
      for (int l = 0; l < space_.chain().num_loops(); ++l) {
        const auto& opts = space_.tile_options_r3()[static_cast<std::size_t>(l)];
        const auto cur = std::find(opts.begin(), opts.end(),
                                   base.tiles[static_cast<std::size_t>(l)]);
        if (cur == opts.end()) continue;
        const std::size_t idx = static_cast<std::size_t>(cur - opts.begin());
        for (const int dir : {-1, +1}) {
          if ((dir < 0 && idx == 0) || (dir > 0 && idx + 1 >= opts.size())) continue;
          CandidateConfig c = base;
          c.tiles[static_cast<std::size_t>(l)] = opts[idx + static_cast<std::size_t>(dir)];
          moves.push_back(std::move(c));
        }
      }
      // Rules, estimates, then one concurrent measurement wave over the
      // promising moves; folding in move order keeps the outcome
      // deterministic for any thread count.
      std::vector<CandidateConfig> promising;
      std::vector<std::uint64_t> promising_keys;
      for (auto& c : moves) {
        if (!space_.contains(c)) continue;
        if (estimate(c) > 1.2 * base_est) continue;  // clearly worse
        promising_keys.push_back(candidate_key(c));
        promising.push_back(std::move(c));
      }
      measure_batch(promising, promising_keys);
      for (std::size_t i = 0; i < promising.size(); ++i) {
        const EvalEntry& e = cache_[promising_keys[i]];
        if (e.meas_time < best_t) {
          best_t = e.meas_time;
          best_cand = promising[i];
          improved = true;
        }
      }
      drop_stashed_schedules();
    }
  }

  if (best_t >= kFailedThreshold) {
    MCF_LOG(Warn) << "tuner: no measurable candidate for "
                  << space_.chain().name();
    result.fail_reason = first_fail_reason_.empty()
                             ? "no candidate measured successfully"
                             : "no candidate measured successfully (first "
                               "failure: " + first_fail_reason_ + ")";
    result.fail_kind = first_fail_kind_;
    stamp_wall();
    result.stats = stats_;
    return result;
  }
  // Re-measure the winner to fill the full measurement record.
  const Schedule s = space_.schedule_for(best_cand);
  best_meas = backend_->measure(s, opt_.measure);

  // Thread co-tuning: sweep the WINNING schedule over the candidate
  // execution thread counts (MeasureOptions::exec_threads), keeping the
  // argmin with ties toward fewer threads.  Post-convergence on purpose:
  // the tile search above is untouched (empty candidate list = zero
  // behaviour change, pinned by the golden tuner tests), and only the
  // one winner pays the extra measurements.
  int best_threads = 0;
  for (const int t : opt_.exec_thread_candidates) {
    if (t <= 0) continue;
    if (cancelled()) break;  // keep the converged winner; sweep is a bonus
    MeasureOptions mo = opt_.measure;
    mo.exec_threads = t;
    const KernelMeasurement tm = backend_->measure(s, mo);
    ++stats_.measurements;
    if (opt_.progress) {
      opt_.progress->measurements.fetch_add(1, std::memory_order_relaxed);
    }
    if (tm.ok && tm.time_s < best_meas.time_s) {
      best_meas = tm;
      best_t = tm.time_s;
      best_threads = t;
    }
  }
  drop_stashed_schedules();

  result.ok = true;
  result.best = best_cand;
  result.best_time_s = best_t;
  result.best_measurement = best_meas;
  result.best_threads = best_threads;
  stamp_wall();
  result.stats = stats_;
  result.est_vs_measured = std::move(est_meas_);
  return result;
}

}  // namespace mcf
