#include "search/tuning_cache.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/logging.hpp"

namespace mcf {

std::string chain_cache_key(const ChainSpec& chain) {
  std::ostringstream os;
  os << "b" << chain.batch() << "m" << chain.m();
  for (const auto d : chain.inner()) os << "x" << d;
  bool has_softmax = false;
  for (int op = 0; op < chain.num_ops(); ++op) {
    os << ":" << epilogue_name(chain.epilogue(op));
    has_softmax |= chain.epilogue(op) == Epilogue::OnlineSoftmax;
  }
  // The softmax scale changes the computed kernel, so same-shape chains
  // with different scales must not share a cache entry or dedup digest.
  // Appended only for softmax chains, keeping every other key unchanged;
  // %.9g round-trips floats exactly and contains no whitespace or '|'.
  if (has_softmax) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ":s%.9g",
                  static_cast<double>(chain.softmax_scale()));
    os << buf;
  }
  return os.str();
}

namespace {
std::string record_key(const ChainSpec& chain, const GpuSpec& gpu) {
  return chain_cache_key(chain) + "|" + gpu.name;
}
}  // namespace

bool TuningCache::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) return false;
  bool clean = true;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream is(line);
    std::string chain_key;
    std::string gpu_name;
    CachedSchedule entry;
    std::string tiles;
    if (!(is >> chain_key >> gpu_name >> entry.expr_key >> tiles >>
          entry.time_s)) {
      clean = false;
      continue;
    }
    std::istringstream ts(tiles);
    std::string tok;
    bool tiles_ok = true;
    while (std::getline(ts, tok, ',')) {
      std::size_t used = 0;
      std::int64_t value = 0;
      try {
        value = std::stoll(tok, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != tok.size() || tok.empty()) {
        tiles_ok = false;  // non-numeric tile token: skip the whole line
        break;
      }
      entry.tiles.push_back(value);
    }
    if (!tiles_ok) {
      clean = false;
      continue;
    }
    entries_[chain_key + "|" + gpu_name] = std::move(entry);
  }
  return clean;
}

bool TuningCache::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  // max_digits10: times round-trip bit-exactly through the text format
  // (the golden round-trip test pins this).
  f << std::setprecision(std::numeric_limits<double>::max_digits10);
  f << "# mcfuser tuning cache: chain gpu expr tiles time_s\n";
  for (const auto& [key, entry] : entries_) {
    const auto sep = key.find('|');
    f << key.substr(0, sep) << " " << key.substr(sep + 1) << " "
      << entry.expr_key << " ";
    for (std::size_t i = 0; i < entry.tiles.size(); ++i) {
      if (i) f << ",";
      f << entry.tiles[i];
    }
    f << " " << entry.time_s << "\n";
  }
  return static_cast<bool>(f);
}

void TuningCache::put(const ChainSpec& chain, const GpuSpec& gpu,
                      CachedSchedule entry) {
  entries_[record_key(chain, gpu)] = std::move(entry);
}

void TuningCache::put_raw(const std::string& chain_key,
                          const std::string& gpu_name, CachedSchedule entry) {
  entries_[chain_key + "|" + gpu_name] = std::move(entry);
}

std::optional<CachedSchedule> TuningCache::get_raw(
    const std::string& chain_key, const std::string& gpu_name) const {
  const auto it = entries_.find(chain_key + "|" + gpu_name);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<CachedSchedule> TuningCache::get(const ChainSpec& chain,
                                               const GpuSpec& gpu) const {
  const auto it = entries_.find(record_key(chain, gpu));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<CandidateConfig> TuningCache::resolve(
    const ChainSpec& chain, const GpuSpec& gpu,
    const SearchSpace& space) const {
  const auto entry = get(chain, gpu);
  if (!entry) return std::nullopt;
  for (int e = 0; e < static_cast<int>(space.expressions().size()); ++e) {
    if (space.expressions()[static_cast<std::size_t>(e)].structure_key() !=
        entry->expr_key) {
      continue;
    }
    CandidateConfig c;
    c.expr_id = e;
    c.tiles.assign(entry->tiles.begin(), entry->tiles.end());
    if (static_cast<int>(c.tiles.size()) != chain.num_loops()) return std::nullopt;
    // Grid membership, not passes_rules: every entry this cache records
    // came off the enumeration grid, so a miss means the space's rules or
    // options changed under the entry — reject it and re-tune.
    if (!space.contains(c)) return std::nullopt;
    return c;
  }
  return std::nullopt;
}

}  // namespace mcf
