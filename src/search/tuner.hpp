// Heuristic exploration (paper §IV-B, Algorithm 1).
//
// Evolutionary search seeded from the pruned space: every generation is
// scored with the *analytical* model (no training), only the top-k are
// "measured" on the (simulated) hardware, and the loop stops on its own
// once the best measured time converges — the paper's two improvements
// over Ansor's tuner.
//
// Evaluation pipeline: candidates flow through rules -> estimate ->
// measure with the Schedule built at most once per candidate (the rules
// check stashes it for the later stages), population estimates fan out
// across a thread pool (the analytical model is pure), and top-k
// measurements run in concurrent waves.  All selection decisions are made
// on deterministically ordered data with index tie-breaking, so for a
// fixed seed the result is identical no matter how many threads run the
// evaluation.
//
// Measurements go through a pluggable MeasureBackend
// (TunerOptions::backend, measure/backend.hpp): the default simulator,
// the CPU interpreter, a caching decorator, or a future hardware backend
// all drive the identical search loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gpu/timing.hpp"
#include "model/analytical.hpp"
#include "search/space.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace mcf {

class MeasureBackend;

/// Live view into a running tuning job, shared between the tuner and an
/// observer (FusionTicket::progress feeds from it).  Counters mirror
/// TuningStats but are updated as the search runs; `cancel` is checked at
/// every generation boundary, so a cancelled run stops within one
/// generation.  Pure observation: attaching a sink never changes the
/// search trajectory.
struct TuningProgress {
  std::atomic<int> generations{0};
  std::atomic<int> estimates{0};
  std::atomic<int> measurements{0};
  std::atomic<bool> cancel{false};

  void request_cancel() noexcept { cancel.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel.load(std::memory_order_relaxed);
  }
};

struct TunerOptions {
  int population = 256;          ///< N in Algorithm 1
  int topk = 8;                  ///< n in Algorithm 1 (paper §VI-E2)
  double epsilon = 0.004;        ///< relative convergence gap
  int min_generations = 3;       ///< never converge before this
  int max_generations = 24;      ///< safety stop
  std::uint64_t seed = 42;
  double expr_mutation_prob = 0.15;  ///< chance to mutate the expression
  MeasureOptions measure;        ///< simulator options (noise seed etc.)
  /// Threads for batched candidate evaluation: 0 = the process-wide pool
  /// (MCF_NUM_THREADS / hardware concurrency), n > 0 = a private pool of
  /// n workers (1 = fully serial).  The tuned result is identical for any
  /// value — only wall-clock changes.
  int num_threads = 0;
  /// How candidates are measured (measure/backend.hpp).  Null = a
  /// SimulatorBackend on the tuner's GPU — bit-for-bit the pre-subsystem
  /// behaviour (pinned by tests/search/test_tuner.cpp).  The backend's
  /// measure() must be safe to call from the evaluation thread pool.
  std::shared_ptr<MeasureBackend> backend;
  /// Optional live progress/cancellation channel (see TuningProgress).
  /// Null = no observation.  Never affects the tuned result.
  std::shared_ptr<TuningProgress> progress;
  /// Execution thread counts to co-tune with the tiles (wall-clock
  /// backends only — each candidate count re-measures the WINNING
  /// schedule with MeasureOptions::exec_threads set; argmin wins, ties
  /// break toward fewer threads).  Empty = off: the search is unchanged
  /// and TunedResult::best_threads stays 0, which keeps the seeded
  /// golden results bit-identical.  Runs after convergence, so the
  /// choice of tiles never depends on the thread sweep.
  std::vector<int> exec_thread_candidates;
};

/// Counters for Table IV's tuning-time modelling.
struct TuningStats {
  int generations = 0;
  int estimates = 0;        ///< analytical-model invocations
  int measurements = 0;     ///< simulated hardware measurements (compile+run)
  int compile_failures = 0; ///< candidates rejected at lowering
  double wall_seconds = 0.0;
  // Phase breakdown of wall_seconds (throughput observability).
  double seed_seconds = 0.0;      ///< initial population sampling + scoring
  double estimate_seconds = 0.0;  ///< generational batch estimation
  double measure_seconds = 0.0;   ///< top-k + refinement measurement waves
  double mutate_seconds = 0.0;    ///< mutation / next-population assembly
};

struct TunedResult {
  bool ok = false;
  /// On ok=false: the kind of the dominant measurement failure.  Worker
  /// crash/timeout kinds outrank Generic — a wave where one candidate
  /// failed the lowering gate and the rest crashed sandbox workers must
  /// surface as a crash, not as the (earlier-committed) gate failure.
  MeasureFailKind fail_kind = MeasureFailKind::None;
  /// True when the run stopped because TuningProgress::cancel was set.
  bool cancelled = false;
  /// On ok=false: why — the first measurement failure reason observed, or
  /// a summary ("empty search space", "cancelled", ...).
  std::string fail_reason;
  CandidateConfig best;
  double best_time_s = 0.0;
  KernelMeasurement best_measurement;
  /// Winning execution thread count from the post-convergence sweep over
  /// TunerOptions::exec_thread_candidates; 0 when the sweep is off (the
  /// backend then uses its default fan-out).
  int best_threads = 0;
  TuningStats stats;
  /// (analytical estimate, simulated measurement) for every measured
  /// candidate — the paper's Fig. 11 data.
  std::vector<std::pair<double, double>> est_vs_measured;
};

class Tuner {
 public:
  Tuner(const SearchSpace& space, GpuSpec gpu, TunerOptions options = {});

  [[nodiscard]] TunedResult run();

 private:
  /// Everything the pipeline knows about one candidate, keyed by its
  /// config hash.  The stashed schedule is dropped once a generation
  /// completes (memory stays bounded by the generation working set);
  /// estimates and measurements are kept for the whole run so repeated
  /// mutants cost a hash lookup instead of a schedule build.
  struct EvalEntry {
    bool has_est = false;
    bool measured = false;
    bool meas_ok = false;
    double est = 0.0;
    double meas_time = 1e9;
    std::string fail_note;          ///< backend fail_reason when !meas_ok
    MeasureFailKind fail_kind = MeasureFailKind::None;  ///< when !meas_ok
    std::optional<Schedule> sched;  ///< built at most once
  };

  [[nodiscard]] ThreadPool& pool();
  /// Single-candidate estimate (refinement path); cached.
  [[nodiscard]] double estimate(const CandidateConfig& c);
  /// Batch estimate: schedules built in parallel for cache misses, then
  /// one AnalyticalModel::estimate_batch sweep.  Result order matches the
  /// input order for any thread count.
  [[nodiscard]] std::vector<double> estimate_batch(
      std::span<const CandidateConfig> cs);
  /// Measures every not-yet-measured candidate in `keys` concurrently
  /// (each exactly once) and updates stats.  Entries must have estimates.
  void measure_batch(std::span<const CandidateConfig> cs,
                     std::span<const std::uint64_t> keys);
  /// Drops all stashed schedules (end-of-generation memory sweep).
  void drop_stashed_schedules();

  [[nodiscard]] CandidateConfig random_candidate();
  [[nodiscard]] CandidateConfig mutate(const CandidateConfig& parent);

  const SearchSpace& space_;
  GpuSpec gpu_;
  TunerOptions opt_;
  AnalyticalModel model_;
  std::shared_ptr<MeasureBackend> backend_;
  Rng rng_;
  TuningStats stats_;
  std::unique_ptr<ThreadPool> own_pool_;  ///< when opt_.num_threads > 0
  std::unordered_map<std::uint64_t, EvalEntry> cache_;
  std::vector<std::pair<double, double>> est_meas_;
  std::string first_fail_reason_;  ///< earliest measurement failure (commit order)
  /// Kind paired with first_fail_reason_, except that worker crash /
  /// timeout kinds upgrade over an earlier Generic (see TunedResult).
  MeasureFailKind first_fail_kind_ = MeasureFailKind::None;
};

}  // namespace mcf
