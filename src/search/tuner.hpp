// Heuristic exploration (paper §IV-B, Algorithm 1).
//
// Evolutionary search seeded from the pruned space: every generation is
// scored with the *analytical* model (no training), only the top-k are
// "measured" on the (simulated) hardware, and the loop stops on its own
// once the best measured time converges — the paper's two improvements
// over Ansor's tuner.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "gpu/timing.hpp"
#include "model/analytical.hpp"
#include "search/space.hpp"
#include "support/rng.hpp"

namespace mcf {

struct TunerOptions {
  int population = 256;          ///< N in Algorithm 1
  int topk = 8;                  ///< n in Algorithm 1 (paper §VI-E2)
  double epsilon = 0.004;        ///< relative convergence gap
  int min_generations = 3;       ///< never converge before this
  int max_generations = 24;      ///< safety stop
  std::uint64_t seed = 42;
  double expr_mutation_prob = 0.15;  ///< chance to mutate the expression
  MeasureOptions measure;        ///< simulator options (noise seed etc.)
};

/// Counters for Table IV's tuning-time modelling.
struct TuningStats {
  int generations = 0;
  int estimates = 0;        ///< analytical-model invocations
  int measurements = 0;     ///< simulated hardware measurements (compile+run)
  int compile_failures = 0; ///< candidates rejected at lowering
  double wall_seconds = 0.0;
};

struct TunedResult {
  bool ok = false;
  CandidateConfig best;
  double best_time_s = 0.0;
  KernelMeasurement best_measurement;
  TuningStats stats;
  /// (analytical estimate, simulated measurement) for every measured
  /// candidate — the paper's Fig. 11 data.
  std::vector<std::pair<double, double>> est_vs_measured;
};

class Tuner {
 public:
  Tuner(const SearchSpace& space, GpuSpec gpu, TunerOptions options = {});

  [[nodiscard]] TunedResult run();

 private:
  [[nodiscard]] double estimate(const CandidateConfig& c);
  /// Returns the measured time or nullopt on compile failure.
  [[nodiscard]] std::optional<double> measure(const CandidateConfig& c);
  [[nodiscard]] CandidateConfig random_candidate();
  [[nodiscard]] CandidateConfig mutate(const CandidateConfig& parent);

  const SearchSpace& space_;
  GpuSpec gpu_;
  TunerOptions opt_;
  AnalyticalModel model_;
  TimingSimulator sim_;
  Rng rng_;
  TuningStats stats_;
  std::map<std::uint64_t, double> est_cache_;
  std::vector<std::pair<double, double>> est_meas_;
};

}  // namespace mcf
