// Deterministic GPU timing simulator — the repo's stand-in for "running
// the kernel on hardware" (DESIGN.md §2).
//
// It consumes the exact static volumes of a Schedule (dag/volume) and the
// actual shared-memory plan (gpu/smem) and models:
//   * bandwidth efficiency as a function of transaction row length,
//   * tensor-core efficiency as a function of tile shape,
//   * imperfect memory/compute overlap,
//   * occupancy (shared-memory-limited blocks/SM), wave quantization and
//     DRAM-saturation effects of low block counts,
//   * per-statement issue overhead and kernel launch overhead,
//   * a small deterministic "measurement noise" term.
//
// The *analytical* model of the paper (model/analytical.cpp) deliberately
// ignores most of these effects — the gap between the two is what Fig. 11
// measures.
#pragma once

#include <cstdint>
#include <string>

#include "dag/schedule.hpp"
#include "dag/volume.hpp"
#include "gpu/smem.hpp"
#include "gpu/spec.hpp"
// MeasureOptions / KernelMeasurement moved to measure/measurement.hpp when
// measurement became a pluggable subsystem (measure/backend.hpp); the
// include keeps every pre-existing `#include "gpu/timing.hpp"` compiling.
#include "measure/measurement.hpp"

namespace mcf {

/// Stateless simulator bound to one GPU spec.
class TimingSimulator {
 public:
  explicit TimingSimulator(GpuSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const GpuSpec& spec() const noexcept { return spec_; }

  /// "Runs" a fused-kernel schedule.  Fails (ok=false) when the actual
  /// shared-memory plan exceeds the per-block limit — the paper's
  /// "eliminated during PTX code lowering" path (§VI-E1).
  [[nodiscard]] KernelMeasurement measure(const Schedule& s,
                                          const MeasureOptions& options = {}) const;

  /// Low-level entry used for library kernels (baselines): aggregate
  /// bytes/FLOPs with explicit efficiencies.
  [[nodiscard]] KernelMeasurement measure_raw(double bytes, double flops,
                                              std::int64_t n_blocks,
                                              std::int64_t smem_bytes,
                                              double mem_eff, double comp_eff,
                                              double stmt_trips,
                                              const MeasureOptions& options) const;

  /// Bandwidth efficiency for a contiguous row of `row_bytes` bytes.
  [[nodiscard]] static double bandwidth_efficiency(double row_bytes) noexcept;

  /// Tensor-core efficiency for an (m, red, col) MMA tile.
  [[nodiscard]] static double mma_efficiency(std::int64_t tm, std::int64_t tr,
                                             std::int64_t tc) noexcept;

  /// Pipeline-ramp efficiency: a block issuing only `mma_steps` tile-MMA
  /// iterations pays the software-pipeline prologue/epilogue.  Short
  /// accumulation loops (small K) under-utilise tensor cores — the reason
  /// unfused small-K GEMMs are slow and fused chains (which keep the
  /// pipeline warm across the streamed loop) are not.
  [[nodiscard]] static double pipeline_efficiency(double mma_steps) noexcept;

 private:
  GpuSpec spec_;
};

}  // namespace mcf
