// Shared-memory planning.
//
// Two views exist, mirroring the paper's Fig. 10:
//   * `smem_estimate`  — the paper's eq. (1): sum of single-tile
//     footprints, no double-buffering, padding or reuse.  Used by pruning
//     Rule 4 with the 1.2x slack.
//   * `plan_smem`      — the "actual" allocation the backend would make:
//     per-buffer bank-conflict row padding, double buffering for pipelined
//     loads, residency multiplicity, softmax row statistics, and
//     liveness-based buffer reuse (first-fit over statement intervals).
//     This is the quantity "measured by the NVPTX backend" in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/schedule.hpp"

namespace mcf {

struct SmemOptions {
  int dtype_bytes = 2;       ///< fp16 tiles
  bool double_buffer = true; ///< cp.async-style pipelining for streamed loads
  bool bank_pad = true;      ///< +16B per row when row stride is 128B-aligned
  bool reuse = true;         ///< alias buffers with disjoint live intervals
};

/// One planned buffer.
struct SmemBuffer {
  int tensor = -1;
  std::int64_t bytes = 0;     ///< padded size incl. residency & double buffer
  std::int64_t offset = 0;    ///< assigned offset after reuse packing
  int live_begin = 0;         ///< statement-order live interval (inclusive)
  int live_end = 0;
  bool double_buffered = false;
};

struct SmemPlan {
  std::vector<SmemBuffer> buffers;
  std::int64_t stats_bytes = 0;  ///< online-softmax row statistics (fp32)
  std::int64_t total_bytes = 0;  ///< high-water mark after packing
  [[nodiscard]] std::string to_string(const Schedule& s) const;
};

/// The paper's eq. (1) estimate: sum of Tile_Li x Tile_Lj over all tensors.
[[nodiscard]] std::int64_t smem_estimate(const Schedule& s, int dtype_bytes = 2);

/// Full allocation plan (see header comment).
[[nodiscard]] SmemPlan plan_smem(const Schedule& s, const SmemOptions& options = {});

}  // namespace mcf
