#include "gpu/spec.hpp"

#include "support/logging.hpp"

namespace mcf {

GpuSpec a100() {
  GpuSpec g;
  g.name = "A100";
  g.num_sms = 108;
  g.peak_flops = 312e12;
  g.mem_bandwidth = 1555e9;
  g.smem_per_block = 164 * 1024 - 1024;  // 163 KiB usable with carveout
  g.smem_per_sm = 164 * 1024;
  g.l2_bytes = 40 * 1024 * 1024;
  g.l2_bandwidth = 4.5e12;
  g.max_blocks_per_sm = 32;
  g.launch_overhead_s = 4.5e-6;
  g.stmt_overhead_s = 1.2e-8;
  return g;
}

GpuSpec rtx3080() {
  GpuSpec g;
  g.name = "RTX3080";
  g.num_sms = 68;
  g.peak_flops = 119e12;
  g.mem_bandwidth = 760e9;
  g.smem_per_block = 100 * 1024 - 1024;  // sm86: 99 KiB usable per block
  g.smem_per_sm = 100 * 1024;
  g.l2_bytes = 5 * 1024 * 1024;
  g.l2_bandwidth = 2.0e12;
  g.max_blocks_per_sm = 16;
  g.launch_overhead_s = 4.0e-6;
  g.stmt_overhead_s = 1.4e-8;
  return g;
}

GpuSpec gpu_by_name(const std::string& name) {
  if (name == "a100" || name == "A100") return a100();
  if (name == "rtx3080" || name == "RTX3080") return rtx3080();
  MCF_CHECK(false) << "unknown GPU preset: " << name;
  return {};
}

}  // namespace mcf
