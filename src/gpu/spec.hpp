// GPU hardware description used by the timing simulator and the
// analytical performance model.
//
// Substitution note (DESIGN.md §2): this repo has no physical GPU; the
// presets below describe the paper's two evaluation platforms and drive a
// deterministic timing model.  Peak numbers are the public fp16
// tensor-core specifications.
#pragma once

#include <cstdint>
#include <string>

namespace mcf {

struct GpuSpec {
  std::string name;
  int num_sms = 0;
  /// Peak fp16 tensor-core throughput, FLOP/s.
  double peak_flops = 0.0;
  /// DRAM bandwidth, bytes/s.
  double mem_bandwidth = 0.0;
  /// Maximum shared memory per thread block, bytes (opt-in carveout).
  std::int64_t smem_per_block = 0;
  /// Shared memory per SM, bytes (limits concurrent blocks).
  std::int64_t smem_per_sm = 0;
  /// L2 cache capacity and bandwidth: *intra-kernel* re-reads of tensors
  /// that fit in (part of) L2 are served from it rather than DRAM.
  /// Cross-kernel reuse is deliberately not modelled — intermediates
  /// round-trip DRAM, which is the premise of operator fusion.
  std::int64_t l2_bytes = 0;
  double l2_bandwidth = 0.0;
  /// Hardware cap on resident blocks per SM.
  int max_blocks_per_sm = 32;
  /// Kernel launch overhead, seconds.
  double launch_overhead_s = 5e-6;
  /// Per-statement issue/synchronisation overhead, seconds per trip.
  double stmt_overhead_s = 1.2e-8;

  /// Peak compute / bandwidth ratio (the paper's P/W threshold: operators
  /// with op/byte below this are memory-bound).
  [[nodiscard]] double flops_per_byte() const noexcept {
    return peak_flops / mem_bandwidth;
  }

  /// Exact field-wise equality — "same hardware model", used to guard
  /// against mixing costs from different (or tweaked) specs.
  [[nodiscard]] bool operator==(const GpuSpec&) const = default;
};

/// NVIDIA A100-PCIe-40GB (108 SMs, 312 TFLOPS fp16 TC, 1.555 TB/s HBM2).
[[nodiscard]] GpuSpec a100();

/// NVIDIA GeForce RTX 3080 (68 SMs, 119 TFLOPS fp16 TC, 760 GB/s GDDR6X).
[[nodiscard]] GpuSpec rtx3080();

/// Lookup by name ("a100" / "rtx3080"); aborts on unknown names.
[[nodiscard]] GpuSpec gpu_by_name(const std::string& name);

}  // namespace mcf
