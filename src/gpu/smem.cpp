#include "gpu/smem.hpp"

#include <algorithm>
#include <sstream>

#include "support/logging.hpp"

namespace mcf {

std::int64_t smem_estimate(const Schedule& s, int dtype_bytes) {
  // Paper eq. (1): one tile footprint per tensor, nothing else.
  std::int64_t total = 0;
  for (int t = 0; t < s.chain().num_tensors(); ++t) {
    total += s.tile_elems(t) * dtype_bytes;
  }
  return total;
}

namespace {

struct Touch {
  std::vector<int> nodes;  // statement node indices touching the tensor
};

std::vector<Touch> touching_statements(const Schedule& s) {
  const ChainSpec& chain = s.chain();
  std::vector<Touch> touch(static_cast<std::size_t>(chain.num_tensors()));
  for (int i = 1; i < s.num_nodes(); ++i) {
    const auto& n = s.node(i);
    if (!n.is_stmt) continue;
    const Statement& st = n.stmt;
    if (st.kind == StmtKind::Compute) {
      const int op = st.op;
      touch[static_cast<std::size_t>(chain.op_output_tensor(op))].nodes.push_back(i);
      touch[static_cast<std::size_t>(chain.op_input_tensor(op))].nodes.push_back(i);
      touch[static_cast<std::size_t>(chain.op_weight_tensor(op))].nodes.push_back(i);
    } else {
      touch[static_cast<std::size_t>(st.tensor)].nodes.push_back(i);
    }
  }
  return touch;
}

}  // namespace

SmemPlan plan_smem(const Schedule& s, const SmemOptions& options) {
  MCF_CHECK(s.valid()) << "cannot plan smem for an invalid schedule";
  const ChainSpec& chain = s.chain();
  SmemPlan plan;

  // Statement order positions and per-scope statement position ranges.
  const auto order = s.statements_in_order();
  std::vector<int> pos(static_cast<std::size_t>(s.num_nodes()), -1);
  for (int p = 0; p < static_cast<int>(order.size()); ++p) {
    pos[static_cast<std::size_t>(order[static_cast<std::size_t>(p)])] = p;
  }
  // subtree_min/max statement position per node.
  std::vector<int> sub_min(static_cast<std::size_t>(s.num_nodes()), 1 << 30);
  std::vector<int> sub_max(static_cast<std::size_t>(s.num_nodes()), -1);
  for (int i = s.num_nodes() - 1; i >= 0; --i) {
    const auto& n = s.node(i);
    if (n.is_stmt) {
      sub_min[static_cast<std::size_t>(i)] = pos[static_cast<std::size_t>(i)];
      sub_max[static_cast<std::size_t>(i)] = pos[static_cast<std::size_t>(i)];
    }
    for (const int c : n.children) {
      sub_min[static_cast<std::size_t>(i)] =
          std::min(sub_min[static_cast<std::size_t>(i)], sub_min[static_cast<std::size_t>(c)]);
      sub_max[static_cast<std::size_t>(i)] =
          std::max(sub_max[static_cast<std::size_t>(i)], sub_max[static_cast<std::size_t>(c)]);
    }
  }
  auto path_to_root = [&](int idx) {
    std::vector<int> p;
    for (int cur = idx; cur != -1; cur = s.node(cur).parent) p.push_back(cur);
    std::reverse(p.begin(), p.end());
    return p;
  };

  const auto touch = touching_statements(s);
  const auto& resident = s.resident_tiles();

  for (int t = 0; t < chain.num_tensors(); ++t) {
    const auto& nodes = touch[static_cast<std::size_t>(t)].nodes;
    if (nodes.empty()) continue;

    // Live interval over statement order.
    int first = 1 << 30;
    int last = -1;
    int first_node = -1;
    int last_node = -1;
    for (const int n : nodes) {
      const int p = pos[static_cast<std::size_t>(n)];
      if (p < first) {
        first = p;
        first_node = n;
      }
      if (p > last) {
        last = p;
        last_node = n;
      }
    }
    // LCA of first/last touch (scope node).
    auto pa = path_to_root(first_node);
    auto pb = path_to_root(last_node);
    std::size_t j = 0;
    while (j < pa.size() && j < pb.size() && pa[j] == pb[j]) ++j;
    int lca = pa[j - 1];
    while (s.node(lca).is_stmt) lca = s.node(lca).parent;
    // Accumulated tensors persist across their reduction loop: lift.
    const int producer = chain.tensor(t).producer_op;
    if (producer >= 0) {
      const int red = chain.reduction_loop(producer);
      if (s.extents()[static_cast<std::size_t>(red)] > 1) {
        for (int cur = lca; cur != -1; cur = s.node(cur).parent) {
          if (!s.node(cur).is_stmt && s.node(cur).loop == red) {
            lca = s.node(cur).parent;
            break;
          }
        }
      }
    }
    // Extend endpoints over the full bodies of the loops exited between
    // the touch and the allocation scope (time-correct liveness under
    // iteration).
    auto extend = [&](int from_node, bool is_start) {
      int top_loop = -1;
      for (int cur = s.node(from_node).parent; cur != -1 && cur != lca;
           cur = s.node(cur).parent) {
        if (!s.node(cur).is_stmt && s.node(cur).loop >= 0) top_loop = cur;
      }
      if (top_loop < 0) return;
      if (is_start) first = std::min(first, sub_min[static_cast<std::size_t>(top_loop)]);
      else last = std::max(last, sub_max[static_cast<std::size_t>(top_loop)]);
    };
    // Only extend when the touch is strictly inside the allocation scope.
    extend(first_node, /*is_start=*/true);
    extend(last_node, /*is_start=*/false);

    // Buffer size: resident tiles x padded rows (+ double buffering for
    // pipelined loads).
    const auto& loops = chain.tensor(t).loops;
    const std::int64_t row_elems = s.tiles()[static_cast<std::size_t>(loops.back())];
    const std::int64_t tile_elems = s.tile_elems(t);
    const std::int64_t rows_per_tile = tile_elems / std::max<std::int64_t>(1, row_elems);
    std::int64_t row_bytes = row_elems * options.dtype_bytes;
    if (options.bank_pad && row_bytes % 128 == 0) row_bytes += 16;
    std::int64_t bytes = resident[static_cast<std::size_t>(t)] * rows_per_tile * row_bytes;

    bool dbuf = false;
    if (options.double_buffer && chain.tensor(t).producer_op < 0) {
      // Graph inputs/weights stream through Load statements; double-buffer
      // when the load repeats (sits inside a non-unit tree loop).
      for (const int n : nodes) {
        if (!s.node(n).stmt.covered_loops.empty()) continue;
        if (s.node(n).stmt.kind != StmtKind::Load) continue;
        if (s.trip_count(n) > 1.0) dbuf = true;
      }
    }
    if (dbuf) bytes *= 2;

    SmemBuffer buf;
    buf.tensor = t;
    buf.bytes = bytes;
    buf.live_begin = first;
    buf.live_end = last;
    buf.double_buffered = dbuf;
    plan.buffers.push_back(buf);
  }

  // Online-softmax running statistics: two fp32 row vectors per block.
  for (int op = 0; op < chain.num_ops(); ++op) {
    if (chain.epilogue(op) == Epilogue::OnlineSoftmax) {
      plan.stats_bytes += 2 * s.tiles()[0] * 4;
    }
  }

  // Offset assignment: first-fit decreasing with interval-overlap reuse.
  std::vector<std::size_t> by_size(plan.buffers.size());
  for (std::size_t i = 0; i < by_size.size(); ++i) by_size[i] = i;
  std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
    return plan.buffers[a].bytes > plan.buffers[b].bytes;
  });
  std::vector<std::size_t> placed;
  std::int64_t high_water = 0;
  for (const std::size_t i : by_size) {
    auto& buf = plan.buffers[i];
    std::int64_t offset = 0;
    if (options.reuse) {
      // Collect conflicting placed buffers (overlapping live intervals),
      // then scan offsets upward until the buffer fits.
      bool moved = true;
      while (moved) {
        moved = false;
        for (const std::size_t k : placed) {
          const auto& other = plan.buffers[k];
          const bool overlap_live = !(buf.live_end < other.live_begin ||
                                      other.live_end < buf.live_begin);
          const bool overlap_mem = offset < other.offset + other.bytes &&
                                   other.offset < offset + buf.bytes;
          if (overlap_live && overlap_mem) {
            offset = other.offset + other.bytes;
            moved = true;
          }
        }
      }
    } else {
      offset = high_water;
    }
    buf.offset = offset;
    high_water = std::max(high_water, offset + buf.bytes);
    placed.push_back(i);
  }
  plan.total_bytes = high_water + plan.stats_bytes;
  return plan;
}

std::string SmemPlan::to_string(const Schedule& s) const {
  std::ostringstream os;
  os << "smem plan: total=" << total_bytes << "B (stats " << stats_bytes
     << "B)\n";
  for (const auto& b : buffers) {
    os << "  " << s.chain().tensor(b.tensor).name << ": " << b.bytes
       << "B @" << b.offset << " live=[" << b.live_begin << "," << b.live_end
       << "]" << (b.double_buffered ? " x2buf" : "") << "\n";
  }
  return os.str();
}

}  // namespace mcf
