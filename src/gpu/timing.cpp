#include "gpu/timing.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

namespace {
/// Blocks needed in flight to saturate DRAM bandwidth.
constexpr double kBlocksToSaturateDram = 24.0;
/// Fraction of the shorter of (mem, comp) phases that fails to overlap.
constexpr double kOverlapLeak = 0.15;
}  // namespace

double TimingSimulator::bandwidth_efficiency(double row_bytes) noexcept {
  // 128-byte DRAM transactions: short strided rows waste part of each
  // sector, but modern memory controllers still coalesce neighbouring
  // rows — strided 64B streams reach ~75-85% on A100-class parts.
  return std::clamp(0.6 + 0.4 * row_bytes / 128.0, 0.6, 1.0);
}

double TimingSimulator::mma_efficiency(std::int64_t tm, std::int64_t tr,
                                       std::int64_t tc) noexcept {
  auto spatial = [](std::int64_t t) {
    if (t >= 128) return 1.0;
    if (t >= 64) return 0.95;
    if (t >= 48) return 0.85;
    if (t >= 32) return 0.75;
    return 0.5;
  };
  auto reduce = [](std::int64_t t) {
    if (t >= 64) return 1.0;
    if (t >= 32) return 0.92;
    return 0.8;
  };
  return std::min(spatial(tm), spatial(tc)) * reduce(tr);
}

double TimingSimulator::pipeline_efficiency(double mma_steps) noexcept {
  // ~2.5 iterations' worth of prologue/epilogue per pipelined loop.
  return mma_steps / (mma_steps + 2.5);
}

KernelMeasurement TimingSimulator::measure_raw(double bytes, double flops,
                                               std::int64_t n_blocks,
                                               std::int64_t smem_bytes,
                                               double mem_eff, double comp_eff,
                                               double stmt_trips,
                                               const MeasureOptions& options) const {
  KernelMeasurement m;
  m.n_blocks = n_blocks;
  m.smem_bytes = smem_bytes;
  m.mem_eff = mem_eff;
  m.comp_eff = comp_eff;
  if (smem_bytes > spec_.smem_per_block) {
    m.fail_reason = "shared memory exceeds per-block limit";
    return m;
  }
  MCF_CHECK(n_blocks >= 1) << "kernel needs at least one block";

  // Occupancy: blocks per SM limited by shared memory.
  int bps = spec_.max_blocks_per_sm;
  if (smem_bytes > 0) {
    bps = std::min<int>(bps, static_cast<int>(spec_.smem_per_sm / std::max<std::int64_t>(smem_bytes, 1)));
  }
  bps = std::max(bps, 1);
  m.blocks_per_sm = bps;
  const double conc = static_cast<double>(spec_.num_sms) * bps;
  const double nb = static_cast<double>(n_blocks);
  m.waves = static_cast<int>(std::ceil(nb / conc));

  // Compute: per wave, at most num_sms SMs do tensor-core work; spare
  // co-residency (blocks_per_sm > 1) hides latency but does not add
  // SM throughput, so utilization compares blocks against physical SMs.
  const double comp_util = std::min(
      1.0, nb / (static_cast<double>(m.waves) * spec_.num_sms));
  m.utilization = comp_util;
  // Memory: DRAM saturates once enough blocks stream concurrently; the
  // wave tail hits it at half weight (reads overlap across waves).
  const double inflight = std::min(nb, conc);
  const double tail = nb / (static_cast<double>(m.waves) * conc);
  const double mem_util =
      std::min(1.0, inflight / kBlocksToSaturateDram) * (0.5 + 0.5 * std::max(tail, comp_util));

  m.mem_time_s = bytes / (spec_.mem_bandwidth * std::max(mem_eff, 1e-3)) /
                 std::max(mem_util, 1e-3);
  m.comp_time_s = flops / (spec_.peak_flops * std::max(comp_eff, 1e-3)) /
                  std::max(comp_util, 1e-3);
  const double t_exec = std::max(m.mem_time_s, m.comp_time_s) +
                        kOverlapLeak * std::min(m.mem_time_s, m.comp_time_s);
  // Issue overhead: statements execute serially within a block; waves
  // serialize across the grid.
  m.issue_time_s =
      stmt_trips / nb * spec_.stmt_overhead_s * static_cast<double>(m.waves);
  m.launch_time_s = options.include_launch ? spec_.launch_overhead_s : 0.0;

  double t = t_exec + m.issue_time_s + m.launch_time_s;
  if (options.noise_amp > 0.0) {
    std::uint64_t key = options.noise_seed;
    key = hash_combine(key, static_cast<std::uint64_t>(n_blocks));
    key = hash_combine(key, static_cast<std::uint64_t>(smem_bytes));
    key = hash_combine(key, static_cast<std::uint64_t>(bytes));
    key = hash_combine(key, static_cast<std::uint64_t>(flops));
    key = hash_combine(key, hash_string(spec_.name));
    t *= hash_noise(key, options.noise_amp);
  }
  m.time_s = t;
  m.ok = true;
  return m;
}

KernelMeasurement TimingSimulator::measure(const Schedule& s,
                                           const MeasureOptions& options) const {
  MCF_CHECK(s.valid()) << "cannot measure an invalid schedule";
  const VolumeReport vol = analyze_volume(s);
  const SmemPlan plan = plan_smem(s);
  const ChainSpec& chain = s.chain();

  // Per-tensor load totals for the intra-kernel L2 model: re-reads of a
  // tensor that fits in (half of) L2 are served at L2 bandwidth and
  // converted into equivalent DRAM bytes.
  std::vector<double> tensor_load_bytes(static_cast<std::size_t>(chain.num_tensors()), 0.0);

  // Weighted transaction efficiency over loads and stores.
  double wbytes = 0.0;
  double weff = 0.0;
  double store_bytes = 0.0;
  double wflops = 0.0;
  double wceff = 0.0;
  for (const auto& st : vol.stmts) {
    if (st.kind == StmtKind::Compute) {
      const double fl = st.flops_per_trip * st.trips_per_block;
      wflops += fl;
      wceff += fl * mma_efficiency(st.tile_m, st.tile_red, st.tile_col) *
               pipeline_efficiency(st.trips_per_block);
    } else {
      const double by = st.bytes_per_trip * st.trips_per_block * vol.n_blocks;
      wbytes += by;
      weff += by * bandwidth_efficiency(
                       static_cast<double>(st.row_elems) * 2.0);
      if (st.kind == StmtKind::Load) {
        tensor_load_bytes[static_cast<std::size_t>(st.tensor)] += by;
      } else {
        store_bytes += by;
      }
    }
  }
  const double mem_eff = wbytes > 0 ? weff / wbytes : 1.0;

  // Effective DRAM bytes after L2 filtering of repeated loads.
  double effective_bytes = store_bytes;
  const double l2_ratio =
      spec_.l2_bandwidth > 0 ? spec_.mem_bandwidth / spec_.l2_bandwidth : 1.0;
  for (int t = 0; t < chain.num_tensors(); ++t) {
    const double total = tensor_load_bytes[static_cast<std::size_t>(t)];
    if (total <= 0.0) continue;
    double size = 2.0 * static_cast<double>(chain.batch());
    for (const int l : chain.tensor(t).loops) {
      size *= static_cast<double>(chain.loop_dim(l));
    }
    const bool fits_l2 = size <= 0.5 * static_cast<double>(spec_.l2_bytes);
    const double first_touch = std::min(total, size);
    const double excess = total - first_touch;
    effective_bytes += first_touch + (fits_l2 ? excess * l2_ratio : excess);
  }
  // Epilogue work runs on CUDA cores, not tensor cores: charge it with a
  // fixed 1/8 throughput factor folded into effective FLOPs.
  const double comp_eff = wflops > 0 ? wceff / wflops : 1.0;
  const double eff_flops = vol.flops + 8.0 * vol.epilogue_flops;

  MeasureOptions opts = options;
  // Mix the schedule identity into the noise key.
  std::uint64_t key = opts.noise_seed;
  for (const int l : s.block_loops()) key = hash_combine(key, static_cast<std::uint64_t>(l));
  for (const auto t : s.tiles()) key = hash_combine(key, static_cast<std::uint64_t>(t));
  opts.noise_seed = key;

  return measure_raw(effective_bytes, eff_flops, s.num_blocks(),
                     plan.total_bytes, mem_eff, comp_eff, vol.stmt_trips, opts);
}

}  // namespace mcf
