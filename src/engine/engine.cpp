#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "exec/sandbox.hpp"
#include "graph/partitioner.hpp"
#include "measure/backend.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

const char* fusion_status_name(FusionStatus s) noexcept {
  switch (s) {
    case FusionStatus::Ok:
      return "ok";
    case FusionStatus::InvalidChain:
      return "invalid-chain";
    case FusionStatus::InfeasibleSpace:
      return "infeasible-space";
    case FusionStatus::PruneEmpty:
      return "prune-empty";
    case FusionStatus::MeasureFailed:
      return "measure-failed";
    case FusionStatus::Cancelled:
      return "cancelled";
    case FusionStatus::Rejected:
      return "rejected";
    case FusionStatus::DeadlineExceeded:
      return "deadline-exceeded";
    case FusionStatus::WorkerCrashed:
      return "worker-crashed";
    case FusionStatus::WorkerTimeout:
      return "worker-timeout";
    case FusionStatus::VerifyRejected:
      return "verify-rejected";
  }
  return "?";
}

const char* overflow_policy_name(OverflowPolicy p) noexcept {
  switch (p) {
    case OverflowPolicy::Reject:
      return "reject";
    case OverflowPolicy::Block:
      return "block";
    case OverflowPolicy::ReplaceOldest:
      return "replace-oldest";
  }
  return "?";
}

namespace {

/// Approximate heap payload of a memoized result — what the MemoLimits
/// byte cap counts.  Exactness is not the point (the kernel/schedule
/// payload is estimated flat); monotone growth with result size is.
std::size_t approx_result_bytes(const FusionResult& r) {
  std::size_t bytes = sizeof(FusionResult);
  bytes += r.reason.capacity();
  bytes += r.tuned.fail_reason.capacity();
  bytes += r.tuned.est_vs_measured.capacity() * sizeof(std::pair<double, double>);
  bytes += static_cast<std::size_t>(r.tuned.best.tiles.size()) *
           sizeof(std::int64_t);
  if (r.kernel.has_value()) bytes += 1024;  // schedule tree + lowering state
  return bytes;
}

FusionResult make_shed_result(FusionStatus status, std::string reason) {
  FusionResult r;
  r.status = status;
  r.reason = std::move(reason);
  return r;
}

}  // namespace

// ---- FusionTicket -----------------------------------------------------------

const ChainSpec& FusionTicket::chain() const {
  MCF_CHECK(state_ != nullptr) << "chain() on an empty FusionTicket";
  return state_->chain;
}

bool FusionTicket::ready() const {
  if (!state_) return false;
  const LockGuard lk(state_->mu);
  return state_->done;
}

void FusionTicket::wait() const {
  MCF_CHECK(state_ != nullptr) << "wait() on an empty FusionTicket";
  UniqueLock lk(state_->mu);
  state_->cv.wait(lk, [&] {
    state_->mu.assert_held();
    return state_->done;
  });
}

bool FusionTicket::wait_for(double seconds) const {
  MCF_CHECK(state_ != nullptr) << "wait_for() on an empty FusionTicket";
  UniqueLock lk(state_->mu);
  // Contract: <= 0 (and NaN, which fails every comparison) polls once.
  if (!(seconds > 0.0)) return state_->done;
  // +inf and absurdly large finite waits become wait(): feeding them to
  // cv.wait_for would overflow the steady_clock arithmetic.  1e9 s (~31
  // years) still fits an int64 nanosecond deadline with headroom.
  constexpr double kMaxWaitSeconds = 1e9;
  if (!std::isfinite(seconds) || seconds >= kMaxWaitSeconds) {
    state_->cv.wait(lk, [&] {
      state_->mu.assert_held();
      return state_->done;
    });
    return true;
  }
  return state_->cv.wait_for(lk, std::chrono::duration<double>(seconds), [&] {
    state_->mu.assert_held();
    return state_->done;
  });
}

const FusionResult& FusionTicket::get() const {
  wait();
  // done is set: the result is frozen, but the reference still binds to
  // a guarded field — take the (uncontended) lock for the access.
  const LockGuard lk(state_->mu);
  return state_->result;
}

bool FusionTicket::cancel() {
  if (!state_) return false;
  {
    // A finished job is untouchable: no cancel flag is raised (the shared
    // TicketState may be aliased by a fuse_chains memo entry), the stored
    // result stays as-is, and the call reports false.
    const LockGuard lk(state_->mu);
    if (state_->done) return false;
  }
  // Idempotent: re-raising an already-raised flag is a no-op.
  state_->progress->request_cancel();
  const LockGuard lk(state_->mu);
  return !state_->done;
}

FusionTicket::Progress FusionTicket::progress() const {
  Progress p;
  if (!state_) return p;
  p.generations = state_->progress->generations.load(std::memory_order_relaxed);
  p.estimates = state_->progress->estimates.load(std::memory_order_relaxed);
  p.measurements =
      state_->progress->measurements.load(std::memory_order_relaxed);
  const LockGuard lk(state_->mu);
  p.started = state_->started;
  p.done = state_->done;
  return p;
}

// ---- GraphFusionReport ------------------------------------------------------

bool GraphFusionReport::all_ok() const noexcept {
  for (const auto& c : chains) {
    if (!c.result || !c.result->ok()) return false;
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += ' ';  // other control chars never appear in our strings
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string GraphFusionReport::to_json() const {
  std::ostringstream os;
  os << "{\"graph\":\"";
  os << json_escape(graph_name);
  os << "\",\"nodes\":" << graph_nodes
     << ",\"mbci_subgraphs\":" << mbci_subgraphs
     << ",\"distinct_chains\":" << distinct_chains
     << ",\"tuned_chains\":" << tuned_chains
     << ",\"total_measurements\":" << total_measurements
     << ",\"tuning_wall_s\":" << tuning_wall_s
     << ",\"jit_compile\":{\"tus_compiled\":" << jit_compile.tus_compiled
     << ",\"kernels_compiled\":" << jit_compile.kernels_compiled
     << ",\"cache_hits\":" << jit_compile.cache_hits()
     << ",\"failures\":" << jit_compile.failures
     << ",\"modules_opened\":" << jit_compile.modules_opened
     << ",\"modules_open\":" << jit_compile.modules_open
     << ",\"modules_closed\":" << jit_compile.modules_closed
     << ",\"compile_wall_s\":" << jit_compile.compile_wall_s
     << "},\"engine\":{\"queued\":" << engine_stats.queued
     << ",\"busy\":" << engine_stats.busy
     << ",\"workers\":" << engine_stats.workers
     << ",\"submitted\":" << engine_stats.submitted
     << ",\"completed\":" << engine_stats.completed
     << ",\"rejected\":" << engine_stats.rejected
     << ",\"cancelled\":" << engine_stats.cancelled
     << ",\"deadline_exceeded\":" << engine_stats.deadline_exceeded
     << ",\"memo_entries\":" << engine_stats.memo_entries
     << ",\"memo_bytes\":" << engine_stats.memo_bytes
     << ",\"memo_evictions\":" << engine_stats.memo_evictions
     << ",\"worker_spawns\":" << engine_stats.worker_spawns
     << ",\"worker_respawns\":" << engine_stats.worker_respawns
     << ",\"worker_crashes\":" << engine_stats.worker_crashes
     << ",\"worker_timeouts\":" << engine_stats.worker_timeouts
     << ",\"crash_cache_hits\":" << engine_stats.crash_cache_hits
     << ",\"workers_active\":" << engine_stats.workers_active
     << "},\"chains\":[";
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const GraphChainReport& c = chains[i];
    if (i) os << ",";
    os << "{\"digest\":\"";
    os << json_escape(c.digest);
    os << "\",\"name\":\"";
    os << json_escape(c.chain_name);
    os << "\",\"desc\":\"";
    os << json_escape(c.chain_desc);
    os << "\",\"occurrences\":" << c.occurrences
       << ",\"reused\":" << (c.reused ? "true" : "false") << ",\"status\":\""
       << (c.result ? fusion_status_name(c.result->status) : "missing")
       << "\",\"reason\":\"";
    if (c.result) os << json_escape(c.result->reason);
    os << "\"";
    if (c.result && c.result->ok()) {
      os << ",\"time_us\":" << c.result->time_s() * 1e6
         << ",\"measurements\":" << c.result->tuned.stats.measurements
         << ",\"space_size\":" << c.result->space_size << ",\"best_tiles\":[";
      const auto& tiles = c.result->tuned.best.tiles;
      for (std::size_t t = 0; t < tiles.size(); ++t) {
        if (t) os << ",";
        os << tiles[t];
      }
      os << "]";
    }
    os << "}";
  }
  os << "],\"sub_to_chain\":[";
  for (std::size_t i = 0; i < sub_to_chain.size(); ++i) {
    if (i) os << ",";
    os << sub_to_chain[i];
  }
  os << "]}";
  return os.str();
}

// ---- FusionEngine -----------------------------------------------------------

FusionEngine::FusionEngine(GpuSpec gpu, FusionEngineOptions options)
    : gpu_(std::move(gpu)), opt_(std::move(options)),
      results_(decltype(results_)::Limits{opt_.memo.max_entries,
                                          opt_.memo.max_bytes}) {
  opt_.prune.smem_limit_bytes = gpu_.smem_per_block;
  if (!opt_.backend.empty()) {
    opt_.tuner.backend = BackendRegistry::instance().create(opt_.backend, gpu_);
    if (opt_.tuner.backend == nullptr) {
      std::string known;
      for (const auto& n : BackendRegistry::instance().names()) {
        known += (known.empty() ? "" : ", ") + n;
      }
      MCF_CHECK(false) << "unknown measure backend '" << opt_.backend
                       << "' (registered: " << known << ")";
    }
  } else if (opt_.tuner.backend == nullptr) {
    // Resolve the default once so every tuning run shares one (stateless)
    // simulator — value-identical to the tuner's per-run default.
    opt_.tuner.backend = std::make_shared<SimulatorBackend>(gpu_);
  }
}

FusionEngine::~FusionEngine() {
  {
    const LockGuard lk(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  room_cv_.notify_all();  // blocked submitters resolve their tickets Cancelled
  {
    // A submitter woken above still runs the tail of admit() (resolving
    // its ticket, touching the admission counters and the memo).  Wait
    // for every in-progress admit() to leave before tearing the engine
    // down — otherwise a Block-policy submitter races destruction.
    UniqueLock lk(queue_mu_);
    drained_cv_.wait(lk, [&] {
      queue_mu_.assert_held();
      return admitting_ == 0;
    });
  }
  // Swap the worker handles out under the lock (spawn_worker_locked may
  // have appended concurrently with the drain above), join unlocked.
  std::vector<std::thread> workers;
  {
    const LockGuard lk(queue_mu_);
    workers.swap(workers_);
  }
  for (std::thread& w : workers) w.join();
  // With workers, the loop above drained the backlog as Cancelled.  The
  // defensive sweep covers an engine that never spawned one: every
  // outstanding ticket must still resolve so no waiter hangs.
  std::deque<std::shared_ptr<detail::TicketState>> leftover;
  {
    const LockGuard lk(queue_mu_);
    leftover.swap(queue_);
  }
  for (const auto& s : leftover) {
    finish(s, make_shed_result(FusionStatus::Cancelled, "engine shutting down"));
  }
}

FusionEngineOptions FusionEngine::chimera_options() {
  FusionEngineOptions o;
  o.space.include_flat = false;         // nested block execution orders only
  o.sched.collapse_unit_loops = false;  // misses the extent-1 optimisation
  return o;
}

FusionResult FusionEngine::run_one(const ChainSpec& chain,
                                   std::shared_ptr<TuningProgress> progress,
                                   const SearchSpace* prebuilt) const {
  FusionResult result;
  if (!chain.valid()) {
    result.status = FusionStatus::InvalidChain;
    result.reason = chain.validation_error();
    MCF_LOG(Warn) << "FusionEngine: invalid chain '" << chain.name()
                  << "': " << result.reason;
    return result;
  }
  std::optional<SearchSpace> own_space;
  if (prebuilt == nullptr) {
    own_space.emplace(chain, opt_.space, opt_.prune, opt_.sched);
  }
  const SearchSpace& space = prebuilt ? *prebuilt : *own_space;
  result.funnel = space.funnel();
  result.space_size = space.candidates().size();
  if (space.candidates().empty()) {
    std::ostringstream os;
    if (space.expressions().empty() || result.funnel.original <= 0.0) {
      result.status = FusionStatus::InfeasibleSpace;
      os << "space generation produced no tiling expressions for "
         << chain.name();
    } else {
      result.status = FusionStatus::PruneEmpty;
      os << "pruning left 0 of " << result.funnel.original
         << " raw candidates (rule1 " << result.funnel.after_rule1
         << " -> rule2 " << result.funnel.after_rule2 << " -> rule3 "
         << result.funnel.after_rule3 << " -> rule4 "
         << result.funnel.after_rule4 << ")";
    }
    result.reason = os.str();
    MCF_LOG(Warn) << "FusionEngine: nothing to tune for " << chain.name()
                  << ": " << result.reason;
    return result;
  }
  TunerOptions topts = opt_.tuner;
  // Per-workload deterministic noise stream for simulated measurements.
  topts.measure.noise_seed =
      hash_combine(topts.measure.noise_seed, hash_string(chain.name()));
  topts.progress = std::move(progress);
  Tuner tuner(space, gpu_, topts);
  result.tuned = tuner.run();
  if (result.tuned.cancelled) {
    result.status = FusionStatus::Cancelled;
    result.reason = result.tuned.fail_reason;
    return result;
  }
  if (!result.tuned.ok) {
    // Isolation-aware failure taxonomy: a run whose candidates died in
    // sandbox workers (or hit the worker deadline) is operationally
    // different from "every candidate was infeasible" — surface it as
    // its own status, with the signal / deadline detail in the reason.
    switch (result.tuned.fail_kind) {
      case MeasureFailKind::WorkerCrashed:
        result.status = FusionStatus::WorkerCrashed;
        break;
      case MeasureFailKind::WorkerTimeout:
        result.status = FusionStatus::WorkerTimeout;
        break;
      case MeasureFailKind::VerifyRejected:
        result.status = FusionStatus::VerifyRejected;
        break;
      default:
        result.status = FusionStatus::MeasureFailed;
        break;
    }
    result.reason = result.tuned.fail_reason.empty()
                        ? "no candidate measured successfully"
                        : result.tuned.fail_reason;
    return result;
  }
  result.kernel.emplace(space.schedule_for(result.tuned.best), gpu_);
  if (!result.kernel->ok()) {
    result.status = FusionStatus::MeasureFailed;
    result.reason = "winner failed to lower: " + result.kernel->error();
    MCF_LOG(Warn) << "FusionEngine: " << result.reason;
    return result;
  }
  result.status = FusionStatus::Ok;
  return result;
}

FusionResult FusionEngine::fuse(const ChainSpec& chain,
                                std::shared_ptr<TuningProgress> progress) const {
  return run_one(chain, std::move(progress));
}

unsigned FusionEngine::max_workers() const {
  const unsigned n = opt_.jobs > 0 ? static_cast<unsigned>(opt_.jobs)
                                   : std::thread::hardware_concurrency();
  return std::max(1u, n);
}

void FusionEngine::spawn_worker_locked() {
  if (stop_) return;
  const std::size_t outstanding = queue_.size() + busy_;
  if (workers_.size() >= max_workers() || workers_.size() >= outstanding) {
    return;
  }
  workers_.emplace_back([this] { worker_loop(); });
}

void FusionEngine::worker_loop() {
  for (;;) {
    std::shared_ptr<detail::TicketState> job;
    bool stopping = false;
    {
      UniqueLock lk(queue_mu_);
      queue_cv_.wait(lk, [&] {
        queue_mu_.assert_held();
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ set and drained
      stopping = stop_;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    room_cv_.notify_one();  // a queue slot freed up
    FusionResult r;
    if (stopping) {
      // Shutdown never tunes the backlog: running jobs complete, queued
      // jobs finish as Cancelled so waiters unblock immediately.
      r.status = FusionStatus::Cancelled;
      r.reason = "engine shutting down";
    } else if (job->progress->cancel_requested()) {
      // Cancelled while queued: started stays false so Progress can
      // distinguish a queued-cancel from a mid-run cancel.
      r.status = FusionStatus::Cancelled;
      r.reason = "cancelled before the job started";
    } else if (job->has_deadline &&
               std::chrono::steady_clock::now() > job->deadline) {
      // Load shedding: a job that waited past its deadline is dropped at
      // pick-up without tuning — nobody is waiting for a stale answer.
      std::ostringstream os;
      os << "queue wait exceeded the " << opt_.queue.deadline_s
         << "s admission deadline";
      r = make_shed_result(FusionStatus::DeadlineExceeded, os.str());
    } else {
      {
        const LockGuard lk(job->mu);
        job->started = true;
      }
      r = run_one(job->chain, job->progress);
    }
    // Release the in-flight slot BEFORE publishing the result: once the
    // last ticket of a burst resolves, stats() must already show
    // busy == 0 (the stress suite pins this ordering).
    bool idle = false;
    {
      const LockGuard lk(queue_mu_);
      --busy_;
      idle = queue_.empty() && busy_ == 0;
    }
    room_cv_.notify_one();  // an in-flight slot freed up
    if (idle) idle_cv_.notify_all();
    finish(job, std::move(r));
  }
}

void FusionEngine::finish(const std::shared_ptr<detail::TicketState>& state,
                          FusionResult result) {
  // Outcome accounting: every admitted-or-shed job lands in exactly one
  // terminal bucket (the stress suite pins the sum against submitted).
  switch (result.status) {
    case FusionStatus::Rejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FusionStatus::Cancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FusionStatus::DeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  // Store the result and extract everything the memo publication needs
  // in ONE state->mu critical section: the old shape re-read
  // state->result under memo_mu_, which is the wrong lock for that
  // field (benign only because the same thread had just written it).
  std::shared_ptr<const FusionResult> aliased;
  std::size_t bytes = 0;
  {
    const LockGuard lk(state->mu);
    state->result = std::move(result);
    if (!state->memo_digest.empty() && state->result.ok()) {
      // The aliasing shared_ptr keeps the ticket state (and thus the
      // result) alive as long as the memo entry does; readers deref it
      // lock-free, which is sound because the value is frozen once done
      // flips below.
      aliased = std::shared_ptr<const FusionResult>(state, &state->result);
      bytes = approx_result_bytes(state->result);
    }
  }
  if (!state->memo_digest.empty()) {
    // Publish before signalling done: a fuse_chains waiter that wakes on
    // done must find the memo entry.  Only Ok results are memoized — a
    // failed tuning (which may be transient on nondeterministic hardware
    // backends) must not poison its digest for the engine's lifetime;
    // waiters of THIS call still see the failure through their tickets,
    // and the next call re-tunes.  A racing tuner of the same digest
    // keeps the incumbent (results are deterministic per chain, so the
    // payloads match).
    const LockGuard lk(memo_mu_);
    if (aliased != nullptr) {
      (void)results_.insert(state->memo_digest, std::move(aliased), bytes);
    }
    // Only this job's own dedup registration is retired: a submit() job
    // sharing a digest with a concurrent fuse_chains job must not erase
    // the batch job's in-flight entry.
    if (const auto it = inflight_.find(state->memo_digest);
        it != inflight_.end() && it->second == state) {
      inflight_.erase(it);
    }
  }
  {
    const LockGuard lk(state->mu);
    state->done = true;
  }
  state->cv.notify_all();
}

bool FusionEngine::queue_full_locked() const {
  const QueuePolicy& q = opt_.queue;
  if (q.max_queued != 0 && queue_.size() >= q.max_queued) return true;
  if (q.max_in_flight != 0 && queue_.size() + busy_ >= q.max_in_flight) {
    return true;
  }
  return false;
}

FusionTicket FusionEngine::admit(std::shared_ptr<detail::TicketState> state,
                                 bool may_block, bool batch) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const QueuePolicy& qp = opt_.queue;
  // Same overflow guard as FusionTicket::wait_for: a deadline past ~31
  // years would overflow the int64 nanosecond cast (UB), and means "no
  // deadline" anyway.  NaN/inf/non-positive also mean no deadline.
  constexpr double kMaxDeadlineSeconds = 1e9;
  if (std::isfinite(qp.deadline_s) && qp.deadline_s > 0.0 &&
      qp.deadline_s < kMaxDeadlineSeconds) {
    state->has_deadline = true;
    state->deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(qp.deadline_s));
  }
  state->sheddable = !batch;

  std::shared_ptr<detail::TicketState> evicted;
  bool admitted = false;
  bool shutdown = false;
  {
    UniqueLock lk(queue_mu_);
    MCF_CHECK(!stop_) << "submit() on a shut-down FusionEngine";
    // Registered until the tail of this function completes: the
    // destructor waits on admitting_ so a submitter woken from the
    // Block wait below never touches a dead engine.
    ++admitting_;
    if (!queue_full_locked()) {
      admitted = true;
    } else if (batch || (may_block && qp.overflow == OverflowPolicy::Block)) {
      // Batch (fuse_chains) jobs always wait for a slot: a batch call
      // owns its backlog, and shedding its chains would fail the report.
      room_cv_.wait(lk, [&] {
        queue_mu_.assert_held();
        return stop_ || !queue_full_locked();
      });
      if (stop_) {
        shutdown = true;
      } else {
        admitted = true;
      }
    } else if (qp.overflow == OverflowPolicy::ReplaceOldest) {
      // Shed the oldest sheddable queued job to make room; batch jobs
      // are pinned, and a queue full of pinned jobs rejects the newcomer
      // instead (the bound always holds).
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if ((*it)->sheddable) {
          evicted = std::move(*it);
          queue_.erase(it);
          break;
        }
      }
      admitted = evicted != nullptr;
    }
    if (admitted) {
      queue_.push_back(state);
      spawn_worker_locked();
    }
  }
  if (evicted != nullptr) {
    finish(evicted,
           make_shed_result(FusionStatus::Rejected,
                            "replaced by a newer submission (replace-oldest "
                            "overflow policy)"));
  }
  if (admitted) {
    queue_cv_.notify_one();
  } else if (shutdown) {
    finish(state,
           make_shed_result(FusionStatus::Cancelled, "engine shutting down"));
  } else {
    std::ostringstream os;
    os << "admission queue full (max_queued=" << qp.max_queued
       << ", max_in_flight=" << qp.max_in_flight
       << ", policy=" << overflow_policy_name(qp.overflow) << ")";
    finish(state, make_shed_result(FusionStatus::Rejected, os.str()));
  }
  {
    const LockGuard lk(queue_mu_);
    --admitting_;
    // Notify UNDER the lock: the waiting destructor cannot wake until we
    // release queue_mu_, by which point this thread never touches the
    // engine again — releasing first would let it free drained_cv_ while
    // we still hold a reference.
    drained_cv_.notify_all();
  }
  return FusionTicket(std::move(state));
}

FusionTicket FusionEngine::submit(ChainSpec chain) {
  auto state = std::make_shared<detail::TicketState>(std::move(chain));
  // Ok results publish into the digest memo so later fuse_graph /
  // fuse_chains calls reuse them.  submit() itself never READS the memo:
  // an explicit submission always tunes (ticket progress counters stay
  // meaningful), and shed/failed tickets publish nothing.
  state->memo_digest = chain_cache_key(state->chain);
  return admit(std::move(state), /*may_block=*/true, /*batch=*/false);
}

FusionTicket FusionEngine::try_submit(ChainSpec chain) {
  auto state = std::make_shared<detail::TicketState>(std::move(chain));
  state->memo_digest = chain_cache_key(state->chain);
  return admit(std::move(state), /*may_block=*/false, /*batch=*/false);
}

GraphFusionReport FusionEngine::fuse_chains(const std::vector<ChainSpec>& chains,
                                            const std::string& label) {
  GraphFusionReport rep;
  rep.graph_name = label;
  rep.sub_to_chain.reserve(chains.size());
  // Jit-compilation economy: process-wide counter deltas over the call
  // (zero when the backend never compiles; shared across engines, so
  // concurrent fuse_graph calls each see their own compiles plus any
  // overlap — documented in docs/measurement.md).
  const jit::CompileStats jit_before = jit::stats_snapshot();

  struct Pending {
    std::size_t index;  ///< into rep.chains
    FusionTicket ticket;
    bool fresh;  ///< this call created the job (counts toward tuned_chains)
  };
  std::vector<Pending> pending;
  std::unordered_map<std::string, std::size_t> index_by_digest;

  for (const ChainSpec& chain : chains) {
    const std::string digest = chain_cache_key(chain);
    if (const auto it = index_by_digest.find(digest);
        it != index_by_digest.end()) {
      ++rep.chains[it->second].occurrences;
      rep.sub_to_chain.push_back(static_cast<int>(it->second));
      continue;
    }
    GraphChainReport cr;
    cr.digest = digest;
    cr.chain_name = chain.name();
    cr.chain_desc = chain.to_string();
    cr.occurrences = 1;

    FusionTicket ticket;
    bool fresh = false;
    {
      const LockGuard lk(memo_mu_);
      if (auto* hit = results_.find(digest)) {  // refreshes LRU recency
        cr.result = *hit;
        cr.reused = true;
      } else if (const auto inf = inflight_.find(digest);
                 inf != inflight_.end()) {
        // Another fuse_chains call is already tuning this digest; attach.
        ticket = FusionTicket(inf->second);
        cr.reused = true;
      } else {
        auto state = std::make_shared<detail::TicketState>(chain);
        state->memo_digest = digest;
        inflight_.emplace(digest, state);
        ticket = FusionTicket(std::move(state));
        fresh = true;
      }
    }
    if (fresh) {
      // Batch admission: respects the queue bounds (waits for a slot
      // instead of shedding) and the queue-wait deadline.
      (void)admit(ticket.state_, /*may_block=*/true, /*batch=*/true);
    }
    const std::size_t idx = rep.chains.size();
    rep.chains.push_back(std::move(cr));
    index_by_digest.emplace(digest, idx);
    rep.sub_to_chain.push_back(static_cast<int>(idx));
    if (ticket.valid()) pending.push_back(Pending{idx, std::move(ticket), fresh});
  }

  for (Pending& p : pending) {
    const FusionResult& r = p.ticket.get();
    rep.chains[p.index].result = std::shared_ptr<const FusionResult>(
        p.ticket.state_, &p.ticket.state_->result);
    if (p.fresh) {
      ++rep.tuned_chains;
      rep.total_measurements += r.tuned.stats.measurements;
      rep.tuning_wall_s += r.tuned.stats.wall_seconds;
    }
  }
  rep.distinct_chains = static_cast<int>(rep.chains.size());
  rep.jit_compile = jit::stats_snapshot().since(jit_before);
  rep.engine_stats = stats();
  return rep;
}

GraphFusionReport FusionEngine::fuse_graph(const NetGraph& g) {
  const PartitionResult part = partition_mbci(g, gpu_);
  std::vector<ChainSpec> chains;
  chains.reserve(part.mbci.size());
  for (const MbciSubgraph& sub : part.mbci) chains.push_back(sub.chain);
  GraphFusionReport rep = fuse_chains(chains, g.name());
  rep.graph_nodes = g.size();
  rep.mbci_subgraphs = static_cast<int>(part.mbci.size());
  return rep;
}

FusionResult FusionEngine::fuse_cached_impl(const ChainSpec& chain,
                                            TuningCache& cache,
                                            Mutex* cache_mu) const {
  // `cache_mu` (when set) guards only the cache accesses — never the
  // tuning run itself, so engine-owned-cache fusions still overlap.
  const auto locked_resolve = [&](const SearchSpace& space) {
    if (cache_mu == nullptr) return cache.resolve(chain, gpu_, space);
    const LockGuard lk(*cache_mu);
    return cache.resolve(chain, gpu_, space);
  };
  if (!chain.valid()) {
    FusionResult result;
    result.status = FusionStatus::InvalidChain;
    result.reason = chain.validation_error();
    return result;
  }
  SearchSpace space(chain, opt_.space, opt_.prune, opt_.sched);
  if (const auto hit = locked_resolve(space)) {
    FusionResult result;
    result.funnel = space.funnel();
    result.space_size = space.candidates().size();
    result.kernel.emplace(space.schedule_for(*hit), gpu_);
    if (result.kernel->ok()) {
      const KernelMeasurement m = result.kernel->measure();
      result.tuned.ok = true;
      result.tuned.best = *hit;
      result.tuned.best_time_s = m.time_s;
      result.tuned.best_measurement = m;
      result.status = FusionStatus::Ok;
      MCF_LOG(Info) << "FusionEngine: tuning-cache hit for " << chain.name();
      return result;
    }
    MCF_LOG(Warn) << "FusionEngine: stale cache entry for " << chain.name()
                  << ", re-tuning";
  }
  FusionResult result = run_one(chain, nullptr, &space);
  if (result.ok()) {
    CachedSchedule entry;
    entry.expr_key =
        space.expressions()[static_cast<std::size_t>(result.tuned.best.expr_id)]
            .structure_key();
    entry.tiles.assign(result.tuned.best.tiles.begin(),
                       result.tuned.best.tiles.end());
    entry.time_s = result.tuned.best_time_s;
    if (cache_mu == nullptr) {
      cache.put(chain, gpu_, std::move(entry));
    } else {
      const LockGuard lk(*cache_mu);
      cache.put(chain, gpu_, std::move(entry));
    }
  }
  return result;
}

FusionResult FusionEngine::fuse_cached(const ChainSpec& chain,
                                       TuningCache& cache) const {
  return fuse_cached_impl(chain, cache, nullptr);
}

FusionResult FusionEngine::fuse_cached(const ChainSpec& chain) {
  return fuse_cached_impl(chain, tuning_cache_, &cache_mu_);
}

bool FusionEngine::load_tuning_cache(const std::string& path) {
  const LockGuard lk(cache_mu_);
  return tuning_cache_.load(path);
}

bool FusionEngine::save_tuning_cache(const std::string& path) const {
  const LockGuard lk(cache_mu_);
  return tuning_cache_.save(path);
}

std::size_t FusionEngine::result_cache_size() const {
  const LockGuard lk(memo_mu_);
  return results_.size();
}

bool FusionEngine::wait_idle(double timeout_s) const {
  UniqueLock lk(queue_mu_);
  const auto idle = [&] {
    queue_mu_.assert_held();
    return queue_.empty() && busy_ == 0;
  };
  // Degenerate-input contract mirrors FusionTicket::wait_for (<= 0/NaN
  // polls; >= 1e9 s would overflow the clock arithmetic, wait forever).
  if (!(timeout_s > 0.0)) return idle();
  constexpr double kMaxWaitSeconds = 1e9;
  if (!std::isfinite(timeout_s) || timeout_s >= kMaxWaitSeconds) {
    idle_cv_.wait(lk, idle);
    return true;
  }
  return idle_cv_.wait_for(lk, std::chrono::duration<double>(timeout_s), idle);
}

EngineStats FusionEngine::stats() const {
  EngineStats s;
  {
    const LockGuard lk(queue_mu_);
    s.queued = queue_.size();
    s.busy = busy_;
    s.workers = workers_.size();
    s.admitting = admitting_;
  }
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  {
    const LockGuard lk(memo_mu_);
    s.memo_entries = results_.size();
    s.memo_bytes = results_.bytes();
    s.memo_evictions = results_.evictions();
  }
  // Worker-pool health is process-wide (the pools live in the measure
  // backends, which engines may share), mirrored here like jit compile
  // stats are mirrored into the graph report.
  const sandbox::WorkerStats w = sandbox::stats_snapshot();
  s.worker_spawns = static_cast<std::uint64_t>(w.spawned);
  s.worker_respawns = static_cast<std::uint64_t>(w.respawned);
  s.worker_crashes = static_cast<std::uint64_t>(w.crashes);
  s.worker_timeouts = static_cast<std::uint64_t>(w.timeouts);
  s.crash_cache_hits = static_cast<std::uint64_t>(w.negative_hits);
  s.workers_active = static_cast<std::size_t>(std::max<std::int64_t>(w.active, 0));
  // JIT module lifecycle is process-wide too (the registry is shared by
  // every engine); the snapshot carries the accounting identity
  // opened == open + closed.
  const jit::CompileStats j = jit::stats_snapshot();
  s.jit_modules_opened = static_cast<std::uint64_t>(j.modules_opened);
  s.jit_modules_closed = static_cast<std::uint64_t>(j.modules_closed);
  s.jit_modules_open =
      static_cast<std::size_t>(std::max<std::int64_t>(j.modules_open, 0));
  return s;
}

}  // namespace mcf
