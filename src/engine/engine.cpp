#include "engine/engine.hpp"

#include <algorithm>
#include <sstream>

#include "graph/partitioner.hpp"
#include "measure/backend.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf {

const char* fusion_status_name(FusionStatus s) noexcept {
  switch (s) {
    case FusionStatus::Ok:
      return "ok";
    case FusionStatus::InvalidChain:
      return "invalid-chain";
    case FusionStatus::InfeasibleSpace:
      return "infeasible-space";
    case FusionStatus::PruneEmpty:
      return "prune-empty";
    case FusionStatus::MeasureFailed:
      return "measure-failed";
    case FusionStatus::Cancelled:
      return "cancelled";
  }
  return "?";
}

// ---- FusionTicket -----------------------------------------------------------

const ChainSpec& FusionTicket::chain() const {
  MCF_CHECK(state_ != nullptr) << "chain() on an empty FusionTicket";
  return state_->chain;
}

bool FusionTicket::ready() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->done;
}

void FusionTicket::wait() const {
  MCF_CHECK(state_ != nullptr) << "wait() on an empty FusionTicket";
  std::unique_lock<std::mutex> lk(state_->mu);
  state_->cv.wait(lk, [&] { return state_->done; });
}

bool FusionTicket::wait_for(double seconds) const {
  MCF_CHECK(state_ != nullptr) << "wait_for() on an empty FusionTicket";
  std::unique_lock<std::mutex> lk(state_->mu);
  return state_->cv.wait_for(
      lk, std::chrono::duration<double>(std::max(0.0, seconds)),
      [&] { return state_->done; });
}

const FusionResult& FusionTicket::get() const {
  wait();
  return state_->result;
}

bool FusionTicket::cancel() {
  if (!state_) return false;
  state_->progress->request_cancel();
  std::lock_guard<std::mutex> lk(state_->mu);
  return !state_->done;
}

FusionTicket::Progress FusionTicket::progress() const {
  Progress p;
  if (!state_) return p;
  p.generations = state_->progress->generations.load(std::memory_order_relaxed);
  p.estimates = state_->progress->estimates.load(std::memory_order_relaxed);
  p.measurements =
      state_->progress->measurements.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(state_->mu);
  p.started = state_->started;
  p.done = state_->done;
  return p;
}

// ---- GraphFusionReport ------------------------------------------------------

bool GraphFusionReport::all_ok() const noexcept {
  for (const auto& c : chains) {
    if (!c.result || !c.result->ok()) return false;
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += ' ';  // other control chars never appear in our strings
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string GraphFusionReport::to_json() const {
  std::ostringstream os;
  os << "{\"graph\":\"";
  os << json_escape(graph_name);
  os << "\",\"nodes\":" << graph_nodes
     << ",\"mbci_subgraphs\":" << mbci_subgraphs
     << ",\"distinct_chains\":" << distinct_chains
     << ",\"tuned_chains\":" << tuned_chains
     << ",\"total_measurements\":" << total_measurements
     << ",\"tuning_wall_s\":" << tuning_wall_s
     << ",\"jit_compile\":{\"tus_compiled\":" << jit_compile.tus_compiled
     << ",\"kernels_compiled\":" << jit_compile.kernels_compiled
     << ",\"cache_hits\":" << jit_compile.cache_hits()
     << ",\"failures\":" << jit_compile.failures
     << ",\"compile_wall_s\":" << jit_compile.compile_wall_s
     << "},\"chains\":[";
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const GraphChainReport& c = chains[i];
    if (i) os << ",";
    os << "{\"digest\":\"";
    os << json_escape(c.digest);
    os << "\",\"name\":\"";
    os << json_escape(c.chain_name);
    os << "\",\"desc\":\"";
    os << json_escape(c.chain_desc);
    os << "\",\"occurrences\":" << c.occurrences
       << ",\"reused\":" << (c.reused ? "true" : "false") << ",\"status\":\""
       << (c.result ? fusion_status_name(c.result->status) : "missing")
       << "\",\"reason\":\"";
    if (c.result) os << json_escape(c.result->reason);
    os << "\"";
    if (c.result && c.result->ok()) {
      os << ",\"time_us\":" << c.result->time_s() * 1e6
         << ",\"measurements\":" << c.result->tuned.stats.measurements
         << ",\"space_size\":" << c.result->space_size << ",\"best_tiles\":[";
      const auto& tiles = c.result->tuned.best.tiles;
      for (std::size_t t = 0; t < tiles.size(); ++t) {
        if (t) os << ",";
        os << tiles[t];
      }
      os << "]";
    }
    os << "}";
  }
  os << "],\"sub_to_chain\":[";
  for (std::size_t i = 0; i < sub_to_chain.size(); ++i) {
    if (i) os << ",";
    os << sub_to_chain[i];
  }
  os << "]}";
  return os.str();
}

// ---- FusionEngine -----------------------------------------------------------

FusionEngine::FusionEngine(GpuSpec gpu, FusionEngineOptions options)
    : gpu_(std::move(gpu)), opt_(std::move(options)) {
  opt_.prune.smem_limit_bytes = gpu_.smem_per_block;
  if (!opt_.backend.empty()) {
    opt_.tuner.backend = BackendRegistry::instance().create(opt_.backend, gpu_);
    if (opt_.tuner.backend == nullptr) {
      std::string known;
      for (const auto& n : BackendRegistry::instance().names()) {
        known += (known.empty() ? "" : ", ") + n;
      }
      MCF_CHECK(false) << "unknown measure backend '" << opt_.backend
                       << "' (registered: " << known << ")";
    }
  } else if (opt_.tuner.backend == nullptr) {
    // Resolve the default once so every tuning run shares one (stateless)
    // simulator — value-identical to the tuner's per-run default.
    opt_.tuner.backend = std::make_shared<SimulatorBackend>(gpu_);
  }
}

FusionEngine::~FusionEngine() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

FusionEngineOptions FusionEngine::chimera_options() {
  FusionEngineOptions o;
  o.space.include_flat = false;         // nested block execution orders only
  o.sched.collapse_unit_loops = false;  // misses the extent-1 optimisation
  return o;
}

FusionResult FusionEngine::run_one(const ChainSpec& chain,
                                   std::shared_ptr<TuningProgress> progress,
                                   const SearchSpace* prebuilt) const {
  FusionResult result;
  if (!chain.valid()) {
    result.status = FusionStatus::InvalidChain;
    result.reason = chain.validation_error();
    MCF_LOG(Warn) << "FusionEngine: invalid chain '" << chain.name()
                  << "': " << result.reason;
    return result;
  }
  std::optional<SearchSpace> own_space;
  if (prebuilt == nullptr) {
    own_space.emplace(chain, opt_.space, opt_.prune, opt_.sched);
  }
  const SearchSpace& space = prebuilt ? *prebuilt : *own_space;
  result.funnel = space.funnel();
  result.space_size = space.candidates().size();
  if (space.candidates().empty()) {
    std::ostringstream os;
    if (space.expressions().empty() || result.funnel.original <= 0.0) {
      result.status = FusionStatus::InfeasibleSpace;
      os << "space generation produced no tiling expressions for "
         << chain.name();
    } else {
      result.status = FusionStatus::PruneEmpty;
      os << "pruning left 0 of " << result.funnel.original
         << " raw candidates (rule1 " << result.funnel.after_rule1
         << " -> rule2 " << result.funnel.after_rule2 << " -> rule3 "
         << result.funnel.after_rule3 << " -> rule4 "
         << result.funnel.after_rule4 << ")";
    }
    result.reason = os.str();
    MCF_LOG(Warn) << "FusionEngine: nothing to tune for " << chain.name()
                  << ": " << result.reason;
    return result;
  }
  TunerOptions topts = opt_.tuner;
  // Per-workload deterministic noise stream for simulated measurements.
  topts.measure.noise_seed =
      hash_combine(topts.measure.noise_seed, hash_string(chain.name()));
  topts.progress = std::move(progress);
  Tuner tuner(space, gpu_, topts);
  result.tuned = tuner.run();
  if (result.tuned.cancelled) {
    result.status = FusionStatus::Cancelled;
    result.reason = result.tuned.fail_reason;
    return result;
  }
  if (!result.tuned.ok) {
    result.status = FusionStatus::MeasureFailed;
    result.reason = result.tuned.fail_reason.empty()
                        ? "no candidate measured successfully"
                        : result.tuned.fail_reason;
    return result;
  }
  result.kernel.emplace(space.schedule_for(result.tuned.best), gpu_);
  if (!result.kernel->ok()) {
    result.status = FusionStatus::MeasureFailed;
    result.reason = "winner failed to lower: " + result.kernel->error();
    MCF_LOG(Warn) << "FusionEngine: " << result.reason;
    return result;
  }
  result.status = FusionStatus::Ok;
  return result;
}

FusionResult FusionEngine::fuse(const ChainSpec& chain,
                                std::shared_ptr<TuningProgress> progress) const {
  return run_one(chain, std::move(progress));
}

unsigned FusionEngine::max_workers() const {
  const unsigned n = opt_.jobs > 0 ? static_cast<unsigned>(opt_.jobs)
                                   : std::thread::hardware_concurrency();
  return std::max(1u, n);
}

void FusionEngine::spawn_worker_locked() {
  if (stop_) return;
  const std::size_t outstanding = queue_.size() + busy_;
  if (workers_.size() >= max_workers() || workers_.size() >= outstanding) {
    return;
  }
  workers_.emplace_back([this] { worker_loop(); });
}

void FusionEngine::worker_loop() {
  for (;;) {
    std::shared_ptr<detail::TicketState> job;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      stopping = stop_;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    FusionResult r;
    if (stopping) {
      // Shutdown never tunes the backlog: running jobs complete, queued
      // jobs finish as Cancelled so waiters unblock immediately.
      r.status = FusionStatus::Cancelled;
      r.reason = "engine shutting down";
    } else if (job->progress->cancel_requested()) {
      // Cancelled while queued: started stays false so Progress can
      // distinguish a queued-cancel from a mid-run cancel.
      r.status = FusionStatus::Cancelled;
      r.reason = "cancelled before the job started";
    } else {
      {
        std::lock_guard<std::mutex> lk(job->mu);
        job->started = true;
      }
      r = run_one(job->chain, job->progress);
    }
    finish(job, std::move(r));
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      --busy_;
    }
  }
}

void FusionEngine::finish(const std::shared_ptr<detail::TicketState>& state,
                          FusionResult result) {
  {
    std::lock_guard<std::mutex> lk(state->mu);
    state->result = std::move(result);
  }
  if (!state->memo_digest.empty()) {
    // Publish before signalling done: a fuse_chains waiter that wakes on
    // done must find the memo entry.  The aliasing shared_ptr keeps the
    // ticket state (and thus the result) alive as long as the memo does.
    // Only Ok results are memoized — a failed tuning (which may be
    // transient on nondeterministic hardware backends) must not poison
    // its digest for the engine's lifetime; waiters of THIS call still
    // see the failure through their tickets, and the next call re-tunes.
    std::lock_guard<std::mutex> lk(memo_mu_);
    if (state->result.ok()) {
      results_.emplace(state->memo_digest, std::shared_ptr<const FusionResult>(
                                               state, &state->result));
    }
    inflight_.erase(state->memo_digest);
  }
  {
    std::lock_guard<std::mutex> lk(state->mu);
    state->done = true;
  }
  state->cv.notify_all();
}

FusionTicket FusionEngine::submit(ChainSpec chain) {
  auto state = std::make_shared<detail::TicketState>(std::move(chain));
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    MCF_CHECK(!stop_) << "submit() on a shut-down FusionEngine";
    queue_.push_back(state);
    spawn_worker_locked();
  }
  queue_cv_.notify_one();
  return FusionTicket(std::move(state));
}

GraphFusionReport FusionEngine::fuse_chains(const std::vector<ChainSpec>& chains,
                                            const std::string& label) {
  GraphFusionReport rep;
  rep.graph_name = label;
  rep.sub_to_chain.reserve(chains.size());
  // Jit-compilation economy: process-wide counter deltas over the call
  // (zero when the backend never compiles; shared across engines, so
  // concurrent fuse_graph calls each see their own compiles plus any
  // overlap — documented in docs/measurement.md).
  const jit::CompileStats jit_before = jit::stats_snapshot();

  struct Pending {
    std::size_t index;  ///< into rep.chains
    FusionTicket ticket;
    bool fresh;  ///< this call created the job (counts toward tuned_chains)
  };
  std::vector<Pending> pending;
  std::unordered_map<std::string, std::size_t> index_by_digest;

  for (const ChainSpec& chain : chains) {
    const std::string digest = chain_cache_key(chain);
    if (const auto it = index_by_digest.find(digest);
        it != index_by_digest.end()) {
      ++rep.chains[it->second].occurrences;
      rep.sub_to_chain.push_back(static_cast<int>(it->second));
      continue;
    }
    GraphChainReport cr;
    cr.digest = digest;
    cr.chain_name = chain.name();
    cr.chain_desc = chain.to_string();
    cr.occurrences = 1;

    FusionTicket ticket;
    bool fresh = false;
    {
      std::lock_guard<std::mutex> lk(memo_mu_);
      if (const auto hit = results_.find(digest); hit != results_.end()) {
        cr.result = hit->second;
        cr.reused = true;
      } else if (const auto inf = inflight_.find(digest);
                 inf != inflight_.end()) {
        // Another fuse_chains call is already tuning this digest; attach.
        ticket = FusionTicket(inf->second);
        cr.reused = true;
      } else {
        auto state = std::make_shared<detail::TicketState>(chain);
        state->memo_digest = digest;
        inflight_.emplace(digest, state);
        ticket = FusionTicket(std::move(state));
        fresh = true;
      }
    }
    if (fresh) {
      {
        std::lock_guard<std::mutex> lk(queue_mu_);
        MCF_CHECK(!stop_) << "fuse_chains() on a shut-down FusionEngine";
        queue_.push_back(ticket.state_);
        spawn_worker_locked();
      }
      queue_cv_.notify_one();
    }
    const std::size_t idx = rep.chains.size();
    rep.chains.push_back(std::move(cr));
    index_by_digest.emplace(digest, idx);
    rep.sub_to_chain.push_back(static_cast<int>(idx));
    if (ticket.valid()) pending.push_back(Pending{idx, std::move(ticket), fresh});
  }

  for (Pending& p : pending) {
    const FusionResult& r = p.ticket.get();
    rep.chains[p.index].result = std::shared_ptr<const FusionResult>(
        p.ticket.state_, &p.ticket.state_->result);
    if (p.fresh) {
      ++rep.tuned_chains;
      rep.total_measurements += r.tuned.stats.measurements;
      rep.tuning_wall_s += r.tuned.stats.wall_seconds;
    }
  }
  rep.distinct_chains = static_cast<int>(rep.chains.size());
  rep.jit_compile = jit::stats_snapshot().since(jit_before);
  return rep;
}

GraphFusionReport FusionEngine::fuse_graph(const NetGraph& g) {
  const PartitionResult part = partition_mbci(g, gpu_);
  std::vector<ChainSpec> chains;
  chains.reserve(part.mbci.size());
  for (const MbciSubgraph& sub : part.mbci) chains.push_back(sub.chain);
  GraphFusionReport rep = fuse_chains(chains, g.name());
  rep.graph_nodes = g.size();
  rep.mbci_subgraphs = static_cast<int>(part.mbci.size());
  return rep;
}

FusionResult FusionEngine::fuse_cached_impl(const ChainSpec& chain,
                                            TuningCache& cache,
                                            std::mutex* cache_mu) const {
  // `cache_mu` (when set) guards only the cache accesses — never the
  // tuning run itself, so engine-owned-cache fusions still overlap.
  const auto locked_resolve = [&](const SearchSpace& space) {
    if (cache_mu == nullptr) return cache.resolve(chain, gpu_, space);
    std::lock_guard<std::mutex> lk(*cache_mu);
    return cache.resolve(chain, gpu_, space);
  };
  if (!chain.valid()) {
    FusionResult result;
    result.status = FusionStatus::InvalidChain;
    result.reason = chain.validation_error();
    return result;
  }
  SearchSpace space(chain, opt_.space, opt_.prune, opt_.sched);
  if (const auto hit = locked_resolve(space)) {
    FusionResult result;
    result.funnel = space.funnel();
    result.space_size = space.candidates().size();
    result.kernel.emplace(space.schedule_for(*hit), gpu_);
    if (result.kernel->ok()) {
      const KernelMeasurement m = result.kernel->measure();
      result.tuned.ok = true;
      result.tuned.best = *hit;
      result.tuned.best_time_s = m.time_s;
      result.tuned.best_measurement = m;
      result.status = FusionStatus::Ok;
      MCF_LOG(Info) << "FusionEngine: tuning-cache hit for " << chain.name();
      return result;
    }
    MCF_LOG(Warn) << "FusionEngine: stale cache entry for " << chain.name()
                  << ", re-tuning";
  }
  FusionResult result = run_one(chain, nullptr, &space);
  if (result.ok()) {
    CachedSchedule entry;
    entry.expr_key =
        space.expressions()[static_cast<std::size_t>(result.tuned.best.expr_id)]
            .structure_key();
    entry.tiles.assign(result.tuned.best.tiles.begin(),
                       result.tuned.best.tiles.end());
    entry.time_s = result.tuned.best_time_s;
    if (cache_mu == nullptr) {
      cache.put(chain, gpu_, std::move(entry));
    } else {
      std::lock_guard<std::mutex> lk(*cache_mu);
      cache.put(chain, gpu_, std::move(entry));
    }
  }
  return result;
}

FusionResult FusionEngine::fuse_cached(const ChainSpec& chain,
                                       TuningCache& cache) const {
  return fuse_cached_impl(chain, cache, nullptr);
}

FusionResult FusionEngine::fuse_cached(const ChainSpec& chain) {
  return fuse_cached_impl(chain, tuning_cache_, &cache_mu_);
}

bool FusionEngine::load_tuning_cache(const std::string& path) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  return tuning_cache_.load(path);
}

bool FusionEngine::save_tuning_cache(const std::string& path) const {
  std::lock_guard<std::mutex> lk(cache_mu_);
  return tuning_cache_.save(path);
}

std::size_t FusionEngine::result_cache_size() const {
  std::lock_guard<std::mutex> lk(memo_mu_);
  return results_.size();
}

}  // namespace mcf
