// FusionEngine — the library's service-grade entry point.
//
// A long-lived engine owns everything one fusion deployment shares across
// requests: the GPU spec, the resolved MeasureBackend, the worker pool for
// concurrent chain tuning, a process-wide TuningCache, and a digest-keyed
// memo of finished FusionResults.  Three front doors:
//
//   * fuse(chain)        — synchronous, runs inline on the caller's thread;
//                          bit-identical to the classic MCFuser::fuse()
//                          (pinned by tests/engine/test_regression.cpp).
//   * submit(chain)      — asynchronous; returns a FusionTicket with
//                          wait()/ready()/cancel() and live progress
//                          counters fed from the tuner.
//   * fuse_graph(graph)  — whole-graph batch fusion: partitions the graph,
//                          deduplicates structurally-identical chains by
//                          digest, tunes distinct chains concurrently
//                          across the worker pool, and assembles a
//                          GraphFusionReport.
//
// Every result carries a FusionStatus (engine/status.hpp) plus a
// human-readable reason from the layer that failed — no more bool ok.
//
// Thread-safety: all public methods are safe to call concurrently from
// multiple threads.  Results are deterministic per chain regardless of
// jobs/threads (the tuner is seed-deterministic; concurrency only changes
// wall-clock).  See docs/api.md for the full contract.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/status.hpp"
#include "exec/jit.hpp"
#include "exec/program.hpp"
#include "graph/netgraph.hpp"
#include "search/space.hpp"
#include "search/tuner.hpp"
#include "search/tuning_cache.hpp"

namespace mcf {

class MeasureBackend;

struct FusionEngineOptions {
  SpaceOptions space;
  PruneOptions prune;      ///< smem_limit_bytes is overwritten from the GPU
  ScheduleOptions sched;   ///< hoisting / unit-collapse flags
  TunerOptions tuner;
  /// Measurement backend by registry name ("sim", "interp", "cached-sim",
  /// see measure/backend.hpp).  Empty = tuner.backend if set, else the
  /// simulator.  Resolved once at engine construction; an unknown name
  /// aborts with the registered names in the message.
  std::string backend;
  /// Worker threads for asynchronous submission and graph-level batch
  /// fusion (distinct chains tune concurrently).  0 = hardware
  /// concurrency.  Workers start lazily on the first submit()/fuse_graph();
  /// the synchronous fuse() never spawns threads.
  int jobs = 0;
};

/// Everything the fusion pipeline produces for one chain.
struct FusionResult {
  /// Every engine path assigns a status; the default only survives on a
  /// default-constructed (never-run) result.
  FusionStatus status = FusionStatus::InvalidChain;
  /// Human-readable failure detail from the layer that failed (prune
  /// funnel, measurement backend, lowering, validation).  Empty on Ok.
  std::string reason;
  TunedResult tuned;
  PruneFunnel funnel;
  std::size_t space_size = 0;
  /// Best fused kernel, compiled for the target GPU (Ok results only).
  std::optional<CompiledKernel> kernel;

  [[nodiscard]] bool ok() const noexcept { return status == FusionStatus::Ok; }
  [[nodiscard]] double time_s() const noexcept { return tuned.best_time_s; }
};

namespace detail {

/// Shared state between a FusionTicket and the engine worker running it.
struct TicketState {
  explicit TicketState(ChainSpec c)
      : chain(std::move(c)), progress(std::make_shared<TuningProgress>()) {}

  const ChainSpec chain;
  const std::shared_ptr<TuningProgress> progress;
  /// Set when the result must also be published to the engine's
  /// digest-keyed memo (fuse_graph path).
  std::string memo_digest;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  bool started = false;
  FusionResult result;
};

}  // namespace detail

/// Future-like handle to an asynchronous fusion job.  Cheap to copy; all
/// copies observe the same job.  A default-constructed ticket is empty
/// (valid() == false).
class FusionTicket {
 public:
  /// Live counters mirrored from the tuner (see TuningProgress).
  struct Progress {
    int generations = 0;
    int estimates = 0;
    int measurements = 0;
    bool started = false;
    bool done = false;
  };

  FusionTicket() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] const ChainSpec& chain() const;

  /// True once the result is available (never blocks).
  [[nodiscard]] bool ready() const;
  /// Blocks until the job completes.
  void wait() const;
  /// Blocks up to `seconds`; true when the job completed in time.
  bool wait_for(double seconds) const;
  /// Waits, then returns the result (owned by the shared state — valid as
  /// long as any ticket copy is alive).
  [[nodiscard]] const FusionResult& get() const;

  /// Best-effort cancellation: a queued job finishes as Cancelled without
  /// running; a running job stops (as Cancelled) at its next generation
  /// or refinement-round boundary.  A job past tuning (or already done)
  /// completes normally — never a silently truncated search.  Returns
  /// true when the request was registered before the job finished.
  bool cancel();

  [[nodiscard]] Progress progress() const;

 private:
  friend class FusionEngine;
  explicit FusionTicket(std::shared_ptr<detail::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::TicketState> state_;
};

/// Per-distinct-chain entry of a GraphFusionReport.
struct GraphChainReport {
  std::string digest;      ///< structural chain digest (chain_cache_key)
  std::string chain_name;  ///< representative (first occurrence) name
  std::string chain_desc;  ///< ChainSpec::to_string of the representative
  int occurrences = 0;     ///< how many subgraphs share this digest
  /// True when the result came from the engine's memo (tuned by an
  /// earlier fuse_graph/fuse_chains call) instead of this call.
  bool reused = false;
  std::shared_ptr<const FusionResult> result;
};

/// What fuse_graph produced: one entry per distinct chain digest plus the
/// subgraph -> chain mapping and aggregate tuning-economy counters.
struct GraphFusionReport {
  std::string graph_name;
  int graph_nodes = 0;
  int mbci_subgraphs = 0;       ///< fusable regions found by the partitioner
  int distinct_chains = 0;      ///< == chains.size()
  int tuned_chains = 0;         ///< tuned fresh during this call
  int total_measurements = 0;   ///< hardware measurements spent this call
  double tuning_wall_s = 0.0;   ///< summed tuner wall-clock this call
  /// Kernel-compilation economy of this call when the measurement backend
  /// jit-compiles (deltas of the process-wide exec/jit counters over the
  /// call; all-zero for non-compiling backends).  TUs measure how well
  /// the per-wave batching amortised compiler invocations; cache hits
  /// count kernels resolved without compiling at all.
  jit::CompileStats jit_compile;
  std::vector<GraphChainReport> chains;
  /// For input subgraph/chain i: index into `chains`.
  std::vector<int> sub_to_chain;

  [[nodiscard]] bool all_ok() const noexcept;
  /// Machine-readable report (the CLI's --json output).
  [[nodiscard]] std::string to_json() const;
};

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// report emitters — to_json and the CLI's --json output share it.
[[nodiscard]] std::string json_escape(const std::string& s);

class FusionEngine {
 public:
  explicit FusionEngine(GpuSpec gpu, FusionEngineOptions options = {});
  ~FusionEngine();

  FusionEngine(const FusionEngine&) = delete;
  FusionEngine& operator=(const FusionEngine&) = delete;

  [[nodiscard]] const GpuSpec& gpu() const noexcept { return gpu_; }
  [[nodiscard]] const FusionEngineOptions& options() const noexcept { return opt_; }
  /// The resolved measurement backend every tuning run goes through.
  [[nodiscard]] const std::shared_ptr<MeasureBackend>& backend() const noexcept {
    return opt_.tuner.backend;
  }

  /// Synchronous single-chain fusion, inline on the calling thread.
  /// `progress` optionally attaches an observation/cancellation channel.
  [[nodiscard]] FusionResult fuse(
      const ChainSpec& chain,
      std::shared_ptr<TuningProgress> progress = nullptr) const;

  /// Asynchronous submission onto the engine's worker pool.
  [[nodiscard]] FusionTicket submit(ChainSpec chain);

  /// Whole-graph batch fusion: partition -> digest-dedup -> concurrent
  /// tuning of distinct chains -> report.  Results are memoized in the
  /// engine, so repeated calls (or shared chains across graphs) tune once.
  [[nodiscard]] GraphFusionReport fuse_graph(const NetGraph& g);

  /// Same pipeline over an explicit chain list (callers that partitioned
  /// already — GraphExecutor).  Order defines the sub_to_chain mapping.
  [[nodiscard]] GraphFusionReport fuse_chains(const std::vector<ChainSpec>& chains,
                                              const std::string& label = "");

  /// Like fuse(), but consults `cache` first (a valid hit skips tuning
  /// entirely — zero measurements) and records the winner on a miss.
  [[nodiscard]] FusionResult fuse_cached(const ChainSpec& chain,
                                         TuningCache& cache) const;
  /// fuse_cached against the engine-owned process-wide cache.
  [[nodiscard]] FusionResult fuse_cached(const ChainSpec& chain);

  /// Engine-owned persistent tuning cache (guarded; load/save under lock).
  bool load_tuning_cache(const std::string& path);
  [[nodiscard]] bool save_tuning_cache(const std::string& path) const;

  /// Distinct chain digests with a memoized successful result (failures
  /// are reported but never memoized — the next request re-tunes).
  [[nodiscard]] std::size_t result_cache_size() const;

  /// Preset reproducing the paper's MCFuser-Chimera baseline: deep
  /// tilings only, no extent-1 hoisting (§VI-A "Comparisons").
  [[nodiscard]] static FusionEngineOptions chimera_options();

 private:
  /// The classic MCFuser::fuse() pipeline plus status/reason mapping.
  /// `prebuilt` (nullable) reuses a SearchSpace the caller already built
  /// for this chain with this engine's options (fuse_cached's miss path).
  [[nodiscard]] FusionResult run_one(const ChainSpec& chain,
                                     std::shared_ptr<TuningProgress> progress,
                                     const SearchSpace* prebuilt = nullptr) const;

  /// fuse_cached over any cache; `cache_mu` (nullable) guards only the
  /// resolve/put calls, never the tuning run.
  [[nodiscard]] FusionResult fuse_cached_impl(const ChainSpec& chain,
                                              TuningCache& cache,
                                              std::mutex* cache_mu) const;

  /// Spawns one worker (caller holds queue_mu_) when the outstanding job
  /// count exceeds the current worker count, up to the jobs cap — so N
  /// submissions cost min(N, jobs) threads, never the full cap eagerly.
  void spawn_worker_locked();
  [[nodiscard]] unsigned max_workers() const;
  void worker_loop();
  void finish(const std::shared_ptr<detail::TicketState>& state,
              FusionResult result);

  GpuSpec gpu_;
  FusionEngineOptions opt_;

  // Async workers (lazy).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<detail::TicketState>> queue_;
  std::vector<std::thread> workers_;
  std::size_t busy_ = 0;  ///< workers currently running a job (queue_mu_)
  bool stop_ = false;

  // Digest-keyed memo of finished results + in-flight dedup.
  mutable std::mutex memo_mu_;
  std::unordered_map<std::string, std::shared_ptr<const FusionResult>> results_;
  std::unordered_map<std::string, std::shared_ptr<detail::TicketState>> inflight_;

  // Engine-owned persistent tuning cache.
  mutable std::mutex cache_mu_;
  mutable TuningCache tuning_cache_;
};

}  // namespace mcf
