// FusionEngine — the library's service-grade entry point.
//
// A long-lived engine owns everything one fusion deployment shares across
// requests: the GPU spec, the resolved MeasureBackend, the worker pool for
// concurrent chain tuning, a process-wide TuningCache, and a digest-keyed
// memo of finished FusionResults.  Three front doors:
//
//   * fuse(chain)        — synchronous, runs inline on the caller's thread;
//                          bit-identical to the classic MCFuser::fuse()
//                          (pinned by tests/engine/test_regression.cpp).
//   * submit(chain)      — asynchronous; returns a FusionTicket with
//                          wait()/ready()/cancel() and live progress
//                          counters fed from the tuner.
//   * fuse_graph(graph)  — whole-graph batch fusion: partitions the graph,
//                          deduplicates structurally-identical chains by
//                          digest, tunes distinct chains concurrently
//                          across the worker pool, and assembles a
//                          GraphFusionReport.
//
// Every result carries a FusionStatus (engine/status.hpp) plus a
// human-readable reason from the layer that failed — no more bool ok.
//
// Load hardening: the async queue is bounded (FusionEngineOptions::queue —
// max queued, max in-flight, queue-wait deadline, overflow = Reject |
// Block | ReplaceOldest), the result memo is LRU-bounded
// (FusionEngineOptions::memo), and stats() snapshots queue depth,
// admission counters and memo occupancy — a traffic burst sheds load as
// Rejected/DeadlineExceeded tickets instead of growing without bound.
//
// Thread-safety: all public methods are safe to call concurrently from
// multiple threads.  Results are deterministic per chain regardless of
// jobs/threads (the tuner is seed-deterministic; concurrency only changes
// wall-clock).  See docs/api.md for the full contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/status.hpp"
#include "support/lru_map.hpp"
#include "support/mutex.hpp"
#include "exec/jit.hpp"
#include "exec/program.hpp"
#include "graph/netgraph.hpp"
#include "search/space.hpp"
#include "search/tuner.hpp"
#include "search/tuning_cache.hpp"

namespace mcf {

class MeasureBackend;

/// What submit() does when the bounded admission queue is full.
enum class OverflowPolicy : std::uint8_t {
  Reject,         ///< resolve the new ticket as Rejected immediately (429)
  Block,          ///< block the submitting thread until a slot frees up
  ReplaceOldest,  ///< shed the oldest queued job (it resolves as Rejected)
};

/// Stable display name ("reject", "block", "replace-oldest").
[[nodiscard]] const char* overflow_policy_name(OverflowPolicy p) noexcept;

/// Admission control for the asynchronous queue.  All limits default to
/// 0 = unbounded (the pre-admission-control behaviour).  The policy
/// governs submit()/try_submit(); the graph batch path (fuse_chains /
/// fuse_graph) respects the queue *bounds* but always waits for a slot
/// instead of shedding — a batch call owns its backlog — while the
/// per-ticket deadline applies to both paths.
struct QueuePolicy {
  /// Max jobs waiting in the queue (not yet picked up by a worker).
  std::size_t max_queued = 0;
  /// Max outstanding jobs (queued + running).  Tighter of the two caps
  /// wins when both are set.
  std::size_t max_in_flight = 0;
  /// Per-ticket queue-wait deadline in seconds (measured from admission):
  /// a job still waiting when a worker finally picks it up resolves as
  /// DeadlineExceeded without tuning.  A job that *starts* in time runs
  /// to completion.  0 (or negative/non-finite/>= 1e9 — ~31 years, the
  /// clock-arithmetic overflow guard) = no deadline.
  double deadline_s = 0.0;
  OverflowPolicy overflow = OverflowPolicy::Reject;
};

/// Byte/entry caps for the engine's digest-keyed result memo.  0 =
/// unbounded.  Eviction is LRU; an evicted digest simply re-tunes on the
/// next request (deterministically identical result — pinned by
/// tests/engine/test_fuse_graph.cpp).  The newest entry is never evicted,
/// so a single result larger than max_bytes still memoizes (the memo
/// holds at most that one entry).
struct MemoLimits {
  std::size_t max_entries = 0;
  std::size_t max_bytes = 0;  ///< approximate payload bytes (see stats())
};

struct FusionEngineOptions {
  SpaceOptions space;
  PruneOptions prune;      ///< smem_limit_bytes is overwritten from the GPU
  ScheduleOptions sched;   ///< hoisting / unit-collapse flags
  TunerOptions tuner;
  /// Measurement backend by registry name ("sim", "interp", "cached-sim",
  /// see measure/backend.hpp).  Empty = tuner.backend if set, else the
  /// simulator.  Resolved once at engine construction; an unknown name
  /// aborts with the registered names in the message.
  std::string backend;
  /// Worker threads for asynchronous submission and graph-level batch
  /// fusion (distinct chains tune concurrently).  0 = hardware
  /// concurrency.  Workers start lazily on the first submit()/fuse_graph();
  /// the synchronous fuse() never spawns threads.
  int jobs = 0;
  /// Bounded admission queue (load shedding); defaults to unbounded.
  QueuePolicy queue;
  /// Caps on the digest-keyed result memo; defaults to unbounded.
  MemoLimits memo;
};

/// Point-in-time engine observability snapshot (stats()); the counter
/// fields are monotonic over the engine's lifetime.  Every job that
/// enters the admission path (submit, try_submit, fresh fuse_chains
/// work) counts in `submitted` and lands in exactly one of
/// completed/rejected/cancelled/deadline_exceeded — the stress suite pins
/// the identity submitted == completed + rejected + cancelled +
/// deadline_exceeded once all tickets resolved.  The synchronous fuse()
/// path never touches the queue and is not counted.
struct EngineStats {
  std::size_t queued = 0;   ///< jobs waiting for a worker (instantaneous)
  std::size_t busy = 0;     ///< workers currently running a job
  std::size_t workers = 0;  ///< worker threads spawned so far
  /// Admission calls in progress — in particular, submitters blocked
  /// waiting for a queue slot under the Block overflow policy.
  std::size_t admitting = 0;
  std::uint64_t submitted = 0;  ///< admission attempts (terminal-or-queued)
  std::uint64_t completed = 0;  ///< ran the pipeline (Ok or a tuning failure)
  std::uint64_t rejected = 0;   ///< shed at admission (queue full)
  std::uint64_t cancelled = 0;  ///< resolved Cancelled (ticket or shutdown)
  std::uint64_t deadline_exceeded = 0;  ///< shed after queue-wait deadline
  std::size_t memo_entries = 0;  ///< digests currently memoized
  std::size_t memo_bytes = 0;    ///< approximate memoized payload bytes
  std::uint64_t memo_evictions = 0;  ///< results LRU-evicted so far
  // Sandbox worker-pool health (process-wide, like the jit compile
  // stats — every engine in the process shares the pools' counters; see
  // exec/sandbox.hpp).  All zero when isolation is never used.
  std::uint64_t worker_spawns = 0;      ///< worker processes exec'd
  std::uint64_t worker_respawns = 0;    ///< spawns replacing a dead worker
  std::uint64_t worker_crashes = 0;     ///< measurements ending in a crash
  std::uint64_t worker_timeouts = 0;    ///< measurements killed at deadline
  std::uint64_t crash_cache_hits = 0;   ///< served by the crash negative-cache
  std::size_t workers_active = 0;       ///< live worker processes (gauge)
  // JIT module lifecycle (process-wide, like the worker-pool health):
  // dlopen'd kernel TUs are refcounted and dlclose'd on last release, so
  // `jit_modules_open` is bounded by the kernel cap plus live kernel
  // handles.  Accounting identity: opened == open + closed.
  std::uint64_t jit_modules_opened = 0;  ///< dlopen()s performed
  std::uint64_t jit_modules_closed = 0;  ///< dlclose()s on last release
  std::size_t jit_modules_open = 0;      ///< resident modules (gauge)
};

/// Everything the fusion pipeline produces for one chain.
struct FusionResult {
  /// Every engine path assigns a status; the default only survives on a
  /// default-constructed (never-run) result.
  FusionStatus status = FusionStatus::InvalidChain;
  /// Human-readable failure detail from the layer that failed (prune
  /// funnel, measurement backend, lowering, validation).  Empty on Ok.
  std::string reason;
  TunedResult tuned;
  PruneFunnel funnel;
  std::size_t space_size = 0;
  /// Best fused kernel, compiled for the target GPU (Ok results only).
  std::optional<CompiledKernel> kernel;

  [[nodiscard]] bool ok() const noexcept { return status == FusionStatus::Ok; }
  [[nodiscard]] double time_s() const noexcept { return tuned.best_time_s; }
};

namespace detail {

/// Shared state between a FusionTicket and the engine worker running it.
struct TicketState {
  explicit TicketState(ChainSpec c)
      : chain(std::move(c)), progress(std::make_shared<TuningProgress>()) {}

  const ChainSpec chain;
  const std::shared_ptr<TuningProgress> progress;
  /// Set when the result must also be published to the engine's
  /// digest-keyed memo (fuse_graph path).
  std::string memo_digest;
  /// Queue-wait deadline (QueuePolicy::deadline_s); checked by the worker
  /// at pick-up time.  Batch (fuse_chains) jobs are exempt from
  /// ReplaceOldest shedding but not from the deadline.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  /// Batch jobs must not be shed by ReplaceOldest: the batch call owns
  /// its backlog and waits for it.
  bool sheddable = true;

  mutable Mutex mu{"ticket.state"};
  mutable CondVar cv;
  bool done MCF_GUARDED_BY(mu) = false;
  bool started MCF_GUARDED_BY(mu) = false;
  /// Written exactly once (by finish(), under mu, before done flips);
  /// the aliasing shared_ptr the memo publishes reads it lock-free only
  /// AFTER done — by then the value is frozen for the state's lifetime.
  FusionResult result MCF_GUARDED_BY(mu);
};

}  // namespace detail

/// Future-like handle to an asynchronous fusion job.  Cheap to copy; all
/// copies observe the same job.  A default-constructed ticket is empty
/// (valid() == false).
class FusionTicket {
 public:
  /// Live counters mirrored from the tuner (see TuningProgress).
  struct Progress {
    int generations = 0;
    int estimates = 0;
    int measurements = 0;
    bool started = false;
    bool done = false;
  };

  FusionTicket() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] const ChainSpec& chain() const;

  /// True once the result is available (never blocks).
  [[nodiscard]] bool ready() const;
  /// Blocks until the job completes.
  void wait() const;
  /// Blocks up to `seconds`; true when the job completed in time.
  /// Contract for degenerate inputs: seconds <= 0 or NaN polls once
  /// (equivalent to ready()); +infinity (or any wait beyond ~31 years)
  /// waits indefinitely like wait().  Raw doubles never reach the
  /// condition variable unclamped.
  bool wait_for(double seconds) const;
  /// Waits, then returns the result (owned by the shared state — valid as
  /// long as any ticket copy is alive).
  [[nodiscard]] const FusionResult& get() const;

  /// Best-effort cancellation: a queued job finishes as Cancelled without
  /// running; a running job stops (as Cancelled) at its next generation
  /// or refinement-round boundary.  A job past tuning (or already done)
  /// completes normally — never a silently truncated search.  Returns
  /// true when the request was registered before the job finished; once
  /// the job is done, cancel() returns false and is a guaranteed no-op
  /// (the finished result is never touched).  Cancelling twice is
  /// idempotent.  Both properties are pinned by tests/engine.
  bool cancel();

  [[nodiscard]] Progress progress() const;

 private:
  friend class FusionEngine;
  explicit FusionTicket(std::shared_ptr<detail::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::TicketState> state_;
};

/// Per-distinct-chain entry of a GraphFusionReport.
struct GraphChainReport {
  std::string digest;      ///< structural chain digest (chain_cache_key)
  std::string chain_name;  ///< representative (first occurrence) name
  std::string chain_desc;  ///< ChainSpec::to_string of the representative
  int occurrences = 0;     ///< how many subgraphs share this digest
  /// True when the result came from the engine's memo (tuned by an
  /// earlier fuse_graph/fuse_chains call) instead of this call.
  bool reused = false;
  std::shared_ptr<const FusionResult> result;
};

/// What fuse_graph produced: one entry per distinct chain digest plus the
/// subgraph -> chain mapping and aggregate tuning-economy counters.
struct GraphFusionReport {
  std::string graph_name;
  int graph_nodes = 0;
  int mbci_subgraphs = 0;       ///< fusable regions found by the partitioner
  int distinct_chains = 0;      ///< == chains.size()
  int tuned_chains = 0;         ///< tuned fresh during this call
  int total_measurements = 0;   ///< hardware measurements spent this call
  double tuning_wall_s = 0.0;   ///< summed tuner wall-clock this call
  /// Kernel-compilation economy of this call when the measurement backend
  /// jit-compiles (deltas of the process-wide exec/jit counters over the
  /// call; all-zero for non-compiling backends).  TUs measure how well
  /// the per-wave batching amortised compiler invocations; cache hits
  /// count kernels resolved without compiling at all.
  jit::CompileStats jit_compile;
  /// Engine snapshot taken as the call returns (queue depth, admission
  /// counters, memo occupancy) — the service-health section of to_json.
  EngineStats engine_stats;
  std::vector<GraphChainReport> chains;
  /// For input subgraph/chain i: index into `chains`.
  std::vector<int> sub_to_chain;

  [[nodiscard]] bool all_ok() const noexcept;
  /// Machine-readable report (the CLI's --json output).
  [[nodiscard]] std::string to_json() const;
};

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// report emitters — to_json and the CLI's --json output share it.
[[nodiscard]] std::string json_escape(const std::string& s);

class FusionEngine {
 public:
  explicit FusionEngine(GpuSpec gpu, FusionEngineOptions options = {});
  ~FusionEngine();

  FusionEngine(const FusionEngine&) = delete;
  FusionEngine& operator=(const FusionEngine&) = delete;

  [[nodiscard]] const GpuSpec& gpu() const noexcept { return gpu_; }
  [[nodiscard]] const FusionEngineOptions& options() const noexcept { return opt_; }
  /// The resolved measurement backend every tuning run goes through.
  [[nodiscard]] const std::shared_ptr<MeasureBackend>& backend() const noexcept {
    return opt_.tuner.backend;
  }

  /// Synchronous single-chain fusion, inline on the calling thread.
  /// `progress` optionally attaches an observation/cancellation channel.
  [[nodiscard]] FusionResult fuse(
      const ChainSpec& chain,
      std::shared_ptr<TuningProgress> progress = nullptr) const;

  /// Asynchronous submission onto the engine's worker pool, subject to
  /// the configured QueuePolicy.  With a full bounded queue the call
  /// sheds or blocks per QueuePolicy::overflow; a shed submission still
  /// returns a valid ticket, already resolved as Rejected (callers
  /// branch on get().status, never on ticket validity).  An Ok result is
  /// published to the digest memo (so fuse_graph reuses it), but submit
  /// never reads the memo — an explicit submission always tunes.
  [[nodiscard]] FusionTicket submit(ChainSpec chain);

  /// Non-blocking submission: like submit(), but when the queue is full
  /// under the Block policy it returns a Rejected ticket immediately
  /// instead of waiting (Reject and ReplaceOldest behave as in submit()).
  [[nodiscard]] FusionTicket try_submit(ChainSpec chain);

  /// Whole-graph batch fusion: partition -> digest-dedup -> concurrent
  /// tuning of distinct chains -> report.  Results are memoized in the
  /// engine, so repeated calls (or shared chains across graphs) tune once.
  [[nodiscard]] GraphFusionReport fuse_graph(const NetGraph& g);

  /// Same pipeline over an explicit chain list (callers that partitioned
  /// already — GraphExecutor).  Order defines the sub_to_chain mapping.
  [[nodiscard]] GraphFusionReport fuse_chains(const std::vector<ChainSpec>& chains,
                                              const std::string& label = "");

  /// Like fuse(), but consults `cache` first (a valid hit skips tuning
  /// entirely — zero measurements) and records the winner on a miss.
  [[nodiscard]] FusionResult fuse_cached(const ChainSpec& chain,
                                         TuningCache& cache) const;
  /// fuse_cached against the engine-owned process-wide cache.
  [[nodiscard]] FusionResult fuse_cached(const ChainSpec& chain);

  /// Engine-owned persistent tuning cache (guarded; load/save under lock).
  bool load_tuning_cache(const std::string& path);
  [[nodiscard]] bool save_tuning_cache(const std::string& path) const;

  /// Distinct chain digests with a memoized successful result (failures
  /// are reported but never memoized — the next request re-tunes).
  [[nodiscard]] std::size_t result_cache_size() const;

  /// Point-in-time observability snapshot (queue depth, admission
  /// counters, memo occupancy/evictions).  Safe to call concurrently.
  [[nodiscard]] EngineStats stats() const;

  /// Blocks until the async queue is quiescent (nothing queued, no
  /// worker running a job) or the timeout expires; true when idle.  A
  /// drain barrier for front-ends (net::FusionServer): stop feeding the
  /// engine, resolve your tickets, then wait_idle before tearing down.
  /// Degenerate inputs follow FusionTicket::wait_for — <= 0/NaN polls
  /// once, +infinity (or >= 1e9 s) waits indefinitely.  New submissions
  /// while waiting extend the wait; quiescence is observed, not latched.
  [[nodiscard]] bool wait_idle(double timeout_s) const;

  /// Preset reproducing the paper's MCFuser-Chimera baseline: deep
  /// tilings only, no extent-1 hoisting (§VI-A "Comparisons").
  [[nodiscard]] static FusionEngineOptions chimera_options();

 private:
  /// The classic MCFuser::fuse() pipeline plus status/reason mapping.
  /// `prebuilt` (nullable) reuses a SearchSpace the caller already built
  /// for this chain with this engine's options (fuse_cached's miss path).
  [[nodiscard]] FusionResult run_one(const ChainSpec& chain,
                                     std::shared_ptr<TuningProgress> progress,
                                     const SearchSpace* prebuilt = nullptr) const;

  /// fuse_cached over any cache; `cache_mu` (nullable) guards only the
  /// resolve/put calls, never the tuning run.  Conditional locking
  /// through a nullable mutex pointer is invisible to the static
  /// analysis, hence the escape hatch (the runtime validator still sees
  /// every acquisition).
  [[nodiscard]] FusionResult fuse_cached_impl(const ChainSpec& chain,
                                              TuningCache& cache,
                                              Mutex* cache_mu) const
      MCF_NO_THREAD_SAFETY_ANALYSIS;

  /// Spawns one worker when the outstanding job count exceeds the
  /// current worker count, up to the jobs cap — so N submissions cost
  /// min(N, jobs) threads, never the full cap eagerly.
  void spawn_worker_locked() MCF_REQUIRES(queue_mu_);
  [[nodiscard]] unsigned max_workers() const;
  void worker_loop();
  void finish(const std::shared_ptr<detail::TicketState>& state,
              FusionResult result);

  /// True when the bounded queue has no room.
  [[nodiscard]] bool queue_full_locked() const MCF_REQUIRES(queue_mu_);
  /// Shared admission path behind submit()/try_submit()/fuse_chains.
  /// `may_block` enables the Block overflow behaviour; `batch` marks a
  /// fuse_chains job (never shed at admission, waits for a slot, exempt
  /// from ReplaceOldest eviction).
  [[nodiscard]] FusionTicket admit(std::shared_ptr<detail::TicketState> state,
                                   bool may_block, bool batch);

  GpuSpec gpu_;
  FusionEngineOptions opt_;

  // Async workers (lazy) + bounded admission queue.
  mutable Mutex queue_mu_{"engine.queue"};
  CondVar queue_cv_;    ///< wakes workers (new job / stop)
  CondVar room_cv_;     ///< wakes blocked submitters (slot free)
  CondVar drained_cv_;  ///< wakes the destructor (admits done)
  mutable CondVar idle_cv_;  ///< wakes wait_idle (queue quiescent)
  std::deque<std::shared_ptr<detail::TicketState>> queue_
      MCF_GUARDED_BY(queue_mu_);
  std::vector<std::thread> workers_ MCF_GUARDED_BY(queue_mu_);
  std::size_t busy_ MCF_GUARDED_BY(queue_mu_) = 0;  ///< workers running a job
  /// admit() calls past the shutdown check but not yet finished — the
  /// destructor waits for this to hit 0 so a submitter blocked under the
  /// Block policy never touches a dead engine.
  std::size_t admitting_ MCF_GUARDED_BY(queue_mu_) = 0;
  bool stop_ MCF_GUARDED_BY(queue_mu_) = false;

  // Admission/outcome counters (EngineStats); relaxed atomics — they are
  // observability, never control flow.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};

  // Digest-keyed LRU memo of finished results (bounded by opt_.memo;
  // support/lru_map.hpp) + in-flight dedup.
  mutable Mutex memo_mu_{"engine.memo"};
  LruMap<std::string, std::shared_ptr<const FusionResult>> results_
      MCF_GUARDED_BY(memo_mu_);
  std::unordered_map<std::string, std::shared_ptr<detail::TicketState>>
      inflight_ MCF_GUARDED_BY(memo_mu_);

  // Engine-owned persistent tuning cache.
  mutable Mutex cache_mu_{"engine.tuning-cache"};
  mutable TuningCache tuning_cache_ MCF_GUARDED_BY(cache_mu_);
};

}  // namespace mcf
