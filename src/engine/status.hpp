// Structured fusion outcomes (the service-grade replacement for the old
// `FusionResult::ok` bool): every failure mode of the pipeline — space
// generation, pruning, tuning/measurement, lowering, cancellation, and
// admission control (bounded-queue shedding, queue-wait deadlines) — maps
// to one FusionStatus value, and FusionResult::reason carries the
// human-readable detail from the layer that failed.
//
// Migration note: code that `switch`es exhaustively on FusionStatus must
// add the load-shedding values Rejected and DeadlineExceeded (both are
// terminal, non-retryable-as-is outcomes of submit()/try_submit() under a
// QueuePolicy; see docs/api.md "Admission control"), and the isolation
// values WorkerCrashed and WorkerTimeout (terminal measurement outcomes of
// the "jit-isolated" backend: every candidate of the chain died in a
// sandbox worker; see docs/measurement.md "Crash-isolated measurement"),
// and the static-analysis value VerifyRejected (every measured candidate
// was refused by the pre-compile safety verifier; see
// docs/verification.md — the reason carries the first witness).
#pragma once

#include <cstdint>

namespace mcf {

enum class FusionStatus : std::uint8_t {
  Ok,                ///< tuned, compiled, ready to run
  InvalidChain,      ///< ChainSpec failed construction-time validation
  InfeasibleSpace,   ///< space generation produced no tiling expressions
  PruneEmpty,        ///< raw space non-empty, but pruning left 0 candidates
  MeasureFailed,     ///< no candidate measured/lowered successfully
  Cancelled,         ///< cancelled via FusionTicket before completion
  Rejected,          ///< shed at admission: bounded queue full (QueuePolicy)
  DeadlineExceeded,  ///< queue wait exceeded QueuePolicy::deadline_s
  WorkerCrashed,     ///< every measured candidate died in a sandbox worker
  WorkerTimeout,     ///< every measured candidate hit the worker deadline
  VerifyRejected,    ///< the static safety verifier rejected every candidate
};

/// Stable display name ("ok", "invalid-chain", ...).
[[nodiscard]] const char* fusion_status_name(FusionStatus s) noexcept;

}  // namespace mcf
