// Structured fusion outcomes (the service-grade replacement for the old
// `FusionResult::ok` bool): every failure mode of the pipeline — space
// generation, pruning, tuning/measurement, lowering, cancellation — maps
// to one FusionStatus value, and FusionResult::reason carries the
// human-readable detail from the layer that failed.
#pragma once

#include <cstdint>

namespace mcf {

enum class FusionStatus : std::uint8_t {
  Ok,               ///< tuned, compiled, ready to run
  InvalidChain,     ///< ChainSpec failed construction-time validation
  InfeasibleSpace,  ///< space generation produced no tiling expressions
  PruneEmpty,       ///< raw space non-empty, but pruning left 0 candidates
  MeasureFailed,    ///< no candidate measured/lowered successfully
  Cancelled,        ///< cancelled via FusionTicket before completion
};

/// Stable display name ("ok", "invalid-chain", ...).
[[nodiscard]] const char* fusion_status_name(FusionStatus s) noexcept;

}  // namespace mcf
