#include "graph/netgraph.hpp"

#include "support/logging.hpp"

namespace mcf {

const char* op_type_name(OpType t) noexcept {
  switch (t) {
    case OpType::Input:
      return "input";
    case OpType::MatMul:
      return "matmul";
    case OpType::BatchedMatMul:
      return "batched_matmul";
    case OpType::Softmax:
      return "softmax";
    case OpType::LayerNorm:
      return "layernorm";
    case OpType::GeLU:
      return "gelu";
    case OpType::Relu:
      return "relu";
    case OpType::BiasAdd:
      return "bias_add";
    case OpType::Add:
      return "add";
    case OpType::Scale:
      return "scale";
    case OpType::Transpose:
      return "transpose";
  }
  return "?";
}

double GraphNode::flops() const noexcept {
  if (type == OpType::MatMul || type == OpType::BatchedMatMul) {
    return 2.0 * static_cast<double>(batch) * static_cast<double>(m) *
           static_cast<double>(n) * static_cast<double>(k);
  }
  return 0.0;
}

int NetGraph::add(GraphNode node) {
  node.id = static_cast<int>(nodes_.size());
  for (const int in : node.inputs) {
    MCF_CHECK(in >= 0 && in < node.id)
        << "graph must be constructed topologically";
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

std::vector<int> NetGraph::consumers(int id) const {
  std::vector<int> out;
  for (const auto& n : nodes_) {
    for (const int in : n.inputs) {
      if (in == id) {
        out.push_back(n.id);
        break;
      }
    }
  }
  return out;
}

double NetGraph::total_flops() const noexcept {
  double fl = 0.0;
  for (const auto& n : nodes_) fl += n.flops();
  return fl;
}

}  // namespace mcf
