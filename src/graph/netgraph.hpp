// Minimal dataflow-graph IR for end-to-end models (the repo's stand-in
// for TVM Relay, §V-B).  Nodes are created in topological order; shapes
// are explicit per node so backends can cost kernels without inference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcf {

enum class OpType : std::uint8_t {
  Input,
  MatMul,         ///< (m,k) x (k,n), weights shared across batch
  BatchedMatMul,  ///< (batch,m,k) x (batch,k,n)
  Softmax,        ///< rows m, cols n
  LayerNorm,
  GeLU,
  Relu,
  BiasAdd,
  Add,            ///< residual / attention mask
  Scale,          ///< multiply by a scalar (1/sqrt(d))
  Transpose,      ///< materialised layout change (eager frameworks copy)
};

[[nodiscard]] const char* op_type_name(OpType t) noexcept;

struct GraphNode {
  int id = -1;
  OpType type = OpType::Input;
  std::string name;
  std::vector<int> inputs;  ///< producing node ids
  // Shape of the op's computation: batched (batch,m,k)x(k,n) for matmuls,
  // (m,n) elementwise/normalisation extents otherwise (batch folded into m).
  std::int64_t batch = 1;
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;

  /// Output elements of this node.
  [[nodiscard]] std::int64_t out_elems() const noexcept { return batch * m * n; }
  /// Multiply-add FLOPs (matmuls only; 0 otherwise).
  [[nodiscard]] double flops() const noexcept;
};

/// A DAG of operators; construction order is execution order.
class NetGraph {
 public:
  explicit NetGraph(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  int add(GraphNode node);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const GraphNode& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] const std::vector<GraphNode>& nodes() const noexcept { return nodes_; }

  /// Node ids that consume `id`'s output.
  [[nodiscard]] std::vector<int> consumers(int id) const;

  [[nodiscard]] double total_flops() const noexcept;

 private:
  std::string name_;
  std::vector<GraphNode> nodes_;
};

}  // namespace mcf
