#include "graph/executor.hpp"

#include <algorithm>
#include <set>

#include "support/logging.hpp"

namespace mcf {

namespace {
/// Eager-mode dispatch cost per op (see baselines/unfused.cpp).
constexpr double kEagerDispatchOverheadS = 9e-6;

std::string shape_key(const GraphNode& n) {
  return std::string(op_type_name(n.type)) + ":" + std::to_string(n.batch) +
         "x" + std::to_string(n.m) + "x" + std::to_string(n.n) + "x" +
         std::to_string(n.k);
}
}  // namespace

const char* graph_backend_name(GraphBackend b) noexcept {
  switch (b) {
    case GraphBackend::Eager:
      return "PyTorch";
    case GraphBackend::Relay:
      return "Relay";
    case GraphBackend::Bolt:
      return "BOLT";
    case GraphBackend::Ansor:
      return "Ansor";
  }
  return "?";
}

GraphExecutor::GraphExecutor(GpuSpec gpu, GraphExecOptions options)
    : gpu_(std::move(gpu)), opt_(std::move(options)), lib_(gpu_), relay_(gpu_) {
  engine_ = opt_.engine ? opt_.engine
                        : std::make_shared<FusionEngine>(gpu_, opt_.mcfuser);
  // Field-wise spec equality: a spec tweaked in place (a what-if smem
  // limit, a different L2 model) must not silently mix with this
  // executor's node costing.
  MCF_CHECK(engine_->gpu() == gpu_)
      << "shared FusionEngine targets '" << engine_->gpu().name
      << "' (or a modified spec) but this executor costs nodes on '"
      << gpu_.name << "' — mixed-GPU results would be meaningless";
}

double GraphExecutor::cost_matmul(const GraphNode& n, double epi_flops) const {
  switch (opt_.backend) {
    case GraphBackend::Eager:
      return lib_.gemm(n.batch, n.m, n.n, n.k).time_s + kEagerDispatchOverheadS;
    case GraphBackend::Relay:
      return relay_.gemm(n.batch, n.m, n.n, n.k, epi_flops).time_s;
    case GraphBackend::Bolt: {
      // BOLT instantiates a small cutlass menu per shape; outside its
      // fusion patterns it stays close to Relay's implementations
      // ("only slight improvements", §VI-C).
      double best = 1e30;
      for (const GemmConfig& cfg :
           {GemmConfig{128, 128, 32}, GemmConfig{128, 128, 64}}) {
        const auto m = lib_.gemm_fixed(n.batch, n.m, n.n, n.k, cfg, epi_flops);
        if (m.ok) best = std::min(best, m.time_s);
      }
      return best;
    }
    case GraphBackend::Ansor:
      return lib_.gemm(n.batch, n.m, n.n, n.k, epi_flops).time_s;
  }
  return 0.0;
}

double GraphExecutor::cost_simple(const GraphNode& n) const {
  double t = 0.0;
  switch (n.type) {
    case OpType::Softmax:
      t = lib_.softmax(n.batch * n.m, n.n).time_s;
      break;
    case OpType::LayerNorm:
      t = lib_.layernorm(n.batch * n.m, n.n).time_s;
      break;
    case OpType::GeLU:
      t = lib_.elementwise(n.out_elems(), 1, 8.0).time_s;
      break;
    case OpType::Relu:
    case OpType::Scale:
    case OpType::Transpose:
      t = lib_.elementwise(n.out_elems(), 1, 1.0).time_s;
      break;
    case OpType::BiasAdd:
    case OpType::Add:
      t = lib_.elementwise(n.out_elems(), 2, 1.0).time_s;
      break;
    default:
      MCF_CHECK(false) << "cost_simple on " << op_type_name(n.type);
  }
  if (opt_.backend == GraphBackend::Eager) t += kEagerDispatchOverheadS;
  return t;
}

GraphRunResult GraphExecutor::run(const NetGraph& g) {
  GraphRunResult r;
  r.flops = g.total_flops();

  // Partition: MBCI regions (fused by MCFuser when enabled).
  const PartitionResult part = partition_mbci(g, gpu_);
  std::vector<char> in_mbci(static_cast<std::size_t>(g.size()), 0);
  for (const auto& sub : part.mbci) {
    for (const int id : sub.nodes) in_mbci[static_cast<std::size_t>(id)] = 1;
    for (const int id : sub.nodes) r.attention_flops += g.node(id).flops();
  }

  // Epilogue absorption (Relay/BOLT/Ansor): matmul -> bias -> activation.
  std::vector<char> absorbed(static_cast<std::size_t>(g.size()), 0);
  std::vector<double> epi_flops(static_cast<std::size_t>(g.size()), 0.0);
  if (opt_.backend != GraphBackend::Eager) {
    for (const auto& n : g.nodes()) {
      if (n.type != OpType::MatMul && n.type != OpType::BatchedMatMul) continue;
      if (in_mbci[static_cast<std::size_t>(n.id)]) continue;
      int cur = n.id;
      for (;;) {
        const auto cons = g.consumers(cur);
        if (cons.size() != 1) break;
        const GraphNode& next = g.node(cons.front());
        if (in_mbci[static_cast<std::size_t>(next.id)]) break;
        if (next.type == OpType::BiasAdd) {
          epi_flops[static_cast<std::size_t>(n.id)] += 0.125;
        } else if (next.type == OpType::GeLU) {
          epi_flops[static_cast<std::size_t>(n.id)] += 1.0;
        } else if (next.type == OpType::Relu) {
          epi_flops[static_cast<std::size_t>(n.id)] += 0.125;
        } else {
          break;
        }
        absorbed[static_cast<std::size_t>(next.id)] = 1;
        cur = next.id;
      }
    }
  }

  // MBCI regions: the engine digest-deduplicates and tunes each distinct
  // chain once (memoized across run() calls and shared executors).
  std::set<std::string> tuned_shapes;
  if (opt_.use_mcfuser) {
    std::vector<ChainSpec> chains;
    chains.reserve(part.mbci.size());
    for (const auto& sub : part.mbci) chains.push_back(sub.chain);
    const GraphFusionReport rep = engine_->fuse_chains(chains, g.name());
    r.mcfuser_measurements += rep.total_measurements;
    r.mcfuser_wall_s += rep.tuning_wall_s;
    r.mcfuser_subgraphs += rep.tuned_chains;
    for (std::size_t i = 0; i < part.mbci.size(); ++i) {
      const GraphChainReport& cr =
          rep.chains[static_cast<std::size_t>(rep.sub_to_chain[i])];
      MCF_CHECK(cr.result && cr.result->ok())
          << "MCFuser failed on " << part.mbci[i].chain.name() << ": "
          << (cr.result ? cr.result->reason : "no result");
      r.time_s += cr.result->tuned.best_time_s;
      r.attention_time_s += cr.result->tuned.best_time_s;
      r.kernel_launches += 1;
    }
  } else {
    for (const auto& sub : part.mbci) {
      for (const int id : sub.nodes) {
        const GraphNode& n = g.node(id);
        const bool is_mm =
            n.type == OpType::MatMul || n.type == OpType::BatchedMatMul;
        const double t = is_mm ? cost_matmul(n, 0.0) : cost_simple(n);
        r.time_s += t;
        r.attention_time_s += t;
        r.kernel_launches += 1;
        tuned_shapes.insert(shape_key(n));
      }
    }
  }

  // Remaining operators.
  for (const auto& n : g.nodes()) {
    if (n.type == OpType::Input) continue;
    if (in_mbci[static_cast<std::size_t>(n.id)]) continue;
    if (absorbed[static_cast<std::size_t>(n.id)]) continue;
    if (n.type == OpType::MatMul || n.type == OpType::BatchedMatMul) {
      r.time_s += cost_matmul(n, epi_flops[static_cast<std::size_t>(n.id)]);
    } else {
      r.time_s += cost_simple(n);
    }
    // Auto-tuners process every distinct subgraph shape, memory ops
    // included (drives the Table IV end-to-end tuning model).
    tuned_shapes.insert(shape_key(n));
    r.kernel_launches += 1;
  }
  r.unique_tuned_subgraphs = static_cast<int>(tuned_shapes.size());
  return r;
}

}  // namespace mcf
