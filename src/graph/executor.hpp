// End-to-end graph executor (§VI-C): costs a NetGraph on the simulated
// GPU under a chosen operator backend, optionally routing MBCI sub-graphs
// through the FusionEngine — the paper's Relay / BOLT / MCFuser+Relay /
// Ansor / MCFuser+Ansor configurations.
//
// Fused regions go through FusionEngine::fuse_chains: structurally
// identical chains are deduplicated by digest and tuned once, and the
// engine's result memo persists across run() calls (tune-once-per-shape,
// shareable across executors via GraphExecOptions::engine).
#pragma once

#include <memory>
#include <string>

#include "baselines/library_kernels.hpp"
#include "baselines/relay_like.hpp"
#include "engine/engine.hpp"
#include "graph/netgraph.hpp"
#include "graph/partitioner.hpp"

namespace mcf {

enum class GraphBackend : std::uint8_t {
  Eager,  ///< PyTorch: per-op kernels, no epilogue fusion, dispatch cost
  Relay,  ///< fixed templates + epilogue fusion
  Bolt,   ///< small template menu + epilogue fusion
  Ansor,  ///< tuned per-op kernels + epilogue fusion
};

[[nodiscard]] const char* graph_backend_name(GraphBackend b) noexcept;

struct GraphExecOptions {
  GraphBackend backend = GraphBackend::Relay;
  bool use_mcfuser = false;
  /// Engine options when the executor constructs its own engine (ignored
  /// when `engine` is provided).
  FusionEngineOptions mcfuser;
  /// Optional shared engine: several executors (or an outer service) can
  /// pool one tuning cache / result memo.  Null = private engine.
  std::shared_ptr<FusionEngine> engine;
};

struct GraphRunResult {
  double time_s = 0.0;
  double attention_time_s = 0.0;  ///< time spent in (would-be) MBCI regions
  int kernel_launches = 0;
  /// Distinct compute-op shapes the backend would auto-tune (drives the
  /// Ansor tuning-time model in Table IV).
  int unique_tuned_subgraphs = 0;
  /// Of those, how many were taken over by MCFuser.
  int mcfuser_subgraphs = 0;
  int mcfuser_measurements = 0;
  double mcfuser_wall_s = 0.0;
  double flops = 0.0;
  double attention_flops = 0.0;
};

class GraphExecutor {
 public:
  GraphExecutor(GpuSpec gpu, GraphExecOptions options);

  [[nodiscard]] GraphRunResult run(const NetGraph& g);

  /// The fusion engine serving this executor's MBCI regions.
  [[nodiscard]] const std::shared_ptr<FusionEngine>& engine() const noexcept {
    return engine_;
  }

 private:
  [[nodiscard]] double cost_matmul(const GraphNode& n, double epi_flops) const;
  [[nodiscard]] double cost_simple(const GraphNode& n) const;

  GpuSpec gpu_;
  GraphExecOptions opt_;
  LibraryKernels lib_;
  RelayLikeBaseline relay_;
  /// Owns the digest-keyed result memo (tune-once-per-shape).
  std::shared_ptr<FusionEngine> engine_;
};

}  // namespace mcf
