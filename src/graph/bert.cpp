#include "graph/bert.hpp"

namespace mcf {

namespace {

GraphNode make(OpType type, std::string name, std::vector<int> inputs,
               std::int64_t batch, std::int64_t m, std::int64_t n,
               std::int64_t k = 0) {
  GraphNode node;
  node.type = type;
  node.name = std::move(name);
  node.inputs = std::move(inputs);
  node.batch = batch;
  node.m = m;
  node.n = n;
  node.k = k;
  return node;
}

}  // namespace

int append_bert_layer(NetGraph& g, const BertConfig& cfg, int input, int layer) {
  const std::int64_t s = cfg.seq_len;
  const std::int64_t hid = cfg.hidden;
  const std::int64_t hd = cfg.head_dim();
  const std::int64_t heads = cfg.heads;
  const std::string p = "l" + std::to_string(layer) + ".";

  // QKV projections (+bias).
  const int q = g.add(make(OpType::MatMul, p + "q_proj", {input}, 1, s, hid, hid));
  const int qb = g.add(make(OpType::BiasAdd, p + "q_bias", {q}, 1, s, hid));
  const int kx = g.add(make(OpType::MatMul, p + "k_proj", {input}, 1, s, hid, hid));
  const int kb = g.add(make(OpType::BiasAdd, p + "k_bias", {kx}, 1, s, hid));
  const int v = g.add(make(OpType::MatMul, p + "v_proj", {input}, 1, s, hid, hid));
  const int vb = g.add(make(OpType::BiasAdd, p + "v_bias", {v}, 1, s, hid));

  // Attention core (the MBCI chain): QK^T -> scale -> +mask -> softmax ->
  // .V per head.  Eager frameworks launch the scale/mask as separate
  // kernels on the (heads, s, s) score tensor; fusion absorbs them.
  const int qk = g.add(make(OpType::BatchedMatMul, p + "attn.qk", {qb, kb},
                            heads, s, s, hd));
  const int sc = g.add(make(OpType::Scale, p + "attn.scale", {qk}, heads, s, s));
  const int mask = g.add(make(OpType::Add, p + "attn.mask", {sc}, heads, s, s));
  const int sm = g.add(make(OpType::Softmax, p + "attn.softmax", {mask}, heads, s, s));
  const int pv = g.add(make(OpType::BatchedMatMul, p + "attn.pv", {sm, vb},
                            heads, s, hd, s));

  // Output projection + residual + LN.
  const int proj = g.add(make(OpType::MatMul, p + "attn.out_proj", {pv}, 1, s, hid, hid));
  const int projb = g.add(make(OpType::BiasAdd, p + "attn.out_bias", {proj}, 1, s, hid));
  const int res1 = g.add(make(OpType::Add, p + "attn.residual", {projb, input}, 1, s, hid));
  const int ln1 = g.add(make(OpType::LayerNorm, p + "attn.ln", {res1}, 1, s, hid));

  // Feed-forward network.
  const int ff1 = g.add(make(OpType::MatMul, p + "ffn.fc1", {ln1}, 1, s, cfg.ffn, hid));
  const int ff1b = g.add(make(OpType::BiasAdd, p + "ffn.fc1_bias", {ff1}, 1, s, cfg.ffn));
  const int gelu = g.add(make(OpType::GeLU, p + "ffn.gelu", {ff1b}, 1, s, cfg.ffn));
  const int ff2 = g.add(make(OpType::MatMul, p + "ffn.fc2", {gelu}, 1, s, hid, cfg.ffn));
  const int ff2b = g.add(make(OpType::BiasAdd, p + "ffn.fc2_bias", {ff2}, 1, s, hid));
  const int res2 = g.add(make(OpType::Add, p + "ffn.residual", {ff2b, ln1}, 1, s, hid));
  return g.add(make(OpType::LayerNorm, p + "ffn.ln", {res2}, 1, s, hid));
}

NetGraph build_bert(const BertConfig& cfg) {
  NetGraph g(cfg.name);
  GraphNode in;
  in.type = OpType::Input;
  in.name = "embeddings";
  in.m = cfg.seq_len;
  in.n = cfg.hidden;
  int cur = g.add(std::move(in));
  for (int layer = 0; layer < cfg.layers; ++layer) {
    cur = append_bert_layer(g, cfg, cur, layer);
  }
  return g;
}

}  // namespace mcf
