#include "graph/partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace mcf {

double chain_flops_per_byte(const ChainSpec& chain, std::int64_t tile) {
  // The paper's phi = 2*TM*TN*K / (2*TM*TN + TM*K + TN*K), evaluated per
  // operator at a representative tile (Fig. 2 uses 256) and combined as
  // the FLOPs-weighted mean: the chain is memory-bound when its
  // *unfused* operators are.
  double flops_total = 0.0;
  double weighted = 0.0;
  for (int op = 0; op < chain.num_ops(); ++op) {
    const double red = static_cast<double>(chain.inner()[static_cast<std::size_t>(op)]);
    const double tm = static_cast<double>(std::min<std::int64_t>(tile, chain.m()));
    const double tn = static_cast<double>(
        std::min<std::int64_t>(tile, chain.inner()[static_cast<std::size_t>(op) + 1]));
    const double phi = 2.0 * tm * tn * red / (2.0 * tm * tn + tm * red + tn * red);
    const double fl = 2.0 * static_cast<double>(chain.m()) *
                      static_cast<double>(chain.inner()[static_cast<std::size_t>(op)]) *
                      static_cast<double>(chain.inner()[static_cast<std::size_t>(op) + 1]);
    flops_total += fl;
    weighted += fl * phi;
  }
  return flops_total > 0 ? weighted / flops_total : 0.0;
}

bool is_mbci(const ChainSpec& chain, const GpuSpec& gpu) {
  return chain_flops_per_byte(chain) < gpu.flops_per_byte();
}

PartitionResult partition_mbci(const NetGraph& g, const GpuSpec& gpu,
                               bool require_mbci) {
  PartitionResult out;
  std::vector<char> claimed(static_cast<std::size_t>(g.size()), 0);

  for (int id = 0; id < g.size(); ++id) {
    const GraphNode& first = g.node(id);
    if (first.type != OpType::BatchedMatMul || claimed[static_cast<std::size_t>(id)]) {
      continue;
    }
    // Pattern: bmm -> {scale|mask-add}* -> (softmax ->) bmm, with every
    // intermediate consumed exclusively inside the pattern.
    std::vector<int> middle;
    int cur = id;
    bool has_softmax = false;
    bool has_gelu = false;
    bool broken = false;
    for (;;) {
      const auto cons = g.consumers(cur);
      if (cons.size() != 1) {
        broken = true;
        break;
      }
      cur = cons.front();
      const OpType t = g.node(cur).type;
      if (t == OpType::Scale || t == OpType::Add) {
        middle.push_back(cur);
        continue;
      }
      if (t == OpType::GeLU && !has_gelu && !has_softmax) {
        has_gelu = true;
        middle.push_back(cur);
        continue;
      }
      if (t == OpType::Softmax && !has_softmax && !has_gelu) {
        has_softmax = true;
        middle.push_back(cur);
        continue;
      }
      break;
    }
    if (broken) continue;
    const GraphNode& second = g.node(cur);
    if (second.type != OpType::BatchedMatMul) continue;
    const int feed = middle.empty() ? id : middle.back();
    if (second.inputs.front() != feed) {
      continue;  // the chain feeds the second matmul's LHS
    }

    // Chain dims: first (B,M,K)x(B,K,N); second (B,M,N)x(B,N,H).
    if (second.batch != first.batch || second.m != first.m ||
        second.k != first.n) {
      continue;
    }
    ChainSpec chain = [&]() {
      const std::string name = g.name() + "." + first.name;
      if (has_softmax) {
        return ChainSpec::attention(name, first.batch, first.m, first.n,
                                    first.k, second.n);
      }
      if (has_gelu) {
        return ChainSpec(name, first.batch, first.m,
                         {first.k, first.n, second.n},
                         {Epilogue::Gelu, Epilogue::None});
      }
      return ChainSpec::gemm_chain(name, first.batch, first.m, first.n,
                                   first.k, second.n);
    }();
    if (require_mbci && !is_mbci(chain, gpu)) continue;

    MbciSubgraph sub{{}, std::move(chain)};
    sub.nodes.push_back(id);
    sub.nodes.insert(sub.nodes.end(), middle.begin(), middle.end());
    sub.nodes.push_back(second.id);
    for (const int n : sub.nodes) claimed[static_cast<std::size_t>(n)] = 1;
    out.mbci.push_back(std::move(sub));
  }

  for (int id = 0; id < g.size(); ++id) {
    if (!claimed[static_cast<std::size_t>(id)] && g.node(id).type != OpType::Input) {
      out.rest.push_back(id);
    }
  }
  return out;
}

}  // namespace mcf
