// BERT encoder graph builders for the end-to-end experiments (§VI-C).
#pragma once

#include "graph/netgraph.hpp"
#include "workloads/suites.hpp"

namespace mcf {

/// Builds the encoder stack of a BERT model (no embedding/pooler — the
/// paper's end-to-end evaluation covers the transformer encoder layers).
[[nodiscard]] NetGraph build_bert(const BertConfig& cfg);

/// Builds one encoder layer into `g`; `input` is the residual-stream node.
/// Returns the layer's output node id.  Exposed for tests.
int append_bert_layer(NetGraph& g, const BertConfig& cfg, int input, int layer);

}  // namespace mcf
