// MBCI sub-graph partitioner (§V-B): finds BatchedMatMul -> [Softmax] ->
// BatchedMatMul chains, verifies they are memory-bound compute-intensive
// on the target GPU (phi < P/W, §II-A), and extracts ChainSpecs for
// MCFuser; everything else stays with the fallback backend.
#pragma once

#include <vector>

#include "gpu/spec.hpp"
#include "graph/netgraph.hpp"
#include "ir/chain.hpp"

namespace mcf {

/// One fused region found in the graph.
struct MbciSubgraph {
  std::vector<int> nodes;  ///< graph node ids covered by the fused kernel
  ChainSpec chain;
};

struct PartitionResult {
  std::vector<MbciSubgraph> mbci;
  std::vector<int> rest;   ///< node ids executed by the fallback backend
};

/// Op/byte ratio of a fused chain at a representative tile size (the
/// paper's phi; eq. in §II-A with T_M = T_N = `tile`).
[[nodiscard]] double chain_flops_per_byte(const ChainSpec& chain,
                                          std::int64_t tile = 256);

/// True when the chain is memory-bound on `gpu` (phi < P/W).
[[nodiscard]] bool is_mbci(const ChainSpec& chain, const GpuSpec& gpu);

/// Partitions `g` for `gpu`.  When `require_mbci` is false every matching
/// pattern is fused regardless of the phi test (used by ablations).
[[nodiscard]] PartitionResult partition_mbci(const NetGraph& g, const GpuSpec& gpu,
                                             bool require_mbci = true);

}  // namespace mcf
