#include "graph/mixer.hpp"

namespace mcf {

namespace {

GraphNode make(OpType type, std::string name, std::vector<int> inputs,
               std::int64_t batch, std::int64_t m, std::int64_t n,
               std::int64_t k = 0) {
  GraphNode node;
  node.type = type;
  node.name = std::move(name);
  node.inputs = std::move(inputs);
  node.batch = batch;
  node.m = m;
  node.n = n;
  node.k = k;
  return node;
}

}  // namespace

MixerConfig mixer_small() {
  return MixerConfig{"Mixer-Small", 8, 196, 512, 256, 2048};
}

MixerConfig mixer_base() {
  return MixerConfig{"Mixer-Base", 12, 196, 768, 384, 3072};
}

NetGraph build_mixer(const MixerConfig& cfg) {
  NetGraph g(cfg.name);
  GraphNode in;
  in.type = OpType::Input;
  in.name = "patch_embeddings";
  in.m = cfg.patches;
  in.n = cfg.channels;
  int cur = g.add(std::move(in));

  for (int layer = 0; layer < cfg.layers; ++layer) {
    const std::string p = "l" + std::to_string(layer) + ".";
    const std::int64_t s = cfg.patches;
    const std::int64_t c = cfg.channels;

    // ---- token-mixing MLP (the MBCI chain) --------------------------------
    const int ln1 = g.add(make(OpType::LayerNorm, p + "token.ln", {cur}, 1, s, c));
    const int tr1 = g.add(make(OpType::Transpose, p + "token.t1", {ln1}, 1, c, s));
    // [C, S] x [S, D_S] -> GeLU -> x [D_S, S].
    const int mm1 = g.add(make(OpType::BatchedMatMul, p + "token.fc1", {tr1},
                               1, c, cfg.token_hidden, s));
    const int gelu1 = g.add(make(OpType::GeLU, p + "token.gelu", {mm1}, 1, c,
                                 cfg.token_hidden));
    const int mm2 = g.add(make(OpType::BatchedMatMul, p + "token.fc2", {gelu1},
                               1, c, s, cfg.token_hidden));
    const int tr2 = g.add(make(OpType::Transpose, p + "token.t2", {mm2}, 1, s, c));
    const int res1 = g.add(make(OpType::Add, p + "token.residual", {tr2, cur},
                                1, s, c));

    // ---- channel-mixing MLP (stays with the fallback backend) -------------
    const int ln2 = g.add(make(OpType::LayerNorm, p + "channel.ln", {res1}, 1, s, c));
    const int fc1 = g.add(make(OpType::MatMul, p + "channel.fc1", {ln2}, 1, s,
                               cfg.channel_hidden, c));
    const int b1 = g.add(make(OpType::BiasAdd, p + "channel.fc1_bias", {fc1},
                              1, s, cfg.channel_hidden));
    const int gelu2 = g.add(make(OpType::GeLU, p + "channel.gelu", {b1}, 1, s,
                                 cfg.channel_hidden));
    const int fc2 = g.add(make(OpType::MatMul, p + "channel.fc2", {gelu2}, 1,
                               s, c, cfg.channel_hidden));
    const int b2 = g.add(make(OpType::BiasAdd, p + "channel.fc2_bias", {fc2},
                              1, s, c));
    cur = g.add(make(OpType::Add, p + "channel.residual", {b2, res1}, 1, s, c));
  }
  return g;
}

}  // namespace mcf
