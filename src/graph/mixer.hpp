// MLP-Mixer graph builders — the paper's third workload family (Table
// III S7-S9 motivates the token-mixing MLP), built end-to-end here as an
// extension of §VI-C: the token-mixing block (matmul -> GeLU -> matmul
// over the patch dimension) is an MBCI chain that the partitioner hands
// to MCFuser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/netgraph.hpp"

namespace mcf {

struct MixerConfig {
  std::string name;
  int layers = 12;
  std::int64_t patches = 196;        ///< sequence of image patches (S)
  std::int64_t channels = 768;       ///< hidden width (C)
  std::int64_t token_hidden = 384;   ///< token-mixing MLP width (D_S)
  std::int64_t channel_hidden = 3072;///< channel-mixing MLP width (D_C)
};

[[nodiscard]] MixerConfig mixer_small();
[[nodiscard]] MixerConfig mixer_base();

/// Builds the Mixer encoder stack.  The token-mixing MLP is expressed as
/// transpose -> matmul -> GeLU -> matmul -> transpose (bias-free, the
/// standard fusion-benchmark simplification); the channel MLP keeps its
/// biases and stays with the fallback backend.
[[nodiscard]] NetGraph build_mixer(const MixerConfig& cfg);

}  // namespace mcf
