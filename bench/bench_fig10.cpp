// Reproduces paper Fig. 10: eq. (1) shared-memory estimate vs the actual
// allocation of the lowered kernel, over scheduled candidates from the
// §VI-B experiments.  Quadrants (x split at 1.2*Shm_max on the estimate,
// y split at Shm_max on the actual):
//   I   kept & runnable          III  pruned & not runnable (correct)
//   II  kept but not runnable    IV   pruned but would have run
#include <cstdio>

#include "common.hpp"
#include "gpu/smem.hpp"
#include "gpu/spec.hpp"
#include "search/space.hpp"
#include "support/stats.hpp"
#include "workloads/suites.hpp"

namespace {

using namespace mcf;

int main_impl() {
  const GpuSpec gpu = a100();
  const double limit = static_cast<double>(gpu.smem_per_block);
  const double slack = 1.2 * limit;

  // Candidate population: rules 1-3 applied, rule 4 disabled so the
  // scatter covers both sides of the boundary (as in the paper, where the
  // estimate is being *validated*, not already trusted).
  std::vector<double> est;
  std::vector<double> act;
  std::vector<ChainSpec> all = gemm_chain_suite();
  for (const auto& c : attention_suite()) all.push_back(c);
  for (const ChainSpec& chain : all) {
    PruneOptions prune;
    prune.smem_limit_bytes = gpu.smem_per_block;
    prune.rule4_smem = false;
    const SearchSpace space(chain, SpaceOptions{}, prune);
    const auto& cands = space.candidates();
    const std::size_t step = std::max<std::size_t>(1, cands.size() / 120);
    for (std::size_t i = 0; i < cands.size(); i += step) {
      const Schedule s = space.schedule_for(cands[i]);
      est.push_back(static_cast<double>(smem_estimate(s)));
      act.push_back(static_cast<double>(plan_smem(s).total_bytes));
    }
  }

  double q1 = 0;
  double q2 = 0;
  double q3 = 0;
  double q4 = 0;
  for (std::size_t i = 0; i < est.size(); ++i) {
    const bool kept = est[i] <= slack;     // survives rule 4
    const bool runnable = act[i] <= limit; // lowers on the GPU
    if (kept && runnable) q1 += 1;
    else if (kept && !runnable) q2 += 1;
    else if (!kept && !runnable) q3 += 1;
    else q4 += 1;
  }
  const double n = static_cast<double>(est.size());

  Table table("Fig.10 — eq.(1) estimate vs actual shared memory (A100)");
  table.set_header({"quadrant", "meaning", "share"});
  table.add_row({"I", "kept & runnable", Table::num(100 * q1 / n, 1) + "%"});
  table.add_row({"II", "kept, rejected at lowering", Table::num(100 * q2 / n, 1) + "%"});
  table.add_row({"III", "pruned & not runnable", Table::num(100 * q3 / n, 1) + "%"});
  table.add_row({"IV", "pruned, would have run", Table::num(100 * q4 / n, 1) + "%"});
  table.add_row({"corr", "pearson(estimate, actual)",
                 Table::num(pearson(est, act), 3)});
  table.add_row({"samples", "-", std::to_string(est.size())});
  if (!mcf::bench::emit(table, "fig10")) return 1;

  // Paper: quadrants I+III > 90%, II ~8%, IV ~1%.
  if ((q1 + q3) / n < 0.80) {
    std::fprintf(stderr, "estimate accuracy below expected band\n");
    return 1;
  }
  if (pearson(est, act) < 0.9) {
    std::fprintf(stderr, "estimate/actual correlation too low\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return main_impl(); }
