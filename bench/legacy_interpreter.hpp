// Frozen pre-overhaul interpreter hot path, kept as the measurement
// baseline for bench_tuning_throughput.
//
// This is the block executor as it stood before the arena/micro-kernel
// rework: every block allocates its own tile buffers, the GEMM inner loop
// is the scalar zero-skip form, and counter aggregation serialises behind
// a single mutex.  It exists so the throughput bench can report a
// new-vs-old speedup against the real old code path forever, not against
// a number written down once.  Do not "optimise" this file.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <span>
#include <vector>

#include "dag/schedule.hpp"
#include "exec/interpreter.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace mcf::bench::legacy {

// Epilogue FLOP accounting constants — must mirror dag/volume.cpp.
constexpr double kSoftmaxFlopsPerElem = 8.0;
constexpr double kReluFlopsPerElem = 1.0;
constexpr double kGeluFlopsPerElem = 8.0;
constexpr double kRescaleFlopsPerElem = 4.0;

/// Per-block execution state (pre-overhaul: reallocated for every block).
struct BlockState {
  std::int64_t batch = 0;
  std::vector<std::int64_t> idx;
  std::vector<std::vector<float>> bufs;
  std::vector<std::vector<float>> run_max;
  std::vector<std::vector<float>> run_sum;
  ExecutionCounters counters;
};

class BlockExecutor {
 public:
  BlockExecutor(const Schedule& s, const InterpreterOptions& opt,
                const Tensor& a, std::span<const Tensor> weights, Tensor& out)
      : s_(s), chain_(s.chain()), opt_(opt), a_(a), weights_(weights), out_(out) {}

  ExecutionCounters run_block(std::int64_t block_id) {
    BlockState st;
    decode_block(block_id, st);
    alloc_buffers(st);
    exec_node(s_.root(), st);
    return st.counters;
  }

 private:
  void decode_block(std::int64_t block_id, BlockState& st) const {
    st.idx.assign(static_cast<std::size_t>(chain_.num_loops()), 0);
    std::int64_t rem = block_id;
    const auto& bl = s_.block_loops();
    for (auto it = bl.rbegin(); it != bl.rend(); ++it) {
      const std::int64_t e = s_.extents()[static_cast<std::size_t>(*it)];
      st.idx[static_cast<std::size_t>(*it)] = rem % e;
      rem /= e;
    }
    st.batch = rem;
    MCF_CHECK(st.batch < chain_.batch()) << "block id out of range";
  }

  void alloc_buffers(BlockState& st) const {
    st.bufs.resize(static_cast<std::size_t>(chain_.num_tensors()));
    for (int t = 0; t < chain_.num_tensors(); ++t) {
      const std::int64_t elems =
          s_.tile_elems(t) * s_.resident_tiles()[static_cast<std::size_t>(t)];
      st.bufs[static_cast<std::size_t>(t)].assign(static_cast<std::size_t>(elems), 0.0f);
    }
    st.run_max.resize(static_cast<std::size_t>(chain_.num_ops()));
    st.run_sum.resize(static_cast<std::size_t>(chain_.num_ops()));
    for (int op = 0; op < chain_.num_ops(); ++op) {
      if (chain_.epilogue(op) == Epilogue::OnlineSoftmax) {
        st.run_max[static_cast<std::size_t>(op)].assign(
            static_cast<std::size_t>(s_.tiles()[0]),
            -std::numeric_limits<float>::infinity());
        st.run_sum[static_cast<std::size_t>(op)].assign(
            static_cast<std::size_t>(s_.tiles()[0]), 0.0f);
      }
    }
  }

  std::int64_t slot_offset(int t, const BlockState& st,
                           const std::vector<std::int64_t>* override_idx) const {
    const auto& loops = s_.resident_loops(t);
    std::int64_t slot = 0;
    for (const int l : loops) {
      const std::int64_t e = s_.extents()[static_cast<std::size_t>(l)];
      const std::int64_t v =
          override_idx ? (*override_idx)[static_cast<std::size_t>(l)]
                       : st.idx[static_cast<std::size_t>(l)];
      slot = slot * e + v;
    }
    return slot * s_.tile_elems(t);
  }

  void exec_node(int node, BlockState& st) {
    const auto& n = s_.node(node);
    if (n.is_stmt) {
      exec_stmt(n.stmt, st);
      return;
    }
    if (n.loop < 0) {
      for (const int c : n.children) exec_node(c, st);
      return;
    }
    const std::int64_t e = s_.extents()[static_cast<std::size_t>(n.loop)];
    for (std::int64_t i = 0; i < e; ++i) {
      st.idx[static_cast<std::size_t>(n.loop)] = i;
      for (const int c : n.children) exec_node(c, st);
    }
    st.idx[static_cast<std::size_t>(n.loop)] = 0;
  }

  void exec_stmt(const Statement& stmt, BlockState& st) {
    st.counters.stmt_trips += 1.0;
    switch (stmt.kind) {
      case StmtKind::Load:
        exec_load(stmt, st);
        break;
      case StmtKind::Compute:
        exec_compute(stmt, st);
        break;
      case StmtKind::Store:
        exec_store(stmt, st);
        break;
    }
  }

  const Tensor& global_source(int t) const {
    if (t == 0) return a_;
    const auto& info = chain_.tensor(t);
    MCF_CHECK(info.kind == TensorKind::Weight) << "load of non-input tensor";
    return weights_[static_cast<std::size_t>(info.consumer_op)];
  }

  void exec_load(const Statement& stmt, BlockState& st) {
    const int t = stmt.tensor;
    const auto& info = chain_.tensor(t);
    const Tensor& src = global_source(t);
    const int lr = info.loops[0];
    const int lc = info.loops[1];
    const std::int64_t tr = s_.tiles()[static_cast<std::size_t>(lr)];
    const std::int64_t tc = s_.tiles()[static_cast<std::size_t>(lc)];
    const std::int64_t r0 = st.idx[static_cast<std::size_t>(lr)] * tr;
    const std::int64_t c0 = st.idx[static_cast<std::size_t>(lc)] * tc;
    const std::int64_t rows = chain_.loop_dim(lr);
    const std::int64_t cols = chain_.loop_dim(lc);
    const auto slice = src.batch_slice(st.batch);
    float* dst = st.bufs[static_cast<std::size_t>(t)].data() +
                 slot_offset(t, st, nullptr);
    for (std::int64_t r = 0; r < tr; ++r) {
      for (std::int64_t c = 0; c < tc; ++c) {
        const std::int64_t gr = r0 + r;
        const std::int64_t gc = c0 + c;
        dst[r * tc + c] = (gr < rows && gc < cols)
                              ? slice[static_cast<std::size_t>(gr * cols + gc)]
                              : 0.0f;
      }
    }
    st.counters.load_bytes +=
        static_cast<double>(s_.tile_elems(t)) * opt_.dtype_bytes;
  }

  void exec_compute(const Statement& stmt, BlockState& st) {
    const int op = stmt.op;
    const int t_in = chain_.op_input_tensor(op);
    const int t_w = chain_.op_weight_tensor(op);
    const int t_out = chain_.op_output_tensor(op);
    const int red = chain_.reduction_loop(op);
    const int col = chain_.out_col_loop(op);
    const std::int64_t tm = s_.tiles()[0];
    const std::int64_t trd = s_.tiles()[static_cast<std::size_t>(red)];
    const std::int64_t tcl = s_.tiles()[static_cast<std::size_t>(col)];

    float* out = st.bufs[static_cast<std::size_t>(t_out)].data() +
                 slot_offset(t_out, st, nullptr);
    const float* in = st.bufs[static_cast<std::size_t>(t_in)].data() +
                      slot_offset(t_in, st, nullptr);
    const float* w = st.bufs[static_cast<std::size_t>(t_w)].data() +
                     slot_offset(t_w, st, nullptr);

    if (st.idx[static_cast<std::size_t>(red)] == 0) {
      std::fill(out, out + tm * tcl, 0.0f);
    }
    // Pre-overhaul inner loop: scalar with a per-row zero-skip branch.
    for (std::int64_t i = 0; i < tm; ++i) {
      for (std::int64_t r = 0; r < trd; ++r) {
        const float av = in[i * trd + r];
        if (av == 0.0f) continue;
        const float* wrow = &w[r * tcl];
        float* orow = &out[i * tcl];
        for (std::int64_t c = 0; c < tcl; ++c) orow[c] += av * wrow[c];
      }
    }
    st.counters.flops += 2.0 * static_cast<double>(tm) * trd * tcl;
    if (op > 0 && chain_.epilogue(op - 1) == Epilogue::OnlineSoftmax) {
      st.counters.epilogue_flops +=
          kRescaleFlopsPerElem * static_cast<double>(tm) * tcl;
    }

    const std::int64_t red_ext = s_.extents()[static_cast<std::size_t>(red)];
    if (st.idx[static_cast<std::size_t>(red)] == red_ext - 1 &&
        chain_.epilogue(op) != Epilogue::None) {
      apply_epilogue(op, st);
    }
  }

  void apply_epilogue(int op, BlockState& st) {
    const int t_out = chain_.op_output_tensor(op);
    const int col = chain_.out_col_loop(op);
    const std::int64_t tm = s_.tiles()[0];
    const std::int64_t tcl = s_.tiles()[static_cast<std::size_t>(col)];
    float* x = st.bufs[static_cast<std::size_t>(t_out)].data() +
               slot_offset(t_out, st, nullptr);
    const Epilogue epi = chain_.epilogue(op);

    if (epi == Epilogue::Relu) {
      for (std::int64_t i = 0; i < tm * tcl; ++i) x[i] = std::max(0.0f, x[i]);
      st.counters.epilogue_flops +=
          kReluFlopsPerElem * static_cast<double>(tm) * tcl;
      return;
    }
    if (epi == Epilogue::Gelu) {
      constexpr float kSqrt2OverPi = 0.7978845608028654f;
      for (std::int64_t i = 0; i < tm * tcl; ++i) {
        const float v = x[i];
        const float t = kSqrt2OverPi * (v + 0.044715f * v * v * v);
        x[i] = 0.5f * v * (1.0f + std::tanh(t));
      }
      st.counters.epilogue_flops +=
          kGeluFlopsPerElem * static_cast<double>(tm) * tcl;
      return;
    }

    MCF_CHECK(epi == Epilogue::OnlineSoftmax) << "unknown epilogue";
    MCF_CHECK(op + 1 < chain_.num_ops())
        << "online softmax requires a consumer operator";
    const float scale = chain_.softmax_scale();
    const std::int64_t c0 = st.idx[static_cast<std::size_t>(col)] * tcl;
    const std::int64_t valid_cols = chain_.loop_dim(col);
    auto& rmax = st.run_max[static_cast<std::size_t>(op)];
    auto& rsum = st.run_sum[static_cast<std::size_t>(op)];

    const int t_cons = chain_.op_output_tensor(op + 1);
    auto& cons = st.bufs[static_cast<std::size_t>(t_cons)];
    const std::int64_t cons_cols =
        s_.tiles()[static_cast<std::size_t>(chain_.out_col_loop(op + 1))];
    const std::int64_t cons_rows_total =
        static_cast<std::int64_t>(cons.size()) / cons_cols;

    for (std::int64_t i = 0; i < tm; ++i) {
      float* row = &x[i * tcl];
      for (std::int64_t c = 0; c < tcl; ++c) {
        if (c0 + c >= valid_cols) row[c] = -std::numeric_limits<float>::infinity();
        else row[c] *= scale;
      }
      float tile_max = -std::numeric_limits<float>::infinity();
      for (std::int64_t c = 0; c < tcl; ++c) tile_max = std::max(tile_max, row[c]);
      const float new_max = std::max(rmax[static_cast<std::size_t>(i)], tile_max);
      float sum = 0.0f;
      for (std::int64_t c = 0; c < tcl; ++c) {
        const float e = (row[c] == -std::numeric_limits<float>::infinity())
                            ? 0.0f
                            : std::exp(row[c] - new_max);
        row[c] = e;
        sum += e;
      }
      const float corr =
          (rmax[static_cast<std::size_t>(i)] == -std::numeric_limits<float>::infinity())
              ? 0.0f
              : std::exp(rmax[static_cast<std::size_t>(i)] - new_max);
      rsum[static_cast<std::size_t>(i)] =
          rsum[static_cast<std::size_t>(i)] * corr + sum;
      rmax[static_cast<std::size_t>(i)] = new_max;
      for (std::int64_t tile_row = i; tile_row < cons_rows_total; tile_row += tm) {
        float* crow = &cons[static_cast<std::size_t>(tile_row * cons_cols)];
        for (std::int64_t c = 0; c < cons_cols; ++c) crow[c] *= corr;
      }
    }
    st.counters.epilogue_flops +=
        kSoftmaxFlopsPerElem * static_cast<double>(tm) * tcl;
  }

  void exec_store(const Statement& stmt, BlockState& st) {
    const int t = stmt.tensor;
    const auto& info = chain_.tensor(t);
    MCF_CHECK(info.kind == TensorKind::Output) << "store of non-output tensor";
    const int lr = info.loops[0];
    const int lc = info.loops[1];
    const std::int64_t tr = s_.tiles()[static_cast<std::size_t>(lr)];
    const std::int64_t tc = s_.tiles()[static_cast<std::size_t>(lc)];
    const std::int64_t rows = chain_.loop_dim(lr);
    const std::int64_t cols = chain_.loop_dim(lc);
    auto slice = out_.batch_slice(st.batch);

    const int producer = info.producer_op;
    const bool normalize =
        producer > 0 && chain_.epilogue(producer - 1) == Epilogue::OnlineSoftmax;
    const std::vector<float>* rsum =
        normalize ? &st.run_sum[static_cast<std::size_t>(producer - 1)] : nullptr;

    std::vector<std::int64_t> combo_idx = st.idx;
    const auto& covered = stmt.covered_loops;
    std::vector<std::int64_t> counter(covered.size(), 0);
    double tiles_written = 0.0;
    for (;;) {
      for (std::size_t j = 0; j < covered.size(); ++j) {
        combo_idx[static_cast<std::size_t>(covered[j])] = counter[j];
      }
      const float* src = st.bufs[static_cast<std::size_t>(t)].data() +
                         slot_offset(t, st, &combo_idx);
      const std::int64_t r0 = combo_idx[static_cast<std::size_t>(lr)] * tr;
      const std::int64_t c0 = combo_idx[static_cast<std::size_t>(lc)] * tc;
      for (std::int64_t r = 0; r < tr; ++r) {
        const std::int64_t gr = r0 + r;
        if (gr >= rows) continue;
        const float inv =
            normalize ? 1.0f / std::max((*rsum)[static_cast<std::size_t>(r)], 1e-30f)
                      : 1.0f;
        for (std::int64_t c = 0; c < tc; ++c) {
          const std::int64_t gc = c0 + c;
          if (gc >= cols) continue;
          slice[static_cast<std::size_t>(gr * cols + gc)] = src[r * tc + c] * inv;
        }
      }
      tiles_written += 1.0;
      std::size_t j = 0;
      for (; j < covered.size(); ++j) {
        counter[j] += 1;
        if (counter[j] <
            s_.extents()[static_cast<std::size_t>(covered[j])]) break;
        counter[j] = 0;
      }
      if (j == covered.size()) break;
    }
    st.counters.store_bytes += tiles_written *
                               static_cast<double>(s_.tile_elems(t)) *
                               opt_.dtype_bytes;
  }

  const Schedule& s_;
  const ChainSpec& chain_;
  const InterpreterOptions& opt_;
  const Tensor& a_;
  std::span<const Tensor> weights_;
  Tensor& out_;
};

/// Pre-overhaul Interpreter::run: per-block executor construction, mutex
/// around the counter aggregation.
inline ExecutionCounters run(const Schedule& s, const InterpreterOptions& opt,
                             const Tensor& a, std::span<const Tensor> weights,
                             Tensor& out) {
  const std::int64_t n_blocks = s.num_blocks();
  std::mutex agg_mutex;
  ExecutionCounters total;
  auto run_range = [&](std::int64_t b) {
    BlockExecutor exec(s, opt, a, weights, out);
    const ExecutionCounters c = exec.run_block(b);
    const std::lock_guard<std::mutex> lock(agg_mutex);
    total.load_bytes += c.load_bytes;
    total.store_bytes += c.store_bytes;
    total.flops += c.flops;
    total.epilogue_flops += c.epilogue_flops;
    total.stmt_trips += c.stmt_trips;
  };
  if (opt.parallel) {
    ThreadPool::global().parallel_for(n_blocks, run_range);
  } else {
    for (std::int64_t b = 0; b < n_blocks; ++b) run_range(b);
  }
  return total;
}

}  // namespace mcf::bench::legacy
