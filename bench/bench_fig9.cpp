// Reproduces paper Fig. 9: end-to-end BERT on A100 — Relay, BOLT,
// MCFuser+Relay, Ansor, MCFuser+Ansor (normalized to Relay; the paper
// annotates MCFuser+Relay/Relay and MCFuser+Ansor/Ansor).
#include <cstdio>

#include "common.hpp"
#include "graph/bert.hpp"
#include "graph/executor.hpp"
#include "support/stats.hpp"

namespace {

using namespace mcf;
using namespace mcf::bench;

GraphRunResult run(const GpuSpec& gpu, const NetGraph& g, GraphBackend backend,
                   bool fuse) {
  GraphExecOptions opts;
  opts.backend = backend;
  opts.use_mcfuser = fuse;
  GraphExecutor ex(gpu, opts);
  return ex.run(g);
}

int main_impl() {
  const GpuSpec gpu = a100();
  Table table("Fig.9 — end-to-end BERT on A100 (normalized to Relay)");
  table.set_header({"model", "Relay(ms)", "BOLT", "Relay", "MCFuser+Relay",
                    "Ansor", "MCFuser+Ansor", "MCF+Relay/Relay",
                    "MCF+Ansor/Ansor"});
  std::vector<double> r1;
  std::vector<double> r2;
  for (const BertConfig& cfg : bert_suite()) {
    const NetGraph g = build_bert(cfg);
    const double relay = run(gpu, g, GraphBackend::Relay, false).time_s;
    const double bolt = run(gpu, g, GraphBackend::Bolt, false).time_s;
    const double mcf_relay = run(gpu, g, GraphBackend::Relay, true).time_s;
    const double ansor = run(gpu, g, GraphBackend::Ansor, false).time_s;
    const double mcf_ansor = run(gpu, g, GraphBackend::Ansor, true).time_s;
    r1.push_back(relay / mcf_relay);
    r2.push_back(ansor / mcf_ansor);
    table.add_row({cfg.name, Table::num(relay * 1e3, 2),
                   Table::num(relay / bolt, 2), "1.00",
                   Table::num(relay / mcf_relay, 2),
                   Table::num(relay / ansor, 2),
                   Table::num(relay / mcf_ansor, 2),
                   Table::num(relay / mcf_relay, 2) + "x",
                   Table::num(ansor / mcf_ansor, 2) + "x"});
  }
  table.add_row({"average", "-", "-", "1.00", Table::num(geomean(r1), 2),
                 "-", "-", Table::num(geomean(r1), 2) + "x",
                 Table::num(geomean(r2), 2) + "x"});
  if (!emit(table, "fig9")) return 1;

  // Paper band: MCFuser+Relay 1.42-1.50x, MCFuser+Ansor 1.21-1.40x.
  if (geomean(r1) < 1.1 || geomean(r2) < 1.1) {
    std::fprintf(stderr, "end-to-end speedups below the expected band\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return main_impl(); }
