// Ablation (beyond the paper's tables, motivated by its §III design
// claims): what each search-space ingredient is worth.  MCFuser variants:
//   full            — deep + flat tilings, extent-1 hoisting
//   no-flat         — deep only (Chimera's space)
//   no-collapse     — no extent-1 hoisting (Ansor/Chimera's §II-B gap)
//   no-hoist        — memory statements pinned at their computes
// and what each pruning rule buys in space size / tuning effort.
#include <cstdio>

#include "common.hpp"
#include "engine/engine.hpp"
#include "support/stats.hpp"
#include "workloads/suites.hpp"

namespace {

using namespace mcf;

double fuse_time(const GpuSpec& gpu, const ChainSpec& chain,
                 const FusionEngineOptions& opts) {
  const FusionResult r = FusionEngine(gpu, opts).fuse(chain);
  return r.ok() ? r.tuned.best_time_s : -1.0;
}

int main_impl() {
  const GpuSpec gpu = a100();
  std::vector<ChainSpec> workloads;
  for (const auto& c : gemm_chain_suite()) workloads.push_back(c);
  workloads.push_back(attention_suite()[1]);  // S2
  workloads.push_back(attention_suite()[6]);  // S7

  Table table("Ablation — kernel slowdown when removing each ingredient "
              "(geomean over G1-G12, S2, S7; 1.00 = full MCFuser)");
  table.set_header({"variant", "slowdown", "notes"});

  FusionEngineOptions full;
  FusionEngineOptions no_flat;
  no_flat.space.include_flat = false;
  FusionEngineOptions no_collapse;
  no_collapse.sched.collapse_unit_loops = false;
  FusionEngineOptions no_hoist;
  no_hoist.sched.hoist = false;

  std::vector<double> base_times;
  std::vector<std::pair<std::string, FusionEngineOptions>> variants = {
      {"no flat tilings (Chimera space)", no_flat},
      {"no extent-1 hoisting", no_collapse},
      {"no hoisting at all", no_hoist},
  };
  std::vector<std::vector<double>> ratios(variants.size());
  for (const ChainSpec& chain : workloads) {
    const double base = fuse_time(gpu, chain, full);
    if (base <= 0) {
      std::fprintf(stderr, "full MCFuser failed on %s\n", chain.name().c_str());
      return 1;
    }
    base_times.push_back(base);
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const double t = fuse_time(gpu, chain, variants[v].second);
      ratios[v].push_back(t > 0 ? t / base : 10.0);
    }
  }
  table.add_row({"full MCFuser", "1.00", "reference"});
  const char* notes[] = {"paper §III-A claim", "paper Fig.4(b)/5(b) claim",
                         "paper Fig.4(a) baseline"};
  double worst = 0.0;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const double slow = geomean(ratios[v]);
    worst = std::max(worst, slow);
    table.add_row({variants[v].first, Table::num(slow, 3), notes[v]});
  }
  if (!mcf::bench::emit(table, "ablation_space")) return 1;
  if (worst < 1.005) {
    std::fprintf(stderr, "ablations should cost something somewhere\n");
    return 1;
  }

  // ---- pruning-rule ablation on the Fig. 7 example -------------------------
  Table prune_table("Ablation — pruning rules on the Fig.7 chain "
                    "(space size after materialisation)");
  prune_table.set_header({"configuration", "#candidates"});
  const ChainSpec fig7 = ChainSpec::gemm_chain("fig7", 1, 1024, 1024, 512, 512);
  auto space_size = [&](PruneOptions p) {
    p.smem_limit_bytes = gpu.smem_per_block;
    return SearchSpace(fig7, SpaceOptions{}, p).candidates().size();
  };
  PruneOptions all_rules;
  PruneOptions no_r1 = all_rules;
  no_r1.rule1_dedup = false;
  PruneOptions no_r3 = all_rules;
  no_r3.rule3_max_pad_ratio = 1.0;  // keep rule3 structure, allow any pad
  PruneOptions no_r4 = all_rules;
  no_r4.rule4_smem = false;
  prune_table.add_row({"all rules", std::to_string(space_size(all_rules))});
  prune_table.add_row({"without rule 1", std::to_string(space_size(no_r1))});
  prune_table.add_row({"without rule 3 ratio", std::to_string(space_size(no_r3))});
  prune_table.add_row({"without rule 4", std::to_string(space_size(no_r4))});
  return mcf::bench::emit(prune_table, "ablation_prune") ? 0 : 1;
}

}  // namespace

int main() { return main_impl(); }
