// Reproduces paper Fig. 7: the pruning funnel on the GEMM chain with
// M = N = 1024, K = H = 512 — from 109,051,904 raw candidates down to the
// tuned set, rule by rule.
#include <cstdio>

#include "common.hpp"
#include "gpu/spec.hpp"
#include "search/space.hpp"

namespace {

using namespace mcf;

int run() {
  const ChainSpec chain = ChainSpec::gemm_chain("fig7", 1, 1024, 1024, 512, 512);
  PruneOptions prune;
  prune.smem_limit_bytes = a100().smem_per_block;
  const SearchSpace space(chain, SpaceOptions{}, prune);
  const PruneFunnel& f = space.funnel();

  Table table("Fig.7 — pruning funnel, GEMM chain M=N=1024 K=H=512 (A100)");
  table.set_header({"stage", "#candidates", "vs previous", "#expressions"});
  auto pct = [](double now, double before) {
    return before <= 0 ? std::string("-")
                       : "-" + Table::num(100.0 * (1.0 - now / before), 1) + "%";
  };
  table.add_row({"original", Table::sci(f.original), "-",
                 std::to_string(f.exprs_raw)});
  table.add_row({"+ rule 1 (dedup)", Table::sci(f.after_rule1),
                 pct(f.after_rule1, f.original), std::to_string(f.exprs_deduped)});
  table.add_row({"+ rule 2 (partial tiles)", Table::sci(f.after_rule2),
                 pct(f.after_rule2, f.after_rule1), std::to_string(f.exprs_deduped)});
  table.add_row({"+ rule 3 (padding)", Table::sci(f.after_rule3),
                 pct(f.after_rule3, f.after_rule2), std::to_string(f.exprs_deduped)});
  table.add_row({"+ rule 4 (shared memory)", Table::sci(f.after_rule4),
                 pct(f.after_rule4, f.after_rule3), std::to_string(f.exprs_deduped)});

  // Consistency with the paper's arithmetic: 26 x 64^2 x 32^2.
  if (f.original != 109051904.0 || f.exprs_raw != 26) {
    std::fprintf(stderr, "funnel origin mismatch\n");
    return 1;
  }
  if (!(f.after_rule4 < 1e5 && f.after_rule4 > 100)) {
    std::fprintf(stderr, "final candidate count out of expected band\n");
    return 1;
  }
  return mcf::bench::emit(table, "fig7") ? 0 : 1;
}

}  // namespace

int main() { return run(); }
