// Reproduces paper Table IV: tuning time for sub-graph modules and
// end-to-end models.  Tuning is counted in hardware events and converted
// with the documented per-event costs (tuning_cost.hpp); the actual
// wall-clock of this implementation is reported alongside.
#include <cstdio>

#include "common.hpp"
#include "graph/bert.hpp"
#include "graph/executor.hpp"
#include "subgraph_runner.hpp"
#include "support/stats.hpp"
#include "tuning_cost.hpp"

namespace {

using namespace mcf;
using namespace mcf::bench;

struct SuiteCost {
  double bolt_s = 0.0;
  double ansor_s = 0.0;
  double chimera_s = 0.0;
  double mcfuser_s = 0.0;
  double mcfuser_wall_s = 0.0;
  bool bolt_supported = true;
  int n = 0;
};

SuiteCost suite_cost(const GpuSpec& gpu, const std::vector<ChainSpec>& suite,
                     bool with_flash) {
  SuiteCost c;
  for (const ChainSpec& chain : suite) {
    const SubgraphRow row = run_subgraph(gpu, chain, with_flash);
    c.ansor_s += ansor_tuning_s(row.ansor_tuning);
    if (row.bolt_s) c.bolt_s += bolt_tuning_s(row.bolt_tuning);
    else c.bolt_supported = false;
    c.chimera_s += mcfuser_tuning_s(row.chimera_tuning.hardware_measurements);
    c.mcfuser_s += mcfuser_tuning_s(row.mcfuser_measurements);
    c.mcfuser_wall_s += row.mcfuser_wall_s;
    ++c.n;
  }
  c.bolt_s /= c.n;
  c.ansor_s /= c.n;
  c.chimera_s /= c.n;
  c.mcfuser_s /= c.n;
  c.mcfuser_wall_s /= c.n;
  return c;
}

int main_impl() {
  const GpuSpec gpu = a100();

  // ---- sub-graph tuning (modelled seconds, averaged per workload) ---------
  Table sub("Table IV (top) — sub-graph tuning time on A100, modelled "
            "seconds per workload");
  sub.set_header({"suite", "BOLT", "Ansor", "MCFuser-Chimera", "MCFuser",
                  "speedup vs BOLT", "speedup vs Ansor", "impl wall (s)"});
  const SuiteCost g = suite_cost(gpu, gemm_chain_suite(), false);
  const SuiteCost s = suite_cost(gpu, attention_suite(), true);
  sub.add_row({"GEMM chain", Table::num(g.bolt_s, 0) + "s",
               Table::num(g.ansor_s, 0) + "s", Table::num(g.chimera_s, 0) + "s",
               Table::num(g.mcfuser_s, 0) + "s",
               Table::num(g.bolt_s / g.mcfuser_s, 1) + "x",
               Table::num(g.ansor_s / g.mcfuser_s, 0) + "x",
               Table::num(g.mcfuser_wall_s, 3)});
  sub.add_row({"Self attention", "- (no pattern)", Table::num(s.ansor_s, 0) + "s",
               Table::num(s.chimera_s, 0) + "s", Table::num(s.mcfuser_s, 0) + "s",
               "-", Table::num(s.ansor_s / s.mcfuser_s, 0) + "x",
               Table::num(s.mcfuser_wall_s, 3)});
  if (!emit(sub, "table4_subgraph")) return 1;

  // Paper band: >= 70x faster than Ansor (139x GEMM chains, 74x attention).
  if (g.ansor_s / g.mcfuser_s < 30.0 || s.ansor_s / s.mcfuser_s < 30.0) {
    std::fprintf(stderr, "tuning-time speedup below the expected band\n");
    return 1;
  }

  // ---- end-to-end tuning ----------------------------------------------------
  Table e2e("Table IV (bottom) — end-to-end tuning time on A100 (modelled)");
  e2e.set_header({"model", "Relay", "BOLT", "MCFuser+Relay", "Ansor",
                  "MCFuser+Ansor"});
  for (const BertConfig& cfg : bert_suite()) {
    const NetGraph graph = build_bert(cfg);
    const int ops = graph.size() - 1;

    GraphExecOptions base_opts;
    base_opts.backend = GraphBackend::Ansor;
    GraphExecutor base_ex(gpu, base_opts);
    const GraphRunResult base = base_ex.run(graph);

    GraphExecOptions fused_opts = base_opts;
    fused_opts.use_mcfuser = true;
    GraphExecutor fused_ex(gpu, fused_opts);
    const GraphRunResult fused = fused_ex.run(graph);

    const double relay_s = ops * kRelayPerOpS;
    // BOLT: Relay plus its two-entry template menu per unique shape.
    const double bolt_s = relay_s + base.unique_tuned_subgraphs * 2 * kBoltTemplateS;
    const double mcf_relay_s =
        relay_s + mcfuser_tuning_s(fused.mcfuser_measurements);
    const double per_subgraph =
        kAnsorE2eTrialsPerSubgraph * kAnsorTrialS +
        (kAnsorE2eTrialsPerSubgraph / 64 + 1) * kAnsorTrainS;
    const double ansor_s = base.unique_tuned_subgraphs * per_subgraph;
    const double mcf_ansor_s = fused.unique_tuned_subgraphs * per_subgraph +
                               mcfuser_tuning_s(fused.mcfuser_measurements);
    e2e.add_row({cfg.name, Table::num(relay_s, 0) + "s",
                 Table::num(bolt_s, 0) + "s",
                 Table::num(mcf_relay_s, 0) + "s (" +
                     Table::num(bolt_s / mcf_relay_s, 2) + "x vs BOLT)",
                 Table::num(ansor_s / 3600.0, 2) + "h",
                 Table::num(mcf_ansor_s / 3600.0, 2) + "h (" +
                     Table::num(ansor_s / mcf_ansor_s, 2) + "x vs Ansor)"});
  }
  return emit(e2e, "table4_e2e") ? 0 : 1;
}

}  // namespace

int main() { return main_impl(); }
