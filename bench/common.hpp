// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench binary prints the paper-style table to stdout and writes a
// CSV next to the executable (./<name>.csv) for plotting.
#pragma once

#include <cstdio>
#include <string>

#include "support/table.hpp"

namespace mcf::bench {

/// Prints the table and saves `<name>.csv`; returns false on I/O error.
inline bool emit(const Table& table, const std::string& name) {
  std::printf("%s\n", table.to_string().c_str());
  const std::string path = name + ".csv";
  if (!table.write_csv(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  std::printf("[csv written to %s]\n\n", path.c_str());
  return true;
}

/// Formats a speedup like the paper's annotations ("6.6x").
inline std::string speedup(double base, double value) {
  return Table::num(base / value, 2) + "x";
}

}  // namespace mcf::bench
