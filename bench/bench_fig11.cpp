// Reproduces paper Fig. 11: analytical-model estimate vs simulated
// measurement for scheduled candidates of G1-G4 (correlation coefficients
// 0.86 / 0.92 / 0.84 / 0.80 in the paper).
#include <cstdio>

#include "common.hpp"
#include "gpu/timing.hpp"
#include "model/analytical.hpp"
#include "search/space.hpp"
#include "support/stats.hpp"
#include "workloads/suites.hpp"

namespace {

using namespace mcf;

int main_impl() {
  const GpuSpec gpu = a100();
  const AnalyticalModel model(gpu);
  const TimingSimulator sim(gpu);

  Table table("Fig.11 — analytical estimate vs measurement, G1-G4 (A100)");
  table.set_header({"workload", "samples", "pearson", "spearman",
                    "best measured (us)", "est of best (us)"});
  const auto suite = gemm_chain_suite();
  double worst_corr = 1.0;
  for (int i = 0; i < 4; ++i) {
    const ChainSpec& chain = suite[static_cast<std::size_t>(i)];
    PruneOptions prune;
    prune.smem_limit_bytes = gpu.smem_per_block;
    const SearchSpace space(chain, SpaceOptions{}, prune);
    std::vector<double> est;
    std::vector<double> meas;
    const auto& cands = space.candidates();
    const std::size_t step = std::max<std::size_t>(1, cands.size() / 200);
    double best_t = 1e30;
    double best_est = 0.0;
    for (std::size_t k = 0; k < cands.size(); k += step) {
      const Schedule s = space.schedule_for(cands[k]);
      const auto m = sim.measure(s);
      if (!m.ok) continue;
      const double e = model.estimate(s).time_s;
      est.push_back(e);
      meas.push_back(m.time_s);
      if (m.time_s < best_t) {
        best_t = m.time_s;
        best_est = e;
      }
    }
    const double corr = pearson(est, meas);
    worst_corr = std::min(worst_corr, corr);
    table.add_row({chain.name(), std::to_string(est.size()),
                   Table::num(corr, 3), Table::num(spearman(est, meas), 3),
                   Table::num(best_t * 1e6, 2), Table::num(best_est * 1e6, 2)});
  }
  if (!mcf::bench::emit(table, "fig11")) return 1;

  // Paper band: correlations 0.8-0.92.
  if (worst_corr < 0.6) {
    std::fprintf(stderr, "model correlation below expected band\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return main_impl(); }
