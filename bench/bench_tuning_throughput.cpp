// Tuning-throughput benchmark: the evaluation-pipeline overhaul measured
// against the frozen pre-overhaul code paths (bench/legacy_tuner.hpp,
// bench/legacy_interpreter.hpp).
//
// Two sections, both on the Fig. 7 workload family (the paper's
// pruning-funnel GEMM chain plus attention/GEMM neighbours):
//
//   * tuner:        wall-clock of a fixed-generation-budget tuning run,
//                   legacy serial loop vs the batched pipeline, plus
//                   candidates/second (estimates + measurements per wall
//                   second).  Generation count is pinned so both tuners do
//                   the same algorithmic work and the ratio is a pure
//                   throughput ratio.
//   * interpreter:  blocks/second and GFLOP/s of the functional
//                   interpreter over a spread of schedules, legacy
//                   per-block-allocating executor vs the arena-backed
//                   micro-kernel.
//   * backends:     the simulator and interpreter MeasureBackends side by
//                   side on the same schedules — predicted/observed
//                   kernel time, measure() call cost, and the rank
//                   correlation between the two backends' times.
//   * jit:          the native-codegen path (exec/jit): the same
//                   schedules compiled to real machine code and timed
//                   against the interpreter's GFLOP/s — the gate is a
//                   >= 3x geomean advantage on the fig7-mini family.
//                   Also reports the module lifecycle counters and a
//                   dlopen-churn soak: 256 resolves of distinct keys
//                   through a small kernel cap, gated on the resident
//                   module count staying bounded by the cap (RSS
//                   before/after published alongside).
//   * jit-mt:       multicore run_native — the same compiled kernels
//                   executed single-thread vs full worker-pool fan-out;
//                   gated at >= 2.5x geomean GFLOP/s when the host has
//                   >= 4 cores (reported, not gated, below that).
//   * isolation:    the crash-isolated "jit-isolated" backend
//                   (exec/sandbox) next to the in-process jit backend on
//                   the same schedules — per-measure() wall cost of the
//                   worker-pool pipe roundtrip, gated at <= 25% geomean
//                   overhead.
//   * admission:    the FusionEngine under a synthetic flood of 10k
//                   DISTINCT chains against a tiny bounded queue + LRU
//                   result memo — gates that the queue depth and memo
//                   entry count never exceed their caps, that every
//                   ticket lands in exactly one terminal bucket
//                   (rejected + completed + cancelled == submitted), and
//                   reports the RSS growth over the flood.
//
// Emits the paper-style table + CSV (common.hpp) and writes
// BENCH_tuning_throughput.json (stable schema v6, see
// docs/performance.md) so future PRs can track the trajectory.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "engine/engine.hpp"
#include "exec/interpreter.hpp"
#include "exec/jit.hpp"
#include "gpu/spec.hpp"
#include "legacy_interpreter.hpp"
#include "legacy_tuner.hpp"
#include "measure/backend.hpp"
#include "search/tuner.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "tensor/tensor.hpp"
#include "verify/verify.hpp"

namespace {

using namespace mcf;
using clk = std::chrono::steady_clock;

double secs(clk::time_point a, clk::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Fastest-of-N: the standard noise-robust estimator for microbenchmarks
// on a shared machine (interference only ever adds time).
double best_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

double geomean(const std::vector<double>& v) {
  double lg = 0.0;
  for (const double x : v) lg += std::log(x);
  return std::exp(lg / static_cast<double>(v.size()));
}

struct TunerRow {
  std::string name;
  double legacy_wall_s = 0.0;
  double new_wall_s = 0.0;
  double legacy_cands_per_s = 0.0;
  double new_cands_per_s = 0.0;
  bool same_best = false;
};

struct InterpRow {
  std::string name;
  std::string tiles;
  std::int64_t blocks = 0;
  double legacy_blocks_per_s = 0.0;
  double new_blocks_per_s = 0.0;
  double legacy_gflops = 0.0;
  double new_gflops = 0.0;
  double flops = 0.0;  ///< executed FLOPs per run (jit section reuses it)
};

struct JitRow {
  std::string name;
  std::string tiles;
  std::int64_t blocks = 0;
  double interp_gflops = 0.0;
  double jit_gflops = 0.0;
  [[nodiscard]] double vs_interp() const { return jit_gflops / interp_gflops; }
};

struct BackendRow {
  std::string name;
  std::string tiles;
  double sim_time_s = 0.0;     ///< simulator-predicted kernel time
  double interp_time_s = 0.0;  ///< interpreter-observed CPU kernel time
  double sim_wall_s = 0.0;     ///< cost of one sim measure() call
  double interp_wall_s = 0.0;  ///< cost of one interp measure() call
};

BackendRow bench_backend(const ChainSpec& chain, const SearchSpace& space,
                         std::size_t cand_index, const MeasureBackend& sim,
                         const MeasureBackend& interp) {
  const CandidateConfig& cand = space.candidates()[cand_index];
  const Schedule s = space.schedule_for(cand);
  BackendRow row;
  row.name = chain.name();
  for (const auto t : cand.tiles) {
    row.tiles += (row.tiles.empty() ? "" : "x") + std::to_string(t);
  }
  constexpr int kRepeats = 3;
  std::vector<double> sim_wall;
  std::vector<double> interp_wall;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = clk::now();
    const KernelMeasurement ms = sim.measure(s);
    const auto t1 = clk::now();
    const KernelMeasurement mi = interp.measure(s);
    const auto t2 = clk::now();
    if (!ms.ok || !mi.ok) {
      std::fprintf(stderr, "backend bench: measurement failed on %s\n",
                   row.name.c_str());
      std::exit(1);
    }
    row.sim_time_s = ms.time_s;
    row.interp_time_s = mi.time_s;
    sim_wall.push_back(secs(t0, t1));
    interp_wall.push_back(secs(t1, t2));
  }
  row.sim_wall_s = best_of(sim_wall);
  row.interp_wall_s = best_of(interp_wall);
  return row;
}

TunerRow bench_tuner(const ChainSpec& chain, const GpuSpec& gpu) {
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  const SearchSpace space(chain, SpaceOptions{}, prune);

  // Pinned generation budget: epsilon 0 disables early convergence inside
  // the budget, so legacy and new run the same number of generations and
  // wall-clock compares throughput, not stopping luck.
  TunerOptions opts;
  opts.epsilon = 0.0;
  opts.min_generations = 16;
  opts.max_generations = 16;

  constexpr int kRepeats = 7;
  std::vector<double> legacy_wall;
  std::vector<double> new_wall;
  TunedResult rl;
  TunedResult rn;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = clk::now();
    bench::legacy::LegacyTuner lt(space, gpu, opts);
    rl = lt.run();
    const auto t1 = clk::now();
    Tuner nt(space, gpu, opts);
    rn = nt.run();
    const auto t2 = clk::now();
    legacy_wall.push_back(secs(t0, t1));
    new_wall.push_back(secs(t1, t2));
  }

  TunerRow row;
  row.name = chain.name();
  row.legacy_wall_s = best_of(legacy_wall);
  row.new_wall_s = best_of(new_wall);
  row.legacy_cands_per_s =
      (rl.stats.estimates + rl.stats.measurements) / row.legacy_wall_s;
  row.new_cands_per_s =
      (rn.stats.estimates + rn.stats.measurements) / row.new_wall_s;
  row.same_best = rl.ok && rn.ok && rl.best.expr_id == rn.best.expr_id &&
                  rl.best.tiles == rn.best.tiles;
  return row;
}

InterpRow bench_interp(const ChainSpec& chain, const SearchSpace& space,
                       std::size_t cand_index) {
  const auto& cands = space.candidates();
  const CandidateConfig& cand = cands[cand_index];
  const Schedule s = space.schedule_for(cand);

  Tensor a(Shape{chain.batch(), chain.m(), chain.inner().front()});
  Tensor out(Shape{chain.batch(), chain.m(), chain.inner().back()});
  a.fill_random(1);
  std::vector<Tensor> w;
  for (int op = 0; op < chain.num_ops(); ++op) {
    Tensor t(Shape{chain.batch(), chain.inner()[static_cast<std::size_t>(op)],
                   chain.inner()[static_cast<std::size_t>(op) + 1]});
    t.fill_random(static_cast<std::uint64_t>(op) + 2);
    w.push_back(std::move(t));
  }

  const InterpreterOptions opt;
  constexpr int kRepeats = 7;
  std::vector<double> legacy_t;
  std::vector<double> new_t;
  ExecutionCounters counters;
  const Interpreter interp(s);
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = clk::now();
    bench::legacy::run(s, opt, a, w, out);
    const auto t1 = clk::now();
    counters = interp.run(a, w, out);
    const auto t2 = clk::now();
    legacy_t.push_back(secs(t0, t1));
    new_t.push_back(secs(t1, t2));
  }

  InterpRow row;
  row.name = chain.name();
  for (const auto t : cand.tiles) {
    row.tiles += (row.tiles.empty() ? "" : "x") + std::to_string(t);
  }
  row.blocks = s.num_blocks();
  const double lm = best_of(legacy_t);
  const double nm = best_of(new_t);
  row.legacy_blocks_per_s = static_cast<double>(row.blocks) / lm;
  row.new_blocks_per_s = static_cast<double>(row.blocks) / nm;
  row.flops = counters.flops + counters.epilogue_flops;
  row.legacy_gflops = row.flops / lm / 1e9;
  row.new_gflops = row.flops / nm / 1e9;
  return row;
}

/// Times the natively compiled kernel on the interp row's schedule; the
/// executed-FLOP count (and hence the GFLOP/s denominator) is identical
/// by construction, so the ratio is a pure codegen speedup.
JitRow bench_jit(const ChainSpec& chain, const Schedule& s,
                 const InterpRow& interp_row) {
  JitRow row;
  row.name = interp_row.name;
  row.tiles = interp_row.tiles;
  row.blocks = interp_row.blocks;
  row.interp_gflops = interp_row.new_gflops;

  const JitKernel kernel(s, "bench");
  if (!kernel.ok()) {
    std::fprintf(stderr, "jit bench: compile failed on %s: %s\n",
                 row.name.c_str(), kernel.error().c_str());
    std::exit(1);
  }
  Tensor a(Shape{chain.batch(), chain.m(), chain.inner().front()});
  Tensor out(Shape{chain.batch(), chain.m(), chain.inner().back()});
  a.fill_random(1);
  std::vector<Tensor> w;
  for (int op = 0; op < chain.num_ops(); ++op) {
    Tensor t(Shape{chain.batch(), chain.inner()[static_cast<std::size_t>(op)],
                   chain.inner()[static_cast<std::size_t>(op) + 1]});
    t.fill_random(static_cast<std::uint64_t>(op) + 2);
    w.push_back(std::move(t));
  }
  constexpr int kRepeats = 7;
  kernel.run(a, w, out);  // warm-up (scratch allocation, icache)
  std::vector<double> wall;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = clk::now();
    kernel.run(a, w, out);
    wall.push_back(secs(t0, clk::now()));
  }
  row.jit_gflops = interp_row.flops / best_of(wall) / 1e9;
  return row;
}

/// VmRSS of this process in KiB (0 when /proc is unavailable).
long vm_rss_kib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kib = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kib;
}

struct JitMtRow {
  std::string name;
  std::string tiles;
  std::int64_t blocks = 0;
  double t1_gflops = 0.0;  ///< run_native with threads = 1
  double mt_gflops = 0.0;  ///< run_native with the full worker-slot pool
  [[nodiscard]] double scaling() const { return mt_gflops / t1_gflops; }
};

/// Multicore run_native: the SAME compiled kernel (cache hit on the jit
/// section's key) executed with the block fan-out pinned to one thread
/// and then released to the full worker-slot pool.  Output is
/// bit-identical either way (pinned by tests/exec/test_jit_lifecycle),
/// so the ratio is pure execution scaling.
JitMtRow bench_jit_mt(const ChainSpec& chain, const Schedule& s,
                      const InterpRow& interp_row) {
  JitMtRow row;
  row.name = interp_row.name;
  row.tiles = interp_row.tiles;
  row.blocks = interp_row.blocks;

  const JitKernel kernel(s, "bench");
  if (!kernel.ok()) {
    std::fprintf(stderr, "jit-mt bench: compile failed on %s: %s\n",
                 row.name.c_str(), kernel.error().c_str());
    std::exit(1);
  }
  Tensor a(Shape{chain.batch(), chain.m(), chain.inner().front()});
  Tensor out(Shape{chain.batch(), chain.m(), chain.inner().back()});
  a.fill_random(1);
  std::vector<Tensor> w;
  for (int op = 0; op < chain.num_ops(); ++op) {
    Tensor t(Shape{chain.batch(), chain.inner()[static_cast<std::size_t>(op)],
                   chain.inner()[static_cast<std::size_t>(op) + 1]});
    t.fill_random(static_cast<std::uint64_t>(op) + 2);
    w.push_back(std::move(t));
  }
  constexpr int kRepeats = 7;
  kernel.run(a, w, out, 1);  // warm-up (scratch arenas, icache)
  kernel.run(a, w, out, 0);
  std::vector<double> t1_wall;
  std::vector<double> mt_wall;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = clk::now();
    kernel.run(a, w, out, 1);
    const auto t1 = clk::now();
    kernel.run(a, w, out, 0);  // 0 = the full worker-slot pool
    const auto t2 = clk::now();
    t1_wall.push_back(secs(t0, t1));
    mt_wall.push_back(secs(t1, t2));
  }
  row.t1_gflops = interp_row.flops / best_of(t1_wall) / 1e9;
  row.mt_gflops = interp_row.flops / best_of(mt_wall) / 1e9;
  return row;
}

struct JitChurnResult {
  std::size_t cap = 0;      ///< kernel cap the soak squeezes through
  int distinct_keys = 0;    ///< distinct gpu keys cycled
  int iterations = 0;       ///< resolve_kernel calls
  std::int64_t modules_open_before = 0;
  std::int64_t modules_open_after = 0;
  std::int64_t modules_closed_delta = 0;
  long rss_before_kib = 0;
  long rss_after_kib = 0;
};

/// dlopen-churn soak: cycles `distinct_keys` gpu keys over one schedule
/// through a `cap`-entry registry for 256 resolves.  Refcounted modules
/// mean every LRU eviction dlclose()s (nothing else holds the handle),
/// so the resident-module gauge must stay bounded by the cap — the gate
/// the module-leak fix is accepted on.  Keys are stable across runs so
/// a persisted CI cache turns the compiles into disk hits.
JitChurnResult bench_jit_churn(const Schedule& s, const jit::Toolchain& tc) {
  JitChurnResult res;
  res.cap = 4;
  res.distinct_keys = 16;
  res.iterations = 256;

  const jit::CompileStats before = jit::stats_snapshot();
  res.modules_open_before = before.modules_open;
  res.rss_before_kib = vm_rss_kib();
  jit::set_kernel_cap_for_testing(res.cap);
  for (int it = 0; it < res.iterations; ++it) {
    std::string err;
    const jit::ResolvedKernel rk = jit::resolve_kernel(
        s, "soak-" + std::to_string(it % res.distinct_keys), tc, &err);
    if (!rk.ok()) {
      std::fprintf(stderr, "jit churn soak: resolve failed: %s\n", err.c_str());
      std::exit(1);
    }
  }
  const jit::CompileStats after = jit::stats_snapshot();
  jit::set_kernel_cap_for_testing(4096);  // the production default
  res.modules_open_after = after.modules_open;
  res.modules_closed_delta = after.modules_closed - before.modules_closed;
  res.rss_after_kib = vm_rss_kib();
  return res;
}

struct IsolationRow {
  std::string name;
  std::string tiles;
  double inproc_wall_s = 0.0;    ///< one in-process jit measure() call
  double isolated_wall_s = 0.0;  ///< one sandboxed measure() call
  [[nodiscard]] double overhead() const {
    return isolated_wall_s / inproc_wall_s;
  }
};

/// One schedule through both jit measurement paths: the in-process
/// backend and the crash-isolated worker pool.  Both are warmed first
/// (compile, worker spawn, input build) so the ratio prices the steady
/// state — the per-measure pipe roundtrip — not one-time setup.
IsolationRow bench_isolation(const ChainSpec& chain, const Schedule& s,
                             const std::string& tiles,
                             const MeasureBackend& inproc,
                             const MeasureBackend& isolated) {
  IsolationRow row;
  row.name = chain.name();
  row.tiles = tiles;
  const KernelMeasurement warm_in = inproc.measure(s);
  const KernelMeasurement warm_iso = isolated.measure(s);
  if (!warm_in.ok || !warm_iso.ok) {
    std::fprintf(stderr, "isolation bench: warm-up failed on %s: %s\n",
                 row.name.c_str(),
                 (!warm_in.ok ? warm_in : warm_iso).fail_reason.c_str());
    std::exit(1);
  }
  constexpr int kRepeats = 5;
  std::vector<double> inproc_wall;
  std::vector<double> iso_wall;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = clk::now();
    const KernelMeasurement mi = inproc.measure(s);
    const auto t1 = clk::now();
    const KernelMeasurement ms = isolated.measure(s);
    const auto t2 = clk::now();
    if (!mi.ok || !ms.ok) {
      std::fprintf(stderr, "isolation bench: measurement failed on %s: %s\n",
                   row.name.c_str(),
                   (!mi.ok ? mi : ms).fail_reason.c_str());
      std::exit(1);
    }
    inproc_wall.push_back(secs(t0, t1));
    iso_wall.push_back(secs(t1, t2));
  }
  row.inproc_wall_s = best_of(inproc_wall);
  row.isolated_wall_s = best_of(iso_wall);
  return row;
}

struct AdmissionResult {
  int flood_total = 0;
  int completed = 0;
  int rejected = 0;
  int other = 0;  ///< must stay 0 (no cancel/deadline configured)
  std::size_t queue_cap = 0;
  std::size_t memo_cap = 0;
  std::size_t max_queued_seen = 0;
  std::size_t max_memo_seen = 0;
  std::uint64_t memo_evictions = 0;
  long rss_before_kib = 0;
  long rss_after_kib = 0;
  double flood_wall_s = 0.0;
  // Deterministic memo-churn phase: 256 distinct chains through the
  // 32-entry memo via the batch path (every one tunes, cap must hold).
  int churn_chains = 0;
  std::size_t churn_max_memo_seen = 0;
  std::uint64_t churn_evictions = 0;
};

AdmissionResult bench_admission(const GpuSpec& gpu) {
  AdmissionResult res;
  res.queue_cap = 16;
  res.memo_cap = 32;

  FusionEngineOptions opts;
  opts.jobs = 2;
  opts.queue.max_queued = res.queue_cap;
  opts.queue.overflow = OverflowPolicy::Reject;
  opts.memo.max_entries = res.memo_cap;
  // Tiny search budget: this section measures queue/memo mechanics, not
  // search quality.
  opts.tuner.population = 16;
  opts.tuner.topk = 2;
  opts.tuner.min_generations = 1;
  opts.tuner.max_generations = 2;
  FusionEngine engine(gpu, opts);

  res.rss_before_kib = vm_rss_kib();
  const auto t0 = clk::now();

  // ---- flood: 10k distinct chains, non-blocking submission ---------------
  constexpr int kFlood = 10000;
  res.flood_total = kFlood;
  std::deque<FusionTicket> outstanding;
  const auto harvest_ready = [&](bool drain) {
    while (!outstanding.empty() && (drain || outstanding.front().ready())) {
      const FusionResult& r = outstanding.front().get();
      if (r.status == FusionStatus::Rejected) {
        ++res.rejected;
      } else if (r.status == FusionStatus::Ok ||
                 r.status == FusionStatus::MeasureFailed) {
        ++res.completed;
      } else {
        ++res.other;
      }
      outstanding.pop_front();  // ticket (and its state) released: RSS
                                // stays bounded by the rolling window
    }
  };
  for (int i = 0; i < kFlood; ++i) {
    // 10k structurally distinct digests from a 100x100 (m, n) grid.
    outstanding.push_back(engine.try_submit(ChainSpec::gemm_chain(
        "f" + std::to_string(i), 1, 64 + (i % 100), 64 + (i / 100), 32, 32)));
    harvest_ready(/*drain=*/false);
    if (outstanding.size() > 1024) {
      // Bound the caller-side ticket window too: block on the oldest
      // (an admitted job mid-tune), then sweep everything behind it.
      (void)outstanding.front().get();
      harvest_ready(/*drain=*/false);
    }
    if (i % 64 == 0) {
      const EngineStats s = engine.stats();
      res.max_queued_seen = std::max(res.max_queued_seen, s.queued);
      res.max_memo_seen = std::max(res.max_memo_seen, s.memo_entries);
    }
  }
  harvest_ready(/*drain=*/true);
  res.flood_wall_s = secs(t0, clk::now());
  res.rss_after_kib = vm_rss_kib();
  {
    const EngineStats s = engine.stats();
    res.max_queued_seen = std::max(res.max_queued_seen, s.queued);
    res.max_memo_seen = std::max(res.max_memo_seen, s.memo_entries);
    res.memo_evictions = s.memo_evictions;
  }

  // ---- deterministic memo churn through the batch path -------------------
  constexpr int kChurn = 256;
  constexpr int kBatch = 32;
  res.churn_chains = kChurn;
  for (int base = 0; base < kChurn; base += kBatch) {
    std::vector<ChainSpec> batch;
    batch.reserve(kBatch);
    for (int i = base; i < base + kBatch; ++i) {
      batch.push_back(ChainSpec::gemm_chain("churn" + std::to_string(i), 2,
                                            64 + i, 64, 32, 32));
    }
    (void)engine.fuse_chains(batch, "churn");
    res.churn_max_memo_seen =
        std::max(res.churn_max_memo_seen, engine.result_cache_size());
  }
  res.churn_evictions = engine.stats().memo_evictions - res.memo_evictions;
  return res;
}

int run() {
  const GpuSpec gpu = a100();

  // ---- tuner throughput -----------------------------------------------------
  // The Fig. 7 funnel chain itself plus a GEMM and an attention neighbour
  // from the paper's workload tables.
  const std::vector<ChainSpec> tuner_chains = {
      ChainSpec::gemm_chain("fig7", 1, 1024, 1024, 512, 512),
      ChainSpec::gemm_chain("fig7-g4", 1, 512, 512, 256, 256),
      ChainSpec::attention("fig7-s4", 12, 256, 256, 64, 64),
  };
  std::vector<TunerRow> tuner_rows;
  for (const auto& c : tuner_chains) tuner_rows.push_back(bench_tuner(c, gpu));

  Table tuner_table("Tuning throughput — legacy serial loop vs batched pipeline");
  tuner_table.set_header({"workload", "legacy wall (ms)", "new wall (ms)",
                          "speedup", "legacy cand/s", "new cand/s",
                          "same best"});
  std::vector<double> tuner_speedups;
  for (const auto& r : tuner_rows) {
    tuner_speedups.push_back(r.legacy_wall_s / r.new_wall_s);
    tuner_table.add_row({r.name, Table::num(r.legacy_wall_s * 1e3, 2),
                         Table::num(r.new_wall_s * 1e3, 2),
                         mcf::bench::speedup(r.legacy_wall_s, r.new_wall_s),
                         Table::num(r.legacy_cands_per_s, 0),
                         Table::num(r.new_cands_per_s, 0),
                         r.same_best ? "yes" : "no"});
  }
  const double tuner_geo = geomean(tuner_speedups);

  // ---- interpreter throughput -----------------------------------------------
  // Scaled-down Fig. 7 shapes: full-size chains take seconds per run in a
  // functional interpreter; the mini variants keep tile structure
  // (multiples of 16, padded cases) while fitting a benchmark budget.
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  const std::vector<ChainSpec> interp_chains = {
      ChainSpec::gemm_chain("fig7-mini", 2, 256, 256, 128, 128),
      ChainSpec::gemm_chain("fig7-mini-wide", 1, 512, 256, 64, 64),
      ChainSpec::attention("fig7-mini-attn", 4, 128, 128, 64, 64),
  };
  std::vector<InterpRow> interp_rows;
  std::vector<const ChainSpec*> interp_row_chains;
  std::vector<Schedule> interp_row_scheds;
  for (const auto& c : interp_chains) {
    const SearchSpace space(c, SpaceOptions{}, prune);
    const std::size_t n = space.candidates().size();
    // A deterministic spread: small-tile, mid and large-tile schedules.
    for (const std::size_t idx : {n / 8, n / 2, (7 * n) / 8}) {
      interp_rows.push_back(bench_interp(c, space, idx));
      interp_row_chains.push_back(&c);
      interp_row_scheds.push_back(space.schedule_for(space.candidates()[idx]));
    }
  }

  Table interp_table(
      "Interpreter throughput — per-block allocations vs arena micro-kernel");
  interp_table.set_header({"workload", "tiles", "blocks", "legacy blk/s",
                           "new blk/s", "speedup", "new GFLOP/s"});
  std::vector<double> interp_speedups;
  for (const auto& r : interp_rows) {
    interp_speedups.push_back(r.new_blocks_per_s / r.legacy_blocks_per_s);
    interp_table.add_row(
        {r.name, r.tiles, std::to_string(r.blocks),
         Table::num(r.legacy_blocks_per_s, 0), Table::num(r.new_blocks_per_s, 0),
         mcf::bench::speedup(1.0 / r.legacy_blocks_per_s,
                             1.0 / r.new_blocks_per_s),
         Table::num(r.new_gflops, 1)});
  }
  const double interp_geo = geomean(interp_speedups);

  // ---- measure backends side by side ----------------------------------------
  // The same schedules through the pluggable measurement subsystem: the
  // simulator's predicted time next to the interpreter backend's observed
  // CPU time, plus what one measure() call costs on each.  The rank
  // correlation is the number that matters: the interpreter orders
  // candidates like the simulator does (the conformance suite gates it).
  const SimulatorBackend sim_backend(gpu);
  const InterpreterBackend interp_backend(gpu);
  std::vector<BackendRow> backend_rows;
  for (const auto& c : interp_chains) {
    const SearchSpace space(c, SpaceOptions{}, prune);
    const std::size_t n = space.candidates().size();
    // The pruned space still holds quadrant-II candidates (rule-4 slack)
    // whose actual smem plan fails at lowering; scan forward to the next
    // measurable one, deduplicating in case two scans converge (a
    // duplicate point would pad the rank-correlation sample).
    std::vector<std::size_t> chosen;
    for (const std::size_t idx : {n / 8, n / 2, (7 * n) / 8}) {
      std::size_t feasible = idx;
      while (feasible < n &&
             (std::find(chosen.begin(), chosen.end(), feasible) != chosen.end() ||
              !sim_backend.measure(space.schedule_for(space.candidates()[feasible]))
                   .ok)) {
        ++feasible;
      }
      if (feasible == n) continue;
      chosen.push_back(feasible);
      backend_rows.push_back(
          bench_backend(c, space, feasible, sim_backend, interp_backend));
    }
  }
  std::vector<double> sim_times;
  std::vector<double> interp_times;
  Table backend_table(
      "Measure backends — simulator (predicted) vs interpreter (CPU wall)");
  backend_table.set_header({"workload", "tiles", "sim time (us)",
                            "interp time (ms)", "sim call (us)",
                            "interp call (ms)"});
  for (const auto& r : backend_rows) {
    sim_times.push_back(r.sim_time_s);
    interp_times.push_back(r.interp_time_s);
    backend_table.add_row({r.name, r.tiles, Table::num(r.sim_time_s * 1e6, 2),
                           Table::num(r.interp_time_s * 1e3, 2),
                           Table::num(r.sim_wall_s * 1e6, 1),
                           Table::num(r.interp_wall_s * 1e3, 2)});
  }
  const double backend_rank_corr = spearman(sim_times, interp_times);

  // ---- jit native codegen ---------------------------------------------------
  // The same fig7-mini schedules compiled to real machine code (exec/jit,
  // -O3 -march=native, register-blocked micro-kernel) and timed against
  // the interpreter.  Executed FLOPs are identical by construction.
  const jit::Toolchain toolchain = jit::detect_toolchain();
  const jit::CompileStats jit_before = jit::stats_snapshot();
  std::vector<JitRow> jit_rows;
  if (toolchain.ok()) {
    for (std::size_t i = 0; i < interp_rows.size(); ++i) {
      jit_rows.push_back(bench_jit(*interp_row_chains[i], interp_row_scheds[i],
                                   interp_rows[i]));
    }
  } else {
    std::fprintf(stderr, "jit section skipped: %s\n", toolchain.reason.c_str());
  }
  const jit::CompileStats jit_delta = jit::stats_snapshot().since(jit_before);
  Table jit_table("JIT native codegen — compiled kernels vs interpreter");
  jit_table.set_header({"workload", "tiles", "blocks", "interp GFLOP/s",
                        "jit GFLOP/s", "speedup"});
  std::vector<double> jit_ratios;
  std::vector<double> jit_gflops_list;
  for (const auto& r : jit_rows) {
    jit_ratios.push_back(r.vs_interp());
    jit_gflops_list.push_back(r.jit_gflops);
    jit_table.add_row({r.name, r.tiles, std::to_string(r.blocks),
                       Table::num(r.interp_gflops, 1),
                       Table::num(r.jit_gflops, 1),
                       Table::num(r.vs_interp(), 2) + "x"});
  }
  const double jit_geo = jit_rows.empty() ? 0.0 : geomean(jit_ratios);
  const double jit_geo_gflops = jit_rows.empty() ? 0.0 : geomean(jit_gflops_list);

  // ---- static verifier overhead ---------------------------------------------
  // The pre-compile safety gate (src/verify/) runs once per resolve in
  // debug / MCFUSER_VERIFY=1 deployments; its cost must stay a rounding
  // error next to the compile it guards.  Measured over the exact
  // schedules the jit section compiled, min-of-repeats to shed timer
  // noise; the <= 10%-of-compile-wall gate binds only when this run
  // actually compiled TUs (a warm cache makes the ratio meaningless).
  const int verify_schedules = static_cast<int>(interp_row_scheds.size());
  double verify_wall_s = 0.0;
  int verify_safe = 0;
  {
    constexpr int kVerifyReps = 5;
    double best = 1e100;
    for (int rep = 0; rep < kVerifyReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      int safe = 0;
      for (const Schedule& s : interp_row_scheds) {
        safe += verify::verify_schedule(s).safe() ? 1 : 0;
      }
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      best = std::min(best, dt.count());
      verify_safe = safe;
    }
    verify_wall_s = best;
  }

  // ---- jit multicore scaling ------------------------------------------------
  // run_native's block fan-out across the worker-slot pool: single
  // thread vs full concurrency on the kernels the jit section already
  // compiled (cache hits — no extra compile wall).  The >= 2.5x geomean
  // gate only binds on hosts with >= 4 cores; below that the scaling is
  // reported but a 1-core runner cannot fail it.
  const unsigned hw_cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<JitMtRow> jit_mt_rows;
  if (toolchain.ok()) {
    for (std::size_t i = 0; i < interp_rows.size(); ++i) {
      jit_mt_rows.push_back(bench_jit_mt(*interp_row_chains[i],
                                         interp_row_scheds[i], interp_rows[i]));
    }
  }
  Table jit_mt_table("JIT multicore — run_native 1 thread vs full pool");
  jit_mt_table.set_header({"workload", "tiles", "blocks", "1T GFLOP/s",
                           "MT GFLOP/s", "scaling"});
  std::vector<double> jit_mt_scalings;
  for (const auto& r : jit_mt_rows) {
    jit_mt_scalings.push_back(r.scaling());
    jit_mt_table.add_row({r.name, r.tiles, std::to_string(r.blocks),
                          Table::num(r.t1_gflops, 1), Table::num(r.mt_gflops, 1),
                          Table::num(r.scaling(), 2) + "x"});
  }
  const double jit_mt_geo =
      jit_mt_rows.empty() ? 0.0 : geomean(jit_mt_scalings);

  // ---- jit module-lifecycle churn soak --------------------------------------
  JitChurnResult churn;
  if (toolchain.ok()) {
    churn = bench_jit_churn(interp_row_scheds.front(), toolchain);
  }
  const jit::CompileStats jit_now = jit::stats_snapshot();

  // ---- crash-isolated measurement overhead ----------------------------------
  // The same fig7-mini schedules measured through the sandboxed worker
  // pool ("jit-isolated", exec/sandbox.hpp) next to the in-process jit
  // backend.  The gate: isolation may cost at most 25% wall-clock per
  // measure() geomean — the price of surviving SIGSEGV is a pipe
  // roundtrip, not a fork+compile per request.
  const sandbox::Availability sandbox_avail = sandbox::availability();
  const bool isolation_available = toolchain.ok() && sandbox_avail.ok;
  std::vector<IsolationRow> isolation_rows;
  if (isolation_available) {
    const JitBackend inproc_backend(gpu);
    IsolatedJitBackendOptions iso_opts;
    iso_opts.pool.workers = 1;  // mirror the in-process execution geometry
    const IsolatedJitBackend isolated_backend(gpu, iso_opts);
    if (isolated_backend.sandbox_active()) {
      for (std::size_t i = 0; i < interp_rows.size(); ++i) {
        // The interp rows were never screened through the lowering gate
        // (the functional interpreter happily runs quadrant-II
        // candidates); only gate-passing schedules reach real execution.
        if (!inproc_backend.measure(interp_row_scheds[i]).ok) continue;
        isolation_rows.push_back(
            bench_isolation(*interp_row_chains[i], interp_row_scheds[i],
                            interp_rows[i].tiles, inproc_backend,
                            isolated_backend));
      }
    }
  } else {
    std::fprintf(stderr, "isolation section skipped: %s\n",
                 (toolchain.ok() ? sandbox_avail.reason : toolchain.reason)
                     .c_str());
  }
  Table isolation_table(
      "Crash isolation — sandboxed worker measure() vs in-process jit");
  isolation_table.set_header({"workload", "tiles", "in-proc call (ms)",
                              "isolated call (ms)", "overhead"});
  std::vector<double> isolation_overheads;
  for (const auto& r : isolation_rows) {
    isolation_overheads.push_back(r.overhead());
    isolation_table.add_row({r.name, r.tiles,
                             Table::num(r.inproc_wall_s * 1e3, 2),
                             Table::num(r.isolated_wall_s * 1e3, 2),
                             Table::num(r.overhead(), 2) + "x"});
  }
  const double isolation_geo =
      isolation_rows.empty() ? 0.0 : geomean(isolation_overheads);

  // ---- admission control under flood ----------------------------------------
  const AdmissionResult adm = bench_admission(gpu);
  Table adm_table("Admission control — 10k-distinct-chain flood vs bounded "
                  "queue + LRU memo");
  adm_table.set_header({"metric", "value"});
  adm_table.add_row({"chains flooded", std::to_string(adm.flood_total)});
  adm_table.add_row({"completed", std::to_string(adm.completed)});
  adm_table.add_row({"rejected (shed)", std::to_string(adm.rejected)});
  adm_table.add_row({"flood wall (s)", Table::num(adm.flood_wall_s, 2)});
  adm_table.add_row({"queue cap / max seen",
                     std::to_string(adm.queue_cap) + " / " +
                         std::to_string(adm.max_queued_seen)});
  adm_table.add_row({"memo cap / max seen",
                     std::to_string(adm.memo_cap) + " / " +
                         std::to_string(std::max(adm.max_memo_seen,
                                                 adm.churn_max_memo_seen))});
  adm_table.add_row({"memo evictions (flood+churn)",
                     std::to_string(adm.memo_evictions + adm.churn_evictions)});
  adm_table.add_row({"RSS before/after flood (MiB)",
                     Table::num(adm.rss_before_kib / 1024.0, 1) + " / " +
                         Table::num(adm.rss_after_kib / 1024.0, 1)});

  if (!mcf::bench::emit(tuner_table, "tuning_throughput_tuner")) return 1;
  if (!mcf::bench::emit(interp_table, "tuning_throughput_interp")) return 1;
  if (!mcf::bench::emit(backend_table, "tuning_throughput_backends")) return 1;
  if (toolchain.ok() &&
      !mcf::bench::emit(jit_table, "tuning_throughput_jit")) {
    return 1;
  }
  if (!jit_mt_rows.empty() &&
      !mcf::bench::emit(jit_mt_table, "tuning_throughput_jit_mt")) {
    return 1;
  }
  if (!isolation_rows.empty() &&
      !mcf::bench::emit(isolation_table, "tuning_throughput_isolation")) {
    return 1;
  }
  if (!mcf::bench::emit(adm_table, "tuning_throughput_admission")) return 1;
  std::printf("tuner geomean speedup: %.2fx\ninterpreter geomean speedup: %.2fx\n",
              tuner_geo, interp_geo);
  std::printf("sim/interp backend rank correlation: %.3f\n", backend_rank_corr);
  if (toolchain.ok()) {
    std::printf("jit vs interpreter geomean: %.2fx (%.1f GFLOP/s geomean, "
                "%lld TUs, %.2fs compile wall)\n",
                jit_geo, jit_geo_gflops,
                static_cast<long long>(jit_delta.tus_compiled),
                jit_delta.compile_wall_s);
    std::printf("jit-mt scaling geomean: %.2fx on %u cores\n", jit_mt_geo,
                hw_cores);
    std::printf("verifier: %d/%d schedules proven safe in %.1f us "
                "(%.3f%% of %.2fs compile wall)\n",
                verify_safe, verify_schedules, verify_wall_s * 1e6,
                jit_delta.compile_wall_s > 0.0
                    ? 100.0 * verify_wall_s / jit_delta.compile_wall_s
                    : 0.0,
                jit_delta.compile_wall_s);
    std::printf("jit churn soak: %d resolves of %d keys through cap %zu -> "
                "%lld modules resident (was %lld), %lld closed, RSS %.1f -> "
                "%.1f MiB\n",
                churn.iterations, churn.distinct_keys, churn.cap,
                static_cast<long long>(churn.modules_open_after),
                static_cast<long long>(churn.modules_open_before),
                static_cast<long long>(churn.modules_closed_delta),
                churn.rss_before_kib / 1024.0, churn.rss_after_kib / 1024.0);
  }
  if (!isolation_rows.empty()) {
    std::printf("isolated measure() geomean overhead: %.2fx\n", isolation_geo);
  }

  // ---- JSON (stable schema, consumed by future PRs / CI) --------------------
  FILE* f = std::fopen("BENCH_tuning_throughput.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_tuning_throughput.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"tuning_throughput\",\n");
  std::fprintf(f, "  \"schema_version\": 7,\n");
  std::fprintf(f, "  \"threads\": %u,\n", ThreadPool::global().size());
  std::fprintf(f, "  \"tuner\": {\n");
  std::fprintf(f, "    \"geomean_speedup\": %.4f,\n", tuner_geo);
  std::fprintf(f, "    \"workloads\": [\n");
  for (std::size_t i = 0; i < tuner_rows.size(); ++i) {
    const auto& r = tuner_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"legacy_wall_s\": %.6g, "
                 "\"new_wall_s\": %.6g, \"speedup\": %.4f, "
                 "\"legacy_cands_per_s\": %.6g, \"new_cands_per_s\": %.6g, "
                 "\"same_best\": %s}%s\n",
                 r.name.c_str(), r.legacy_wall_s, r.new_wall_s,
                 r.legacy_wall_s / r.new_wall_s, r.legacy_cands_per_s,
                 r.new_cands_per_s, r.same_best ? "true" : "false",
                 i + 1 < tuner_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"interpreter\": {\n");
  std::fprintf(f, "    \"geomean_speedup\": %.4f,\n", interp_geo);
  std::fprintf(f, "    \"workloads\": [\n");
  for (std::size_t i = 0; i < interp_rows.size(); ++i) {
    const auto& r = interp_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"tiles\": \"%s\", \"blocks\": %lld, "
                 "\"legacy_blocks_per_s\": %.6g, \"new_blocks_per_s\": %.6g, "
                 "\"speedup\": %.4f, \"legacy_gflops\": %.4f, "
                 "\"new_gflops\": %.4f}%s\n",
                 r.name.c_str(), r.tiles.c_str(),
                 static_cast<long long>(r.blocks), r.legacy_blocks_per_s,
                 r.new_blocks_per_s, r.new_blocks_per_s / r.legacy_blocks_per_s,
                 r.legacy_gflops, r.new_gflops,
                 i + 1 < interp_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"measure_backends\": {\n");
  std::fprintf(f, "    \"rank_correlation\": %.4f,\n", backend_rank_corr);
  std::fprintf(f, "    \"workloads\": [\n");
  for (std::size_t i = 0; i < backend_rows.size(); ++i) {
    const auto& r = backend_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"tiles\": \"%s\", "
                 "\"sim_time_s\": %.6g, \"interp_time_s\": %.6g, "
                 "\"sim_measure_wall_s\": %.6g, "
                 "\"interp_measure_wall_s\": %.6g}%s\n",
                 r.name.c_str(), r.tiles.c_str(), r.sim_time_s,
                 r.interp_time_s, r.sim_wall_s, r.interp_wall_s,
                 i + 1 < backend_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"jit\": {\n");
  std::fprintf(f, "    \"available\": %s,\n", toolchain.ok() ? "true" : "false");
  std::fprintf(f, "    \"geomean_gflops\": %.4f,\n", jit_geo_gflops);
  std::fprintf(f, "    \"geomean_vs_interp\": %.4f,\n", jit_geo);
  std::fprintf(f,
               "    \"compile\": {\"tus_compiled\": %lld, "
               "\"kernels_compiled\": %lld, \"cache_hits\": %lld, "
               "\"compile_wall_s\": %.4f},\n",
               static_cast<long long>(jit_delta.tus_compiled),
               static_cast<long long>(jit_delta.kernels_compiled),
               static_cast<long long>(jit_delta.cache_hits()),
               jit_delta.compile_wall_s);
  // Absolute module-lifecycle gauges at this point of the run (identity:
  // opened == open + closed).
  std::fprintf(f,
               "    \"modules\": {\"opened\": %lld, \"open\": %lld, "
               "\"closed\": %lld},\n",
               static_cast<long long>(jit_now.modules_opened),
               static_cast<long long>(jit_now.modules_open),
               static_cast<long long>(jit_now.modules_closed));
  std::fprintf(f,
               "    \"churn\": {\"iterations\": %d, \"distinct_keys\": %d, "
               "\"cap\": %zu, \"modules_open_before\": %lld, "
               "\"modules_open_after\": %lld, \"modules_closed\": %lld, "
               "\"rss_before_kib\": %ld, \"rss_after_kib\": %ld},\n",
               churn.iterations, churn.distinct_keys, churn.cap,
               static_cast<long long>(churn.modules_open_before),
               static_cast<long long>(churn.modules_open_after),
               static_cast<long long>(churn.modules_closed_delta),
               churn.rss_before_kib, churn.rss_after_kib);
  std::fprintf(f, "    \"workloads\": [\n");
  for (std::size_t i = 0; i < jit_rows.size(); ++i) {
    const auto& r = jit_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"tiles\": \"%s\", \"blocks\": "
                 "%lld, \"interp_gflops\": %.4f, \"jit_gflops\": %.4f, "
                 "\"vs_interp\": %.4f}%s\n",
                 r.name.c_str(), r.tiles.c_str(),
                 static_cast<long long>(r.blocks), r.interp_gflops,
                 r.jit_gflops, r.vs_interp(),
                 i + 1 < jit_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f,
               "  \"verify\": {\"schedules\": %d, \"safe\": %d, "
               "\"wall_s\": %.6f, \"compile_wall_s\": %.4f, "
               "\"ratio\": %.6f},\n",
               verify_schedules, verify_safe, verify_wall_s,
               jit_delta.compile_wall_s,
               jit_delta.compile_wall_s > 0.0
                   ? verify_wall_s / jit_delta.compile_wall_s
                   : 0.0);
  std::fprintf(f, "  \"jit_mt\": {\n");
  std::fprintf(f, "    \"available\": %s,\n",
               jit_mt_rows.empty() ? "false" : "true");
  std::fprintf(f, "    \"hw_cores\": %u,\n", hw_cores);
  std::fprintf(f, "    \"gate_active\": %s,\n",
               (!jit_mt_rows.empty() && hw_cores >= 4) ? "true" : "false");
  std::fprintf(f, "    \"geomean_scaling\": %.4f,\n", jit_mt_geo);
  std::fprintf(f, "    \"workloads\": [\n");
  for (std::size_t i = 0; i < jit_mt_rows.size(); ++i) {
    const auto& r = jit_mt_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"tiles\": \"%s\", \"blocks\": "
                 "%lld, \"t1_gflops\": %.4f, \"mt_gflops\": %.4f, "
                 "\"scaling\": %.4f}%s\n",
                 r.name.c_str(), r.tiles.c_str(),
                 static_cast<long long>(r.blocks), r.t1_gflops, r.mt_gflops,
                 r.scaling(), i + 1 < jit_mt_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"isolation\": {\n");
  std::fprintf(f, "    \"available\": %s,\n",
               isolation_rows.empty() ? "false" : "true");
  std::fprintf(f, "    \"geomean_overhead\": %.4f,\n", isolation_geo);
  std::fprintf(f, "    \"workloads\": [\n");
  for (std::size_t i = 0; i < isolation_rows.size(); ++i) {
    const auto& r = isolation_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"tiles\": \"%s\", "
                 "\"inproc_measure_wall_s\": %.6g, "
                 "\"isolated_measure_wall_s\": %.6g, \"overhead\": %.4f}%s\n",
                 r.name.c_str(), r.tiles.c_str(), r.inproc_wall_s,
                 r.isolated_wall_s, r.overhead(),
                 i + 1 < isolation_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"admission\": {\n");
  std::fprintf(f,
               "    \"flood_chains\": %d,\n    \"completed\": %d,\n"
               "    \"rejected\": %d,\n    \"flood_wall_s\": %.4f,\n",
               adm.flood_total, adm.completed, adm.rejected, adm.flood_wall_s);
  std::fprintf(f,
               "    \"queue_cap\": %zu,\n    \"max_queued_seen\": %zu,\n"
               "    \"memo_cap\": %zu,\n    \"max_memo_entries_seen\": %zu,\n",
               adm.queue_cap, adm.max_queued_seen, adm.memo_cap,
               std::max(adm.max_memo_seen, adm.churn_max_memo_seen));
  std::fprintf(f,
               "    \"memo_evictions\": %llu,\n"
               "    \"rss_before_kib\": %ld,\n    \"rss_after_kib\": %ld,\n",
               static_cast<unsigned long long>(adm.memo_evictions +
                                               adm.churn_evictions),
               adm.rss_before_kib, adm.rss_after_kib);
  std::fprintf(f,
               "    \"churn\": {\"chains\": %d, \"max_memo_entries_seen\": "
               "%zu, \"evictions\": %llu}\n",
               adm.churn_chains, adm.churn_max_memo_seen,
               static_cast<unsigned long long>(adm.churn_evictions));
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("[json written to BENCH_tuning_throughput.json]\n");

  // Regression gate: the overhaul's acceptance thresholds.
  if (tuner_geo < 2.0) {
    std::fprintf(stderr, "FAIL: tuner speedup %.2fx < 2x\n", tuner_geo);
    return 1;
  }
  if (interp_geo < 3.0) {
    std::fprintf(stderr, "FAIL: interpreter speedup %.2fx < 3x\n", interp_geo);
    return 1;
  }
  // The JIT acceptance gate: compiled kernels must beat the interpreter
  // >= 3x (geomean GFLOP/s) on the fig7-mini family.
  if (toolchain.ok() && jit_geo < 3.0) {
    std::fprintf(stderr, "FAIL: jit vs interpreter %.2fx < 3x\n", jit_geo);
    return 1;
  }
  // Multicore gate: the block fan-out must scale >= 2.5x geomean on the
  // fig7-mini family — but only where the host can physically deliver it
  // (a 1-core CI runner reports instead of failing).
  if (!jit_mt_rows.empty() && hw_cores >= 4 && jit_mt_geo < 2.5) {
    std::fprintf(stderr, "FAIL: jit-mt scaling %.2fx < 2.5x on %u cores\n",
                 jit_mt_geo, hw_cores);
    return 1;
  }
  if (!jit_mt_rows.empty() && hw_cores < 4) {
    std::printf("jit-mt gate skipped (%u cores < 4; scaling reported only)\n",
                hw_cores);
  }
  // Module-lifecycle gates: churning 16 keys through a 4-entry registry
  // must dlclose on every eviction — the resident count stays bounded by
  // the cap (plus whatever the process had open going in) and closes
  // actually happened.  This is the dlopen-leak regression gate.
  if (toolchain.ok()) {
    if (churn.modules_open_after >
        churn.modules_open_before + static_cast<std::int64_t>(churn.cap)) {
      std::fprintf(stderr,
                   "FAIL: churn left %lld modules resident (> %lld before + "
                   "cap %zu)\n",
                   static_cast<long long>(churn.modules_open_after),
                   static_cast<long long>(churn.modules_open_before),
                   churn.cap);
      return 1;
    }
    if (churn.modules_closed_delta == 0) {
      std::fprintf(stderr,
                   "FAIL: %d-resolve churn over %d keys closed no modules\n",
                   churn.iterations, churn.distinct_keys);
      return 1;
    }
    if (jit_now.modules_opened !=
        jit_now.modules_open + jit_now.modules_closed) {
      std::fprintf(stderr,
                   "FAIL: module accounting %lld opened != %lld open + %lld "
                   "closed\n",
                   static_cast<long long>(jit_now.modules_opened),
                   static_cast<long long>(jit_now.modules_open),
                   static_cast<long long>(jit_now.modules_closed));
      return 1;
    }
  }
  // Verifier gates: every fig7-mini schedule must be proven safe (a
  // flag here is by definition a false positive — these kernels run
  // ASan-clean), and the static pass must stay cheap relative to the
  // compilation it guards.  The overhead ratio only means something
  // when this run actually compiled TUs; a warm cache makes
  // compile_wall_s ~0 and the comparison meaningless.
  if (verify_safe != verify_schedules) {
    std::fprintf(stderr, "FAIL: verifier flagged %d/%d known-safe schedules\n",
                 verify_schedules - verify_safe, verify_schedules);
    return 1;
  }
  if (toolchain.ok() && jit_delta.tus_compiled > 0 &&
      verify_wall_s > 0.10 * jit_delta.compile_wall_s) {
    std::fprintf(stderr,
                 "FAIL: verifier overhead %.1f us > 10%% of %.2fs compile "
                 "wall\n",
                 verify_wall_s * 1e6, jit_delta.compile_wall_s);
    return 1;
  }
  // Isolation gate: sandboxed measurement may cost at most 25% geomean
  // wall-clock over the in-process jit path on the fig7-mini family.
  if (!isolation_rows.empty() && isolation_geo > 1.25) {
    std::fprintf(stderr, "FAIL: isolation overhead %.2fx > 1.25x\n",
                 isolation_geo);
    return 1;
  }
  // Admission gates: every flooded ticket landed in exactly one terminal
  // bucket, and the bounded structures never exceeded their caps.
  if (adm.completed + adm.rejected != adm.flood_total || adm.other != 0) {
    std::fprintf(stderr,
                 "FAIL: admission accounting %d completed + %d rejected + %d "
                 "other != %d submitted\n",
                 adm.completed, adm.rejected, adm.other, adm.flood_total);
    return 1;
  }
  if (adm.rejected == 0 || adm.completed == 0) {
    std::fprintf(stderr,
                 "FAIL: the flood must both shed (%d rejected) and make "
                 "progress (%d completed)\n",
                 adm.rejected, adm.completed);
    return 1;
  }
  if (adm.max_queued_seen > adm.queue_cap) {
    std::fprintf(stderr, "FAIL: queue depth %zu exceeded the %zu cap\n",
                 adm.max_queued_seen, adm.queue_cap);
    return 1;
  }
  if (std::max(adm.max_memo_seen, adm.churn_max_memo_seen) > adm.memo_cap) {
    std::fprintf(stderr, "FAIL: memo entries %zu exceeded the %zu cap\n",
                 std::max(adm.max_memo_seen, adm.churn_max_memo_seen),
                 adm.memo_cap);
    return 1;
  }
  if (adm.churn_evictions == 0) {
    std::fprintf(stderr,
                 "FAIL: 256 distinct chains through a 32-entry memo must "
                 "evict\n");
    return 1;
  }
  std::printf("PASS: tuner >= 2x, interpreter >= 3x%s%s, admission bounded "
              "(queue %zu<=%zu, memo %zu<=%zu, %d shed)\n",
              toolchain.ok() ? ", jit >= 3x interpreter, modules bounded"
                             : " (jit skipped)",
              (!jit_mt_rows.empty() && hw_cores >= 4) ? ", jit-mt >= 2.5x"
                                                      : "",
              adm.max_queued_seen, adm.queue_cap,
              std::max(adm.max_memo_seen, adm.churn_max_memo_seen),
              adm.memo_cap, adm.rejected);
  return 0;
}

}  // namespace

int main() { return run(); }
