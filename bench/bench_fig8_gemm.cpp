// Reproduces paper Fig. 8 (a)/(b): batch GEMM chains G1-G12 on A100 and
// RTX 3080, performance normalized to PyTorch.
#include <cstdio>

#include "common.hpp"
#include "subgraph_runner.hpp"
#include "support/stats.hpp"

namespace {

using namespace mcf;
using namespace mcf::bench;

int run_gpu(const GpuSpec& gpu, const char* fig_tag) {
  Table table(std::string("Fig.8") + fig_tag + " — GEMM chains on " + gpu.name +
              " (normalized to PyTorch, higher is better)");
  table.set_header({"workload", "PyTorch(us)", "PyTorch", "Ansor", "BOLT",
                    "MCFuser-Chimera", "MCFuser", "MCF vs Ansor"});
  std::vector<double> ansor_sp;
  std::vector<double> chim_sp;
  std::vector<double> mcf_sp;
  std::vector<double> bolt_sp;
  for (const ChainSpec& chain : gemm_chain_suite()) {
    const SubgraphRow row = run_subgraph(gpu, chain, /*with_flash=*/false);
    if (row.mcfuser_s <= 0.0) {
      std::fprintf(stderr, "MCFuser failed on %s\n", chain.name().c_str());
      return 1;
    }
    const double pt = row.pytorch_s;
    ansor_sp.push_back(pt / row.ansor_s);
    chim_sp.push_back(pt / row.chimera_s);
    mcf_sp.push_back(pt / row.mcfuser_s);
    if (row.bolt_s) bolt_sp.push_back(pt / *row.bolt_s);
    table.add_row({chain.name(), Table::num(pt * 1e6, 1), "1.00",
                   Table::num(pt / row.ansor_s, 2) + (row.ansor_fused ? "" : " (unfused)"),
                   row.bolt_s ? Table::num(pt / *row.bolt_s, 2) : "n/a (sm86)",
                   Table::num(pt / row.chimera_s, 2),
                   Table::num(pt / row.mcfuser_s, 2),
                   Table::num(row.ansor_s / row.mcfuser_s, 2) + "x"});
  }
  table.add_row({"geomean", "-", "1.00", Table::num(geomean(ansor_sp), 2),
                 bolt_sp.empty() ? "n/a" : Table::num(geomean(bolt_sp), 2),
                 Table::num(geomean(chim_sp), 2), Table::num(geomean(mcf_sp), 2),
                 Table::num(geomean(mcf_sp) / geomean(ansor_sp), 2) + "x"});
  if (!emit(table, std::string("fig8") + fig_tag + "_gemm_" + gpu.name)) return 1;

  // Shape checks: MCFuser wins on average and never trails Chimera badly.
  if (geomean(mcf_sp) < 1.5) {
    std::fprintf(stderr, "MCFuser speedup over PyTorch too small\n");
    return 1;
  }
  if (geomean(mcf_sp) + 0.02 < geomean(chim_sp)) {
    std::fprintf(stderr, "MCFuser must not lose to its restricted space\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  if (run_gpu(mcf::a100(), "a")) return 1;
  if (run_gpu(mcf::rtx3080(), "b")) return 1;
  return 0;
}
