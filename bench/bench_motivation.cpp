// Reproduces the paper's §II-A motivation numbers: in BERT-Large under
// eager execution, self-attention contributes a small share of the FLOPs
// but a disproportionate share of the execution time, growing with the
// sequence length (paper: 11/14/19% of FLOPs vs 39/51/61% of time at
// sequence lengths 512/1024/2048).
#include <cstdio>

#include "common.hpp"
#include "graph/bert.hpp"
#include "graph/executor.hpp"

namespace {

using namespace mcf;

int main_impl() {
  const GpuSpec gpu = a100();
  Table table("§II-A motivation — BERT-Large attention share under eager "
              "execution (A100)");
  table.set_header({"seq len", "FLOPs share", "time share", "ratio"});
  double prev_share = 0.0;
  for (const std::int64_t seq : {512, 1024, 2048}) {
    BertConfig cfg = bert_large();
    cfg.seq_len = seq;
    GraphExecOptions opts;
    opts.backend = GraphBackend::Eager;
    GraphExecutor ex(gpu, opts);
    const GraphRunResult r = ex.run(build_bert(cfg));
    const double fshare = r.attention_flops / r.flops;
    const double tshare = r.attention_time_s / r.time_s;
    if (tshare < prev_share) {
      std::fprintf(stderr, "attention time share must grow with seq len\n");
      return 1;
    }
    if (tshare < 1.2 * fshare) {
      std::fprintf(stderr, "attention must be disproportionately slow\n");
      return 1;
    }
    prev_share = tshare;
    table.add_row({std::to_string(seq), Table::num(100 * fshare, 1) + "%",
                   Table::num(100 * tshare, 1) + "%",
                   Table::num(tshare / fshare, 2) + "x"});
  }
  return mcf::bench::emit(table, "motivation") ? 0 : 1;
}

}  // namespace

int main() { return main_impl(); }
