// Ablation — search guidance (paper §IV claims): the analytical
// performance model vs a random search with the same measurement budget,
// and the quality/effort trade against the Ansor-style learned model.
#include <cstdio>

#include "common.hpp"
#include "baselines/ansor_like.hpp"
#include "gpu/timing.hpp"
#include "engine/engine.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "workloads/suites.hpp"

namespace {

using namespace mcf;

/// Random search: measure `budget` uniformly random candidates.
double random_search(const GpuSpec& gpu, const ChainSpec& chain, int budget,
                     std::uint64_t seed) {
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  const SearchSpace space(chain, SpaceOptions{}, prune);
  const auto& cands = space.candidates();
  if (cands.empty()) return -1.0;
  Rng rng = make_rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, cands.size() - 1);
  TimingSimulator sim(gpu);
  MeasureOptions mopts;
  mopts.noise_seed = hash_string(chain.name());
  double best = 1e30;
  for (int i = 0; i < budget; ++i) {
    const auto m = sim.measure(space.schedule_for(cands[pick(rng)]), mopts);
    if (m.ok) best = std::min(best, m.time_s);
  }
  return best;
}

int main_impl() {
  const GpuSpec gpu = a100();
  std::vector<ChainSpec> workloads = {
      gemm_chain_suite()[3],   // G4
      gemm_chain_suite()[7],   // G8
      gemm_chain_suite()[10],  // G11
      attention_suite()[1],    // S2
  };

  Table table("Ablation — search guidance at matched measurement budgets");
  table.set_header({"workload", "MCFuser(us)", "budget", "random same budget",
                    "random 4x budget", "Ansor model, 1000 trials"});
  std::vector<double> rnd_ratio;
  for (const ChainSpec& chain : workloads) {
    const FusionResult mcf = FusionEngine(gpu).fuse(chain);
    if (!mcf.ok()) return 1;
    const int budget = mcf.tuned.stats.measurements;
    const double rnd1 = random_search(gpu, chain, budget, 1);
    const double rnd4 = random_search(gpu, chain, 4 * budget, 2);
    AnsorOptions aopts;
    const double ansor = AnsorLikeBaseline(gpu, aopts).run(chain).time_s;
    rnd_ratio.push_back(rnd1 / mcf.tuned.best_time_s);
    table.add_row({chain.name(), Table::num(mcf.tuned.best_time_s * 1e6, 2),
                   std::to_string(budget),
                   Table::num(rnd1 / mcf.tuned.best_time_s, 2) + "x",
                   Table::num(rnd4 / mcf.tuned.best_time_s, 2) + "x",
                   Table::num(ansor / mcf.tuned.best_time_s, 2) + "x"});
  }
  if (!mcf::bench::emit(table, "ablation_model")) return 1;
  // The analytical guidance must beat blind search at equal budget.
  if (geomean(rnd_ratio) < 1.0) {
    std::fprintf(stderr, "analytical guidance adds nothing?\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return main_impl(); }
