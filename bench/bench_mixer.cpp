// Extension experiment (the paper's §VI-D future work: "expand MCFuser's
// framework to include a broader array of operators"): end-to-end
// MLP-Mixer, whose token-mixing MLP (matmul -> GeLU -> matmul over the
// patch dimension) is an MBCI chain.  Same pipeline as Fig. 9.
#include <cstdio>

#include "common.hpp"
#include "graph/executor.hpp"
#include "graph/mixer.hpp"
#include "support/stats.hpp"

namespace {

using namespace mcf;

int main_impl() {
  const GpuSpec gpu = a100();
  Table table("Extension — end-to-end MLP-Mixer on A100 (normalized to Relay)");
  table.set_header({"model", "Relay(ms)", "Relay", "MCFuser+Relay", "Ansor",
                    "MCFuser+Ansor", "token-MLP time share"});
  std::vector<double> gains;
  for (const MixerConfig& cfg : {mixer_small(), mixer_base()}) {
    const NetGraph g = build_mixer(cfg);
    auto run = [&](GraphBackend b, bool fuse) {
      GraphExecOptions opts;
      opts.backend = b;
      opts.use_mcfuser = fuse;
      GraphExecutor ex(gpu, opts);
      return ex.run(g);
    };
    const GraphRunResult relay = run(GraphBackend::Relay, false);
    const GraphRunResult mcf_relay = run(GraphBackend::Relay, true);
    const GraphRunResult ansor = run(GraphBackend::Ansor, false);
    const GraphRunResult mcf_ansor = run(GraphBackend::Ansor, true);
    gains.push_back(relay.time_s / mcf_relay.time_s);
    table.add_row({cfg.name, Table::num(relay.time_s * 1e3, 2), "1.00",
                   Table::num(relay.time_s / mcf_relay.time_s, 2) + "x",
                   Table::num(relay.time_s / ansor.time_s, 2),
                   Table::num(ansor.time_s / mcf_ansor.time_s, 2) + "x vs Ansor",
                   Table::num(100 * relay.attention_time_s / relay.time_s, 1) + "%"});
    if (mcf_relay.mcfuser_subgraphs != 1) {
      std::fprintf(stderr, "expected one unique token-mixing shape\n");
      return 1;
    }
  }
  if (!mcf::bench::emit(table, "mixer_e2e")) return 1;
  if (geomean(gains) < 1.02) {
    std::fprintf(stderr, "token-MLP fusion should pay off\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return main_impl(); }
