// google-benchmark microbenchmarks for the compiler's hot paths: schedule
// construction, volume analysis, shared-memory planning, analytical
// estimation, simulated measurement, space construction, GBDT training
// and the functional interpreter.
#include <benchmark/benchmark.h>

#include "baselines/gbdt.hpp"
#include "exec/interpreter.hpp"
#include "gpu/timing.hpp"
#include "model/analytical.hpp"
#include "search/space.hpp"
#include "support/rng.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace mcf;

const ChainSpec& bench_chain() {
  static const ChainSpec chain =
      ChainSpec::gemm_chain("bench", 1, 1024, 1024, 512, 512);
  return chain;
}

const TileExpr& bench_expr() {
  static const TileExpr expr = make_deep_expr(bench_chain(), {0, 3, 2, 1});
  return expr;
}

void BM_BuildSchedule(benchmark::State& state) {
  const std::vector<std::int64_t> tiles = {64, 64, 64, 64};
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_schedule(bench_chain(), bench_expr(), tiles));
  }
}
BENCHMARK(BM_BuildSchedule);

void BM_AnalyzeVolume(benchmark::State& state) {
  const Schedule s = build_schedule(bench_chain(), bench_expr(),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_volume(s));
  }
}
BENCHMARK(BM_AnalyzeVolume);

void BM_PlanSmem(benchmark::State& state) {
  const Schedule s = build_schedule(bench_chain(), bench_expr(),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_smem(s));
  }
}
BENCHMARK(BM_PlanSmem);

void BM_AnalyticalEstimate(benchmark::State& state) {
  const Schedule s = build_schedule(bench_chain(), bench_expr(),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const AnalyticalModel model(a100());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.estimate(s));
  }
}
BENCHMARK(BM_AnalyticalEstimate);

void BM_SimulatedMeasure(benchmark::State& state) {
  const Schedule s = build_schedule(bench_chain(), bench_expr(),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const TimingSimulator sim(a100());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.measure(s));
  }
}
BENCHMARK(BM_SimulatedMeasure);

void BM_SpaceConstruction(benchmark::State& state) {
  PruneOptions prune;
  prune.smem_limit_bytes = a100().smem_per_block;
  for (auto _ : state) {
    const SearchSpace space(bench_chain(), SpaceOptions{}, prune);
    benchmark::DoNotOptimize(space.candidates().size());
  }
}
BENCHMARK(BM_SpaceConstruction)->Unit(benchmark::kMillisecond);

void BM_InterpreterFusedChain(benchmark::State& state) {
  const ChainSpec chain = ChainSpec::gemm_chain("interp", 1, 128, 128, 64, 64);
  const Schedule s = build_schedule(chain, make_deep_expr(chain, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  Tensor a(Shape{1, 128, 64});
  Tensor b(Shape{1, 64, 128});
  Tensor d(Shape{1, 128, 64});
  a.fill_random(1);
  b.fill_random(2);
  d.fill_random(3);
  std::vector<Tensor> w;
  w.push_back(std::move(b));
  w.push_back(std::move(d));
  Tensor out(Shape{1, 128, 64});
  InterpreterOptions opts;
  opts.parallel = false;
  const Interpreter interp(s, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.run(a, w, out));
  }
}
BENCHMARK(BM_InterpreterFusedChain)->Unit(benchmark::kMicrosecond);

void BM_GbdtFit(benchmark::State& state) {
  Rng rng = make_rng(3);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 512; ++i) {
    std::vector<double> row(16);
    for (auto& v : row) v = u(rng);
    y.push_back(row[0] * 3 + row[5] * row[9]);
    x.push_back(std::move(row));
  }
  for (auto _ : state) {
    GbdtRegressor model;
    model.fit(x, y);
    benchmark::DoNotOptimize(model.predict(x.front()));
  }
}
BENCHMARK(BM_GbdtFit)->Unit(benchmark::kMillisecond);

void BM_ReferenceGemm(benchmark::State& state) {
  const auto n = state.range(0);
  Tensor a(Shape{n, n});
  Tensor b(Shape{n, n});
  Tensor c(Shape{n, n});
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    ops::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_ReferenceGemm)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
