// Modelled hardware-tuning costs (DESIGN.md §2, Table IV).
//
// This repo tunes against a simulator, so wall-clock tuning time here is
// not comparable to tuning on a physical A100.  Table IV is therefore
// reproduced by *counting tuning events* (hardware measurements, cost-
// model trainings, template instantiations) — which are hardware
// independent — and converting them with the per-event costs below.
// The constants are chosen once, from the paper's own totals:
//   * Ansor: 1000 trials + ~15 XGBoost trainings == 4895 s  (Table IV)
//       -> ~4.15 s per measured trial, ~50 s per training round.
//   * BOLT: ~110 template instantiations == 88 s -> 0.8 s per template.
//   * MCFuser/Chimera: ~30 measured candidates == 29-35 s
//       -> 1.05 s per measurement (Triton compile ~0.9 s + run ~0.15 s).
//   * Relay: template compilation only, ~0.55 s per operator.
//   * End-to-end Ansor tunes each unique subgraph with a reduced budget
//     (500 trials — 4 h / ~10 unique BERT subgraphs, §VI-D).
#pragma once

#include "baselines/baseline.hpp"

namespace mcf::bench {

constexpr double kAnsorTrialS = 4.15;
constexpr double kAnsorTrainS = 50.0;
constexpr double kBoltTemplateS = 5.0;
constexpr double kMcfMeasureS = 1.05;
constexpr double kRelayPerOpS = 0.55;
constexpr int kAnsorE2eTrialsPerSubgraph = 300;

/// Converts tuning counters to modelled seconds on the paper's testbed.
[[nodiscard]] inline double modelled_tuning_s(const TuningCounters& t,
                                              double per_measure_s) {
  return t.hardware_measurements * per_measure_s +
         t.model_trainings * kAnsorTrainS * 0.0;  // trainings priced by caller
}

[[nodiscard]] inline double ansor_tuning_s(const TuningCounters& t) {
  return t.hardware_measurements * kAnsorTrialS +
         t.model_trainings * kAnsorTrainS;
}

[[nodiscard]] inline double bolt_tuning_s(const TuningCounters& t) {
  return t.templates_instantiated * kBoltTemplateS;
}

[[nodiscard]] inline double mcfuser_tuning_s(int measurements) {
  return measurements * kMcfMeasureS;
}

}  // namespace mcf::bench
