// Reproduces paper Fig. 2: a MatMul's op/byte ratio and achieved
// throughput across K/M ratios at constant complexity M*N*K = 1024^3
// (M == N), tile size 256.  As K/M falls the operator crosses the P/W
// line and becomes memory-bound — the MBCI transition that motivates the
// whole paper.
#include <cmath>
#include <cstdio>

#include "baselines/library_kernels.hpp"
#include "common.hpp"
#include "gpu/spec.hpp"

namespace {

using namespace mcf;

int run() {
  const GpuSpec gpu = a100();
  const LibraryKernels lib(gpu);
  Table table("Fig.2 — MatMul across K/M at constant M*N*K=1024^3 (A100)");
  table.set_header({"K/M", "M=N", "K", "phi (op/elem)", "phi/2 (op/byte)",
                    "P/W (op/byte)", "TFLOPS", "regime"});

  const double total = 1024.0 * 1024.0 * 1024.0;
  const double pw = gpu.flops_per_byte();
  double last_phi = 1e30;
  bool crossed = false;
  for (const double ratio : {1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05,
                             0.02, 0.01}) {
    // K = r*M, M*M*K = total -> M = (total/r)^(1/3).
    const double m_real = std::cbrt(total / ratio);
    const auto m = static_cast<std::int64_t>(std::llround(m_real / 16.0) * 16);
    const auto k = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(ratio * static_cast<double>(m))));
    // Paper's phi with TM = TN = 256 (FLOPs per element moved).
    const double tm = std::min<std::int64_t>(256, m);
    const double phi = 2.0 * tm * tm * static_cast<double>(k) /
                       (2.0 * tm * tm + 2.0 * tm * static_cast<double>(k));
    const auto meas = lib.gemm(1, m, m, k);
    const double flops = 2.0 * static_cast<double>(m) * m * static_cast<double>(k);
    const double tflops = flops / meas.time_s / 1e12;
    // The paper compares phi (FLOPs per *element*) against P/W (FLOPs per
    // *byte*) directly; we reproduce that test and also print phi/2 for
    // the unit-consistent reader.
    const bool memory_bound = phi < pw;
    if (memory_bound) crossed = true;
    if (phi > last_phi + 1e-9) {
      std::fprintf(stderr, "phi must fall with K/M\n");
      return 1;
    }
    last_phi = phi;
    table.add_row({Table::num(ratio, 2), std::to_string(m), std::to_string(k),
                   Table::num(phi, 1), Table::num(phi / 2.0, 1),
                   Table::num(pw, 1), Table::num(tflops, 1),
                   memory_bound ? "memory-bound" : "compute-bound"});
  }
  if (!crossed) {
    std::fprintf(stderr, "expected a compute->memory bound transition\n");
    return 1;
  }
  return mcf::bench::emit(table, "fig2") ? 0 : 1;
}

}  // namespace

int main() { return run(); }
