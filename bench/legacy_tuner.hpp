// Frozen pre-overhaul tuner loop, kept as the measurement baseline for
// bench_tuning_throughput.
//
// This is Algorithm 1 exactly as it stood before the batched-evaluation
// rework: every candidate is estimated serially (rebuilding the Schedule
// and re-running the volume analysis per call), mutation validity checks
// rebuild the schedule again, measurements run one at a time, and the
// refinement loop re-estimates the incumbent once per move.  It exists so
// the throughput bench reports a new-vs-old speedup against the real old
// code path forever.  Do not "optimise" this file.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <optional>

#include "search/tuner.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace mcf::bench::legacy {

class LegacyTuner {
 public:
  LegacyTuner(const SearchSpace& space, GpuSpec gpu, TunerOptions options = {})
      : space_(space),
        gpu_(std::move(gpu)),
        opt_(options),
        model_(gpu_),
        sim_(gpu_),
        rng_(make_rng(options.seed)) {}

  [[nodiscard]] TunedResult run() {
    const auto t_start = std::chrono::steady_clock::now();
    TunedResult result;
    const auto& cands = space_.candidates();
    if (cands.empty()) return result;

    const int n = std::min<int>(opt_.population, static_cast<int>(cands.size()));
    std::vector<CandidateConfig> population;
    {
      std::vector<std::vector<std::size_t>> by_expr(space_.expressions().size());
      for (std::size_t i = 0; i < cands.size(); ++i) {
        by_expr[static_cast<std::size_t>(cands[i].expr_id)].push_back(i);
      }
      std::size_t nonempty = 0;
      for (const auto& b : by_expr) nonempty += b.empty() ? 0 : 1;
      const int quota = std::max(1, n / 2 / std::max<int>(1, static_cast<int>(nonempty)));
      std::vector<std::pair<double, CandidateConfig>> seeds;
      for (const auto& bucket : by_expr) {
        if (bucket.empty()) continue;
        std::uniform_int_distribution<std::size_t> pick(0, bucket.size() - 1);
        std::vector<std::pair<double, CandidateConfig>> local;
        const int oversample =
            std::min<int>(8 * quota, static_cast<int>(bucket.size()));
        for (int i = 0; i < oversample; ++i) {
          CandidateConfig c = cands[bucket[pick(rng_)]];
          local.emplace_back(estimate(c), std::move(c));
        }
        std::sort(local.begin(), local.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (int i = 0; i < quota && i < static_cast<int>(local.size()); ++i) {
          seeds.push_back(std::move(local[static_cast<std::size_t>(i)]));
        }
      }
      population.reserve(static_cast<std::size_t>(n));
      for (auto& [est_t, c] : seeds) {
        if (static_cast<int>(population.size()) >= n) break;
        population.push_back(std::move(c));
      }
      while (static_cast<int>(population.size()) < n) {
        population.push_back(random_candidate());
      }
    }

    double best_t = 1e9;
    CandidateConfig best_cand;
    KernelMeasurement best_meas;
    std::map<std::uint64_t, double> measured_cache;

    for (int gen = 0; gen < opt_.max_generations; ++gen) {
      ++stats_.generations;
      std::vector<std::pair<double, std::size_t>> scored;
      scored.reserve(population.size());
      for (std::size_t i = 0; i < population.size(); ++i) {
        scored.emplace_back(estimate(population[i]), i);
      }
      std::sort(scored.begin(), scored.end());

      double top1_t = 1e9;
      CandidateConfig top1_cand;
      const int k = std::min<int>(opt_.topk, static_cast<int>(scored.size()));
      int taken = 0;
      const std::size_t attempt_cap = std::min<std::size_t>(scored.size(), 4u * k);
      for (std::size_t i = 0; i < attempt_cap && taken < k; ++i) {
        const CandidateConfig& c = population[scored[i].second];
        const std::uint64_t key = candidate_key(c);
        double t;
        if (const auto it = measured_cache.find(key); it != measured_cache.end()) {
          t = it->second;
          if (t >= 1e8) continue;
        } else {
          const auto m = measure(c);
          t = m.value_or(1e9);
          measured_cache.emplace(key, t);
          if (!m.has_value()) continue;
          est_meas_.emplace_back(scored[i].first, t);
        }
        ++taken;
        if (t < top1_t) {
          top1_t = t;
          top1_cand = c;
        }
      }

      const double improvement = (best_t - top1_t) / std::max(best_t, 1e-12);
      if (top1_t < best_t) {
        best_t = top1_t;
        best_cand = top1_cand;
      }
      if (best_t < 1e8 && gen + 1 >= opt_.min_generations &&
          improvement < opt_.epsilon) {
        break;
      }

      std::vector<double> weights;
      weights.reserve(population.size());
      for (const auto& [est, idx] : scored) weights.push_back(1.0 / std::max(est, 1e-12));
      std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());
      std::vector<CandidateConfig> next;
      next.reserve(population.size());
      if (best_t < 1e8) {
        next.push_back(best_cand);
        next.push_back(mutate(best_cand));
      }
      while (next.size() < population.size()) {
        const auto& parent = population[scored[pick(rng_)].second];
        next.push_back(mutate(parent));
      }
      population = std::move(next);
    }

    if (best_t < 1e8) {
      bool improved = true;
      int refine_rounds = 0;
      while (improved && refine_rounds++ < 4) {
        improved = false;
        const CandidateConfig base = best_cand;
        std::vector<CandidateConfig> moves;
        for (int e = 0; e < static_cast<int>(space_.expressions().size()); ++e) {
          if (e == base.expr_id) continue;
          CandidateConfig c = base;
          c.expr_id = e;
          moves.push_back(std::move(c));
        }
        for (int l = 0; l < space_.chain().num_loops(); ++l) {
          const auto& opts = space_.tile_options_r3()[static_cast<std::size_t>(l)];
          const auto cur = std::find(opts.begin(), opts.end(),
                                     base.tiles[static_cast<std::size_t>(l)]);
          if (cur == opts.end()) continue;
          const std::size_t idx = static_cast<std::size_t>(cur - opts.begin());
          for (const int dir : {-1, +1}) {
            if ((dir < 0 && idx == 0) || (dir > 0 && idx + 1 >= opts.size())) continue;
            CandidateConfig c = base;
            c.tiles[static_cast<std::size_t>(l)] = opts[idx + static_cast<std::size_t>(dir)];
            moves.push_back(std::move(c));
          }
        }
        for (const auto& c : moves) {
          if (!space_.passes_rules(c)) continue;
          // Pre-overhaul quirk: estimate(base) recomputed on every move.
          if (estimate(c) > 1.2 * estimate(base)) continue;
          const std::uint64_t key = candidate_key(c);
          double t;
          if (const auto it = measured_cache.find(key); it != measured_cache.end()) {
            t = it->second;
          } else {
            const auto m = measure(c);
            t = m.value_or(1e9);
            measured_cache.emplace(key, t);
            if (m.has_value()) est_meas_.emplace_back(estimate(c), t);
          }
          if (t < best_t) {
            best_t = t;
            best_cand = c;
            improved = true;
          }
        }
      }
    }

    if (best_t >= 1e8) return result;
    const Schedule s = space_.schedule_for(best_cand);
    best_meas = sim_.measure(s, opt_.measure);

    result.ok = true;
    result.best = best_cand;
    result.best_time_s = best_t;
    result.best_measurement = best_meas;
    stats_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
            .count();
    result.stats = stats_;
    result.est_vs_measured = std::move(est_meas_);
    return result;
  }

 private:
  static std::uint64_t candidate_key(const CandidateConfig& c) {
    std::uint64_t h = splitmix64(static_cast<std::uint64_t>(c.expr_id) + 1);
    for (const auto t : c.tiles) h = hash_combine(h, static_cast<std::uint64_t>(t));
    return h;
  }

  [[nodiscard]] double estimate(const CandidateConfig& c) {
    const std::uint64_t key = candidate_key(c);
    if (const auto it = est_cache_.find(key); it != est_cache_.end()) {
      return it->second;
    }
    const Schedule s = space_.schedule_for(c);
    ++stats_.estimates;
    const double t = model_.estimate(s).time_s;
    est_cache_.emplace(key, t);
    return t;
  }

  [[nodiscard]] std::optional<double> measure(const CandidateConfig& c) {
    const Schedule s = space_.schedule_for(c);
    ++stats_.measurements;
    const KernelMeasurement m = sim_.measure(s, opt_.measure);
    if (!m.ok) {
      ++stats_.compile_failures;
      return std::nullopt;
    }
    return m.time_s;
  }

  [[nodiscard]] CandidateConfig random_candidate() {
    const auto& cands = space_.candidates();
    MCF_CHECK(!cands.empty()) << "empty search space";
    std::uniform_int_distribution<std::size_t> pick(0, cands.size() - 1);
    return cands[pick(rng_)];
  }

  [[nodiscard]] CandidateConfig mutate(const CandidateConfig& parent) {
    const auto& chain = space_.chain();
    for (int attempt = 0; attempt < 8; ++attempt) {
      CandidateConfig c = parent;
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      if (coin(rng_) < opt_.expr_mutation_prob &&
          space_.expressions().size() > 1) {
        std::uniform_int_distribution<int> pick(
            0, static_cast<int>(space_.expressions().size()) - 1);
        c.expr_id = pick(rng_);
      } else {
        std::uniform_int_distribution<int> pick_loop(0, chain.num_loops() - 1);
        const int l = pick_loop(rng_);
        const auto& opts = space_.tile_options_r3()[static_cast<std::size_t>(l)];
        if (opts.size() < 2) continue;
        const auto cur = std::find(opts.begin(), opts.end(),
                                   c.tiles[static_cast<std::size_t>(l)]);
        std::size_t idx = cur == opts.end()
                              ? 0
                              : static_cast<std::size_t>(cur - opts.begin());
        const bool up = coin(rng_) < 0.5;
        if (up && idx + 1 < opts.size()) ++idx;
        else if (!up && idx > 0) --idx;
        else continue;
        c.tiles[static_cast<std::size_t>(l)] = opts[idx];
      }
      if (space_.passes_rules(c)) return c;
    }
    return random_candidate();
  }

  const SearchSpace& space_;
  GpuSpec gpu_;
  TunerOptions opt_;
  AnalyticalModel model_;
  TimingSimulator sim_;
  Rng rng_;
  TuningStats stats_;
  std::map<std::uint64_t, double> est_cache_;
  std::vector<std::pair<double, double>> est_meas_;
};

}  // namespace mcf::bench::legacy
