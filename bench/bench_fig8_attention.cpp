// Reproduces paper Fig. 8 (c)/(d): self-attention modules S1-S9 on A100
// and RTX 3080, performance normalized to PyTorch (FlashAttention column
// included).
#include <cstdio>

#include "common.hpp"
#include "subgraph_runner.hpp"
#include "support/stats.hpp"

namespace {

using namespace mcf;
using namespace mcf::bench;

int run_gpu(const GpuSpec& gpu, const char* fig_tag) {
  Table table(std::string("Fig.8") + fig_tag + " — self-attention on " + gpu.name +
              " (normalized to PyTorch, higher is better)");
  table.set_header({"workload", "PyTorch(us)", "PyTorch", "Ansor", "BOLT",
                    "FlashAttention", "MCFuser-Chimera", "MCFuser"});
  std::vector<double> ansor_sp;
  std::vector<double> flash_sp;
  std::vector<double> chim_sp;
  std::vector<double> mcf_sp;
  for (const ChainSpec& chain : attention_suite()) {
    const SubgraphRow row = run_subgraph(gpu, chain, /*with_flash=*/true);
    if (row.mcfuser_s <= 0.0) {
      std::fprintf(stderr, "MCFuser failed on %s\n", chain.name().c_str());
      return 1;
    }
    const double pt = row.pytorch_s;
    ansor_sp.push_back(pt / row.ansor_s);
    flash_sp.push_back(pt / *row.flash_s);
    chim_sp.push_back(pt / row.chimera_s);
    mcf_sp.push_back(pt / row.mcfuser_s);
    table.add_row({chain.name(), Table::num(pt * 1e6, 1), "1.00",
                   Table::num(pt / row.ansor_s, 2),
                   row.bolt_s ? Table::num(pt / *row.bolt_s, 2) + " (unfused)"
                              : "n/a (sm86)",
                   Table::num(pt / *row.flash_s, 2),
                   Table::num(pt / row.chimera_s, 2),
                   Table::num(pt / row.mcfuser_s, 2)});
  }
  table.add_row({"geomean", "-", "1.00", Table::num(geomean(ansor_sp), 2), "-",
                 Table::num(geomean(flash_sp), 2), Table::num(geomean(chim_sp), 2),
                 Table::num(geomean(mcf_sp), 2)});
  if (!emit(table, std::string("fig8") + fig_tag + "_attention_" + gpu.name)) {
    return 1;
  }

  // Shape checks (paper §VI-B2): MCFuser beats PyTorch, Ansor and
  // FlashAttention on average.
  if (geomean(mcf_sp) < 2.0 || geomean(mcf_sp) < geomean(ansor_sp) ||
      geomean(mcf_sp) < geomean(flash_sp)) {
    std::fprintf(stderr, "attention ordering violated\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  if (run_gpu(mcf::a100(), "c")) return 1;
  if (run_gpu(mcf::rtx3080(), "d")) return 1;
  return 0;
}
