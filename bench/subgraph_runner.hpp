// Shared driver for the Fig. 8 sub-graph comparisons: runs every §VI
// framework on a chain suite for one GPU and returns normalized rows.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "baselines/ansor_like.hpp"
#include "baselines/bolt_like.hpp"
#include "baselines/chimera_like.hpp"
#include "baselines/flash_like.hpp"
#include "baselines/unfused.hpp"
#include "engine/engine.hpp"
#include "workloads/suites.hpp"

namespace mcf::bench {

struct SubgraphRow {
  std::string workload;
  double pytorch_s = 0.0;
  double ansor_s = 0.0;
  bool ansor_fused = false;
  std::optional<double> bolt_s;   ///< absent on unsupported GPUs
  std::optional<double> flash_s;  ///< attention suites only
  double chimera_s = 0.0;
  double mcfuser_s = 0.0;
  TuningCounters ansor_tuning;
  TuningCounters bolt_tuning;
  TuningCounters chimera_tuning;
  int mcfuser_measurements = 0;
  double mcfuser_wall_s = 0.0;
};

inline SubgraphRow run_subgraph(const GpuSpec& gpu, const ChainSpec& chain,
                                bool with_flash, int ansor_trials = 1000) {
  SubgraphRow row;
  row.workload = chain.name();

  row.pytorch_s = UnfusedBaseline(gpu).run(chain).time_s;

  AnsorOptions aopts;
  aopts.trials = ansor_trials;
  const SubgraphResult ansor = AnsorLikeBaseline(gpu, aopts).run(chain);
  row.ansor_s = ansor.time_s;
  row.ansor_fused = ansor.fused;
  row.ansor_tuning = ansor.tuning;

  const BoltLikeBaseline bolt(gpu);
  if (bolt.supports_gpu()) {
    const SubgraphResult b = bolt.run(chain);
    row.bolt_s = b.time_s;
    row.bolt_tuning = b.tuning;
  }

  if (with_flash) {
    row.flash_s = FlashAttentionLikeBaseline(gpu).run(chain).time_s;
  }

  const SubgraphResult chim = ChimeraLikeBaseline(gpu).run(chain);
  row.chimera_s = chim.time_s;
  row.chimera_tuning = chim.tuning;

  const FusionResult mcf = FusionEngine(gpu).fuse(chain);
  row.mcfuser_s = mcf.ok() ? mcf.tuned.best_time_s : 0.0;
  row.mcfuser_measurements = mcf.tuned.stats.measurements;
  row.mcfuser_wall_s = mcf.tuned.stats.wall_seconds;
  return row;
}

}  // namespace mcf::bench
