// Tests for the paper's §III-B memory-access optimisation: standard
// hoisting (Fig. 4(a)), extent-1 collapse (Fig. 4(b) / Fig. 5(b)) and the
// residency analysis behind pruning Rule 2.
#include <gtest/gtest.h>

#include "dag/schedule.hpp"

namespace mcf {
namespace {

ChainSpec paper_chain() {
  return ChainSpec::gemm_chain("ex", 1, 1024, 1024, 512, 512);
}

int find_load(const Schedule& s, int tensor) {
  for (int i = 1; i < s.num_nodes(); ++i) {
    const auto& n = s.node(i);
    if (n.is_stmt && n.stmt.kind == StmtKind::Load && n.stmt.tensor == tensor)
      return i;
  }
  return -1;
}

int find_store(const Schedule& s, int tensor) {
  for (int i = 1; i < s.num_nodes(); ++i) {
    const auto& n = s.node(i);
    if (n.is_stmt && n.stmt.kind == StmtKind::Store && n.stmt.tensor == tensor)
      return i;
  }
  return -1;
}

int enclosing_loop(const Schedule& s, int node) {
  return s.node(s.node(node).parent).loop;
}

TEST(Hoist, StoreLeavesReductionLoop) {
  // Paper Fig. 4(a): Store(E) moves from within loop n to the h scope —
  // in our canonical form (h block-bound) it lands at the root.
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const int se = find_store(s, c.output_tensor());
  ASSERT_GE(se, 0);
  EXPECT_EQ(enclosing_loop(s, se), -1);  // root scope: stored once
  EXPECT_DOUBLE_EQ(s.trip_count(se), 1.0);
}

TEST(Hoist, StoreStaysInsideWithoutHoisting) {
  const ChainSpec c = paper_chain();
  ScheduleOptions opt;
  opt.hoist = false;
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64},
                                    opt);
  const int se = find_store(s, c.output_tensor());
  EXPECT_EQ(enclosing_loop(s, se), 2);  // still inside n
  EXPECT_DOUBLE_EQ(s.trip_count(se), 16.0);
}

TEST(Hoist, UnitExtentCollapseHoistsLoadA) {
  // Paper Fig. 4(b): with k collapsed to a single iteration (Tk = K),
  // Load(A) escapes both k and n and runs once per block.
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 512, 64, 64});
  const int la = find_load(s, 0);
  EXPECT_EQ(enclosing_loop(s, la), -1);
  EXPECT_DOUBLE_EQ(s.trip_count(la), 1.0);
}

TEST(Hoist, WithoutUnitCollapseLoadAStaysInN) {
  // Chimera/Ansor mode (§II-B(b)): the same schedule reloads A per n.
  const ChainSpec c = paper_chain();
  ScheduleOptions opt;
  opt.collapse_unit_loops = false;
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 512, 64, 64},
                                    opt);
  const int la = find_load(s, 0);
  EXPECT_EQ(enclosing_loop(s, la), 1);  // stuck inside the unit k loop
  EXPECT_DOUBLE_EQ(s.trip_count(la), 16.0);  // n reloads it
}

TEST(Hoist, NonUnitReductionKeepsLoadAInK) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const int la = find_load(s, 0);
  EXPECT_EQ(enclosing_loop(s, la), 1);  // k indexes A, extent > 1: stays
  EXPECT_DOUBLE_EQ(s.trip_count(la), 16.0 * 8.0);
}

TEST(Hoist, LoadBStaysWithItsIndices) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const int lb = find_load(s, c.op_weight_tensor(0));  // B(k,n)
  EXPECT_EQ(enclosing_loop(s, lb), 1);  // under k
}

TEST(Hoist, LoadDOutsideK) {
  // D(n,h) is not indexed by k; its load must not sit in the k loop.
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const int ld = find_load(s, c.op_weight_tensor(1));
  EXPECT_EQ(enclosing_loop(s, ld), 2);  // under n
  EXPECT_DOUBLE_EQ(s.trip_count(ld), 16.0);
}

TEST(Hoist, FlatStoreCoversResidentTiles) {
  // Flat mn(k,h) with Th < H: the store is forced out of the reduction
  // loop n and covers every resident h tile.
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const int se = find_store(s, c.output_tensor());
  ASSERT_GE(se, 0);
  EXPECT_EQ(enclosing_loop(s, se), -1);
  EXPECT_EQ(s.node(se).stmt.covered_loops, (std::vector<int>{3}));
}

TEST(Hoist, FlatStoreNoCoverageWhenThIsFull) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                    std::vector<std::int64_t>{64, 64, 64, 512});
  const int se = find_store(s, c.output_tensor());
  EXPECT_TRUE(s.node(se).stmt.covered_loops.empty());
  EXPECT_EQ(enclosing_loop(s, se), -1);
}

TEST(Residency, SingleTileForDeepNk) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  for (int t = 0; t < c.num_tensors(); ++t) {
    EXPECT_EQ(s.resident_tiles()[static_cast<std::size_t>(t)], 1)
        << "tensor " << c.tensor(t).name;
  }
}

TEST(Residency, FlatOutputKeepsHTilesResident) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  EXPECT_EQ(s.resident_tiles()[static_cast<std::size_t>(c.output_tensor())],
            512 / 64);
  EXPECT_EQ(s.resident_loops(c.output_tensor()), (std::vector<int>{3}));
  // The intermediate C still needs only one tile.
  EXPECT_EQ(s.resident_tiles()[static_cast<std::size_t>(c.op_output_tensor(0))], 1);
}

TEST(Residency, FlatFullThIsSingleTile) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                    std::vector<std::int64_t>{64, 64, 64, 512});
  EXPECT_EQ(s.resident_tiles()[static_cast<std::size_t>(c.output_tensor())], 1);
}

TEST(Residency, KnPartialTilesMultiplyIntermediate) {
  // Fig. 6(b): sub-expression kn caches partial C tiles for every n.
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 1, 2}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  EXPECT_FALSE(s.consume_complete());
  EXPECT_GT(s.resident_tiles()[static_cast<std::size_t>(c.op_output_tensor(0))], 1);
}

TEST(Residency, AccumulatorPersistsEvenWithoutHoisting) {
  // Without store hoisting, E still accumulates across n, so liveness
  // (and hence residency over h) must not shrink.
  const ChainSpec c = paper_chain();
  ScheduleOptions opt;
  opt.hoist = false;
  const Schedule s = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                    std::vector<std::int64_t>{64, 64, 64, 64},
                                    opt);
  EXPECT_EQ(s.resident_tiles()[static_cast<std::size_t>(c.output_tensor())],
            512 / 64);
}

}  // namespace
}  // namespace mcf
