#include "dag/schedule.hpp"

#include <gtest/gtest.h>

namespace mcf {
namespace {

ChainSpec paper_chain() {
  return ChainSpec::gemm_chain("ex", 1, 1024, 1024, 512, 512);
}

/// Finds the node index of the (unique) statement matching a predicate.
template <typename Pred>
int find_stmt(const Schedule& s, Pred pred) {
  for (int i = 1; i < s.num_nodes(); ++i) {
    const auto& n = s.node(i);
    if (n.is_stmt && pred(n.stmt)) return i;
  }
  return -1;
}

/// Loop id of the statement's enclosing scope (-1 for root).
int enclosing_loop(const Schedule& s, int stmt_node) {
  const int parent = s.node(stmt_node).parent;
  return s.node(parent).loop;
}

TEST(Schedule, DeepNkStructureAndExtents) {
  const ChainSpec c = paper_chain();
  const TileExpr e = make_deep_expr(c, {0, 3, 2, 1});  // [mh]nk
  const std::vector<std::int64_t> tiles = {64, 64, 64, 64};
  const Schedule s = build_schedule(c, e, tiles);
  ASSERT_TRUE(s.valid());
  EXPECT_TRUE(s.consume_complete());
  EXPECT_EQ(s.extents()[0], 16);  // 1024/64
  EXPECT_EQ(s.extents()[1], 8);   // 512/64
  EXPECT_EQ(s.num_blocks(), 16 * 8);  // m x h blocks
}

TEST(Schedule, TilesAreClampedToDims) {
  const ChainSpec c = ChainSpec::gemm_chain("t", 1, 32, 32, 32, 32);
  const TileExpr e = make_deep_expr(c, {0, 3, 2, 1});
  const std::vector<std::int64_t> tiles = {512, 512, 512, 512};
  const Schedule s = build_schedule(c, e, tiles);
  for (int l = 0; l < c.num_loops(); ++l) {
    EXPECT_EQ(s.tiles()[static_cast<std::size_t>(l)], 32);
    EXPECT_EQ(s.extents()[static_cast<std::size_t>(l)], 1);
  }
}

TEST(Schedule, ComputePlacementDeepNk) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const int cc = find_stmt(s, [](const Statement& st) {
    return st.kind == StmtKind::Compute && st.op == 0;
  });
  const int ce = find_stmt(s, [](const Statement& st) {
    return st.kind == StmtKind::Compute && st.op == 1;
  });
  ASSERT_GE(cc, 0);
  ASSERT_GE(ce, 0);
  EXPECT_EQ(enclosing_loop(s, cc), 1);  // CC under k
  EXPECT_EQ(enclosing_loop(s, ce), 2);  // CE under n (after k's subtree)
}

TEST(Schedule, ComputePlacementFlat) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                    std::vector<std::int64_t>{64, 64, 64, 512});
  const int cc = find_stmt(s, [](const Statement& st) {
    return st.kind == StmtKind::Compute && st.op == 0;
  });
  const int ce = find_stmt(s, [](const Statement& st) {
    return st.kind == StmtKind::Compute && st.op == 1;
  });
  EXPECT_EQ(enclosing_loop(s, cc), 1);  // CC inside the k group
  EXPECT_EQ(enclosing_loop(s, ce), 3);  // CE inside the h group
}

TEST(Schedule, ExecutionOrderProducerBeforeConsumer) {
  const ChainSpec c = paper_chain();
  for (const auto& e :
       {make_deep_expr(c, {0, 3, 2, 1}), make_flat_expr(c, {0, 2}, {1, 3})}) {
    const Schedule s =
        build_schedule(c, e, std::vector<std::int64_t>{64, 64, 64, 512});
    const auto order = s.statements_in_order();
    int pos_cc = -1;
    int pos_ce = -1;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const Statement& st = s.node(order[i]).stmt;
      if (st.kind == StmtKind::Compute && st.op == 0) pos_cc = static_cast<int>(i);
      if (st.kind == StmtKind::Compute && st.op == 1) pos_ce = static_cast<int>(i);
    }
    EXPECT_LT(pos_cc, pos_ce);
  }
}

TEST(Schedule, KnOrderConsumesPartialTiles) {
  // Sub-expression kn (paper Fig. 6(b)): the consumer sits inside the
  // producer's reduction loop — flagged, not silently accepted.
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 1, 2}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  ASSERT_TRUE(s.valid());
  EXPECT_FALSE(s.consume_complete());
}

TEST(Schedule, KnWithUnitReductionIsComplete) {
  // With Tk = K the reduction collapses and kn becomes legal.
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 1, 2}),
                                    std::vector<std::int64_t>{64, 512, 64, 64});
  EXPECT_TRUE(s.consume_complete());
}

TEST(Schedule, LoadStatementsPresent) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  int loads = 0;
  int stores = 0;
  for (const int i : s.statements_in_order()) {
    const auto& st = s.node(i).stmt;
    if (st.kind == StmtKind::Load) ++loads;
    if (st.kind == StmtKind::Store) ++stores;
  }
  EXPECT_EQ(loads, 3);   // A, B, D (C stays resident)
  EXPECT_EQ(stores, 1);  // E only
}

TEST(Schedule, TripCountMultipliesAncestorExtents) {
  const ChainSpec c = paper_chain();
  ScheduleOptions no_hoist;
  no_hoist.hoist = false;
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64},
                                    no_hoist);
  const int cc = find_stmt(s, [](const Statement& st) {
    return st.kind == StmtKind::Compute && st.op == 0;
  });
  EXPECT_DOUBLE_EQ(s.trip_count(cc), 16.0 * 8.0);  // extents of n and k
}

TEST(Schedule, TileElems) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 32, 128, 16});
  EXPECT_EQ(s.tile_elems(0), 64 * 32);  // A tile m x k
  EXPECT_EQ(s.tile_elems(c.output_tensor()), 64 * 16);  // E tile m x h
}

TEST(Schedule, BatchMultipliesBlocks) {
  const ChainSpec c = ChainSpec::gemm_chain("b", 8, 1024, 1024, 128, 128);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{128, 128, 128, 128});
  EXPECT_EQ(s.num_blocks(), 8 * 8 * 1);  // batch x m-blocks x h-blocks
}

TEST(Schedule, PseudoRenderingShowsLoopsAndTiles) {
  const ChainSpec c = paper_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const std::string p = s.to_pseudo();
  EXPECT_NE(p.find("for n in range(16)"), std::string::npos);
  EXPECT_NE(p.find("Compute(tile C)"), std::string::npos);
  EXPECT_NE(p.find("blockIdx"), std::string::npos);
}

TEST(Schedule, ThreeOpChainBuilds) {
  const ChainSpec c("triple", 1, 64, {32, 48, 16, 24});
  const TileExpr e = make_deep_expr(c, {0, 4, 3, 2, 1});
  const Schedule s = build_schedule(
      c, e, std::vector<std::int64_t>{16, 16, 16, 16, 16});
  ASSERT_TRUE(s.valid());
  int computes = 0;
  for (const int i : s.statements_in_order()) {
    if (s.node(i).stmt.kind == StmtKind::Compute) ++computes;
  }
  EXPECT_EQ(computes, 3);
}

}  // namespace
}  // namespace mcf
