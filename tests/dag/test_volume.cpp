// Static volume analysis: hand-computed traffic and FLOP counts.
#include <gtest/gtest.h>

#include "dag/volume.hpp"

namespace mcf {
namespace {

// Small exactly-divisible chain: M=128, K=64, N=128, H=64.
ChainSpec small_chain() { return ChainSpec::gemm_chain("v", 1, 128, 128, 64, 64); }

TEST(Volume, DeepNkHandComputedTraffic) {
  const ChainSpec c = small_chain();
  // Tiles 64/32/64/64: extents m=2, k=2, n=2, h=1; blocks = 2*1 = 2.
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 32, 64, 64});
  const VolumeReport v = analyze_volume(s);
  EXPECT_DOUBLE_EQ(v.n_blocks, 2.0);
  // Per block: LA 2x2 trips x (64*32*2B), LB same, LD 2 trips x (64*64*2B),
  // SE 1 x (64*64*2B).
  const double la = 4 * 64 * 32 * 2;
  const double lb = 4 * 32 * 64 * 2;
  const double ld = 2 * 64 * 64 * 2;
  EXPECT_DOUBLE_EQ(v.load_bytes, 2.0 * (la + lb + ld));
  EXPECT_DOUBLE_EQ(v.store_bytes, 2.0 * (64 * 64 * 2));
}

TEST(Volume, FlopsMatchChainTotalWhenExact) {
  // When tiles divide dims exactly, counted FLOPs equal the chain total.
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 32, 64, 64});
  const VolumeReport v = analyze_volume(s);
  EXPECT_DOUBLE_EQ(v.flops, c.total_flops());
}

TEST(Volume, PaddingInflatesFlops) {
  // M=100 with tile 64 pads to 128: counted work exceeds the nominal.
  const ChainSpec c = ChainSpec::gemm_chain("p", 1, 100, 128, 64, 64);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const VolumeReport v = analyze_volume(s);
  EXPECT_GT(v.flops, c.total_flops());
}

TEST(Volume, UnitCollapseReducesLoadTraffic) {
  const ChainSpec c = small_chain();
  ScheduleOptions with;
  ScheduleOptions without;
  without.collapse_unit_loops = false;
  const std::vector<std::int64_t> tiles = {64, 64, 64, 64};  // Tk=K: unit k
  const double bytes_with =
      analyze_volume(build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}), tiles, with))
          .load_bytes;
  const double bytes_without =
      analyze_volume(
          build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}), tiles, without))
          .load_bytes;
  EXPECT_LT(bytes_with, bytes_without);
}

TEST(Volume, CoveredStoreBytesEqualFullOutput) {
  // Flat with Th<H: one store statement covers all resident h tiles, so
  // total store traffic is exactly the output size.
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                    std::vector<std::int64_t>{64, 64, 64, 32});
  const VolumeReport v = analyze_volume(s);
  EXPECT_DOUBLE_EQ(v.store_bytes, 128.0 * 64 * 2);  // M x H x fp16
}

TEST(Volume, SoftmaxEpilogueAddsFlops) {
  const ChainSpec plain = small_chain();
  const ChainSpec attn = ChainSpec::attention("a", 1, 128, 128, 64, 64);
  const std::vector<std::int64_t> tiles = {64, 64, 64, 64};
  const VolumeReport vp =
      analyze_volume(build_schedule(plain, make_deep_expr(plain, {0, 3, 2, 1}), tiles));
  const VolumeReport va =
      analyze_volume(build_schedule(attn, make_deep_expr(attn, {0, 3, 2, 1}), tiles));
  EXPECT_DOUBLE_EQ(vp.epilogue_flops, 0.0);
  EXPECT_GT(va.epilogue_flops, 0.0);
  EXPECT_DOUBLE_EQ(va.flops, vp.flops);  // contraction work identical
}

TEST(Volume, EpilogueFiresOncePerCompletedTile) {
  // Softmax epilogue trips = compute trips / reduction extent.
  const ChainSpec attn = ChainSpec::attention("a", 1, 128, 128, 64, 64);
  // Tk=32 -> k extent 2; epilogue must not double with it.
  const VolumeReport v2 = analyze_volume(build_schedule(
      attn, make_deep_expr(attn, {0, 3, 2, 1}), std::vector<std::int64_t>{64, 32, 64, 64}));
  const VolumeReport v1 = analyze_volume(build_schedule(
      attn, make_deep_expr(attn, {0, 3, 2, 1}), std::vector<std::int64_t>{64, 64, 64, 64}));
  EXPECT_DOUBLE_EQ(v1.epilogue_flops, v2.epilogue_flops);
}

TEST(Volume, DtypeBytesScalesTraffic) {
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  VolumeOptions fp16;
  VolumeOptions fp32;
  fp32.dtype_bytes = 4;
  EXPECT_DOUBLE_EQ(analyze_volume(s, fp32).total_bytes(),
                   2.0 * analyze_volume(s, fp16).total_bytes());
}

TEST(Volume, BatchScalesEverything) {
  const ChainSpec c1 = ChainSpec::gemm_chain("b1", 1, 128, 128, 64, 64);
  const ChainSpec c4 = ChainSpec::gemm_chain("b4", 4, 128, 128, 64, 64);
  const std::vector<std::int64_t> tiles = {64, 64, 64, 64};
  const VolumeReport v1 =
      analyze_volume(build_schedule(c1, make_deep_expr(c1, {0, 3, 2, 1}), tiles));
  const VolumeReport v4 =
      analyze_volume(build_schedule(c4, make_deep_expr(c4, {0, 3, 2, 1}), tiles));
  EXPECT_DOUBLE_EQ(v4.total_bytes(), 4.0 * v1.total_bytes());
  EXPECT_DOUBLE_EQ(v4.flops, 4.0 * v1.flops);
  EXPECT_DOUBLE_EQ(v4.n_blocks, 4.0 * v1.n_blocks);
}

TEST(Volume, RowElemsTracksInnermostIndex) {
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 32, 16, 64});
  for (const auto& st : analyze_volume(s).stmts) {
    if (st.kind == StmtKind::Load && st.tensor == 0) {
      EXPECT_EQ(st.row_elems, 32);  // A rows are k-contiguous
    }
    if (st.kind == StmtKind::Load && st.tensor == c.op_weight_tensor(0)) {
      EXPECT_EQ(st.row_elems, 16);  // B rows are n-contiguous
    }
  }
}

TEST(Volume, MoreBlocksSameTrafficWhenHSplit) {
  // Splitting h into more blocks must multiply A traffic (re-streamed per
  // h block) but keep E stores constant.
  const ChainSpec c = ChainSpec::gemm_chain("h", 1, 128, 128, 64, 128);
  const VolumeReport coarse = analyze_volume(build_schedule(
      c, make_deep_expr(c, {0, 3, 2, 1}), std::vector<std::int64_t>{64, 32, 64, 128}));
  const VolumeReport fine = analyze_volume(build_schedule(
      c, make_deep_expr(c, {0, 3, 2, 1}), std::vector<std::int64_t>{64, 32, 64, 32}));
  EXPECT_DOUBLE_EQ(fine.store_bytes, coarse.store_bytes);
  double a_coarse = 0;
  double a_fine = 0;
  for (const auto& st : coarse.stmts) {
    if (st.kind == StmtKind::Load && st.tensor == 0)
      a_coarse = st.bytes_per_trip * st.trips_per_block * coarse.n_blocks;
  }
  for (const auto& st : fine.stmts) {
    if (st.kind == StmtKind::Load && st.tensor == 0)
      a_fine = st.bytes_per_trip * st.trips_per_block * fine.n_blocks;
  }
  EXPECT_DOUBLE_EQ(a_fine, 4.0 * a_coarse);
}

}  // namespace
}  // namespace mcf
