#include "search/mcfuser.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace mcf {
namespace {

TEST(MCFuser, FusesGemmChainAndValidates) {
  const GpuSpec gpu = a100();
  const ChainSpec c = ChainSpec::gemm_chain("q", 2, 128, 96, 64, 80);
  const FusionResult r = MCFuser(gpu).fuse(c);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.kernel.has_value());
  // The tuned kernel must run and match the reference numerically.
  Tensor a(Shape{2, 128, 64});
  Tensor b(Shape{2, 64, 96});
  Tensor d(Shape{2, 96, 80});
  a.fill_random(1);
  b.fill_random(2);
  d.fill_random(3);
  std::vector<Tensor> w;
  w.push_back(std::move(b));
  w.push_back(std::move(d));
  Tensor out(Shape{2, 128, 80});
  r.kernel->run(a, w, out);
  Tensor ref(Shape{2, 128, 80});
  ops::gemm_chain_reference(a, w[0], w[1], ref);
  EXPECT_TRUE(allclose(out, ref, 1e-3, 1e-4));
}

TEST(MCFuser, FusesAttentionAndValidates) {
  const GpuSpec gpu = a100();
  const ChainSpec c = ChainSpec::attention("qa", 4, 128, 128, 64, 64);
  const FusionResult r = MCFuser(gpu).fuse(c);
  ASSERT_TRUE(r.ok());
  Tensor q(Shape{4, 128, 64});
  Tensor kt(Shape{4, 64, 128});
  Tensor v(Shape{4, 128, 64});
  q.fill_random(11);
  kt.fill_random(12);
  v.fill_random(13);
  std::vector<Tensor> w;
  w.push_back(std::move(kt));
  w.push_back(std::move(v));
  Tensor out(Shape{4, 128, 64});
  r.kernel->run(q, w, out);
  Tensor ref(Shape{4, 128, 64});
  ops::attention_reference(q, w[0], w[1], c.softmax_scale(), ref);
  EXPECT_TRUE(allclose(out, ref, 1e-3, 1e-4));
}

TEST(MCFuser, FusedBeatsMinimalTrafficBound) {
  // Sanity: simulated time is bounded below by the fused traffic at peak
  // bandwidth, and the tuner's winner should be within ~30x of it.
  const GpuSpec gpu = a100();
  const ChainSpec c = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
  const FusionResult r = MCFuser(gpu).fuse(c);
  ASSERT_TRUE(r.ok());
  const double bound = static_cast<double>(c.min_traffic_elems()) * 2.0 /
                       gpu.mem_bandwidth;
  EXPECT_GT(r.time_s(), bound);
  EXPECT_LT(r.time_s(), 30.0 * bound + 1e-4);
}

TEST(MCFuser, ChimeraOptionsRestrictSpace) {
  const GpuSpec gpu = a100();
  const ChainSpec c = ChainSpec::gemm_chain("g3", 1, 512, 256, 64, 256);
  const FusionResult full = MCFuser(gpu).fuse(c);
  const FusionResult chim = MCFuser(gpu, MCFuser::chimera_options()).fuse(c);
  ASSERT_TRUE(full.ok() && chim.ok());
  EXPECT_LE(chim.space_size, full.space_size);
  // The full space can never lose (same tuner, superset space, shared
  // refinement): allow a whisker of measurement noise.
  EXPECT_LE(full.time_s(), chim.time_s() * 1.02);
}

TEST(MCFuser, FunnelReportedPerChain) {
  const GpuSpec gpu = a100();
  const ChainSpec c = ChainSpec::gemm_chain("fig7", 1, 1024, 1024, 512, 512);
  const FusionResult r = MCFuser(gpu).fuse(c);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.funnel.original, 109051904.0);
  EXPECT_EQ(r.space_size, static_cast<std::size_t>(r.funnel.after_rule4));
}

TEST(MCFuser, WinnerKeepsMostOfTheReductionResident) {
  // For K = 64-class attention shapes the best schedules hold all (or
  // half) of the reduction in one tile — the FlashAttention recipe.
  const GpuSpec gpu = a100();
  const ChainSpec c = ChainSpec::attention("s4", 12, 256, 256, 64, 64);
  const FusionResult r = MCFuser(gpu).fuse(c);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.tuned.best.tiles[1], 32);  // Tk >= K/2
}

TEST(MCFuser, WorksOnRtx3080) {
  const GpuSpec gpu = rtx3080();
  const ChainSpec c = ChainSpec::gemm_chain("g1r", 1, 512, 256, 64, 64);
  const FusionResult r = MCFuser(gpu).fuse(c);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.kernel->smem().total_bytes, gpu.smem_per_block);
}

}  // namespace
}  // namespace mcf
