#include "search/tuning_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "search/mcfuser.hpp"

namespace mcf {
namespace {

ChainSpec chain() { return ChainSpec::gemm_chain("cc", 1, 512, 256, 64, 64); }

TEST(TuningCache, ChainKeyIsShapeBased) {
  const ChainSpec a = ChainSpec::gemm_chain("first", 1, 512, 256, 64, 64);
  const ChainSpec b = ChainSpec::gemm_chain("second", 1, 512, 256, 64, 64);
  EXPECT_EQ(chain_cache_key(a), chain_cache_key(b));  // names don't matter
  const ChainSpec c = ChainSpec::gemm_chain("third", 1, 512, 256, 64, 128);
  EXPECT_NE(chain_cache_key(a), chain_cache_key(c));
  const ChainSpec d = ChainSpec::attention("attn", 1, 512, 256, 64, 64);
  EXPECT_NE(chain_cache_key(a), chain_cache_key(d));  // epilogues matter
}

TEST(TuningCache, PutGetRoundTrip) {
  TuningCache cache;
  const GpuSpec gpu = a100();
  EXPECT_FALSE(cache.get(chain(), gpu).has_value());
  cache.put(chain(), gpu, CachedSchedule{"b0|2(1)", {64, 64, 64, 64}, 1e-5});
  const auto hit = cache.get(chain(), gpu);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tiles, (std::vector<std::int64_t>{64, 64, 64, 64}));
  // Different GPU: separate entry.
  EXPECT_FALSE(cache.get(chain(), rtx3080()).has_value());
}

TEST(TuningCache, SaveLoadRoundTrip) {
  const std::string path = "tuning_cache_test.txt";
  {
    TuningCache cache;
    cache.put(chain(), a100(), CachedSchedule{"key", {32, 64, 128, 16}, 2e-5});
    ASSERT_TRUE(cache.save(path));
  }
  TuningCache loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 1u);
  const auto hit = loaded.get(chain(), a100());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tiles, (std::vector<std::int64_t>{32, 64, 128, 16}));
  EXPECT_NEAR(hit->time_s, 2e-5, 1e-12);
  std::filesystem::remove(path);
}

TEST(TuningCache, GoldenRoundTripIsByteStable) {
  // save -> load -> save must reproduce the file byte for byte: record
  // order is canonical (sorted map) and times print with full precision.
  const std::string path1 = "tuning_cache_golden_1.txt";
  const std::string path2 = "tuning_cache_golden_2.txt";
  TuningCache cache;
  cache.put(chain(), a100(),
            CachedSchedule{"b0|2(1)", {32, 64, 128, 16}, 1.2345678901234567e-5});
  cache.put(chain(), rtx3080(),
            CachedSchedule{"b0b3|2(1)", {64, 64, 64, 64}, 3.3e-6});
  cache.put(ChainSpec::attention("a", 4, 128, 128, 64, 64), a100(),
            CachedSchedule{"b0|2(1)", {16, 16, 16, 16, 16}, 0.5});
  ASSERT_TRUE(cache.save(path1));
  TuningCache loaded;
  ASSERT_TRUE(loaded.load(path1));
  EXPECT_EQ(loaded.size(), 3u);
  ASSERT_TRUE(loaded.save(path2));
  auto slurp = [](const std::string& p) {
    std::ifstream f(p);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
  };
  EXPECT_EQ(slurp(path1), slurp(path2));
  // All record fields survive, bit-exact time included.
  const auto hit = loaded.get(chain(), a100());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->expr_key, "b0|2(1)");
  EXPECT_EQ(hit->tiles, (std::vector<std::int64_t>{32, 64, 128, 16}));
  EXPECT_EQ(hit->time_s, 1.2345678901234567e-5);
  std::filesystem::remove(path1);
  std::filesystem::remove(path2);
}

TEST(TuningCache, MalformedLinesAreSkippedAndReported) {
  const std::string path = "tuning_cache_malformed.txt";
  {
    TuningCache cache;
    cache.put(chain(), a100(), CachedSchedule{"good", {64, 64, 64, 64}, 1e-5});
    ASSERT_TRUE(cache.save(path));
    std::ofstream f(path, std::ios::app);
    f << "short line\n";                         // too few fields
    f << "key gpu expr 64,notanumber,64 1e-5\n"; // non-numeric tile
    f << "\n";                                   // blank: fine, ignored
    f << "# comment: fine, ignored\n";
  }
  TuningCache loaded;
  EXPECT_FALSE(loaded.load(path));  // malformed lines were skipped
  EXPECT_EQ(loaded.size(), 1u);     // the good record still loads
  EXPECT_TRUE(loaded.get(chain(), a100()).has_value());
  std::filesystem::remove(path);
}

TEST(TuningCache, ResolveRejectsOffGridTiles) {
  // Tiles of 8 divide the dims exactly and pass rules 2-4, but are off
  // the quantum-16 enumeration grid; resolve() must reject them (cached
  // entries can only ever come off the grid, so a miss means the space's
  // options changed under the entry).
  const GpuSpec gpu = a100();
  const ChainSpec c = chain();
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  const SearchSpace space(c, SpaceOptions{}, prune);
  // Start from a real grid candidate and knock one tile off the grid
  // (divisors of the original, so padding stays zero) until the rules
  // still pass but grid membership does not.
  std::optional<CandidateConfig> off_grid;
  for (const CandidateConfig& base : space.candidates()) {
    for (std::size_t l = 0; l < base.tiles.size() && !off_grid; ++l) {
      for (const std::int64_t v : {8, 24, 40, 48}) {
        CandidateConfig probe = base;
        probe.tiles[l] = v;
        if (!space.contains(probe) && space.passes_rules(probe)) {
          off_grid = probe;
          break;
        }
      }
    }
    if (off_grid) break;
  }
  ASSERT_TRUE(off_grid.has_value());
  TuningCache cache;
  cache.put(c, gpu,
            CachedSchedule{space.expressions()[static_cast<std::size_t>(
                                                   off_grid->expr_id)]
                               .structure_key(),
                           {off_grid->tiles.begin(), off_grid->tiles.end()},
                           1e-6});
  EXPECT_FALSE(cache.resolve(c, gpu, space).has_value());
}

TEST(TuningCache, RawKeyRecordsRoundTrip) {
  // The string-keyed API the CachingBackend builds on: composite chain
  // keys survive save/load as long as they are space- and '|'-free.
  const std::string path = "tuning_cache_raw.txt";
  {
    TuningCache cache;
    cache.put_raw("b1m512x64x256@abc123@64,64", "A100",
                  CachedSchedule{"abc123", {64, 64}, 7.5e-6});
    ASSERT_TRUE(cache.save(path));
  }
  TuningCache loaded;
  ASSERT_TRUE(loaded.load(path));
  const auto hit = loaded.get_raw("b1m512x64x256@abc123@64,64", "A100");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->time_s, 7.5e-6);
  EXPECT_FALSE(loaded.get_raw("b1m512x64x256@abc123@64,64", "RTX3080"));
  std::filesystem::remove(path);
}

TEST(TuningCache, LoadMissingFileFails) {
  TuningCache cache;
  EXPECT_FALSE(cache.load("does_not_exist.txt"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCache, FuseCachedSkipsTuningOnHit) {
  const GpuSpec gpu = a100();
  const MCFuser fuser(gpu);
  TuningCache cache;
  const FusionResult first = fuser.fuse_cached(chain(), cache);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.tuned.stats.measurements, 0);
  EXPECT_EQ(cache.size(), 1u);

  const FusionResult second = fuser.fuse_cached(chain(), cache);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.tuned.stats.measurements, 0);  // no tuning
  // The cached kernel reproduces the tuned one.
  EXPECT_EQ(second.tuned.best.tiles, first.tuned.best.tiles);
  EXPECT_NEAR(second.tuned.best_time_s, first.tuned.best_time_s,
              0.05 * first.tuned.best_time_s);
}

TEST(TuningCache, StaleEntryFallsBackToTuning) {
  const GpuSpec gpu = a100();
  const MCFuser fuser(gpu);
  TuningCache cache;
  // Poison the cache with tiles of the wrong arity.
  cache.put(chain(), gpu, CachedSchedule{"b0b3|2(1)", {64, 64}, 1e-6});
  const FusionResult r = fuser.fuse_cached(chain(), cache);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.tuned.stats.measurements, 0);  // had to tune
}

TEST(TuningCache, ResolveRejectsRuleViolations) {
  const GpuSpec gpu = a100();
  const ChainSpec c = chain();
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  const SearchSpace space(c, SpaceOptions{}, prune);
  TuningCache cache;
  // Tiles that pad a power-of-two dimension violate rule 3.
  cache.put(c, gpu,
            CachedSchedule{space.expressions().front().structure_key(),
                           {48, 48, 48, 48},
                           1e-6});
  EXPECT_FALSE(cache.resolve(c, gpu, space).has_value());
}

}  // namespace
}  // namespace mcf
