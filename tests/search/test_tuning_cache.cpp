#include "search/tuning_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "search/mcfuser.hpp"

namespace mcf {
namespace {

ChainSpec chain() { return ChainSpec::gemm_chain("cc", 1, 512, 256, 64, 64); }

TEST(TuningCache, ChainKeyIsShapeBased) {
  const ChainSpec a = ChainSpec::gemm_chain("first", 1, 512, 256, 64, 64);
  const ChainSpec b = ChainSpec::gemm_chain("second", 1, 512, 256, 64, 64);
  EXPECT_EQ(chain_cache_key(a), chain_cache_key(b));  // names don't matter
  const ChainSpec c = ChainSpec::gemm_chain("third", 1, 512, 256, 64, 128);
  EXPECT_NE(chain_cache_key(a), chain_cache_key(c));
  const ChainSpec d = ChainSpec::attention("attn", 1, 512, 256, 64, 64);
  EXPECT_NE(chain_cache_key(a), chain_cache_key(d));  // epilogues matter
}

TEST(TuningCache, PutGetRoundTrip) {
  TuningCache cache;
  const GpuSpec gpu = a100();
  EXPECT_FALSE(cache.get(chain(), gpu).has_value());
  cache.put(chain(), gpu, CachedSchedule{"b0|2(1)", {64, 64, 64, 64}, 1e-5});
  const auto hit = cache.get(chain(), gpu);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tiles, (std::vector<std::int64_t>{64, 64, 64, 64}));
  // Different GPU: separate entry.
  EXPECT_FALSE(cache.get(chain(), rtx3080()).has_value());
}

TEST(TuningCache, SaveLoadRoundTrip) {
  const std::string path = "tuning_cache_test.txt";
  {
    TuningCache cache;
    cache.put(chain(), a100(), CachedSchedule{"key", {32, 64, 128, 16}, 2e-5});
    ASSERT_TRUE(cache.save(path));
  }
  TuningCache loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 1u);
  const auto hit = loaded.get(chain(), a100());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tiles, (std::vector<std::int64_t>{32, 64, 128, 16}));
  EXPECT_NEAR(hit->time_s, 2e-5, 1e-12);
  std::filesystem::remove(path);
}

TEST(TuningCache, LoadMissingFileFails) {
  TuningCache cache;
  EXPECT_FALSE(cache.load("does_not_exist.txt"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCache, FuseCachedSkipsTuningOnHit) {
  const GpuSpec gpu = a100();
  const MCFuser fuser(gpu);
  TuningCache cache;
  const FusionResult first = fuser.fuse_cached(chain(), cache);
  ASSERT_TRUE(first.ok);
  EXPECT_GT(first.tuned.stats.measurements, 0);
  EXPECT_EQ(cache.size(), 1u);

  const FusionResult second = fuser.fuse_cached(chain(), cache);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.tuned.stats.measurements, 0);  // no tuning
  // The cached kernel reproduces the tuned one.
  EXPECT_EQ(second.tuned.best.tiles, first.tuned.best.tiles);
  EXPECT_NEAR(second.tuned.best_time_s, first.tuned.best_time_s,
              0.05 * first.tuned.best_time_s);
}

TEST(TuningCache, StaleEntryFallsBackToTuning) {
  const GpuSpec gpu = a100();
  const MCFuser fuser(gpu);
  TuningCache cache;
  // Poison the cache with tiles of the wrong arity.
  cache.put(chain(), gpu, CachedSchedule{"b0b3|2(1)", {64, 64}, 1e-6});
  const FusionResult r = fuser.fuse_cached(chain(), cache);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.tuned.stats.measurements, 0);  // had to tune
}

TEST(TuningCache, ResolveRejectsRuleViolations) {
  const GpuSpec gpu = a100();
  const ChainSpec c = chain();
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  const SearchSpace space(c, SpaceOptions{}, prune);
  TuningCache cache;
  // Tiles that pad a power-of-two dimension violate rule 3.
  cache.put(c, gpu,
            CachedSchedule{space.expressions().front().structure_key(),
                           {48, 48, 48, 48},
                           1e-6});
  EXPECT_FALSE(cache.resolve(c, gpu, space).has_value());
}

}  // namespace
}  // namespace mcf
