#include "search/prune.hpp"

#include <gtest/gtest.h>

#include "gpu/spec.hpp"
#include "ir/expr.hpp"

namespace mcf {
namespace {

TEST(Rule3, PowerOfTwoDimRequiresExactDivision) {
  EXPECT_TRUE(tile_passes_padding_rule(1024, 64, 0.05));
  EXPECT_TRUE(tile_passes_padding_rule(1024, 1024, 0.05));
  EXPECT_FALSE(tile_passes_padding_rule(1024, 48, 0.05));  // pads to 1056
  EXPECT_FALSE(tile_passes_padding_rule(512, 96, 0.05));
}

TEST(Rule3, NonPow2DimAllowsSmallPadding) {
  // dim 500, tile 125 -> no padding.
  EXPECT_TRUE(tile_passes_padding_rule(500, 125, 0.05));
  // dim 500, tile 48 -> ceil = 11 -> 528 (5.6% padding): rejected at 5%.
  EXPECT_FALSE(tile_passes_padding_rule(500, 48, 0.05));
  // Same tile accepted with a looser bound.
  EXPECT_TRUE(tile_passes_padding_rule(500, 48, 0.10));
}

TEST(Rule3, Dim80Cases) {
  EXPECT_TRUE(tile_passes_padding_rule(80, 16, 0.05));   // exact
  EXPECT_TRUE(tile_passes_padding_rule(80, 80, 0.05));   // exact
  EXPECT_FALSE(tile_passes_padding_rule(80, 32, 0.05));  // pads to 96
  EXPECT_FALSE(tile_passes_padding_rule(80, 64, 0.05));  // pads to 128
}

TEST(Rule2, PartialConsumeFails) {
  const ChainSpec c = ChainSpec::gemm_chain("p", 1, 512, 512, 256, 256);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 1, 2}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  PruneOptions opts;
  opts.smem_limit_bytes = a100().smem_per_block;
  EXPECT_FALSE(schedule_passes_rule2(s, opts));
}

TEST(Rule2, ModerateResidencyWithinBudgetPasses) {
  // Flat with 2 resident 64-wide output tiles: small footprint, allowed.
  const ChainSpec c = ChainSpec::gemm_chain("f", 1, 512, 512, 64, 128);
  const Schedule s = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  ASSERT_TRUE(s.consume_complete());
  PruneOptions opts;
  opts.smem_limit_bytes = a100().smem_per_block;
  EXPECT_TRUE(schedule_passes_rule2(s, opts));
}

TEST(Rule2, OverwhelmingResidencyFails) {
  // Flat over a huge H with small Th: the resident accumulator alone
  // exceeds shared memory (the paper's Fig. 6(b) concern).
  const ChainSpec c = ChainSpec::gemm_chain("f", 1, 512, 512, 64, 4096);
  const Schedule s = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                    std::vector<std::int64_t>{128, 64, 64, 64});
  ASSERT_TRUE(s.consume_complete());
  // 64 resident tiles x 128x64 x 2B = 1 MiB > any smem.
  PruneOptions opts;
  opts.smem_limit_bytes = a100().smem_per_block;
  EXPECT_FALSE(schedule_passes_rule2(s, opts));
}

TEST(Rule4, EstimateAgainstSlackedLimit) {
  const ChainSpec c = ChainSpec::gemm_chain("r4", 1, 512, 512, 256, 256);
  const Schedule big = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                      std::vector<std::int64_t>{256, 256, 256, 256});
  const Schedule small = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                        std::vector<std::int64_t>{64, 64, 64, 64});
  PruneOptions opts;
  opts.smem_limit_bytes = a100().smem_per_block;
  EXPECT_FALSE(schedule_passes_rule4(big, opts));
  EXPECT_TRUE(schedule_passes_rule4(small, opts));
}

TEST(Rule4, SlackAdmitsBorderlineCandidates) {
  const ChainSpec c = ChainSpec::gemm_chain("r4", 1, 512, 512, 256, 256);
  // Footprint: (128*128)*3 + 128*256*2 elems = 114688 elems = 229376 B.
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{128, 128, 128, 128});
  PruneOptions tight;
  tight.smem_limit_bytes = 150 * 1024;
  tight.rule4_slack = 1.0;
  PruneOptions slack = tight;
  slack.rule4_slack = 1.2;
  EXPECT_FALSE(schedule_passes_rule4(s, tight));
  EXPECT_TRUE(schedule_passes_rule4(s, slack));
}

TEST(CriticalLoops, KnExpressionNeedsUnitK) {
  const ChainSpec c = ChainSpec::gemm_chain("cl", 1, 1024, 1024, 512, 512);
  const TileExpr kn = make_deep_expr(c, {0, 3, 1, 2});
  const auto critical = rule2_critical_loops(c, kn, {});
  EXPECT_EQ(critical, (std::vector<int>{1}));  // loop k must collapse
}

TEST(CriticalLoops, NkExpressionHasNone) {
  const ChainSpec c = ChainSpec::gemm_chain("cl", 1, 1024, 1024, 512, 512);
  const TileExpr nk = make_deep_expr(c, {0, 3, 2, 1});
  EXPECT_TRUE(rule2_critical_loops(c, nk, {}).empty());
}

}  // namespace
}  // namespace mcf
