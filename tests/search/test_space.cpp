#include "search/space.hpp"

#include <gtest/gtest.h>

#include "gpu/spec.hpp"

namespace mcf {
namespace {

PruneOptions a100_prune() {
  PruneOptions p;
  p.smem_limit_bytes = a100().smem_per_block;
  return p;
}

TEST(TileOptions, MultiplesOf16UpToDim) {
  EXPECT_EQ(tile_options_for_dim(1024, 16).size(), 64u);  // paper: ceil(1024/16)
  EXPECT_EQ(tile_options_for_dim(512, 16).size(), 32u);
  EXPECT_EQ(tile_options_for_dim(64, 16),
            (std::vector<std::int64_t>{16, 32, 48, 64}));
}

TEST(TileOptions, NonMultipleDimGetsExactOption) {
  const auto opts = tile_options_for_dim(500, 16);
  EXPECT_EQ(opts.size(), 32u);  // 31 multiples + the dim itself
  EXPECT_EQ(opts.back(), 500);
}

TEST(TileOptions, TinyDimSingleOption) {
  EXPECT_EQ(tile_options_for_dim(8, 16), (std::vector<std::int64_t>{8}));
}

TEST(Space, PaperFunnelOriginalCount) {
  // Paper §III-C: (24+2) x ceil(1024/16)^2 x ceil(512/16)^2 = 109,051,904.
  const ChainSpec c = ChainSpec::gemm_chain("fig7", 1, 1024, 1024, 512, 512);
  const SearchSpace space(c, SpaceOptions{}, a100_prune());
  EXPECT_DOUBLE_EQ(space.funnel().original, 109051904.0);
  EXPECT_EQ(space.funnel().exprs_raw, 26u);
}

TEST(Space, FunnelIsMonotoneDecreasing) {
  const ChainSpec c = ChainSpec::gemm_chain("fig7", 1, 1024, 1024, 512, 512);
  const SearchSpace space(c, SpaceOptions{}, a100_prune());
  const PruneFunnel& f = space.funnel();
  EXPECT_GE(f.original, f.after_rule1);
  EXPECT_GE(f.after_rule1, f.after_rule2);
  EXPECT_GE(f.after_rule2, f.after_rule3);
  EXPECT_GE(f.after_rule3, f.after_rule4);
  // Orders of magnitude as in Fig. 7: ~1e8 down to <= ~1e4.
  EXPECT_GT(f.original, 1e8);
  EXPECT_LT(f.after_rule4, 2e4);
}

TEST(Space, Rule1CollapsesTo5Expressions) {
  const ChainSpec c = ChainSpec::gemm_chain("fig7", 1, 1024, 1024, 512, 512);
  const SearchSpace space(c, SpaceOptions{}, a100_prune());
  EXPECT_EQ(space.funnel().exprs_deduped, 5u);  // matches the paper
}

TEST(Space, AllCandidatesPassRules) {
  const ChainSpec c = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
  const SearchSpace space(c, SpaceOptions{}, a100_prune());
  ASSERT_FALSE(space.candidates().empty());
  for (const auto& cand : space.candidates()) {
    EXPECT_TRUE(space.passes_rules(cand));
    const Schedule s = space.schedule_for(cand);
    EXPECT_TRUE(s.valid());
    EXPECT_TRUE(s.consume_complete());
  }
}

TEST(Space, ChimeraSpaceIsSubset) {
  const ChainSpec c = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
  SpaceOptions full;
  SpaceOptions chimera;
  chimera.include_flat = false;
  const SearchSpace s_full(c, full, a100_prune());
  const SearchSpace s_chim(c, chimera, a100_prune());
  EXPECT_LE(s_chim.expressions().size(), s_full.expressions().size());
  EXPECT_LE(s_chim.candidates().size(), s_full.candidates().size());
}

TEST(Space, DisablingRule3KeepsPaddedTiles) {
  const ChainSpec c = ChainSpec::gemm_chain("g", 1, 96, 96, 96, 96);
  PruneOptions with = a100_prune();
  PruneOptions without = a100_prune();
  without.rule3_padding = false;
  const SearchSpace s_with(c, SpaceOptions{}, with);
  const SearchSpace s_without(c, SpaceOptions{}, without);
  EXPECT_GE(s_without.candidates().size(), s_with.candidates().size());
}

TEST(Space, Rule4TightensWithSmallSmem) {
  const ChainSpec c = ChainSpec::gemm_chain("g", 1, 512, 512, 256, 256);
  PruneOptions big = a100_prune();
  PruneOptions small = a100_prune();
  small.smem_limit_bytes = 32 * 1024;
  const SearchSpace s_big(c, SpaceOptions{}, big);
  const SearchSpace s_small(c, SpaceOptions{}, small);
  EXPECT_LT(s_small.candidates().size(), s_big.candidates().size());
}

TEST(Space, ScheduleForRoundTrip) {
  const ChainSpec c = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
  const SearchSpace space(c, SpaceOptions{}, a100_prune());
  const auto& cand = space.candidates().front();
  const Schedule s = space.schedule_for(cand);
  for (int l = 0; l < c.num_loops(); ++l) {
    EXPECT_EQ(s.tiles()[static_cast<std::size_t>(l)],
              cand.tiles[static_cast<std::size_t>(l)]);
  }
}

TEST(Space, AttentionSpaceNonEmptyAndLegal) {
  const ChainSpec c = ChainSpec::attention("s1", 8, 512, 512, 64, 64);
  const SearchSpace space(c, SpaceOptions{}, a100_prune());
  EXPECT_GT(space.candidates().size(), 50u);
}

TEST(Space, ViTHugeNonPow2HeadDim) {
  // S6: head dim 80 (not a power of two) — rule 3 admits 16 and 80.
  const ChainSpec c = ChainSpec::attention("s6", 16, 256, 256, 80, 80);
  const SearchSpace space(c, SpaceOptions{}, a100_prune());
  EXPECT_FALSE(space.candidates().empty());
  const auto& k_opts = space.tile_options_r3()[1];
  EXPECT_EQ(k_opts, (std::vector<std::int64_t>{16, 80}));
}

}  // namespace
}  // namespace mcf
