#include "search/tuner.hpp"

#include <gtest/gtest.h>

#include "model/analytical.hpp"
#include "support/stats.hpp"

namespace mcf {
namespace {

SearchSpace make_space(const ChainSpec& c, const GpuSpec& gpu) {
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  return SearchSpace(c, SpaceOptions{}, prune);
}

TEST(Tuner, FindsAMeasurableCandidate) {
  const ChainSpec c = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  Tuner tuner(space, gpu);
  const TunedResult r = tuner.run();
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.best_time_s, 0.0);
  EXPECT_TRUE(r.best_measurement.ok);
  EXPECT_GT(r.stats.measurements, 0);
  EXPECT_GT(r.stats.estimates, 0);
}

TEST(Tuner, DeterministicForFixedSeed) {
  const ChainSpec c = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  TunerOptions opts;
  opts.seed = 99;
  const TunedResult r1 = Tuner(space, gpu, opts).run();
  const TunedResult r2 = Tuner(space, gpu, opts).run();
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_DOUBLE_EQ(r1.best_time_s, r2.best_time_s);
  EXPECT_EQ(r1.best.tiles, r2.best.tiles);
}

TEST(Tuner, DeterministicAcrossThreadCounts) {
  // The batched evaluation pipeline must be a pure throughput knob: for a
  // fixed seed the tuned result — winner, time, stats, and the full
  // Fig. 11 scatter — is identical whether evaluation runs on one worker
  // or many.
  const ChainSpec c = ChainSpec::attention("s2", 8, 256, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  TunerOptions serial;
  serial.seed = 7;
  serial.num_threads = 1;
  TunerOptions threaded = serial;
  threaded.num_threads = 4;
  const TunedResult r1 = Tuner(space, gpu, serial).run();
  const TunedResult r2 = Tuner(space, gpu, threaded).run();
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.best.expr_id, r2.best.expr_id);
  EXPECT_EQ(r1.best.tiles, r2.best.tiles);
  // Bitwise equality, not ULP tolerance: the contract is exact identity.
  EXPECT_EQ(r1.best_time_s, r2.best_time_s);
  EXPECT_EQ(r1.stats.estimates, r2.stats.estimates);
  EXPECT_EQ(r1.stats.measurements, r2.stats.measurements);
  EXPECT_EQ(r1.stats.compile_failures, r2.stats.compile_failures);
  ASSERT_EQ(r1.est_vs_measured.size(), r2.est_vs_measured.size());
  for (std::size_t i = 0; i < r1.est_vs_measured.size(); ++i) {
    EXPECT_EQ(r1.est_vs_measured[i].first, r2.est_vs_measured[i].first);
    EXPECT_EQ(r1.est_vs_measured[i].second, r2.est_vs_measured[i].second);
  }
}

TEST(Tuner, BeatsMedianOfSpace) {
  const ChainSpec c = ChainSpec::attention("s4", 12, 256, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  const TunedResult r = Tuner(space, gpu).run();
  ASSERT_TRUE(r.ok);
  // Measure a uniform sample of the space and compare to the median.
  TimingSimulator sim(gpu);
  std::vector<double> sample;
  const auto& cands = space.candidates();
  for (std::size_t i = 0; i < cands.size(); i += std::max<std::size_t>(1, cands.size() / 50)) {
    const auto m = sim.measure(space.schedule_for(cands[i]));
    if (m.ok) sample.push_back(m.time_s);
  }
  ASSERT_GT(sample.size(), 10u);
  EXPECT_LT(r.best_time_s, quantile(sample, 0.5));
  EXPECT_LE(r.best_time_s, quantile(sample, 0.05) * 1.10);
}

TEST(Tuner, ConvergesBeforeGenerationCap) {
  const ChainSpec c = ChainSpec::gemm_chain("g7", 1, 512, 512, 128, 128);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  TunerOptions opts;
  opts.max_generations = 64;
  const TunedResult r = Tuner(space, gpu, opts).run();
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.stats.generations, 64);
}

TEST(Tuner, EstimatesVsMeasurementsCorrelate) {
  // The property behind Fig. 11: the analytical model must rank usefully
  // across the whole space (the tuner's own measured set is top-k cream
  // with restricted range, so the sample here is uniform).
  const ChainSpec c = ChainSpec::gemm_chain("g4", 1, 512, 512, 256, 256);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  const AnalyticalModel model(gpu);
  TimingSimulator sim(gpu);
  std::vector<double> est;
  std::vector<double> meas;
  const auto& cands = space.candidates();
  for (std::size_t i = 0; i < cands.size();
       i += std::max<std::size_t>(1, cands.size() / 120)) {
    const Schedule s = space.schedule_for(cands[i]);
    const auto m = sim.measure(s);
    if (!m.ok) continue;
    est.push_back(model.estimate(s).time_s);
    meas.push_back(m.time_s);
  }
  ASSERT_GE(est.size(), 40u);
  EXPECT_GT(pearson(est, meas), 0.6);
  EXPECT_GT(spearman(est, meas), 0.5);
}

TEST(Tuner, MeasuresFarFewerThanItEstimates) {
  // The efficiency claim of §IV: estimates are cheap, measurements rare.
  const ChainSpec c = ChainSpec::gemm_chain("g8", 1, 1024, 512, 128, 128);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  const TunedResult r = Tuner(space, gpu).run();
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.stats.measurements, r.stats.estimates / 2);
  EXPECT_LT(r.stats.measurements, 120);
}

TEST(Tuner, EmptySpaceReturnsNotOk) {
  const ChainSpec c = ChainSpec::gemm_chain("tiny", 1, 512, 256, 64, 64);
  PruneOptions impossible;
  impossible.smem_limit_bytes = 64;  // nothing fits
  const SearchSpace space(c, SpaceOptions{}, impossible);
  GpuSpec gpu = a100();
  const TunedResult r = Tuner(space, gpu).run();
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace mcf
