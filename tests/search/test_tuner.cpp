#include "search/tuner.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "measure/backend.hpp"
#include "model/analytical.hpp"
#include "support/stats.hpp"

namespace mcf {
namespace {

SearchSpace make_space(const ChainSpec& c, const GpuSpec& gpu) {
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  return SearchSpace(c, SpaceOptions{}, prune);
}

TEST(Tuner, FindsAMeasurableCandidate) {
  const ChainSpec c = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  Tuner tuner(space, gpu);
  const TunedResult r = tuner.run();
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.best_time_s, 0.0);
  EXPECT_TRUE(r.best_measurement.ok);
  EXPECT_GT(r.stats.measurements, 0);
  EXPECT_GT(r.stats.estimates, 0);
}

TEST(Tuner, DeterministicForFixedSeed) {
  const ChainSpec c = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  TunerOptions opts;
  opts.seed = 99;
  const TunedResult r1 = Tuner(space, gpu, opts).run();
  const TunedResult r2 = Tuner(space, gpu, opts).run();
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_DOUBLE_EQ(r1.best_time_s, r2.best_time_s);
  EXPECT_EQ(r1.best.tiles, r2.best.tiles);
}

/// Bitwise identity of two tuned results, not ULP tolerance: the
/// determinism contract is exact.
void expect_identical(const TunedResult& r1, const TunedResult& r2) {
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.best.expr_id, r2.best.expr_id);
  EXPECT_EQ(r1.best.tiles, r2.best.tiles);
  EXPECT_EQ(r1.best_time_s, r2.best_time_s);
  EXPECT_EQ(r1.stats.generations, r2.stats.generations);
  EXPECT_EQ(r1.stats.estimates, r2.stats.estimates);
  EXPECT_EQ(r1.stats.measurements, r2.stats.measurements);
  EXPECT_EQ(r1.stats.compile_failures, r2.stats.compile_failures);
  ASSERT_EQ(r1.est_vs_measured.size(), r2.est_vs_measured.size());
  for (std::size_t i = 0; i < r1.est_vs_measured.size(); ++i) {
    EXPECT_EQ(r1.est_vs_measured[i].first, r2.est_vs_measured[i].first);
    EXPECT_EQ(r1.est_vs_measured[i].second, r2.est_vs_measured[i].second);
  }
}

TEST(Tuner, DeterministicAcrossThreadCounts) {
  // The batched evaluation pipeline must be a pure throughput knob: for a
  // fixed seed the tuned result — winner, time, stats, and the full
  // Fig. 11 scatter — is identical whether evaluation runs on one worker
  // or many (pinned here for 1, 2 and 8 workers under the simulator
  // backend, the PR-1 guarantee).
  const ChainSpec c = ChainSpec::attention("s2", 8, 256, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  TunerOptions serial;
  serial.seed = 7;
  serial.num_threads = 1;
  serial.backend = std::make_shared<SimulatorBackend>(gpu);
  const TunedResult r1 = Tuner(space, gpu, serial).run();
  for (const int threads : {2, 8}) {
    TunerOptions threaded = serial;
    threaded.num_threads = threads;
    const TunedResult r2 = Tuner(space, gpu, threaded).run();
    expect_identical(r1, r2);
  }
}

TEST(Tuner, ExplicitSimulatorBackendIsBitIdenticalToDefault) {
  // Regression pin for the MeasureBackend extraction: a Tuner handed an
  // explicit SimulatorBackend produces exactly the result of the
  // pre-subsystem Tuner (which held a TimingSimulator member), i.e. the
  // default-constructed path.  Covers winner, counters and the full
  // est_vs_measured trace.
  const ChainSpec c = ChainSpec::gemm_chain("g1", 1, 512, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  TunerOptions defaults;
  defaults.seed = 123;
  TunerOptions explicit_sim = defaults;
  explicit_sim.backend = std::make_shared<SimulatorBackend>(gpu);
  const TunedResult r1 = Tuner(space, gpu, defaults).run();
  const TunedResult r2 = Tuner(space, gpu, explicit_sim).run();
  expect_identical(r1, r2);
}

TEST(Tuner, CachingBackendPreservesResultAndSkipsRemeasures) {
  // A caching decorator must be invisible to the search: same winner and
  // traces, while the second run's inner measurements all hit the cache.
  const ChainSpec c = ChainSpec::gemm_chain("g1c", 1, 512, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  auto cached = std::make_shared<CachingBackend>(
      std::make_shared<SimulatorBackend>(gpu));
  TunerOptions plain;
  plain.seed = 5;
  TunerOptions with_cache = plain;
  with_cache.backend = cached;
  const TunedResult r1 = Tuner(space, gpu, plain).run();
  const TunedResult r2 = Tuner(space, gpu, with_cache).run();
  expect_identical(r1, r2);
  const std::size_t misses_after_first = cached->misses();
  const TunedResult r3 = Tuner(space, gpu, with_cache).run();
  expect_identical(r1, r3);
  EXPECT_EQ(cached->misses(), misses_after_first);  // all hits
}

TEST(Tuner, BeatsMedianOfSpace) {
  const ChainSpec c = ChainSpec::attention("s4", 12, 256, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  const TunedResult r = Tuner(space, gpu).run();
  ASSERT_TRUE(r.ok);
  // Measure a uniform sample of the space and compare to the median.
  TimingSimulator sim(gpu);
  std::vector<double> sample;
  const auto& cands = space.candidates();
  for (std::size_t i = 0; i < cands.size(); i += std::max<std::size_t>(1, cands.size() / 50)) {
    const auto m = sim.measure(space.schedule_for(cands[i]));
    if (m.ok) sample.push_back(m.time_s);
  }
  ASSERT_GT(sample.size(), 10u);
  EXPECT_LT(r.best_time_s, quantile(sample, 0.5));
  EXPECT_LE(r.best_time_s, quantile(sample, 0.05) * 1.10);
}

TEST(Tuner, ConvergesBeforeGenerationCap) {
  const ChainSpec c = ChainSpec::gemm_chain("g7", 1, 512, 512, 128, 128);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  TunerOptions opts;
  opts.max_generations = 64;
  const TunedResult r = Tuner(space, gpu, opts).run();
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.stats.generations, 64);
}

TEST(Tuner, EstimatesVsMeasurementsCorrelate) {
  // The property behind Fig. 11: the analytical model must rank usefully
  // across the whole space (the tuner's own measured set is top-k cream
  // with restricted range, so the sample here is uniform).
  const ChainSpec c = ChainSpec::gemm_chain("g4", 1, 512, 512, 256, 256);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  const AnalyticalModel model(gpu);
  TimingSimulator sim(gpu);
  std::vector<double> est;
  std::vector<double> meas;
  const auto& cands = space.candidates();
  for (std::size_t i = 0; i < cands.size();
       i += std::max<std::size_t>(1, cands.size() / 120)) {
    const Schedule s = space.schedule_for(cands[i]);
    const auto m = sim.measure(s);
    if (!m.ok) continue;
    est.push_back(model.estimate(s).time_s);
    meas.push_back(m.time_s);
  }
  ASSERT_GE(est.size(), 40u);
  EXPECT_GT(pearson(est, meas), 0.6);
  EXPECT_GT(spearman(est, meas), 0.5);
}

TEST(Tuner, MeasuresFarFewerThanItEstimates) {
  // The efficiency claim of §IV: estimates are cheap, measurements rare.
  const ChainSpec c = ChainSpec::gemm_chain("g8", 1, 1024, 512, 128, 128);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  const TunedResult r = Tuner(space, gpu).run();
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.stats.measurements, r.stats.estimates / 2);
  EXPECT_LT(r.stats.measurements, 120);
}

TEST(Tuner, EmptySpaceReturnsNotOk) {
  const ChainSpec c = ChainSpec::gemm_chain("tiny", 1, 512, 256, 64, 64);
  PruneOptions impossible;
  impossible.smem_limit_bytes = 64;  // nothing fits
  const SearchSpace space(c, SpaceOptions{}, impossible);
  GpuSpec gpu = a100();
  const TunedResult r = Tuner(space, gpu).run();
  EXPECT_FALSE(r.ok);
}

/// A simulator whose reported time depends on MeasureOptions::exec_threads
/// the way a real multicore wall-clock backend's would: speedup peaks at
/// 4 threads, regresses at 8 (oversubscription).  Lets the co-tune sweep
/// be asserted deterministically.
class ThreadSensitiveBackend : public SimulatorBackend {
 public:
  using SimulatorBackend::SimulatorBackend;
  [[nodiscard]] KernelMeasurement measure(
      const Schedule& s, const MeasureOptions& options = {}) const override {
    KernelMeasurement m = SimulatorBackend::measure(s, options);
    m.time_s /= speedup(options.exec_threads);
    return m;
  }
  static double speedup(int threads) {
    switch (threads) {
      case 2: return 1.8;
      case 4: return 3.0;
      case 8: return 2.5;
      default: return 1.0;  // 0/1 = single-thread baseline
    }
  }
};

TEST(Tuner, CoTunesExecThreadsAfterConvergence) {
  const ChainSpec c = ChainSpec::gemm_chain("g1t", 1, 512, 256, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);

  TunerOptions base;
  base.seed = 7;
  base.backend = std::make_shared<ThreadSensitiveBackend>(gpu);
  const TunedResult off = Tuner(space, gpu, base).run();
  ASSERT_TRUE(off.ok);
  EXPECT_EQ(off.best_threads, 0);  // sweep disabled by default

  TunerOptions sweep = base;
  sweep.exec_thread_candidates = {1, 2, 4, 8};
  const TunedResult on = Tuner(space, gpu, sweep).run();
  ASSERT_TRUE(on.ok);
  // The sweep runs AFTER convergence: the chosen tiles are unaffected.
  EXPECT_EQ(on.best.expr_id, off.best.expr_id);
  EXPECT_EQ(on.best.tiles, off.best.tiles);
  // Argmin over the candidates lands on the 3x point.
  EXPECT_EQ(on.best_threads, 4);
  EXPECT_NEAR(on.best_time_s,
              off.best_time_s / ThreadSensitiveBackend::speedup(4),
              off.best_time_s * 1e-12);
  // The sweep's measurements are accounted (one per candidate).
  EXPECT_EQ(on.stats.measurements, off.stats.measurements + 4);
}

}  // namespace
}  // namespace mcf
