// Full-suite property sweep: MCFuser must produce a valid, compilable,
// profitable fused kernel for every paper workload (Tables II and III) on
// both evaluation GPUs.
#include <gtest/gtest.h>

#include "baselines/unfused.hpp"
#include "search/mcfuser.hpp"
#include "workloads/suites.hpp"

namespace mcf {
namespace {

struct SweepCase {
  std::string workload;
  std::string gpu;
};

std::string case_name(const testing::TestParamInfo<SweepCase>& info) {
  return info.param.workload + "_" + info.param.gpu;
}

ChainSpec find_chain(const std::string& name) {
  for (const auto& c : gemm_chain_suite()) {
    if (c.name() == name) return c;
  }
  for (const auto& c : attention_suite()) {
    if (c.name() == name) return c;
  }
  ADD_FAILURE() << "unknown workload " << name;
  return ChainSpec::gemm_chain("?", 1, 16, 16, 16, 16);
}

class WorkloadSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(WorkloadSweep, FusesValidlyAndProfitably) {
  const SweepCase& p = GetParam();
  const GpuSpec gpu = gpu_by_name(p.gpu);
  const ChainSpec chain = find_chain(p.workload);

  const FusionResult r = MCFuser(gpu).fuse(chain);
  ASSERT_TRUE(r.ok()) << "fusion failed on " << chain.to_string();

  // The winner lowers within the hardware limits.
  ASSERT_TRUE(r.kernel.has_value());
  EXPECT_TRUE(r.kernel->ok()) << r.kernel->error();
  EXPECT_LE(r.kernel->smem().total_bytes, gpu.smem_per_block);

  // The winning schedule is legal and consume-complete.
  const Schedule& s = r.kernel->schedule();
  EXPECT_TRUE(s.valid());
  EXPECT_TRUE(s.consume_complete());
  EXPECT_GE(s.num_blocks(), chain.batch());

  // Fusion beats eager execution on every MBCI workload of the paper.
  const double eager = UnfusedBaseline(gpu).run(chain).time_s;
  EXPECT_LT(r.time_s(), eager) << "fusion must beat eager on " << p.workload;

  // Tuning effort stays in the paper's band (tens of measurements).
  EXPECT_LE(r.tuned.stats.measurements, 200);
  EXPECT_GE(r.tuned.stats.measurements, 5);

  // The fused kernel reads each input at least once and writes the output
  // exactly once.
  const VolumeReport vol = r.kernel->volume();
  EXPECT_GE(vol.load_bytes, static_cast<double>(chain.batch()) *
                                (chain.m() * chain.inner()[0]) * 2.0);
  EXPECT_GE(vol.store_bytes,
            static_cast<double>(chain.batch()) * chain.m() *
                chain.inner().back() * 2.0 * 0.999);
}

std::vector<SweepCase> make_cases() {
  std::vector<SweepCase> cases;
  for (const auto& c : gemm_chain_suite()) {
    cases.push_back({c.name(), "a100"});
    cases.push_back({c.name(), "rtx3080"});
  }
  for (const auto& c : attention_suite()) {
    cases.push_back({c.name(), "a100"});
    cases.push_back({c.name(), "rtx3080"});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(PaperSuites, WorkloadSweep,
                         testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace mcf
