// Differential backstop for the static verifier: compile emitted kernels
// as standalone AddressSanitizer binaries and execute every thread block
// with exactly-sized heap allocations.  The two directions under test:
//
//   verifier-safe    =>  ASan-silent   (no false negatives in the model)
//   mutated-unsafe   =>  verifier-flagged, and the one hand-picked
//                        mutant we also execute must trip ASan (the
//                        corpus injects real bugs, not verifier quirks)
//
// This is the empirical check that verify.cpp's access model matches
// what exec/codegen.cpp actually emits; a model drift shows up here as
// either a surprise ASan report or a surprise clean run.  Kept to a
// handful of compiles — each standalone -fsanitize=address build costs
// a few seconds.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dag/schedule.hpp"
#include "exec/codegen.hpp"
#include "exec/jit.hpp"
#include "ir/expr.hpp"
#include "verify/mutate.hpp"
#include "verify/verify.hpp"

namespace mcf {
namespace {

const ChainSpec& fig7_chain() {
  static const ChainSpec c =
      ChainSpec::gemm_chain("diff-fig7", 1, 128, 128, 64, 64);
  return c;
}
const ChainSpec& ragged_chain() {
  static const ChainSpec c =
      ChainSpec::gemm_chain("diff-ragged", 2, 96, 80, 48, 56);
  return c;
}
const ChainSpec& attn_chain() {
  static const ChainSpec c =
      ChainSpec::attention("diff-attn", 2, 64, 64, 32, 32);
  return c;
}

Schedule deep_schedule(const ChainSpec& c, std::vector<std::int64_t> tiles) {
  std::vector<int> order;
  order.push_back(0);
  for (int l = c.num_loops() - 1; l >= 1; --l) order.push_back(l);
  return build_schedule(c, make_deep_expr(c, order), tiles);
}

/// Emits prelude + kernel + a main() that allocates every tensor at its
/// EXACT declared size on the heap (so any out-of-bounds float lands in
/// an ASan redzone) and runs all thread blocks.
std::string emit_driver_tu(const Schedule& s, std::int64_t n_blocks) {
  const ChainSpec& c = s.chain();
  const CppKernelSource k = emit_cpp_kernel(s, "mcf_diff_kernel");
  std::ostringstream os;
  os << cpp_kernel_prelude() << k.code;
  os << "#include <cstdlib>\n"
     << "int main() {\n"
     << "  const i64 scratch_n = " << cpp_kernel_scratch_floats(s) << ";\n"
     << "  float* a = new float[" << c.batch() * c.m() * c.inner().front()
     << "]();\n";
  for (int op = 0; op < c.num_ops(); ++op) {
    os << "  float* w" << op << " = new float["
       << c.batch() * c.inner()[static_cast<std::size_t>(op)] *
              c.inner()[static_cast<std::size_t>(op) + 1]
       << "]();\n";
  }
  os << "  const float* ws[" << c.num_ops() << "] = {";
  for (int op = 0; op < c.num_ops(); ++op) os << (op ? ", w" : "w") << op;
  os << "};\n"
     << "  float* out = new float[" << c.batch() * c.m() * c.inner().back()
     << "]();\n"
     << "  float* scratch = new float[scratch_n]();\n"
     << "  mcf_diff_kernel(a, ws, out, scratch, 0, " << n_blocks << ");\n"
     << "  delete[] scratch; delete[] out; delete[] a;\n";
  for (int op = 0; op < c.num_ops(); ++op) os << "  delete[] w" << op << ";\n";
  os << "  return 0;\n}\n";
  return os.str();
}

/// Compiles `tu` with ASan and runs it; returns the process exit status
/// (0 == clean) or -1 when the compile itself failed.
int compile_and_run_asan(const std::string& tu, const std::string& tag) {
  const jit::Toolchain tc = jit::detect_toolchain();
  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "mcf_diff_" + tag + ".cpp";
  const std::string exe = dir + "mcf_diff_" + tag;
  std::ofstream(src) << tu;
  const std::string compile = tc.cxx + " -std=c++17 -O1 -fsanitize=address "
                              "-fno-math-errno -o " + exe + " " + src +
                              " 2>" + exe + ".log";
  if (std::system(compile.c_str()) != 0) {
    std::ifstream log(exe + ".log");
    std::stringstream ss;
    ss << log.rdbuf();
    ADD_FAILURE() << "asan compile failed for " << tag << ":\n" << ss.str();
    return -1;
  }
  // Silence ASan's default abort-on-error exit decoration; the exit
  // status is the verdict.
  const std::string run = "ASAN_OPTIONS=log_path=" + exe +
                          ".asan:exitcode=99 " + exe + " >/dev/null 2>&1";
  return std::system(run.c_str());
}

TEST(Differential, VerifierSafeImpliesAsanSilent) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  struct Case {
    const char* tag;
    const ChainSpec* chain;
    std::vector<std::int64_t> tiles;
  };
  // Exact-path, ragged-fringe, and online-softmax legs.
  const std::vector<Case> cases = {
      {"exact", &fig7_chain(), {32, 32, 32, 32}},
      {"fringe", &ragged_chain(), {40, 48, 28, 24}},
      {"softmax", &attn_chain(), {24, 64, 16, 16}},
  };
  for (const Case& cs : cases) {
    const Schedule s = deep_schedule(*cs.chain, cs.tiles);
    ASSERT_TRUE(s.valid()) << cs.tag;
    if (!s.consume_complete()) continue;
    const verify::VerifyReport r = verify::verify_schedule(s);
    ASSERT_TRUE(r.safe()) << cs.tag << ": " << r.to_json();
    EXPECT_EQ(compile_and_run_asan(emit_driver_tu(s, r.n_blocks), cs.tag), 0)
        << cs.tag << ": verifier-safe kernel tripped ASan (model drift "
           "between verify.cpp and codegen.cpp)";
  }
}

TEST(Differential, FlaggedMutantTripsAsan) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  const Schedule base = deep_schedule(fig7_chain(), {32, 32, 32, 32});
  ASSERT_TRUE(verify::verify_schedule(base).safe());
  const auto corpus = verify::mutation_corpus(base, 13, 64);
  ASSERT_FALSE(corpus.empty());
  // Every mutant must be verifier-flagged (the cheap direction)...
  const verify::Mutant* exec_pick = nullptr;
  for (const verify::Mutant& m : corpus) {
    const verify::VerifyReport r = verify::verify_schedule(m.schedule);
    ASSERT_FALSE(r.safe()) << m.name << " (" << m.detail << ")";
    // ... and we execute one whose witness is a WRITE that leaves its
    // heap allocation entirely (RegionAlias stays inside the scratch
    // block, which ASan cannot see; a hard overrun lands in a redzone).
    if (exec_pick == nullptr) {
      for (const auto& v : r.violations) {
        if (v.access == "write" &&
            (v.kind == verify::ViolationKind::ScratchOverflow ||
             v.kind == verify::ViolationKind::GlobalOutOfBounds)) {
          exec_pick = &m;
          break;
        }
      }
    }
  }
  ASSERT_NE(exec_pick, nullptr) << "corpus produced no write-overrun mutant";
  const verify::VerifyReport r = verify::verify_schedule(exec_pick->schedule);
  const int status =
      compile_and_run_asan(emit_driver_tu(exec_pick->schedule, r.n_blocks),
                           "mutant");
  EXPECT_NE(status, 0) << exec_pick->name << " (" << exec_pick->detail
                       << "): verifier flagged it but ASan ran clean";
}

}  // namespace
}  // namespace mcf
