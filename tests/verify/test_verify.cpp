// Static bounds verifier (src/verify/): zero false positives across the
// conformance workload matrix, a 100% catch rate on the seeded mutation
// corpus, concrete witnesses, overflow detection on astronomically-sized
// chains, the MCFUSER_VERIFY gate policy, and the jit pre-compile gate.
#include "verify/verify.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "dag/schedule_internal.hpp"
#include "exec/codegen.hpp"
#include "exec/jit.hpp"
#include "gpu/spec.hpp"
#include "ir/expr.hpp"
#include "measure/backend.hpp"
#include "search/space.hpp"
#include "verify/mutate.hpp"

namespace mcf {
namespace {

// Static storage: a Schedule keeps a ChainSpec pointer.
const ChainSpec& fig7_chain() {
  static const ChainSpec c =
      ChainSpec::gemm_chain("fig7-mini", 1, 128, 128, 64, 64);
  return c;
}
const ChainSpec& ragged_chain() {
  static const ChainSpec c = ChainSpec::gemm_chain("ragged", 4, 96, 80, 48, 56);
  return c;
}
const ChainSpec& attn_chain() {
  static const ChainSpec c = ChainSpec::attention("attn-mini", 2, 64, 64, 32, 32);
  return c;
}
const ChainSpec& gelu3_chain() {
  static const ChainSpec c("gelu3", 2, 96, {48, 96, 48},
                           {Epilogue::Gelu, Epilogue::None});
  return c;
}

std::vector<const ChainSpec*> matrix() {
  return {&fig7_chain(), &ragged_chain(), &attn_chain(), &gelu3_chain()};
}

Schedule deep_schedule(const ChainSpec& c, std::vector<std::int64_t> tiles) {
  std::vector<int> order;
  order.push_back(0);
  for (int l = c.num_loops() - 1; l >= 1; --l) order.push_back(l);
  return build_schedule(c, make_deep_expr(c, order), tiles);
}

TEST(Verify, SafeScheduleReportsClean) {
  const Schedule s = deep_schedule(fig7_chain(), {32, 32, 32, 32});
  ASSERT_TRUE(s.valid() && s.consume_complete());
  const verify::VerifyReport r = verify::verify_schedule(s);
  EXPECT_TRUE(r.checked);
  EXPECT_TRUE(r.safe()) << r.to_json();
  EXPECT_GT(r.n_blocks, 0);
  EXPECT_EQ(r.scratch_floats, cpp_kernel_scratch_floats(s));
  EXPECT_GT(r.sites_checked, 0);
  EXPECT_EQ(verify::verify_gate_error(s), "");
}

TEST(Verify, NotLowerableSchedulesAreSkippedNotFlagged) {
  Schedule s = deep_schedule(fig7_chain(), {32, 32, 32, 32});
  ScheduleBuilderAccess::set_valid(s, false);
  const verify::VerifyReport r = verify::verify_schedule(s);
  EXPECT_FALSE(r.checked);
  EXPECT_FALSE(r.safe());
  EXPECT_NE(r.skip_reason, "");
  // The gate does not own unlowerable schedules; compile gates do.
  EXPECT_EQ(verify::verify_gate_error(s), "");
}

// Zero false positives across the tuner's own candidate grids: every
// schedule the search space can hand the measurement layer proves safe.
TEST(Verify, TunerCandidateGridHasZeroFalsePositives) {
  PruneOptions prune;
  prune.smem_limit_bytes = a100().smem_per_block;
  for (const ChainSpec* c : matrix()) {
    const SearchSpace space(*c, SpaceOptions{}, prune);
    const auto& cands = space.candidates();
    ASSERT_FALSE(cands.empty()) << c->name();
    // Even spread including both grid ends (corner-heavy tilings).
    const std::size_t take = std::min<std::size_t>(cands.size(), 24);
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t idx =
          take <= 1 ? 0 : i * (cands.size() - 1) / (take - 1);
      const Schedule s = space.schedule_for(cands[idx]);
      const verify::VerifyReport r = verify::verify_schedule(s);
      EXPECT_TRUE(r.checked) << c->name() << " candidate " << idx;
      EXPECT_TRUE(r.safe())
          << c->name() << " candidate " << idx << ": " << r.to_json();
    }
  }
}

// Ragged hand-picked tiles force every fringe path (fr/fc clamps, the
// zero-filled rows, partial store columns); all must still prove safe.
TEST(Verify, RaggedFringeTilesAreSafe) {
  for (const ChainSpec* c : matrix()) {
    for (const double frac : {1.0 / 8, 1.0 / 2, 7.0 / 8}) {
      std::vector<std::int64_t> tiles;
      for (int l = 0; l < c->num_loops(); ++l) {
        tiles.push_back(std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   static_cast<double>(c->loop_dim(l)) * frac)));
      }
      const Schedule s = deep_schedule(*c, tiles);
      ASSERT_TRUE(s.valid());
      if (!s.consume_complete()) continue;  // Rule-2 gate owns these
      const verify::VerifyReport r = verify::verify_schedule(s);
      EXPECT_TRUE(r.safe()) << c->name() << " frac " << frac << ": "
                            << r.to_json();
    }
  }
}

TEST(Mutate, CorpusIsFullyFlagged) {
  std::size_t total = 0;
  for (const ChainSpec* c : matrix()) {
    std::vector<std::int64_t> tiles(static_cast<std::size_t>(c->num_loops()));
    for (int l = 0; l < c->num_loops(); ++l) {
      tiles[static_cast<std::size_t>(l)] = std::max<std::int64_t>(
          16, c->loop_dim(l) / 2);
    }
    const Schedule base = deep_schedule(*c, tiles);
    ASSERT_TRUE(base.valid() && base.consume_complete()) << c->name();
    ASSERT_TRUE(verify::verify_schedule(base).safe()) << c->name();
    for (const verify::Mutant& m : verify::mutation_corpus(base, 7, 64)) {
      ++total;
      const verify::VerifyReport r = verify::verify_schedule(m.schedule);
      EXPECT_TRUE(r.checked) << c->name() << " " << m.name;
      EXPECT_FALSE(r.safe())
          << c->name() << ": mutant '" << m.name << "' (" << m.detail
          << ") escaped the verifier";
    }
  }
  // The corpus generator found real work to do.
  EXPECT_GE(total, 8u);
}

TEST(Mutate, CorpusIsSeededAndDeterministic) {
  const Schedule base = deep_schedule(fig7_chain(), {32, 32, 32, 32});
  const auto a = verify::mutation_corpus(base, 123, 16);
  const auto b = verify::mutation_corpus(base, 123, 16);
  const auto c = verify::mutation_corpus(base, 321, 16);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].name, b[i].name);
  ASSERT_EQ(a.size(), c.size());  // same pool, different order
}

TEST(Mutate, WitnessIsConcrete) {
  const Schedule base = deep_schedule(fig7_chain(), {32, 32, 32, 32});
  const auto corpus = verify::mutation_corpus(base, 7, 64);
  ASSERT_FALSE(corpus.empty());
  bool saw_violation = false;
  for (const verify::Mutant& m : corpus) {
    const verify::VerifyReport r = verify::verify_schedule(m.schedule);
    if (r.violations.empty()) continue;
    saw_violation = true;
    const verify::Violation& v = r.violations.front();
    EXPECT_GE(v.block, 0);
    EXPECT_LT(v.block, r.n_blocks);
    EXPECT_EQ(v.indices.size(),
              static_cast<std::size_t>(base.chain().num_loops()));
    EXPECT_TRUE(v.offset < v.lo || v.offset >= v.hi)
        << v.offset << " vs [" << v.lo << ", " << v.hi << ")";
    EXPECT_NE(v.message.find(v.buffer), std::string::npos) << v.message;
    EXPECT_NE(v.message.find(verify::violation_kind_name(v.kind)),
              std::string::npos)
        << v.message;
    const std::string j = v.to_json();
    EXPECT_NE(j.find("\"kind\""), std::string::npos);
    EXPECT_NE(j.find("\"block\""), std::string::npos);
    EXPECT_NE(j.find("\"indices\""), std::string::npos);
  }
  EXPECT_TRUE(saw_violation);
}

// batch * m * cols == 2^63 overflows the kernel's long long before a
// single block runs; the verifier must refuse at setup, not wrap.
TEST(Verify, HugeChainOffsetsFlaggedAsOverflow) {
  static const ChainSpec c("huge", std::int64_t{1} << 30, std::int64_t{1} << 20,
                           {16, 16, 8192});
  ASSERT_TRUE(c.valid()) << c.validation_error();
  const Schedule s = deep_schedule(c, {16, 16, 16, 16});
  ASSERT_TRUE(s.valid() && s.consume_complete());
  const verify::VerifyReport r = verify::verify_schedule(s);
  ASSERT_TRUE(r.checked);
  ASSERT_FALSE(r.safe());
  bool overflow = false;
  for (const auto& v : r.violations) {
    overflow |= v.kind == verify::ViolationKind::IndexOverflow;
  }
  EXPECT_TRUE(overflow) << r.to_json();
  EXPECT_EQ(verify::verify_gate_error(s).rfind(verify::kGateErrorPrefix, 0), 0u);
}

TEST(Verify, StatementContextsCoverAllStatements) {
  const Schedule s = deep_schedule(fig7_chain(), {32, 32, 32, 32});
  const auto ctxs = verify::statement_contexts(s);
  EXPECT_EQ(ctxs.size(), s.statements_in_order().size());
  std::uint32_t block_mask = 0;
  for (const int l : s.block_loops()) block_mask |= 1u << l;
  for (const auto& ctx : ctxs) {
    ASSERT_NE(ctx.stmt, nullptr);
    EXPECT_EQ(ctx.active_mask & block_mask, block_mask);
  }
}

TEST(Verify, EnvKnobControlsGate) {
  ::setenv("MCFUSER_VERIFY", "0", 1);
  EXPECT_FALSE(verify::verify_enabled());
  ::setenv("MCFUSER_VERIFY", "1", 1);
  EXPECT_TRUE(verify::verify_enabled());
  ::unsetenv("MCFUSER_VERIFY");
#ifdef NDEBUG
  EXPECT_FALSE(verify::verify_enabled());
#else
  EXPECT_TRUE(verify::verify_enabled());
#endif
}

// The jit refuses to hand an unsafe schedule to the compiler: resolve
// fails with the "verify: " prefix and the measure backend surfaces
// MeasureFailKind::VerifyRejected instead of silently degrading to the
// interpreter.
TEST(Verify, JitGateRefusesUnsafeKernels) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  const Schedule base = deep_schedule(fig7_chain(), {32, 32, 32, 32});
  const auto corpus = verify::mutation_corpus(base, 11, 4);
  ASSERT_FALSE(corpus.empty());
  const Schedule& unsafe = corpus.front().schedule;

  ::setenv("MCFUSER_VERIFY", "1", 1);
  std::string err;
  const jit::ResolvedKernel rk = jit::resolve_kernel(
      unsafe, "verify-gate-test", jit::detect_toolchain(), &err);
  EXPECT_FALSE(rk.ok());
  EXPECT_EQ(err.rfind(verify::kGateErrorPrefix, 0), 0u) << err;

  const JitBackend backend(a100(), {});
  const KernelMeasurement m = backend.measure(unsafe, {});
  EXPECT_FALSE(m.ok);
  EXPECT_EQ(m.fail_kind, MeasureFailKind::VerifyRejected) << m.fail_reason;
  EXPECT_EQ(m.fail_reason.rfind(verify::kGateErrorPrefix, 0), 0u)
      << m.fail_reason;

  // The safe base still compiles through the same gate.
  const KernelMeasurement ok = backend.measure(base, {});
  EXPECT_TRUE(ok.ok) << ok.fail_reason;
  ::unsetenv("MCFUSER_VERIFY");
}

}  // namespace
}  // namespace mcf
