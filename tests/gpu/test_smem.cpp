// Shared-memory estimate (eq. 1) vs the actual allocation plan — the
// machinery behind pruning Rule 4 and Fig. 10.
#include <gtest/gtest.h>

#include "gpu/smem.hpp"

namespace mcf {
namespace {

ChainSpec small_chain() { return ChainSpec::gemm_chain("s", 1, 128, 128, 64, 64); }

TEST(SmemEstimate, Eq1SumsSingleTileFootprints) {
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 32, 64, 64});
  // A 64x32 + B 32x64 + C 64x64 + D 64x64 + E 64x64, fp16.
  const std::int64_t expected =
      (64 * 32 + 32 * 64 + 64 * 64 + 64 * 64 + 64 * 64) * 2;
  EXPECT_EQ(smem_estimate(s), expected);
}

TEST(SmemEstimate, DtypeScales) {
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 32, 64, 64});
  EXPECT_EQ(smem_estimate(s, 4), 2 * smem_estimate(s, 2));
}

TEST(SmemPlan, ActualExceedsEstimateWithDoubleBuffering) {
  // Streamed loads double-buffer; eq. (1) does not know that — this is
  // the source of Fig. 10's underestimation band.
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 32, 64, 64});
  const SmemPlan plan = plan_smem(s);
  EXPECT_GT(plan.total_bytes, smem_estimate(s));
}

TEST(SmemPlan, NoDoubleBufferForOneShotLoads) {
  const ChainSpec c = small_chain();
  // All extents 1: every load executes once.
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{128, 64, 128, 64});
  const SmemPlan plan = plan_smem(s);
  for (const auto& b : plan.buffers) EXPECT_FALSE(b.double_buffered);
}

TEST(SmemPlan, ReuseCanUndercutEstimate) {
  // Fig. 10 quadrant IV: disjoint live ranges alias, so the actual
  // allocation can be *smaller* than eq. (1)'s sum.
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{128, 64, 128, 64});
  SmemOptions with;
  SmemOptions without;
  without.reuse = false;
  const SmemPlan p_with = plan_smem(s, with);
  const SmemPlan p_without = plan_smem(s, without);
  EXPECT_LE(p_with.total_bytes, p_without.total_bytes);
}

TEST(SmemPlan, ResidencyMultipliesOutputBuffer) {
  const ChainSpec c = ChainSpec::gemm_chain("r", 1, 128, 128, 64, 256);
  const Schedule coarse = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                         std::vector<std::int64_t>{64, 64, 64, 256});
  const Schedule fine = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                       std::vector<std::int64_t>{64, 64, 64, 64});
  auto out_bytes = [&](const Schedule& s) {
    for (const auto& b : plan_smem(s).buffers) {
      if (b.tensor == c.output_tensor()) return b.bytes;
    }
    return std::int64_t{0};
  };
  // 4 resident 64-wide tiles == one 256-wide tile (same bytes, modulo
  // bank padding granularity).
  EXPECT_NEAR(static_cast<double>(out_bytes(fine)),
              static_cast<double>(out_bytes(coarse)), 4096.0);
}

TEST(SmemPlan, BankPaddingAddsRowBytes) {
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  SmemOptions padded;
  SmemOptions flat;
  flat.bank_pad = false;
  EXPECT_GT(plan_smem(s, padded).total_bytes, plan_smem(s, flat).total_bytes);
}

TEST(SmemPlan, SoftmaxStatsReserved) {
  const ChainSpec attn = ChainSpec::attention("a", 1, 128, 128, 64, 64);
  const Schedule s = build_schedule(attn, make_deep_expr(attn, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const SmemPlan plan = plan_smem(s);
  EXPECT_EQ(plan.stats_bytes, 2 * 64 * 4);  // two fp32 vectors of Tm
}

TEST(SmemPlan, BuffersDoNotOverlapWhenLive) {
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 32, 64, 64});
  const SmemPlan plan = plan_smem(s);
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.buffers.size(); ++j) {
      const auto& a = plan.buffers[i];
      const auto& b = plan.buffers[j];
      const bool live_overlap =
          !(a.live_end < b.live_begin || b.live_end < a.live_begin);
      const bool mem_overlap = a.offset < b.offset + b.bytes &&
                               b.offset < a.offset + a.bytes;
      EXPECT_FALSE(live_overlap && mem_overlap)
          << "buffers " << i << "/" << j << " collide";
    }
  }
}

TEST(SmemPlan, ToStringListsBuffers) {
  const ChainSpec c = small_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 32, 64, 64});
  const SmemPlan plan = plan_smem(s);
  const std::string str = plan.to_string(s);
  EXPECT_NE(str.find("total="), std::string::npos);
  EXPECT_NE(str.find("A:"), std::string::npos);
}

}  // namespace
}  // namespace mcf
