// Timing simulator invariants: efficiency curves, bandwidth/compute
// asymptotes, occupancy and determinism.
#include <gtest/gtest.h>

#include <algorithm>

#include "gpu/timing.hpp"

#include "dag/volume.hpp"

namespace mcf {
namespace {

TEST(GpuSpec, Presets) {
  const GpuSpec a = a100();
  EXPECT_EQ(a.num_sms, 108);
  EXPECT_NEAR(a.flops_per_byte(), 312e12 / 1555e9, 1e-9);
  const GpuSpec r = rtx3080();
  EXPECT_EQ(r.name, "RTX3080");
  EXPECT_LT(r.peak_flops, a.peak_flops);
  EXPECT_EQ(gpu_by_name("a100").num_sms, 108);
}

TEST(Timing, BandwidthEfficiencyMonotonic) {
  double prev = 0.0;
  for (const double row : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    const double eff = TimingSimulator::bandwidth_efficiency(row);
    EXPECT_GE(eff, prev);
    prev = eff;
  }
  EXPECT_DOUBLE_EQ(TimingSimulator::bandwidth_efficiency(128.0), 1.0);
  EXPECT_DOUBLE_EQ(TimingSimulator::bandwidth_efficiency(4096.0), 1.0);
}

TEST(Timing, MmaEfficiencyPrefersLargerTiles) {
  EXPECT_LT(TimingSimulator::mma_efficiency(16, 16, 16),
            TimingSimulator::mma_efficiency(64, 64, 64));
  EXPECT_LE(TimingSimulator::mma_efficiency(64, 64, 64),
            TimingSimulator::mma_efficiency(128, 64, 128));
  EXPECT_LE(TimingSimulator::mma_efficiency(128, 64, 128), 1.0);
}

TEST(Timing, PipelineEfficiencyApproachesOne) {
  EXPECT_LT(TimingSimulator::pipeline_efficiency(1), 0.5);
  EXPECT_GT(TimingSimulator::pipeline_efficiency(64), 0.95);
  EXPECT_LT(TimingSimulator::pipeline_efficiency(4),
            TimingSimulator::pipeline_efficiency(16));
}

TEST(Timing, BandwidthBoundKernelScalesWithBytes) {
  const TimingSimulator sim(a100());
  MeasureOptions opts;
  opts.noise_amp = 0.0;
  opts.include_launch = false;
  const auto m1 = sim.measure_raw(100e6, 1e6, 1000, 32 * 1024, 1.0, 1.0, 0, opts);
  const auto m2 = sim.measure_raw(200e6, 1e6, 1000, 32 * 1024, 1.0, 1.0, 0, opts);
  ASSERT_TRUE(m1.ok && m2.ok);
  EXPECT_NEAR(m2.time_s / m1.time_s, 2.0, 0.05);
}

TEST(Timing, ComputeBoundKernelScalesWithFlops) {
  const TimingSimulator sim(a100());
  MeasureOptions opts;
  opts.noise_amp = 0.0;
  opts.include_launch = false;
  const auto m1 = sim.measure_raw(1e6, 1e12, 1000, 32 * 1024, 1.0, 1.0, 0, opts);
  const auto m2 = sim.measure_raw(1e6, 2e12, 1000, 32 * 1024, 1.0, 1.0, 0, opts);
  EXPECT_NEAR(m2.time_s / m1.time_s, 2.0, 0.05);
}

TEST(Timing, FewBlocksUnderutilise) {
  const TimingSimulator sim(a100());
  MeasureOptions opts;
  opts.noise_amp = 0.0;
  opts.include_launch = false;
  const auto few = sim.measure_raw(1e6, 1e12, 4, 32 * 1024, 1.0, 1.0, 0, opts);
  const auto many = sim.measure_raw(1e6, 1e12, 4096, 32 * 1024, 1.0, 1.0, 0, opts);
  EXPECT_GT(few.time_s, 5.0 * many.time_s);
  EXPECT_LT(few.utilization, many.utilization);
}

TEST(Timing, SmemLimitsOccupancy) {
  const TimingSimulator sim(a100());
  MeasureOptions opts;
  opts.noise_amp = 0.0;
  const auto small = sim.measure_raw(1e8, 1e10, 4096, 16 * 1024, 1.0, 1.0, 0, opts);
  const auto big = sim.measure_raw(1e8, 1e10, 4096, 150 * 1024, 1.0, 1.0, 0, opts);
  EXPECT_GT(small.blocks_per_sm, big.blocks_per_sm);
}

TEST(Timing, SmemOverflowFailsCompile) {
  const TimingSimulator sim(a100());
  const auto m = sim.measure_raw(1e6, 1e6, 16, 200 * 1024, 1.0, 1.0, 0, {});
  EXPECT_FALSE(m.ok);
  EXPECT_NE(m.fail_reason.find("shared memory"), std::string::npos);
}

TEST(Timing, LaunchOverheadAdded) {
  const TimingSimulator sim(a100());
  MeasureOptions with;
  with.noise_amp = 0.0;
  MeasureOptions without = with;
  without.include_launch = false;
  const auto m1 = sim.measure_raw(1e6, 1e6, 128, 1024, 1.0, 1.0, 0, with);
  const auto m2 = sim.measure_raw(1e6, 1e6, 128, 1024, 1.0, 1.0, 0, without);
  EXPECT_NEAR(m1.time_s - m2.time_s, a100().launch_overhead_s, 1e-9);
}

TEST(Timing, NoiseIsDeterministicAndBounded) {
  const TimingSimulator sim(a100());
  MeasureOptions opts;
  opts.noise_amp = 0.03;
  const auto m1 = sim.measure_raw(5e6, 5e9, 512, 8 * 1024, 0.9, 0.8, 100, opts);
  const auto m2 = sim.measure_raw(5e6, 5e9, 512, 8 * 1024, 0.9, 0.8, 100, opts);
  EXPECT_DOUBLE_EQ(m1.time_s, m2.time_s);
  MeasureOptions clean = opts;
  clean.noise_amp = 0.0;
  const auto m0 = sim.measure_raw(5e6, 5e9, 512, 8 * 1024, 0.9, 0.8, 100, clean);
  EXPECT_NEAR(m1.time_s / m0.time_s, 1.0, 0.031);
}

TEST(Timing, SameNoiseSeedIsBitIdenticalOnSchedules) {
  // The noise contract, part 1: the "measurement noise" is a pure
  // function of (seed, schedule, gpu) — same seed, same time, bit for
  // bit, through the full measure() path.
  const ChainSpec c = ChainSpec::gemm_chain("seed", 1, 512, 256, 64, 64);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const TimingSimulator sim(a100());
  MeasureOptions opts;
  opts.noise_seed = 0xdecafbad;
  const auto m1 = sim.measure(s, opts);
  const auto m2 = sim.measure(s, opts);
  ASSERT_TRUE(m1.ok && m2.ok);
  EXPECT_EQ(m1.time_s, m2.time_s);
}

TEST(Timing, DifferentNoiseSeedsPerturbWithinAmplitude) {
  // Part 2: a different seed gives a different draw, and every draw lands
  // inside [1 - amp, 1 + amp] of the noiseless time.
  const ChainSpec c = ChainSpec::gemm_chain("amp", 1, 512, 256, 64, 64);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const TimingSimulator sim(a100());
  MeasureOptions clean;
  clean.noise_amp = 0.0;
  const double t0 = sim.measure(s, clean).time_s;
  MeasureOptions noisy;
  noisy.noise_amp = 0.04;
  bool any_differs = false;
  double prev = 0.0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    noisy.noise_seed = seed;
    const auto m = sim.measure(s, noisy);
    ASSERT_TRUE(m.ok);
    EXPECT_GE(m.time_s, t0 * (1.0 - noisy.noise_amp));
    EXPECT_LE(m.time_s, t0 * (1.0 + noisy.noise_amp));
    if (seed > 1 && m.time_s != prev) any_differs = true;
    prev = m.time_s;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Timing, DecompositionSumsToPreNoiseTotal) {
  // Part 3: the decomposition fields are pre-noise and account for the
  // whole time.  With overlap, the executed part lies between
  // max(mem, comp) (perfect overlap) and mem + comp (none); the noisy
  // total is the pre-noise total scaled by the bounded noise factor.
  const ChainSpec c = ChainSpec::gemm_chain("sum", 1, 512, 512, 128, 128);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const TimingSimulator sim(a100());
  MeasureOptions opts;
  opts.noise_amp = 0.025;
  opts.noise_seed = 99;
  const auto m = sim.measure(s, opts);
  ASSERT_TRUE(m.ok);
  EXPECT_GT(m.mem_time_s, 0.0);
  EXPECT_GT(m.comp_time_s, 0.0);
  EXPECT_GE(m.issue_time_s, 0.0);
  EXPECT_GT(m.launch_time_s, 0.0);  // include_launch defaults to true
  const double overlap_lo = std::max(m.mem_time_s, m.comp_time_s);
  const double overlap_hi = m.mem_time_s + m.comp_time_s;
  const double lo =
      (overlap_lo + m.issue_time_s + m.launch_time_s) * (1.0 - opts.noise_amp);
  const double hi =
      (overlap_hi + m.issue_time_s + m.launch_time_s) * (1.0 + opts.noise_amp);
  EXPECT_GE(m.time_s, lo);
  EXPECT_LE(m.time_s, hi);
  // And with noise off the total is exact: executed time + issue + launch
  // where executed = max + leak * min for a fixed leak fraction in (0,1).
  MeasureOptions clean = opts;
  clean.noise_amp = 0.0;
  const auto m0 = sim.measure(s, clean);
  const double executed = m0.time_s - m0.issue_time_s - m0.launch_time_s;
  const double leak =
      (executed - std::max(m0.mem_time_s, m0.comp_time_s)) /
      std::min(m0.mem_time_s, m0.comp_time_s);
  EXPECT_GT(leak, 0.0);
  EXPECT_LT(leak, 1.0);
}

TEST(Timing, ScheduleMeasureEndToEnd) {
  const ChainSpec c = ChainSpec::gemm_chain("t", 1, 512, 256, 64, 64);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const TimingSimulator sim(a100());
  const auto m = sim.measure(s);
  ASSERT_TRUE(m.ok);
  EXPECT_GT(m.time_s, 0.0);
  EXPECT_GT(m.smem_bytes, 0);
  EXPECT_EQ(m.n_blocks, s.num_blocks());
}

TEST(Timing, MemoryBoundShapeIsBandwidthDominated) {
  // Skinny chain (tall M, tiny N/K/H): even fused it stays bandwidth
  // bound — streaming A dominates the little compute there is.  The
  // comparison uses peak-rate times (the op/byte definition of §II-A);
  // the simulator's utilization adjustments apply to both sides.
  const ChainSpec c = ChainSpec::gemm_chain("mb", 1, 8192, 16, 16, 16);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{128, 16, 16, 16});
  const GpuSpec gpu = a100();
  const VolumeReport vol = analyze_volume(s);
  EXPECT_GT(vol.total_bytes() / gpu.mem_bandwidth,
            vol.total_flops() / gpu.peak_flops);
  const auto m = TimingSimulator(gpu).measure(s);
  ASSERT_TRUE(m.ok);
}

TEST(Timing, RtxSlowerThanA100) {
  const ChainSpec c = ChainSpec::gemm_chain("x", 1, 1024, 1024, 256, 256);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  MeasureOptions opts;
  opts.noise_amp = 0.0;
  const auto ma = TimingSimulator(a100()).measure(s, opts);
  const auto mr = TimingSimulator(rtx3080()).measure(s, opts);
  ASSERT_TRUE(ma.ok && mr.ok);
  EXPECT_GT(mr.time_s, ma.time_s);
}

}  // namespace
}  // namespace mcf
