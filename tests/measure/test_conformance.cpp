// Cross-backend conformance suite: ONE parameterized harness asserting the
// MeasureBackend contract (docs/measurement.md) against every registered
// backend.  A backend that passes this suite can be handed to the tuner.
//
// The contract:
//   * feasible schedule  -> ok=true, finite time_s > 0, honest n_blocks;
//   * infeasible schedule-> ok=false, non-empty fail_reason, no abort;
//   * deterministic()    -> repeated measure() is bit-identical;
//   * repeat/trim knobs  -> variance of the reported time never grows
//                          with more repeats (checked on a scripted clock
//                          so the property is tested, not the weather);
//   * thread safety      -> concurrent measure() from a pool matches the
//                          serial results;
//   * usefulness         -> simulator and interpreter times rank the fig7
//                          workload family consistently.
#include "measure/backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "gpu/smem.hpp"
#include "search/space.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace mcf {
namespace {

// ---- shared fixtures --------------------------------------------------------

/// Fig. 7 workload family, scaled down so the interpreter backend (which
/// really executes the kernels) fits a test budget even under sanitizers.
/// Static storage: Schedule/SearchSpace hold a ChainSpec pointer, so the
/// chains must outlive every schedule the tests build from them.
const std::vector<ChainSpec>& fig7_family() {
  static const std::vector<ChainSpec> chains = {
      ChainSpec::gemm_chain("fig7-mini", 1, 128, 128, 64, 64),
      ChainSpec::gemm_chain("fig7-mini-wide", 1, 256, 128, 32, 32),
      ChainSpec::attention("fig7-mini-attn", 2, 64, 64, 32, 32),
  };
  return chains;
}

SearchSpace make_space(const ChainSpec& c, const GpuSpec& gpu) {
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  return SearchSpace(c, SpaceOptions{}, prune);
}

/// A deterministic spread of feasible schedules across one space.  The
/// pruned space still holds quadrant-II candidates (rule-4 slack) whose
/// actual smem plan fails at lowering; scan forward past them so the
/// harness only hands backends schedules they are required to measure.
std::vector<Schedule> feasible_schedules(const SearchSpace& space,
                                         const GpuSpec& gpu) {
  const auto& cands = space.candidates();
  std::vector<Schedule> out;
  std::set<std::size_t> taken;
  for (const std::size_t start :
       {cands.size() / 8, cands.size() / 2, (7 * cands.size()) / 8}) {
    for (std::size_t idx = std::min(start, cands.size() - 1);
         idx < cands.size(); ++idx) {
      if (taken.count(idx) != 0) continue;
      Schedule s = space.schedule_for(cands[idx]);
      if (plan_smem(s).total_bytes > gpu.smem_per_block) continue;
      taken.insert(idx);
      out.push_back(std::move(s));
      break;
    }
  }
  EXPECT_FALSE(out.empty());
  return out;
}

/// Full-dimension tiles blow way past any real per-block shared-memory
/// limit — the paper's quadrant-II candidates, rejected at lowering.
Schedule infeasible_schedule(const GpuSpec& gpu) {
  static const ChainSpec c =
      ChainSpec::gemm_chain("too-big", 1, 512, 512, 256, 256);
  Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                              std::vector<std::int64_t>{512, 512, 256, 256});
  EXPECT_GT(plan_smem(s).total_bytes, gpu.smem_per_block);
  return s;
}

/// Scripted monotonic clock: every timed sample gets a deterministic
/// jittery duration (one large outlier in eight), so the repeat/trim
/// estimator is exercised without depending on real scheduler noise.
struct ScriptedClock {
  std::shared_ptr<std::uint64_t> seq = std::make_shared<std::uint64_t>(0);
  std::shared_ptr<double> now = std::make_shared<double>(0.0);

  std::function<double()> fn() {
    auto seq_p = seq;
    auto now_p = now;
    return [seq_p, now_p] {
      const std::uint64_t tick = (*seq_p)++;
      // Odd ticks close a sample: advance by ~1ms, jittered +-30%, with
      // every 8th sample a 5x outlier (what the trim is for).
      if (tick % 2 == 1) {
        double dt = 1e-3 * hash_noise(splitmix64(tick), 0.3);
        if ((tick / 2) % 8 == 7) dt *= 5.0;
        *now_p += dt;
      }
      return *now_p;
    };
  }
};

// ---- the parameterized harness ----------------------------------------------

struct BackendCase {
  const char* label;
  /// Registry-faithful instance (contract, determinism, thread safety).
  std::shared_ptr<MeasureBackend> (*make)(const GpuSpec&);
  /// Sampling-controlled instance for the repeat-variance law: backends
  /// with a repeats knob get it wired to a scripted clock; the rest
  /// ignore `repeats` (their variance is identically zero).
  std::shared_ptr<MeasureBackend> (*make_sampling)(const GpuSpec&, int repeats);
};

std::shared_ptr<MeasureBackend> registry_make(const char* name,
                                              const GpuSpec& gpu) {
  auto backend = BackendRegistry::instance().create(name, gpu);
  EXPECT_NE(backend, nullptr) << name << " not registered";
  return backend;
}

const BackendCase kCases[] = {
    {"sim", [](const GpuSpec& g) { return registry_make("sim", g); },
     [](const GpuSpec& g, int) { return registry_make("sim", g); }},
    {"interp", [](const GpuSpec& g) { return registry_make("interp", g); },
     [](const GpuSpec& g, int repeats) -> std::shared_ptr<MeasureBackend> {
       InterpreterBackendOptions opt;
       opt.repeats = repeats;
       opt.trim_fraction = 0.25;
       opt.warmup = 0;
       opt.clock = ScriptedClock{}.fn();
       return std::make_shared<InterpreterBackend>(g, opt);
     }},
    {"cached-sim",
     [](const GpuSpec& g) { return registry_make("cached-sim", g); },
     [](const GpuSpec& g, int) { return registry_make("cached-sim", g); }},
    // Real native-code measurement; where no host toolchain exists (or
    // under sanitizer builds) it transparently falls back to interpreter
    // execution, so the contract holds in every environment.
    {"jit", [](const GpuSpec& g) { return registry_make("jit", g); },
     [](const GpuSpec& g, int repeats) -> std::shared_ptr<MeasureBackend> {
       JitBackendOptions opt;
       opt.repeats = repeats;
       opt.trim_fraction = 0.25;
       opt.warmup = 0;
       opt.clock = ScriptedClock{}.fn();
       return std::make_shared<JitBackend>(g, opt);
     }},
    // Crash-isolated measurement in sandbox worker processes; degrades
    // to the in-process jit/interp path where sandboxing is unavailable.
    // The sampling instance forces that fallback (disable_sandbox) so
    // the scripted clock drives the arithmetic — worker-side timings use
    // the worker's own steady clock, which a test cannot script.
    {"jit-isolated",
     [](const GpuSpec& g) { return registry_make("jit-isolated", g); },
     [](const GpuSpec& g, int repeats) -> std::shared_ptr<MeasureBackend> {
       IsolatedJitBackendOptions opt;
       opt.repeats = repeats;
       opt.trim_fraction = 0.25;
       opt.warmup = 0;
       opt.clock = ScriptedClock{}.fn();
       opt.disable_sandbox = true;
       return std::make_shared<IsolatedJitBackend>(g, opt);
     }},
};

class ConformanceTest : public ::testing::TestWithParam<BackendCase> {};

TEST(MeasureBackendRegistry, SuiteCoversEveryRegisteredBackend) {
  // A new backend must join this suite: registering it without adding a
  // BackendCase is a conformance failure by construction.
  std::set<std::string> covered;
  for (const auto& c : kCases) covered.insert(c.label);
  const auto names = BackendRegistry::instance().names();
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), covered);
}

TEST_P(ConformanceTest, MeasuresFeasibleSchedules) {
  const GpuSpec gpu = a100();
  const auto backend = GetParam().make(gpu);
  EXPECT_EQ(backend->spec().name, gpu.name);
  for (const ChainSpec& chain : fig7_family()) {
    const SearchSpace space = make_space(chain, gpu);
    for (const Schedule& s : feasible_schedules(space, gpu)) {
      const KernelMeasurement m = backend->measure(s);
      ASSERT_TRUE(m.ok) << chain.name() << ": " << m.fail_reason;
      EXPECT_TRUE(std::isfinite(m.time_s));
      EXPECT_GT(m.time_s, 0.0);
      EXPECT_EQ(m.n_blocks, s.num_blocks());
    }
  }
}

TEST_P(ConformanceTest, InfeasibleScheduleFailsWithReason) {
  const GpuSpec gpu = a100();
  const auto backend = GetParam().make(gpu);
  const Schedule s = infeasible_schedule(gpu);
  const KernelMeasurement m = backend->measure(s);
  EXPECT_FALSE(m.ok);
  EXPECT_FALSE(m.fail_reason.empty());
  EXPECT_EQ(m.time_s, 0.0);
}

TEST_P(ConformanceTest, DeterministicWherePromised) {
  const GpuSpec gpu = a100();
  const auto backend = GetParam().make(gpu);
  const SearchSpace space = make_space(fig7_family().front(), gpu);
  for (const Schedule& s : feasible_schedules(space, gpu)) {
    const KernelMeasurement m1 = backend->measure(s);
    const KernelMeasurement m2 = backend->measure(s);
    EXPECT_EQ(m1.ok, m2.ok);
    if (backend->deterministic()) {
      // Bitwise equality, not ULP tolerance: the promise is identity.
      EXPECT_EQ(m1.time_s, m2.time_s);
    }
  }
}

TEST_P(ConformanceTest, RepeatVarianceIsMonotoneNonIncreasing) {
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(fig7_family().front(), gpu);
  const Schedule s = space.schedule_for(space.candidates().front());
  // Sample variance of the reported time over K independent measure()
  // calls, for 1 repeat vs 4 repeats (+trim).  More repeats must never
  // make the estimator noisier.
  auto variance_at = [&](int repeats) {
    const auto backend = GetParam().make_sampling(gpu, repeats);
    constexpr int kCalls = 16;
    std::vector<double> times;
    for (int i = 0; i < kCalls; ++i) {
      const KernelMeasurement m = backend->measure(s);
      EXPECT_TRUE(m.ok);
      times.push_back(m.time_s);
    }
    const double mean = std::accumulate(times.begin(), times.end(), 0.0) /
                        static_cast<double>(times.size());
    double var = 0.0;
    for (const double t : times) var += (t - mean) * (t - mean);
    return var / static_cast<double>(times.size());
  };
  const double var1 = variance_at(1);
  const double var4 = variance_at(4);
  EXPECT_LE(var4, var1 + 1e-18);
}

TEST_P(ConformanceTest, ThreadSafeUnderParallelForSlots) {
  const GpuSpec gpu = a100();
  const auto backend = GetParam().make(gpu);
  std::vector<Schedule> schedules;
  for (const ChainSpec& chain : fig7_family()) {
    for (Schedule& s : feasible_schedules(make_space(chain, gpu), gpu)) {
      schedules.push_back(std::move(s));
    }
  }
  schedules.push_back(infeasible_schedule(gpu));

  // Serial reference first, then the same instance hammered from a pool.
  std::vector<KernelMeasurement> serial;
  for (const Schedule& s : schedules) serial.push_back(backend->measure(s));

  constexpr int kRounds = 3;
  const auto n = static_cast<std::int64_t>(schedules.size());
  std::vector<KernelMeasurement> concurrent(
      static_cast<std::size_t>(n * kRounds));
  ThreadPool pool(4);
  pool.parallel_for_slots(n * kRounds, [&](unsigned, std::int64_t i) {
    concurrent[static_cast<std::size_t>(i)] =
        backend->measure(schedules[static_cast<std::size_t>(i % n)]);
  });
  for (std::int64_t i = 0; i < n * kRounds; ++i) {
    const auto& ref = serial[static_cast<std::size_t>(i % n)];
    const auto& got = concurrent[static_cast<std::size_t>(i)];
    EXPECT_EQ(got.ok, ref.ok);
    if (backend->deterministic()) EXPECT_EQ(got.time_s, ref.time_s);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ConformanceTest,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<BackendCase>& info) {
                           std::string name = info.param.label;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// ---- cross-backend usefulness -----------------------------------------------

TEST(MeasureBackendConformance, SimulatorAndInterpreterRankWorkloadsAlike) {
  // The interpreter's wall-clock is a CPU time, not a GPU time — but over
  // the fig7 family it must *order* candidates consistently with the
  // simulator, otherwise tuning on it would optimise a different
  // objective.  Workload sizes in the family span ~10x, which anchors the
  // ranking; the per-chain candidate spread adds the fine structure.
  const GpuSpec gpu = a100();
  const SimulatorBackend sim(gpu);
  InterpreterBackendOptions opt;
  opt.warmup = 1;
  opt.repeats = 3;
  opt.trim_fraction = 0.34;  // median of three
  const InterpreterBackend interp(gpu, opt);

  std::vector<double> sim_times;
  std::vector<double> interp_times;
  for (const ChainSpec& chain : fig7_family()) {
    const SearchSpace space = make_space(chain, gpu);
    for (const Schedule& s : feasible_schedules(space, gpu)) {
      const KernelMeasurement ms = sim.measure(s);
      const KernelMeasurement mi = interp.measure(s);
      ASSERT_TRUE(ms.ok && mi.ok);
      sim_times.push_back(ms.time_s);
      interp_times.push_back(mi.time_s);
    }
  }
  ASSERT_GE(sim_times.size(), 9u);
  EXPECT_GT(spearman(sim_times, interp_times), 0.4);
}

}  // namespace
}  // namespace mcf
