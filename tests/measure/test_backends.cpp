// Backend-specific unit tests: the interpreter backend's sampling
// arithmetic (scripted clock), the caching decorator's memoization and
// persistence, the registry, and the schedule digest.  The cross-backend
// contract lives in test_conformance.cpp.
#include "measure/backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>

#include "search/space.hpp"

namespace mcf {
namespace {

SearchSpace make_space(const ChainSpec& c, const GpuSpec& gpu) {
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  return SearchSpace(c, SpaceOptions{}, prune);
}

Schedule small_schedule(const GpuSpec& gpu) {
  // Static: the returned Schedule keeps a pointer to this chain.
  static const ChainSpec c = ChainSpec::gemm_chain("small", 1, 64, 64, 32, 32);
  const SearchSpace space = make_space(c, gpu);
  return space.schedule_for(space.candidates().front());
}

/// Counting decorator: how often does the inner backend really measure?
class CountingBackend : public MeasureBackend {
 public:
  explicit CountingBackend(std::shared_ptr<const MeasureBackend> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "counting"; }
  [[nodiscard]] const GpuSpec& spec() const noexcept override { return inner_->spec(); }
  [[nodiscard]] bool deterministic() const noexcept override {
    return inner_->deterministic();
  }
  [[nodiscard]] KernelMeasurement measure(
      const Schedule& s, const MeasureOptions& options = {}) const override {
    ++calls;
    return inner_->measure(s, options);
  }
  [[nodiscard]] KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const override {
    return inner_->measure_raw(bytes, flops, n_blocks, smem_bytes, mem_eff,
                               comp_eff, stmt_trips, options);
  }

  [[nodiscard]] std::uint64_t options_digest(
      const MeasureOptions& options) const noexcept override {
    return inner_->options_digest(options);
  }

  mutable std::atomic<int> calls{0};

 private:
  std::shared_ptr<const MeasureBackend> inner_;
};

// ---- InterpreterBackend -----------------------------------------------------

TEST(InterpreterBackend, TrimmedMeanOfScriptedSamplesIsExact) {
  // Scripted sample durations 1, 2, 3, 4 ms; trim 0.25 of 4 samples drops
  // one from each end: the reported time is exactly mean(2ms, 3ms).
  auto now = std::make_shared<double>(0.0);
  auto tick = std::make_shared<int>(0);
  InterpreterBackendOptions opt;
  opt.warmup = 0;
  opt.repeats = 4;
  opt.trim_fraction = 0.25;
  opt.clock = [now, tick] {
    if (++*tick % 2 == 0) *now += 1e-3 * (*tick / 2);
    return *now;
  };
  const InterpreterBackend backend(a100(), opt);
  const KernelMeasurement m = backend.measure(small_schedule(a100()));
  ASSERT_TRUE(m.ok);
  EXPECT_DOUBLE_EQ(m.time_s, 2.5e-3);
}

TEST(InterpreterBackend, WarmupRunsAreNotTimed) {
  auto clock_calls = std::make_shared<int>(0);
  auto now = std::make_shared<double>(0.0);
  InterpreterBackendOptions opt;
  opt.warmup = 3;
  opt.repeats = 2;
  opt.trim_fraction = 0.0;
  opt.clock = [clock_calls, now] {
    ++*clock_calls;
    return *now += 1e-3;
  };
  const InterpreterBackend backend(a100(), opt);
  ASSERT_TRUE(backend.measure(small_schedule(a100())).ok);
  // Two clock reads per timed sample, none for the warm-up executions.
  EXPECT_EQ(*clock_calls, 2 * opt.repeats);
}

TEST(InterpreterBackend, ReportsScheduleGeometry) {
  const GpuSpec gpu = a100();
  const Schedule s = small_schedule(gpu);
  const InterpreterBackend backend(gpu);
  const KernelMeasurement m = backend.measure(s);
  ASSERT_TRUE(m.ok);
  EXPECT_EQ(m.n_blocks, s.num_blocks());
  EXPECT_EQ(m.smem_bytes, plan_smem(s).total_bytes);
  EXPECT_GT(m.time_s, 0.0);
}

TEST(InterpreterBackend, MeasureRawFallsBackToRoofline) {
  const GpuSpec gpu = a100();
  const InterpreterBackend interp(gpu);
  const SimulatorBackend sim(gpu);
  MeasureOptions opts;
  opts.noise_amp = 0.0;
  const auto mi = interp.measure_raw(1e8, 1e12, 512, 32 * 1024, 1.0, 1.0, 10, opts);
  const auto ms = sim.measure_raw(1e8, 1e12, 512, 32 * 1024, 1.0, 1.0, 10, opts);
  ASSERT_TRUE(mi.ok && ms.ok);
  EXPECT_DOUBLE_EQ(mi.time_s, ms.time_s);
}

// ---- CachingBackend ---------------------------------------------------------

TEST(CachingBackend, MemoizesByScheduleAndOptions) {
  const GpuSpec gpu = a100();
  auto counting = std::make_shared<CountingBackend>(
      std::make_shared<SimulatorBackend>(gpu));
  const CachingBackend cached(counting);

  const ChainSpec c = ChainSpec::gemm_chain("memo", 1, 128, 128, 64, 64);
  const SearchSpace space = make_space(c, gpu);
  const Schedule s1 = space.schedule_for(space.candidates().front());
  const Schedule s2 = space.schedule_for(space.candidates().back());

  const KernelMeasurement first = cached.measure(s1);
  EXPECT_EQ(cached.measure(s1).time_s, first.time_s);  // hit
  EXPECT_EQ(counting->calls, 1);
  (void)cached.measure(s2);  // different tiles: miss
  EXPECT_EQ(counting->calls, 2);
  MeasureOptions other;
  other.noise_seed = 1234;
  (void)cached.measure(s1, other);  // different options: miss
  EXPECT_EQ(counting->calls, 3);
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.misses(), 3u);
  EXPECT_EQ(cached.size(), 3u);
}

TEST(CachingBackend, OptionChurnStillHitsWhenInnerIgnoresOptions) {
  // The interpreter ignores the simulator-noise options, so a cache over
  // it must hit across noise_seed changes — re-executing a schedule on
  // the CPU to get an identical answer is exactly what the cache is for.
  const GpuSpec gpu = a100();
  InterpreterBackendOptions fast;
  fast.warmup = 0;
  fast.repeats = 1;
  auto counting = std::make_shared<CountingBackend>(
      std::make_shared<InterpreterBackend>(gpu, fast));
  const CachingBackend cached(counting);
  const Schedule s = small_schedule(gpu);
  ASSERT_TRUE(cached.measure(s).ok);
  MeasureOptions other;
  other.noise_seed = 999;
  other.include_launch = false;
  ASSERT_TRUE(cached.measure(s, other).ok);
  EXPECT_EQ(counting->calls, 1);  // options the interpreter ignores: hit
}

TEST(CachingBackend, PersistsThroughTuningCacheFormat) {
  const GpuSpec gpu = a100();
  const Schedule s = small_schedule(gpu);
  const std::string path = "caching_backend_test.txt";
  double first_time = 0.0;
  {
    const CachingBackend cached(std::make_shared<SimulatorBackend>(gpu));
    first_time = cached.measure(s).time_s;
    ASSERT_TRUE(cached.save(path));
  }
  auto counting = std::make_shared<CountingBackend>(
      std::make_shared<SimulatorBackend>(gpu));
  CachingBackend reloaded(counting);
  ASSERT_TRUE(reloaded.load(path));
  const KernelMeasurement m = reloaded.measure(s);
  ASSERT_TRUE(m.ok);
  EXPECT_DOUBLE_EQ(m.time_s, first_time);
  EXPECT_EQ(counting->calls, 0);  // served from the persisted record
  // Promoted records still honour the geometry contract.
  EXPECT_EQ(m.n_blocks, s.num_blocks());
  EXPECT_EQ(m.smem_bytes, plan_smem(s).total_bytes);
  std::filesystem::remove(path);
}

TEST(CachingBackend, FailuresAreMemoizedButNotPersisted) {
  const GpuSpec gpu = a100();
  auto counting = std::make_shared<CountingBackend>(
      std::make_shared<SimulatorBackend>(gpu));
  CachingBackend cached(counting);
  const ChainSpec c = ChainSpec::gemm_chain("big", 1, 512, 512, 256, 256);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{512, 512, 256, 256});
  EXPECT_FALSE(cached.measure(s).ok);
  EXPECT_FALSE(cached.measure(s).ok);
  EXPECT_EQ(counting->calls, 1);  // known failures are not re-measured...
  const std::string path = "caching_backend_failures_test.txt";
  ASSERT_TRUE(cached.save(path));
  CachingBackend reloaded(counting);
  ASSERT_TRUE(reloaded.load(path));
  EXPECT_FALSE(reloaded.measure(s).ok);
  EXPECT_EQ(counting->calls, 2);  // ...but never persisted as records
  std::filesystem::remove(path);
}

// ---- digest & registry ------------------------------------------------------

TEST(ScheduleDigest, SeparatesTilesAndStructure) {
  const ChainSpec c = ChainSpec::gemm_chain("dig", 1, 128, 128, 64, 64);
  const GpuSpec gpu = a100();
  const SearchSpace space = make_space(c, gpu);
  const auto& cands = space.candidates();
  const Schedule a = space.schedule_for(cands.front());
  const Schedule b = space.schedule_for(cands.back());
  EXPECT_EQ(schedule_structure_digest(a),
            schedule_structure_digest(space.schedule_for(cands.front())));
  EXPECT_NE(schedule_structure_digest(a), schedule_structure_digest(b));
}

TEST(ExecMeasureState, GateLruEvictsPastCapAndRecomputesIdentically) {
  const GpuSpec gpu = a100();
  const ChainSpec c = ChainSpec::gemm_chain("gates", 1, 128, 128, 64, 64);
  const SearchSpace space = make_space(c, gpu);
  ASSERT_GE(space.candidates().size(), 4u);

  detail::ExecMeasureState::Limits limits;
  limits.max_gates = 2;
  detail::ExecMeasureState state(limits);
  std::vector<detail::ExecMeasureState::Gate> first;
  for (std::size_t i = 0; i < 4; ++i) {
    first.push_back(
        state.gate(space.schedule_for(space.candidates()[i]), gpu));
  }
  EXPECT_LE(state.gate_entries(), 2u);
  EXPECT_GE(state.evictions(), 2u);
  // An evicted gate recomputes to the same answer: eviction is a pure
  // memory/cost trade, never a behaviour change.
  for (std::size_t i = 0; i < 4; ++i) {
    const auto again = state.gate(space.schedule_for(space.candidates()[i]), gpu);
    EXPECT_EQ(again.ok, first[i].ok) << i;
    EXPECT_EQ(again.fail_reason, first[i].fail_reason) << i;
    EXPECT_EQ(again.n_blocks, first[i].n_blocks) << i;
    EXPECT_EQ(again.smem_bytes, first[i].smem_bytes) << i;
  }
}

TEST(ExecMeasureState, DataLruEvictsByEntriesAndRebuildsIdentically) {
  const GpuSpec gpu = a100();
  (void)gpu;
  detail::ExecMeasureState::Limits limits;
  limits.max_data_entries = 1;
  detail::ExecMeasureState state(limits);
  const ChainSpec a = ChainSpec::gemm_chain("a", 1, 64, 64, 32, 32);
  const ChainSpec b = ChainSpec::gemm_chain("b", 1, 96, 64, 32, 32);
  const auto data_a = state.data(a, 1);
  const float probe = data_a->a.data()[0];
  const std::size_t bytes_a = data_a->bytes();
  EXPECT_GT(bytes_a, 0u);
  (void)state.data(b, 1);  // evicts a's entry (cap 1)
  EXPECT_EQ(state.data_entries(), 1u);
  EXPECT_GE(state.evictions(), 1u);
  // The held shared_ptr stays valid past eviction; a rebuilt tensor set
  // is bit-identical (deterministic seeded fill).
  const auto rebuilt = state.data(a, 1);
  EXPECT_NE(rebuilt.get(), data_a.get());
  EXPECT_EQ(rebuilt->a.data()[0], probe);
  EXPECT_EQ(rebuilt->bytes(), bytes_a);
  EXPECT_EQ(data_a->a.data()[0], probe);
}

TEST(ExecMeasureState, DataByteCapKeepsNewestEntry) {
  detail::ExecMeasureState::Limits limits;
  limits.max_data_bytes = 1;  // everything oversized: only the newest stays
  detail::ExecMeasureState state(limits);
  const ChainSpec a = ChainSpec::gemm_chain("a", 1, 64, 64, 32, 32);
  const ChainSpec b = ChainSpec::gemm_chain("b", 1, 96, 64, 32, 32);
  (void)state.data(a, 1);
  EXPECT_EQ(state.data_entries(), 1u);  // never evict the newest
  (void)state.data(b, 1);
  EXPECT_EQ(state.data_entries(), 1u);
  EXPECT_GE(state.evictions(), 1u);
  EXPECT_GT(state.data_bytes(), 0u);
}

TEST(InterpreterBackend, HonoursMemoLimitsFromOptions) {
  const GpuSpec gpu = a100();
  InterpreterBackendOptions opts;
  opts.warmup = 0;
  opts.repeats = 1;
  opts.memo_limits.max_data_entries = 1;
  const InterpreterBackend backend(gpu, opts);
  // Two distinct chains through a 1-entry input-tensor memo: both still
  // measure correctly (the memo is an optimisation, not a correctness
  // dependency).
  for (const auto& c : {ChainSpec::gemm_chain("m1", 1, 64, 64, 32, 32),
                        ChainSpec::gemm_chain("m2", 1, 96, 64, 32, 32)}) {
    const SearchSpace space = make_space(c, gpu);
    const KernelMeasurement m =
        backend.measure(space.schedule_for(space.candidates().front()));
    EXPECT_TRUE(m.ok) << m.fail_reason;
    EXPECT_GT(m.time_s, 0.0);
  }
}

TEST(BackendRegistry, CreatesBuiltinsAndRejectsUnknown) {
  const GpuSpec gpu = a100();
  auto& registry = BackendRegistry::instance();
  for (const char* name : {"sim", "interp", "cached-sim"}) {
    const auto backend = registry.create(name, gpu);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
    EXPECT_EQ(backend->spec().name, gpu.name);
  }
  EXPECT_EQ(registry.create("cuda-events", gpu), nullptr);
}

TEST(BackendRegistry, AddIsFirstComeFirstServed) {
  auto& registry = BackendRegistry::instance();
  const auto factory = [](const GpuSpec& gpu) -> std::shared_ptr<MeasureBackend> {
    return std::make_shared<SimulatorBackend>(gpu);
  };
  EXPECT_TRUE(registry.add("test-only-backend", factory));
  EXPECT_FALSE(registry.add("test-only-backend", factory));  // duplicate
  EXPECT_FALSE(registry.add("sim", factory));                // builtin kept
  EXPECT_NE(registry.create("test-only-backend", a100()), nullptr);
}

}  // namespace
}  // namespace mcf
