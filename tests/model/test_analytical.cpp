// The paper's eqs. (2)-(5).
#include <gtest/gtest.h>

#include "model/analytical.hpp"

namespace mcf {
namespace {

TEST(Analytical, HandComputedEstimate) {
  const GpuSpec gpu = a100();
  const AnalyticalModel model(gpu);
  VolumeReport vol;
  vol.load_bytes = 1e9;
  vol.store_bytes = 0.5e9;
  vol.flops = 3e12;
  vol.epilogue_flops = 0.0;
  vol.n_blocks = 108;  // == N_SM: alpha = 2
  const AnalyticalEstimate e = model.estimate(vol);
  EXPECT_DOUBLE_EQ(e.mem_time_s, 1.5e9 / gpu.mem_bandwidth);
  EXPECT_DOUBLE_EQ(e.comp_time_s, 3e12 / gpu.peak_flops);
  EXPECT_DOUBLE_EQ(e.alpha, 2.0);
  EXPECT_DOUBLE_EQ(e.time_s, (e.mem_time_s + e.comp_time_s) * 2.0);
}

TEST(Analytical, AlphaApproachesOne) {
  const AnalyticalModel model(a100());
  VolumeReport vol;
  vol.load_bytes = 1e6;
  vol.n_blocks = 1e6;
  EXPECT_NEAR(model.estimate(vol).alpha, 1.0, 1e-3);
}

TEST(Analytical, AlphaPenalisesFewBlocks) {
  const AnalyticalModel model(a100());
  VolumeReport one;
  one.load_bytes = 1e6;
  one.n_blocks = 1;
  VolumeReport many = one;
  many.n_blocks = 1080;
  EXPECT_GT(model.estimate(one).alpha, model.estimate(many).alpha);
  EXPECT_DOUBLE_EQ(model.estimate(one).alpha, 109.0);
}

TEST(Analytical, MonotonicInTraffic) {
  const AnalyticalModel model(a100());
  const ChainSpec c = ChainSpec::gemm_chain("m", 1, 512, 512, 128, 128);
  const Schedule coarse = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                         std::vector<std::int64_t>{128, 64, 128, 128});
  const Schedule fine = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                       std::vector<std::int64_t>{16, 16, 16, 16});
  // The 16-wide tiling re-streams operands massively; even with its
  // higher block count the estimate must be worse.
  EXPECT_GT(model.estimate(fine).time_s, model.estimate(coarse).time_s);
}

TEST(Analytical, IgnoresEfficiencyEffects) {
  // Two volume reports with identical totals estimate identically even if
  // a real GPU would treat their tile shapes differently — this coarseness
  // is by design (the Fig. 11 scatter comes from it).
  const AnalyticalModel model(a100());
  VolumeReport a;
  a.load_bytes = 1e8;
  a.flops = 1e11;
  a.n_blocks = 512;
  VolumeReport b = a;
  b.stmts.push_back(StmtVolume{});  // different detail, same totals
  EXPECT_DOUBLE_EQ(model.estimate(a).time_s, model.estimate(b).time_s);
}

TEST(Analytical, EpilogueFlopsIncluded) {
  const AnalyticalModel model(a100());
  VolumeReport base;
  base.load_bytes = 1e6;
  base.flops = 1e10;
  base.n_blocks = 256;
  VolumeReport with = base;
  with.epilogue_flops = 1e10;
  EXPECT_GT(model.estimate(with).time_s, model.estimate(base).time_s);
}

TEST(Analytical, ScheduleOverloadMatchesVolumeOverload) {
  const ChainSpec c = ChainSpec::gemm_chain("s", 1, 256, 256, 64, 64);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const AnalyticalModel model(a100());
  EXPECT_DOUBLE_EQ(model.estimate(s).time_s,
                   model.estimate(analyze_volume(s)).time_s);
}

}  // namespace
}  // namespace mcf
