#include "graph/mixer.hpp"

#include <gtest/gtest.h>

#include "graph/executor.hpp"
#include "graph/partitioner.hpp"

namespace mcf {
namespace {

TEST(Mixer, GraphShape) {
  const MixerConfig cfg = mixer_base();
  const NetGraph g = build_mixer(cfg);
  EXPECT_EQ(g.size(), 1 + 14 * cfg.layers);
  int token_chains = 0;
  for (const auto& n : g.nodes()) {
    if (n.name.find("token.fc1") != std::string::npos) {
      EXPECT_EQ(n.m, cfg.channels);
      EXPECT_EQ(n.n, cfg.token_hidden);
      EXPECT_EQ(n.k, cfg.patches);
      ++token_chains;
    }
  }
  EXPECT_EQ(token_chains, cfg.layers);
}

TEST(Mixer, PartitionerFindsGeluChains) {
  const MixerConfig cfg = mixer_small();
  const NetGraph g = build_mixer(cfg);
  const PartitionResult part = partition_mbci(g, a100());
  ASSERT_EQ(part.mbci.size(), static_cast<std::size_t>(cfg.layers));
  for (const auto& sub : part.mbci) {
    EXPECT_EQ(sub.nodes.size(), 3u);  // fc1, gelu, fc2
    EXPECT_EQ(sub.chain.epilogue(0), Epilogue::Gelu);
    EXPECT_EQ(sub.chain.m(), cfg.channels);
    EXPECT_EQ(sub.chain.inner(),
              (std::vector<std::int64_t>{cfg.patches, cfg.token_hidden,
                                         cfg.patches}));
  }
}

TEST(Mixer, TokenMlpIsMbci) {
  const NetGraph g = build_mixer(mixer_base());
  const PartitionResult part = partition_mbci(g, a100());
  ASSERT_FALSE(part.mbci.empty());
  EXPECT_TRUE(is_mbci(part.mbci.front().chain, a100()));
}

TEST(Mixer, ChannelMlpStaysUnfused) {
  // The channel MLP keeps its biases, so the gelu chain pattern must not
  // swallow it.
  const NetGraph g = build_mixer(mixer_small());
  const PartitionResult part = partition_mbci(g, a100());
  for (const auto& sub : part.mbci) {
    for (const int id : sub.nodes) {
      EXPECT_EQ(g.node(id).name.find("channel."), std::string::npos);
    }
  }
}

TEST(Mixer, McfuserImprovesEndToEnd) {
  const MixerConfig cfg = mixer_small();
  const NetGraph g = build_mixer(cfg);
  auto run = [&](bool fuse) {
    GraphExecOptions opts;
    opts.backend = GraphBackend::Relay;
    opts.use_mcfuser = fuse;
    GraphExecutor ex(a100(), opts);
    return ex.run(g);
  };
  const GraphRunResult base = run(false);
  const GraphRunResult fused = run(true);
  EXPECT_LT(fused.time_s, base.time_s);
  EXPECT_EQ(fused.mcfuser_subgraphs, 1);  // one unique token-MLP shape
  // fc1 + gelu + fc2 collapse into one kernel per layer.
  EXPECT_EQ(base.kernel_launches - fused.kernel_launches, 2 * cfg.layers);
}

TEST(Mixer, ConfigsDistinct) {
  EXPECT_LT(mixer_small().channels, mixer_base().channels);
  EXPECT_EQ(mixer_base().patches, 196);
}

}  // namespace
}  // namespace mcf
