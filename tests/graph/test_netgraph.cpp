#include "graph/netgraph.hpp"

#include <gtest/gtest.h>

namespace mcf {
namespace {

GraphNode node(OpType t, std::vector<int> inputs, std::int64_t b,
               std::int64_t m, std::int64_t n, std::int64_t k = 0) {
  GraphNode g;
  g.type = t;
  g.inputs = std::move(inputs);
  g.batch = b;
  g.m = m;
  g.n = n;
  g.k = k;
  return g;
}

TEST(NetGraph, AddAssignsSequentialIds) {
  NetGraph g("t");
  const int a = g.add(node(OpType::Input, {}, 1, 8, 8));
  const int b = g.add(node(OpType::Relu, {a}, 1, 8, 8));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(g.size(), 2);
}

TEST(NetGraph, ConsumersTracked) {
  NetGraph g("t");
  const int a = g.add(node(OpType::Input, {}, 1, 8, 8));
  const int b = g.add(node(OpType::Relu, {a}, 1, 8, 8));
  const int c = g.add(node(OpType::GeLU, {a}, 1, 8, 8));
  EXPECT_EQ(g.consumers(a), (std::vector<int>{b, c}));
  EXPECT_TRUE(g.consumers(c).empty());
}

TEST(NetGraph, MatmulFlops) {
  GraphNode n = node(OpType::MatMul, {}, 2, 8, 16, 4);
  EXPECT_DOUBLE_EQ(n.flops(), 2.0 * 2 * 8 * 16 * 4);
  GraphNode e = node(OpType::Relu, {}, 2, 8, 16);
  EXPECT_DOUBLE_EQ(e.flops(), 0.0);
}

TEST(NetGraph, TotalFlopsSumsMatmuls) {
  NetGraph g("t");
  const int a = g.add(node(OpType::Input, {}, 1, 8, 4));
  const int b = g.add(node(OpType::MatMul, {a}, 1, 8, 16, 4));
  g.add(node(OpType::Relu, {b}, 1, 8, 16));
  EXPECT_DOUBLE_EQ(g.total_flops(), 2.0 * 8 * 16 * 4);
}

TEST(NetGraph, OutElems) {
  EXPECT_EQ(node(OpType::Softmax, {}, 4, 8, 16).out_elems(), 4 * 8 * 16);
}

TEST(NetGraphDeathTest, RejectsForwardReferences) {
  NetGraph g("t");
  EXPECT_DEATH(g.add(node(OpType::Relu, {5}, 1, 8, 8)), "topologically");
}

}  // namespace
}  // namespace mcf
