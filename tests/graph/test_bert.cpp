#include "graph/bert.hpp"

#include <gtest/gtest.h>

namespace mcf {
namespace {

TEST(Bert, ConfigsMatchPaperTable) {
  EXPECT_EQ(bert_small().hidden, 512);
  EXPECT_EQ(bert_small().heads, 8);
  EXPECT_EQ(bert_base().layers, 12);
  EXPECT_EQ(bert_base().heads, 12);
  EXPECT_EQ(bert_large().hidden, 1024);
  EXPECT_EQ(bert_large().head_dim(), 64);
  EXPECT_EQ(bert_base().seq_len, 512);
}

TEST(Bert, GraphSizeScalesWithLayers) {
  const NetGraph small = build_bert(bert_small());
  const NetGraph base = build_bert(bert_base());
  const int per_layer_small = (small.size() - 1) / bert_small().layers;
  const int per_layer_base = (base.size() - 1) / bert_base().layers;
  EXPECT_EQ(per_layer_small, per_layer_base);
  EXPECT_EQ(small.size(), 1 + per_layer_small * bert_small().layers);
}

TEST(Bert, LayerContainsAttentionCore) {
  const NetGraph g = build_bert(bert_small());
  int qk = 0;
  int softmax = 0;
  int pv = 0;
  for (const auto& n : g.nodes()) {
    if (n.name.find("attn.qk") != std::string::npos) ++qk;
    if (n.type == OpType::Softmax) ++softmax;
    if (n.name.find("attn.pv") != std::string::npos) ++pv;
  }
  EXPECT_EQ(qk, bert_small().layers);
  EXPECT_EQ(softmax, bert_small().layers);
  EXPECT_EQ(pv, bert_small().layers);
}

TEST(Bert, AttentionDimsPerHead) {
  const NetGraph g = build_bert(bert_base());
  for (const auto& n : g.nodes()) {
    if (n.name == "l0.attn.qk") {
      EXPECT_EQ(n.batch, 12);
      EXPECT_EQ(n.m, 512);
      EXPECT_EQ(n.n, 512);
      EXPECT_EQ(n.k, 64);
    }
    if (n.name == "l0.attn.pv") {
      EXPECT_EQ(n.n, 64);
      EXPECT_EQ(n.k, 512);
    }
  }
}

TEST(Bert, FfnUsesConfiguredWidth) {
  const NetGraph g = build_bert(bert_large());
  bool found = false;
  for (const auto& n : g.nodes()) {
    if (n.name == "l0.ffn.fc1") {
      EXPECT_EQ(n.n, 4096);
      EXPECT_EQ(n.k, 1024);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Bert, AttentionChainHelper) {
  const ChainSpec c = bert_attention_chain(bert_base(), 1024);
  EXPECT_EQ(c.batch(), 12);
  EXPECT_EQ(c.m(), 1024);
  EXPECT_EQ(c.inner(), (std::vector<std::int64_t>{64, 1024, 64}));
  EXPECT_EQ(c.epilogue(0), Epilogue::OnlineSoftmax);
}

TEST(Bert, FlopsDominatedByMatmuls) {
  const BertConfig cfg = bert_base();
  const NetGraph g = build_bert(cfg);
  // Rough per-layer FLOPs: qkv 3*s*h^2*2 + attn 2*2*s^2*h + proj 2*s*h^2 +
  // ffn 2*2*s*h*ffn.
  const double s = 512;
  const double h = 768;
  const double per_layer = 2 * s * h * h * 4 + 2 * 2 * s * s * h + 2 * 2 * s * h * 3072;
  EXPECT_NEAR(g.total_flops(), per_layer * 12, per_layer);
}

}  // namespace
}  // namespace mcf
