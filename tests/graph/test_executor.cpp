#include "graph/executor.hpp"

#include <gtest/gtest.h>

#include "graph/bert.hpp"

namespace mcf {
namespace {

GraphRunResult run_bert(const BertConfig& cfg, GraphBackend backend,
                        bool use_mcfuser) {
  GraphExecOptions opts;
  opts.backend = backend;
  opts.use_mcfuser = use_mcfuser;
  GraphExecutor ex(a100(), opts);
  const NetGraph g = build_bert(cfg);
  return ex.run(g);
}

TEST(Executor, BackendOrdering) {
  const BertConfig cfg = bert_small();
  const double eager = run_bert(cfg, GraphBackend::Eager, false).time_s;
  const double relay = run_bert(cfg, GraphBackend::Relay, false).time_s;
  const double ansor = run_bert(cfg, GraphBackend::Ansor, false).time_s;
  EXPECT_GT(eager, relay);
  EXPECT_GT(relay, ansor);
}

TEST(Executor, McfuserImprovesEveryBackend) {
  const BertConfig cfg = bert_small();
  for (const GraphBackend b : {GraphBackend::Relay, GraphBackend::Ansor}) {
    const double base = run_bert(cfg, b, false).time_s;
    const double fused = run_bert(cfg, b, true).time_s;
    EXPECT_LT(fused, base);
    // Paper Fig. 9 band: 1.1x - 1.6x end-to-end.
    EXPECT_GT(base / fused, 1.05);
    EXPECT_LT(base / fused, 1.8);
  }
}

TEST(Executor, FusionReducesKernelLaunches) {
  const BertConfig cfg = bert_small();
  const auto base = run_bert(cfg, GraphBackend::Relay, false);
  const auto fused = run_bert(cfg, GraphBackend::Relay, true);
  // 5 attention-core kernels collapse into 1 per layer.
  EXPECT_EQ(base.kernel_launches - fused.kernel_launches, 4 * cfg.layers);
}

TEST(Executor, EagerLaunchesEveryNode) {
  const BertConfig cfg = bert_small();
  const NetGraph g = build_bert(cfg);
  const auto eager = run_bert(cfg, GraphBackend::Eager, false);
  EXPECT_EQ(eager.kernel_launches, g.size() - 1);  // all but the input
}

TEST(Executor, EpilogueAbsorptionReducesLaunches) {
  const BertConfig cfg = bert_small();
  const auto eager = run_bert(cfg, GraphBackend::Eager, false);
  const auto relay = run_bert(cfg, GraphBackend::Relay, false);
  EXPECT_LT(relay.kernel_launches, eager.kernel_launches);
}

TEST(Executor, TunesEachUniqueShapeOnce) {
  const BertConfig cfg = bert_base();  // 12 identical layers
  const auto fused = run_bert(cfg, GraphBackend::Ansor, true);
  EXPECT_EQ(fused.mcfuser_subgraphs, 1);  // one unique attention shape
  const auto base = run_bert(cfg, GraphBackend::Ansor, false);
  EXPECT_GT(base.unique_tuned_subgraphs, fused.unique_tuned_subgraphs);
}

TEST(Executor, AttentionShareGrowsWithSequenceLength) {
  // The paper's §II motivation: longer sequences shift time into the
  // attention core.
  BertConfig short_cfg = bert_large();
  short_cfg.seq_len = 256;
  BertConfig long_cfg = bert_large();
  long_cfg.seq_len = 1024;
  const auto s = run_bert(short_cfg, GraphBackend::Eager, false);
  const auto l = run_bert(long_cfg, GraphBackend::Eager, false);
  EXPECT_GT(l.attention_time_s / l.time_s, s.attention_time_s / s.time_s);
}

TEST(Executor, AttentionTimeShareExceedsFlopsShare) {
  // MBCI in one sentence: attention burns far more time than FLOPs.
  const auto r = run_bert(bert_base(), GraphBackend::Eager, false);
  const double flops_share = r.attention_flops / r.flops;
  const double time_share = r.attention_time_s / r.time_s;
  EXPECT_GT(time_share, 1.5 * flops_share);
}

TEST(Executor, FlopsIndependentOfBackend) {
  const BertConfig cfg = bert_small();
  const auto a = run_bert(cfg, GraphBackend::Eager, false);
  const auto b = run_bert(cfg, GraphBackend::Ansor, true);
  EXPECT_DOUBLE_EQ(a.flops, b.flops);
}

}  // namespace
}  // namespace mcf
