#include "graph/partitioner.hpp"

#include <gtest/gtest.h>

#include "graph/bert.hpp"

namespace mcf {
namespace {

TEST(Phi, MatchesPaperFormulaForSingleGemm) {
  // phi = 2*TM*TN*K / (2*TM*TN + TM*K + TN*K) with TM=TN=256.
  const ChainSpec c = ChainSpec::gemm_chain("phi", 1, 1024, 1024, 1024, 1024);
  const double tm = 256;
  const double k = 1024;
  const double phi_op = 2 * tm * tm * k / (2 * tm * tm + 2 * tm * k);
  // Both ops have the same shape here; the weighted mean equals phi_op.
  EXPECT_NEAR(chain_flops_per_byte(c, 256), phi_op, 1e-9);
}

TEST(Phi, SmallKIsMemoryBound) {
  const GpuSpec gpu = a100();
  const ChainSpec small_k = ChainSpec::gemm_chain("mb", 1, 1024, 1024, 16, 16);
  const ChainSpec big_k = ChainSpec::gemm_chain("cb", 1, 1024, 1024, 1024, 1024);
  EXPECT_TRUE(is_mbci(small_k, gpu));
  EXPECT_FALSE(is_mbci(big_k, gpu));
}

TEST(Phi, AttentionAtSeq512IsMbci) {
  const GpuSpec gpu = a100();
  EXPECT_TRUE(is_mbci(ChainSpec::attention("a", 12, 512, 512, 64, 64), gpu));
}

TEST(Partitioner, FindsOneRegionPerBertLayer) {
  const BertConfig cfg = bert_base();
  const NetGraph g = build_bert(cfg);
  const PartitionResult part = partition_mbci(g, a100());
  EXPECT_EQ(part.mbci.size(), static_cast<std::size_t>(cfg.layers));
  // Each region: qk, scale, mask, softmax, pv.
  for (const auto& sub : part.mbci) {
    EXPECT_EQ(sub.nodes.size(), 5u);
    EXPECT_EQ(sub.chain.epilogue(0), Epilogue::OnlineSoftmax);
    EXPECT_EQ(sub.chain.batch(), cfg.heads);
  }
}

TEST(Partitioner, RestExcludesClaimedAndInputs) {
  const NetGraph g = build_bert(bert_small());
  const PartitionResult part = partition_mbci(g, a100());
  std::size_t claimed = 0;
  for (const auto& sub : part.mbci) claimed += sub.nodes.size();
  EXPECT_EQ(part.rest.size() + claimed + 1, static_cast<std::size_t>(g.size()));
}

TEST(Partitioner, PlainGemmChainPatternWithoutSoftmax) {
  NetGraph g("chain");
  GraphNode in;
  in.type = OpType::Input;
  in.m = 512;
  in.n = 64;
  const int a = g.add(in);
  GraphNode mm1;
  mm1.type = OpType::BatchedMatMul;
  mm1.inputs = {a};
  mm1.batch = 1;
  mm1.m = 512;
  mm1.n = 256;
  mm1.k = 64;
  const int b = g.add(mm1);
  GraphNode mm2;
  mm2.type = OpType::BatchedMatMul;
  mm2.inputs = {b};
  mm2.batch = 1;
  mm2.m = 512;
  mm2.n = 64;
  mm2.k = 256;
  g.add(mm2);
  const PartitionResult part = partition_mbci(g, a100());
  ASSERT_EQ(part.mbci.size(), 1u);
  EXPECT_EQ(part.mbci.front().chain.num_ops(), 2);
  EXPECT_EQ(part.mbci.front().chain.epilogue(0), Epilogue::None);
}

TEST(Partitioner, MultiConsumerIntermediateBlocksFusion) {
  NetGraph g("shared");
  GraphNode in;
  in.type = OpType::Input;
  in.m = 512;
  in.n = 64;
  const int a = g.add(in);
  GraphNode mm1;
  mm1.type = OpType::BatchedMatMul;
  mm1.inputs = {a};
  mm1.batch = 1;
  mm1.m = 512;
  mm1.n = 256;
  mm1.k = 64;
  const int b = g.add(mm1);
  GraphNode mm2 = mm1;
  mm2.inputs = {b};
  mm2.n = 64;
  mm2.k = 256;
  g.add(mm2);
  GraphNode extra;
  extra.type = OpType::Relu;  // second consumer of the intermediate
  extra.inputs = {b};
  extra.m = 512;
  extra.n = 256;
  g.add(extra);
  EXPECT_TRUE(partition_mbci(g, a100()).mbci.empty());
}

TEST(Partitioner, RequireMbciFlagGatesComputeBoundChains) {
  NetGraph g("cb");
  GraphNode in;
  in.type = OpType::Input;
  in.m = 1024;
  in.n = 1024;
  const int a = g.add(in);
  GraphNode mm1;
  mm1.type = OpType::BatchedMatMul;
  mm1.inputs = {a};
  mm1.batch = 1;
  mm1.m = 1024;
  mm1.n = 1024;
  mm1.k = 1024;
  const int b = g.add(mm1);
  GraphNode mm2 = mm1;
  mm2.inputs = {b};
  g.add(mm2);
  EXPECT_TRUE(partition_mbci(g, a100(), /*require_mbci=*/true).mbci.empty());
  EXPECT_EQ(partition_mbci(g, a100(), /*require_mbci=*/false).mbci.size(), 1u);
}

TEST(Partitioner, ChainDimsExtractedCorrectly) {
  const NetGraph g = build_bert(bert_large());
  const PartitionResult part = partition_mbci(g, a100());
  ASSERT_FALSE(part.mbci.empty());
  const ChainSpec& c = part.mbci.front().chain;
  EXPECT_EQ(c.m(), 512);
  EXPECT_EQ(c.inner(), (std::vector<std::int64_t>{64, 512, 64}));
  EXPECT_EQ(c.batch(), 16);
}

}  // namespace
}  // namespace mcf
