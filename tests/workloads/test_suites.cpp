#include "workloads/suites.hpp"

#include <gtest/gtest.h>

#include "graph/partitioner.hpp"

namespace mcf {
namespace {

TEST(Suites, GemmChainTableII) {
  const auto suite = gemm_chain_suite();
  ASSERT_EQ(suite.size(), 12u);
  EXPECT_EQ(suite[0].name(), "G1");
  // G1: batch 1, M 512, N 256, K 64, H 64.
  EXPECT_EQ(suite[0].m(), 512);
  EXPECT_EQ(suite[0].inner(), (std::vector<std::int64_t>{64, 256, 64}));
  // G6: K = 1024.
  EXPECT_EQ(suite[5].inner()[0], 1024);
  // G9: M = 2048.
  EXPECT_EQ(suite[8].m(), 2048);
  // G12: batch 8, 1024x1024, K=H=128.
  EXPECT_EQ(suite[11].batch(), 8);
  EXPECT_EQ(suite[11].m(), 1024);
  EXPECT_EQ(suite[11].inner(), (std::vector<std::int64_t>{128, 1024, 128}));
}

TEST(Suites, AttentionTableIII) {
  const auto suite = attention_suite();
  ASSERT_EQ(suite.size(), 9u);
  EXPECT_EQ(suite[0].batch(), 8);    // S1 Bert-Small heads
  EXPECT_EQ(suite[2].batch(), 16);   // S3 Bert-Large heads
  EXPECT_EQ(suite[5].inner()[0], 80);  // S6 ViT-Huge head dim
  EXPECT_EQ(suite[8].m(), 1024);     // S9 MLP-Mixer
  for (const auto& c : suite) {
    EXPECT_EQ(c.epilogue(0), Epilogue::OnlineSoftmax);
  }
}

TEST(Suites, AllGemmChainsAreMbciOnA100) {
  const GpuSpec gpu = a100();
  for (const auto& c : gemm_chain_suite()) {
    EXPECT_TRUE(is_mbci(c, gpu)) << c.name();
  }
}

TEST(Suites, AllAttentionModulesAreMbci) {
  const GpuSpec gpu = a100();
  for (const auto& c : attention_suite()) {
    EXPECT_TRUE(is_mbci(c, gpu)) << c.name();
  }
}

TEST(Suites, BertConfigs) {
  const auto suite = bert_suite();
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].name, "Bert-Small");
  EXPECT_EQ(suite[2].layers, 24);
  for (const auto& cfg : suite) EXPECT_EQ(cfg.head_dim(), 64);
}

TEST(Suites, BertAttentionMatchesTableIIIShapes) {
  // S2 is Bert-Base attention at seq 512.
  const ChainSpec s2 = attention_suite()[1];
  const ChainSpec from_cfg = bert_attention_chain(bert_base(), 512);
  EXPECT_EQ(s2.batch(), from_cfg.batch());
  EXPECT_EQ(s2.m(), from_cfg.m());
  EXPECT_EQ(s2.inner(), from_cfg.inner());
}

}  // namespace
}  // namespace mcf
